
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cloud_test.cpp" "tests/CMakeFiles/cloud_test.dir/cloud_test.cpp.o" "gcc" "tests/CMakeFiles/cloud_test.dir/cloud_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/storm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/storm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/storm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/storm_block.dir/DependInfo.cmake"
  "/root/repo/build/src/iscsi/CMakeFiles/storm_iscsi.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/storm_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/storm_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/storm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/storm_services.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/storm_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
