file(REMOVE_RECURSE
  "CMakeFiles/sdn_test.dir/sdn_test.cpp.o"
  "CMakeFiles/sdn_test.dir/sdn_test.cpp.o.d"
  "sdn_test"
  "sdn_test.pdb"
  "sdn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
