# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/block_test[1]_include.cmake")
include("/root/repo/build/tests/iscsi_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/services_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/sdn_test[1]_include.cmake")
