file(REMOVE_RECURSE
  "libstorm_cloud.a"
)
