file(REMOVE_RECURSE
  "CMakeFiles/storm_cloud.dir/cloud.cpp.o"
  "CMakeFiles/storm_cloud.dir/cloud.cpp.o.d"
  "libstorm_cloud.a"
  "libstorm_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
