# Empty dependencies file for storm_cloud.
# This may be replaced when dependencies are built.
