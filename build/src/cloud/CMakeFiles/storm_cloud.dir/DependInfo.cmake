
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/cloud.cpp" "src/cloud/CMakeFiles/storm_cloud.dir/cloud.cpp.o" "gcc" "src/cloud/CMakeFiles/storm_cloud.dir/cloud.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/storm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/storm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/storm_block.dir/DependInfo.cmake"
  "/root/repo/build/src/iscsi/CMakeFiles/storm_iscsi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
