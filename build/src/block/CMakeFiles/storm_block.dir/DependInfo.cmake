
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/block_device.cpp" "src/block/CMakeFiles/storm_block.dir/block_device.cpp.o" "gcc" "src/block/CMakeFiles/storm_block.dir/block_device.cpp.o.d"
  "/root/repo/src/block/sim_disk.cpp" "src/block/CMakeFiles/storm_block.dir/sim_disk.cpp.o" "gcc" "src/block/CMakeFiles/storm_block.dir/sim_disk.cpp.o.d"
  "/root/repo/src/block/volume.cpp" "src/block/CMakeFiles/storm_block.dir/volume.cpp.o" "gcc" "src/block/CMakeFiles/storm_block.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/storm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
