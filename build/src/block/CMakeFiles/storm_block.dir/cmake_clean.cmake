file(REMOVE_RECURSE
  "CMakeFiles/storm_block.dir/block_device.cpp.o"
  "CMakeFiles/storm_block.dir/block_device.cpp.o.d"
  "CMakeFiles/storm_block.dir/sim_disk.cpp.o"
  "CMakeFiles/storm_block.dir/sim_disk.cpp.o.d"
  "CMakeFiles/storm_block.dir/volume.cpp.o"
  "CMakeFiles/storm_block.dir/volume.cpp.o.d"
  "libstorm_block.a"
  "libstorm_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
