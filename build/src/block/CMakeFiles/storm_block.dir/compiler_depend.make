# Empty compiler generated dependencies file for storm_block.
# This may be replaced when dependencies are built.
