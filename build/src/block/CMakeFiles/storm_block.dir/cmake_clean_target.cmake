file(REMOVE_RECURSE
  "libstorm_block.a"
)
