file(REMOVE_RECURSE
  "CMakeFiles/storm_crypto.dir/aes.cpp.o"
  "CMakeFiles/storm_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/storm_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/storm_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/storm_crypto.dir/sha256.cpp.o"
  "CMakeFiles/storm_crypto.dir/sha256.cpp.o.d"
  "libstorm_crypto.a"
  "libstorm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
