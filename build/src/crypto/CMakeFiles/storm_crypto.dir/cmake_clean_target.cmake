file(REMOVE_RECURSE
  "libstorm_crypto.a"
)
