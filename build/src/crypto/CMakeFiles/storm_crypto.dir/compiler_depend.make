# Empty compiler generated dependencies file for storm_crypto.
# This may be replaced when dependencies are built.
