file(REMOVE_RECURSE
  "CMakeFiles/storm_common.dir/bytes.cpp.o"
  "CMakeFiles/storm_common.dir/bytes.cpp.o.d"
  "CMakeFiles/storm_common.dir/hash.cpp.o"
  "CMakeFiles/storm_common.dir/hash.cpp.o.d"
  "CMakeFiles/storm_common.dir/log.cpp.o"
  "CMakeFiles/storm_common.dir/log.cpp.o.d"
  "libstorm_common.a"
  "libstorm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
