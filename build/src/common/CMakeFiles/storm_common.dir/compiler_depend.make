# Empty compiler generated dependencies file for storm_common.
# This may be replaced when dependencies are built.
