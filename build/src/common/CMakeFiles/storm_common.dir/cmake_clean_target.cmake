file(REMOVE_RECURSE
  "libstorm_common.a"
)
