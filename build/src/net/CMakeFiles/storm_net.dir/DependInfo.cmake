
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/addr.cpp" "src/net/CMakeFiles/storm_net.dir/addr.cpp.o" "gcc" "src/net/CMakeFiles/storm_net.dir/addr.cpp.o.d"
  "/root/repo/src/net/flow_switch.cpp" "src/net/CMakeFiles/storm_net.dir/flow_switch.cpp.o" "gcc" "src/net/CMakeFiles/storm_net.dir/flow_switch.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/storm_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/storm_net.dir/link.cpp.o.d"
  "/root/repo/src/net/nat.cpp" "src/net/CMakeFiles/storm_net.dir/nat.cpp.o" "gcc" "src/net/CMakeFiles/storm_net.dir/nat.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/storm_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/storm_net.dir/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/storm_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/storm_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/storm_net.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/storm_net.dir/switch.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/storm_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/storm_net.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/storm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
