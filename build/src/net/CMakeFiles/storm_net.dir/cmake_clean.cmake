file(REMOVE_RECURSE
  "CMakeFiles/storm_net.dir/addr.cpp.o"
  "CMakeFiles/storm_net.dir/addr.cpp.o.d"
  "CMakeFiles/storm_net.dir/flow_switch.cpp.o"
  "CMakeFiles/storm_net.dir/flow_switch.cpp.o.d"
  "CMakeFiles/storm_net.dir/link.cpp.o"
  "CMakeFiles/storm_net.dir/link.cpp.o.d"
  "CMakeFiles/storm_net.dir/nat.cpp.o"
  "CMakeFiles/storm_net.dir/nat.cpp.o.d"
  "CMakeFiles/storm_net.dir/node.cpp.o"
  "CMakeFiles/storm_net.dir/node.cpp.o.d"
  "CMakeFiles/storm_net.dir/packet.cpp.o"
  "CMakeFiles/storm_net.dir/packet.cpp.o.d"
  "CMakeFiles/storm_net.dir/switch.cpp.o"
  "CMakeFiles/storm_net.dir/switch.cpp.o.d"
  "CMakeFiles/storm_net.dir/tcp.cpp.o"
  "CMakeFiles/storm_net.dir/tcp.cpp.o.d"
  "libstorm_net.a"
  "libstorm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
