file(REMOVE_RECURSE
  "libstorm_iscsi.a"
)
