# Empty dependencies file for storm_iscsi.
# This may be replaced when dependencies are built.
