file(REMOVE_RECURSE
  "CMakeFiles/storm_iscsi.dir/initiator.cpp.o"
  "CMakeFiles/storm_iscsi.dir/initiator.cpp.o.d"
  "CMakeFiles/storm_iscsi.dir/pdu.cpp.o"
  "CMakeFiles/storm_iscsi.dir/pdu.cpp.o.d"
  "CMakeFiles/storm_iscsi.dir/target.cpp.o"
  "CMakeFiles/storm_iscsi.dir/target.cpp.o.d"
  "libstorm_iscsi.a"
  "libstorm_iscsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_iscsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
