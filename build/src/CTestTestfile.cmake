# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("crypto")
subdirs("net")
subdirs("block")
subdirs("iscsi")
subdirs("fs")
subdirs("cloud")
subdirs("core")
subdirs("services")
subdirs("workload")
