
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active_relay.cpp" "src/core/CMakeFiles/storm_core.dir/active_relay.cpp.o" "gcc" "src/core/CMakeFiles/storm_core.dir/active_relay.cpp.o.d"
  "/root/repo/src/core/attribution.cpp" "src/core/CMakeFiles/storm_core.dir/attribution.cpp.o" "gcc" "src/core/CMakeFiles/storm_core.dir/attribution.cpp.o.d"
  "/root/repo/src/core/passive_relay.cpp" "src/core/CMakeFiles/storm_core.dir/passive_relay.cpp.o" "gcc" "src/core/CMakeFiles/storm_core.dir/passive_relay.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/core/CMakeFiles/storm_core.dir/platform.cpp.o" "gcc" "src/core/CMakeFiles/storm_core.dir/platform.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/storm_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/storm_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/reconstruction.cpp" "src/core/CMakeFiles/storm_core.dir/reconstruction.cpp.o" "gcc" "src/core/CMakeFiles/storm_core.dir/reconstruction.cpp.o.d"
  "/root/repo/src/core/sdn_controller.cpp" "src/core/CMakeFiles/storm_core.dir/sdn_controller.cpp.o" "gcc" "src/core/CMakeFiles/storm_core.dir/sdn_controller.cpp.o.d"
  "/root/repo/src/core/splicer.cpp" "src/core/CMakeFiles/storm_core.dir/splicer.cpp.o" "gcc" "src/core/CMakeFiles/storm_core.dir/splicer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/storm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/storm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/storm_block.dir/DependInfo.cmake"
  "/root/repo/build/src/iscsi/CMakeFiles/storm_iscsi.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/storm_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/storm_cloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
