file(REMOVE_RECURSE
  "CMakeFiles/storm_core.dir/active_relay.cpp.o"
  "CMakeFiles/storm_core.dir/active_relay.cpp.o.d"
  "CMakeFiles/storm_core.dir/attribution.cpp.o"
  "CMakeFiles/storm_core.dir/attribution.cpp.o.d"
  "CMakeFiles/storm_core.dir/passive_relay.cpp.o"
  "CMakeFiles/storm_core.dir/passive_relay.cpp.o.d"
  "CMakeFiles/storm_core.dir/platform.cpp.o"
  "CMakeFiles/storm_core.dir/platform.cpp.o.d"
  "CMakeFiles/storm_core.dir/policy.cpp.o"
  "CMakeFiles/storm_core.dir/policy.cpp.o.d"
  "CMakeFiles/storm_core.dir/reconstruction.cpp.o"
  "CMakeFiles/storm_core.dir/reconstruction.cpp.o.d"
  "CMakeFiles/storm_core.dir/sdn_controller.cpp.o"
  "CMakeFiles/storm_core.dir/sdn_controller.cpp.o.d"
  "CMakeFiles/storm_core.dir/splicer.cpp.o"
  "CMakeFiles/storm_core.dir/splicer.cpp.o.d"
  "libstorm_core.a"
  "libstorm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
