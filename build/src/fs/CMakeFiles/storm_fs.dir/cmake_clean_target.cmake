file(REMOVE_RECURSE
  "libstorm_fs.a"
)
