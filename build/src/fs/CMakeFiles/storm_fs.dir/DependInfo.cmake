
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/layout.cpp" "src/fs/CMakeFiles/storm_fs.dir/layout.cpp.o" "gcc" "src/fs/CMakeFiles/storm_fs.dir/layout.cpp.o.d"
  "/root/repo/src/fs/simext.cpp" "src/fs/CMakeFiles/storm_fs.dir/simext.cpp.o" "gcc" "src/fs/CMakeFiles/storm_fs.dir/simext.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/storm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/storm_block.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
