file(REMOVE_RECURSE
  "CMakeFiles/storm_fs.dir/layout.cpp.o"
  "CMakeFiles/storm_fs.dir/layout.cpp.o.d"
  "CMakeFiles/storm_fs.dir/simext.cpp.o"
  "CMakeFiles/storm_fs.dir/simext.cpp.o.d"
  "libstorm_fs.a"
  "libstorm_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
