# Empty dependencies file for storm_fs.
# This may be replaced when dependencies are built.
