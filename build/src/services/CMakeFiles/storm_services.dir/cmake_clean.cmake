file(REMOVE_RECURSE
  "CMakeFiles/storm_services.dir/encrypted_disk.cpp.o"
  "CMakeFiles/storm_services.dir/encrypted_disk.cpp.o.d"
  "CMakeFiles/storm_services.dir/encryption.cpp.o"
  "CMakeFiles/storm_services.dir/encryption.cpp.o.d"
  "CMakeFiles/storm_services.dir/monitor.cpp.o"
  "CMakeFiles/storm_services.dir/monitor.cpp.o.d"
  "CMakeFiles/storm_services.dir/registry.cpp.o"
  "CMakeFiles/storm_services.dir/registry.cpp.o.d"
  "CMakeFiles/storm_services.dir/replication.cpp.o"
  "CMakeFiles/storm_services.dir/replication.cpp.o.d"
  "CMakeFiles/storm_services.dir/stream_cipher.cpp.o"
  "CMakeFiles/storm_services.dir/stream_cipher.cpp.o.d"
  "libstorm_services.a"
  "libstorm_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
