
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/encrypted_disk.cpp" "src/services/CMakeFiles/storm_services.dir/encrypted_disk.cpp.o" "gcc" "src/services/CMakeFiles/storm_services.dir/encrypted_disk.cpp.o.d"
  "/root/repo/src/services/encryption.cpp" "src/services/CMakeFiles/storm_services.dir/encryption.cpp.o" "gcc" "src/services/CMakeFiles/storm_services.dir/encryption.cpp.o.d"
  "/root/repo/src/services/monitor.cpp" "src/services/CMakeFiles/storm_services.dir/monitor.cpp.o" "gcc" "src/services/CMakeFiles/storm_services.dir/monitor.cpp.o.d"
  "/root/repo/src/services/registry.cpp" "src/services/CMakeFiles/storm_services.dir/registry.cpp.o" "gcc" "src/services/CMakeFiles/storm_services.dir/registry.cpp.o.d"
  "/root/repo/src/services/replication.cpp" "src/services/CMakeFiles/storm_services.dir/replication.cpp.o" "gcc" "src/services/CMakeFiles/storm_services.dir/replication.cpp.o.d"
  "/root/repo/src/services/stream_cipher.cpp" "src/services/CMakeFiles/storm_services.dir/stream_cipher.cpp.o" "gcc" "src/services/CMakeFiles/storm_services.dir/stream_cipher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/storm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/storm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/storm_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/storm_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/iscsi/CMakeFiles/storm_iscsi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/storm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/storm_block.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/storm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/storm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
