# Empty compiler generated dependencies file for storm_services.
# This may be replaced when dependencies are built.
