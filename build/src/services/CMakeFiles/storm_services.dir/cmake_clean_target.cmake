file(REMOVE_RECURSE
  "libstorm_services.a"
)
