file(REMOVE_RECURSE
  "libstorm_workload.a"
)
