file(REMOVE_RECURSE
  "CMakeFiles/storm_workload.dir/fio.cpp.o"
  "CMakeFiles/storm_workload.dir/fio.cpp.o.d"
  "CMakeFiles/storm_workload.dir/ftp.cpp.o"
  "CMakeFiles/storm_workload.dir/ftp.cpp.o.d"
  "CMakeFiles/storm_workload.dir/minidb.cpp.o"
  "CMakeFiles/storm_workload.dir/minidb.cpp.o.d"
  "CMakeFiles/storm_workload.dir/postmark.cpp.o"
  "CMakeFiles/storm_workload.dir/postmark.cpp.o.d"
  "libstorm_workload.a"
  "libstorm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
