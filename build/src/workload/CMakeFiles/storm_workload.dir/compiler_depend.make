# Empty compiler generated dependencies file for storm_workload.
# This may be replaced when dependencies are built.
