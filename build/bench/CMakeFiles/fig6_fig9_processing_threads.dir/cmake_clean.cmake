file(REMOVE_RECURSE
  "CMakeFiles/fig6_fig9_processing_threads.dir/fig6_fig9_processing_threads.cpp.o"
  "CMakeFiles/fig6_fig9_processing_threads.dir/fig6_fig9_processing_threads.cpp.o.d"
  "fig6_fig9_processing_threads"
  "fig6_fig9_processing_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fig9_processing_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
