# Empty compiler generated dependencies file for fig6_fig9_processing_threads.
# This may be replaced when dependencies are built.
