file(REMOVE_RECURSE
  "CMakeFiles/fig10_cpu_encryption.dir/fig10_cpu_encryption.cpp.o"
  "CMakeFiles/fig10_cpu_encryption.dir/fig10_cpu_encryption.cpp.o.d"
  "fig10_cpu_encryption"
  "fig10_cpu_encryption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cpu_encryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
