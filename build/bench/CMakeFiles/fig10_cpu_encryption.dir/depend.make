# Empty dependencies file for fig10_cpu_encryption.
# This may be replaced when dependencies are built.
