# Empty dependencies file for table1_reconstruction.
# This may be replaced when dependencies are built.
