file(REMOVE_RECURSE
  "CMakeFiles/table1_reconstruction.dir/table1_reconstruction.cpp.o"
  "CMakeFiles/table1_reconstruction.dir/table1_reconstruction.cpp.o.d"
  "table1_reconstruction"
  "table1_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
