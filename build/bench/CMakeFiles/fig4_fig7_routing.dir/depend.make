# Empty dependencies file for fig4_fig7_routing.
# This may be replaced when dependencies are built.
