file(REMOVE_RECURSE
  "CMakeFiles/fig4_fig7_routing.dir/fig4_fig7_routing.cpp.o"
  "CMakeFiles/fig4_fig7_routing.dir/fig4_fig7_routing.cpp.o.d"
  "fig4_fig7_routing"
  "fig4_fig7_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fig7_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
