file(REMOVE_RECURSE
  "CMakeFiles/fig13_replication_failover.dir/fig13_replication_failover.cpp.o"
  "CMakeFiles/fig13_replication_failover.dir/fig13_replication_failover.cpp.o.d"
  "fig13_replication_failover"
  "fig13_replication_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_replication_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
