# Empty compiler generated dependencies file for fig13_replication_failover.
# This may be replaced when dependencies are built.
