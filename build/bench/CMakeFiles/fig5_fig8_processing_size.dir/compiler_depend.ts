# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_fig8_processing_size.
