# Empty dependencies file for fig5_fig8_processing_size.
# This may be replaced when dependencies are built.
