file(REMOVE_RECURSE
  "CMakeFiles/fig11_postmark.dir/fig11_postmark.cpp.o"
  "CMakeFiles/fig11_postmark.dir/fig11_postmark.cpp.o.d"
  "fig11_postmark"
  "fig11_postmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_postmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
