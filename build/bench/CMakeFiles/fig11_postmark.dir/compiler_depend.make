# Empty compiler generated dependencies file for fig11_postmark.
# This may be replaced when dependencies are built.
