# Empty dependencies file for encrypted_volumes.
# This may be replaced when dependencies are built.
