file(REMOVE_RECURSE
  "CMakeFiles/encrypted_volumes.dir/encrypted_volumes.cpp.o"
  "CMakeFiles/encrypted_volumes.dir/encrypted_volumes.cpp.o.d"
  "encrypted_volumes"
  "encrypted_volumes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_volumes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
