file(REMOVE_RECURSE
  "CMakeFiles/replicated_database.dir/replicated_database.cpp.o"
  "CMakeFiles/replicated_database.dir/replicated_database.cpp.o.d"
  "replicated_database"
  "replicated_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
