# Empty compiler generated dependencies file for replicated_database.
# This may be replaced when dependencies are built.
