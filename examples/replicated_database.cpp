// Tenant-defined replication middle-box (paper case study 3, Fig. 12):
// a database VM's volume is transparently replicated to two backups; a
// replica is killed mid-run and the database keeps serving transactions.
//
//   $ ./replicated_database
#include <cstdio>

#include "cloud/cloud.hpp"
#include "core/platform.hpp"
#include "services/registry.hpp"
#include "services/replication.hpp"
#include "workload/minidb.hpp"

using namespace storm;

int main() {
  sim::Simulator sim;
  cloud::Cloud cloud(sim, cloud::CloudConfig{});
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud.create_vm("mysql-vm", "acme", 0);
  for (const char* name : {"db-vol", "db-vol-r1", "db-vol-r2"}) {
    if (!cloud.create_volume(name, 100'000).is_ok()) return 1;
  }

  auto policy = core::parse_policy(R"(
tenant acme
volume mysql-vm db-vol
  service replication relay=active replicas=db-vol-r1,db-vol-r2
)");
  Status deployed = error(ErrorCode::kIoError, "pending");
  platform.apply_policy(
      policy.value(),
      [&](Result<std::vector<core::DeploymentHandle>> r) {
        deployed = r.status();
      });
  sim.run();
  if (!deployed.is_ok()) {
    std::fprintf(stderr, "%s\n", deployed.to_string().c_str());
    return 1;
  }
  core::DeploymentHandle deployment =
      platform.find_deployment("mysql-vm", "db-vol");
  auto* replication =
      static_cast<services::ReplicationService*>(deployment.service(0));

  // A database server on the VM, four OLTP clients on other hosts.
  cloud::Vm& db_vm = *cloud.find_vm("mysql-vm");
  workload::MiniDb db(sim, *db_vm.disk());
  db.init([](Status s) {
    if (!s.is_ok()) std::abort();
  });
  sim.run();
  workload::DbServer server(db_vm, db);
  server.start();

  std::vector<std::unique_ptr<workload::OltpClient>> clients;
  sim::Time deadline = sim.now() + sim::seconds(20);
  for (int i = 0; i < 4; ++i) {
    auto& client_vm =
        cloud.create_vm("client" + std::to_string(i), "acme", 1 + i % 3);
    clients.push_back(std::make_unique<workload::OltpClient>(
        client_vm, net::SocketAddr{db_vm.ip(), 3306}, 6));
    clients.back()->start(deadline, [] {});
  }

  // Kill replica r1's iSCSI session at t=10 s (as the paper does).
  sim.schedule_in(sim::seconds(10), [&] {
    auto attachment =
        cloud.find_attachment(deployment.mb_vm(0)->name(), "db-vol-r1");
    if (attachment) {
      std::printf("t=10s: closing iSCSI session of db-vol-r1\n");
      cloud.storage(0).target().close_sessions_for(attachment->iqn);
    }
  });

  sim.run();

  std::uint64_t total = 0;
  for (auto& client : clients) total += client->total_commits();
  std::printf("\n20s run: %llu transactions committed (%.0f TPS)\n",
              static_cast<unsigned long long>(total), total / 20.0);
  std::printf("replicas still in rotation: %zu of 2\n",
              replication->live_replicas());
  std::printf("reads served: primary=%llu replicas=%llu\n",
              static_cast<unsigned long long>(
                  replication->reads_from_primary()),
              static_cast<unsigned long long>(
                  replication->reads_from_replicas()));
  std::printf("writes replicated: %llu, failovers: %llu\n",
              static_cast<unsigned long long>(
                  replication->writes_replicated()),
              static_cast<unsigned long long>(replication->failovers()));

  // Consistency check: primary and the surviving replica hold identical
  // data.
  auto primary = cloud.storage(0).volumes().find_by_name("db-vol");
  auto survivor = cloud.storage(0).volumes().find_by_name("db-vol-r2");
  Bytes p = primary.value()->disk().store().read_sync(8, 64);
  Bytes r = survivor.value()->disk().store().read_sync(8, 64);
  std::printf("surviving replica matches primary: %s\n",
              p == r ? "yes" : "NO (bug)");
  return (p == r && replication->live_replicas() == 1) ? 0 : 1;
}
