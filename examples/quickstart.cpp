// Quickstart: stand up a simulated cloud, write a tenant policy that puts
// a storage access monitor in front of a volume, attach it to a VM, do
// file I/O from the VM, and read the monitor's out-of-VM access log.
//
//   $ ./quickstart
#include <cstdio>
#include <fstream>

#include "cloud/cloud.hpp"
#include "common/log.hpp"
#include "core/platform.hpp"
#include "fs/simext.hpp"
#include "obs/registry.hpp"
#include "services/monitor.hpp"
#include "services/registry.hpp"

using namespace storm;

int main() {
  storm::set_log_level(storm::LogLevel::kInfo);

  // 1. A small cloud: 4 compute hosts, 1 storage host, two networks.
  sim::Simulator sim;
  cloud::Cloud cloud(sim, cloud::CloudConfig{});
  core::StormPlatform storm_platform(cloud);
  services::register_builtin_services(storm_platform);

  // 2. A tenant VM and a volume, formatted with SimExt.
  cloud.create_vm("app-vm", "acme", /*host=*/0);
  auto volume = cloud.create_volume("data-vol", 262'144);  // 128 MB
  if (!volume.is_ok()) {
    std::fprintf(stderr, "create volume: %s\n",
                 volume.status().to_string().c_str());
    return 1;
  }
  fs::SimExt::mkfs(volume.value()->disk().store());

  // 3. The tenant's policy, exactly as a tenant would submit it.
  auto policy = core::parse_policy(R"(
tenant acme
volume app-vm data-vol
  service monitor relay=active watch=/secrets/
)");
  if (!policy.is_ok()) {
    std::fprintf(stderr, "policy: %s\n", policy.status().to_string().c_str());
    return 1;
  }
  Status deployed = error(ErrorCode::kIoError, "pending");
  storm_platform.apply_policy(
      policy.value(),
      [&](Result<std::vector<core::DeploymentHandle>> r) {
        deployed = r.status();
      });
  sim.run();
  std::printf("policy deployed: %s\n", deployed.to_string().c_str());
  if (!deployed.is_ok()) return 1;

  // 4. The VM uses its disk normally — StorM is invisible to it.
  cloud::Vm& vm = *cloud.find_vm("app-vm");
  fs::SimExt fs(sim, *vm.disk());
  fs.mount([](Status s) {
    if (!s.is_ok()) std::abort();
  });
  sim.run();

  auto must = [&](auto op) {
    Status status = error(ErrorCode::kIoError, "pending");
    op([&](Status s) { status = s; });
    sim.run();
    if (!status.is_ok()) {
      std::fprintf(stderr, "fs op: %s\n", status.to_string().c_str());
      std::abort();
    }
  };
  must([&](auto cb) { fs.mkdir("/secrets", cb); });
  must([&](auto cb) { fs.create("/secrets/plan.txt", cb); });
  must([&](auto cb) {
    fs.write_file("/secrets/plan.txt", 0,
                  to_bytes("world domination, obviously"), cb);
  });
  must([&](auto cb) { fs.mkdir("/public", cb); });
  must([&](auto cb) { fs.create("/public/readme", cb); });
  must([&](auto cb) {
    fs.write_file("/public/readme", 0, to_bytes("nothing to see"), cb);
  });

  // 5. Ask the middle-box what it observed.
  core::DeploymentHandle deployment =
      storm_platform.find_deployment("app-vm", "data-vol");
  auto* monitor =
      static_cast<services::MonitorService*>(deployment.service(0));

  std::printf("\nmonitor log (%zu entries), file-level ops reconstructed "
              "from block traffic:\n", monitor->log().size());
  for (const auto& entry : monitor->log()) {
    std::printf("  %s\n", entry.op.to_string().c_str());
  }
  std::printf("\nalerts on watched prefix /secrets/: %zu\n",
              monitor->alerts().size());
  for (const auto& alert : monitor->alerts()) {
    std::printf("  ALERT: %s\n", alert.op.to_string().c_str());
  }

  // 6. Everything above was also recorded by the telemetry subsystem;
  // dump it for inspection (CI smoke-checks this file with jq).
  std::ofstream("quickstart_telemetry.json")
      << sim.telemetry().to_json() << "\n";
  std::printf("\ntelemetry written to quickstart_telemetry.json\n");
  return monitor->alerts().empty() ? 1 : 0;
}
