// Tenant-defined encryption middle-box (paper case study 2): all data is
// AES-256-XTS ciphertext at rest on the provider's storage, with the key
// chosen by the tenant, while the VM sees plaintext — no in-guest agent,
// no volume reformatting.
//
//   $ ./encrypted_volumes
#include <cstdio>

#include "cloud/cloud.hpp"
#include "core/platform.hpp"
#include "crypto/sha256.hpp"
#include "services/registry.hpp"

using namespace storm;

int main() {
  sim::Simulator sim;
  cloud::Cloud cloud(sim, cloud::CloudConfig{});
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud.create_vm("db-vm", "acme", 0);
  auto volume = cloud.create_volume("pii-vol", 100'000);
  if (!volume.is_ok()) return 1;

  // Tenant-chosen key, passed through the policy.
  auto policy = core::parse_policy(R"(
tenant acme
volume db-vm pii-vol
  service encryption relay=active key=000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f
)");
  if (!policy.is_ok()) {
    std::fprintf(stderr, "%s\n", policy.status().to_string().c_str());
    return 1;
  }
  Status deployed = error(ErrorCode::kIoError, "pending");
  platform.apply_policy(
      policy.value(),
      [&](Result<std::vector<core::DeploymentHandle>> r) {
        deployed = r.status();
      });
  sim.run();
  if (!deployed.is_ok()) {
    std::fprintf(stderr, "%s\n", deployed.to_string().c_str());
    return 1;
  }

  // The VM writes customer data.
  cloud::Vm& vm = *cloud.find_vm("db-vm");
  Bytes customer_record = to_bytes(
      "name=Ada Lovelace; card=4000-0000-0000-0002; ssn=078-05-1120 ");
  while (customer_record.size() < 4096) {
    customer_record.push_back('.');
  }
  customer_record.resize(4096);

  bool ok = false;
  vm.disk()->write(1000, customer_record, [&](Status s) { ok = s.is_ok(); });
  sim.run();
  std::printf("VM wrote a 4 KB customer record: %s\n", ok ? "OK" : "FAIL");

  // What the provider's storage actually holds:
  Bytes at_rest = volume.value()->disk().store().read_sync(1000, 8);
  bool leaked = false;
  std::string needle = "Lovelace";
  for (std::size_t i = 0; i + needle.size() <= at_rest.size(); ++i) {
    if (std::equal(needle.begin(), needle.end(), at_rest.begin() + i)) {
      leaked = true;
    }
  }
  std::printf("storage backend sees plaintext: %s\n",
              leaked ? "YES (bad!)" : "no — ciphertext only");
  std::printf("  at-rest sha256: %s\n",
              crypto::digest_hex(crypto::sha256(at_rest)).c_str());
  std::printf("  plaintext sha256: %s\n",
              crypto::digest_hex(crypto::sha256(customer_record)).c_str());

  // And the VM reads its plaintext back, transparently.
  Bytes read_back;
  vm.disk()->read(1000, 8, [&](Status s, Bytes d) {
    if (s.is_ok()) read_back = std::move(d);
  });
  sim.run();
  bool match = read_back == customer_record;
  std::printf("VM reads the record back intact: %s\n",
              match ? "yes" : "NO (bug)");
  return (!leaked && match) ? 0 : 1;
}
