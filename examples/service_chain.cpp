// Service chaining (paper §II): "a tenant concerned about data security
// and audit logging can request both storage monitoring and encryption
// service middle-boxes. StorM chains these middle-boxes so that after the
// storage monitor records the I/O access, the data is passed through the
// encryption box." Plus on-demand scaling: a forwarding box is inserted
// into — and removed from — the live flow by reprogramming the switches.
//
//   $ ./service_chain
#include <cstdio>

#include "cloud/cloud.hpp"
#include "core/platform.hpp"
#include "fs/simext.hpp"
#include "services/monitor.hpp"
#include "services/registry.hpp"

using namespace storm;

int main() {
  sim::Simulator sim;
  cloud::Cloud cloud(sim, cloud::CloudConfig{});
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud.create_vm("audit-vm", "acme", 0);
  auto volume = cloud.create_volume("audit-vol", 262'144);
  if (!volume.is_ok()) return 1;
  fs::SimExt::mkfs(volume.value()->disk().store());

  auto policy = core::parse_policy(R"(
tenant acme
volume audit-vm audit-vol
  service monitor relay=active        # sees plaintext, logs accesses
  service encryption relay=active     # then everything is encrypted
)");
  Status deployed = error(ErrorCode::kIoError, "pending");
  platform.apply_policy(
      policy.value(),
      [&](Result<std::vector<core::DeploymentHandle>> r) {
        deployed = r.status();
      });
  sim.run();
  if (!deployed.is_ok()) {
    std::fprintf(stderr, "%s\n", deployed.to_string().c_str());
    return 1;
  }
  core::DeploymentHandle deployment =
      platform.find_deployment("audit-vm", "audit-vol");
  std::printf("chain deployed: VM -> %s -> %s -> storage\n",
              deployment.spec(0)->type.c_str(),
              deployment.spec(1)->type.c_str());

  cloud::Vm& vm = *cloud.find_vm("audit-vm");
  bool ok = false;
  Bytes record(8 * 512, 0x5C);
  vm.disk()->write(2000, record, [&](Status s) { ok = s.is_ok(); });
  sim.run();
  std::printf("write through the chain: %s\n", ok ? "OK" : "FAIL");

  auto* monitor =
      static_cast<services::MonitorService*>(deployment.service(0));
  std::printf("monitor (box 1) logged %zu accesses — in plaintext order\n",
              monitor->log().size());
  Bytes at_rest = volume.value()->disk().store().read_sync(2000, 8);
  std::printf("backend stores ciphertext: %s\n",
              at_rest != record ? "yes" : "NO (bug)");

  // --- on-demand scaling on the live flow --------------------------------
  core::ServiceSpec extra;
  extra.type = "noop";
  extra.relay = core::RelayMode::kForward;
  Status scaled = deployment.add_middlebox(extra, 1);
  std::printf("\ninserted a forwarding box mid-chain on the live flow: %s\n",
              scaled.to_string().c_str());
  ok = false;
  vm.disk()->write(3000, record, [&](Status s) { ok = s.is_ok(); });
  sim.run();
  std::printf("write through the 3-box chain: %s "
              "(packets via new box: %llu)\n", ok ? "OK" : "FAIL",
              static_cast<unsigned long long>(
                  deployment.mb_vm(1)->node().packets_forwarded()));

  Status removed = deployment.remove_middlebox(1);
  std::printf("removed it again: %s\n", removed.to_string().c_str());
  ok = false;
  vm.disk()->write(4000, record, [&](Status s) { ok = s.is_ok(); });
  sim.run();
  std::printf("write through the restored 2-box chain: %s\n",
              ok ? "OK" : "FAIL");

  Bytes back;
  vm.disk()->read(2000, 8, [&](Status s, Bytes d) {
    if (s.is_ok()) back = std::move(d);
  });
  sim.run();
  std::printf("round-trip intact after all rewiring: %s\n",
              back == record ? "yes" : "NO (bug)");
  return back == record ? 0 : 1;
}
