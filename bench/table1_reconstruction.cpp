// Reproduces paper Tables I and II: the storage access monitor rebuilding
// high-level file operations from block-level accesses.
//
// Scenario (paper §V-B1): an iSCSI volume formatted with an ext-style
// filesystem, ten directories "name0".."name9" each holding "1.img" ..
// "10.img". The monitor middle-box is attached; the tenant VM then issues
// the two file operations of Table II:
//     1*  write /mnt/box/name1/1.img 4096
//     2** read  /mnt/box/name9/7.img 4096
// and the monitor's log (Table I) shows the reconstructed block-level
// access sequence: directory reads, inode_group metadata reads, and the
// data accesses mapped back to file paths — with writes trailing reads
// because of the guest's write-back caching.
#include <cstdio>

#include "bench_common.hpp"
#include "fs/simext.hpp"
#include "services/monitor.hpp"

using namespace storm;
using namespace storm::bench;

int main() {
  TestbedOptions options;
  options.service = "monitor";
  options.volume_sectors = 262'144;  // 128 MB
  // Format before deployment: the monitor builds its initial view from
  // the attached volume, dumpe2fs-style.
  sim::Simulator* sim = nullptr;

  // Build the testbed manually so we can mkfs before the chain deploys.
  cloud::CloudConfig config = testbed_config();
  sim::Simulator simulator;
  sim = &simulator;
  cloud::Cloud cloud(simulator, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);
  cloud::Vm& vm = cloud.create_vm("tenant-vm", "tenant1", 0);
  auto volume = cloud.create_volume("vol1", options.volume_sectors);
  if (!volume.is_ok()) return 1;
  if (!fs::SimExt::mkfs(volume.value()->disk().store()).is_ok()) return 1;

  core::ServiceSpec spec;
  spec.type = "monitor";
  spec.relay = core::RelayMode::kActive;
  core::DeploymentHandle deployment;
  platform.attach_with_chain("tenant-vm", "vol1", {spec},
                             [&](Result<core::DeploymentHandle> r) {
                               if (!r.is_ok()) std::abort();
                               deployment = r.value();
                             });
  simulator.run();
  auto* monitor =
      static_cast<services::MonitorService*>(deployment.service(0));

  // Guest filesystem with write-back caching (the paper points out the
  // block-level write sequence trails the file-op sequence).
  fs::SimExtOptions fs_options;
  fs_options.writeback_delay = sim::milliseconds(200);
  fs::SimExt fs(simulator, *vm.disk(), fs_options);
  fs.mount([](Status s) {
    if (!s.is_ok()) std::abort();
  });
  simulator.run();

  // Build the paper's tree: /box/name0../name9 each with 1.img..10.img.
  auto must = [&](auto op) {
    Status status = error(ErrorCode::kIoError, "unset");
    op([&](Status s) { status = s; });
    sim->run();
    if (!status.is_ok()) {
      std::fprintf(stderr, "setup failed: %s\n", status.to_string().c_str());
      std::abort();
    }
  };
  must([&](auto cb) { fs.mkdir("/box", cb); });
  for (int dir = 0; dir < 10; ++dir) {
    std::string dirname = "/box/name" + std::to_string(dir);
    must([&, dirname](auto cb) { fs.mkdir(dirname, cb); });
    for (int file = 1; file <= 10; ++file) {
      std::string path = dirname + "/" + std::to_string(file) + ".img";
      must([&, path](auto cb) { fs.create(path, cb); });
      must([&, path](auto cb) {
        fs.write_file(path, 0, Bytes(4096, static_cast<std::uint8_t>(file)),
                      cb);
      });
    }
  }
  must([&](auto cb) { fs.flush(cb); });
  fs.drop_caches();  // cold guest cache, as when the VM (re)boots

  // ---- Table II: the two file operations issued in the tenant VM -------
  std::size_t mark = monitor->log().size();
  std::printf("Table II. File operations in the tenant VM\n");
  std::printf("  1*   write /box/name1/1.img 4096\n");
  std::printf("  2**  read  /box/name9/7.img 4096\n");

  must([&](auto cb) {
    fs.write_file("/box/name1/1.img", 0, Bytes(4096, 0xEE), cb);
  });
  Bytes got;
  must([&](auto cb) {
    fs.read_file("/box/name9/7.img", 0, 4096, [&got, cb](Status s, Bytes d) {
      got = std::move(d);
      cb(s);
    });
  });
  must([&](auto cb) { fs.flush(cb); });
  sim->run();

  // ---- Table I: what the monitor reconstructed -------------------------
  std::printf("\nTable I. Reconstructed block-level accesses "
              "(monitor middle-box log)\n");
  std::printf("%-5s %-6s %-34s %8s\n", "ID", "op", "file", "size");
  int id = 0;
  for (std::size_t i = mark; i < monitor->log().size(); ++i) {
    const auto& entry = monitor->log()[i];
    const char* opname =
        (entry.op.kind == core::FileOp::Kind::kWrite ||
         entry.op.kind == core::FileOp::Kind::kMetaWrite)
            ? "write"
            : "read";
    std::printf("%-5d %-6s %-34s %8llu\n", ++id, opname,
                entry.op.path.c_str(),
                static_cast<unsigned long long>(entry.op.size));
  }
  std::printf("\npaper: reads of the directory + inode_group metadata come "
              "first;\n       the writes (delayed by the guest page cache) "
              "trail them,\n       and every data access resolves to its "
              "file path\n");
  return 0;
}
