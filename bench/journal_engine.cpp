// Journal engine throughput and commit latency: group commit vs the
// per-record baseline, on an identical bursty append schedule. Group
// commit stages every record that arrives while an NVRAM write is in
// flight and flushes them as one batch, so bursts cost ~2 writes instead
// of one per record. Reports journal MB/s (simulated time to drain) and
// mean/p99 commit latency from the engine's own telemetry, writes
// BENCH_journal.json, and gates on group commit actually improving both
// throughput and mean latency — plus determinism: two same-seed group
// runs must export byte-identical telemetry.
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "journal/log.hpp"
#include "sim/simulator.hpp"

using namespace storm;

namespace {

constexpr int kRounds = 400;       // bursts
constexpr int kBurst = 8;          // records per burst
constexpr std::size_t kRecord = 4096;  // payload bytes per record
constexpr sim::Duration kGap = sim::microseconds(20);  // burst inter-arrival

struct RunResult {
  double mbps = 0;
  double mean_commit_ns = 0;
  double p99_commit_ns = 0;
  std::uint64_t commits = 0;
  double mean_group_records = 0;
  std::uint64_t bytes = 0;
  std::int64_t elapsed_ns = 0;
  std::string telemetry;
};

RunResult run_mode(bool group_commit, std::uint64_t seed) {
  sim::Simulator sim;
  journal::Config config;
  config.group_commit = group_commit;
  journal::Device device(sim, sim.telemetry().scope("journal."), config);

  Rng rng(seed);
  constexpr int kStreams = 4;
  journal::Stream streams[kStreams];
  std::uint64_t watermarks[kStreams] = {};
  for (auto& s : streams) s = journal::Stream(device);

  RunResult out;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kBurst; ++i) {
      const std::size_t idx = rng.below(kStreams);
      Bytes payload(kRecord);
      for (std::size_t b = 0; b < payload.size(); b += 64) {
        payload[b] = static_cast<std::uint8_t>(rng.next_u32());
      }
      watermarks[idx] += payload.size();
      streams[idx].append({Buf(std::move(payload))}, watermarks[idx],
                          /*boundary=*/true);
      out.bytes += kRecord;
    }
    // Acks arrive between bursts: trim everything committed so far, so
    // checkpointing and segment reclamation run as part of the workload.
    if (round % 16 == 15) {
      for (int s = 0; s < kStreams; ++s) streams[s].trim(watermarks[s]);
    }
    sim.run_until(sim.now() + kGap);
  }
  sim.run();  // drain the flush pipeline

  out.elapsed_ns = static_cast<std::int64_t>(sim.now());
  out.mbps = out.elapsed_ns > 0
                 ? static_cast<double>(out.bytes) * 1e9 /
                       (1024.0 * 1024.0 * static_cast<double>(out.elapsed_ns))
                 : 0.0;
  obs::Registry& reg = sim.telemetry();
  out.mean_commit_ns = reg.histogram("journal.commit_latency_ns").mean();
  out.p99_commit_ns = reg.histogram("journal.commit_latency_ns").percentile(99);
  out.commits = reg.counter("journal.commits").value();
  out.mean_group_records = reg.histogram("journal.group_records").mean();
  out.telemetry = reg.to_json(/*include_spans=*/false);
  return out;
}

}  // namespace

int main() {
  bench::print_header("journal engine: group commit vs per-record baseline");

  const RunResult baseline = run_mode(/*group_commit=*/false, 0xB5);
  const RunResult grouped = run_mode(/*group_commit=*/true, 0xB5);
  const RunResult grouped2 = run_mode(/*group_commit=*/true, 0xB5);
  const bool deterministic = grouped.telemetry == grouped2.telemetry;

  std::printf("baseline: %7.1f MB/s  commits %5llu  mean %7.0f ns  "
              "p99 %7.0f ns\n",
              baseline.mbps,
              static_cast<unsigned long long>(baseline.commits),
              baseline.mean_commit_ns, baseline.p99_commit_ns);
  std::printf("grouped:  %7.1f MB/s  commits %5llu  mean %7.0f ns  "
              "p99 %7.0f ns  (%.1f records/write)\n",
              grouped.mbps, static_cast<unsigned long long>(grouped.commits),
              grouped.mean_commit_ns, grouped.p99_commit_ns,
              grouped.mean_group_records);
  std::printf("same-seed group runs byte-identical telemetry: %s\n",
              deterministic ? "yes" : "NO");

  char json[768];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"journal_group_commit\",\"record_bytes\":%zu,"
      "\"bursts\":%d,\"burst_records\":%d,"
      "\"baseline_mb_s\":%.2f,\"group_mb_s\":%.2f,"
      "\"baseline_mean_commit_ns\":%.0f,\"group_mean_commit_ns\":%.0f,"
      "\"baseline_p99_commit_ns\":%.0f,\"group_p99_commit_ns\":%.0f,"
      "\"baseline_commits\":%llu,\"group_commits\":%llu,"
      "\"group_records_per_write\":%.2f,\"deterministic\":%s}",
      kRecord, kRounds, kBurst, baseline.mbps, grouped.mbps,
      baseline.mean_commit_ns, grouped.mean_commit_ns, baseline.p99_commit_ns,
      grouped.p99_commit_ns,
      static_cast<unsigned long long>(baseline.commits),
      static_cast<unsigned long long>(grouped.commits),
      grouped.mean_group_records, deterministic ? "true" : "false");
  std::printf("%s\n", json);
  std::ofstream("BENCH_journal.json") << json << "\n";

  // Acceptance: group commit must beat the per-record baseline on both
  // throughput and mean commit latency, and the engine is deterministic.
  int rc = 0;
  if (grouped.mbps <= baseline.mbps) {
    std::fprintf(stderr, "FAIL: group commit MB/s %.2f <= baseline %.2f\n",
                 grouped.mbps, baseline.mbps);
    rc = 1;
  }
  if (grouped.mean_commit_ns >= baseline.mean_commit_ns) {
    std::fprintf(stderr,
                 "FAIL: group mean commit %.0f ns >= baseline %.0f ns\n",
                 grouped.mean_commit_ns, baseline.mean_commit_ns);
    rc = 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: same-seed runs diverged\n");
    rc = 1;
  }
  return rc;
}
