// Ablation (paper §V-A note): the routing overhead measured in Figures
// 4/7 is the worst case — every hop on a different physical node. The
// paper finds that careful placement (gateway/middle-box near the VM or
// the target) recovers ~20% of the routing overhead.
//
// This sweep moves the *actual* middle-box host assignment instead of
// scaling link delays: ServiceSpec::host_index pins each box. SDN
// steering always hairpins spliced traffic through the gateways on the
// instance backbone, so co-locating a single box with the tenant VM
// does not shorten the path (its row documents exactly that). What
// placement *can* recover is the box-to-box legs of longer chains:
// both boxes on one host keep the inter-box hop behind that host's
// OVS instead of paying uplink + backbone twice.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

std::vector<std::string> run_point(unsigned threads) {
  print_header(
      "Ablation: middle-box host placement (256 KB, 1 job, MB-FWD)");
  constexpr std::uint32_t kSize = 256 * 1024;
  std::vector<std::string> dumps;

  struct Case {
    const char* label;
    std::vector<int> chain_hosts;  // tenant VM is on host 0
  };
  // The placer's default (-1) spreads boxes away from the VM's host —
  // the paper's worst case. Host 0 co-locates with the tenant VM.
  const Case cases[] = {
      {"1 box, spread (placer)", {-1}},
      {"1 box, co-located w/ VM", {0}},
      {"2 boxes, spread", {1, 2}},
      {"2 boxes, same host", {1, 1}},
      {"2 boxes, both w/ VM", {0, 0}},
  };

  TestbedOptions base_options;
  base_options.threads = threads;
  std::string legacy_dump;
  auto legacy = fio_point(PathMode::kLegacy, kSize, 1, sim::seconds(8),
                          base_options, &legacy_dump);
  dumps.push_back(std::move(legacy_dump));
  std::printf("%-26s %10s %12s %10s %12s\n", "placement", "iops", "lat_ms",
              "overhead", "recovered");
  std::printf("%-26s %10.0f %12.3f %10s %12s\n", "LEGACY (no middle-box)",
              legacy.iops, legacy.mean_latency_ms, "-", "-");

  // `recovered` is relative to the worst case of the same chain length:
  // the fraction of the spread chain's latency overhead that placement
  // alone won back (the paper's ~20% claim).
  double worst_overhead[3] = {0, 0, 0};
  for (const Case& c : cases) {
    TestbedOptions options = base_options;
    options.chain_hosts = c.chain_hosts;
    std::string dump;
    auto fwd = fio_point(PathMode::kForward, kSize, 1, sim::seconds(8),
                         options, &dump);
    dumps.push_back(std::move(dump));
    const std::size_t boxes = c.chain_hosts.size();
    double overhead = fwd.mean_latency_ms / legacy.mean_latency_ms - 1.0;
    if (worst_overhead[boxes] == 0) worst_overhead[boxes] = overhead;
    double recovered =
        worst_overhead[boxes] > 0
            ? (worst_overhead[boxes] - overhead) / worst_overhead[boxes]
            : 0.0;
    std::printf("%-26s %10.0f %12.3f %9.1f%% %11.0f%%\n", c.label, fwd.iops,
                fwd.mean_latency_ms, overhead * 100, recovered * 100);
  }
  std::printf("\npaper: careful gateway/middle-box placement recovers "
              "~20%% of the routing overhead\n");
  return dumps;
}

}  // namespace

int main(int argc, char** argv) {
  return run_thread_sweep(argc, argv, run_point);
}
