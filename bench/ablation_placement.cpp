// Ablation (paper §V-A note): the routing overhead measured in Figures
// 4/7 is the worst case — every hop on a different physical node. The
// paper finds that placing the ingress gateway near the tenant VM and
// the egress gateway near the target recovers ~20% of the routing
// overhead. Our gateways live on the instance backbone (a star), so host
// choice alone does not shorten the path; locality shows up as shorter
// propagation on the instance-network legs, which is what we sweep here.
#include <cstdio>

#include "bench_common.hpp"

using namespace storm;
using namespace storm::bench;

int main() {
  print_header("Ablation: middle-box/gateway placement (256 KB, 1 job, MB-FWD)");
  constexpr std::uint32_t kSize = 256 * 1024;

  struct Case {
    const char* label;
    double locality;  // scale factor on instance-leg propagation
  };
  const Case cases[] = {
      {"worst-case spread (1.0x)", 1.0},
      {"same-rack gateways (0.5x)", 0.5},
      {"co-located gateways (0.25x)", 0.25},
  };

  auto legacy = fio_point(PathMode::kLegacy, kSize, 1);
  std::printf("%-28s %10s %12s %10s %12s\n", "placement", "iops", "lat_ms",
              "overhead", "recovered");
  std::printf("%-28s %10.0f %12.3f %10s %12s\n", "LEGACY (no middle-box)",
              legacy.iops, legacy.mean_latency_ms, "-", "-");

  double worst_overhead = 0;
  for (const Case& c : cases) {
    TestbedOptions options;
    options.cloud.link_delay = static_cast<sim::Duration>(
        testbed_config().link_delay * c.locality);
    auto base = fio_point(PathMode::kLegacy, kSize, 1, sim::seconds(8),
                          options);
    auto fwd = fio_point(PathMode::kForward, kSize, 1, sim::seconds(8),
                         options);
    double overhead = fwd.mean_latency_ms / base.mean_latency_ms - 1.0;
    if (c.locality == 1.0) worst_overhead = overhead;
    double recovered = worst_overhead > 0
                           ? (worst_overhead - overhead) / worst_overhead
                           : 0.0;
    std::printf("%-28s %10.0f %12.3f %9.1f%% %11.0f%%\n", c.label, fwd.iops,
                fwd.mean_latency_ms, overhead * 100, recovered * 100);
  }
  std::printf("\npaper: careful gateway placement recovers ~20%% of the "
              "routing overhead\n");
  return 0;
}
