// Parallel DES core scaling: events/sec and ns/event for the sharded
// kernel at several worker-thread counts, on two scenarios that stress
// the two hot paths of the simulator itself:
//
//   routing     a ring of 8 hosts (one per partition) joined by
//               partition-spanning net::Links; packets circulate with
//               per-hop processing events, so every window mixes local
//               events with cross-partition mailbox traffic.
//   processing  8 hosts (one per partition) churning seeded jobs
//               through a sim::Cpu, with periodic cross-partition
//               reports mailed to partition 0.
//
// Both scenarios run the identical seeded workload at every thread
// count and the merged telemetry dumps must be byte-identical — that
// check always gates. The throughput gate is hardware-aware: the
// speedup floors (>= 2.5x at 8 threads, >= 1.8x at 4) are enforced
// only when the machine actually has that many hardware threads;
// on smaller builders the numbers are report-only.
//
// Writes BENCH_simcore.json. Usage: simcore [--threads 1,4,8]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/buf.hpp"
#include "common/rng.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "obs/registry.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

using namespace storm;

namespace {

constexpr std::uint32_t kPartitions = 8;
constexpr sim::Duration kLookahead = sim::microseconds(20);

struct RunResult {
  std::size_t events = 0;
  double wall_s = 0;
  std::uint64_t violations = 0;
  std::string telemetry;

  double events_per_s() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0;
  }
  double ns_per_event() const {
    return events > 0 ? wall_s * 1e9 / static_cast<double>(events) : 0;
  }
};

sim::ParallelConfig config_for(std::uint32_t threads) {
  sim::ParallelConfig config;
  config.partitions = kPartitions;
  config.threads = threads;
  config.lookahead = kLookahead;
  return config;
}

// --- routing: packet ring over partition-spanning links ---

RunResult run_routing(std::uint32_t threads) {
  sim::Simulator sim(config_for(threads));

  // Ring: link i carries host i (end 0) -> host i+1 (end 1). The
  // propagation delay exceeds the lookahead, as the conservative
  // windows require of every partition-spanning link.
  constexpr sim::Duration kProp = sim::microseconds(25);
  constexpr std::uint64_t kBps = 10ull * 1000 * 1000 * 1000;
  std::vector<std::unique_ptr<net::Link>> links;
  for (std::uint32_t i = 0; i < kPartitions; ++i) {
    links.push_back(
        std::make_unique<net::Link>(sim.executor(i), kBps, kProp));
    links.back()->set_end_executor(1, sim.executor((i + 1) % kPartitions));
  }

  struct Host {
    Rng rng{0};
  };
  auto hosts = std::make_shared<std::vector<Host>>(kPartitions);
  for (std::uint32_t i = 0; i < kPartitions; ++i) {
    (*hosts)[i].rng = Rng(0xC0DE + i);
  }

  // Host j: receive on link (j-1)%P end 1, forward on link j end 0,
  // with a seeded think time and three filler events per hop to model
  // per-packet host work.
  for (std::uint32_t j = 0; j < kPartitions; ++j) {
    net::Link* out = links[j].get();
    net::Link* in = links[(j + kPartitions - 1) % kPartitions].get();
    sim::Executor exec = sim.executor(j);
    in->connect(1, [hosts, j, out, exec](net::Packet pkt) mutable {
      Host& host = (*hosts)[j];
      obs::Registry& reg = exec.telemetry();
      reg.counter("bench.hops").add();
      reg.histogram("bench.think_ns").record(
          static_cast<std::int64_t>(host.rng.below(2000)));
      for (int k = 0; k < 3; ++k) {
        exec.schedule_in(host.rng.below(sim::microseconds(20)),
                         [exec]() mutable {
                           exec.telemetry().counter("bench.filler").add();
                         });
      }
      const sim::Duration think = 100 + host.rng.below(2000);
      exec.schedule_in(think, [out, p = std::move(pkt)]() mutable {
        out->send(0, std::move(p));
      });
    });
  }

  // Inject 48 packets per host, staggered so the ring starts full.
  constexpr int kPacketsPerHost = 48;
  for (std::uint32_t j = 0; j < kPartitions; ++j) {
    sim::Executor exec = sim.executor(j);
    net::Link* out = links[j].get();
    for (int n = 0; n < kPacketsPerHost; ++n) {
      exec.schedule(sim::microseconds(1) + 100 * n, [out] {
        net::Packet pkt;
        pkt.payload = Buf(Bytes(256, 0xAB));
        out->send(0, std::move(pkt));
      });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  RunResult out;
  out.events = sim.run_until(sim::milliseconds(20));
  const auto stop = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(stop - start).count();
  out.violations = sim.lookahead_violations();
  out.telemetry = sim.telemetry_json();
  return out;
}

// --- processing: per-partition CPU job churn with mailed reports ---

RunResult run_processing(std::uint32_t threads) {
  sim::Simulator sim(config_for(threads));

  struct Host {
    Rng rng{0};
    std::unique_ptr<sim::Cpu> cpu;
    std::uint64_t jobs = 0;
  };
  auto hosts = std::make_shared<std::vector<Host>>(kPartitions);
  for (std::uint32_t p = 0; p < kPartitions; ++p) {
    (*hosts)[p].rng = Rng(0xFEED + p);
    (*hosts)[p].cpu = std::make_unique<sim::Cpu>(
        sim.executor(p), "host" + std::to_string(p), 4);
  }

  auto generate = std::make_shared<std::function<void(std::uint32_t)>>();
  *generate = [&sim, hosts, generate](std::uint32_t p) {
    Host& host = (*hosts)[p];
    sim::Executor exec = sim.executor(p);
    const sim::Duration cost = host.rng.between(500, 3000);
    host.cpu->run(cost, [hosts, p, cost, exec, &sim]() mutable {
      Host& h = (*hosts)[p];
      obs::Registry& reg = exec.telemetry();
      reg.counter("bench.jobs").add();
      reg.histogram("bench.job_cost_ns").record(
          static_cast<std::int64_t>(cost));
      if (++h.jobs % 64 == 0 && p != 0) {
        // Cross-partition report: one lookahead plus jitter ahead, so
        // it always lands in a future window of partition 0.
        sim.executor(0).schedule_in(
            kLookahead + h.rng.below(sim::microseconds(5)), [&sim] {
              sim.executor(0).telemetry().counter("bench.reports").add();
            });
      }
    });
    exec.schedule_in(host.rng.between(200, 800),
                     [generate, p] { (*generate)(p); });
  };
  for (std::uint32_t p = 0; p < kPartitions; ++p) {
    sim.executor(p).schedule(sim::microseconds(1) * (p + 1),
                             [generate, p] { (*generate)(p); });
  }

  const auto start = std::chrono::steady_clock::now();
  RunResult out;
  out.events = sim.run_until(sim::milliseconds(25));
  const auto stop = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(stop - start).count();
  out.violations = sim.lookahead_violations();
  out.telemetry = sim.telemetry_json();
  return out;
}

std::vector<std::uint32_t> parse_threads(int argc, char** argv) {
  std::vector<std::uint32_t> threads{1, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads.clear();
      const char* s = argv[i + 1];
      std::uint32_t v = 0;
      for (; *s != '\0'; ++s) {
        if (*s == ',') {
          if (v > 0) threads.push_back(v);
          v = 0;
        } else if (*s >= '0' && *s <= '9') {
          v = v * 10 + static_cast<std::uint32_t>(*s - '0');
        }
      }
      if (v > 0) threads.push_back(v);
    }
  }
  if (threads.empty()) threads = {1, 4, 8};
  return threads;
}

struct Scenario {
  const char* name;
  RunResult (*run)(std::uint32_t);
};

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::uint32_t> thread_counts = parse_threads(argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("sim core scaling: %u partitions, lookahead %llu ns, "
              "hardware threads %u\n",
              kPartitions, static_cast<unsigned long long>(kLookahead), hw);

  const Scenario scenarios[] = {{"routing", run_routing},
                                {"processing", run_processing}};
  int rc = 0;
  std::string json = "{\"bench\":\"simcore\",\"partitions\":" +
                     std::to_string(kPartitions) +
                     ",\"lookahead_ns\":" + std::to_string(kLookahead) +
                     ",\"hardware_threads\":" + std::to_string(hw);

  for (const Scenario& scenario : scenarios) {
    std::map<std::uint32_t, RunResult> results;
    for (std::uint32_t t : thread_counts) {
      results[t] = scenario.run(t);
      const RunResult& r = results[t];
      std::printf("%-10s %2u thread(s): %9zu events  %8.0f ns  "
                  "%10.0f ev/s  %6.2f ms wall\n",
                  scenario.name, t, r.events, r.ns_per_event(),
                  r.events_per_s(), r.wall_s * 1e3);
      if (r.violations != 0) {
        std::fprintf(stderr, "FAIL: %s at %u threads: %llu lookahead "
                     "violations\n", scenario.name, t,
                     static_cast<unsigned long long>(r.violations));
        rc = 1;
      }
    }

    // Determinism is the hard gate everywhere: every thread count must
    // export byte-identical merged telemetry.
    bool deterministic = true;
    const RunResult& base = results.begin()->second;
    for (const auto& [t, r] : results) {
      if (r.telemetry != base.telemetry) {
        deterministic = false;
        std::fprintf(stderr,
                     "FAIL: %s telemetry at %u threads differs from %u\n",
                     scenario.name, t, results.begin()->first);
        rc = 1;
      }
    }
    std::printf("%-10s telemetry byte-identical across thread counts: %s\n",
                scenario.name, deterministic ? "yes" : "NO");

    const double base_eps = results.count(1) ? results[1].events_per_s() : 0;
    auto speedup = [&](std::uint32_t t) {
      return (base_eps > 0 && results.count(t))
                 ? results[t].events_per_s() / base_eps
                 : 0.0;
    };
    const double s4 = speedup(4);
    const double s8 = speedup(8);
    if (s8 > 0) std::printf("%-10s speedup 8t: %.2fx\n", scenario.name, s8);
    if (s4 > 0) std::printf("%-10s speedup 4t: %.2fx\n", scenario.name, s4);
    if (hw >= 8 && results.count(1) && results.count(8) && s8 < 2.5) {
      std::fprintf(stderr, "FAIL: %s 8-thread speedup %.2fx < 2.5x\n",
                   scenario.name, s8);
      rc = 1;
    } else if (hw >= 4 && hw < 8 && results.count(1) && results.count(4) &&
               s4 < 1.8) {
      std::fprintf(stderr, "FAIL: %s 4-thread speedup %.2fx < 1.8x\n",
                   scenario.name, s4);
      rc = 1;
    }

    json += ",\"" + std::string(scenario.name) + "\":{\"threads\":{";
    bool first = true;
    for (const auto& [t, r] : results) {
      if (!first) json += ",";
      first = false;
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "\"%u\":{\"events\":%zu,\"events_per_s\":%.0f,"
                    "\"ns_per_event\":%.1f,\"wall_ms\":%.2f}",
                    t, r.events, r.events_per_s(), r.ns_per_event(),
                    r.wall_s * 1e3);
      json += buf;
    }
    char tail[128];
    std::snprintf(tail, sizeof tail,
                  "},\"speedup_4t\":%.3f,\"speedup_8t\":%.3f,"
                  "\"deterministic\":%s}",
                  s4, s8, deterministic ? "true" : "false");
    json += tail;
  }

  const char* gate = hw >= 8 ? "enforced-8t" : (hw >= 4 ? "enforced-4t"
                                                        : "report-only");
  json += ",\"gate\":\"" + std::string(gate) + "\"}";
  std::printf("%s\n", json.c_str());
  std::ofstream("BENCH_simcore.json") << json << "\n";
  if (rc == 0) std::printf("PASS (gate: %s)\n", gate);
  return rc;
}
