// Ablation (design choice from §III-B): the active relay journals
// received-but-unforwarded PDUs to NVRAM for cross-connection
// consistency. This bench quantifies the journal's footprint and
// demonstrates the recovery path: the upstream session is killed
// mid-stream and replayed from the journal.
#include <cstdio>

#include "bench_common.hpp"
#include "core/active_relay.hpp"

using namespace storm;
using namespace storm::bench;

int main() {
  print_header("Ablation: active-relay NVRAM journal");

  TestbedOptions options;
  options.service = "noop";
  Testbed testbed(PathMode::kActive, options);
  auto& sim = testbed.simulator();
  core::ActiveRelay& relay = *testbed.deployment().active_relay(0);

  // Phase 1: steady-state journal footprint under load.
  workload::FioConfig config;
  config.request_bytes = 64 * 1024;
  config.jobs = 8;
  config.duration = sim::seconds(2);
  workload::FioRunner fio(sim, *testbed.disk(), config);
  std::size_t peak_journal = 0;
  bool done = false;
  fio.start([&](workload::FioResult) { done = true; });
  while (!done) {
    sim.run_until(sim.now() + sim::milliseconds(5));
    peak_journal = std::max(peak_journal, relay.journal_bytes());
    if (sim.empty()) break;
  }
  sim.run();
  std::printf("steady state: peak journal %zu KB, drained to %zu B after "
              "quiesce\n", peak_journal / 1024, relay.journal_bytes());

  // Phase 2: kill the upstream mid-burst, recover, verify the stalled
  // write completes exactly once from the journal.
  int write_state = 0;  // 0 = outstanding, 1 = ok, -1 = failed
  testbed.disk()->write(0, Bytes(128 * 1024, 0xAB), [&](Status s) {
    write_state = s.is_ok() ? 1 : -1;
  });
  sim.run_until(sim.now() + sim::microseconds(300));  // burst in flight
  relay.fail_upstream();
  sim.run();
  std::printf("upstream killed mid-burst: in-flight write %s\n",
              write_state == 0
                  ? "STALLED at the relay (journaled, tenant side alive)"
                  : (write_state > 0 ? "completed before the cut"
                                     : "failed"));

  relay.recover_upstream();
  sim.run();
  std::printf("after recovery the stalled write %s\n",
              write_state > 0 ? "COMPLETED from the journal"
                              : (write_state == 0 ? "is still stalled (bug)"
                                                  : "failed (bug)"));
  if (write_state > 0) {
    Bytes on_disk = testbed.volume()->disk().store().read_sync(0, 256);
    std::printf("on-disk content after replay: %s\n",
                on_disk == Bytes(128 * 1024, 0xAB) ? "byte-exact"
                                                   : "CORRUPT");
  }
  bool ok = false;
  testbed.disk()->write(256, Bytes(64 * 1024, 0xCD),
                        [&](Status s) { ok = s.is_ok(); });
  sim.run();
  std::printf("after journal replay + re-login: new 64 KB write %s\n",
              ok ? "SUCCEEDS" : "FAILS");
  std::printf("journal after recovery: %zu B\n", relay.journal_bytes());
  return ok ? 0 : 1;
}
