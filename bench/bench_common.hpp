// Shared scaffolding for the paper-reproduction benchmarks: stands up a
// fresh simulated cloud per data point and runs fio through one of the
// four data-path configurations the paper compares:
//   LEGACY            direct VM -> storage (no StorM)
//   MB-FWD            spliced through a forwarding-only middle-box
//   MB-PASSIVE-RELAY  spliced + stream-cipher service, passive relay
//   MB-ACTIVE-RELAY   spliced + stream-cipher service, active relay
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud.hpp"
#include "core/platform.hpp"
#include "services/registry.hpp"
#include "workload/fio.hpp"

namespace storm::bench {

enum class PathMode { kLegacy, kForward, kPassive, kActive };

inline const char* to_string(PathMode mode) {
  switch (mode) {
    case PathMode::kLegacy: return "LEGACY";
    case PathMode::kForward: return "MB-FWD";
    case PathMode::kPassive: return "MB-PASSIVE-RELAY";
    case PathMode::kActive: return "MB-ACTIVE-RELAY";
  }
  return "?";
}

/// Testbed defaults tuned to the paper's cluster: 1 GbE links, one SATA
/// volume host (high seek latency, deep NCQ + server page cache), 2-vCPU
/// tenant and middle-box VMs (§V).
inline cloud::CloudConfig testbed_config() {
  cloud::CloudConfig config;
  config.compute_hosts = 4;
  config.link_delay = sim::microseconds(15);
  config.disk_profile.base_latency = sim::microseconds(2500);
  config.disk_profile.bytes_per_second = 800ull * 1024 * 1024;
  config.disk_profile.queue_depth = 64;
  return config;
}

struct TestbedOptions {
  cloud::CloudConfig cloud = testbed_config();
  /// Middle-box / gateway placement: -1 = worst case (paper default:
  /// every hop on a different physical node).
  int mb_host = -1;
  /// Placement-ablation chains: when non-empty, the attach builds one
  /// box per entry (each entry that box's host_index, -1 = placer
  /// default) instead of the single-box chain `mb_host` describes.
  std::vector<int> chain_hosts;
  std::string service = "stream_cipher";  // for relay modes
  std::uint64_t volume_sectors = 1ull * 1024 * 1024;  // 512 MiB
  /// Worker threads for the partitioned kernel. 0 = the classic
  /// single-partition simulator (byte-identical to the historical
  /// testbed). >= 1 partitions the cloud host-per-partition via
  /// cloud::Cloud::parallel_config — the partition count is fixed by
  /// the topology, so any thread count in [1, partitions] produces
  /// byte-identical telemetry.
  unsigned threads = 0;
};

inline sim::ParallelConfig testbed_parallel_config(
    const TestbedOptions& options) {
  if (options.threads == 0) return sim::ParallelConfig{};
  return cloud::Cloud::parallel_config(options.cloud, options.threads);
}

/// One fully wired testbed: cloud, platform, one tenant VM, one volume,
/// attached through the requested path.
class Testbed {
 public:
  Testbed(PathMode mode, TestbedOptions options = {})
      : mode_(mode), options_(options), sim_(testbed_parallel_config(options)),
        cloud_(sim_, options.cloud), platform_(cloud_) {
    services::register_builtin_services(platform_);
    vm_ = &cloud_.create_vm("tenant-vm", "tenant1", 0, 2);
    auto volume = cloud_.create_volume("vol1", options_.volume_sectors);
    if (!volume.is_ok()) {
      throw std::runtime_error(volume.status().to_string());
    }
    volume_ = volume.value();
    attach();
  }

  block::BlockDevice* disk() { return vm_->disk(); }
  cloud::Vm& vm() { return *vm_; }
  sim::Simulator& simulator() { return sim_; }
  cloud::Cloud& cloud() { return cloud_; }
  core::StormPlatform& platform() { return platform_; }
  core::DeploymentHandle deployment() { return deployment_; }
  block::Volume* volume() { return volume_; }

  workload::FioResult run_fio(workload::FioConfig config) {
    // The workload generator lives on the tenant VM's partition, like a
    // real fio process inside the guest.
    workload::FioRunner fio(vm_->node().executor(), *disk(), config);
    workload::FioResult result;
    bool done = false;
    fio.start([&](workload::FioResult r) {
      result = r;
      done = true;
    });
    sim_.run();
    if (!done) throw std::runtime_error("fio did not complete");
    return result;
  }

 private:
  void attach() {
    if (mode_ == PathMode::kLegacy) {
      Status status = error(ErrorCode::kIoError, "attach never finished");
      cloud_.attach_volume(*vm_, "vol1",
                           [&](Status s, cloud::Attachment) { status = s; });
      sim_.run();
      if (!status.is_ok()) throw std::runtime_error(status.to_string());
      return;
    }
    core::ServiceSpec spec;
    switch (mode_) {
      case PathMode::kForward:
        spec.type = "noop";
        spec.relay = core::RelayMode::kForward;
        break;
      case PathMode::kPassive:
        spec.type = options_.service;
        spec.relay = core::RelayMode::kPassive;
        break;
      case PathMode::kActive:
        spec.type = options_.service;
        spec.relay = core::RelayMode::kActive;
        break;
      default:
        break;
    }
    spec.host_index = options_.mb_host;
    std::vector<core::ServiceSpec> chain;
    if (options_.chain_hosts.empty()) {
      chain.push_back(spec);
    } else {
      for (int host : options_.chain_hosts) {
        chain.push_back(spec);
        chain.back().host_index = host;
      }
    }
    Status status = error(ErrorCode::kIoError, "attach never finished");
    platform_.attach_with_chain(
        "tenant-vm", "vol1", std::move(chain),
        [&](Result<core::DeploymentHandle> r) {
          status = r.status();
          if (r.is_ok()) deployment_ = r.value();
        });
    sim_.run();
    if (!status.is_ok()) throw std::runtime_error(status.to_string());
  }

  PathMode mode_;
  TestbedOptions options_;
  sim::Simulator sim_;
  cloud::Cloud cloud_;
  core::StormPlatform platform_;
  cloud::Vm* vm_ = nullptr;
  block::Volume* volume_ = nullptr;
  core::DeploymentHandle deployment_;
};

/// Run one fio data point on a fresh testbed. `telemetry_out`, when
/// given, receives the merged telemetry dump — the byte-identity probe
/// for the --threads sweep.
inline workload::FioResult fio_point(PathMode mode,
                                     std::uint32_t request_bytes,
                                     unsigned jobs,
                                     sim::Duration duration = sim::seconds(8),
                                     TestbedOptions options = {},
                                     std::string* telemetry_out = nullptr) {
  Testbed testbed(mode, options);
  workload::FioConfig config;
  config.request_bytes = request_bytes;
  config.jobs = jobs;
  config.duration = duration;
  workload::FioResult result = testbed.run_fio(config);
  if (telemetry_out != nullptr) {
    *telemetry_out = testbed.simulator().telemetry_json();
  }
  return result;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Dump a simulation's telemetry registry as JSON. Benches write these
/// next to their stdout tables; CI uploads telemetry/*.json as run
/// artifacts. Identically seeded runs produce byte-identical files.
inline void write_telemetry_json(sim::Simulator& sim, const std::string& path,
                                 bool include_spans = false) {
  std::ofstream out(path);
  out << sim.telemetry_json(include_spans) << "\n";
}

/// Sum one counter across every partition's registry. Hot-path metrics
/// are partition-local (see Simulator::telemetry_json); a bench that
/// reads a counter directly must merge the shards itself.
inline std::uint64_t merged_counter(sim::Simulator& sim,
                                    const std::string& name) {
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < sim.partition_count(); ++p) {
    total += sim.executor(p).telemetry().counter(name).value();
  }
  return total;
}

/// Parse a `--threads 1,4,8` flag. Empty result = no flag given.
inline std::vector<unsigned> parse_thread_flag(int argc, char** argv) {
  std::vector<unsigned> threads;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads.clear();
      unsigned v = 0;
      for (const char* s = argv[i + 1]; ; ++s) {
        if (*s == ',' || *s == '\0') {
          threads.push_back(v);
          v = 0;
          if (*s == '\0') break;
        } else if (*s >= '0' && *s <= '9') {
          v = v * 10 + static_cast<unsigned>(*s - '0');
        }
      }
    }
  }
  return threads;
}

/// --threads sweep driver for the paper benches. Without the flag,
/// `body(0)` runs once on the classic single-partition kernel (the
/// historical behavior). With `--threads 1,4,8` the body runs once per
/// count on the partitioned cloud and every telemetry dump it returns
/// must be byte-identical across counts — the determinism contract of
/// the conservative-lookahead kernel, enforced as a hard gate.
inline int run_thread_sweep(
    int argc, char** argv,
    const std::function<std::vector<std::string>(unsigned)>& body) {
  const std::vector<unsigned> counts = parse_thread_flag(argc, argv);
  if (counts.empty()) {
    body(0);
    return 0;
  }
  int rc = 0;
  std::vector<std::string> base;
  unsigned base_threads = 0;
  for (unsigned t : counts) {
    std::printf("--- threads=%u ---\n", t);
    std::vector<std::string> dumps = body(t);
    if (base.empty()) {
      base = std::move(dumps);
      base_threads = t;
      continue;
    }
    if (dumps != base) {
      std::fprintf(stderr,
                   "FAIL: telemetry at %u threads differs from %u threads\n",
                   t, base_threads);
      rc = 1;
    }
  }
  if (rc == 0 && counts.size() > 1) {
    std::printf("telemetry byte-identical across thread counts: yes\n");
  }
  return rc;
}

}  // namespace storm::bench
