// Shared scaffolding for the paper-reproduction benchmarks: stands up a
// fresh simulated cloud per data point and runs fio through one of the
// four data-path configurations the paper compares:
//   LEGACY            direct VM -> storage (no StorM)
//   MB-FWD            spliced through a forwarding-only middle-box
//   MB-PASSIVE-RELAY  spliced + stream-cipher service, passive relay
//   MB-ACTIVE-RELAY   spliced + stream-cipher service, active relay
#pragma once

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>

#include "cloud/cloud.hpp"
#include "core/platform.hpp"
#include "services/registry.hpp"
#include "workload/fio.hpp"

namespace storm::bench {

enum class PathMode { kLegacy, kForward, kPassive, kActive };

inline const char* to_string(PathMode mode) {
  switch (mode) {
    case PathMode::kLegacy: return "LEGACY";
    case PathMode::kForward: return "MB-FWD";
    case PathMode::kPassive: return "MB-PASSIVE-RELAY";
    case PathMode::kActive: return "MB-ACTIVE-RELAY";
  }
  return "?";
}

/// Testbed defaults tuned to the paper's cluster: 1 GbE links, one SATA
/// volume host (high seek latency, deep NCQ + server page cache), 2-vCPU
/// tenant and middle-box VMs (§V).
inline cloud::CloudConfig testbed_config() {
  cloud::CloudConfig config;
  config.compute_hosts = 4;
  config.link_delay = sim::microseconds(15);
  config.disk_profile.base_latency = sim::microseconds(2500);
  config.disk_profile.bytes_per_second = 800ull * 1024 * 1024;
  config.disk_profile.queue_depth = 64;
  return config;
}

struct TestbedOptions {
  cloud::CloudConfig cloud = testbed_config();
  /// Middle-box / gateway placement: -1 = worst case (paper default:
  /// every hop on a different physical node).
  int mb_host = -1;
  std::string service = "stream_cipher";  // for relay modes
  std::uint64_t volume_sectors = 1ull * 1024 * 1024;  // 512 MiB
};

/// One fully wired testbed: cloud, platform, one tenant VM, one volume,
/// attached through the requested path.
class Testbed {
 public:
  Testbed(PathMode mode, TestbedOptions options = {})
      : mode_(mode), options_(options), cloud_(sim_, options.cloud),
        platform_(cloud_) {
    services::register_builtin_services(platform_);
    vm_ = &cloud_.create_vm("tenant-vm", "tenant1", 0, 2);
    auto volume = cloud_.create_volume("vol1", options_.volume_sectors);
    if (!volume.is_ok()) {
      throw std::runtime_error(volume.status().to_string());
    }
    volume_ = volume.value();
    attach();
  }

  block::BlockDevice* disk() { return vm_->disk(); }
  cloud::Vm& vm() { return *vm_; }
  sim::Simulator& simulator() { return sim_; }
  cloud::Cloud& cloud() { return cloud_; }
  core::StormPlatform& platform() { return platform_; }
  core::DeploymentHandle deployment() { return deployment_; }
  block::Volume* volume() { return volume_; }

  workload::FioResult run_fio(workload::FioConfig config) {
    workload::FioRunner fio(sim_, *disk(), config);
    workload::FioResult result;
    bool done = false;
    fio.start([&](workload::FioResult r) {
      result = r;
      done = true;
    });
    sim_.run();
    if (!done) throw std::runtime_error("fio did not complete");
    return result;
  }

 private:
  void attach() {
    if (mode_ == PathMode::kLegacy) {
      Status status = error(ErrorCode::kIoError, "attach never finished");
      cloud_.attach_volume(*vm_, "vol1",
                           [&](Status s, cloud::Attachment) { status = s; });
      sim_.run();
      if (!status.is_ok()) throw std::runtime_error(status.to_string());
      return;
    }
    core::ServiceSpec spec;
    switch (mode_) {
      case PathMode::kForward:
        spec.type = "noop";
        spec.relay = core::RelayMode::kForward;
        break;
      case PathMode::kPassive:
        spec.type = options_.service;
        spec.relay = core::RelayMode::kPassive;
        break;
      case PathMode::kActive:
        spec.type = options_.service;
        spec.relay = core::RelayMode::kActive;
        break;
      default:
        break;
    }
    spec.host_index = options_.mb_host;
    Status status = error(ErrorCode::kIoError, "attach never finished");
    platform_.attach_with_chain(
        "tenant-vm", "vol1", {spec},
        [&](Result<core::DeploymentHandle> r) {
          status = r.status();
          if (r.is_ok()) deployment_ = r.value();
        });
    sim_.run();
    if (!status.is_ok()) throw std::runtime_error(status.to_string());
  }

  PathMode mode_;
  TestbedOptions options_;
  sim::Simulator sim_;
  cloud::Cloud cloud_;
  core::StormPlatform platform_;
  cloud::Vm* vm_ = nullptr;
  block::Volume* volume_ = nullptr;
  core::DeploymentHandle deployment_;
};

/// Run one fio data point on a fresh testbed.
inline workload::FioResult fio_point(PathMode mode,
                                     std::uint32_t request_bytes,
                                     unsigned jobs,
                                     sim::Duration duration = sim::seconds(8),
                                     TestbedOptions options = {}) {
  Testbed testbed(mode, options);
  workload::FioConfig config;
  config.request_bytes = request_bytes;
  config.jobs = jobs;
  config.duration = duration;
  return testbed.run_fio(config);
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Dump a simulation's telemetry registry as JSON. Benches write these
/// next to their stdout tables; CI uploads telemetry/*.json as run
/// artifacts. Identically seeded runs produce byte-identical files.
inline void write_telemetry_json(sim::Simulator& sim, const std::string& path,
                                 bool include_spans = false) {
  std::ofstream out(path);
  out << sim.telemetry().to_json(include_spans) << "\n";
}

}  // namespace storm::bench
