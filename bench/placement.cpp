// Partition-aware placement scaling: the paper testbed as a *parallel*
// simulation. Eight tenants run fio through their own active-relay
// (stream-cipher) chains on a cloud of 8 compute hosts + 2 storage
// hosts; the host-per-partition placement policy (cloud::PlacementPolicy)
// pins every host's components to its own partition, so the scenario is
// 11 partitions (control + 8 compute + 2 storage) of genuinely
// concurrent simulated work.
//
// The same seeded scenario runs at several worker-thread counts:
//   - the merged telemetry must be byte-identical at every count (the
//     conservative-lookahead determinism contract; always a hard gate),
//   - zero lookahead violations (the auto-derived lookahead must cover
//     every partition-spanning link; always a hard gate),
//   - wall-clock speedup floors (>= 2.0x at 8 threads, >= 1.5x at 4)
//     are enforced only when the machine has that many hardware
//     threads; report-only on smaller builders.
//
// Writes BENCH_placement.json. Usage: placement [--threads 1,4,8]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

constexpr unsigned kTenants = 8;
constexpr unsigned kComputeHosts = 8;
constexpr unsigned kStorageHosts = 2;

struct RunResult {
  std::size_t events = 0;
  double wall_s = 0;
  std::uint64_t violations = 0;
  std::uint64_t mailbox_batches = 0;
  std::uint64_t mailbox_posts = 0;
  std::string telemetry;

  double events_per_s() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0;
  }
};

cloud::CloudConfig scenario_config() {
  cloud::CloudConfig config = testbed_config();
  config.compute_hosts = kComputeHosts;
  config.storage_hosts = kStorageHosts;
  return config;
}

RunResult run_scenario(unsigned threads) {
  const cloud::CloudConfig config = scenario_config();
  sim::Simulator sim(cloud::Cloud::parallel_config(config, threads));
  cloud::Cloud cloud(sim, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  // One tenant per compute host, volumes striped over the storage hosts,
  // every volume spliced through an active stream-cipher middle-box (the
  // placer spreads the box to a neighbouring host).
  std::vector<cloud::Vm*> vms;
  for (unsigned t = 0; t < kTenants; ++t) {
    const std::string tenant = "tenant" + std::to_string(t);
    vms.push_back(&cloud.create_vm("vm" + std::to_string(t), tenant,
                                   t % config.compute_hosts, 2));
    const std::string volume = "vol" + std::to_string(t);
    if (!cloud.create_volume(volume, 512 * 1024, t % kStorageHosts)
             .is_ok()) {
      throw std::runtime_error("create_volume failed");
    }
  }
  unsigned attached = 0;
  for (unsigned t = 0; t < kTenants; ++t) {
    core::ServiceSpec spec;
    spec.type = "stream_cipher";
    spec.relay = core::RelayMode::kActive;
    platform.attach_with_chain(
        "vm" + std::to_string(t), "vol" + std::to_string(t), {spec},
        [&attached](Result<core::DeploymentHandle> r) {
          if (!r.is_ok()) {
            throw std::runtime_error("attach: " + r.status().to_string());
          }
          ++attached;
        });
  }
  sim.run();
  if (attached != kTenants) throw std::runtime_error("attachments missing");

  // Every tenant hammers its spliced disk from its own partition.
  std::vector<std::unique_ptr<workload::FioRunner>> runners;
  unsigned finished = 0;
  for (unsigned t = 0; t < kTenants; ++t) {
    workload::FioConfig fio_config;
    fio_config.request_bytes = 64 * 1024;
    fio_config.jobs = 2;
    fio_config.duration = sim::seconds(3);
    fio_config.seed = 0x9E1C + t;
    runners.push_back(std::make_unique<workload::FioRunner>(
        vms[t]->node().executor(), *vms[t]->disk(), fio_config));
    runners.back()->start(
        [&finished](workload::FioResult) { ++finished; });
  }

  const auto start = std::chrono::steady_clock::now();
  RunResult out;
  out.events = sim.run();
  const auto stop = std::chrono::steady_clock::now();
  if (finished != kTenants) throw std::runtime_error("fio incomplete");
  out.wall_s = std::chrono::duration<double>(stop - start).count();
  out.violations = sim.lookahead_violations();
  out.mailbox_batches = sim.mailbox_batches();
  out.mailbox_posts = sim.mailbox_posts();
  out.telemetry = sim.telemetry_json();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> thread_counts = parse_thread_flag(argc, argv);
  if (thread_counts.empty()) thread_counts = {1, 4, 8};
  const unsigned hw = std::thread::hardware_concurrency();
  const std::uint32_t partitions =
      cloud::Cloud::parallel_config(scenario_config(), 1).partitions;
  std::printf("placement scaling: %u tenants over %u partitions "
              "(host-per-partition), hardware threads %u\n",
              kTenants, partitions, hw);

  int rc = 0;
  std::map<unsigned, RunResult> results;
  for (unsigned t : thread_counts) {
    results[t] = run_scenario(t);
    const RunResult& r = results[t];
    std::printf("%2u thread(s): %9zu events  %10.0f ev/s  %7.2f ms wall  "
                "%llu mailbox batches / %llu posts\n",
                t, r.events, r.events_per_s(), r.wall_s * 1e3,
                static_cast<unsigned long long>(r.mailbox_batches),
                static_cast<unsigned long long>(r.mailbox_posts));
    if (r.violations != 0) {
      std::fprintf(stderr, "FAIL: %llu lookahead violations at %u threads\n",
                   static_cast<unsigned long long>(r.violations), t);
      rc = 1;
    }
  }

  // Determinism gates unconditionally: one partition layout, any thread
  // count, byte-identical merged telemetry.
  bool deterministic = true;
  const unsigned base_t = results.begin()->first;
  for (const auto& [t, r] : results) {
    if (r.telemetry != results[base_t].telemetry) {
      deterministic = false;
      std::fprintf(stderr, "FAIL: telemetry at %u threads differs from %u\n",
                   t, base_t);
      rc = 1;
    }
  }
  std::printf("telemetry byte-identical across thread counts: %s\n",
              deterministic ? "yes" : "NO");

  const double base_eps =
      results.count(1) ? results[1].events_per_s() : 0;
  auto speedup = [&](unsigned t) {
    return (base_eps > 0 && results.count(t))
               ? results[t].events_per_s() / base_eps
               : 0.0;
  };
  const double s4 = speedup(4);
  const double s8 = speedup(8);
  if (s8 > 0) std::printf("speedup 8t: %.2fx\n", s8);
  if (s4 > 0) std::printf("speedup 4t: %.2fx\n", s4);
  if (hw >= 8 && results.count(1) && results.count(8) && s8 < 2.0) {
    std::fprintf(stderr, "FAIL: 8-thread speedup %.2fx < 2.0x\n", s8);
    rc = 1;
  } else if (hw >= 4 && hw < 8 && results.count(1) && results.count(4) &&
             s4 < 1.5) {
    std::fprintf(stderr, "FAIL: 4-thread speedup %.2fx < 1.5x\n", s4);
    rc = 1;
  }

  std::uint64_t violations = 0;
  for (const auto& [t, r] : results) {
    if (r.violations > violations) violations = r.violations;
  }
  const char* gate = hw >= 8 ? "enforced-8t"
                             : (hw >= 4 ? "enforced-4t" : "report-only");
  std::string json =
      "{\"bench\":\"placement\",\"tenants\":" + std::to_string(kTenants) +
      ",\"partitions\":" + std::to_string(partitions) +
      ",\"hardware_threads\":" + std::to_string(hw) + ",\"threads\":{";
  bool first = true;
  for (const auto& [t, r] : results) {
    if (!first) json += ",";
    first = false;
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "\"%u\":{\"events\":%zu,\"events_per_s\":%.0f,"
                  "\"wall_ms\":%.2f,\"mailbox_batches\":%llu,"
                  "\"mailbox_posts\":%llu}",
                  t, r.events, r.events_per_s(), r.wall_s * 1e3,
                  static_cast<unsigned long long>(r.mailbox_batches),
                  static_cast<unsigned long long>(r.mailbox_posts));
    json += buf;
  }
  char tail[220];
  std::snprintf(tail, sizeof tail,
                "},\"speedup_4t\":%.3f,\"speedup_8t\":%.3f,"
                "\"deterministic\":%s,\"lookahead_violations\":%llu,"
                "\"gate\":\"%s\"}",
                s4, s8, deterministic ? "true" : "false",
                static_cast<unsigned long long>(violations), gate);
  json += tail;
  std::printf("%s\n", json.c_str());
  std::ofstream("BENCH_placement.json") << json << "\n";
  if (rc == 0) std::printf("PASS (gate: %s)\n", gate);
  return rc;
}
