// Elastic chain scale-out (BENCH_scaleout.json): replica pools for
// middle-box hops under a multi-tenant load.
//
// Phase 1 — capacity: one hot tenant drives six fio flows through a
// stream-cipher hop deployed as a single replica, then as a 3-replica
// pool with consistent-hash flow distribution. The relay VM's single
// virtio queue is the bottleneck, so the pool must buy real throughput:
//   - 3-replica aggregate IOPS >= 1.7x the single replica (hard gate,
//     simulated time, machine-independent),
//   - p99 latency no worse than the single-replica run (hard gate).
//
// Phase 2 — elasticity: 100 tenants (mixed fio + PostMark) run against
// the platform while the QoS-driven autoscaler watches the hot tenant.
// A mid-run burst must trigger at least one scale-up (atomic hash-range
// swaps via swap_rules_by_cookie) and the idle tail at least one
// drain-based scale-down, with
//   - zero failed or dropped writes across every migration (hard gate),
//   - zero PostMark errors (hard gate),
//   - exact-match flow-cache hit rate > 99.99% (hard gate),
//   - byte-identical telemetry at 1/4/8 worker threads and zero
//     lookahead violations (hard gates).
//
// Writes BENCH_scaleout.json. Usage: scaleout [--threads 1,4,8]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/autoscaler.hpp"
#include "fs/simext.hpp"
#include "workload/postmark.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

constexpr unsigned kTenants = 100;
constexpr unsigned kHotFlows = 6;
constexpr unsigned kComputeHosts = 8;
constexpr unsigned kStorageHosts = 2;

cloud::CloudConfig scenario_config() {
  cloud::CloudConfig config = testbed_config();
  config.compute_hosts = kComputeHosts;
  config.storage_hosts = kStorageHosts;
  return config;
}

core::ServiceSpec pooled_spec(unsigned count, unsigned max_count) {
  core::ServiceSpec spec;
  spec.type = "stream_cipher";
  spec.relay = core::RelayMode::kActive;
  spec.replicas.enabled = true;
  spec.replicas.count = count;
  spec.replicas.min_count = 1;
  spec.replicas.max_count = max_count;
  return spec;
}

std::uint64_t failed_ops(const workload::FioResult& r) {
  return r.read_ops + r.write_ops - r.total_ops;
}

// ------------------------------------------------- phase 1: capacity

struct HotResult {
  double aggregate_iops = 0;
  double p99_ms = 0;  // worst flow
  std::uint64_t failed = 0;
};

HotResult run_hot_tenant(unsigned replicas) {
  cloud::CloudConfig config = scenario_config();
  // The capacity phase must make the shared relay the bottleneck that
  // replicas multiply — the middle-box VM's single-queue virtio path
  // (paper §V-A). Everything else gets headroom: a 10 GbE fabric (the
  // tenant's gateway pair and the storage NICs stop binding), a
  // wide-open TCP window (the relay terminates TCP per segment, so ACK
  // clocking is off the table), fast disks, four storage hosts.
  config.link_bps = 10'000'000'000ull;
  config.instance_link_bps = 10'000'000'000ull;
  config.tcp_window = 128 * 1024;
  config.storage_hosts = 4;
  config.disk_profile.base_latency = sim::microseconds(200);
  sim::Simulator sim;
  cloud::Cloud cloud(sim, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  std::vector<cloud::Vm*> vms;
  unsigned attached = 0;
  for (unsigned f = 0; f < kHotFlows; ++f) {
    const std::string name = "hot" + std::to_string(f);
    vms.push_back(
        &cloud.create_vm("vm-" + name, "hot", f % kComputeHosts, 2));
    if (!cloud.create_volume("vol-" + name, 128 * 1024, f % 4).is_ok()) {
      throw std::runtime_error("create_volume failed");
    }
    platform.attach_with_chain(
        "vm-" + name, "vol-" + name, {pooled_spec(replicas, replicas)},
        [&attached](Result<core::DeploymentHandle> r) {
          if (!r.is_ok()) {
            throw std::runtime_error("attach: " + r.status().to_string());
          }
          ++attached;
        });
  }
  sim.run();
  if (attached != kHotFlows) throw std::runtime_error("attach missing");

  std::vector<workload::FioResult> results(kHotFlows);
  unsigned finished = 0;
  std::vector<std::unique_ptr<workload::FioRunner>> runners;
  for (unsigned f = 0; f < kHotFlows; ++f) {
    workload::FioConfig fio;
    fio.request_bytes = 16 * 1024;
    fio.jobs = 8;
    fio.duration = sim::milliseconds(600);
    fio.seed = 0xA11CE + f;
    runners.push_back(std::make_unique<workload::FioRunner>(
        vms[f]->node().executor(), *vms[f]->disk(), fio));
    runners.back()->start([&results, &finished, f](workload::FioResult r) {
      results[f] = r;
      ++finished;
    });
  }
  sim.run();
  if (finished != kHotFlows) throw std::runtime_error("fio incomplete");

  HotResult out;
  for (const auto& r : results) {
    out.aggregate_iops += r.iops;
    if (r.p99_latency_ms > out.p99_ms) out.p99_ms = r.p99_latency_ms;
    out.failed += failed_ops(r);
  }
  return out;
}

// ------------------------------------------------ phase 2: elasticity

struct ElasticResult {
  std::size_t events = 0;
  double wall_s = 0;
  std::uint64_t violations = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t migrations = 0;
  std::uint64_t rule_swaps = 0;
  std::uint64_t failed = 0;
  std::uint64_t postmark_errors = 0;
  double cache_hit_rate = 0;
  std::size_t final_replicas = 0;
  std::size_t parked = 0;
  std::string telemetry;
};

ElasticResult run_elastic(unsigned threads) {
  const cloud::CloudConfig config = scenario_config();
  sim::Simulator sim(cloud::Cloud::parallel_config(config, threads));
  cloud::Cloud cloud(sim, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  // The hot tenant (tenant0) runs three flows through an elastic
  // stream-cipher pool behind a 4 MB/s admission bucket — the throttle
  // telemetry the autoscaler keys on.
  core::QosSpec qos;
  qos.enabled = true;
  qos.rate_bytes_per_sec = 4'000'000;
  qos.burst_bytes = 128 * 1024;
  platform.set_tenant_qos("tenant0", qos);

  constexpr unsigned kHotVms = 3;
  constexpr unsigned kPostmarkTenants = 2;
  // Flow layout: 3 hot flows + light fio tenants + 2 PostMark tenants,
  // 100 tenants total (tenant0 counts once).
  const unsigned light_tenants = kTenants - 1 - kPostmarkTenants;

  std::vector<cloud::Vm*> hot_vms;
  std::vector<cloud::Vm*> light_vms;
  std::vector<cloud::Vm*> pm_vms;
  unsigned attached = 0, expected = 0;
  auto on_attach = [&attached](Result<core::DeploymentHandle> r) {
    if (!r.is_ok()) {
      throw std::runtime_error("attach: " + r.status().to_string());
    }
    ++attached;
  };

  for (unsigned f = 0; f < kHotVms; ++f) {
    const std::string name = "hot" + std::to_string(f);
    hot_vms.push_back(
        &cloud.create_vm("vm-" + name, "tenant0", f % kComputeHosts, 2));
    if (!cloud.create_volume("vol-" + name, 64 * 1024, f % kStorageHosts)
             .is_ok()) {
      throw std::runtime_error("create_volume failed");
    }
    platform.attach_with_chain("vm-" + name, "vol-" + name,
                               {pooled_spec(1, 3)}, on_attach);
    ++expected;
  }
  for (unsigned t = 0; t < light_tenants; ++t) {
    const std::string name = std::to_string(t + 1);
    light_vms.push_back(&cloud.create_vm(
        "vm" + name, "tenant" + name, t % kComputeHosts, 2));
    if (!cloud.create_volume("vol" + name, 20'000, t % kStorageHosts)
             .is_ok()) {
      throw std::runtime_error("create_volume failed");
    }
    core::ServiceSpec spec;
    spec.type = "noop";
    spec.relay = core::RelayMode::kActive;
    platform.attach_with_chain("vm" + name, "vol" + name, {spec},
                               on_attach);
    ++expected;
  }
  for (unsigned p = 0; p < kPostmarkTenants; ++p) {
    const std::string name = std::to_string(light_tenants + 1 + p);
    pm_vms.push_back(&cloud.create_vm("vm" + name, "tenant" + name,
                                      (p + 3) % kComputeHosts, 2));
    if (!cloud.create_volume("vol" + name, 16 * 1024, p % kStorageHosts)
             .is_ok()) {
      throw std::runtime_error("create_volume failed");
    }
    core::ServiceSpec spec;
    spec.type = "noop";
    spec.relay = core::RelayMode::kActive;
    platform.attach_with_chain("vm" + name, "vol" + name, {spec},
                               on_attach);
    ++expected;
  }
  sim.run();
  if (attached != expected) throw std::runtime_error("attach missing");

  // Format the PostMark volumes through their spliced data path.
  std::vector<std::unique_ptr<fs::SimExt>> filesystems;
  for (cloud::Vm* vm : pm_vms) {
    block::MemDisk image(16 * 1024);
    if (!fs::SimExt::mkfs(image).is_ok()) throw std::runtime_error("mkfs");
    const Bytes zero(fs::kBlockSize, 0);
    for (std::uint64_t block = 0; block < 16 * 1024 / fs::kSectorsPerBlock;
         ++block) {
      Bytes content = image.read_sync(block * fs::kSectorsPerBlock,
                                      fs::kSectorsPerBlock);
      if (content == zero) continue;
      bool ok = false;
      vm->disk()->write(block * fs::kSectorsPerBlock, std::move(content),
                        [&](Status s) { ok = s.is_ok(); });
      sim.run();
      if (!ok) throw std::runtime_error("format write failed");
    }
    filesystems.push_back(
        std::make_unique<fs::SimExt>(vm->node().executor(), *vm->disk()));
    filesystems.back()->mount([](Status s) {
      if (!s.is_ok()) throw std::runtime_error("mount: " + s.to_string());
    });
    sim.run();
  }

  // The autoscaler rides the hot tenant's throttle rate.
  core::AutoscalerConfig cfg;
  cfg.tick_interval = sim::milliseconds(10);
  cfg.scale_up_bytes_per_sec = 2'000'000;
  cfg.scale_down_bytes_per_sec = 256 * 1024;
  cfg.sustain_up_ticks = 2;
  cfg.sustain_down_ticks = 4;
  cfg.cooldown = sim::milliseconds(40);
  core::Autoscaler scaler(platform, cfg);
  scaler.watch_tenant("tenant0", "stream_cipher", 1, 3);
  scaler.start();

  // Workloads: the hot burst saturates the 4 MB/s bucket for 120 ms;
  // the light tenants tick along underneath; PostMark churns small
  // files. The burst must scale the pool up; the idle tail must drain
  // it back down.
  std::vector<workload::FioResult> hot_results(kHotVms);
  unsigned hot_done = 0;
  std::vector<std::unique_ptr<workload::FioRunner>> runners;
  for (unsigned f = 0; f < kHotVms; ++f) {
    workload::FioConfig fio;
    fio.request_bytes = 64 * 1024;
    fio.jobs = 2;
    fio.write_ratio = 0.8;
    fio.duration = sim::milliseconds(120);
    fio.seed = 0xB00 + f;
    runners.push_back(std::make_unique<workload::FioRunner>(
        hot_vms[f]->node().executor(), *hot_vms[f]->disk(), fio));
    runners.back()->start(
        [&hot_results, &hot_done, f](workload::FioResult r) {
          hot_results[f] = r;
          ++hot_done;
        });
  }
  std::vector<workload::FioResult> light_results(light_vms.size());
  unsigned light_done = 0;
  for (unsigned t = 0; t < light_vms.size(); ++t) {
    workload::FioConfig fio;
    fio.request_bytes = 8 * 1024;
    fio.jobs = 1;
    fio.duration = sim::milliseconds(60);
    fio.seed = 0x5EED + t;
    runners.push_back(std::make_unique<workload::FioRunner>(
        light_vms[t]->node().executor(), *light_vms[t]->disk(), fio));
    runners.back()->start(
        [&light_results, &light_done, t](workload::FioResult r) {
          light_results[t] = r;
          ++light_done;
        });
  }
  std::vector<workload::PostmarkResult> pm_results(pm_vms.size());
  unsigned pm_done = 0;
  std::vector<std::unique_ptr<workload::PostmarkRunner>> postmarks;
  for (unsigned p = 0; p < pm_vms.size(); ++p) {
    workload::PostmarkConfig pm;
    pm.directories = 4;
    pm.initial_files = 30;
    pm.transactions = 120;
    pm.seed = 0xF11E + p;
    postmarks.push_back(std::make_unique<workload::PostmarkRunner>(
        pm_vms[p]->node().executor(), *filesystems[p], pm));
    postmarks.back()->run(
        [&pm_results, &pm_done, p](workload::PostmarkResult r) {
          pm_results[p] = r;
          ++pm_done;
        });
  }
  sim.schedule_in(sim::milliseconds(320), [&scaler] { scaler.stop(); });

  const auto start = std::chrono::steady_clock::now();
  ElasticResult out;
  // Let every flow populate the exact-match caches (one compulsory miss
  // per flow per switch), then gate the steady-state hit rate — the
  // window that spans every rule swap the autoscaler performs.
  out.events = sim.run_for(sim::milliseconds(10));
  const cloud::Cloud::FlowCacheStats warm = cloud.flow_cache_stats();
  out.events += sim.run();
  const auto stop = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(stop - start).count();
  if (hot_done != kHotVms || light_done != light_vms.size() ||
      pm_done != pm_vms.size()) {
    throw std::runtime_error("workloads incomplete");
  }

  out.violations = sim.lookahead_violations();
  out.scale_ups = scaler.scale_ups();
  out.scale_downs = scaler.scale_downs();
  out.migrations = sim.telemetry().counter("scaleout.migrations").value();
  out.rule_swaps = platform.sdn().rule_swaps();
  for (const auto& r : hot_results) out.failed += failed_ops(r);
  for (const auto& r : light_results) out.failed += failed_ops(r);
  for (const auto& r : pm_results) out.postmark_errors += r.errors;
  const cloud::Cloud::FlowCacheStats total = cloud.flow_cache_stats();
  cloud::Cloud::FlowCacheStats steady;
  steady.hits = total.hits - warm.hits;
  steady.misses = total.misses - warm.misses;
  out.cache_hit_rate = steady.hit_rate();
  if (const core::ReplicaSet* set =
          platform.replica_set("tenant0", "stream_cipher")) {
    out.final_replicas = set->replicas.size();
    out.parked = set->parked.size();
  }
  out.telemetry = sim.telemetry_json();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> thread_counts = parse_thread_flag(argc, argv);
  if (thread_counts.empty()) thread_counts = {1, 4, 8};
  const unsigned hw = std::thread::hardware_concurrency();
  int rc = 0;

  std::printf("scale-out: %u-flow hot tenant, 1 vs 3 replicas\n", kHotFlows);
  const HotResult base = run_hot_tenant(1);
  const HotResult scaled = run_hot_tenant(3);
  const double ratio =
      base.aggregate_iops > 0 ? scaled.aggregate_iops / base.aggregate_iops
                              : 0;
  std::printf("  1 replica : %8.0f IOPS aggregate, p99 %7.2f ms\n",
              base.aggregate_iops, base.p99_ms);
  std::printf("  3 replicas: %8.0f IOPS aggregate, p99 %7.2f ms "
              "(%.2fx)\n",
              scaled.aggregate_iops, scaled.p99_ms, ratio);
  if (ratio < 1.7) {
    std::fprintf(stderr, "FAIL: 3-replica aggregate %.2fx < 1.7x\n", ratio);
    rc = 1;
  }
  if (scaled.p99_ms > base.p99_ms) {
    std::fprintf(stderr, "FAIL: scaled p99 %.2f ms worse than %.2f ms\n",
                 scaled.p99_ms, base.p99_ms);
    rc = 1;
  }
  if (base.failed + scaled.failed != 0) {
    std::fprintf(stderr, "FAIL: capacity phase dropped ops\n");
    rc = 1;
  }

  std::printf("elastic phase: %u tenants (fio + PostMark), autoscaled hot "
              "tenant\n",
              kTenants);
  std::map<unsigned, ElasticResult> results;
  for (unsigned t : thread_counts) {
    results[t] = run_elastic(t);
    const ElasticResult& r = results[t];
    std::printf("%2u thread(s): %9zu events  %7.2f ms wall  ups=%llu "
                "downs=%llu migrations=%llu cache=%.5f\n",
                t, r.events, r.wall_s * 1e3,
                static_cast<unsigned long long>(r.scale_ups),
                static_cast<unsigned long long>(r.scale_downs),
                static_cast<unsigned long long>(r.migrations),
                r.cache_hit_rate);
    if (r.violations != 0) {
      std::fprintf(stderr, "FAIL: %llu lookahead violations at %u threads\n",
                   static_cast<unsigned long long>(r.violations), t);
      rc = 1;
    }
  }
  const ElasticResult& first = results.begin()->second;
  if (first.scale_ups < 1) {
    std::fprintf(stderr, "FAIL: burst never scaled the pool up\n");
    rc = 1;
  }
  if (first.scale_downs < 1) {
    std::fprintf(stderr, "FAIL: idle tail never scaled the pool down\n");
    rc = 1;
  }
  if (first.migrations < 1) {
    std::fprintf(stderr, "FAIL: rebalancing moved no flows\n");
    rc = 1;
  }
  if (first.failed != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu failed/dropped ops across scale events\n",
                 static_cast<unsigned long long>(first.failed));
    rc = 1;
  }
  if (first.postmark_errors != 0) {
    std::fprintf(stderr, "FAIL: PostMark saw %llu errors\n",
                 static_cast<unsigned long long>(first.postmark_errors));
    rc = 1;
  }
  if (first.cache_hit_rate <= 0.9999) {
    std::fprintf(stderr, "FAIL: flow-cache hit rate %.6f <= 0.9999\n",
                 first.cache_hit_rate);
    rc = 1;
  }

  bool deterministic = true;
  const unsigned base_t = results.begin()->first;
  for (const auto& [t, r] : results) {
    if (r.telemetry != results[base_t].telemetry) {
      deterministic = false;
      std::fprintf(stderr, "FAIL: telemetry at %u threads differs from %u\n",
                   t, base_t);
      rc = 1;
    }
  }
  std::printf("telemetry byte-identical across thread counts: %s\n",
              deterministic ? "yes" : "NO");

  const char* gate = hw >= 8 ? "enforced-8t"
                             : (hw >= 4 ? "enforced-4t" : "report-only");
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"bench\":\"scaleout\",\"tenants\":%u,\"hot_flows\":%u,"
      "\"baseline\":{\"aggregate_iops\":%.0f,\"p99_ms\":%.3f},"
      "\"scaled\":{\"replicas\":3,\"aggregate_iops\":%.0f,\"p99_ms\":%.3f},"
      "\"iops_ratio\":%.3f,\"elastic\":{\"scale_ups\":%llu,"
      "\"scale_downs\":%llu,\"migrations\":%llu,\"rule_swaps\":%llu,"
      "\"failed_ops\":%llu,\"postmark_errors\":%llu,"
      "\"cache_hit_rate\":%.6f,\"final_replicas\":%zu,\"parked\":%zu},",
      kTenants, kHotFlows, base.aggregate_iops, base.p99_ms,
      scaled.aggregate_iops, scaled.p99_ms, ratio,
      static_cast<unsigned long long>(first.scale_ups),
      static_cast<unsigned long long>(first.scale_downs),
      static_cast<unsigned long long>(first.migrations),
      static_cast<unsigned long long>(first.rule_swaps),
      static_cast<unsigned long long>(first.failed),
      static_cast<unsigned long long>(first.postmark_errors),
      first.cache_hit_rate, first.final_replicas, first.parked);
  std::string json = buf;
  json += "\"threads\":{";
  bool first_entry = true;
  for (const auto& [t, r] : results) {
    if (!first_entry) json += ",";
    first_entry = false;
    std::snprintf(buf, sizeof buf,
                  "\"%u\":{\"events\":%zu,\"wall_ms\":%.2f}", t, r.events,
                  r.wall_s * 1e3);
    json += buf;
  }
  std::uint64_t violations = 0;
  for (const auto& [t, r] : results) {
    if (r.violations > violations) violations = r.violations;
  }
  std::snprintf(buf, sizeof buf,
                "},\"deterministic\":%s,\"lookahead_violations\":%llu,"
                "\"gate\":\"%s\"}",
                deterministic ? "true" : "false",
                static_cast<unsigned long long>(violations), gate);
  json += buf;
  std::printf("%s\n", json.c_str());
  std::ofstream("BENCH_scaleout.json") << json << "\n";
  if (rc == 0) std::printf("PASS (gate: %s)\n", gate);
  return rc;
}
