// Reproduces paper Figures 5 and 8: middle-box processing overhead vs
// I/O size. A stream-cipher service runs in the middle-box; the three
// interception approaches are compared (all normalized to MB-FWD):
//   MB-FWD            forwarding only, no interception (baseline = 1.0)
//   MB-PASSIVE-RELAY  per-packet hook + copies, cipher inline
//   MB-ACTIVE-RELAY   split-TCP + immediate ACK, cipher off the ACK path
//
// Paper reference points (normalized to MB-FWD):
//   Fig. 5 IOPS    : ACTIVE 1.01 / 1.00 / 1.06 / 1.14; PASSIVE 3-13% below
//   Fig. 8 latency : ACTIVE 0.98 / 1.01 / 0.94 / 0.89
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace storm;
using namespace storm::bench;

int main() {
  const std::vector<std::uint32_t> sizes = {4 * 1024, 16 * 1024, 64 * 1024,
                                            256 * 1024};
  print_header("Figure 5 + 8: processing overhead vs I/O size");
  std::printf("%-8s %10s %10s %10s | %9s %9s | %9s %9s\n", "io_size",
              "fwd_iops", "pass_iops", "act_iops", "pass_n", "act_n",
              "pass_lat", "act_lat");
  for (std::uint32_t size : sizes) {
    auto fwd = fio_point(PathMode::kForward, size, 1);
    auto passive = fio_point(PathMode::kPassive, size, 1);
    auto active = fio_point(PathMode::kActive, size, 1);
    std::printf("%-8u %10.0f %10.0f %10.0f | %9.2f %9.2f | %9.2f %9.2f\n",
                size / 1024, fwd.iops, passive.iops, active.iops,
                passive.iops / fwd.iops, active.iops / fwd.iops,
                passive.mean_latency_ms / fwd.mean_latency_ms,
                active.mean_latency_ms / fwd.mean_latency_ms);
  }
  std::printf("\npaper Fig.5 norm IOPS: ACTIVE 1.01 1.00 1.06 1.14; "
              "PASSIVE ~0.97..0.87\n");
  std::printf("paper Fig.8 norm lat : ACTIVE 0.98 1.01 0.94 0.89\n");
  return 0;
}
