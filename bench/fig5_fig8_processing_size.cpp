// Reproduces paper Figures 5 and 8: middle-box processing overhead vs
// I/O size. A stream-cipher service runs in the middle-box; the three
// interception approaches are compared (all normalized to MB-FWD):
//   MB-FWD            forwarding only, no interception (baseline = 1.0)
//   MB-PASSIVE-RELAY  per-packet hook + copies, cipher inline
//   MB-ACTIVE-RELAY   split-TCP + immediate ACK, cipher off the ACK path
//
// Paper reference points (normalized to MB-FWD):
//   Fig. 5 IOPS    : ACTIVE 1.01 / 1.00 / 1.06 / 1.14; PASSIVE 3-13% below
//   Fig. 8 latency : ACTIVE 0.98 / 1.01 / 0.94 / 0.89
//
// After the table, one MB-ACTIVE run is re-executed with command tracing
// and a per-layer latency breakdown is emitted as JSON (stdout + file):
// every traced command's root span carries telescoping hop events
// (issue -> mb.<vm>.cmd -> target.cmd -> target.rsp -> mb.<vm>.rsp ->
// complete), so the summed hop durations must equal the end-to-end
// latency — the self-check fails loudly if they diverge by more than 1%.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/registry.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

struct Breakdown {
  // Hop label pairs ("issue -> mb.X.cmd") in first-seen order, with the
  // total sim-time spent in that leg across all traced commands.
  std::vector<std::pair<std::string, std::uint64_t>> legs;
  std::uint64_t spans = 0;
  std::uint64_t sum_hop_ns = 0;
  std::uint64_t end_to_end_ns = 0;
};

Breakdown per_layer_breakdown(const obs::Tracer& tracer) {
  Breakdown out;
  std::map<std::string, std::size_t> index;
  for (const obs::Span& span : tracer.spans()) {
    if (!span.name.starts_with("cmd.") || !span.ended) continue;
    if (span.events.size() < 2) continue;
    ++out.spans;
    out.end_to_end_ns += span.end - span.start;
    for (std::size_t i = 0; i + 1 < span.events.size(); ++i) {
      const obs::SpanEvent& a = span.events[i];
      const obs::SpanEvent& b = span.events[i + 1];
      std::string leg = a.label + " -> " + b.label;
      auto [it, inserted] = index.emplace(leg, out.legs.size());
      if (inserted) out.legs.emplace_back(leg, 0);
      out.legs[it->second].second += b.at - a.at;
      out.sum_hop_ns += b.at - a.at;
    }
  }
  return out;
}

std::string breakdown_json(std::uint32_t io_size, const Breakdown& b) {
  std::string json = "{\"figure\":\"fig5_fig8\",\"mode\":\"MB-ACTIVE-RELAY\","
                     "\"io_size\":" + std::to_string(io_size) +
                     ",\"commands\":" + std::to_string(b.spans) + ",\"layers\":[";
  for (std::size_t i = 0; i < b.legs.size(); ++i) {
    if (i) json += ",";
    json += "{\"leg\":\"" + b.legs[i].first +
            "\",\"total_ns\":" + std::to_string(b.legs[i].second) + "}";
  }
  json += "],\"sum_hop_ns\":" + std::to_string(b.sum_hop_ns) +
          ",\"end_to_end_ns\":" + std::to_string(b.end_to_end_ns) + "}";
  return json;
}

std::vector<std::string> run_table(unsigned threads) {
  TestbedOptions options;
  options.threads = threads;
  std::vector<std::string> dumps;
  const std::vector<std::uint32_t> sizes = {4 * 1024, 16 * 1024, 64 * 1024,
                                            256 * 1024};
  print_header("Figure 5 + 8: processing overhead vs I/O size");
  std::printf("%-8s %10s %10s %10s | %9s %9s | %9s %9s\n", "io_size",
              "fwd_iops", "pass_iops", "act_iops", "pass_n", "act_n",
              "pass_lat", "act_lat");
  for (std::uint32_t size : sizes) {
    std::string fwd_dump, passive_dump, active_dump;
    auto fwd = fio_point(PathMode::kForward, size, 1, sim::seconds(8),
                         options, &fwd_dump);
    auto passive = fio_point(PathMode::kPassive, size, 1, sim::seconds(8),
                             options, &passive_dump);
    auto active = fio_point(PathMode::kActive, size, 1, sim::seconds(8),
                            options, &active_dump);
    dumps.push_back(std::move(fwd_dump));
    dumps.push_back(std::move(passive_dump));
    dumps.push_back(std::move(active_dump));
    std::printf("%-8u %10.0f %10.0f %10.0f | %9.2f %9.2f | %9.2f %9.2f\n",
                size / 1024, fwd.iops, passive.iops, active.iops,
                passive.iops / fwd.iops, active.iops / fwd.iops,
                passive.mean_latency_ms / fwd.mean_latency_ms,
                active.mean_latency_ms / fwd.mean_latency_ms);
  }
  std::printf("\npaper Fig.5 norm IOPS: ACTIVE 1.01 1.00 1.06 1.14; "
              "PASSIVE ~0.97..0.87\n");
  std::printf("paper Fig.8 norm lat : ACTIVE 0.98 1.01 0.94 0.89\n");
  return dumps;
}

}  // namespace

int main(int argc, char** argv) {
  const int sweep_rc = run_thread_sweep(argc, argv, run_table);
  if (sweep_rc != 0) return sweep_rc;

  // --- per-layer latency breakdown from the telemetry trace spans ---
  // Always on the classic single-partition kernel: command-trace span
  // assembly stitches events from every hop (initiator, relay, target)
  // onto one root span, which needs the single shared registry —
  // partitioned runs keep registries partition-local and skip the
  // cross-hop stamps.
  const std::uint32_t kBreakdownIoSize = 64 * 1024;
  Testbed testbed(PathMode::kActive);
  workload::FioConfig config;
  config.request_bytes = kBreakdownIoSize;
  config.jobs = 1;
  config.duration = sim::seconds(1);
  testbed.run_fio(config);

  Breakdown b = per_layer_breakdown(testbed.simulator().telemetry().tracer());
  std::string json = breakdown_json(kBreakdownIoSize, b);
  print_header("per-layer breakdown (MB-ACTIVE-RELAY, 64 KiB)");
  std::printf("%s\n", json.c_str());
  std::ofstream("fig5_fig8_breakdown.json") << json << "\n";
  write_telemetry_json(testbed.simulator(), "fig5_fig8_telemetry.json");

  // Self-check: telescoping hop events must reconstruct the end-to-end
  // latency. Tolerate 1% (criterion); in practice they match exactly
  // because the first/last events coincide with span start/end.
  const double e2e = static_cast<double>(b.end_to_end_ns);
  const double diff = e2e > static_cast<double>(b.sum_hop_ns)
                          ? e2e - static_cast<double>(b.sum_hop_ns)
                          : static_cast<double>(b.sum_hop_ns) - e2e;
  if (b.spans == 0 || (e2e > 0 && diff / e2e > 0.01)) {
    std::fprintf(stderr,
                 "FAIL: hop sum %llu ns vs end-to-end %llu ns (>1%% apart, "
                 "%llu spans)\n",
                 static_cast<unsigned long long>(b.sum_hop_ns),
                 static_cast<unsigned long long>(b.end_to_end_ns),
                 static_cast<unsigned long long>(b.spans));
    return 1;
  }
  std::printf("hop-sum check: %llu commands, sum %llu ns == e2e %llu ns\n",
              static_cast<unsigned long long>(b.spans),
              static_cast<unsigned long long>(b.sum_hop_ns),
              static_cast<unsigned long long>(b.end_to_end_ns));
  return 0;
}
