// Reproduces paper Figure 11: PostMark component rates with encryption
// performed by the tenant VM vs by the storage middle-box. The paper
// reports the middle-box solution improving every component by 23-34%
// (1.34x read/append/create/delete ops, 1.29x read MB/s, 1.23x write
// MB/s) because outsourcing the cipher stops dm-crypt from blocking
// application threads in the guest.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "fs/simext.hpp"
#include "services/encrypted_disk.hpp"
#include "workload/postmark.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

workload::PostmarkResult run_case(bool tenant_side, unsigned threads,
                                  std::string* telemetry_out) {
  TestbedOptions options;
  options.threads = threads;
  options.service = "encryption";
  options.volume_sectors = 2ull * 1024 * 1024;
  // The mail-store volume is warmer than the fio volume (small working
  // set in the server cache): op latency is transport-dominated, which is
  // the regime where dm-crypt's blocking shows (paper §V-B2).
  options.cloud.disk_profile.base_latency = sim::microseconds(500);
  Testbed testbed(tenant_side ? PathMode::kLegacy : PathMode::kActive,
                  options);
  auto& sim = testbed.simulator();

  block::BlockDevice* disk = testbed.disk();
  std::unique_ptr<services::EncryptedDisk> dmcrypt;
  if (tenant_side) {
    // dm-crypt in the guest: cipher work contends with PostMark's
    // "application" on the 2 tenant vCPUs, and writes block on it.
    services::EncryptedDiskConfig config;
    dmcrypt = std::make_unique<services::EncryptedDisk>(
        *testbed.disk(), testbed.vm().cpu(), Bytes(64, 0x24), config);
    disk = dmcrypt.get();
  }
  // Format through the data path.
  block::MemDisk image(options.volume_sectors);
  if (!fs::SimExt::mkfs(image).is_ok()) throw std::runtime_error("mkfs");
  const Bytes zero(fs::kBlockSize, 0);
  for (std::uint64_t block = 0;
       block < options.volume_sectors / fs::kSectorsPerBlock; ++block) {
    Bytes content =
        image.read_sync(block * fs::kSectorsPerBlock, fs::kSectorsPerBlock);
    if (content == zero) continue;
    bool ok = false;
    disk->write(block * fs::kSectorsPerBlock, std::move(content),
                [&](Status s) { ok = s.is_ok(); });
    sim.run();
    if (!ok) throw std::runtime_error("format write failed");
  }
  // The filesystem and workload both live on the tenant VM's partition.
  fs::SimExt fs(testbed.vm().node().executor(), *disk);
  fs.mount([](Status s) {
    if (!s.is_ok()) throw std::runtime_error("mount: " + s.to_string());
  });
  sim.run();

  // PostMark itself costs tenant CPU per transaction (the mail-server
  // "application work" the cipher competes with).
  workload::PostmarkConfig config;
  config.directories = 10;
  config.initial_files = 150;
  config.transactions = 1200;
  config.min_file_bytes = 8 * 1024;
  config.max_file_bytes = 128 * 1024;
  config.append_bytes = 32 * 1024;
  workload::PostmarkRunner postmark(testbed.vm().node().executor(), fs,
                                    config);
  workload::PostmarkResult result;
  bool done = false;
  postmark.run([&](workload::PostmarkResult r) {
    result = r;
    done = true;
  });
  sim.run();
  if (!done || result.errors > 0) {
    throw std::runtime_error("postmark failed (errors=" +
                             std::to_string(result.errors) + ")");
  }
  if (telemetry_out != nullptr) *telemetry_out = sim.telemetry_json();
  return result;
}

std::vector<std::string> run_point(unsigned threads) {
  print_header("Figure 11: PostMark, tenant-VM vs middle-box encryption");
  std::vector<std::string> dumps(2);
  workload::PostmarkResult vm_side = run_case(true, threads, &dumps[0]);
  workload::PostmarkResult mb_side = run_case(false, threads, &dumps[1]);

  auto row = [](const char* label, double vm_value, double mb_value) {
    std::printf("%-18s %12.1f %12.1f %10.2fx\n", label, vm_value, mb_value,
                mb_value / vm_value);
  };
  std::printf("%-18s %12s %12s %10s\n", "component", "by-VM", "by-MB",
              "speedup");
  row("read ops/s", vm_side.read_ops_per_s, mb_side.read_ops_per_s);
  row("append ops/s", vm_side.append_ops_per_s, mb_side.append_ops_per_s);
  row("create ops/s", vm_side.create_ops_per_s, mb_side.create_ops_per_s);
  row("delete ops/s", vm_side.delete_ops_per_s, mb_side.delete_ops_per_s);
  row("read MB/s", vm_side.read_mb_per_s, mb_side.read_mb_per_s);
  row("write MB/s", vm_side.write_mb_per_s, mb_side.write_mb_per_s);
  std::printf("\npaper Fig.11 speedups: 1.34 1.34 1.34 1.34 1.29 1.23\n");
  return dumps;
}

}  // namespace

int main(int argc, char** argv) {
  return run_thread_sweep(argc, argv, run_point);
}
