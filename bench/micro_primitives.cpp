// Real-time (wall-clock) microbenchmarks of the primitives on the StorM
// data path, via google-benchmark: ciphers, digests, PDU and packet
// codecs, NAT translation and flow-table matching. These measure this
// host's actual throughput — the simulation's cost model constants
// (ns/byte, per-PDU) can be sanity-checked against them.
//
// After the google-benchmark suite, a datapath copy-efficiency bench runs
// the fig5 64 KiB sequential-write path (MB-ACTIVE-RELAY, stream cipher)
// and reports copied-bytes-per-delivered-byte from the net.bytes_copied
// ledger plus host wall-clock per op, written to BENCH_datapath.json.
// Pass --datapath-only to skip the google-benchmark suite (CI perf smoke).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "common/buf.hpp"
#include "common/hash.hpp"
#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "iscsi/pdu.hpp"
#include "net/flow_switch.hpp"
#include "net/nat.hpp"
#include "net/packet.hpp"
#include "obs/registry.hpp"

namespace {

using namespace storm;

Bytes make_data(std::size_t n) {
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131);
  }
  return data;
}

void BM_Aes256XtsEncryptSector(benchmark::State& state) {
  Bytes key(32, 0x24);
  crypto::AesXts xts(key, key);
  Bytes sector = make_data(512);
  Bytes out(512);
  std::uint64_t n = 0;
  for (auto _ : state) {
    xts.encrypt_sector(n++, sector, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_Aes256XtsEncryptSector);

void BM_ChaCha20Crypt(benchmark::State& state) {
  Bytes key(32, 0x42), nonce(12, 0);
  Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  Bytes out(data.size());
  for (auto _ : state) {
    crypto::chacha20_crypt(key, nonce, 0, data, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20Crypt)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto digest = crypto::sha256(data);
    benchmark::DoNotOptimize(digest.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(65536);

void BM_Crc32(benchmark::State& state) {
  Bytes data = make_data(65536);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          65536);
}
BENCHMARK(BM_Crc32);

void BM_PduSerializeParse(benchmark::State& state) {
  iscsi::Pdu pdu = iscsi::make_data_out(
      7, 0, make_data(static_cast<std::size_t>(state.range(0))), true);
  for (auto _ : state) {
    Bytes wire = iscsi::serialize(pdu);
    auto parsed = iscsi::parse_pdu(
        std::span<const std::uint8_t>(wire.data() + 4, wire.size() - 4));
    benchmark::DoNotOptimize(parsed.is_ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PduSerializeParse)->Arg(4096)->Arg(65536);

void BM_PacketCodec(benchmark::State& state) {
  net::Packet pkt;
  pkt.ip.src = net::Ipv4Addr::from_string("10.1.0.1");
  pkt.ip.dst = net::Ipv4Addr::from_string("10.1.1.1");
  pkt.tcp.src_port = 40000;
  pkt.tcp.dst_port = 3260;
  pkt.payload = make_data(1460);
  for (auto _ : state) {
    Bytes wire = net::serialize(pkt);
    net::Packet back = net::parse_packet(wire);
    benchmark::DoNotOptimize(back.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1460);
}
BENCHMARK(BM_PacketCodec);

void BM_NatTranslateConntrack(benchmark::State& state) {
  net::NatEngine nat;
  net::NatRule rule;
  rule.match_dst_port = 3260;
  rule.dnat_ip = net::Ipv4Addr::from_string("10.2.0.5");
  nat.add_rule(rule);
  net::Packet pkt;
  pkt.ip.src = net::Ipv4Addr::from_string("10.1.0.1");
  pkt.ip.dst = net::Ipv4Addr::from_string("10.1.1.1");
  pkt.tcp.src_port = 40000;
  pkt.tcp.dst_port = 3260;
  nat.translate(pkt);  // create the conntrack entry
  for (auto _ : state) {
    net::Packet p;
    p.ip.src = net::Ipv4Addr::from_string("10.1.0.1");
    p.ip.dst = net::Ipv4Addr::from_string("10.1.1.1");
    p.tcp.src_port = 40000;
    p.tcp.dst_port = 3260;
    benchmark::DoNotOptimize(nat.translate(p));
  }
}
BENCHMARK(BM_NatTranslateConntrack);

void BM_FlowMatch(benchmark::State& state) {
  net::FlowMatch match;
  match.src_ip = net::Ipv4Addr::from_string("10.2.0.1");
  match.dst_port = 3260;
  net::Packet pkt;
  pkt.ip.src = net::Ipv4Addr::from_string("10.2.0.1");
  pkt.ip.dst = net::Ipv4Addr::from_string("10.2.0.9");
  pkt.tcp.dst_port = 3260;
  for (auto _ : state) {
    benchmark::DoNotOptimize(match.matches(0, pkt));
  }
}
BENCHMARK(BM_FlowMatch);

void BM_BufSliceVsCopy(benchmark::State& state) {
  Buf whole(make_data(65536));
  for (auto _ : state) {
    Buf view = whole.slice(1024, 1460);
    benchmark::DoNotOptimize(view.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1460);
}
BENCHMARK(BM_BufSliceVsCopy);

// The fig5 64 KiB sequential-write path, end to end: tenant VM ->
// gateway -> middle-box (active relay + stream cipher) -> gateway ->
// storage host. Reports copied payload bytes per delivered payload byte
// (from the net.bytes_copied ledger) and wall-clock per write op.
//
// The pre-zero-copy data path copied each payload byte ~18 times on this
// route (derivation in EXPERIMENTS.md "Datapath copy efficiency"); the
// acceptance bar is a >= 5x reduction, i.e. a measured ratio <= 3.6.
constexpr double kSeedCopiesPerByte = 18.0;

int run_datapath_bench() {
  bench::Testbed testbed(bench::PathMode::kActive);
  obs::Registry& reg = testbed.simulator().telemetry();

  // Sync and snapshot the exported copy counter, then run the workload.
  reg.to_json(false);
  const std::uint64_t copied_before = reg.counter("net.bytes_copied").value();

  workload::FioConfig config;
  config.request_bytes = 64 * 1024;
  config.jobs = 1;
  config.write_ratio = 1.0;
  config.random_offsets = false;
  config.duration = sim::seconds(2);
  const auto wall_start = std::chrono::steady_clock::now();
  workload::FioResult result = testbed.run_fio(config);
  const auto wall_end = std::chrono::steady_clock::now();

  reg.to_json(false);
  const std::uint64_t copied =
      reg.counter("net.bytes_copied").value() - copied_before;
  const std::uint64_t delivered = result.write_ops * 64ull * 1024;
  const double ratio =
      delivered ? static_cast<double>(copied) / static_cast<double>(delivered)
                : 0.0;
  const double wall_ns_per_op =
      result.total_ops
          ? static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    wall_end - wall_start)
                    .count()) /
                static_cast<double>(result.total_ops)
          : 0.0;
  const double reduction = ratio > 0 ? kSeedCopiesPerByte / ratio : 0.0;

  char json[512];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"datapath_64k_seq_write\",\"mode\":\"MB-ACTIVE-RELAY\","
      "\"write_ops\":%llu,\"delivered_bytes\":%llu,\"copied_bytes\":%llu,"
      "\"copies_per_delivered_byte\":%.3f,\"seed_copies_per_byte\":%.1f,"
      "\"reduction_factor\":%.2f,\"wall_ns_per_op\":%.0f}",
      static_cast<unsigned long long>(result.write_ops),
      static_cast<unsigned long long>(delivered),
      static_cast<unsigned long long>(copied), ratio, kSeedCopiesPerByte,
      reduction, wall_ns_per_op);
  bench::print_header("datapath copy efficiency (64 KiB sequential write)");
  std::printf("%s\n", json);
  std::ofstream("BENCH_datapath.json") << json << "\n";

  if (result.write_ops == 0 || reduction < 5.0) {
    std::fprintf(stderr,
                 "FAIL: copies/byte %.3f is less than a 5x reduction over "
                 "the seed's %.1f\n",
                 ratio, kSeedCopiesPerByte);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool datapath_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--datapath-only") == 0) datapath_only = true;
  }
  if (!datapath_only) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return run_datapath_bench();
}
