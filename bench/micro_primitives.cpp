// Real-time (wall-clock) microbenchmarks of the primitives on the StorM
// data path, via google-benchmark: ciphers, digests, PDU and packet
// codecs, NAT translation and flow-table matching. These measure this
// host's actual throughput — the simulation's cost model constants
// (ns/byte, per-PDU) can be sanity-checked against them.
#include <benchmark/benchmark.h>

#include "common/hash.hpp"
#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "iscsi/pdu.hpp"
#include "net/flow_switch.hpp"
#include "net/nat.hpp"
#include "net/packet.hpp"

namespace {

using namespace storm;

Bytes make_data(std::size_t n) {
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131);
  }
  return data;
}

void BM_Aes256XtsEncryptSector(benchmark::State& state) {
  Bytes key(32, 0x24);
  crypto::AesXts xts(key, key);
  Bytes sector = make_data(512);
  Bytes out(512);
  std::uint64_t n = 0;
  for (auto _ : state) {
    xts.encrypt_sector(n++, sector, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_Aes256XtsEncryptSector);

void BM_ChaCha20Crypt(benchmark::State& state) {
  Bytes key(32, 0x42), nonce(12, 0);
  Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  Bytes out(data.size());
  for (auto _ : state) {
    crypto::chacha20_crypt(key, nonce, 0, data, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20Crypt)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto digest = crypto::sha256(data);
    benchmark::DoNotOptimize(digest.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(65536);

void BM_Crc32(benchmark::State& state) {
  Bytes data = make_data(65536);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          65536);
}
BENCHMARK(BM_Crc32);

void BM_PduSerializeParse(benchmark::State& state) {
  iscsi::Pdu pdu = iscsi::make_data_out(
      7, 0, make_data(static_cast<std::size_t>(state.range(0))), true);
  for (auto _ : state) {
    Bytes wire = iscsi::serialize(pdu);
    auto parsed = iscsi::parse_pdu(
        std::span<const std::uint8_t>(wire.data() + 4, wire.size() - 4));
    benchmark::DoNotOptimize(parsed.is_ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PduSerializeParse)->Arg(4096)->Arg(65536);

void BM_PacketCodec(benchmark::State& state) {
  net::Packet pkt;
  pkt.ip.src = net::Ipv4Addr::from_string("10.1.0.1");
  pkt.ip.dst = net::Ipv4Addr::from_string("10.1.1.1");
  pkt.tcp.src_port = 40000;
  pkt.tcp.dst_port = 3260;
  pkt.payload = make_data(1460);
  for (auto _ : state) {
    Bytes wire = net::serialize(pkt);
    net::Packet back = net::parse_packet(wire);
    benchmark::DoNotOptimize(back.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1460);
}
BENCHMARK(BM_PacketCodec);

void BM_NatTranslateConntrack(benchmark::State& state) {
  net::NatEngine nat;
  net::NatRule rule;
  rule.match_dst_port = 3260;
  rule.dnat_ip = net::Ipv4Addr::from_string("10.2.0.5");
  nat.add_rule(rule);
  net::Packet pkt;
  pkt.ip.src = net::Ipv4Addr::from_string("10.1.0.1");
  pkt.ip.dst = net::Ipv4Addr::from_string("10.1.1.1");
  pkt.tcp.src_port = 40000;
  pkt.tcp.dst_port = 3260;
  nat.translate(pkt);  // create the conntrack entry
  for (auto _ : state) {
    net::Packet p;
    p.ip.src = net::Ipv4Addr::from_string("10.1.0.1");
    p.ip.dst = net::Ipv4Addr::from_string("10.1.1.1");
    p.tcp.src_port = 40000;
    p.tcp.dst_port = 3260;
    benchmark::DoNotOptimize(nat.translate(p));
  }
}
BENCHMARK(BM_NatTranslateConntrack);

void BM_FlowMatch(benchmark::State& state) {
  net::FlowMatch match;
  match.src_ip = net::Ipv4Addr::from_string("10.2.0.1");
  match.dst_port = 3260;
  net::Packet pkt;
  pkt.ip.src = net::Ipv4Addr::from_string("10.2.0.1");
  pkt.ip.dst = net::Ipv4Addr::from_string("10.2.0.9");
  pkt.tcp.dst_port = 3260;
  for (auto _ : state) {
    benchmark::DoNotOptimize(match.matches(0, pkt));
  }
}
BENCHMARK(BM_FlowMatch);

}  // namespace

BENCHMARK_MAIN();
