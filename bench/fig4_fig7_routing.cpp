// Reproduces paper Figures 4 and 7: traffic-redirection (routing)
// overhead. LEGACY vs MB-FWD (forwarding-only middle-box, no processing),
// one fio job, 50/50 random read/write, I/O sizes 4 KB - 256 KB.
// Middle-box and both gateways are placed on different physical hosts
// than the VM and target (the paper's worst case).
//
// Paper reference points (normalized to LEGACY):
//   Fig. 4 IOPS    : MB-FWD 0.93 / 0.86 / 0.83 / 0.82
//   Fig. 7 latency : MB-FWD 1.08 / 1.22 / 1.25 / 1.30
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "obs/registry.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

int g_rc = 0;

std::vector<std::string> run_point(unsigned threads) {
  TestbedOptions options;
  options.threads = threads;
  std::vector<std::string> dumps;

  const std::vector<std::uint32_t> sizes = {4 * 1024, 16 * 1024, 64 * 1024,
                                            256 * 1024};
  print_header("Figure 4 + 7: routing overhead (LEGACY vs MB-FWD)");
  std::printf("%-8s %12s %12s %10s | %12s %12s %10s\n", "io_size",
              "legacy_iops", "mbfwd_iops", "norm_iops", "legacy_ms",
              "mbfwd_ms", "norm_lat");
  for (std::uint32_t size : sizes) {
    std::string legacy_dump, fwd_dump;
    auto legacy = fio_point(PathMode::kLegacy, size, 1, sim::seconds(8),
                            options, &legacy_dump);
    auto fwd = fio_point(PathMode::kForward, size, 1, sim::seconds(8),
                         options, &fwd_dump);
    dumps.push_back(std::move(legacy_dump));
    dumps.push_back(std::move(fwd_dump));
    std::printf("%-8u %12.0f %12.0f %10.2f | %12.3f %12.3f %10.2f\n",
                size / 1024, legacy.iops, fwd.iops, fwd.iops / legacy.iops,
                legacy.mean_latency_ms, fwd.mean_latency_ms,
                fwd.mean_latency_ms / legacy.mean_latency_ms);
  }
  std::printf("\npaper Fig.4 norm IOPS: 0.93 0.86 0.83 0.82 (4K..256K)\n");
  std::printf("paper Fig.7 norm lat : 1.08 1.22 1.25 1.30 (4K..256K)\n");

  // Flow-table fast path: a long-lived iSCSI flow through the gateways'
  // FlowSwitches should be almost entirely exact-match cache hits — the
  // linear rule scan runs once per flow, not once per packet.
  Testbed testbed(PathMode::kForward, options);
  workload::FioConfig config;
  config.request_bytes = 64 * 1024;
  config.jobs = 1;
  config.duration = sim::seconds(4);
  testbed.run_fio(config);
  const std::uint64_t hits =
      merged_counter(testbed.simulator(), "net.flow.cache_hits");
  const std::uint64_t misses =
      merged_counter(testbed.simulator(), "net.flow.cache_misses");
  const double hit_rate =
      hits + misses ? static_cast<double>(hits) /
                          static_cast<double>(hits + misses)
                    : 0.0;
  print_header("flow-switch exact-match cache (MB-FWD, 64 KiB)");
  std::printf("cache_hits=%llu cache_misses=%llu hit_rate=%.4f\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), hit_rate);
  if (hit_rate < 0.90) {
    std::fprintf(stderr, "FAIL: flow cache hit rate %.4f < 0.90\n", hit_rate);
    g_rc = 1;
  }
  dumps.push_back(testbed.simulator().telemetry_json());
  return dumps;
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = run_thread_sweep(argc, argv, run_point);
  return rc != 0 ? rc : g_rc;
}
