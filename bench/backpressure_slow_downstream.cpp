// Slow-downstream backpressure bench (flow-control spine): the storage
// backend stalls for 500 ms of sim time while the initiator pushes a
// sustained stream of 64 KiB writes through an active relay. With the
// journal watermarks configured the relay's buffering (queue + NVRAM
// journal) must stay under hwm + one burst + one ingress TCP window;
// with watermarks disabled the same workload journals megabytes. The
// bounded scenario runs twice and must produce byte-identical telemetry
// JSON (determinism is load-bearing for the CI perf smoke). Results go
// to BENCH_backpressure.json; exit is non-zero if the bound is blown,
// the unbounded baseline fails to demonstrate the problem, any write
// fails, or the two seeded runs diverge.
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "core/active_relay.hpp"
#include "core/platform.hpp"
#include "services/registry.hpp"

using namespace storm;

namespace {

constexpr int kWrites = 48;
constexpr std::uint32_t kSectors = 128;  // 64 KiB per write
constexpr std::size_t kBurstBytes = kSectors * block::kSectorSize;
constexpr std::size_t kHwm = 256 * 1024;
constexpr std::size_t kLwm = 64 * 1024;
// Watermark + the complete burst that is allowed to finish past it + one
// ingress TCP receive window of in-flight credit + header/parse slop.
constexpr std::size_t kBoundedCap = kHwm + kBurstBytes + 36 * 1024 + 32 * 1024;

struct ScenarioResult {
  std::size_t peak_buffered = 0;
  int completed = 0;
  int failed = 0;
  double done_at_s = 0.0;
  std::string telemetry;
};

ScenarioResult run_scenario(std::size_t hwm_kb, std::size_t lwm_kb) {
  sim::Simulator sim;
  cloud::Cloud cloud(sim, cloud::CloudConfig{});
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud::Vm& vm = cloud.create_vm("vm", "tenant", 0);
  if (!cloud.create_volume("vol", 10'000).is_ok()) return {};

  core::ServiceSpec spec;
  spec.type = "noop";
  spec.relay = core::RelayMode::kActive;
  spec.params["journal_hwm_kb"] = std::to_string(hwm_kb);
  spec.params["journal_lwm_kb"] = std::to_string(lwm_kb);
  core::DeploymentHandle dep;
  Status status = error(ErrorCode::kIoError, "unset");
  platform.attach_with_chain("vm", "vol", {spec},
                             [&](Result<core::DeploymentHandle> r) {
                               status = r.status();
                               if (r.is_ok()) dep = r.value();
                             });
  sim.run();
  if (!status.is_ok() || !dep.valid()) return {};
  core::ActiveRelay* relay = dep.active_relay(0);
  if (relay == nullptr) return {};

  // Stall the backend for 500 ms of sim time; the initiator issues the
  // whole 3 MiB workload up front, so without backpressure everything
  // the early-ACK loop can pull in lands in the relay during the stall.
  cloud.storage(0).node().set_down(true);
  sim.schedule_in(sim::milliseconds(500),
            [&] { cloud.storage(0).node().set_down(false); });

  ScenarioResult result;
  for (int i = 0; i < kWrites; ++i) {
    vm.disk()->write(static_cast<std::uint64_t>(i) * kSectors,
                     Bytes(kBurstBytes, static_cast<std::uint8_t>(i + 1)),
                     [&, i](Status s) {
                       ++result.completed;
                       if (!s.is_ok()) ++result.failed;
                     });
  }
  while (result.completed < kWrites) {
    sim.run_until(sim.now() + sim::milliseconds(5));
    result.peak_buffered =
        std::max(result.peak_buffered, relay->buffered_bytes());
    if (sim.empty()) break;
  }
  result.done_at_s = sim::to_seconds(sim.now());
  sim.run();
  result.peak_buffered =
      std::max(result.peak_buffered, relay->peak_buffered_bytes());
  result.telemetry = sim.telemetry().to_json(false);
  return result;
}

}  // namespace

int main() {
  bench::print_header("backpressure: slow downstream, 500 ms stall");

  ScenarioResult bounded = run_scenario(kHwm / 1024, kLwm / 1024);
  ScenarioResult repeat = run_scenario(kHwm / 1024, kLwm / 1024);
  ScenarioResult unbounded = run_scenario(0, 0);

  std::printf("workload: %d x %zu KiB writes, backend down 500 ms\n",
              kWrites, kBurstBytes / 1024);
  std::printf("bounded   (hwm %zu KiB): peak buffered %zu KiB, cap %zu KiB, "
              "done at %.3f s (%d ok, %d failed)\n",
              kHwm / 1024, bounded.peak_buffered / 1024, kBoundedCap / 1024,
              bounded.done_at_s, bounded.completed, bounded.failed);
  std::printf("unbounded (hwm 0):       peak buffered %zu KiB, "
              "done at %.3f s (%d ok, %d failed)\n",
              unbounded.peak_buffered / 1024, unbounded.done_at_s,
              unbounded.completed, unbounded.failed);

  const bool deterministic =
      !bounded.telemetry.empty() && bounded.telemetry == repeat.telemetry;
  std::printf("determinism: two seeded bounded runs %s\n",
              deterministic ? "byte-identical" : "DIVERGED");

  char json[512];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"backpressure_slow_downstream\","
      "\"writes\":%d,\"write_bytes\":%zu,\"stall_ms\":500,"
      "\"hwm_bytes\":%zu,\"lwm_bytes\":%zu,\"cap_bytes\":%zu,"
      "\"bounded_peak_bytes\":%zu,\"unbounded_peak_bytes\":%zu,"
      "\"bounded_done_s\":%.6f,\"unbounded_done_s\":%.6f,"
      "\"deterministic\":%s}",
      kWrites, kBurstBytes, kHwm, kLwm, kBoundedCap, bounded.peak_buffered,
      unbounded.peak_buffered, bounded.done_at_s, unbounded.done_at_s,
      deterministic ? "true" : "false");
  std::printf("%s\n", json);
  std::ofstream("BENCH_backpressure.json") << json << "\n";

  bool ok = true;
  if (bounded.completed != kWrites || bounded.failed != 0 ||
      unbounded.completed != kWrites || unbounded.failed != 0) {
    std::fprintf(stderr, "FAIL: writes lost or failed\n");
    ok = false;
  }
  if (bounded.peak_buffered > kBoundedCap) {
    std::fprintf(stderr, "FAIL: bounded peak %zu exceeds cap %zu\n",
                 bounded.peak_buffered, kBoundedCap);
    ok = false;
  }
  if (unbounded.peak_buffered < 1024 * 1024) {
    std::fprintf(stderr,
                 "FAIL: unbounded peak %zu under 1 MiB — the baseline no "
                 "longer demonstrates the problem\n",
                 unbounded.peak_buffered);
    ok = false;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: seeded runs produced different telemetry\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
