// Reproduces paper Figures 12/13: the tenant-defined replication
// middle-box under an OLTP database workload.
//
// Setup (paper Fig. 12): one database VM with its volume attached through
// a replication middle-box holding two extra replicas (factor 3); four
// client VMs, six request threads each. At t=60 s one replica's iSCSI
// session is closed. The paper observes: the database keeps running, TPS
// dips slightly (less read parallelism), and 3-replica throughput is
// ~80% above the 1-replica baseline thanks to striped reads.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "core/health_manager.hpp"
#include "core/platform.hpp"
#include "workload/minidb.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

struct RunResult {
  std::vector<double> tps_timeline;  // per second
  double steady_tps = 0;             // mean of seconds 10..55
};

RunResult run_case(unsigned replicas, bool inject_failure,
                   unsigned run_seconds) {
  sim::Simulator sim;
  cloud::CloudConfig config = testbed_config();
  // OLTP I/O is small and latency-bound: a faster volume backend keeps
  // the database disk from hiding the read-striping effect.
  config.disk_profile.base_latency = sim::milliseconds(2);
  config.disk_profile.queue_depth = 4;
  cloud::Cloud cloud(sim, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud::Vm& db_vm = cloud.create_vm("mysql", "tenant1", 0, 2);
  if (!cloud.create_volume("dbvol", 262'144).is_ok()) std::abort();
  std::string replica_names;
  for (unsigned i = 0; i < replicas; ++i) {
    std::string name = "dbvol-r" + std::to_string(i);
    if (!cloud.create_volume(name, 262'144).is_ok()) std::abort();
    replica_names += (i ? "," : "") + name;
  }

  core::DeploymentHandle deployment;
  if (replicas > 0) {
    core::ServiceSpec spec;
    spec.type = "replication";
    spec.relay = core::RelayMode::kActive;
    spec.params["replicas"] = replica_names;
    Status status = error(ErrorCode::kIoError, "unset");
    platform.attach_with_chain("mysql", "dbvol", {spec},
                               [&](Result<core::DeploymentHandle> r) {
                                 status = r.status();
                                 if (r.is_ok()) deployment = r.value();
                               });
    sim.run();
    if (!status.is_ok()) std::abort();
  } else {
    Status status = error(ErrorCode::kIoError, "unset");
    cloud.attach_volume(db_vm, "dbvol",
                        [&](Status s, cloud::Attachment) { status = s; });
    sim.run();
    if (!status.is_ok()) std::abort();
  }

  workload::MiniDb db(sim, *db_vm.disk());
  db.init([](Status s) {
    if (!s.is_ok()) std::abort();
  });
  sim.run();
  workload::DbServer server(db_vm, db);
  server.start();

  // Four client VMs x six threads (paper Fig. 12).
  std::vector<std::unique_ptr<workload::OltpClient>> clients;
  sim::Time deadline = sim.now() + sim::seconds(run_seconds);
  int drained = 0;
  for (unsigned i = 0; i < 4; ++i) {
    cloud::Vm& client_vm =
        cloud.create_vm("client" + std::to_string(i), "tenant1", 1 + i % 3);
    clients.push_back(std::make_unique<workload::OltpClient>(
        client_vm, net::SocketAddr{db_vm.ip(), 3306}, 6));
  }
  for (auto& client : clients) {
    client->start(deadline, [&] { ++drained; });
  }

  if (inject_failure && replicas > 0) {
    sim.schedule_in(sim::seconds(60), [&] {
      auto attachment =
          cloud.find_attachment(deployment.mb_vm(0)->name(), "dbvol-r0");
      if (attachment) {
        cloud.storage(0).target().close_sessions_for(attachment->iqn);
      }
    });
  }
  sim.run();

  RunResult result;
  result.tps_timeline.assign(run_seconds, 0.0);
  for (auto& client : clients) {
    const auto& buckets = client->per_second_commits();
    for (std::size_t s = 0; s < buckets.size() && s < result.tps_timeline.size();
         ++s) {
      result.tps_timeline[s] += static_cast<double>(buckets[s]);
    }
  }
  double sum = 0;
  int n = 0;
  for (std::size_t s = 10; s < 55 && s < result.tps_timeline.size(); ++s) {
    sum += result.tps_timeline[s];
    ++n;
  }
  result.steady_tps = n ? sum / n : 0;
  return result;
}

// --------------------------------------------------------------- MTTR

struct MttrResult {
  double detect_ms = 0;  // last-alive -> declared failed
  double repair_ms = 0;  // declared failed -> data path restored
  double mttr_ms = 0;    // detect + repair (journal replay + rule swap)
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  int failed_writes = 0;
  double heartbeat_ms = 0;
  unsigned miss_threshold = 0;
};

/// Whole-middle-box failover under recovery=standby: the replication
/// middle-box VM power-fails under sustained database writes; the health
/// manager detects the death, promotes the warm spare (NVRAM journal
/// handoff + atomic SDN rule swap) and the MTTR histograms record how
/// long the tenant's data path was degraded.
MttrResult run_mttr_case() {
  sim::Simulator sim;
  cloud::CloudConfig config = testbed_config();
  config.disk_profile.base_latency = sim::milliseconds(2);
  config.disk_profile.queue_depth = 4;
  cloud::Cloud cloud(sim, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud::Vm& db_vm = cloud.create_vm("mysql", "tenant1", 0, 2);
  if (!cloud.create_volume("dbvol", 262'144).is_ok()) std::abort();
  if (!cloud.create_volume("dbvol-r0", 262'144).is_ok()) std::abort();
  if (!cloud.create_volume("dbvol-r1", 262'144).is_ok()) std::abort();

  core::ServiceSpec spec;
  spec.type = "replication";
  spec.relay = core::RelayMode::kActive;
  spec.recovery = core::RecoveryPolicyKind::kStandby;
  spec.params["replicas"] = "dbvol-r0,dbvol-r1";
  Status status = error(ErrorCode::kIoError, "unset");
  core::DeploymentHandle deployment;
  platform.attach_with_chain("mysql", "dbvol", {spec},
                             [&](Result<core::DeploymentHandle> r) {
                               status = r.status();
                               if (r.is_ok()) deployment = r.value();
                             });
  sim.run();
  if (!status.is_ok()) std::abort();
  deployment.attachment()->initiator->set_recovery({.enabled = true});
  platform.health().start();

  // Sustained 8 KB writes every 2 ms; the middle-box dies at t=50ms.
  MttrResult result;
  constexpr int kWrites = 64;
  constexpr std::uint32_t kSectors = 16;
  for (int i = 0; i < kWrites; ++i) {
    sim.schedule_in(sim::milliseconds(2) * i, [&, i] {
      db_vm.disk()->write(
          static_cast<std::uint64_t>(i) * kSectors,
          Bytes(kSectors * block::kSectorSize,
                static_cast<std::uint8_t>(i + 1)),
          [&](Status s) {
            if (!s.is_ok()) ++result.failed_writes;
          });
    });
  }
  sim.schedule_in(sim::milliseconds(50),
            [&] { (void)deployment.crash_middlebox(0); });
  sim.run_for(sim::seconds(2));
  platform.health().stop();
  sim.run();

  obs::Registry& reg = sim.telemetry();
  result.detect_ms = static_cast<double>(
                         reg.histogram("health.detect_ns").max()) / 1e6;
  result.repair_ms = static_cast<double>(
                         reg.histogram("health.repair_ns").max()) / 1e6;
  result.mttr_ms = static_cast<double>(
                       reg.histogram("health.mttr_ns").max()) / 1e6;
  result.failures = platform.health().failures_detected();
  result.recoveries = platform.health().recoveries_completed();
  result.heartbeat_ms =
      static_cast<double>(platform.health().config().heartbeat_interval) /
      1e6;
  result.miss_threshold = platform.health().config().miss_threshold;
  return result;
}

void report_mttr(const MttrResult& mttr) {
  std::printf("\nMTTR: replication middle-box power failure, "
              "recovery=standby\n");
  std::printf("  heartbeat %.1f ms x %u misses\n", mttr.heartbeat_ms,
              mttr.miss_threshold);
  std::printf("  detection          : %8.3f ms\n", mttr.detect_ms);
  std::printf("  repair (journal replay + rule swap + re-login): %8.3f ms\n",
              mttr.repair_ms);
  std::printf("  MTTR               : %8.3f ms\n", mttr.mttr_ms);
  std::printf("  failures=%llu recoveries=%llu failed_writes=%d\n",
              static_cast<unsigned long long>(mttr.failures),
              static_cast<unsigned long long>(mttr.recoveries),
              mttr.failed_writes);

  std::ofstream out("BENCH_failover.json");
  out << "{\n"
      << "  \"bench\": \"failover\",\n"
      << "  \"policy\": \"standby\",\n"
      << "  \"heartbeat_interval_ms\": " << mttr.heartbeat_ms << ",\n"
      << "  \"miss_threshold\": " << mttr.miss_threshold << ",\n"
      << "  \"detect_ms\": " << mttr.detect_ms << ",\n"
      << "  \"repair_ms\": " << mttr.repair_ms << ",\n"
      << "  \"mttr_ms\": " << mttr.mttr_ms << ",\n"
      << "  \"failures\": " << mttr.failures << ",\n"
      << "  \"recoveries\": " << mttr.recoveries << ",\n"
      << "  \"failed_writes\": " << mttr.failed_writes << "\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --mttr-only: skip the 120-simulated-second TPS timelines and run just
  // the failover MTTR measurement (CI artifact mode).
  const bool mttr_only =
      argc > 1 && std::strcmp(argv[1], "--mttr-only") == 0;
  if (mttr_only) {
    print_header("Failover MTTR (recovery=standby)");
    report_mttr(run_mttr_case());
    return 0;
  }

  print_header("Figure 13: MySQL-like TPS with replication, replica failure at t=60s");

  RunResult three = run_case(/*replicas=*/2, /*inject_failure=*/true, 120);
  RunResult one = run_case(/*replicas=*/0, /*inject_failure=*/false, 120);

  std::printf("time(s)  tps_3replica  tps_1replica\n");
  for (std::size_t s = 0; s < three.tps_timeline.size(); s += 5) {
    std::printf("%6zu  %12.0f  %12.0f%s\n", s, three.tps_timeline[s],
                s < one.tps_timeline.size() ? one.tps_timeline[s] : 0.0,
                s == 60 ? "   <- replica fails" : "");
  }

  double pre_fail = 0, post_fail = 0;
  int pre_n = 0, post_n = 0;
  for (std::size_t s = 10; s < 58; ++s) {
    pre_fail += three.tps_timeline[s];
    ++pre_n;
  }
  for (std::size_t s = 65; s < 115; ++s) {
    post_fail += three.tps_timeline[s];
    ++post_n;
  }
  pre_fail /= pre_n;
  post_fail /= post_n;

  std::printf("\n3-replica steady TPS (pre-failure) : %.0f\n", pre_fail);
  std::printf("3-replica steady TPS (post-failure): %.0f\n", post_fail);
  std::printf("1-replica steady TPS               : %.0f\n", one.steady_tps);
  std::printf("3-replica vs 1-replica improvement : %.0f%%\n",
              (pre_fail / one.steady_tps - 1.0) * 100.0);
  std::printf("\npaper: DB keeps running after the failure, TPS drops "
              "slightly;\n       3 replicas ~80%% above the 1-replica "
              "baseline\n");

  report_mttr(run_mttr_case());
  return 0;
}
