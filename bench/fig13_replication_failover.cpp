// Reproduces paper Figures 12/13: the tenant-defined replication
// middle-box under an OLTP database workload.
//
// Setup (paper Fig. 12): one database VM with its volume attached through
// a replication middle-box holding two extra replicas (factor 3); four
// client VMs, six request threads each. At t=60 s one replica's iSCSI
// session is closed. The paper observes: the database keeps running, TPS
// dips slightly (less read parallelism), and 3-replica throughput is
// ~80% above the 1-replica baseline thanks to striped reads.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/platform.hpp"
#include "workload/minidb.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

struct RunResult {
  std::vector<double> tps_timeline;  // per second
  double steady_tps = 0;             // mean of seconds 10..55
};

RunResult run_case(unsigned replicas, bool inject_failure,
                   unsigned run_seconds) {
  sim::Simulator sim;
  cloud::CloudConfig config = testbed_config();
  // OLTP I/O is small and latency-bound: a faster volume backend keeps
  // the database disk from hiding the read-striping effect.
  config.disk_profile.base_latency = sim::milliseconds(2);
  config.disk_profile.queue_depth = 4;
  cloud::Cloud cloud(sim, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud::Vm& db_vm = cloud.create_vm("mysql", "tenant1", 0, 2);
  if (!cloud.create_volume("dbvol", 262'144).is_ok()) std::abort();
  std::string replica_names;
  for (unsigned i = 0; i < replicas; ++i) {
    std::string name = "dbvol-r" + std::to_string(i);
    if (!cloud.create_volume(name, 262'144).is_ok()) std::abort();
    replica_names += (i ? "," : "") + name;
  }

  core::DeploymentHandle deployment;
  if (replicas > 0) {
    core::ServiceSpec spec;
    spec.type = "replication";
    spec.relay = core::RelayMode::kActive;
    spec.params["replicas"] = replica_names;
    Status status = error(ErrorCode::kIoError, "unset");
    platform.attach_with_chain("mysql", "dbvol", {spec},
                               [&](Result<core::DeploymentHandle> r) {
                                 status = r.status();
                                 if (r.is_ok()) deployment = r.value();
                               });
    sim.run();
    if (!status.is_ok()) std::abort();
  } else {
    Status status = error(ErrorCode::kIoError, "unset");
    cloud.attach_volume(db_vm, "dbvol",
                        [&](Status s, cloud::Attachment) { status = s; });
    sim.run();
    if (!status.is_ok()) std::abort();
  }

  workload::MiniDb db(sim, *db_vm.disk());
  db.init([](Status s) {
    if (!s.is_ok()) std::abort();
  });
  sim.run();
  workload::DbServer server(db_vm, db);
  server.start();

  // Four client VMs x six threads (paper Fig. 12).
  std::vector<std::unique_ptr<workload::OltpClient>> clients;
  sim::Time deadline = sim.now() + sim::seconds(run_seconds);
  int drained = 0;
  for (unsigned i = 0; i < 4; ++i) {
    cloud::Vm& client_vm =
        cloud.create_vm("client" + std::to_string(i), "tenant1", 1 + i % 3);
    clients.push_back(std::make_unique<workload::OltpClient>(
        client_vm, net::SocketAddr{db_vm.ip(), 3306}, 6));
  }
  for (auto& client : clients) {
    client->start(deadline, [&] { ++drained; });
  }

  if (inject_failure && replicas > 0) {
    sim.after(sim::seconds(60), [&] {
      auto attachment =
          cloud.find_attachment(deployment.mb_vm(0)->name(), "dbvol-r0");
      if (attachment) {
        cloud.storage(0).target().close_sessions_for(attachment->iqn);
      }
    });
  }
  sim.run();

  RunResult result;
  result.tps_timeline.assign(run_seconds, 0.0);
  for (auto& client : clients) {
    const auto& buckets = client->per_second_commits();
    for (std::size_t s = 0; s < buckets.size() && s < result.tps_timeline.size();
         ++s) {
      result.tps_timeline[s] += static_cast<double>(buckets[s]);
    }
  }
  double sum = 0;
  int n = 0;
  for (std::size_t s = 10; s < 55 && s < result.tps_timeline.size(); ++s) {
    sum += result.tps_timeline[s];
    ++n;
  }
  result.steady_tps = n ? sum / n : 0;
  return result;
}

}  // namespace

int main() {
  print_header("Figure 13: MySQL-like TPS with replication, replica failure at t=60s");

  RunResult three = run_case(/*replicas=*/2, /*inject_failure=*/true, 120);
  RunResult one = run_case(/*replicas=*/0, /*inject_failure=*/false, 120);

  std::printf("time(s)  tps_3replica  tps_1replica\n");
  for (std::size_t s = 0; s < three.tps_timeline.size(); s += 5) {
    std::printf("%6zu  %12.0f  %12.0f%s\n", s, three.tps_timeline[s],
                s < one.tps_timeline.size() ? one.tps_timeline[s] : 0.0,
                s == 60 ? "   <- replica fails" : "");
  }

  double pre_fail = 0, post_fail = 0;
  int pre_n = 0, post_n = 0;
  for (std::size_t s = 10; s < 58; ++s) {
    pre_fail += three.tps_timeline[s];
    ++pre_n;
  }
  for (std::size_t s = 65; s < 115; ++s) {
    post_fail += three.tps_timeline[s];
    ++post_n;
  }
  pre_fail /= pre_n;
  post_fail /= post_n;

  std::printf("\n3-replica steady TPS (pre-failure) : %.0f\n", pre_fail);
  std::printf("3-replica steady TPS (post-failure): %.0f\n", post_fail);
  std::printf("1-replica steady TPS               : %.0f\n", one.steady_tps);
  std::printf("3-replica vs 1-replica improvement : %.0f%%\n",
              (pre_fail / one.steady_tps - 1.0) * 100.0);
  std::printf("\npaper: DB keeps running after the failure, TPS drops "
              "slightly;\n       3 replicas ~80%% above the 1-replica "
              "baseline\n");
  return 0;
}
