// Reproduces paper Figures 12/13: the tenant-defined replication
// middle-box under an OLTP database workload.
//
// Setup (paper Fig. 12): one database VM with its volume attached through
// a replication middle-box holding two extra replicas (factor 3); four
// client VMs, six request threads each. At t=60 s one replica's iSCSI
// session is closed. The paper observes: the database keeps running, TPS
// dips slightly (less read parallelism), and 3-replica throughput is
// ~80% above the 1-replica baseline thanks to striped reads.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include <algorithm>

#include "bench_common.hpp"
#include "block/block_device.hpp"
#include "core/health_manager.hpp"
#include "core/platform.hpp"
#include "fs/simext.hpp"
#include "services/replication.hpp"
#include "workload/minidb.hpp"
#include "workload/postmark.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

struct RunResult {
  std::vector<double> tps_timeline;  // per second
  double steady_tps = 0;             // mean of seconds 10..55
  std::string telemetry;             // --threads identity witness
};

RunResult run_case(unsigned replicas, bool inject_failure,
                   unsigned run_seconds, unsigned threads) {
  cloud::CloudConfig config = testbed_config();
  // OLTP I/O is small and latency-bound: a faster volume backend keeps
  // the database disk from hiding the read-striping effect.
  config.disk_profile.base_latency = sim::milliseconds(2);
  config.disk_profile.queue_depth = 4;
  sim::Simulator sim(threads == 0
                         ? sim::ParallelConfig{}
                         : cloud::Cloud::parallel_config(config, threads));
  cloud::Cloud cloud(sim, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud::Vm& db_vm = cloud.create_vm("mysql", "tenant1", 0, 2);
  if (!cloud.create_volume("dbvol", 262'144).is_ok()) std::abort();
  std::string replica_names;
  for (unsigned i = 0; i < replicas; ++i) {
    std::string name = "dbvol-r" + std::to_string(i);
    if (!cloud.create_volume(name, 262'144).is_ok()) std::abort();
    replica_names += (i ? "," : "") + name;
  }

  core::DeploymentHandle deployment;
  if (replicas > 0) {
    core::ServiceSpec spec;
    spec.type = "replication";
    spec.relay = core::RelayMode::kActive;
    spec.params["replicas"] = replica_names;
    Status status = error(ErrorCode::kIoError, "unset");
    platform.attach_with_chain("mysql", "dbvol", {spec},
                               [&](Result<core::DeploymentHandle> r) {
                                 status = r.status();
                                 if (r.is_ok()) deployment = r.value();
                               });
    sim.run();
    if (!status.is_ok()) std::abort();
  } else {
    Status status = error(ErrorCode::kIoError, "unset");
    cloud.attach_volume(db_vm, "dbvol",
                        [&](Status s, cloud::Attachment) { status = s; });
    sim.run();
    if (!status.is_ok()) std::abort();
  }

  workload::MiniDb db(db_vm.node().executor(), *db_vm.disk());
  db.init([](Status s) {
    if (!s.is_ok()) std::abort();
  });
  sim.run();
  workload::DbServer server(db_vm, db);
  server.start();

  // Four client VMs x six threads (paper Fig. 12).
  std::vector<std::unique_ptr<workload::OltpClient>> clients;
  sim::Time deadline = sim.now() + sim::seconds(run_seconds);
  int drained = 0;
  for (unsigned i = 0; i < 4; ++i) {
    cloud::Vm& client_vm =
        cloud.create_vm("client" + std::to_string(i), "tenant1", 1 + i % 3);
    clients.push_back(std::make_unique<workload::OltpClient>(
        client_vm, net::SocketAddr{db_vm.ip(), 3306}, 6));
  }
  for (auto& client : clients) {
    client->start(deadline, [&] { ++drained; });
  }

  if (inject_failure && replicas > 0) {
    // The chaos hook fires as a partition-0 event but pokes the storage
    // host's target; at_barrier defers the poke to the next window
    // barrier where every partition is quiescent.
    sim.schedule_in(sim::seconds(60), [&] {
      sim.at_barrier([&] {
        auto attachment =
            cloud.find_attachment(deployment.mb_vm(0)->name(), "dbvol-r0");
        if (attachment) {
          cloud.storage(0).target().close_sessions_for(attachment->iqn);
        }
      });
    });
  }
  sim.run();

  RunResult result;
  result.tps_timeline.assign(run_seconds, 0.0);
  for (auto& client : clients) {
    const auto& buckets = client->per_second_commits();
    for (std::size_t s = 0; s < buckets.size() && s < result.tps_timeline.size();
         ++s) {
      result.tps_timeline[s] += static_cast<double>(buckets[s]);
    }
  }
  double sum = 0;
  int n = 0;
  for (std::size_t s = 10; s < 55 && s < result.tps_timeline.size(); ++s) {
    sum += result.tps_timeline[s];
    ++n;
  }
  result.steady_tps = n ? sum / n : 0;
  result.telemetry = sim.telemetry_json();
  return result;
}

// --------------------------------------------------------------- MTTR

struct MttrResult {
  double detect_ms = 0;  // last-alive -> declared failed
  double repair_ms = 0;  // declared failed -> data path restored
  double mttr_ms = 0;    // detect + repair (journal replay + rule swap)
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  int failed_writes = 0;
  double heartbeat_ms = 0;
  unsigned miss_threshold = 0;
};

/// Whole-middle-box failover under recovery=standby: the replication
/// middle-box VM power-fails under sustained database writes; the health
/// manager detects the death, promotes the warm spare (NVRAM journal
/// handoff + atomic SDN rule swap) and the MTTR histograms record how
/// long the tenant's data path was degraded.
MttrResult run_mttr_case() {
  sim::Simulator sim;
  cloud::CloudConfig config = testbed_config();
  config.disk_profile.base_latency = sim::milliseconds(2);
  config.disk_profile.queue_depth = 4;
  cloud::Cloud cloud(sim, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud::Vm& db_vm = cloud.create_vm("mysql", "tenant1", 0, 2);
  if (!cloud.create_volume("dbvol", 262'144).is_ok()) std::abort();
  if (!cloud.create_volume("dbvol-r0", 262'144).is_ok()) std::abort();
  if (!cloud.create_volume("dbvol-r1", 262'144).is_ok()) std::abort();

  core::ServiceSpec spec;
  spec.type = "replication";
  spec.relay = core::RelayMode::kActive;
  spec.recovery = core::RecoveryPolicyKind::kStandby;
  spec.params["replicas"] = "dbvol-r0,dbvol-r1";
  Status status = error(ErrorCode::kIoError, "unset");
  core::DeploymentHandle deployment;
  platform.attach_with_chain("mysql", "dbvol", {spec},
                             [&](Result<core::DeploymentHandle> r) {
                               status = r.status();
                               if (r.is_ok()) deployment = r.value();
                             });
  sim.run();
  if (!status.is_ok()) std::abort();
  deployment.attachment()->initiator->set_recovery({.enabled = true});
  platform.health().start();

  // Sustained 8 KB writes every 2 ms; the middle-box dies at t=50ms.
  MttrResult result;
  constexpr int kWrites = 64;
  constexpr std::uint32_t kSectors = 16;
  for (int i = 0; i < kWrites; ++i) {
    sim.schedule_in(sim::milliseconds(2) * i, [&, i] {
      db_vm.disk()->write(
          static_cast<std::uint64_t>(i) * kSectors,
          Bytes(kSectors * block::kSectorSize,
                static_cast<std::uint8_t>(i + 1)),
          [&](Status s) {
            if (!s.is_ok()) ++result.failed_writes;
          });
    });
  }
  sim.schedule_in(sim::milliseconds(50),
            [&] { (void)deployment.crash_middlebox(0); });
  sim.run_for(sim::seconds(2));
  platform.health().stop();
  sim.run();

  obs::Registry& reg = sim.telemetry();
  result.detect_ms = static_cast<double>(
                         reg.histogram("health.detect_ns").max()) / 1e6;
  result.repair_ms = static_cast<double>(
                         reg.histogram("health.repair_ns").max()) / 1e6;
  result.mttr_ms = static_cast<double>(
                       reg.histogram("health.mttr_ns").max()) / 1e6;
  result.failures = platform.health().failures_detected();
  result.recoveries = platform.health().recoveries_completed();
  result.heartbeat_ms =
      static_cast<double>(platform.health().config().heartbeat_interval) /
      1e6;
  result.miss_threshold = platform.health().config().miss_threshold;
  return result;
}

// ------------------------------------------------- quorum rebuild case

struct RebuildResult {
  bool rebuilt = false;
  double rebuild_ms = 0;        // replica kill -> back in rotation
  double p99_pre_ms = 0;        // foreground PostMark p99, before the kill
  double p99_during_ms = 0;     // ... while degraded/rebuilding
  std::uint64_t failed_writes = 0;  // PostMark errors + quorum failures
  std::uint64_t stale_reads_prevented = 0;
  std::uint64_t reads_failed_over = 0;
  std::uint64_t rebuild_bytes = 0;
  std::uint64_t rebuild_throttled_bytes = 0;
  std::uint64_t transactions = 0;
  std::string telemetry;  // same-seed determinism witness
};

double p99_ms(std::vector<sim::Duration>& samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx =
      std::min(samples.size() - 1, samples.size() * 99 / 100);
  return static_cast<double>(samples[idx]) / 1e6;
}

/// PostMark through a W=2/N=3 quorum replica set; one replica's iSCSI
/// session is killed mid-run. The health cadence re-attaches the copy
/// and the token-bucket-paced copy machine streams its dirty extents
/// back from a survivor while the workload keeps running.
RebuildResult run_rebuild_case(std::uint64_t seed) {
  sim::Simulator sim;
  cloud::CloudConfig config = testbed_config();
  config.disk_profile.base_latency = sim::milliseconds(2);
  config.disk_profile.queue_depth = 4;
  cloud::Cloud cloud(sim, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud::Vm& vm = cloud.create_vm("pm", "tenant1", 0, 2);
  constexpr std::uint64_t kSectors = 262'144;
  for (const char* name : {"pmvol", "pmvol-r0", "pmvol-r1"}) {
    if (!cloud.create_volume(name, kSectors).is_ok()) std::abort();
  }
  // Identical formatted image on every copy (the replica set starts in
  // sync at version 0, as a real provisioning flow would leave it).
  block::MemDisk image(kSectors);
  if (!fs::SimExt::mkfs(image).is_ok()) std::abort();
  Bytes whole = image.read_sync(0, static_cast<std::uint32_t>(kSectors));
  for (const char* name : {"pmvol", "pmvol-r0", "pmvol-r1"}) {
    cloud.storage(0).volumes().find_by_name(name).value()
        ->disk().store().write_sync(0, whole);
  }

  core::ServiceSpec spec;
  spec.type = "replication";
  spec.relay = core::RelayMode::kActive;
  spec.params["replicas"] = "pmvol-r0,pmvol-r1";
  spec.quorum.enabled = true;
  spec.quorum.write_quorum = 2;
  spec.quorum.rebuild_rate_bytes_per_sec = 64ull * 1024 * 1024;
  spec.quorum.rebuild_burst_bytes = 256 * 1024;
  Status status = error(ErrorCode::kIoError, "unset");
  core::DeploymentHandle deployment;
  platform.attach_with_chain("pm", "pmvol", {spec},
                             [&](Result<core::DeploymentHandle> r) {
                               status = r.status();
                               if (r.is_ok()) deployment = r.value();
                             });
  sim.run();
  if (!status.is_ok()) std::abort();
  auto* service =
      static_cast<services::ReplicationService*>(deployment.service(0));
  platform.health().start();  // probes drive re-attach + rebuild kicks

  fs::SimExt fs(vm.node().executor(), *vm.disk());
  bool mounted = false;
  fs.mount([&](Status s) { mounted = s.is_ok(); });
  sim.run_for(sim::seconds(2));
  if (!mounted) std::abort();

  workload::PostmarkConfig pm_config;
  pm_config.transactions = 600;
  pm_config.seed = seed;
  workload::PostmarkRunner postmark(vm.node().executor(), fs, pm_config);

  // Kill replica0's session at the 150th transaction; the latency sink
  // doubles as the op-latency recorder and the chaos trigger.
  RebuildResult result;
  std::vector<std::pair<sim::Time, sim::Duration>> latencies;
  sim::Time killed_at = 0;
  postmark.set_latency_sink([&](sim::Duration latency) {
    latencies.emplace_back(sim.now(), latency);
    if (latencies.size() == 150 && killed_at == 0) {
      auto attachment =
          cloud.find_attachment(deployment.mb_vm(0)->name(), "pmvol-r0");
      if (attachment) {
        cloud.storage(0).target().close_sessions_for(attachment->iqn);
        killed_at = sim.now();
      }
    }
  });

  bool pm_done = false;
  workload::PostmarkResult pm_result;
  postmark.run([&](workload::PostmarkResult r) {
    pm_result = r;
    pm_done = true;
  });

  // The health manager reschedules itself forever, so drive the clock in
  // slices until the workload finished and the replica is back.
  sim::Time rebuilt_at = 0;
  for (int slice = 0; slice < 600; ++slice) {
    sim.run_for(sim::milliseconds(100));
    if (rebuilt_at == 0 && service->rebuilds_completed() > 0) {
      rebuilt_at = sim.now();
    }
    if (pm_done && rebuilt_at != 0) break;
  }
  platform.health().stop();
  sim.run();
  if (rebuilt_at == 0 && service->rebuilds_completed() > 0) {
    rebuilt_at = sim.now();
  }

  result.rebuilt = rebuilt_at != 0;
  result.rebuild_ms = result.rebuilt
      ? static_cast<double>(rebuilt_at - killed_at) / 1e6 : 0;
  std::vector<sim::Duration> pre, during;
  for (const auto& [at, latency] : latencies) {
    if (killed_at == 0 || at <= killed_at) {
      pre.push_back(latency);
    } else if (rebuilt_at == 0 || at <= rebuilt_at) {
      during.push_back(latency);
    }
  }
  result.p99_pre_ms = p99_ms(pre);
  result.p99_during_ms = p99_ms(during);
  result.failed_writes = pm_result.errors + service->quorum_failures();
  result.stale_reads_prevented = service->stale_reads_prevented();
  result.reads_failed_over = service->reads_failed_over();
  result.rebuild_bytes = service->rebuild_bytes();
  result.rebuild_throttled_bytes =
      sim.telemetry()
          .counter("relay." + deployment.mb_vm(0)->name() +
                   ".replication.rebuild_throttled_bytes")
          .value();
  result.transactions = static_cast<std::uint64_t>(latencies.size());
  result.telemetry = sim.telemetry_json();
  if (!pm_done) result.failed_writes += 1;  // wedged workload = failure
  return result;
}

/// Report + gate: returns nonzero when the dependability claims the
/// rebuild scenario makes (no failed writes, no stale reads, the
/// replica actually returns, same-seed determinism) do not hold.
int report_rebuild(const RebuildResult& run1, bool deterministic) {
  std::printf("\nQuorum rebuild: PostMark under W=2/N=3, replica killed "
              "mid-run\n");
  std::printf("  transactions       : %llu\n",
              static_cast<unsigned long long>(run1.transactions));
  std::printf("  rebuild completed  : %s\n", run1.rebuilt ? "yes" : "NO");
  std::printf("  rebuild time       : %8.1f ms (%llu bytes streamed, "
              "%llu throttled)\n",
              run1.rebuild_ms,
              static_cast<unsigned long long>(run1.rebuild_bytes),
              static_cast<unsigned long long>(run1.rebuild_throttled_bytes));
  std::printf("  foreground p99     : %8.2f ms pre-kill, %8.2f ms "
              "degraded+rebuilding\n",
              run1.p99_pre_ms, run1.p99_during_ms);
  std::printf("  failed writes      : %llu\n",
              static_cast<unsigned long long>(run1.failed_writes));
  std::printf("  stale reads        : 0 served (%llu prevented, %llu "
              "reads failed over)\n",
              static_cast<unsigned long long>(run1.stale_reads_prevented),
              static_cast<unsigned long long>(run1.reads_failed_over));
  std::printf("  same-seed telemetry: %s\n",
              deterministic ? "byte-identical" : "DIVERGED");

  int rc = 0;
  if (!run1.rebuilt) {
    std::fprintf(stderr, "FAIL: replica never returned to rotation\n");
    rc = 1;
  }
  if (run1.failed_writes != 0) {
    std::fprintf(stderr, "FAIL: %llu foreground writes failed under "
                 "W=2/N=3 with one dead copy\n",
                 static_cast<unsigned long long>(run1.failed_writes));
    rc = 1;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: same-seed runs exported different telemetry\n");
    rc = 1;
  }
  return rc;
}

void report_mttr(const MttrResult& mttr) {
  std::printf("\nMTTR: replication middle-box power failure, "
              "recovery=standby\n");
  std::printf("  heartbeat %.1f ms x %u misses\n", mttr.heartbeat_ms,
              mttr.miss_threshold);
  std::printf("  detection          : %8.3f ms\n", mttr.detect_ms);
  std::printf("  repair (journal replay + rule swap + re-login): %8.3f ms\n",
              mttr.repair_ms);
  std::printf("  MTTR               : %8.3f ms\n", mttr.mttr_ms);
  std::printf("  failures=%llu recoveries=%llu failed_writes=%d\n",
              static_cast<unsigned long long>(mttr.failures),
              static_cast<unsigned long long>(mttr.recoveries),
              mttr.failed_writes);
}

/// One artifact covering both failure drills: whole-middle-box failover
/// (MTTR) and single-replica loss under quorum (degraded service +
/// throttled rebuild). CI's perf-smoke gate checks both field groups.
void write_failover_json(const MttrResult& mttr, const RebuildResult& rb,
                         bool deterministic) {
  std::ofstream out("BENCH_failover.json");
  out << "{\n"
      << "  \"bench\": \"failover\",\n"
      << "  \"policy\": \"standby\",\n"
      << "  \"heartbeat_interval_ms\": " << mttr.heartbeat_ms << ",\n"
      << "  \"miss_threshold\": " << mttr.miss_threshold << ",\n"
      << "  \"detect_ms\": " << mttr.detect_ms << ",\n"
      << "  \"repair_ms\": " << mttr.repair_ms << ",\n"
      << "  \"mttr_ms\": " << mttr.mttr_ms << ",\n"
      << "  \"failures\": " << mttr.failures << ",\n"
      << "  \"recoveries\": " << mttr.recoveries << ",\n"
      << "  \"failed_writes\": " << mttr.failed_writes << ",\n"
      << "  \"write_quorum\": 2,\n"
      << "  \"copies\": 3,\n"
      << "  \"rebuild_transactions\": " << rb.transactions << ",\n"
      << "  \"rebuild_completed\": " << (rb.rebuilt ? "true" : "false")
      << ",\n"
      << "  \"rebuild_ms\": " << rb.rebuild_ms << ",\n"
      << "  \"rebuild_bytes\": " << rb.rebuild_bytes << ",\n"
      << "  \"rebuild_throttled_bytes\": " << rb.rebuild_throttled_bytes
      << ",\n"
      << "  \"rebuild_p99_pre_ms\": " << rb.p99_pre_ms << ",\n"
      << "  \"rebuild_p99_during_ms\": " << rb.p99_during_ms << ",\n"
      << "  \"rebuild_failed_writes\": " << rb.failed_writes << ",\n"
      << "  \"stale_reads_prevented\": " << rb.stale_reads_prevented
      << ",\n"
      << "  \"reads_failed_over\": " << rb.reads_failed_over << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false")
      << "\n"
      << "}\n";
}

/// CI artifact mode: both failure drills, gated, no TPS timelines.
int run_failover_suite() {
  print_header("Failover MTTR (recovery=standby)");
  MttrResult mttr = run_mttr_case();
  report_mttr(mttr);

  RebuildResult run1 = run_rebuild_case(/*seed=*/11);
  RebuildResult run2 = run_rebuild_case(/*seed=*/11);
  const bool deterministic = run1.telemetry == run2.telemetry;
  int rc = report_rebuild(run1, deterministic);
  write_failover_json(mttr, run1, deterministic);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // --mttr-only: skip the 120-simulated-second TPS timelines and run just
  // the failure drills (CI artifact mode; gates the quorum rebuild too).
  const bool mttr_only =
      argc > 1 && std::strcmp(argv[1], "--mttr-only") == 0;
  if (mttr_only) {
    return run_failover_suite();
  }

  print_header("Figure 13: MySQL-like TPS with replication, replica failure at t=60s");

  // --threads 1,4,8 sweeps the TPS scenario over the partitioned cloud
  // (chaos included) and gates byte-identical telemetry across counts.
  // Without the flag the classic single-partition kernel runs once. The
  // failover drills below always run on the classic kernel.
  const std::vector<unsigned> counts = parse_thread_flag(argc, argv);
  RunResult three, one;
  if (counts.empty()) {
    three = run_case(/*replicas=*/2, /*inject_failure=*/true, 120, 0);
    one = run_case(/*replicas=*/0, /*inject_failure=*/false, 120, 0);
  } else {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      std::printf("--- threads=%u ---\n", counts[i]);
      RunResult t = run_case(2, true, 120, counts[i]);
      RunResult o = run_case(0, false, 120, counts[i]);
      if (i == 0) {
        three = std::move(t);
        one = std::move(o);
      } else if (t.telemetry != three.telemetry ||
                 o.telemetry != one.telemetry) {
        std::fprintf(stderr,
                     "FAIL: fig13 telemetry at %u threads differs from %u\n",
                     counts[i], counts[0]);
        return 1;
      }
    }
    if (counts.size() > 1) {
      std::printf("telemetry byte-identical across thread counts: yes\n");
    }
  }

  std::printf("time(s)  tps_3replica  tps_1replica\n");
  for (std::size_t s = 0; s < three.tps_timeline.size(); s += 5) {
    std::printf("%6zu  %12.0f  %12.0f%s\n", s, three.tps_timeline[s],
                s < one.tps_timeline.size() ? one.tps_timeline[s] : 0.0,
                s == 60 ? "   <- replica fails" : "");
  }

  double pre_fail = 0, post_fail = 0;
  int pre_n = 0, post_n = 0;
  for (std::size_t s = 10; s < 58; ++s) {
    pre_fail += three.tps_timeline[s];
    ++pre_n;
  }
  for (std::size_t s = 65; s < 115; ++s) {
    post_fail += three.tps_timeline[s];
    ++post_n;
  }
  pre_fail /= pre_n;
  post_fail /= post_n;

  std::printf("\n3-replica steady TPS (pre-failure) : %.0f\n", pre_fail);
  std::printf("3-replica steady TPS (post-failure): %.0f\n", post_fail);
  std::printf("1-replica steady TPS               : %.0f\n", one.steady_tps);
  std::printf("3-replica vs 1-replica improvement : %.0f%%\n",
              (pre_fail / one.steady_tps - 1.0) * 100.0);
  std::printf("\npaper: DB keeps running after the failure, TPS drops "
              "slightly;\n       3 replicas ~80%% above the 1-replica "
              "baseline\n");

  return run_failover_suite();
}
