// Fault-injection storm benchmark: the active-relay data path under an
// increasingly hostile fabric. Each scenario runs the same write workload
// over several seeds and reports the fault/recovery counters plus an
// end-to-end data-integrity verdict (the volume image is compared byte
// for byte against what a fault-free run would have produced).
//
//   BASELINE    clean fabric
//   LOSS        1% packet loss
//   LOSS+CORR   1% loss, 0.1% corruption, 0.2% duplication
//   CRASH       LOSS+CORR plus a middle-box power failure mid-workload
//   FULL-STORM  CRASH plus a link flap and a storage-backend blip
//
// The interesting result is the right-hand column: every scenario must
// end with data_ok=yes — loss is absorbed by TCP retransmission,
// corruption by checksums, the power failure by journal replay plus
// initiator session recovery (paper §III-B).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "crypto/sha256.hpp"
#include "sim/fault.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

constexpr int kWrites = 64;
constexpr std::uint32_t kSectors = 16;  // 8 KiB per write

Bytes pattern(std::size_t n, std::uint8_t seed) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return out;
}

struct Scenario {
  const char* name;
  sim::PacketFaultProfile profile;
  bool crash;
  bool flap;
  bool backend_blip;
};

struct Outcome {
  double sim_ms = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t checksum_drops = 0;
  std::uint64_t replays = 0;
  std::uint64_t recoveries = 0;
  int failed_writes = 0;
  bool data_ok = false;
};

Bytes expected_image() {
  Bytes image;
  for (int i = 0; i < kWrites; ++i) {
    Bytes chunk = pattern(kSectors * block::kSectorSize,
                          static_cast<std::uint8_t>(i + 1));
    image.insert(image.end(), chunk.begin(), chunk.end());
  }
  return image;
}

Outcome run_scenario(const Scenario& scenario, std::uint64_t seed) {
  sim::Simulator sim;
  cloud::Cloud cloud(sim, cloud::CloudConfig{});
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);
  sim::FaultPlan plan(sim, seed);

  cloud::Vm& vm = cloud.create_vm("vm", "tenant1", 0);
  if (!cloud.create_volume("vol", 65'536).is_ok()) std::abort();
  core::ServiceSpec spec;
  spec.type = "noop";
  spec.relay = core::RelayMode::kActive;
  Status status = error(ErrorCode::kIoError, "unset");
  core::DeploymentHandle dep;
  platform.attach_with_chain("vm", "vol", {spec},
                             [&](Result<core::DeploymentHandle> r) {
                               status = r.status();
                               if (r.is_ok()) dep = r.value();
                             });
  sim.run();
  if (!status.is_ok() || !dep.valid()) std::abort();
  dep.attachment()->initiator->set_recovery({.enabled = true});

  // Faults arm only after the clean attach.
  cloud.set_fault_plan(&plan, scenario.profile);

  Outcome out;
  int completed = 0;
  for (int i = 0; i < kWrites; ++i) {
    Bytes data = pattern(kSectors * block::kSectorSize,
                         static_cast<std::uint8_t>(i + 1));
    vm.disk()->write(static_cast<std::uint64_t>(i) * kSectors,
                     std::move(data), [&](Status s) {
                       ++completed;
                       if (!s.is_ok()) ++out.failed_writes;
                     });
  }

  if (scenario.crash) {
    plan.schedule(sim::milliseconds(2), "crash mb0",
                  [&] { (void)dep.crash_middlebox(0); });
    plan.schedule(sim::milliseconds(22), "restart mb0",
                  [&] { (void)dep.restart_middlebox(0); });
  }
  if (scenario.flap) {
    net::Link* mb_link = cloud.find_link("vm." + dep.mb_vm(0)->name());
    // Windows are hundreds of milliseconds so they straddle RTO cycles —
    // a blink shorter than the retransmission timer can land in an idle
    // gap and perturb nothing.
    if (mb_link != nullptr) {
      plan.schedule(sim::milliseconds(600), "flap mb link down",
                    [mb_link] { mb_link->set_down(true); });
      plan.schedule(sim::milliseconds(900), "flap mb link up",
                    [mb_link] { mb_link->set_down(false); });
    }
  }
  if (scenario.backend_blip) {
    plan.schedule(sim::milliseconds(1500), "backend down",
                  [&] { cloud.storage(0).node().set_down(true); });
    plan.schedule(sim::milliseconds(1800), "backend up",
                  [&] { cloud.storage(0).node().set_down(false); });
  }
  sim.run();

  if (completed != kWrites) out.failed_writes += kWrites - completed;
  out.sim_ms = static_cast<double>(sim.now()) / 1e6;
  out.dropped = plan.dropped();
  out.corrupted = plan.corrupted();
  out.duplicated = plan.duplicated();
  out.replays = dep.active_relay(0)->journal_replays();
  out.recoveries = dep.attachment()->initiator->recoveries();
  out.retransmits = cloud.compute(0).node().tcp().retransmits() +
                    dep.mb_vm(0)->node().tcp().retransmits() +
                    cloud.storage(0).node().tcp().retransmits();
  out.checksum_drops = cloud.compute(0).node().tcp().checksum_drops() +
                       dep.mb_vm(0)->node().tcp().checksum_drops() +
                       cloud.storage(0).node().tcp().checksum_drops();

  auto volume = cloud.storage(0).volumes().find_by_name("vol");
  Bytes image = volume.value()->disk().store().read_sync(
      0, static_cast<std::uint32_t>(kWrites) * kSectors);
  out.data_ok =
      out.failed_writes == 0 &&
      crypto::sha256(image) == crypto::sha256(expected_image());
  return out;
}

}  // namespace

int main() {
  sim::PacketFaultProfile clean;
  sim::PacketFaultProfile loss;
  loss.drop_rate = 0.01;
  sim::PacketFaultProfile storm = loss;
  storm.corrupt_rate = 0.001;
  storm.duplicate_rate = 0.002;

  const Scenario scenarios[] = {
      {"BASELINE", clean, false, false, false},
      {"LOSS", loss, false, false, false},
      {"LOSS+CORR", storm, false, false, false},
      {"CRASH", storm, true, false, false},
      {"FULL-STORM", storm, true, true, true},
  };

  print_header("fault storm: active relay, 64 x 8 KiB writes");
  std::printf("%-11s %5s %8s %6s %5s %4s %7s %6s %7s %5s %5s %s\n",
              "scenario", "seed", "sim_ms", "drop", "corr", "dup", "retx",
              "csumd", "replays", "recov", "fail", "data_ok");
  for (const Scenario& scenario : scenarios) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      Outcome o = run_scenario(scenario, seed);
      std::printf("%-11s %5llu %8.2f %6llu %5llu %4llu %7llu %6llu %7llu "
                  "%5llu %5d %s\n",
                  scenario.name, static_cast<unsigned long long>(seed),
                  o.sim_ms, static_cast<unsigned long long>(o.dropped),
                  static_cast<unsigned long long>(o.corrupted),
                  static_cast<unsigned long long>(o.duplicated),
                  static_cast<unsigned long long>(o.retransmits),
                  static_cast<unsigned long long>(o.checksum_drops),
                  static_cast<unsigned long long>(o.replays),
                  static_cast<unsigned long long>(o.recoveries),
                  o.failed_writes, o.data_ok ? "yes" : "NO");
    }
  }
  return 0;
}
