// Reproduces paper Figures 6 and 9: middle-box processing overhead vs
// parallelism. Same setup as Figures 5/8 but the I/O size is fixed at
// 16 KB and the fio job count sweeps 4..32 ("to simulate parallelism in
// the tenant's application").
//
// Paper reference points (normalized to MB-FWD):
//   Fig. 6 IOPS    : ACTIVE 1.06 / 1.10 / 1.27 / 1.39 at 4/8/16/32 jobs
//   Fig. 9 latency : ACTIVE 0.95 / 0.91 / 0.79 / 0.70
// The paper adds that at 32 threads even vs LEGACY the active-relay
// overhead is "much less than 10%".
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

std::vector<std::string> run_point(unsigned threads) {
  TestbedOptions options;
  options.threads = threads;
  std::vector<std::string> dumps;
  const std::vector<unsigned> jobs = {4, 8, 16, 32};
  constexpr std::uint32_t kSize = 16 * 1024;
  print_header("Figure 6 + 9: processing overhead vs fio threads (16 KB)");
  std::printf("%-8s %10s %10s %10s | %9s %9s | %9s %9s | %9s\n", "jobs",
              "fwd_iops", "pass_iops", "act_iops", "pass_n", "act_n",
              "pass_lat", "act_lat", "act/leg");
  for (unsigned n : jobs) {
    std::string d0, d1, d2, d3;
    auto legacy =
        fio_point(PathMode::kLegacy, kSize, n, sim::seconds(5), options, &d0);
    auto fwd =
        fio_point(PathMode::kForward, kSize, n, sim::seconds(5), options, &d1);
    auto passive =
        fio_point(PathMode::kPassive, kSize, n, sim::seconds(5), options, &d2);
    auto active =
        fio_point(PathMode::kActive, kSize, n, sim::seconds(5), options, &d3);
    dumps.push_back(std::move(d0));
    dumps.push_back(std::move(d1));
    dumps.push_back(std::move(d2));
    dumps.push_back(std::move(d3));
    std::printf("%-8u %10.0f %10.0f %10.0f | %9.2f %9.2f | %9.2f %9.2f | %9.2f\n",
                n, fwd.iops, passive.iops, active.iops,
                passive.iops / fwd.iops, active.iops / fwd.iops,
                passive.mean_latency_ms / fwd.mean_latency_ms,
                active.mean_latency_ms / fwd.mean_latency_ms,
                active.iops / legacy.iops);
  }
  std::printf("\npaper Fig.6 norm IOPS: ACTIVE 1.06 1.10 1.27 1.39\n");
  std::printf("paper Fig.9 norm lat : ACTIVE 0.95 0.91 0.79 0.70\n");
  return dumps;
}

}  // namespace

int main(int argc, char** argv) {
  return run_thread_sweep(argc, argv, run_point);
}
