// Reproduces paper Figure 10 (+ §V-B2 bandwidth numbers): CPU-utilization
// breakdown for FTP transfers over an encrypted volume, comparing
//   (a) encryption performed inside the tenant VM (dm-crypt style), vs
//   (b) encryption performed by a StorM middle-box.
//
// Paper reference: both solutions run near line rate (~88 vs ~84 MB/s);
// the tenant-side solution burns ~85% CPU in the tenant VM, while the
// middle-box solution shifts the cipher work out (tenant ~25%, MB ~37%)
// and lowers *total* CPU by ~20%.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "fs/simext.hpp"
#include "services/encrypted_disk.hpp"
#include "workload/ftp.hpp"

using namespace storm;
using namespace storm::bench;

namespace {

struct CpuSample {
  double tenant = 0;
  double middlebox = 0;
  double target = 0;
  double bandwidth_mb_s = 0;
};

CpuSample run_case(bool tenant_side) {
  TestbedOptions options;
  options.service = "encryption";
  options.volume_sectors = 2ull * 1024 * 1024;  // 1 GiB
  Testbed testbed(tenant_side ? PathMode::kLegacy : PathMode::kActive,
                  options);
  auto& sim = testbed.simulator();
  auto& cloud = testbed.cloud();

  // Filesystem on the server VM's (possibly encrypted-below) disk.
  block::BlockDevice* disk = testbed.disk();
  std::unique_ptr<services::EncryptedDisk> dmcrypt;
  if (tenant_side) {
    // mkfs the raw image THEN stack dm-crypt? No: dm-crypt sits below the
    // filesystem, so format through it.
    dmcrypt = std::make_unique<services::EncryptedDisk>(
        *testbed.disk(), testbed.vm().cpu(), Bytes(64, 0x24));
    disk = dmcrypt.get();
  }
  // Format through the data path (everything at rest is ciphertext).
  {
    block::MemDisk image(options.volume_sectors);
    if (!fs::SimExt::mkfs(image).is_ok()) throw std::runtime_error("mkfs");
    const Bytes zero(fs::kBlockSize, 0);
    for (std::uint64_t block = 0;
         block < options.volume_sectors / fs::kSectorsPerBlock; ++block) {
      Bytes content =
          image.read_sync(block * fs::kSectorsPerBlock, fs::kSectorsPerBlock);
      if (content == zero) continue;
      bool ok = false;
      disk->write(block * fs::kSectorsPerBlock, std::move(content),
                  [&](Status s) { ok = s.is_ok(); });
      sim.run();
      if (!ok) throw std::runtime_error("format write failed");
    }
  }
  fs::SimExt fs(sim, *disk);
  fs.mount([](Status s) {
    if (!s.is_ok()) throw std::runtime_error("mount: " + s.to_string());
  });
  sim.run();

  workload::FtpServer server(testbed.vm(), fs);
  server.start();
  cloud::Vm& client_vm = cloud.create_vm("ftp-client", "tenant1", 1);
  workload::FtpClient client(client_vm,
                             net::SocketAddr{testbed.vm().ip(), 2121});

  // Measure CPU over the transfer window only.
  sim::Time window_start = sim.now();
  auto tenant_busy0 = testbed.vm().cpu().busy_time();
  sim::Cpu* mb_cpu = nullptr;
  std::uint64_t mb_busy0 = 0;
  if (!tenant_side) {
    mb_cpu = &testbed.deployment().mb_vm(0)->cpu();
    mb_busy0 = mb_cpu->busy_time();
  }
  auto target_busy0 = cloud.storage(0).cpu().busy_time();

  constexpr std::uint64_t kFileBytes = 256ull * 1024 * 1024;
  workload::FtpTransferResult up{}, down{};
  bool done = false;
  client.upload("big.bin", kFileBytes, [&](workload::FtpTransferResult r) {
    up = r;
    client.download("big.bin", [&](workload::FtpTransferResult r2) {
      down = r2;
      done = true;
    });
  });
  sim.run();
  if (!done) throw std::runtime_error("ftp did not finish");

  double window = static_cast<double>(sim.now() - window_start);
  CpuSample sample;
  sample.tenant =
      static_cast<double>(testbed.vm().cpu().busy_time() - tenant_busy0) /
      (window * testbed.vm().cpu().cores());
  if (mb_cpu != nullptr) {
    sample.middlebox = static_cast<double>(mb_cpu->busy_time() - mb_busy0) /
                       (window * mb_cpu->cores());
  }
  sample.target =
      static_cast<double>(cloud.storage(0).cpu().busy_time() - target_busy0) /
      (window * cloud.storage(0).cpu().cores());
  sample.bandwidth_mb_s = (up.mb_per_s + down.mb_per_s) / 2.0;
  return sample;
}

}  // namespace

int main() {
  print_header("Figure 10: CPU utilization breakdown (FTP + AES-256)");
  CpuSample tenant_side = run_case(true);
  CpuSample mb_side = run_case(false);

  std::printf("%-22s %10s %10s %10s %10s | %10s\n", "scenario", "tenant%",
              "mb%", "target%", "total%", "MB/s");
  std::printf("%-22s %9.1f%% %9.1f%% %9.1f%% %9.1f%% | %10.1f\n",
              "performed-by-VM", tenant_side.tenant * 100, 0.0,
              tenant_side.target * 100,
              (tenant_side.tenant + tenant_side.target) * 100,
              tenant_side.bandwidth_mb_s);
  std::printf("%-22s %9.1f%% %9.1f%% %9.1f%% %9.1f%% | %10.1f\n",
              "performed-by-MB", mb_side.tenant * 100,
              mb_side.middlebox * 100, mb_side.target * 100,
              (mb_side.tenant + mb_side.middlebox + mb_side.target) * 100,
              mb_side.bandwidth_mb_s);
  std::printf("\npaper: VM-side tenant ~85%%, MB-side tenant ~25%% + MB ~37%%;"
              "\n       total CPU ~20%% lower with the middle-box;"
              "\n       bandwidth ~88 vs ~84 MB/s (both near line rate)\n");
  return 0;
}
