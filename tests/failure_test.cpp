// Failure-injection suite: how the platform behaves when links, nodes,
// middle-boxes and sessions die — the paper's dependability claims.
#include <gtest/gtest.h>

#include <functional>

#include "core/active_relay.hpp"
#include "core/platform.hpp"
#include "core/reconstruction.hpp"
#include "fs/simext.hpp"
#include "journal/log.hpp"
#include "services/registry.hpp"
#include "services/replication.hpp"
#include "testutil.hpp"

namespace storm {
namespace {

using core::DeploymentHandle;
using core::RelayMode;
using core::ServiceSpec;

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : cloud_(sim_, cloud::CloudConfig{}), platform_(cloud_) {
    services::register_builtin_services(platform_);
  }

  DeploymentHandle deploy_active(const std::string& vm,
                                 const std::string& vol) {
    ServiceSpec spec;
    spec.type = "noop";
    spec.relay = RelayMode::kActive;
    Status status = error(ErrorCode::kIoError, "unset");
    DeploymentHandle deployment;
    platform_.attach_with_chain(vm, vol, {spec},
                                [&](Result<DeploymentHandle> r) {
                                  status = r.status();
                                  if (r.is_ok()) deployment = r.value();
                                });
    sim_.run();
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return deployment;
  }

  sim::Simulator sim_;
  cloud::Cloud cloud_;
  core::StormPlatform platform_;
};

// Ported from the PR-5 backpressure suite and re-pointed at the journal
// engine: crash the relay while backpressure has it paused at the NVRAM
// watermark. Restart must replay the engine's segmented log (not the old
// per-session buffer), the paused ingress state must not leak into the
// rebuilt sessions, and no acknowledged write may be lost.
TEST_F(FailureTest, JournalReplaysAfterBackpressurePausedCrash) {
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 40'000).is_ok());

  ServiceSpec spec;
  spec.type = "noop";
  spec.relay = RelayMode::kActive;
  spec.params["journal_hwm_kb"] = "32";
  spec.params["journal_lwm_kb"] = "8";
  spec.params["journal_segment_kb"] = "64";  // several segments in play
  Status status = error(ErrorCode::kIoError, "unset");
  DeploymentHandle dep;
  platform_.attach_with_chain("vm", "vol", {spec},
                              [&](Result<DeploymentHandle> r) {
                                status = r.status();
                                if (r.is_ok()) dep = r.value();
                              });
  sim_.run();
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  ASSERT_TRUE(dep.valid());
  dep.attachment()->initiator->set_recovery({.enabled = true});
  core::ActiveRelay* relay = dep.active_relay(0);
  ASSERT_NE(relay, nullptr);
  ASSERT_EQ(relay->journal_device().config().segment_bytes, 64u * 1024u);

  cloud_.storage(0).node().set_down(true);

  constexpr int kWrites = 8;
  constexpr std::uint32_t kSectors = 128;
  int completed = 0, failed = 0, next = 0;
  std::function<void()> issue = [&] {
    const int i = next++;
    Bytes data = testutil::pattern_bytes(kSectors * block::kSectorSize,
                                         static_cast<std::uint8_t>(i + 1));
    vm.disk()->write(static_cast<std::uint64_t>(i) * kSectors,
                     std::move(data), [&](Status s) {
                       ++completed;
                       if (!s.is_ok()) ++failed;
                       if (next < kWrites) issue();
                     });
  };
  for (int i = 0; i < 4; ++i) issue();

  sim_.run_until(sim::milliseconds(200));
  ASSERT_GE(relay->paused_directions(), 1u) << "pause must precede crash";
  ASSERT_GE(relay->journal_bytes(), 1u);
  // The buffered PDUs live in the engine's NVRAM segments, not in
  // volatile session state: the physical image must cover them.
  journal::Device& device = relay->journal_device();
  EXPECT_GE(device.device_bytes(), relay->journal_bytes());
  EXPECT_GE(device.export_image().bytes(), relay->journal_bytes());

  ASSERT_TRUE(dep.crash_middlebox(0).is_ok());
  cloud_.storage(0).node().set_down(false);
  sim_.run_for(sim::milliseconds(20));
  ASSERT_TRUE(dep.restart_middlebox(0).is_ok());
  sim_.run();

  EXPECT_EQ(completed, kWrites);
  EXPECT_EQ(failed, 0) << "a paused crash must not lose acknowledged writes";
  EXPECT_GT(relay->journal_replays(), 0u);
  EXPECT_GT(dep.attachment()->initiator->recoveries(), 0u);
  EXPECT_EQ(relay->paused_directions(), 0u);
  // Engine-level replay telemetry: the restart went through a segment
  // scan, and everything drained after recovery.
  const std::string journal_scope =
      "relay." + dep.mb_vm(0)->name() + ".journal.";
  EXPECT_GE(sim_.telemetry().counter(journal_scope + "replays").value(), 1u);
  EXPECT_GT(
      sim_.telemetry().counter(journal_scope + "replay_records_recovered")
          .value(),
      0u);
  EXPECT_EQ(relay->journal_bytes(), 0u);

  auto volume = cloud_.storage(0).volumes().find_by_name("vol");
  ASSERT_TRUE(volume.is_ok());
  for (int i = 0; i < kWrites; ++i) {
    Bytes expect = testutil::pattern_bytes(kSectors * block::kSectorSize,
                                           static_cast<std::uint8_t>(i + 1));
    EXPECT_EQ(volume.value()->disk().store().read_sync(
                  static_cast<std::uint64_t>(i) * kSectors, kSectors),
              expect)
        << "write " << i << " corrupted or lost";
  }
}

TEST_F(FailureTest, TargetSessionCloseFailsTenantIoThroughChain) {
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 20'000).is_ok());
  DeploymentHandle dep = deploy_active("vm", "vol");

  // Outstanding write, then the target kills the (relay-side) session.
  int state = 0;
  vm.disk()->write(0, Bytes(64 * block::kSectorSize, 1),
                   [&](Status s) { state = s.is_ok() ? 1 : -1; });
  EXPECT_EQ(cloud_.storage(0).target().close_sessions_for(
                dep.attachment()->iqn), 1u);
  sim_.run();
  // The relay propagates the upstream loss to the tenant side: the
  // initiator's command fails rather than hanging forever.
  EXPECT_EQ(state, -1);
}

TEST_F(FailureTest, MiddleboxVmPowerOffStallsButDoesNotCorrupt) {
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 20'000).is_ok());
  DeploymentHandle dep = deploy_active("vm", "vol");

  // Prove a write works, then power off the middle-box VM.
  bool first_ok = false;
  vm.disk()->write(0, Bytes(block::kSectorSize, 0xAA),
                   [&](Status s) { first_ok = s.is_ok(); });
  sim_.run();
  ASSERT_TRUE(first_ok);

  dep.mb_vm(0)->node().set_down(true);
  int state = 0;
  vm.disk()->write(8, Bytes(block::kSectorSize, 0xBB),
                   [&](Status s) { state = s.is_ok() ? 1 : -1; });
  sim_.run();
  // Silent node-down gives no RST: the I/O stalls (0), it must not be
  // reported successful, and the earlier data is untouched.
  EXPECT_NE(state, 1);
  auto volume = cloud_.storage(0).volumes().find_by_name("vol");
  EXPECT_EQ(volume.value()->disk().store().read_sync(0, 1),
            Bytes(block::kSectorSize, 0xAA));
  EXPECT_EQ(volume.value()->disk().store().read_sync(8, 1),
            Bytes(block::kSectorSize, 0x00));
}

TEST_F(FailureTest, StorageLinkFlapDropsInFlightOnly) {
  // LEGACY path: flap the host's storage link around an I/O burst.
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 20'000).is_ok());
  Status status = error(ErrorCode::kIoError, "unset");
  cloud_.attach_volume(vm, "vol",
                       [&](Status s, cloud::Attachment) { status = s; });
  sim_.run();
  ASSERT_TRUE(status.is_ok());

  bool ok = false;
  vm.disk()->write(0, Bytes(block::kSectorSize, 1),
                   [&](Status s) { ok = s.is_ok(); });
  sim_.run();
  ASSERT_TRUE(ok);

  // No traffic while the link flaps: nothing breaks afterwards (TCP-lite
  // has no keepalives, so an idle flap is invisible).
  cloud_.storage_switch();  // (link is private; flap via node down/up)
  cloud_.storage(0).node().set_down(true);
  sim_.run_for(sim::milliseconds(5));
  cloud_.storage(0).node().set_down(false);

  ok = false;
  vm.disk()->write(8, Bytes(block::kSectorSize, 2),
                   [&](Status s) { ok = s.is_ok(); });
  sim_.run();
  EXPECT_TRUE(ok) << "idle-time outage must not poison the session";
}

TEST_F(FailureTest, RelayRecoveryPreservesExactlyOnceWrites) {
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 40'000).is_ok());
  DeploymentHandle dep = deploy_active("vm", "vol");
  core::ActiveRelay& relay = *dep.active_relay(0);

  // Start a 128 KB write; cut the upstream while its burst is in flight;
  // the tenant-side write stalls (journaled), then completes after
  // recovery with byte-exact content.
  Bytes payload = testutil::pattern_bytes(256 * block::kSectorSize);
  int state = 0;
  vm.disk()->write(100, payload, [&](Status s) {
    state = s.is_ok() ? 1 : -1;
  });
  sim_.run_for(sim::microseconds(300));
  relay.fail_upstream();
  sim_.run();
  EXPECT_EQ(state, 0) << "write should stall, not fail: tenant side alive";
  EXPECT_GT(relay.journal_bytes(), 0u);

  relay.recover_upstream();
  sim_.run();
  EXPECT_EQ(state, 1) << "journal replay must complete the write";
  auto volume = cloud_.storage(0).volumes().find_by_name("vol");
  EXPECT_EQ(volume.value()->disk().store().read_sync(100, 256), payload);
}

TEST_F(FailureTest, ReadsAfterRecoveryAreServed) {
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 20'000).is_ok());
  DeploymentHandle dep = deploy_active("vm", "vol");
  core::ActiveRelay& relay = *dep.active_relay(0);

  Bytes data = testutil::pattern_bytes(16 * block::kSectorSize);
  bool ok = false;
  vm.disk()->write(0, data, [&](Status s) { ok = s.is_ok(); });
  sim_.run();
  ASSERT_TRUE(ok);

  relay.fail_upstream();
  sim_.run();
  relay.recover_upstream();
  sim_.run();

  Bytes got;
  vm.disk()->read(0, 16, [&](Status s, Bytes d) {
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    got = std::move(d);
  });
  sim_.run();
  EXPECT_EQ(got, data);
}

TEST_F(FailureTest, DetachMidWriteDrainsWithoutLossOrDuplication) {
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 40'000).is_ok());
  DeploymentHandle dep = deploy_active("vm", "vol");

  // A burst of distinct-LBA writes, then detach while they are still in
  // flight: the drain protocol must land every admitted write exactly
  // once before the rules come down.
  constexpr int kWrites = 8;
  constexpr std::uint32_t kSectors = 16;
  int completed = 0;
  int failed = 0;
  for (int i = 0; i < kWrites; ++i) {
    vm.disk()->write(
        static_cast<std::uint64_t>(i) * kSectors,
        testutil::pattern_bytes(kSectors * block::kSectorSize,
                                static_cast<std::uint8_t>(i + 1)),
        [&](Status s) {
          ++completed;
          if (!s.is_ok()) ++failed;
        });
  }
  sim_.run_for(sim::microseconds(200));  // mid-flight
  ASSERT_GT(dep.attachment()->initiator->outstanding(), 0u);
  ASSERT_LT(completed, kWrites);
  ASSERT_TRUE(dep.detach().is_ok());
  EXPECT_TRUE(dep.draining());

  // Nothing new is admitted once the drain begins.
  int late = 0;
  vm.disk()->write(static_cast<std::uint64_t>(kWrites) * kSectors,
                   Bytes(block::kSectorSize, 0xEE),
                   [&](Status s) { late = s.is_ok() ? 1 : -1; });
  sim_.run();
  EXPECT_EQ(late, -1) << "post-detach write must be refused";

  // Every admitted write completed, none errored, and the image holds
  // each block exactly as written — no loss, no duplication.
  EXPECT_EQ(completed, kWrites);
  EXPECT_EQ(failed, 0);
  EXPECT_FALSE(dep.valid()) << "teardown must invalidate the handle";
  auto volume = cloud_.storage(0).volumes().find_by_name("vol");
  for (int i = 0; i < kWrites; ++i) {
    EXPECT_EQ(volume.value()->disk().store().read_sync(
                  static_cast<std::uint64_t>(i) * kSectors, kSectors),
              testutil::pattern_bytes(kSectors * block::kSectorSize,
                                      static_cast<std::uint8_t>(i + 1)))
        << "block " << i;
  }
}

// Seeded chaos: kill a replica's backing session in the middle of a
// read burst. Reads that were in flight against the dying copy must be
// re-served from survivors with byte-identical payloads, and the read
// accounting must cover every read exactly once (the old dispatch-time
// counter double-counted a failed-over read as served-from-replica).
TEST_F(FailureTest, ReplicaKillMidReadBurstFailsOverWithoutDuplication) {
  cloud::Vm& vm = cloud_.create_vm("db", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("primary", 40'000).is_ok());
  ASSERT_TRUE(cloud_.create_volume("replica0", 40'000).is_ok());
  ASSERT_TRUE(cloud_.create_volume("replica1", 40'000).is_ok());

  ServiceSpec spec;
  spec.type = "replication";
  spec.relay = RelayMode::kActive;
  spec.params["replicas"] = "replica0,replica1";
  spec.quorum.enabled = true;
  spec.quorum.write_quorum = 2;
  Status status = error(ErrorCode::kIoError, "unset");
  DeploymentHandle dep;
  platform_.attach_with_chain("db", "primary", {spec},
                              [&](Result<DeploymentHandle> r) {
                                status = r.status();
                                if (r.is_ok()) dep = r.value();
                              });
  sim_.run();
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  ASSERT_TRUE(dep.valid());
  auto* service =
      static_cast<services::ReplicationService*>(dep.service(0));

  // Seeded layout: 16 extents, each with a pattern derived from its
  // index — a failover that returned the wrong copy's bytes (or stale
  // ones) breaks the comparison below.
  constexpr int kExtents = 16;
  constexpr std::uint32_t kSectors = 8;
  for (int i = 0; i < kExtents; ++i) {
    bool ok = false;
    vm.disk()->write(static_cast<std::uint64_t>(i) * 64,
                     testutil::pattern_bytes(kSectors * block::kSectorSize,
                                             static_cast<std::uint8_t>(i + 1)),
                     [&](Status s) {
                       ASSERT_TRUE(s.is_ok()) << s.to_string();
                       ok = true;
                     });
    sim_.run();
    ASSERT_TRUE(ok);
  }
  const std::uint64_t reads_before = service->reads_from_primary() +
                                     service->reads_from_replicas() +
                                     service->reads_failed_over();

  // Fire the whole burst without draining the simulator, then kill
  // replica0's session while reads are still in flight.
  constexpr int kReads = 48;
  int completed = 0, failed = 0, mismatched = 0;
  for (int i = 0; i < kReads; ++i) {
    const int extent = i % kExtents;
    vm.disk()->read(
        static_cast<std::uint64_t>(extent) * 64, kSectors,
        [&, extent](Status s, Bytes got) {
          ++completed;
          if (!s.is_ok()) {
            ++failed;
            return;
          }
          if (got != testutil::pattern_bytes(
                         kSectors * block::kSectorSize,
                         static_cast<std::uint8_t>(extent + 1))) {
            ++mismatched;
          }
        });
  }
  auto iqn = cloud_.find_attachment(dep.mb_vm(0)->name(), "replica0");
  ASSERT_TRUE(iqn.has_value());
  sim_.schedule_in(sim::microseconds(40), [&] {
    cloud_.storage(0).target().close_sessions_for(iqn->iqn);
  });
  sim_.run();

  EXPECT_EQ(completed, kReads) << "every read must complete";
  EXPECT_EQ(failed, 0) << "failover must hide the replica death";
  EXPECT_EQ(mismatched, 0) << "failover payloads must be byte-identical";
  EXPECT_EQ(service->replica_state(0),
            services::ReplicaState::kDegraded);

  // Exactly-once accounting: primary + replica + failed-over sums to
  // the burst, with no read counted both as replica-served and as a
  // failover (the dispatch-time double-count this suite guards).
  EXPECT_EQ(service->reads_from_primary() + service->reads_from_replicas() +
                service->reads_failed_over() - reads_before,
            static_cast<std::uint64_t>(kReads));
  EXPECT_GT(service->reads_failed_over(), 0u)
      << "the kill must have caught reads in flight";
}

// --- double-indirect reconstruction (large files) -----------------------------

TEST(ReconstructionLarge, DoubleIndirectFilesResolve) {
  sim::Simulator sim;
  block::MemDisk disk(16384 * fs::kSectorsPerBlock);  // 64 MB
  ASSERT_TRUE(fs::SimExt::mkfs(disk).is_ok());

  std::unique_ptr<core::SemanticsReconstructor> recon;
  struct Tap : block::BlockDevice {
    block::MemDisk& inner;
    std::unique_ptr<core::SemanticsReconstructor>& recon;
    Tap(block::MemDisk& d, std::unique_ptr<core::SemanticsReconstructor>& r)
        : inner(d), recon(r) {}
    void read(std::uint64_t lba, std::uint32_t count,
              ReadCallback done) override {
      if (recon) recon->on_read(lba, count * 512ull);
      inner.read(lba, count, std::move(done));
    }
    void write(std::uint64_t lba, Bytes data, WriteCallback done) override {
      if (recon) recon->on_write(lba, data);
      inner.write(lba, std::move(data), std::move(done));
    }
    std::uint64_t num_sectors() const override {
      return inner.num_sectors();
    }
  } tap{disk, recon};

  fs::SimExt fs(sim, tap);
  fs.mount([](Status s) { ASSERT_TRUE(s.is_ok()); });
  sim.run();
  recon = core::SemanticsReconstructor::unformatted();
  // Arm from live traffic: rewrite the superblock through the tap.
  recon->on_write(0, disk.read_sync(0, fs::kSectorsPerBlock));
  ASSERT_TRUE(recon->armed());

  bool ok = false;
  fs.create("/huge", [&](Status s) { ok = s.is_ok(); });
  sim.run();
  ASSERT_TRUE(ok);
  // 6 MB: deep into the double-indirect range (direct 48 KB + indirect
  // 4 MB cover the first ~4.2 MB).
  constexpr std::uint64_t kSize = 6 * 1024 * 1024;
  ok = false;
  fs.write_file("/huge", 0, Bytes(kSize, 0x6D), [&](Status s) {
    ok = s.is_ok();
  });
  sim.run();
  ASSERT_TRUE(ok) << "write failed";

  // Every data block of the double-indirect tail resolves to the path.
  auto ops = recon->on_read((5 * 1024 * 1024 / 512), 64 * 1024);
  ASSERT_FALSE(ops.empty());
  for (const auto& op : ops) {
    EXPECT_EQ(op.path, "/huge") << op.to_string();
  }
}

}  // namespace
}  // namespace storm
