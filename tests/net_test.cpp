#include <gtest/gtest.h>

#include "net/flow_switch.hpp"
#include "net/link.hpp"
#include "net/nat.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/qos.hpp"
#include "net/switch.hpp"
#include "testutil.hpp"

namespace storm::net {
namespace {

using testutil::ip;
using testutil::mac;

Packet make_packet(Ipv4Addr src, std::uint16_t sport, Ipv4Addr dst,
                   std::uint16_t dport, std::size_t payload = 0) {
  Packet pkt;
  pkt.ip.src = src;
  pkt.ip.dst = dst;
  pkt.tcp.src_port = sport;
  pkt.tcp.dst_port = dport;
  pkt.payload = Bytes(payload, 0x5A);
  // Raw injected packets need a valid checksum or every stack drops them.
  pkt.tcp.checksum = tcp_checksum(pkt);
  return pkt;
}

// --- codec ------------------------------------------------------------------

TEST(PacketCodec, RoundTrips) {
  Packet pkt;
  pkt.eth.src = mac(0x001122334455);
  pkt.eth.dst = mac(0xAABBCCDDEEFF);
  pkt.ip.src = ip("10.1.2.3");
  pkt.ip.dst = ip("10.4.5.6");
  pkt.ip.ttl = 17;
  pkt.tcp.src_port = 49152;
  pkt.tcp.dst_port = 3260;
  pkt.tcp.seq = 0x123456789ull;
  pkt.tcp.ack = 0xABCDEFull;
  pkt.tcp.flags = kTcpAck | kTcpSyn;
  pkt.tcp.window = 128 * 1024;
  pkt.payload = testutil::pattern_bytes(777);

  Bytes wire = serialize(pkt);
  Packet back = parse_packet(wire);
  EXPECT_EQ(back.eth.src, pkt.eth.src);
  EXPECT_EQ(back.eth.dst, pkt.eth.dst);
  EXPECT_EQ(back.ip.src, pkt.ip.src);
  EXPECT_EQ(back.ip.dst, pkt.ip.dst);
  EXPECT_EQ(back.ip.ttl, pkt.ip.ttl);
  EXPECT_EQ(back.tcp.src_port, pkt.tcp.src_port);
  EXPECT_EQ(back.tcp.dst_port, pkt.tcp.dst_port);
  EXPECT_EQ(back.tcp.seq, pkt.tcp.seq);
  EXPECT_EQ(back.tcp.ack, pkt.tcp.ack);
  EXPECT_EQ(back.tcp.flags, pkt.tcp.flags);
  EXPECT_EQ(back.tcp.window, pkt.tcp.window);
  EXPECT_EQ(back.payload, pkt.payload);
}

TEST(PacketCodec, ParseRejectsTruncated) {
  Packet pkt = make_packet(ip("1.2.3.4"), 1, ip("5.6.7.8"), 2, 100);
  Bytes wire = serialize(pkt);
  wire.resize(wire.size() - 50);
  EXPECT_THROW(parse_packet(wire), std::out_of_range);
}

TEST(Packet, WireSizeIsHeadersPlusPayload) {
  Packet pkt = make_packet(ip("1.1.1.1"), 1, ip("2.2.2.2"), 2, 1000);
  EXPECT_EQ(pkt.wire_size(), 14u + 20u + 20u + 1000u);
}

// --- addresses ----------------------------------------------------------------

TEST(Addr, Ipv4StringRoundTrip) {
  auto a = Ipv4Addr::from_string("192.168.1.42");
  EXPECT_EQ(to_string(a), "192.168.1.42");
  EXPECT_THROW(Ipv4Addr::from_string("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::from_string("junk"), std::invalid_argument);
}

TEST(Addr, SubnetContains) {
  Subnet net{ip("10.1.0.0"), 16};
  EXPECT_TRUE(net.contains(ip("10.1.200.3")));
  EXPECT_FALSE(net.contains(ip("10.2.0.1")));
  Subnet all{ip("0.0.0.0"), 0};
  EXPECT_TRUE(all.contains(ip("1.2.3.4")));
}

TEST(Addr, MacFormatting) {
  EXPECT_EQ(to_string(mac(0x0102030405ff)), "01:02:03:04:05:ff");
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
}

// --- link --------------------------------------------------------------------

TEST(Link, DeliversWithSerializationAndPropagation) {
  sim::Simulator sim;
  // 1 Gbps, 100us propagation.
  Link link(sim, 1'000'000'000ull, sim::microseconds(100));
  sim::Time delivered_at = 0;
  link.connect(1, [&](Packet) { delivered_at = sim.now(); });
  Packet pkt = make_packet(ip("1.1.1.1"), 1, ip("2.2.2.2"), 2, 946);
  // wire = 54 + 946 = 1000 bytes = 8000 bits -> 8us serialization.
  link.send(0, pkt);
  sim.run();
  EXPECT_EQ(delivered_at, sim::microseconds(108));
}

TEST(Link, QueuesBackToBackPackets) {
  sim::Simulator sim;
  Link link(sim, 1'000'000'000ull, 0);
  std::vector<sim::Time> deliveries;
  link.connect(1, [&](Packet) { deliveries.push_back(sim.now()); });
  Packet pkt = make_packet(ip("1.1.1.1"), 1, ip("2.2.2.2"), 2, 946);
  link.send(0, pkt);
  link.send(0, pkt);
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], sim::microseconds(8));
  EXPECT_EQ(deliveries[1], sim::microseconds(16));  // serialized behind #1
}

TEST(Link, FullDuplexDirectionsDoNotInterfere) {
  sim::Simulator sim;
  Link link(sim, 1'000'000'000ull, 0);
  std::vector<sim::Time> t0, t1;
  link.connect(0, [&](Packet) { t0.push_back(sim.now()); });
  link.connect(1, [&](Packet) { t1.push_back(sim.now()); });
  Packet pkt = make_packet(ip("1.1.1.1"), 1, ip("2.2.2.2"), 2, 946);
  link.send(0, pkt);
  link.send(1, pkt);
  sim.run();
  ASSERT_EQ(t0.size(), 1u);
  ASSERT_EQ(t1.size(), 1u);
  EXPECT_EQ(t0[0], t1[0]);  // same serialization delay, no contention
}

TEST(Link, DropsWhenDown) {
  sim::Simulator sim;
  Link link(sim, 1'000'000'000ull, 0);
  int got = 0;
  link.connect(1, [&](Packet) { ++got; });
  link.set_down(true);
  link.send(0, make_packet(ip("1.1.1.1"), 1, ip("2.2.2.2"), 2));
  sim.run();
  EXPECT_EQ(got, 0);
  link.set_down(false);
  link.send(0, make_packet(ip("1.1.1.1"), 1, ip("2.2.2.2"), 2));
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST(Link, SpanningRebindDerivesAutoLookahead) {
  sim::ParallelConfig config;
  config.partitions = 2;
  config.threads = 1;
  config.lookahead = sim::microseconds(10);
  config.auto_lookahead = true;
  sim::Simulator sim(config);

  // Two partition-spanning links (40us and 25us) plus one link whose
  // rebind keeps both ends in partition 0 — only the spanning delays
  // count, and the smallest one wins.
  Link wide(sim.executor(0), 1'000'000'000ull, sim::microseconds(40));
  wide.set_end_executor(1, sim.executor(1));
  Link narrow(sim.executor(0), 1'000'000'000ull, sim::microseconds(25));
  narrow.set_end_executor(1, sim.executor(1));
  Link local(sim.executor(0), 1'000'000'000ull, sim::microseconds(3));
  local.set_end_executor(1, sim.executor(0));

  EXPECT_TRUE(sim.span_delay_seen());
  int got = 0;
  narrow.connect(1, [&](Packet) { ++got; });
  narrow.send(0, make_packet(ip("1.1.1.1"), 1, ip("2.2.2.2"), 2));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(sim.lookahead(), sim::microseconds(25));
  EXPECT_EQ(sim.lookahead_violations(), 0u);
}

TEST(Link, AutoLookaheadFallsBackWithoutSpanningLink) {
  sim::ParallelConfig config;
  config.partitions = 2;
  config.threads = 1;
  config.lookahead = sim::microseconds(10);
  config.auto_lookahead = true;
  sim::Simulator sim(config);

  // The only rebind lands both ends in the same partition: nothing
  // spans, so run() keeps the configured fallback (and warns once).
  Link local(sim.executor(0), 1'000'000'000ull, sim::microseconds(3));
  local.set_end_executor(1, sim.executor(0));
  EXPECT_FALSE(sim.span_delay_seen());

  int got = 0;
  local.connect(1, [&](Packet) { ++got; });
  local.send(0, make_packet(ip("1.1.1.1"), 1, ip("2.2.2.2"), 2));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(sim.lookahead(), sim::microseconds(10));
}

// --- L2 switch -----------------------------------------------------------------

TEST(L2Switch, LearnsAndForwards) {
  sim::Simulator sim;
  L2Switch sw(sim, "sw");
  Link la(sim, 1'000'000'000ull, 0), lb(sim, 1'000'000'000ull, 0),
      lc(sim, 1'000'000'000ull, 0);
  int got_a = 0, got_b = 0, got_c = 0;
  la.connect(0, [&](Packet) { ++got_a; });
  lb.connect(0, [&](Packet) { ++got_b; });
  lc.connect(0, [&](Packet) { ++got_c; });
  sw.attach(la, 1);
  sw.attach(lb, 1);
  sw.attach(lc, 1);

  // A (mac 0xA) sends to B (mac 0xB): unknown -> flood to B and C.
  Packet a_to_b = make_packet(ip("1.1.1.1"), 1, ip("2.2.2.2"), 2);
  a_to_b.eth.src = mac(0xA);
  a_to_b.eth.dst = mac(0xB);
  la.send(0, a_to_b);
  sim.run();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_c, 1);  // flooded
  EXPECT_EQ(got_a, 0);

  // B replies: A's port is learned -> unicast.
  Packet b_to_a = make_packet(ip("2.2.2.2"), 2, ip("1.1.1.1"), 1);
  b_to_a.eth.src = mac(0xB);
  b_to_a.eth.dst = mac(0xA);
  lb.send(0, b_to_a);
  sim.run();
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_c, 1);  // not flooded again

  // A sends again: B now learned -> no flood to C.
  la.send(0, a_to_b);
  sim.run();
  EXPECT_EQ(got_b, 2);
  EXPECT_EQ(got_c, 1);
}

// --- flow switch (OVS-style) ----------------------------------------------------

TEST(FlowSwitch, ModDstMacSteersToMiddlebox) {
  // Reproduces the paper's Fig. 3 steering primitive: traffic to the
  // egress gateway MAC is rewritten toward the middle-box MAC.
  sim::Simulator sim;
  FlowSwitch sw(sim, "ovs");
  Link l_src(sim, 1'000'000'000ull, 0), l_mb(sim, 1'000'000'000ull, 0),
      l_gw(sim, 1'000'000'000ull, 0);
  int got_mb = 0, got_gw = 0;
  MacAddr mb_mac = mac(0xB1);
  MacAddr gw_mac = mac(0xE1);
  MacAddr last_mb_dst{};
  l_mb.connect(0, [&](Packet p) {
    ++got_mb;
    last_mb_dst = p.eth.dst;
  });
  l_gw.connect(0, [&](Packet) { ++got_gw; });
  sw.attach(l_src, 1);
  int port_mb = sw.attach(l_mb, 1);
  int port_gw = sw.attach(l_gw, 1);

  // Pre-teach MAC table so NORMAL forwarding is deterministic.
  FlowRule teach_mb;
  teach_mb.priority = 0;
  (void)port_mb;
  (void)port_gw;

  FlowRule steer;
  steer.priority = 10;
  steer.match.dst_mac = gw_mac;
  steer.match.src_port = 49152;
  steer.actions = {FlowAction::set_dst_mac(mb_mac),
                   FlowAction::output(port_mb)};
  steer.cookie = 42;
  sw.add_rule(steer);

  Packet pkt = make_packet(ip("10.2.0.1"), 49152, ip("10.2.0.9"), 3260);
  pkt.eth.src = mac(0xA1);
  pkt.eth.dst = gw_mac;
  l_src.send(0, pkt);
  sim.run();
  EXPECT_EQ(got_mb, 1);
  EXPECT_EQ(last_mb_dst, mb_mac) << "dst MAC must be rewritten";
  EXPECT_EQ(got_gw, 0);

  // Non-matching source port falls through to NORMAL (floods, since the
  // gateway MAC was never learned).
  Packet other = make_packet(ip("10.2.0.1"), 50000, ip("10.2.0.9"), 3260);
  other.eth.src = mac(0xA1);
  other.eth.dst = gw_mac;
  l_src.send(0, other);
  sim.run();
  EXPECT_EQ(got_gw, 1);
  EXPECT_EQ(got_mb, 2);  // flooded copy
}

TEST(FlowSwitch, PriorityOrderAndCookieRemoval) {
  sim::Simulator sim;
  FlowSwitch sw(sim, "ovs");
  Link l_in(sim, 1'000'000'000ull, 0), l_a(sim, 1'000'000'000ull, 0),
      l_b(sim, 1'000'000'000ull, 0);
  int got_a = 0, got_b = 0;
  l_a.connect(0, [&](Packet) { ++got_a; });
  l_b.connect(0, [&](Packet) { ++got_b; });
  sw.attach(l_in, 1);
  int pa = sw.attach(l_a, 1);
  int pb = sw.attach(l_b, 1);

  FlowRule low;
  low.priority = 1;
  low.actions = {FlowAction::output(pa)};
  low.cookie = 1;
  FlowRule high;
  high.priority = 5;
  high.actions = {FlowAction::output(pb)};
  high.cookie = 2;
  sw.add_rule(low);
  sw.add_rule(high);

  Packet pkt = make_packet(ip("1.1.1.1"), 1, ip("2.2.2.2"), 2);
  pkt.eth.src = mac(0xA);
  pkt.eth.dst = mac(0xB);
  l_in.send(0, pkt);
  sim.run();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_a, 0);

  EXPECT_EQ(sw.remove_rules_by_cookie(2), 1u);
  l_in.send(0, pkt);
  sim.run();
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);
}

TEST(FlowSwitch, DropActionDiscards) {
  sim::Simulator sim;
  FlowSwitch sw(sim, "ovs");
  Link l_in(sim, 1'000'000'000ull, 0), l_out(sim, 1'000'000'000ull, 0);
  int got = 0;
  l_out.connect(0, [&](Packet) { ++got; });
  sw.attach(l_in, 1);
  sw.attach(l_out, 1);
  FlowRule drop;
  drop.priority = 10;
  drop.match.dst_port = 3260;
  drop.actions = {FlowAction::drop()};
  sw.add_rule(drop);

  Packet pkt = make_packet(ip("1.1.1.1"), 1, ip("2.2.2.2"), 3260);
  pkt.eth.src = mac(0xA);
  pkt.eth.dst = mac(0xB);
  l_in.send(0, pkt);
  sim.run();
  EXPECT_EQ(got, 0);
}

TEST(FlowMatch, FieldsAreAndedWildcardsIgnored) {
  FlowMatch match;
  match.src_ip = ip("10.0.0.1");
  match.dst_port = 3260;
  Packet hit = make_packet(ip("10.0.0.1"), 999, ip("10.0.0.2"), 3260);
  Packet miss1 = make_packet(ip("10.0.0.3"), 999, ip("10.0.0.2"), 3260);
  Packet miss2 = make_packet(ip("10.0.0.1"), 999, ip("10.0.0.2"), 80);
  EXPECT_TRUE(match.matches(0, hit));
  EXPECT_FALSE(match.matches(0, miss1));
  EXPECT_FALSE(match.matches(0, miss2));
}

// --- NAT -------------------------------------------------------------------------

TEST(Nat, DnatRewritesAndConntracksReplies) {
  NatEngine nat;
  NatRule rule;
  rule.match_dst_ip = ip("10.1.0.9");
  rule.match_dst_port = 3260;
  rule.dnat_ip = ip("10.2.0.5");
  nat.add_rule(rule);

  Packet fwd = make_packet(ip("10.1.0.1"), 49152, ip("10.1.0.9"), 3260);
  EXPECT_TRUE(nat.translate(fwd));
  EXPECT_EQ(fwd.ip.dst, ip("10.2.0.5"));
  EXPECT_EQ(fwd.tcp.dst_port, 3260);
  EXPECT_EQ(fwd.ip.src, ip("10.1.0.1"));

  // Reply comes back from the translated destination.
  Packet reply = make_packet(ip("10.2.0.5"), 3260, ip("10.1.0.1"), 49152);
  EXPECT_TRUE(nat.translate(reply));
  EXPECT_EQ(reply.ip.src, ip("10.1.0.9")) << "reply must be un-DNATed";
  EXPECT_EQ(reply.ip.dst, ip("10.1.0.1"));
}

TEST(Nat, SnatAndDnatCombined) {
  // The paper's Fig. 3 host rule: SNAT src -> ovs1_ip, DNAT dst -> ovs2_ip.
  NatEngine nat;
  NatRule rule;
  rule.match_dst_ip = ip("10.1.0.9");
  rule.match_dst_port = 3260;
  rule.snat_ip = ip("10.2.0.11");
  rule.dnat_ip = ip("10.2.0.22");
  nat.add_rule(rule);

  Packet fwd = make_packet(ip("10.1.0.1"), 49152, ip("10.1.0.9"), 3260);
  EXPECT_TRUE(nat.translate(fwd));
  EXPECT_EQ(fwd.ip.src, ip("10.2.0.11"));
  EXPECT_EQ(fwd.ip.dst, ip("10.2.0.22"));
  EXPECT_EQ(fwd.tcp.src_port, 49152) << "port preserved (vm1_port)";

  Packet reply = make_packet(ip("10.2.0.22"), 3260, ip("10.2.0.11"), 49152);
  EXPECT_TRUE(nat.translate(reply));
  EXPECT_EQ(reply.ip.src, ip("10.1.0.9"));
  EXPECT_EQ(reply.ip.dst, ip("10.1.0.1"));
}

TEST(Nat, EstablishedFlowsSurviveRuleRemoval) {
  // The property StorM's atomic volume attachment depends on (§III-A).
  NatEngine nat;
  NatRule rule;
  rule.match_dst_port = 3260;
  rule.dnat_ip = ip("10.2.0.5");
  rule.cookie = 7;
  nat.add_rule(rule);

  Packet first = make_packet(ip("10.1.0.1"), 49152, ip("10.1.0.9"), 3260);
  EXPECT_TRUE(nat.translate(first));

  EXPECT_EQ(nat.remove_rules_by_cookie(7), 1u);
  EXPECT_EQ(nat.rule_count(), 0u);

  Packet next = make_packet(ip("10.1.0.1"), 49152, ip("10.1.0.9"), 3260);
  EXPECT_TRUE(nat.translate(next)) << "conntrack entry must persist";
  EXPECT_EQ(next.ip.dst, ip("10.2.0.5"));

  // A brand-new flow after removal is untouched.
  Packet fresh = make_packet(ip("10.1.0.1"), 50000, ip("10.1.0.9"), 3260);
  EXPECT_FALSE(nat.translate(fresh));
  EXPECT_EQ(fresh.ip.dst, ip("10.1.0.9"));
}

TEST(Nat, FirstMatchingRuleWins) {
  NatEngine nat;
  NatRule r1;
  r1.match_dst_port = 3260;
  r1.dnat_ip = ip("10.2.0.1");
  NatRule r2;
  r2.match_dst_port = 3260;
  r2.dnat_ip = ip("10.2.0.2");
  nat.add_rule(r1);
  nat.add_rule(r2);
  Packet pkt = make_packet(ip("10.1.0.1"), 1, ip("10.1.0.9"), 3260);
  nat.translate(pkt);
  EXPECT_EQ(pkt.ip.dst, ip("10.2.0.1"));
}

TEST(Nat, NoMatchNoTranslation) {
  NatEngine nat;
  Packet pkt = make_packet(ip("10.1.0.1"), 1, ip("10.1.0.9"), 80);
  EXPECT_FALSE(nat.translate(pkt));
  EXPECT_EQ(nat.conntrack_size(), 0u);
}

// --- NetNode forwarding ------------------------------------------------------------

TEST(NetNode, ForwardsAcrossSubnetsWhenEnabled) {
  // a (10.0.0.1) -- gw (10.0.0.254 / 10.1.0.254) -- b (10.1.0.2)
  sim::Simulator sim;
  auto arp = std::make_shared<ArpRegistry>();
  Link l1(sim, 1'000'000'000ull, 0), l2(sim, 1'000'000'000ull, 0);
  NetNode a(sim, "a", arp), gw(sim, "gw", arp), b(sim, "b", arp);
  Subnet s0{ip("10.0.0.0"), 24}, s1{ip("10.1.0.0"), 24};
  a.add_nic(mac(0xA), ip("10.0.0.1"), s0, l1, 0);
  gw.add_nic(mac(0xF0), ip("10.0.0.254"), s0, l1, 1);
  gw.add_nic(mac(0xF1), ip("10.1.0.254"), s1, l2, 0);
  b.add_nic(mac(0xB), ip("10.1.0.2"), s1, l2, 1);
  gw.set_ip_forward(true);
  a.set_default_gateway(ip("10.0.0.254"));
  b.set_default_gateway(ip("10.1.0.254"));

  // A raw packet addressed to b must transit the gateway. b's stack then
  // answers the unknown segment with a RST, which the gateway also
  // forwards — hence two forwarded packets.
  Packet pkt = make_packet(ip("10.0.0.1"), 1234, ip("10.1.0.2"), 80, 10);
  a.send_ip(pkt);
  sim.run();
  EXPECT_EQ(b.packets_received(), 1u);
  EXPECT_EQ(gw.packets_forwarded(), 2u);
}

TEST(NetNode, DropsWhenForwardingDisabled) {
  sim::Simulator sim;
  auto arp = std::make_shared<ArpRegistry>();
  Link l1(sim, 1'000'000'000ull, 0), l2(sim, 1'000'000'000ull, 0);
  NetNode a(sim, "a", arp), gw(sim, "gw", arp), b(sim, "b", arp);
  Subnet s0{ip("10.0.0.0"), 24}, s1{ip("10.1.0.0"), 24};
  a.add_nic(mac(0xA), ip("10.0.0.1"), s0, l1, 0);
  gw.add_nic(mac(0xF0), ip("10.0.0.254"), s0, l1, 1);
  gw.add_nic(mac(0xF1), ip("10.1.0.254"), s1, l2, 0);
  b.add_nic(mac(0xB), ip("10.1.0.2"), s1, l2, 1);
  a.set_default_gateway(ip("10.0.0.254"));

  a.send_ip(make_packet(ip("10.0.0.1"), 1234, ip("10.1.0.2"), 80));
  sim.run();
  EXPECT_EQ(gw.packets_forwarded(), 0u);
  EXPECT_EQ(b.packets_received(), 0u);
}

TEST(NetNode, ForwardHookCanConsumeAndReinject) {
  sim::Simulator sim;
  auto arp = std::make_shared<ArpRegistry>();
  Link l1(sim, 1'000'000'000ull, 0), l2(sim, 1'000'000'000ull, 0);
  NetNode a(sim, "a", arp), mb(sim, "mb", arp), b(sim, "b", arp);
  Subnet s0{ip("10.0.0.0"), 24}, s1{ip("10.1.0.0"), 24};
  a.add_nic(mac(0xA), ip("10.0.0.1"), s0, l1, 0);
  mb.add_nic(mac(0xF0), ip("10.0.0.254"), s0, l1, 1);
  mb.add_nic(mac(0xF1), ip("10.1.0.254"), s1, l2, 0);
  b.add_nic(mac(0xB), ip("10.1.0.2"), s1, l2, 1);
  mb.set_ip_forward(true);
  a.set_default_gateway(ip("10.0.0.254"));

  int hooked = 0;
  mb.set_forward_hook([&](Packet& pkt) {
    ++hooked;
    // Delay reinjection, modeling userspace processing.
    Packet copy = pkt;
    sim.schedule_in(sim::microseconds(100),
              [&mb, copy]() mutable { mb.emit_forward(std::move(copy)); });
    return true;
  });

  a.send_ip(make_packet(ip("10.0.0.1"), 1234, ip("10.1.0.2"), 80));
  sim.run();
  EXPECT_EQ(hooked, 1);
  EXPECT_EQ(b.packets_received(), 1u);
}

TEST(NetNode, DownNodeDropsTraffic) {
  testutil::TwoNodeNet net;
  net.b.set_down(true);
  net.a.send_ip(make_packet(ip("10.0.0.1"), 1, ip("10.0.0.2"), 2));
  net.sim.run();
  EXPECT_EQ(net.b.packets_received(), 0u);
}

TEST(Nat, DetachFlushesConntrackByCookie) {
  // The flip side of EstablishedFlowsSurviveRuleRemoval: a full detach
  // must not leave ghost translations behind, and the flush is scoped by
  // cookie so one tenant's teardown can't break another's live flows.
  NatEngine nat;
  NatRule r7;
  r7.match_dst_port = 3260;
  r7.match_dst_ip = ip("10.1.0.9");
  r7.dnat_ip = ip("10.2.0.5");
  r7.cookie = 7;
  NatRule r8;
  r8.match_dst_port = 3260;
  r8.match_dst_ip = ip("10.1.0.10");
  r8.dnat_ip = ip("10.2.0.6");
  r8.cookie = 8;
  nat.add_rule(r7);
  nat.add_rule(r8);

  Packet f7 = make_packet(ip("10.1.0.1"), 49152, ip("10.1.0.9"), 3260);
  Packet f8 = make_packet(ip("10.1.0.2"), 49152, ip("10.1.0.10"), 3260);
  EXPECT_TRUE(nat.translate(f7));
  EXPECT_TRUE(nat.translate(f8));
  EXPECT_EQ(nat.conntrack_size(), 2u);

  // Detach tenant 7: rule AND its conntrack entries go.
  EXPECT_EQ(nat.remove_rules_by_cookie(7, /*flush_conntrack=*/true), 1u);
  EXPECT_EQ(nat.conntrack_size(), 1u);
  Packet again7 = make_packet(ip("10.1.0.1"), 49152, ip("10.1.0.9"), 3260);
  EXPECT_FALSE(nat.translate(again7)) << "ghost conntrack entry survived";
  EXPECT_EQ(again7.ip.dst, ip("10.1.0.9"));

  // Tenant 8's established flow is untouched by 7's flush — and still
  // survives its own rule removal (atomic-attachment semantics).
  EXPECT_EQ(nat.remove_rules_by_cookie(8), 1u);
  Packet again8 = make_packet(ip("10.1.0.2"), 49152, ip("10.1.0.10"), 3260);
  EXPECT_TRUE(nat.translate(again8));
  EXPECT_EQ(again8.ip.dst, ip("10.2.0.6"));

  // A later explicit flush clears the remaining flow.
  EXPECT_EQ(nat.flush_conntrack_by_cookie(8), 1u);
  EXPECT_EQ(nat.conntrack_size(), 0u);
}

// --- TokenBucket (tenant QoS) ------------------------------------------------------

TEST(TokenBucket, BurstPassesImmediatelyThenPacesToRate) {
  sim::Simulator sim;
  TokenBucket bucket(sim, 1'000'000, 10'000);  // 1 MB/s, 10 KB burst
  int released = 0;
  for (int i = 0; i < 100; ++i) {
    bucket.admit(10'000, [&] { ++released; });
  }
  EXPECT_GE(released, 1) << "burst credit admits synchronously";
  EXPECT_LT(released, 100);
  EXPECT_GT(bucket.queued_bytes(), 0u);
  sim.run();
  EXPECT_EQ(released, 100) << "pacing delays, never drops";
  EXPECT_TRUE(bucket.idle());
  EXPECT_EQ(bucket.admitted_bytes(), 1'000'000u);
  EXPECT_GT(bucket.throttled_bytes(), 0u);
  // 1 MB minus the burst at 1 MB/s: ~0.99 s, not line rate.
  EXPECT_NEAR(sim::to_seconds(sim.now()), 0.99, 0.05);
}

TEST(TokenBucket, OversizedPacketBorrowsAgainstFutureCredit) {
  // Deficit model: a packet larger than the whole burst is admitted with
  // a negative balance (never deadlocked), and the debt is repaid before
  // anything else passes.
  sim::Simulator sim;
  TokenBucket bucket(sim, 1'000'000, 1'000);
  bool big = false, small = false;
  bucket.admit(5'000, [&] { big = true; });
  EXPECT_TRUE(big);
  bucket.admit(1'000, [&] { small = true; });
  EXPECT_FALSE(small) << "queued behind the deficit";
  sim.run();
  EXPECT_TRUE(small);
  EXPECT_NEAR(sim::to_seconds(sim.now()), 0.004, 0.001)
      << "released once the 4 KB debt is repaid";

  // Unconfigured bucket (rate 0) is a pass-through.
  TokenBucket open(sim, 0, 0);
  bool passed = false;
  open.admit(1'000'000, [&] { passed = true; });
  EXPECT_TRUE(passed);
}

TEST(TokenBucket, SetRateRepricesQueuedBacklogWithoutDropping) {
  // Regression for the autoscaler's in-place re-pricing: a backlog
  // queued under the old rate must drain at the new rate — FIFO, nothing
  // dropped, nothing double-admitted.
  sim::Simulator sim;
  TokenBucket bucket(sim, 1'000'000, 10'000);  // 1 MB/s, 10 KB burst
  int released = 0;
  for (int i = 0; i < 30; ++i) {
    bucket.admit(10'000, [&] { ++released; });
  }
  ASSERT_LT(released, 30);
  ASSERT_GT(bucket.queued_bytes(), 0u);

  // Capacity doubles mid-drain (a second replica came online).
  bucket.set_rate(2'000'000, 20'000);
  EXPECT_EQ(bucket.rate_bytes_per_sec(), 2'000'000u);
  EXPECT_EQ(bucket.burst_bytes(), 20'000u);
  sim.run();
  EXPECT_EQ(released, 30) << "re-pricing must not drop queued traffic";
  EXPECT_TRUE(bucket.idle());
  EXPECT_EQ(bucket.admitted_bytes(), 300'000u);
  // 300 KB at the old rate alone takes ~290 ms past the burst; the
  // doubled rate must finish measurably sooner, but not at line rate.
  EXPECT_LT(sim::to_seconds(sim.now()), 0.29);
  EXPECT_GT(sim::to_seconds(sim.now()), 0.10);
}

TEST(TokenBucket, SetRateClampsBankedCreditToTheNewBurst) {
  // Regression: tokens banked under a large old burst must be clamped
  // when the cap shrinks — otherwise the first packets after a
  // scale-down are admitted against credit the new configuration never
  // granted.
  sim::Simulator sim;
  TokenBucket bucket(sim, 1'000'000, 100'000);  // starts full at 100 KB
  bucket.set_rate(1'000'000, 10'000);
  EXPECT_EQ(bucket.burst_bytes(), 10'000u);

  // 20 KB against the clamped 10 KB balance leaves a 10 KB debt, so the
  // next packet queues. Without the clamp the stale 100 KB bank would
  // cover both instantly.
  int released = 0;
  bucket.admit(20'000, [&] { ++released; });
  bucket.admit(10'000, [&] { ++released; });
  EXPECT_EQ(released, 1)
      << "banked credit above the new burst must not leak through";
  sim.run();
  EXPECT_EQ(released, 2);
  // The queued packet waited for the 10 KB debt to refill at 1 MB/s.
  EXPECT_NEAR(sim::to_seconds(sim.now()), 0.01, 0.002);
}

TEST(TokenBucket, SetRateReschedulesPendingDrainAtTheNewRate) {
  // A drain scheduled under a slow rate has a far-future ETA; raising
  // the rate must re-derive it, not leave the queue waiting on the old
  // clock.
  sim::Simulator sim;
  TokenBucket bucket(sim, 10'000, 1'000);  // 10 KB/s: glacial
  int released = 0;
  bucket.admit(2'000, [&] { ++released; });   // burns into a 1 KB debt
  bucket.admit(10'000, [&] { ++released; });  // ~0.1 s away at 10 KB/s
  ASSERT_EQ(released, 1);

  bucket.set_rate(10'000'000);  // 10 MB/s, burst unchanged
  EXPECT_EQ(bucket.burst_bytes(), 1'000u) << "zero burst keeps the cap";
  sim.run();
  EXPECT_EQ(released, 2);
  EXPECT_LT(sim::to_seconds(sim.now()), 0.01)
      << "pending drain must be repriced at the new rate";
}

TEST(NetNode, PerPacketCostDelaysDelivery) {
  sim::Simulator sim;
  auto arp = std::make_shared<ArpRegistry>();
  Link link(sim, 1'000'000'000ull, 0);
  NetNode a(sim, "a", arp), b(sim, "b", arp);
  Subnet subnet{ip("10.0.0.0"), 24};
  a.add_nic(mac(0xA), ip("10.0.0.1"), subnet, link, 0);
  b.add_nic(mac(0xB), ip("10.0.0.2"), subnet, link, 1);
  sim::Cpu cpu(sim, "bcpu", 1);
  b.set_packet_processing(&cpu, sim::microseconds(50), 0.0);

  a.send_ip(make_packet(ip("10.0.0.1"), 1, ip("10.0.0.2"), 2, 0));
  sim.run();
  // b charges 50us to receive the segment and 50us to transmit the RST
  // its stack generates for the unknown connection.
  EXPECT_EQ(cpu.busy_time(), sim::microseconds(100));
}

}  // namespace
}  // namespace storm::net
