#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.hpp"
#include "net/node.hpp"
#include "net/tcp.hpp"
#include "obs/registry.hpp"
#include "testutil.hpp"

namespace storm::net {
namespace {

using testutil::ip;
using testutil::TwoNodeNet;

TEST(Tcp, HandshakeEstablishesBothSides) {
  TwoNodeNet net;
  bool server_accepted = false, client_established = false;
  TcpConnection* server_conn = nullptr;
  net.b.tcp().listen(3260, [&](TcpConnection& conn) {
    server_accepted = true;
    server_conn = &conn;
  });
  TcpConnection& client = net.a.tcp().connect(
      SocketAddr{ip("10.0.0.2"), 3260}, [&] { client_established = true; });
  net.sim.run();
  EXPECT_TRUE(client_established);
  EXPECT_TRUE(server_accepted);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(client.state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(server_conn->state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(server_conn->remote().port, client.local().port);
}

TEST(Tcp, SynToClosedPortGetsRst) {
  TwoNodeNet net;
  bool established = false;
  TcpConnection& client = net.a.tcp().connect(
      SocketAddr{ip("10.0.0.2"), 9999}, [&] { established = true; });
  Status closed_status = Status::ok();
  bool closed = false;
  client.set_on_closed([&](Status s) {
    closed = true;
    closed_status = s;
  });
  net.sim.run();
  EXPECT_FALSE(established);
  EXPECT_TRUE(closed);
  EXPECT_EQ(closed_status.code(), ErrorCode::kConnectionFailed);
}

TEST(Tcp, TransfersDataBothWays) {
  TwoNodeNet net;
  Bytes server_got, client_got;
  net.b.tcp().listen(80, [&](TcpConnection& conn) {
    conn.set_on_data([&server_got, &conn](Buf data) {
      server_got.insert(server_got.end(), data.begin(), data.end());
      conn.send(to_bytes("pong"));
    });
  });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  client.set_on_data([&](Buf data) {
    client_got.insert(client_got.end(), data.begin(), data.end());
  });
  client.send(to_bytes("ping"));
  net.sim.run();
  EXPECT_EQ(std::string(server_got.begin(), server_got.end()), "ping");
  EXPECT_EQ(std::string(client_got.begin(), client_got.end()), "pong");
}

TEST(Tcp, LargeTransferPreservesBytes) {
  TwoNodeNet net;
  const Bytes payload = testutil::pattern_bytes(1'000'000);
  Bytes received;
  net.b.tcp().listen(80, [&](TcpConnection& conn) {
    conn.set_on_data([&](Buf data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  client.send(payload);
  net.sim.run();
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(crypto::sha256(received), crypto::sha256(payload));
}

TEST(Tcp, SendBeforeEstablishedIsBuffered) {
  TwoNodeNet net;
  Bytes received;
  net.b.tcp().listen(80, [&](TcpConnection& conn) {
    conn.set_on_data([&](Buf data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  client.send(to_bytes("early"));  // handshake not done yet
  net.sim.run();
  EXPECT_EQ(std::string(received.begin(), received.end()), "early");
}

TEST(Tcp, WindowLimitsInFlightBytes) {
  // With a 64 KB window and 1 ms RTT, a 1 MB transfer cannot finish faster
  // than ~16 round trips. Throughput must be window-bound, not line-rate.
  TwoNodeNet net(1'000'000'000ull, sim::microseconds(500));  // 1ms RTT
  const std::size_t total = 1'000'000;
  Bytes received;
  net.b.tcp().listen(80, [&](TcpConnection& conn) {
    conn.set_on_data([&](Buf data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  client.send(testutil::pattern_bytes(total));
  net.sim.run();
  ASSERT_EQ(received.size(), total);
  double elapsed = sim::to_seconds(net.sim.now());
  double min_round_trips = static_cast<double>(total) / kDefaultWindow;
  EXPECT_GT(elapsed, min_round_trips * 0.001 * 0.9)
      << "transfer finished faster than the window bound allows";
}

TEST(Tcp, BiggerWindowIsFaster) {
  auto run_with_window = [](std::uint32_t window) {
    TwoNodeNet net(1'000'000'000ull, sim::microseconds(500));
    net.a.tcp().set_default_window(window);
    net.b.tcp().set_default_window(window);
    std::size_t received = 0;
    net.b.tcp().listen(80, [&](TcpConnection& conn) {
      conn.set_on_data([&](Buf data) { received += data.size(); });
    });
    TcpConnection& client =
        net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
    client.send(testutil::pattern_bytes(2'000'000));
    net.sim.run();
    EXPECT_EQ(received, 2'000'000u);
    return net.sim.now();
  };
  auto slow = run_with_window(16 * 1024);
  auto fast = run_with_window(256 * 1024);
  EXPECT_LT(fast, slow / 2);
}

TEST(Tcp, AdvertisedWindowCapsSender) {
  // Server advertises a small window; client caps in-flight accordingly
  // even though its own cap is large.
  TwoNodeNet net(1'000'000'000ull, sim::microseconds(500));
  net.b.tcp().set_default_window(8 * 1024);    // receiver advertises 8 KB
  net.a.tcp().set_default_window(1024 * 1024); // sender cap huge
  std::size_t received = 0;
  net.b.tcp().listen(80, [&](TcpConnection& conn) {
    conn.set_on_data([&](Buf data) { received += data.size(); });
  });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  client.send(testutil::pattern_bytes(200'000));
  // Sample in-flight bytes during the transfer.
  std::uint64_t max_unacked = 0;
  for (int t = 1; t < 400; ++t) {
    net.sim.run_until(sim::milliseconds(static_cast<std::uint64_t>(t)));
    max_unacked = std::max(max_unacked, client.unacked());
  }
  net.sim.run();
  EXPECT_EQ(received, 200'000u);
  EXPECT_LE(max_unacked, 8u * 1024u + kTcpMss);
}

TEST(Tcp, GracefulCloseDeliversFinAfterData) {
  TwoNodeNet net;
  Bytes received;
  bool server_closed = false;
  Status server_status = error(ErrorCode::kIoError, "unset");
  net.b.tcp().listen(80, [&](TcpConnection& conn) {
    conn.set_on_data([&](Buf data) {
      received.insert(received.end(), data.begin(), data.end());
    });
    conn.set_on_closed([&](Status s) {
      server_closed = true;
      server_status = s;
    });
  });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  client.send(testutil::pattern_bytes(100'000));
  client.close();
  net.sim.run();
  EXPECT_EQ(received.size(), 100'000u);
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(server_status.is_ok()) << server_status.to_string();
  EXPECT_EQ(client.state(), TcpConnection::State::kClosed);
}

TEST(Tcp, AbortSendsRstToPeer) {
  TwoNodeNet net;
  TcpConnection* server_conn = nullptr;
  bool server_closed = false;
  Status server_status = Status::ok();
  net.b.tcp().listen(80, [&](TcpConnection& conn) {
    server_conn = &conn;
    conn.set_on_closed([&](Status s) {
      server_closed = true;
      server_status = s;
    });
  });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  net.sim.run();
  ASSERT_NE(server_conn, nullptr);
  client.abort();
  net.sim.run();
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(server_status.code(), ErrorCode::kConnectionFailed);
}

TEST(Tcp, SendAfterCloseIsIgnored) {
  TwoNodeNet net;
  Bytes received;
  net.b.tcp().listen(80, [&](TcpConnection& conn) {
    conn.set_on_data([&](Buf data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  client.send(to_bytes("ok"));
  client.close();
  client.send(to_bytes("dropped"));
  net.sim.run();
  EXPECT_EQ(std::string(received.begin(), received.end()), "ok");
}

TEST(Tcp, ManyConcurrentConnections) {
  TwoNodeNet net;
  int accepted = 0;
  std::size_t total_received = 0;
  net.b.tcp().listen(80, [&](TcpConnection& conn) {
    ++accepted;
    conn.set_on_data([&](Buf data) { total_received += data.size(); });
  });
  constexpr int kConns = 20;
  for (int i = 0; i < kConns; ++i) {
    TcpConnection& c =
        net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
    c.send(testutil::pattern_bytes(1000, static_cast<std::uint8_t>(i + 1)));
  }
  net.sim.run();
  EXPECT_EQ(accepted, kConns);
  EXPECT_EQ(total_received, static_cast<std::size_t>(kConns) * 1000u);
}

TEST(Tcp, StallSignalFiresEarlyAndAtExhaustion) {
  // The health manager's fast path: the stack reports a stalling
  // connection once at kTcpStallRetries and again when backoff is
  // exhausted, identifying the flow each time.
  TwoNodeNet net;
  net.b.tcp().listen(80, [](TcpConnection&) {});
  std::vector<unsigned> stalls;
  FourTuple stalled_flow{};
  net.a.tcp().set_on_stall([&](const FourTuple& flow, unsigned retries) {
    stalls.push_back(retries);
    stalled_flow = flow;
  });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  net.sim.run();
  ASSERT_TRUE(stalls.empty()) << "no stall on a healthy connection";

  // Silence the peer and push data into the void: every retransmission
  // times out until the retry budget is gone.
  net.b.set_down(true);
  client.send(testutil::pattern_bytes(1000));
  net.sim.run();

  ASSERT_EQ(stalls.size(), 2u);
  EXPECT_EQ(stalls[0], kTcpStallRetries);
  EXPECT_EQ(stalls[1], kTcpMaxRetries);
  EXPECT_EQ(stalled_flow.src, client.local());
  EXPECT_EQ(stalled_flow.dst, client.remote());
  EXPECT_EQ(client.state(), TcpConnection::State::kClosed);
}

TEST(Tcp, ZeroWindowStallProbesAndReopensOnConsume) {
  // Credit-based receiver that never consumes: the advertised window
  // closes after one window's worth of data, the sender enters
  // zero-window persist (counted once, probing on a backed-off timer),
  // and an explicit consume() reopens the window and completes the
  // transfer with the stream intact.
  TwoNodeNet net;
  net.b.tcp().set_default_window(8 * 1024);
  const Bytes payload = testutil::pattern_bytes(32 * 1024);
  Bytes got;
  TcpConnection* server_conn = nullptr;
  net.b.tcp().listen(80, [&](TcpConnection& conn) {
    server_conn = &conn;
    conn.set_credit_based(true);
    conn.set_on_data([&](Buf data) {
      got.insert(got.end(), data.begin(), data.end());
    });
  });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  client.send(payload);
  net.sim.run_until(sim::milliseconds(900));

  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(got.size(), 8u * 1024u) << "delivery must stop at the window";
  EXPECT_EQ(server_conn->recv_buffered(), 8u * 1024u);
  EXPECT_EQ(server_conn->advertised_window(), 0u);
  EXPECT_EQ(client.send_backlog(), 24u * 1024u);
  EXPECT_EQ(net.a.tcp().window_stalls(), 1u) << "one stall episode";
  EXPECT_GE(client.zero_window_probes(), 1u);
  EXPECT_LE(client.zero_window_probes(), 3u) << "probes must back off";
  EXPECT_EQ(net.sim.telemetry().counter("tcp.window_stalls").value(), 1u);
  EXPECT_GE(net.sim.telemetry().counter("tcp.zero_window_probes").value(),
            1u);

  // Release the credit: the window-update ACK restarts the sender even
  // though it has nothing in flight to clock an ACK back.
  server_conn->set_credit_based(false);
  server_conn->consume(server_conn->recv_buffered());
  net.sim.run();
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_EQ(got, payload) << "probe bytes must not corrupt the stream";
  EXPECT_EQ(client.bytes_acked(), payload.size());
  EXPECT_EQ(client.state(), TcpConnection::State::kEstablished)
      << "a flow-controlled peer is alive, not dead";
}

TEST(Tcp, ReceiverDropsBytesBeyondAdvertisedWindowEdge) {
  // A sender that ignores flow control cannot overrun the receive
  // buffer: in-order payload past the advertised right edge is trimmed
  // un-ACKed and counted, never buffered.
  TwoNodeNet net;
  net.b.tcp().set_default_window(2048);
  Bytes got;
  TcpConnection* server_conn = nullptr;
  net.b.tcp().listen(80, [&](TcpConnection& conn) {
    server_conn = &conn;
    conn.set_credit_based(true);
    conn.set_on_data([&](Buf data) {
      got.insert(got.end(), data.begin(), data.end());
    });
  });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  net.sim.run();
  ASSERT_NE(server_conn, nullptr);

  // Forge one in-order segment far larger than the 2 KiB window the
  // server ever advertised (a well-behaved stack cannot emit this).
  Packet pkt;
  pkt.ip.src = ip("10.0.0.1");
  pkt.ip.dst = ip("10.0.0.2");
  pkt.tcp.src_port = client.local().port;
  pkt.tcp.dst_port = 80;
  pkt.tcp.seq = 1;  // first payload byte after the SYN
  pkt.tcp.ack = 1;
  pkt.tcp.flags = kTcpAck;
  pkt.tcp.window = kDefaultWindow;
  pkt.payload = Buf(testutil::pattern_bytes(5000));
  pkt.tcp.checksum = tcp_checksum(pkt);
  net.a.send_ip(pkt);
  net.sim.run();

  EXPECT_EQ(got.size(), 2048u) << "only the advertised window is accepted";
  EXPECT_EQ(server_conn->bytes_received(), 2048u);
  EXPECT_EQ(server_conn->recv_buffered(), 2048u);
  EXPECT_EQ(server_conn->advertised_window(), 0u);
  EXPECT_EQ(net.b.tcp().window_overrun_drops(), 5000u - 2048u);
  EXPECT_EQ(
      net.sim.telemetry().counter("tcp.window_overrun_drops").value(),
      5000u - 2048u);
  EXPECT_EQ(client.state(), TcpConnection::State::kEstablished)
      << "the clamped ACK must not desync the real sender";

  // Releasing the credit reopens exactly the configured window.
  server_conn->consume(2048);
  EXPECT_EQ(server_conn->advertised_window(), 2048u);
}

TEST(Tcp, PendingRxIsBoundedByReceiveWindow) {
  // No data sink registered: arrivals park in pending_rx_, which the
  // window bounds — the sender stalls instead of growing the buffer.
  TwoNodeNet net;
  net.b.tcp().set_default_window(4096);
  const Bytes payload = testutil::pattern_bytes(16 * 1024);
  TcpConnection* server_conn = nullptr;
  net.b.tcp().listen(80,
                     [&](TcpConnection& conn) { server_conn = &conn; });
  TcpConnection& client =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 80}, [] {});
  client.send(payload);
  net.sim.run_until(sim::milliseconds(500));

  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(server_conn->bytes_received(), 4096u)
      << "pending_rx_ must stop growing at the window";
  EXPECT_EQ(server_conn->recv_buffered(), 4096u);
  EXPECT_EQ(server_conn->advertised_window(), 0u);
  EXPECT_GE(net.a.tcp().window_stalls(), 1u);

  // Registering the sink flushes and (auto-consume) reopens the window.
  Bytes got;
  server_conn->set_on_data([&](Buf data) {
    got.insert(got.end(), data.begin(), data.end());
  });
  net.sim.run();
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_EQ(got, payload);
  EXPECT_EQ(server_conn->recv_buffered(), 0u);
}

TEST(Tcp, LastConnectPortIsExposed) {
  // StorM's connection attribution reads this (modified iSCSI login).
  TwoNodeNet net;
  net.b.tcp().listen(3260, [](TcpConnection&) {});
  TcpConnection& c =
      net.a.tcp().connect(SocketAddr{ip("10.0.0.2"), 3260}, [] {});
  EXPECT_EQ(net.a.tcp().last_connect_port(), c.local().port);
}

}  // namespace
}  // namespace storm::net
