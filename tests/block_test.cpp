#include <gtest/gtest.h>

#include "block/block_device.hpp"
#include "block/sim_disk.hpp"
#include "block/volume.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace storm::block {
namespace {

TEST(MemDisk, ReadsBackWrites) {
  MemDisk disk(100);
  Bytes data = testutil::pattern_bytes(2 * kSectorSize);
  bool wrote = false;
  disk.write(10, data, [&](Status s) {
    wrote = true;
    EXPECT_TRUE(s.is_ok());
  });
  EXPECT_TRUE(wrote);
  bool read = false;
  disk.read(10, 2, [&](Status s, Bytes got) {
    read = true;
    ASSERT_TRUE(s.is_ok());
    EXPECT_EQ(got, data);
  });
  EXPECT_TRUE(read);
}

TEST(MemDisk, FreshDiskIsZeroed) {
  MemDisk disk(10);
  Bytes got = disk.read_sync(0, 10);
  EXPECT_EQ(got, Bytes(10 * kSectorSize, 0));
}

TEST(MemDisk, RejectsOutOfRange) {
  MemDisk disk(10);
  Status status = Status::ok();
  disk.read(8, 5, [&](Status s, Bytes) { status = s; });
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);

  disk.write(9, Bytes(3 * kSectorSize), [&](Status s) { status = s; });
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

TEST(MemDisk, RejectsUnalignedWrite) {
  MemDisk disk(10);
  Status status = Status::ok();
  disk.write(0, Bytes(100), [&](Status s) { status = s; });
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

TEST(SimDisk, CompletionIsDelayedByServiceTime) {
  sim::Simulator sim;
  DiskProfile profile;
  profile.base_latency = sim::microseconds(100);
  profile.bytes_per_second = 512 * 1000 * 1000;  // 512B in ~1us
  profile.queue_depth = 1;
  SimDisk disk(sim, 100, profile);
  sim::Time done_at = 0;
  disk.write(0, Bytes(kSectorSize, 1), [&](Status s) {
    EXPECT_TRUE(s.is_ok());
    done_at = sim.now();
  });
  EXPECT_EQ(done_at, 0u) << "completion must be asynchronous";
  sim.run();
  EXPECT_EQ(done_at, sim::microseconds(101));
}

TEST(SimDisk, QueueDepthLimitsConcurrency) {
  sim::Simulator sim;
  DiskProfile profile;
  profile.base_latency = sim::microseconds(100);
  profile.bytes_per_second = 1'000'000'000ull;
  profile.queue_depth = 2;
  SimDisk disk(sim, 1000, profile);
  std::vector<sim::Time> completions;
  for (int i = 0; i < 4; ++i) {
    disk.read(0, 1, [&](Status, Bytes) { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 4u);
  // Two in service at once: completions pair up at ~t and ~2t.
  EXPECT_EQ(completions[0], completions[1]);
  EXPECT_EQ(completions[2], completions[3]);
  EXPECT_GT(completions[2], completions[0]);
}

TEST(SimDisk, DataPersistsThroughStore) {
  sim::Simulator sim;
  SimDisk disk(sim, 100);
  Bytes data = testutil::pattern_bytes(kSectorSize);
  disk.write(5, data, [](Status s) { ASSERT_TRUE(s.is_ok()); });
  sim.run();
  EXPECT_EQ(disk.store().read_sync(5, 1), data);
  EXPECT_EQ(disk.writes(), 1u);
}

TEST(VolumeManager, CreatesVolumesWithUniqueIqns) {
  sim::Simulator sim;
  VolumeManager mgr(sim, "storage1", 1'000'000);
  auto v1 = mgr.create("vol1", 1000);
  auto v2 = mgr.create("vol2", 1000);
  ASSERT_TRUE(v1.is_ok());
  ASSERT_TRUE(v2.is_ok());
  EXPECT_NE(v1.value()->iqn(), v2.value()->iqn());
  EXPECT_TRUE(v1.value()->iqn().starts_with("iqn.2016-01.org.storm:storage1:"));
  EXPECT_EQ(mgr.volume_count(), 2u);
}

TEST(VolumeManager, FindsByIqnAndName) {
  sim::Simulator sim;
  VolumeManager mgr(sim, "s", 10'000);
  auto created = mgr.create("data", 100);
  ASSERT_TRUE(created.is_ok());
  EXPECT_TRUE(mgr.find_by_name("data").is_ok());
  EXPECT_TRUE(mgr.find_by_iqn(created.value()->iqn()).is_ok());
  EXPECT_EQ(mgr.find_by_name("nope").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(mgr.find_by_iqn("nope").status().code(), ErrorCode::kNotFound);
}

TEST(VolumeManager, RejectsDuplicatesAndExhaustion) {
  sim::Simulator sim;
  VolumeManager mgr(sim, "s", 1000);
  ASSERT_TRUE(mgr.create("a", 600).is_ok());
  EXPECT_EQ(mgr.create("a", 100).status().code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(mgr.create("b", 600).status().code(), ErrorCode::kOutOfSpace);
  EXPECT_EQ(mgr.create("c", 0).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(mgr.free_sectors(), 400u);
}

TEST(VolumeManager, DestroyRespectsAttachment) {
  sim::Simulator sim;
  VolumeManager mgr(sim, "s", 1000);
  auto v = mgr.create("a", 100);
  ASSERT_TRUE(v.is_ok());
  v.value()->set_attached(true);
  EXPECT_EQ(mgr.destroy("a").code(), ErrorCode::kFailedPrecondition);
  v.value()->set_attached(false);
  EXPECT_TRUE(mgr.destroy("a").is_ok());
  EXPECT_EQ(mgr.free_sectors(), 1000u);
  EXPECT_EQ(mgr.destroy("a").code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace storm::block
