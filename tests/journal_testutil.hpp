// Deterministic crash-point harness for the journal engine.
//
// The harness drives a real journal::Device and, in parallel, a small
// independent reference model of the documented invariants (append order,
// burst-atomic trim cursors, checkpoint horizons). Crash points are
// enumerated from the device's own NVRAM image: every record boundary
// (the power fails exactly after a frame's last byte reaches NVRAM) and
// points inside a frame (a torn write). For each point the harness builds
// the truncated image a real power failure would leave behind, replays it
// into a fresh device, and verifies the recovered per-stream state is
// byte-exact against the model's replay of the same kept record prefix.
//
// The oracle is deliberately *not* the engine: the model re-derives the
// expected recovery from first principles (kept seq prefix + latest kept
// checkpoint horizon), so an engine bug cannot vouch for itself.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/buf.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "journal/log.hpp"
#include "sim/simulator.hpp"

namespace storm::testutil {

/// One crash point within a device image: keep segments [0, segment)
/// whole plus `keep_bytes` of segment `segment`; everything after is
/// lost. `mid_record` marks points that land inside a frame (the replay
/// scan must flag the tail as torn).
struct KillPoint {
  std::size_t segment = 0;
  std::size_t keep_bytes = 0;
  bool mid_record = false;
};

/// Expected post-recovery state of one stream, per the reference model.
struct ExpectedStream {
  std::vector<Bytes> payloads;  // live records, oldest first
  std::size_t bytes = 0;
  std::size_t torn_tail_bytes = 0;
};

class JournalHarness {
 public:
  explicit JournalHarness(journal::Config config = {},
                          std::string scope_prefix = "journal.")
      : device(sim, sim.telemetry().scope(scope_prefix), config) {}

  sim::Simulator sim;
  journal::Device device;

  journal::StreamId open_stream() { return device.open_stream(); }

  /// Append to the device and mirror into the model history.
  std::uint64_t append(journal::StreamId stream, Bytes payload,
                       std::uint64_t watermark, bool boundary) {
    const std::uint64_t seq =
        device.append(stream, {Buf(Bytes(payload))}, watermark, boundary);
    history_.push_back(Record{stream, seq, watermark, boundary,
                              /*checkpoint=*/false, std::move(payload),
                              journal::Checkpoint{}});
    live_[stream].push_back(history_.size() - 1);
    watermarks_[stream] = std::max(watermarks_[stream], watermark);
    sync_checkpoints();
    return seq;
  }

  /// Convenience: append one burst of `pdus` records totalling
  /// `burst_bytes`, advancing the stream's cumulative watermark. Only the
  /// last record carries the boundary flag. Returns the new watermark.
  std::uint64_t append_burst(journal::StreamId stream, Rng& rng,
                             std::size_t pdus, std::size_t bytes_per_pdu) {
    for (std::size_t i = 0; i < pdus; ++i) {
      Bytes payload(bytes_per_pdu);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u32());
      watermarks_[stream] += payload.size();
      append(stream, std::move(payload), watermarks_[stream],
             /*boundary=*/i + 1 == pdus);
    }
    return watermarks_[stream];
  }

  /// Burst-atomic trim, mirrored: drop the model's live prefix up to the
  /// furthest boundary at or below `acked`, advancing the trim cursor.
  void trim(journal::StreamId stream, std::uint64_t acked) {
    device.trim(stream, acked);
    auto& live = live_[stream];
    std::size_t drop = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      const Record& rec = history_[live[i]];
      if (rec.watermark > acked) break;
      if (rec.boundary) drop = i + 1;
    }
    if (drop > 0) {
      cursors_[stream] =
          std::max(cursors_[stream], history_[live[drop - 1]].watermark);
      live.erase(live.begin(), live.begin() + static_cast<long>(drop));
    }
    sync_checkpoints();
  }

  void drop_stream(journal::StreamId stream) {
    device.drop_stream(stream);
    dropped_.insert(stream);
    live_.erase(stream);
    sync_checkpoints();
  }

  void checkpoint() {
    device.checkpoint();
    sync_checkpoints();
  }

  /// Drain the device's write pipeline (group-commit flushes are sim
  /// events; a schedule that never runs the sim never commits).
  void settle() { sim.run(); }

  std::uint64_t watermark(journal::StreamId stream) {
    return watermarks_[stream];
  }

  /// Highest live (untrimmed, undropped) record count in the model for
  /// `stream`.
  std::size_t model_live_entries(journal::StreamId stream) const {
    auto it = live_.find(stream);
    return it == live_.end() ? 0 : it->second.size();
  }

  // --- crash-point machinery ---

  /// Every record-boundary kill point in `image`, plus `mid_points`
  /// evenly spread interior points per frame (torn writes). Point (seg 0,
  /// keep 0) — "nothing ever reached NVRAM" — is included.
  static std::vector<KillPoint> enumerate_kill_points(
      const journal::Device::Image& image, std::size_t mid_points = 2) {
    std::vector<KillPoint> points;
    points.push_back(KillPoint{0, 0, false});
    for (std::size_t s = 0; s < image.segments.size(); ++s) {
      const journal::ScanResult scan = journal::scan_image(image.segments[s]);
      for (const journal::RecordView& view : scan.records) {
        for (std::size_t m = 1; m <= mid_points; ++m) {
          const std::size_t inside =
              view.offset + (view.frame_bytes * m) / (mid_points + 1);
          if (inside > view.offset && inside < view.offset + view.frame_bytes) {
            points.push_back(KillPoint{s, inside, true});
          }
        }
        points.push_back(KillPoint{s, view.offset + view.frame_bytes, false});
      }
    }
    return points;
  }

  /// The NVRAM image a power failure at `kp` leaves behind.
  static journal::Device::Image truncate_image(
      const journal::Device::Image& image, const KillPoint& kp) {
    journal::Device::Image out;
    for (std::size_t s = 0; s < image.segments.size() && s <= kp.segment;
         ++s) {
      if (s < kp.segment) {
        out.segments.push_back(image.segments[s]);
      } else {
        Bytes head(image.segments[s].begin(),
                   image.segments[s].begin() + static_cast<long>(kp.keep_bytes));
        out.segments.push_back(std::move(head));
      }
    }
    return out;
  }

  /// Reference-model recovery for a (possibly truncated) image: scan the
  /// image for the kept seq set, apply the latest kept checkpoint
  /// horizon, and return the expected live state per stream.
  std::map<journal::StreamId, ExpectedStream> expected_recovery(
      const journal::Device::Image& image) const {
    std::set<std::uint64_t> kept;
    for (const Bytes& seg : image.segments) {
      const journal::ScanResult scan = journal::scan_image(seg);
      for (const journal::RecordView& view : scan.records) {
        kept.insert(view.seq);
      }
    }
    journal::Checkpoint horizon;
    for (const Record& rec : history_) {
      if (rec.checkpoint && kept.count(rec.seq) != 0) horizon = rec.horizon;
    }
    std::map<journal::StreamId, ExpectedStream> out;
    for (const Record& rec : history_) {
      if (rec.checkpoint || kept.count(rec.seq) == 0) continue;
      if (horizon.covers(rec.stream, rec.watermark)) continue;
      ExpectedStream& st = out[rec.stream];
      st.bytes += rec.payload.size();
      st.torn_tail_bytes =
          rec.boundary ? 0 : st.torn_tail_bytes + rec.payload.size();
      st.payloads.push_back(rec.payload);
    }
    return out;
  }

  /// Load `image` into a fresh device (own simulator — recovery happens
  /// on a cold machine) and verify the recovered per-stream state is
  /// byte-exact against the model. Returns the replay stats for extra
  /// assertions (torn counts etc.).
  journal::Device::ReplayStats verify_recovery(
      const journal::Device::Image& image, const std::string& label) const {
    sim::Simulator recovery_sim;
    journal::Device recovered(recovery_sim,
                              recovery_sim.telemetry().scope("journal."),
                              device.config());
    const journal::Device::ReplayStats stats = recovered.load(image);

    const auto expected = expected_recovery(image);
    std::set<journal::StreamId> all_streams;
    for (const auto& [id, st] : expected) all_streams.insert(id);
    for (const Record& rec : history_) {
      if (!rec.checkpoint) all_streams.insert(rec.stream);
    }
    for (journal::StreamId id : all_streams) {
      auto it = expected.find(id);
      const ExpectedStream empty;
      const ExpectedStream& want = it == expected.end() ? empty : it->second;
      const std::vector<BufChain> got = recovered.stream_records(id);
      EXPECT_EQ(got.size(), want.payloads.size())
          << label << ": stream " << id << " record count";
      const std::size_t n = std::min(got.size(), want.payloads.size());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(chain_to_bytes(got[i]), want.payloads[i])
            << label << ": stream " << id << " record " << i << " payload";
      }
      EXPECT_EQ(recovered.stream_bytes(id), want.bytes)
          << label << ": stream " << id << " bytes";
      EXPECT_EQ(recovered.stream_torn_tail_bytes(id), want.torn_tail_bytes)
          << label << ": stream " << id << " torn tail";
    }
    return stats;
  }

  /// Sweep every kill point of the device's current image.
  void sweep_kill_points(std::size_t mid_points = 2) {
    const journal::Device::Image image = device.export_image();
    const std::vector<KillPoint> points =
        enumerate_kill_points(image, mid_points);
    for (const KillPoint& kp : points) {
      const journal::Device::Image cut = truncate_image(image, kp);
      const std::string label =
          "kill seg=" + std::to_string(kp.segment) +
          " keep=" + std::to_string(kp.keep_bytes) +
          (kp.mid_record ? " (mid-record)" : " (boundary)");
      const journal::Device::ReplayStats stats = verify_recovery(cut, label);
      if (kp.mid_record) {
        EXPECT_EQ(stats.torn, 1u) << label;
      } else {
        EXPECT_TRUE(stats.clean()) << label;
      }
      if (::testing::Test::HasFailure()) return;  // first failing point
    }
  }

 private:
  struct Record {
    journal::StreamId stream = 0;
    std::uint64_t seq = 0;
    std::uint64_t watermark = 0;
    bool boundary = true;
    bool checkpoint = false;
    Bytes payload;
    journal::Checkpoint horizon;  // checkpoint records only
  };

  /// The device may auto-checkpoint inside trim()/drop_stream(); observe
  /// the checkpoint counter after every mirrored operation and record any
  /// new checkpoint with the model's current horizon (which must equal
  /// the device's, or recovery comparisons will say so).
  void sync_checkpoints() {
    while (model_checkpoints_ < device.checkpoints_written()) {
      ++model_checkpoints_;
      journal::Checkpoint horizon;
      horizon.cursors = cursors_;
      horizon.dropped = dropped_;
      // At most one checkpoint can be written per mirrored op, and it is
      // the op's last record, so its seq is the device's newest.
      history_.push_back(Record{journal::kMetaStream, device.appended_seq(),
                               0, true, /*checkpoint=*/true, Bytes{},
                               std::move(horizon)});
    }
  }

  std::vector<Record> history_;  // every record ever appended, seq order
  std::map<journal::StreamId, std::vector<std::size_t>> live_;  // -> history_
  std::map<journal::StreamId, std::uint64_t> cursors_;
  std::map<journal::StreamId, std::uint64_t> watermarks_;
  std::set<journal::StreamId> dropped_;
  std::uint64_t model_checkpoints_ = 0;
};

}  // namespace storm::testutil
