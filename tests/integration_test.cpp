// Property-style end-to-end sweeps: every relay mode x I/O size x service
// must move bytes through the full spliced path unchanged (from the VM's
// point of view), regardless of what the middle-box does to them on the
// wire and at rest.
#include <gtest/gtest.h>

#include <tuple>

#include "core/platform.hpp"
#include "crypto/sha256.hpp"
#include "obs/registry.hpp"
#include "services/registry.hpp"
#include "services/write_tracker.hpp"
#include "testutil.hpp"

namespace storm {
namespace {

using core::DeploymentHandle;
using core::RelayMode;
using core::ServiceSpec;

struct SweepParam {
  RelayMode relay;
  std::uint32_t io_bytes;
  const char* service;
  bool transforms_at_rest;  // data on the backend differs from plaintext
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string relay = core::to_string(info.param.relay);
  return relay + "_" + std::to_string(info.param.io_bytes / 1024) + "K_" +
         info.param.service;
}

class EndToEndSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  EndToEndSweep() : cloud_(sim_, cloud::CloudConfig{}), platform_(cloud_) {
    services::register_builtin_services(platform_);
  }

  sim::Simulator sim_;
  cloud::Cloud cloud_;
  core::StormPlatform platform_;
};

TEST_P(EndToEndSweep, RoundTripsThroughSplicedPath) {
  const SweepParam& param = GetParam();
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 40'000).is_ok());

  ServiceSpec spec;
  spec.type = param.service;
  spec.relay = param.relay;
  Status status = error(ErrorCode::kIoError, "unset");
  DeploymentHandle deployment;
  platform_.attach_with_chain("vm", "vol", {spec},
                              [&](Result<DeploymentHandle> r) {
                                status = r.status();
                                if (r.is_ok()) deployment = r.value();
                              });
  sim_.run();
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  ASSERT_TRUE(deployment.valid());

  // Three writes at scattered offsets, then read back (reverse order).
  struct Region {
    std::uint64_t lba;
    Bytes data;
  };
  std::vector<Region> regions;
  std::uint32_t sectors = param.io_bytes / block::kSectorSize;
  for (int i = 0; i < 3; ++i) {
    regions.push_back(Region{
        static_cast<std::uint64_t>(i) * 10'000,
        testutil::pattern_bytes(param.io_bytes,
                                static_cast<std::uint8_t>(i + 1))});
  }
  for (auto& region : regions) {
    bool ok = false;
    vm.disk()->write(region.lba, region.data, [&](Status s) {
      ASSERT_TRUE(s.is_ok()) << s.to_string();
      ok = true;
    });
    sim_.run();
    ASSERT_TRUE(ok);
  }
  for (auto it = regions.rbegin(); it != regions.rend(); ++it) {
    Bytes got;
    vm.disk()->read(it->lba, sectors, [&](Status s, Bytes d) {
      ASSERT_TRUE(s.is_ok()) << s.to_string();
      got = std::move(d);
    });
    sim_.run();
    EXPECT_EQ(crypto::sha256(got), crypto::sha256(it->data));
  }

  // At-rest property.
  auto volume = cloud_.storage(0).volumes().find_by_name("vol");
  Bytes at_rest = volume.value()->disk().store().read_sync(
      regions[0].lba, sectors);
  if (param.transforms_at_rest) {
    EXPECT_NE(at_rest, regions[0].data);
  } else {
    EXPECT_EQ(at_rest, regions[0].data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, EndToEndSweep,
    ::testing::Values(
        SweepParam{RelayMode::kForward, 4096, "noop", false},
        SweepParam{RelayMode::kForward, 262144, "noop", false},
        SweepParam{RelayMode::kPassive, 4096, "noop", false},
        SweepParam{RelayMode::kPassive, 65536, "stream_cipher", true},
        SweepParam{RelayMode::kPassive, 262144, "stream_cipher", true},
        SweepParam{RelayMode::kActive, 4096, "noop", false},
        SweepParam{RelayMode::kActive, 4096, "stream_cipher", true},
        SweepParam{RelayMode::kActive, 65536, "encryption", true},
        SweepParam{RelayMode::kActive, 262144, "stream_cipher", true},
        SweepParam{RelayMode::kActive, 262144, "encryption", true}),
    param_name);

// --- IoTracker ---------------------------------------------------------------

TEST(IoTracker, ReassemblesMultiPduWriteBurst) {
  services::IoTracker tracker;
  iscsi::Pdu cmd = iscsi::make_write_command(5, 100, 3 * 8192);
  cmd.data = Bytes(8192, 1);
  EXPECT_FALSE(tracker.on_to_target(cmd).has_value());
  EXPECT_FALSE(tracker
                   .on_to_target(iscsi::make_data_out(5, 8192,
                                                      Bytes(8192, 2), false))
                   .has_value());
  auto burst = tracker.on_to_target(
      iscsi::make_data_out(5, 16384, Bytes(8192, 3), true));
  ASSERT_TRUE(burst.has_value());
  EXPECT_EQ(burst->lba, 100u);
  EXPECT_EQ(burst->data.size(), 3u * 8192);
  EXPECT_EQ(burst->data[0], 1);
  EXPECT_EQ(burst->data[8192], 2);
  EXPECT_EQ(burst->data[16384], 3);
}

TEST(IoTracker, SingleCommandWriteCompletesImmediately) {
  services::IoTracker tracker;
  iscsi::Pdu cmd = iscsi::make_write_command(9, 7, 512);
  cmd.data = Bytes(512, 0xEE);
  cmd.flags |= iscsi::kFlagFinal;
  auto burst = tracker.on_to_target(cmd);
  ASSERT_TRUE(burst.has_value());
  EXPECT_EQ(burst->lba, 7u);
}

TEST(IoTracker, TracksReadGeometryUntilResponse) {
  services::IoTracker tracker;
  tracker.on_to_target(iscsi::make_read_command(3, 555, 8192));
  auto info = tracker.read_info(3);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->lba, 555u);
  EXPECT_EQ(info->length, 8192u);
  tracker.on_response(3);
  EXPECT_FALSE(tracker.read_info(3).has_value());
  EXPECT_FALSE(tracker.read_info(99).has_value());
}

TEST(IoTracker, IgnoresDataOutForUnknownTag) {
  services::IoTracker tracker;
  EXPECT_FALSE(tracker
                   .on_to_target(iscsi::make_data_out(77, 0, Bytes(512, 1),
                                                      true))
                   .has_value());
}

// --- hex key parsing --------------------------------------------------------

TEST(HexKey, ParsesAndRejects) {
  auto key = services::parse_hex_key("00ff10Ab");
  ASSERT_TRUE(key.is_ok());
  EXPECT_EQ(key.value(), (Bytes{0x00, 0xFF, 0x10, 0xAB}));
  EXPECT_FALSE(services::parse_hex_key("abc").is_ok());   // odd length
  EXPECT_FALSE(services::parse_hex_key("zz").is_ok());    // bad digits
  EXPECT_TRUE(services::parse_hex_key("").is_ok());
  EXPECT_TRUE(services::parse_hex_key("").value().empty());
}

// --- command tracing through the chain ------------------------------------------

TEST(Tracing, TwoBoxChainCommandSpanCarriesBothRelays) {
  sim::Simulator sim;
  cloud::Cloud cloud(sim, cloud::CloudConfig{});
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud.create_volume("vol", 20'000).is_ok());
  core::ServiceSpec a, b;
  a.type = b.type = "noop";
  a.relay = b.relay = core::RelayMode::kActive;
  Status status = error(ErrorCode::kIoError, "unset");
  platform.attach_with_chain(
      "vm", "vol", {a, b},
      [&](Result<core::DeploymentHandle> r) { status = r.status(); });
  sim.run();
  ASSERT_TRUE(status.is_ok()) << status.to_string();

  cloud::Vm& vm = *cloud.find_vm("vm");
  bool ok = false;
  vm.disk()->write(0, Bytes(8 * block::kSectorSize, 0x3C),
                   [&](Status s) { ok = s.is_ok(); });
  sim.run();
  ASSERT_TRUE(ok);
  Bytes got;
  vm.disk()->read(0, 8, [&](Status s, Bytes d) {
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    got = std::move(d);
  });
  sim.run();
  ASSERT_EQ(got.size(), 8u * block::kSectorSize);

  const obs::Tracer& tracer = sim.telemetry().tracer();
  for (const char* name : {"cmd.write", "cmd.read"}) {
    auto commands = tracer.spans_named(name);
    ASSERT_FALSE(commands.empty()) << name;
    for (const obs::Span* span : commands) {
      ASSERT_TRUE(span->ended);
      // Exactly one "relay.<mb-vm>" child per middle-box of the chain,
      // each fully nested inside the command's root span.
      auto children = tracer.children_of(span->id);
      ASSERT_EQ(children.size(), 2u) << name;
      for (const obs::Span* child : children) {
        EXPECT_TRUE(child->name.starts_with("relay.")) << child->name;
        EXPECT_TRUE(child->ended);
        EXPECT_GE(child->start, span->start);
        EXPECT_LE(child->end, span->end);
      }
      EXPECT_NE(children[0]->name, children[1]->name)
          << "the two boxes must trace as distinct relays";
      // The telescoping hop events reconstruct the end-to-end latency.
      ASSERT_GE(span->events.size(), 2u);
      EXPECT_EQ(span->events.front().label, "issue");
      EXPECT_EQ(span->events.back().label, "complete");
      std::uint64_t hop_sum = 0;
      for (std::size_t i = 0; i + 1 < span->events.size(); ++i) {
        ASSERT_GE(span->events[i + 1].at, span->events[i].at);
        hop_sum += span->events[i + 1].at - span->events[i].at;
      }
      EXPECT_EQ(hop_sum, span->end - span->start);
    }
  }
}

// --- multi-tenant isolation ----------------------------------------------------

TEST(MultiTenant, GatewayPairsAreSeparatePerTenant) {
  sim::Simulator sim;
  cloud::Cloud cloud(sim, cloud::CloudConfig{});
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  cloud.create_vm("vm-a", "alice", 0);
  cloud.create_vm("vm-b", "bob", 1);
  ASSERT_TRUE(cloud.create_volume("vol-a", 10'000).is_ok());
  ASSERT_TRUE(cloud.create_volume("vol-b", 10'000).is_ok());

  core::ServiceSpec spec;
  spec.type = "noop";
  spec.relay = core::RelayMode::kActive;
  int done = 0;
  core::DeploymentHandle dep_a;
  core::DeploymentHandle dep_b;
  platform.attach_with_chain("vm-a", "vol-a", {spec},
                             [&](Result<core::DeploymentHandle> r) {
                               ASSERT_TRUE(r.is_ok())
                                   << r.status().to_string();
                               dep_a = r.value();
                               ++done;
                             });
  platform.attach_with_chain("vm-b", "vol-b", {spec},
                             [&](Result<core::DeploymentHandle> r) {
                               ASSERT_TRUE(r.is_ok())
                                   << r.status().to_string();
                               dep_b = r.value();
                               ++done;
                             });
  sim.run();
  ASSERT_EQ(done, 2);
  // Different tenants must not share gateway nodes.
  EXPECT_NE(dep_a.splice()->gateways.ingress, dep_b.splice()->gateways.ingress);
  EXPECT_NE(dep_a.splice()->gateways.egress, dep_b.splice()->gateways.egress);
  // Same tenant reuses its pair.
  EXPECT_EQ(&platform.splicer().tenant_gateways("alice"),
            &platform.splicer().tenant_gateways("alice"));

  // Both tenants' I/O works concurrently.
  cloud::Vm& vm_a = *cloud.find_vm("vm-a");
  cloud::Vm& vm_b = *cloud.find_vm("vm-b");
  Bytes data_a = testutil::pattern_bytes(4096, 0xA);
  Bytes data_b = testutil::pattern_bytes(4096, 0xB);
  int writes = 0;
  vm_a.disk()->write(0, data_a, [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    ++writes;
  });
  vm_b.disk()->write(0, data_b, [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    ++writes;
  });
  sim.run();
  EXPECT_EQ(writes, 2);
  EXPECT_EQ(cloud.storage(0).volumes().find_by_name("vol-a").value()
                ->disk().store().read_sync(0, 8), data_a);
  EXPECT_EQ(cloud.storage(0).volumes().find_by_name("vol-b").value()
                ->disk().store().read_sync(0, 8), data_b);
}

}  // namespace
}  // namespace storm
