// Zero-copy data path: Buf slicing/COW semantics, aliasing isolation
// between concurrent payload holders (fault-injected corruption and
// service rewrites vs. journal and retransmit-queue references), the
// FlowSwitch exact-match fast path, and seeded-run determinism of the
// telemetry export.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/buf.hpp"
#include "core/active_relay.hpp"
#include "core/service.hpp"
#include "journal/log.hpp"
#include "crypto/sha256.hpp"
#include "iscsi/pdu.hpp"
#include "net/flow_switch.hpp"
#include "obs/registry.hpp"
#include "services/stream_cipher.hpp"
#include "sim/fault.hpp"
#include "testutil.hpp"

namespace storm {
namespace {

using net::FlowAction;
using net::FlowRule;
using net::FlowSwitch;
using net::Ipv4Addr;
using net::Link;
using net::MacAddr;
using net::Packet;
using testutil::ip;
using testutil::mac;

// --- Buf fundamentals -------------------------------------------------------

TEST(Buf, SliceIsAZeroCopyViewOfSharedStorage) {
  const std::uint64_t before = bufstats::bytes_copied();
  Buf whole(testutil::pattern_bytes(4096));
  Buf mid = whole.slice(1024, 2048);
  EXPECT_EQ(mid.size(), 2048u);
  EXPECT_TRUE(mid.shares_storage_with(whole));
  EXPECT_EQ(mid.data(), whole.data() + 1024);
  // Adopting a vector and slicing it moved zero payload bytes.
  EXPECT_EQ(bufstats::bytes_copied(), before);
  Bytes expected = testutil::pattern_bytes(4096);
  EXPECT_TRUE(std::equal(mid.begin(), mid.end(), expected.begin() + 1024));
}

TEST(Buf, MovedFromBufIsEmptyLikeAMovedFromVector) {
  // Cost models all over the simulation read pkt.payload.size() from a
  // packet that was just moved into a deferred callback; a moved-from
  // Buf must report empty exactly like the Bytes it replaced, or every
  // size-derived charge (and therefore packet ordering) shifts.
  Buf a(testutil::pattern_bytes(1000));
  Buf b(std::move(a));
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(b.size(), 1000u);
  Buf c;
  c = std::move(b);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
}

TEST(Buf, ExplicitCopiesFeedTheCopyLedger) {
  Bytes src = testutil::pattern_bytes(500);
  const std::uint64_t before = bufstats::bytes_copied();
  Buf counted = Buf::copy(src);
  EXPECT_EQ(bufstats::bytes_copied(), before + 500);
  Bytes out = counted.to_bytes();
  EXPECT_EQ(bufstats::bytes_copied(), before + 1000);
  counted.append_to(out);
  EXPECT_EQ(bufstats::bytes_copied(), before + 1500);
  EXPECT_EQ(out.size(), 1000u);
}

TEST(Buf, MutableSpanOnUniqueOwnerMutatesInPlace) {
  Buf buf(testutil::pattern_bytes(256));
  const std::uint8_t* storage = buf.data();
  const std::uint64_t before = bufstats::bytes_copied();
  buf.mutable_span()[0] ^= 0xFF;
  // Unique owner: no clone, same storage, no copy charged.
  EXPECT_EQ(buf.data(), storage);
  EXPECT_EQ(bufstats::bytes_copied(), before);
}

// --- COW aliasing isolation -------------------------------------------------

TEST(CowAliasing, FaultCorruptionNeverReachesTheRetransmitReference) {
  // A TCP retransmit queue and an in-flight packet share one storage
  // (slice_send() hands out refcounted views). A link-level bit flip on
  // the in-flight copy must not rewrite the queue's bytes, or the
  // retransmission would resend the corruption.
  sim::Simulator sim;
  sim::FaultPlan plan(sim, 21);
  Buf queue_ref(testutil::pattern_bytes(1460));
  Bytes pristine = queue_ref.to_bytes();

  Packet pkt;
  pkt.payload = queue_ref;  // refcounted share, as emit() does
  ASSERT_TRUE(pkt.payload.shares_storage_with(queue_ref));
  plan.flip_random_bit(pkt.payload.mutable_span());

  // The write forced a private clone; the queue's view is untouched.
  EXPECT_FALSE(pkt.payload.shares_storage_with(queue_ref));
  EXPECT_EQ(queue_ref.to_bytes(), pristine);
  int diff_bits = 0;
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    std::uint8_t x = pkt.payload[i] ^ pristine[i];
    while (x) {
      diff_bits += x & 1;
      x >>= 1;
    }
  }
  EXPECT_EQ(diff_bits, 1);
}

class StubContext : public core::ServiceContext {
 public:
  explicit StubContext(sim::Simulator& simulator)
      : sim_(simulator), scope_(simulator.telemetry().scope("test.")) {}
  void inject_to_target(iscsi::Pdu) override {}
  void inject_to_initiator(iscsi::Pdu) override {}
  sim::Simulator& simulator() override { return sim_; }
  const obs::Scope& scope() override { return scope_; }
  const std::string& volume() const override { return volume_; }

 private:
  sim::Simulator& sim_;
  obs::Scope scope_;
  std::string volume_ = "vol";
};

TEST(CowAliasing, CipherRewriteNeverReachesTheJournalReference) {
  // The active relay journals the serialized wire image while the TCP
  // stack (and any later service) still references the same chunks. A
  // payload-rewriting service must get its own storage: the journal has
  // to replay exactly what was acknowledged, byte for byte.
  sim::Simulator sim;
  StubContext ctx(sim);
  services::StreamCipherService cipher;

  iscsi::Pdu pdu = iscsi::make_write_command(7, 128, 2048);
  pdu.data = Buf(testutil::pattern_bytes(2048));
  pdu.flags |= iscsi::kFlagFinal;
  const Bytes plaintext = pdu.data.to_bytes();

  journal::Device device(sim, sim.telemetry().scope("journal."));
  journal::Stream journal(device);
  BufChain wire = iscsi::serialize_chunks(pdu);
  journal.append(wire, chain_size(wire));
  // serialize_chunks() embeds the data segment by reference.
  ASSERT_TRUE(std::any_of(wire.begin(), wire.end(), [&](const Buf& chunk) {
    return chunk.shares_storage_with(pdu.data);
  }));

  cipher.on_pdu(ctx, core::Direction::kToTarget, pdu);
  EXPECT_NE(pdu.data.to_bytes(), plaintext) << "cipher must rewrite";

  // The journal still holds the plaintext wire image it recorded.
  auto replay = journal.unacknowledged();
  ASSERT_EQ(replay.size(), 1u);
  Bytes journaled = chain_to_bytes(replay.front());
  auto parsed = iscsi::parse_pdu(
      std::span<const std::uint8_t>(journaled.data() + 4,
                                    journaled.size() - 4));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().data.to_bytes(), plaintext);
}

// --- FlowSwitch exact-match fast path ---------------------------------------

Packet flow_packet(std::uint16_t sport, MacAddr src, MacAddr dst,
                   std::size_t payload = 64) {
  Packet pkt;
  pkt.ip.src = ip("10.2.0.1");
  pkt.ip.dst = ip("10.2.0.9");
  pkt.tcp.src_port = sport;
  pkt.tcp.dst_port = 3260;
  pkt.eth.src = src;
  pkt.eth.dst = dst;
  pkt.payload = Bytes(payload, 0x5A);
  pkt.tcp.checksum = net::tcp_checksum(pkt);
  return pkt;
}

TEST(FlowCache, RepeatFlowHitsTheCacheWithIdenticalBehavior) {
  sim::Simulator sim;
  FlowSwitch sw(sim, "ovs");
  Link l_src(sim, 1'000'000'000ull, 0), l_mb(sim, 1'000'000'000ull, 0);
  int got_mb = 0;
  l_mb.connect(0, [&](Packet) { ++got_mb; });
  sw.attach(l_src, 1);
  int port_mb = sw.attach(l_mb, 1);

  FlowRule steer;
  steer.priority = 10;
  steer.match.src_port = 49152;
  steer.actions = {FlowAction::set_dst_mac(mac(0xB1)),
                   FlowAction::output(port_mb)};
  steer.cookie = 1;
  sw.add_rule(steer);

  constexpr int kPackets = 50;
  for (int i = 0; i < kPackets; ++i) {
    l_src.send(0, flow_packet(49152, mac(0xA1), mac(0xE1)));
  }
  sim.run();
  EXPECT_EQ(got_mb, kPackets);
  EXPECT_EQ(sw.cache_misses(), 1u) << "one linear scan, then memoized";
  EXPECT_EQ(sw.cache_hits(), static_cast<std::uint64_t>(kPackets - 1));
  EXPECT_EQ(sw.rules()[0].hits, static_cast<std::uint64_t>(kPackets))
      << "cache hits still count as rule hits";

  // A different four-tuple is a different key: no false sharing.
  l_src.send(0, flow_packet(50000, mac(0xA1), mac(0xE1)));
  sim.run();
  EXPECT_EQ(sw.cache_misses(), 2u);
  EXPECT_EQ(got_mb, kPackets + 1) << "flooded copy via NORMAL";
}

TEST(FlowCache, EveryTableMutationInvalidatesTheCache) {
  sim::Simulator sim;
  FlowSwitch sw(sim, "ovs");
  Link l_src(sim, 1'000'000'000ull, 0), l_a(sim, 1'000'000'000ull, 0),
      l_b(sim, 1'000'000'000ull, 0);
  int got_a = 0, got_b = 0;
  l_a.connect(0, [&](Packet) { ++got_a; });
  l_b.connect(0, [&](Packet) { ++got_b; });
  sw.attach(l_src, 1);
  int port_a = sw.attach(l_a, 1);
  int port_b = sw.attach(l_b, 1);

  FlowRule to_a;
  to_a.priority = 5;
  to_a.match.src_port = 49152;
  to_a.actions = {FlowAction::output(port_a)};
  to_a.cookie = 1;
  sw.add_rule(to_a);

  l_src.send(0, flow_packet(49152, mac(0xA1), mac(0xE1)));
  sim.run();
  EXPECT_EQ(got_a, 1);
  EXPECT_GT(sw.cache_entries(), 0u);

  // add_rule: a higher-priority rule must win immediately, not after the
  // stale memo expires.
  FlowRule to_b;
  to_b.priority = 9;
  to_b.match.src_port = 49152;
  to_b.actions = {FlowAction::output(port_b)};
  to_b.cookie = 2;
  sw.add_rule(to_b);
  EXPECT_EQ(sw.cache_entries(), 0u);
  l_src.send(0, flow_packet(49152, mac(0xA1), mac(0xE1)));
  sim.run();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_a, 1);

  // swap_rules_by_cookie (the failover primitive): the swapped-in drop
  // rule takes effect on the very next packet.
  FlowRule drop;
  drop.priority = 9;
  drop.match.src_port = 49152;
  drop.actions = {FlowAction::drop()};
  drop.cookie = 2;
  sw.swap_rules_by_cookie(2, {drop});
  l_src.send(0, flow_packet(49152, mac(0xA1), mac(0xE1)));
  sim.run();
  EXPECT_EQ(got_b, 1) << "stale cache would have forwarded";
  EXPECT_EQ(got_a, 1);

  // remove_rules_by_cookie: falls back to the lower-priority rule.
  sw.remove_rules_by_cookie(2);
  l_src.send(0, flow_packet(49152, mac(0xA1), mac(0xE1)));
  sim.run();
  EXPECT_EQ(got_a, 2);
}

// --- seeded determinism -----------------------------------------------------

struct TransferOutcome {
  std::string digest;
  std::string trace;
  std::string telemetry;
};

/// One seeded lossy/corrupting transfer; everything observable — the
/// delivered bytes, the fault trace, and the full telemetry JSON (the
/// net.bytes_copied counter included) — must be a pure function of the
/// seed, or the zero-copy refactor broke replayability.
TransferOutcome run_seeded_transfer(std::uint64_t seed) {
  testutil::TwoNodeNet net;
  sim::FaultPlan plan(net.sim, seed);
  sim::PacketFaultProfile profile;
  profile.drop_rate = 0.02;
  profile.corrupt_rate = 0.03;
  net.link.set_fault(&plan, profile, "ab");

  Bytes received;
  net.b.tcp().listen(80, [&](net::TcpConnection& conn) {
    conn.set_on_data([&](Buf data) { data.append_to(received); });
  });
  net::TcpConnection& client =
      net.a.tcp().connect(net::SocketAddr{ip("10.0.0.2"), 80}, [] {});
  client.send(testutil::pattern_bytes(150'000));
  net.sim.run();

  TransferOutcome out;
  out.digest = crypto::digest_hex(crypto::sha256(received));
  out.trace = plan.trace_string();
  out.telemetry = net.sim.telemetry().to_json(/*include_spans=*/true);
  return out;
}

TEST(Determinism, SeededTransferExportsByteIdenticalTelemetry) {
  TransferOutcome first = run_seeded_transfer(0xD1CE);
  TransferOutcome second = run_seeded_transfer(0xD1CE);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.telemetry, second.telemetry);
  ASSERT_FALSE(first.telemetry.empty());
  EXPECT_NE(first.telemetry.find("net.bytes_copied"), std::string::npos)
      << "copy ledger must be exported";
  // Data integrity despite induced corruption.
  EXPECT_EQ(first.digest,
            crypto::digest_hex(crypto::sha256(testutil::pattern_bytes(150'000))));
}

}  // namespace
}  // namespace storm
