// Unit tests for the obs:: telemetry subsystem: registry metrics, scopes,
// trace spans with correlation keys, the bounded flight recorder, and the
// deterministic JSON export.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace storm::obs {
namespace {

// ------------------------------------------------------------- metrics

TEST(Registry, MetricsAreNamedSingletonsWithStableAddresses) {
  sim::Simulator sim;
  Registry& reg = sim.telemetry();
  Counter& c = reg.counter("net.packets");
  c.add();
  c.add(4);
  EXPECT_EQ(reg.counter("net.packets").value(), 5u);
  EXPECT_EQ(&reg.counter("net.packets"), &c)
      << "hot paths cache metric pointers; addresses must be stable";

  Gauge& g = reg.gauge("queue.depth");
  g.set(7);
  g.add(-3);
  EXPECT_EQ(reg.gauge("queue.depth").value(), 4);

  Histogram& h = reg.histogram("lat");
  h.record(100);
  EXPECT_EQ(reg.histogram("lat").count(), 1u);
}

TEST(Registry, ScopePrefixesAndNullScopeDiscards) {
  sim::Simulator sim;
  Registry& reg = sim.telemetry();
  Scope scope = reg.scope("relay.mb-1.");
  scope.counter("pdus").add(3);
  EXPECT_EQ(reg.counter("relay.mb-1.pdus").value(), 3u);

  // A default-constructed Scope is a null object: writes vanish, reads
  // are safe, and nothing lands in any registry.
  Scope null_scope;
  null_scope.counter("pdus").add(42);
  null_scope.gauge("depth").set(9);
  null_scope.histogram("lat").record(1);
  EXPECT_EQ(reg.counter("pdus").value(), 0u);
}

TEST(Histogram, HdrBucketsBoundRelativeError) {
  Histogram h;
  // Exact below 64; bounded relative error above.
  for (std::int64_t v : {1, 2, 63}) {
    h.record(v);
  }
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 63);
  h.clear();
  std::int64_t big = 1'000'000;
  h.record(big);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), big);
  EXPECT_NEAR(h.percentile(50), static_cast<double>(big), 0.02 * big);
  // p0/p100 are the exact extremes regardless of bucketing.
  EXPECT_EQ(h.percentile(0), static_cast<double>(big));
  EXPECT_EQ(h.percentile(100), static_cast<double>(big));
  EXPECT_THROW(h.percentile(-1), std::invalid_argument);
  EXPECT_THROW(h.percentile(101), std::invalid_argument);

  auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 1u);
  std::uint64_t total = 0;
  for (const auto& [rep, count] : buckets) total += count;
  EXPECT_EQ(total, h.count());
}

// -------------------------------------------------------------- tracing

TEST(Tracer, ParentChildSpansAndEvents) {
  sim::Simulator sim;
  Registry& reg = sim.telemetry();
  SpanId root = reg.begin_span("cmd.write");
  sim.schedule_in(sim::microseconds(5), [&] {
    reg.add_event(root, "mb.cmd", /*queue depth*/ 2);
    SpanId child = reg.begin_span("relay.mb-1", root);
    sim.schedule_in(sim::microseconds(3), [&, child] {
      reg.end_span(child);
      reg.add_event(root, "complete");
      reg.end_span(root);
    });
  });
  sim.run();

  const Tracer& tracer = reg.tracer();
  auto roots = tracer.spans_named("cmd.write");
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_TRUE(roots[0]->ended);
  EXPECT_EQ(roots[0]->start, 0u);
  EXPECT_EQ(roots[0]->end, sim::microseconds(8));
  ASSERT_EQ(roots[0]->events.size(), 2u);
  EXPECT_EQ(roots[0]->events[0].label, "mb.cmd");
  EXPECT_EQ(roots[0]->events[0].at, sim::microseconds(5));
  EXPECT_EQ(roots[0]->events[0].value, 2u);

  auto children = tracer.children_of(root);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0]->name, "relay.mb-1");
  EXPECT_EQ(children[0]->parent, root);
  EXPECT_EQ(children[0]->start, sim::microseconds(5));
  EXPECT_EQ(children[0]->end, sim::microseconds(8));
}

TEST(Tracer, BindLookupUnbindCorrelationKeys) {
  sim::Simulator sim;
  Registry& reg = sim.telemetry();
  const std::string key = command_trace_key(40001, 7);
  EXPECT_EQ(key, "cmd:40001:7");
  EXPECT_EQ(reg.lookup(key), 0u) << "unbound key must resolve to no span";

  SpanId id = reg.begin_span("cmd.read");
  reg.bind(key, id);
  EXPECT_EQ(reg.lookup(key), id);
  // Rebinding (tag reuse on a later command) replaces the mapping.
  SpanId id2 = reg.begin_span("cmd.read");
  reg.bind(key, id2);
  EXPECT_EQ(reg.lookup(key), id2);
  reg.unbind(key);
  EXPECT_EQ(reg.lookup(key), 0u);
}

TEST(Tracer, RetentionCapDropsSpanDetailNotIds) {
  Tracer tracer(/*max_retained=*/4);
  std::vector<SpanId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(tracer.begin_span("s", /*now=*/i));
    tracer.add_event(ids.back(), "e", i, 0);
    tracer.end_span(ids.back(), i + 1);
  }
  EXPECT_EQ(tracer.spans_started(), 10u);
  EXPECT_EQ(tracer.spans_dropped(), 6u);
  EXPECT_EQ(tracer.spans().size(), 4u);
  // Ids remain unique and monotonic even past the cap.
  EXPECT_EQ(ids.back(), 10u);
  // Dropped spans are invisible to queries; retained ones intact.
  EXPECT_EQ(tracer.span(ids.back()), nullptr);
  ASSERT_NE(tracer.span(ids.front()), nullptr);
  EXPECT_TRUE(tracer.span(ids.front())->ended);
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorder, BoundedRingKeepsNewestOldestFirst) {
  FlightRecorder rec(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    rec.record(static_cast<sim::Time>(i), "event " + std::to_string(i));
  }
  EXPECT_EQ(rec.total_recorded(), 5u);
  auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].what, "event 2");
  EXPECT_EQ(events[2].what, "event 4");
  EXPECT_LE(events[0].at, events[2].at);

  std::ostringstream out;
  rec.dump(out);
  EXPECT_NE(out.str().find("event 4"), std::string::npos);
  EXPECT_EQ(out.str().find("event 1"), std::string::npos);
}

// ------------------------------------------------------------ to_json

TEST(Registry, ToJsonIsDeterministicAcrossIdenticalRuns) {
  auto run = [] {
    sim::Simulator sim;
    Registry& reg = sim.telemetry();
    reg.counter("b").add(2);
    reg.counter("a").add(1);
    reg.gauge("depth").set(-3);
    reg.histogram("lat").record(1500);
    reg.record_event("attach vm:vol");
    SpanId id = reg.begin_span("cmd.write");
    reg.add_event(id, "issue", 4096);
    reg.end_span(id);
    return reg.to_json(/*include_spans=*/true);
  };
  std::string first = run();
  EXPECT_EQ(first, run());

  // Name-ordered keys, escaped strings, span payload present.
  EXPECT_LT(first.find("\"a\""), first.find("\"b\""));
  EXPECT_NE(first.find("\"sim_time_ns\""), std::string::npos);
  EXPECT_NE(first.find("\"attach vm:vol\""), std::string::npos);
  EXPECT_NE(first.find("\"cmd.write\""), std::string::npos);
  EXPECT_NE(first.find("\"p99\""), std::string::npos);

  // Without spans the trace section is omitted entirely.
  sim::Simulator sim;
  EXPECT_EQ(sim.telemetry().to_json().find("\"spans\""), std::string::npos);
}

TEST(Registry, ToJsonEscapesControlAndQuoteCharacters) {
  sim::Simulator sim;
  Registry& reg = sim.telemetry();
  reg.record_event("quote \" backslash \\ newline \n tab \t end");
  std::string json = reg.to_json();
  EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n tab \\t end"),
            std::string::npos);
}

}  // namespace
}  // namespace storm::obs
