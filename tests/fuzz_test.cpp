// PDU fuzzing: randomly generated PDUs must round-trip byte-exactly
// through serialize/StreamParser under arbitrary TCP segmentation, and
// truncated or bit-flipped buffers must produce a Status error — never a
// crash, an over-read (ASan-checked in the sanitizer CI job), or a
// silently mis-parsed PDU. The journal replay fuzzer at the bottom holds
// the engine's segment scan to the same bar on torn/corrupted NVRAM
// images.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "iscsi/pdu.hpp"
#include "journal/log.hpp"
#include "journal/segment.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace storm::iscsi {
namespace {

Pdu random_pdu(Rng& rng) {
  static constexpr Opcode kOpcodes[] = {
      Opcode::kNopOut,       Opcode::kScsiCommand,  Opcode::kLoginRequest,
      Opcode::kDataOut,      Opcode::kLogoutRequest, Opcode::kNopIn,
      Opcode::kScsiResponse, Opcode::kLoginResponse, Opcode::kDataIn,
      Opcode::kLogoutResponse, Opcode::kReject,
  };
  Pdu pdu;
  pdu.opcode = kOpcodes[rng.below(std::size(kOpcodes))];
  pdu.flags = static_cast<std::uint8_t>(rng.below(256));
  pdu.status = static_cast<std::uint8_t>(rng.below(256));
  pdu.task_tag = static_cast<std::uint32_t>(rng.next_u64());
  pdu.lba = rng.next_u64();
  pdu.transfer_length = static_cast<std::uint32_t>(rng.next_u64());
  pdu.data_offset = static_cast<std::uint32_t>(rng.next_u64());
  std::size_t text_len = rng.below(64);
  for (std::size_t i = 0; i < text_len; ++i) {
    pdu.text.push_back(static_cast<char>('a' + rng.below(26)));
  }
  std::size_t data_len = rng.below(3000);
  Bytes data(data_len);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  pdu.data = std::move(data);
  return pdu;
}

TEST(PduFuzz, RandomPdusRoundTripByteExactly) {
  Rng rng(2024);
  for (int i = 0; i < 200; ++i) {
    Pdu pdu = random_pdu(rng);
    Bytes wire = serialize(pdu);
    auto parsed = parse_pdu(std::span<const std::uint8_t>(
        wire.data() + 4, wire.size() - 4));
    ASSERT_TRUE(parsed.is_ok()) << "iteration " << i << ": "
                                << parsed.status().to_string();
    // Byte-exact: re-serializing the parse yields the same wire image.
    EXPECT_EQ(serialize(parsed.value()), wire) << "iteration " << i;
  }
}

TEST(PduFuzz, RandomSegmentationReassemblesEverything) {
  Rng rng(99);
  std::vector<Pdu> sent;
  Bytes stream;
  for (int i = 0; i < 50; ++i) {
    Pdu pdu = random_pdu(rng);
    Bytes wire = serialize(pdu);
    stream.insert(stream.end(), wire.begin(), wire.end());
    sent.push_back(std::move(pdu));
  }
  StreamParser parser;
  std::vector<Pdu> got;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    std::size_t n = std::min<std::size_t>(1 + rng.below(1500),
                                          stream.size() - pos);
    ASSERT_TRUE(parser
                    .feed(std::span<const std::uint8_t>(stream.data() + pos, n),
                          got)
                    .is_ok());
    pos += n;
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(serialize(got[i]), serialize(sent[i])) << "pdu " << i;
  }
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(PduFuzz, EveryTruncationIsARejectedParseNotACrash) {
  Rng rng(7);
  Pdu pdu = random_pdu(rng);
  Bytes wire = serialize(pdu);
  std::span<const std::uint8_t> body(wire.data() + 4, wire.size() - 4);
  for (std::size_t len = 0; len < body.size(); ++len) {
    auto parsed = parse_pdu(body.first(len));
    EXPECT_FALSE(parsed.is_ok()) << "truncation to " << len << " accepted";
    EXPECT_EQ(parsed.status().code(), ErrorCode::kParseError);
  }
}

TEST(PduFuzz, EverySingleBitFlipInBodyIsDetected) {
  Rng rng(8);
  Pdu pdu = random_pdu(rng);
  pdu.data = pdu.data.slice(0, std::min<std::size_t>(pdu.data.size(), 200));
  pdu.data_digest = 0;
  Bytes wire = serialize(pdu);
  const std::size_t body_len = wire.size() - 4;
  for (std::size_t bit = 0; bit < body_len * 8; ++bit) {
    Bytes flipped = wire;
    flipped[4 + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    auto parsed = parse_pdu(std::span<const std::uint8_t>(
        flipped.data() + 4, body_len));
    EXPECT_FALSE(parsed.is_ok())
        << "bit flip at body bit " << bit << " went undetected";
  }
}

TEST(PduFuzz, CorruptStreamErrorsWithoutOverread) {
  Rng rng(55);
  for (int round = 0; round < 100; ++round) {
    StreamParser parser;
    std::vector<Pdu> got;
    // Random garbage, sometimes starting with a plausible length prefix.
    Bytes junk(8 + rng.below(512));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    if (rng.chance(0.5)) {
      // Make the claimed body length small enough to "complete".
      junk[0] = 0;
      junk[1] = 0;
      junk[2] = 0;
      junk[3] = static_cast<std::uint8_t>(rng.below(junk.size() - 4));
    }
    Status status = parser.feed(junk, got);
    // Either the frame never completes (ok, buffered) or the body parse
    // fails; a random body passing the whole-body CRC is ~2^-32.
    if (status.is_ok()) {
      EXPECT_TRUE(got.empty() || status.is_ok());
    } else {
      EXPECT_EQ(status.code(), ErrorCode::kParseError);
    }
  }
}

TEST(PduFuzz, BitFlippedStreamNeverDeliversAWrongPdu) {
  Rng rng(77);
  // A realistic wire stream: login, write command, data-outs, response.
  Bytes stream;
  auto add = [&stream](const Pdu& pdu) {
    Bytes wire = serialize(pdu);
    stream.insert(stream.end(), wire.begin(), wire.end());
  };
  add(make_login_request("iqn.test"));
  add(make_write_command(1, 0, 16384));
  for (std::uint32_t off = 0; off < 16384; off += kMaxDataSegment) {
    add(make_data_out(1, off, Bytes(kMaxDataSegment, 0xAB),
                      off + kMaxDataSegment == 16384));
  }
  add(make_scsi_response(1, kStatusGood));

  for (int round = 0; round < 200; ++round) {
    Bytes corrupted = stream;
    std::size_t bit = rng.below(corrupted.size() * 8);
    corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    StreamParser parser;
    std::vector<Pdu> got;
    Status status = parser.feed(corrupted, got);
    if (status.is_ok()) {
      // The flip hit a length prefix and the parser is still waiting for
      // a (bogus) longer frame — fine, but every PDU it *did* deliver
      // must be one of the originals, byte-exact.
      std::vector<Pdu> originals;
      StreamParser clean;
      ASSERT_TRUE(clean.feed(stream, originals).is_ok());
      ASSERT_LE(got.size(), originals.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(serialize(got[i]), serialize(originals[i]));
      }
    } else {
      EXPECT_EQ(status.code(), ErrorCode::kParseError);
    }
  }
}

// ------------------------------------------------- journal replay fuzzing

/// Build a healthy multi-segment journal image and remember every record
/// ever appended, keyed by device sequence number.
struct JournalCorpus {
  sim::Simulator sim;
  journal::Device device;
  std::map<std::uint64_t, Bytes> payload_by_seq;

  JournalCorpus()
      : device(sim, sim.telemetry().scope("journal."), [] {
          journal::Config config;
          config.segment_bytes = 512;
          config.checkpoint_dead_bytes = 0;
          return config;
        }()) {
    Rng rng(4242);
    const journal::StreamId a = device.open_stream();
    const journal::StreamId b = device.open_stream();
    std::uint64_t wm_a = 0, wm_b = 0;
    for (int i = 0; i < 24; ++i) {
      const journal::StreamId s = (i % 3 == 0) ? b : a;
      std::uint64_t& wm = (s == b) ? wm_b : wm_a;
      Bytes payload(16 + rng.below(120));
      for (auto& byte : payload) {
        byte = static_cast<std::uint8_t>(rng.next_u32());
      }
      wm += payload.size();
      const std::uint64_t seq = device.append(
          s, {Buf(Bytes(payload))}, wm, /*boundary=*/rng.chance(0.7));
      payload_by_seq[seq] = std::move(payload);
    }
    device.checkpoint();  // a meta record in the corpus too
  }
};

TEST(JournalReplayFuzz, TornAndBitFlippedImagesNeverCrashOrYieldBadRecords) {
  JournalCorpus corpus;
  const journal::Device::Image image = corpus.device.export_image();
  ASSERT_GT(image.segments.size(), 1u);

  Rng rng(1717);
  std::uint64_t torn_total = 0;
  for (int round = 0; round < 400; ++round) {
    journal::Device::Image mutated = image;
    const double roll = rng.next_double();
    std::size_t seg = rng.below(mutated.segments.size());
    if (mutated.segments[seg].empty()) continue;
    if (roll < 0.45) {
      // Bit flip anywhere in one segment.
      Bytes& bytes = mutated.segments[seg];
      const std::size_t bit = rng.below(bytes.size() * 8);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    } else if (roll < 0.8) {
      // Truncate a segment mid-byte-stream (torn tail) and drop the rest.
      Bytes& bytes = mutated.segments[seg];
      bytes.resize(rng.below(bytes.size()));
      mutated.segments.resize(seg + 1);
    } else {
      // Garbage tail: append noise after the valid region.
      Bytes& bytes = mutated.segments[seg];
      const std::size_t n = 1 + rng.below(64);
      for (std::size_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(rng.next_u32() | 1));
      }
      mutated.segments.resize(seg + 1);
    }

    // Replay must terminate, never crash/over-read (ASan job), and every
    // record it accepts must be one the corpus really appended — CRC
    // framing means a corrupted frame is dropped, never delivered.
    sim::Simulator sim;
    journal::Device recovered(sim, sim.telemetry().scope("journal."),
                              corpus.device.config());
    const journal::Device::ReplayStats stats = recovered.load(mutated);
    torn_total += stats.torn;
    for (const Bytes& seg_bytes : recovered.export_image().segments) {
      for (const journal::RecordView& view : journal::scan_image(seg_bytes).records) {
        if (view.stream == journal::kMetaStream) continue;
        auto it = corpus.payload_by_seq.find(view.seq);
        ASSERT_NE(it, corpus.payload_by_seq.end())
            << "round " << round << ": replay accepted an invented record";
        EXPECT_EQ(Bytes(view.payload.begin(), view.payload.end()), it->second)
            << "round " << round << ": accepted record not byte-exact";
      }
    }
    // The torn-record telemetry the ops side alarms on.
    EXPECT_EQ(sim.telemetry().counter("journal.replay_torn_records").value(),
              stats.torn);
  }
  EXPECT_GT(torn_total, 0u) << "corpus never produced a torn tail";
}

}  // namespace
}  // namespace storm::iscsi
