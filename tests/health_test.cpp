// Chain health manager suite: heartbeat detection, the three recovery
// policies (standby promotion with NVRAM journal handoff, fail-open
// bypass, fail-closed fencing), TCP-stall fast-path detection, and the
// deterministic failover chaos run whose telemetry JSON — MTTR included
// — must be byte-identical across identically seeded runs.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/active_relay.hpp"
#include "core/health_manager.hpp"
#include "core/platform.hpp"
#include "crypto/sha256.hpp"
#include "services/registry.hpp"
#include "sim/fault.hpp"
#include "testutil.hpp"

namespace storm {
namespace {

using core::DeploymentHandle;
using core::RecoveryPolicyKind;
using core::RelayHealth;
using core::RelayMode;
using core::ServiceSpec;

class HealthTest : public ::testing::Test {
 protected:
  HealthTest() : cloud_(sim_, cloud::CloudConfig{}), platform_(cloud_) {
    services::register_builtin_services(platform_);
  }

  DeploymentHandle deploy(const std::string& vm, const std::string& vol,
                          std::vector<ServiceSpec> chain) {
    Status status = error(ErrorCode::kIoError, "unset");
    DeploymentHandle deployment;
    platform_.attach_with_chain(vm, vol, std::move(chain),
                                [&](Result<DeploymentHandle> r) {
                                  status = r.status();
                                  if (r.is_ok()) deployment = r.value();
                                });
    sim_.run();
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return deployment;
  }

  static ServiceSpec noop_spec(RelayMode relay, RecoveryPolicyKind recovery) {
    ServiceSpec spec;
    spec.type = "noop";
    spec.relay = relay;
    spec.recovery = recovery;
    return spec;
  }

  sim::Simulator sim_;
  cloud::Cloud cloud_;
  core::StormPlatform platform_;
};

// ------------------------------------------------------------- detection

TEST_F(HealthTest, HealthyChainStaysAliveAndSuspectRecovers) {
  cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 20'000).is_ok());
  DeploymentHandle dep =
      deploy("vm", "vol", {noop_spec(RelayMode::kActive,
                                     RecoveryPolicyKind::kFence)});

  platform_.health().start();
  sim_.run_for(sim::milliseconds(50));
  EXPECT_EQ(platform_.health().status(dep.cookie(), 0), RelayHealth::kAlive);
  EXPECT_EQ(platform_.health().failures_detected(), 0u);

  // One missed heartbeat makes the relay suspect, not failed; answering
  // the next probe clears it. Flip the VM down across exactly one probe.
  dep.mb_vm(0)->node().set_down(true);
  sim_.run_for(platform_.health().config().heartbeat_interval);
  EXPECT_EQ(platform_.health().status(dep.cookie(), 0),
            RelayHealth::kSuspect);
  dep.mb_vm(0)->node().set_down(false);
  sim_.run_for(2 * platform_.health().config().heartbeat_interval);
  EXPECT_EQ(platform_.health().status(dep.cookie(), 0), RelayHealth::kAlive);
  EXPECT_EQ(platform_.health().failures_detected(), 0u);
  platform_.health().stop();
}

// ------------------------------------------------------ fencing (kFence)

TEST_F(HealthTest, FenceFailsClosedAndErrorsInFlightCommands) {
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 20'000).is_ok());
  DeploymentHandle dep =
      deploy("vm", "vol", {noop_spec(RelayMode::kActive,
                                     RecoveryPolicyKind::kFence)});
  dep.attachment()->initiator->set_recovery({.enabled = true});
  platform_.health().start();

  // A write in flight when the relay dies: fencing must error it back
  // rather than hang it forever.
  int state = 0;
  vm.disk()->write(0, Bytes(64 * block::kSectorSize, 0xAB),
                   [&](Status s) { state = s.is_ok() ? 1 : -1; });
  sim_.run_for(sim::microseconds(200));
  ASSERT_TRUE(dep.crash_middlebox(0).is_ok());
  sim_.run_for(sim::milliseconds(50));

  EXPECT_EQ(state, -1) << "in-flight write must error, not hang";
  EXPECT_TRUE(dep.fenced());
  EXPECT_EQ(platform_.health().failures_detected(), 1u);
  EXPECT_EQ(platform_.health().last_outcome(dep.cookie()),
            RelayHealth::kFenced);
  EXPECT_EQ(platform_.health().status(dep.cookie(), 0),
            RelayHealth::kFenced);

  // Fail closed: nothing is admitted afterwards either.
  state = 0;
  vm.disk()->write(64, Bytes(block::kSectorSize, 0xCD),
                   [&](Status s) { state = s.is_ok() ? 1 : -1; });
  sim_.run_for(sim::milliseconds(5));
  EXPECT_EQ(state, -1);

  // The failure dumped the flight recorder and counted itself.
  EXPECT_EQ(sim_.telemetry().counter("health.fences").value(), 1u);
  EXPECT_EQ(sim_.telemetry().counter("health.failures").value(), 1u);
  platform_.health().stop();
}

// ------------------------------------------------------- bypass (kBypass)

TEST_F(HealthTest, BypassRoutesAroundDeadMonitorBox) {
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 40'000).is_ok());
  // Two boxes: an active noop (fenced on failure) fronted by a passive
  // monitor-class box that is allowed to fail open.
  DeploymentHandle dep = deploy(
      "vm", "vol",
      {noop_spec(RelayMode::kPassive, RecoveryPolicyKind::kBypass),
       noop_spec(RelayMode::kActive, RecoveryPolicyKind::kFence)});
  ASSERT_EQ(dep.chain_length(), 2u);
  dep.attachment()->initiator->set_recovery({.enabled = true});
  platform_.health().start();

  Bytes data = testutil::pattern_bytes(32 * block::kSectorSize);
  bool ok = false;
  vm.disk()->write(0, data, [&](Status s) { ok = s.is_ok(); });
  sim_.run_for(sim::milliseconds(20));
  ASSERT_TRUE(ok);

  // Kill the monitor box: the chain must shrink around it.
  ASSERT_TRUE(dep.crash_middlebox(0).is_ok());
  sim_.run_for(sim::milliseconds(100));
  EXPECT_EQ(dep.chain_length(), 1u);
  EXPECT_FALSE(dep.fenced());
  EXPECT_EQ(platform_.health().last_outcome(dep.cookie()),
            RelayHealth::kBypassed);

  // The shortened chain still carries reads and writes.
  Bytes data2 = testutil::pattern_bytes(32 * block::kSectorSize, 7);
  ok = false;
  vm.disk()->write(32, data2, [&](Status s) { ok = s.is_ok(); });
  sim_.run_for(sim::milliseconds(100));
  EXPECT_TRUE(ok) << "writes must flow through the bypassed chain";
  Bytes got;
  vm.disk()->read(0, 32, [&](Status s, Bytes d) {
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    got = std::move(d);
  });
  sim_.run_for(sim::milliseconds(50));
  EXPECT_EQ(got, data);
  EXPECT_EQ(sim_.telemetry().counter("health.bypasses").value(), 1u);
  platform_.health().stop();
}

TEST_F(HealthTest, BypassIsRejectedAtDeployTimeForConfidentialityServices) {
  cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 20'000).is_ok());
  for (const std::string& type :
       {std::string("encryption"), std::string("stream_cipher")}) {
    ServiceSpec spec;
    spec.type = type;
    spec.relay = type == "stream_cipher" ? RelayMode::kPassive
                                         : RelayMode::kActive;
    spec.recovery = RecoveryPolicyKind::kBypass;
    Status status = Status::ok();
    platform_.attach_with_chain(
        "vm", "vol", {spec},
        [&](Result<DeploymentHandle> r) { status = r.status(); });
    sim_.run();
    EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied)
        << type << ": " << status.to_string();
  }
  // Policy-file parsing refuses it too, before any VM is provisioned.
  auto parsed = core::parse_policy(
      "tenant t\nvolume vm vol\n"
      "  service encryption relay=active recovery=bypass\n");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(HealthTest, BackpressureStallIsNotAFailure) {
  // A chain throttled by flow control looks idle, not dead: the relay
  // answers heartbeats and the initiator sits in zero-window persist
  // (which never burns retransmission retries), so the health manager
  // must not fence a healthy-but-paused deployment.
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 20'000).is_ok());
  ServiceSpec spec = noop_spec(RelayMode::kActive, RecoveryPolicyKind::kFence);
  spec.params["journal_hwm_kb"] = "32";
  spec.params["journal_lwm_kb"] = "8";
  DeploymentHandle dep = deploy("vm", "vol", {spec});
  ASSERT_TRUE(dep.valid());
  platform_.health().start();

  // Backend dark for 300 ms of sim time with four 64 KiB writes kept in
  // flight: the relay hits its watermark and pauses ingress.
  cloud_.storage(0).node().set_down(true);
  sim_.schedule_in(sim::milliseconds(300),
             [&] { cloud_.storage(0).node().set_down(false); });
  constexpr int kWrites = 12;
  constexpr std::uint32_t kSectors = 128;
  int completed = 0, failed = 0, next = 0;
  std::function<void()> issue = [&] {
    const int i = next++;
    vm.disk()->write(
        static_cast<std::uint64_t>(i) * kSectors,
        Bytes(kSectors * block::kSectorSize,
              static_cast<std::uint8_t>(i + 1)),
        [&](Status s) {
          ++completed;
          if (!s.is_ok()) ++failed;
          if (next < kWrites) issue();
        });
  };
  for (int i = 0; i < 4; ++i) issue();

  sim_.run_until(sim::milliseconds(200));
  ASSERT_GE(dep.active_relay(0)->paused_directions(), 1u)
      << "test must actually exercise the paused state";
  EXPECT_EQ(platform_.health().status(dep.cookie(), 0), RelayHealth::kAlive);
  EXPECT_EQ(platform_.health().failures_detected(), 0u);

  sim_.run_for(sim::seconds(3));  // heartbeats re-arm forever; bound the run
  EXPECT_EQ(completed, kWrites);
  EXPECT_EQ(failed, 0);
  EXPECT_FALSE(dep.fenced()) << "backpressure misread as a failure";
  EXPECT_EQ(platform_.health().failures_detected(), 0u);
  EXPECT_EQ(platform_.health().status(dep.cookie(), 0), RelayHealth::kAlive);
  platform_.health().stop();
}

// ------------------------------------------- standby promotion (kStandby)

struct FailoverOutcome {
  std::string trace;        // FaultPlan event trace
  std::string telemetry;    // full registry JSON (spans included)
  std::string digest;       // sha256 of the final volume image
  int failed_writes = 0;
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t mttr_count = 0;
  std::int64_t mttr_ns = 0;
  std::int64_t detect_ns = 0;
  RelayHealth outcome = RelayHealth::kAlive;
  std::string first_error;
  // Journal-engine parity: the handoff must read the dead box's NVRAM
  // segments (a replay on its journal device) and seed the standby's own
  // journal device with the adopted records.
  std::uint64_t failed_journal_replays = 0;
  std::uint64_t standby_journal_seq = 0;
};

/// One full failover chaos run: active-relay chain with a warm standby,
/// sustained writes, middle-box power failure at a seeded instant. The
/// health manager must detect the death, promote the spare (journal
/// handoff + atomic rule swap) and restore the data path with zero
/// acknowledged-write loss.
FailoverOutcome run_failover(std::uint64_t seed) {
  sim::Simulator sim;
  cloud::Cloud cloud(sim, cloud::CloudConfig{});
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);
  sim::FaultPlan plan(sim, seed);

  cloud::Vm& vm = cloud.create_vm("vm", "t", 0);
  if (!cloud.create_volume("vol", 40'000).is_ok()) return {};
  ServiceSpec spec;
  spec.type = "noop";
  spec.relay = RelayMode::kActive;
  spec.recovery = RecoveryPolicyKind::kStandby;
  Status status = error(ErrorCode::kIoError, "unset");
  DeploymentHandle dep;
  platform.attach_with_chain("vm", "vol", {spec},
                             [&](Result<DeploymentHandle> r) {
                               status = r.status();
                               if (r.is_ok()) dep = r.value();
                             });
  sim.run();
  if (!status.is_ok() || !dep.valid()) return {};
  if (dep.standby_relay(0) == nullptr) return {};
  // Promotion destroys the failed box; remember its VM name now so we can
  // read its journal-engine telemetry after the run.
  const std::string failed_vm = dep.mb_vm(0)->name();
  dep.attachment()->initiator->set_recovery({.enabled = true});
  platform.health().start();

  constexpr int kWrites = 20;
  constexpr std::uint32_t kSectors = 16;  // 8 KB each, distinct LBAs
  FailoverOutcome out;
  int completed = 0;
  // Sustained writes, one every 2 ms; the relay dies at t=7ms — between
  // writes 3 and 4 — so acknowledged bursts sit in its journal and
  // in-flight ones span the failover window.
  for (int i = 0; i < kWrites; ++i) {
    sim.schedule_in(sim::milliseconds(2) * i, [&, i] {
      Bytes data = testutil::pattern_bytes(
          kSectors * block::kSectorSize, static_cast<std::uint8_t>(i + 1));
      vm.disk()->write(static_cast<std::uint64_t>(i) * kSectors,
                       std::move(data), [&](Status s) {
                         ++completed;
                         if (!s.is_ok()) {
                           ++out.failed_writes;
                           if (out.first_error.empty()) {
                             out.first_error = s.to_string();
                           }
                         }
                       });
    });
  }
  plan.schedule(sim.now() + sim::milliseconds(7), "kill mb0",
                [&] { (void)dep.crash_middlebox(0); });

  sim.run_for(sim::seconds(1));
  platform.health().stop();
  sim.run();

  if (completed != kWrites) out.failed_writes += kWrites - completed;
  out.trace = plan.trace_string();
  out.failures = platform.health().failures_detected();
  out.recoveries = platform.health().recoveries_completed();
  out.outcome = platform.health().last_outcome(dep.cookie());
  out.mttr_count = sim.telemetry().histogram("health.mttr_ns").count();
  out.mttr_ns = sim.telemetry().histogram("health.mttr_ns").max();
  out.detect_ns = sim.telemetry().histogram("health.detect_ns").max();
  out.failed_journal_replays =
      sim.telemetry()
          .counter("relay." + failed_vm + ".journal.replays")
          .value();
  // After promotion the standby occupies the primary slot.
  if (core::ActiveRelay* promoted = dep.active_relay(0)) {
    out.standby_journal_seq = promoted->journal_device().appended_seq();
  }
  out.telemetry = sim.telemetry().to_json(/*include_spans=*/true);

  auto volume = cloud.storage(0).volumes().find_by_name("vol");
  Bytes image =
      volume.value()->disk().store().read_sync(0, kWrites * kSectors);
  out.digest = crypto::digest_hex(crypto::sha256(image));
  return out;
}

TEST_F(HealthTest, StandbyPromotionPreservesEveryAcknowledgedWrite) {
  FailoverOutcome out = run_failover(0xF5);
  ASSERT_FALSE(out.digest.empty());

  // The failure was detected and recovered exactly once, via promotion.
  EXPECT_EQ(out.failures, 1u);
  EXPECT_EQ(out.recoveries, 1u);
  EXPECT_EQ(out.outcome, RelayHealth::kStandbyPromoted);

  // Engine parity: export_journal on the dead box replayed its NVRAM
  // segments (its volatile index died with it), and the standby's own
  // journal device carries the adopted session's records.
  EXPECT_GE(out.failed_journal_replays, 1u)
      << "handoff must scan the dead box's segments, not trust RAM";
  EXPECT_GT(out.standby_journal_seq, 0u)
      << "standby promotion journaled nothing";

  // Detection within the heartbeat deadline (miss_threshold intervals,
  // plus one probe of phase slack).
  core::HealthConfig defaults;
  const std::int64_t deadline =
      static_cast<std::int64_t>(defaults.heartbeat_interval) *
      (defaults.miss_threshold + 1);
  EXPECT_GT(out.detect_ns, 0);
  EXPECT_LE(out.detect_ns, deadline);
  EXPECT_EQ(out.mttr_count, 1u);
  EXPECT_GT(out.mttr_ns, out.detect_ns) << "MTTR includes detection";

  // Zero acknowledged-write loss: every write completed OK and the final
  // image is byte-identical to what the tenant wrote.
  EXPECT_EQ(out.failed_writes, 0) << out.first_error;
  Bytes expected;
  for (int i = 0; i < 20; ++i) {
    Bytes chunk = testutil::pattern_bytes(16 * block::kSectorSize,
                                          static_cast<std::uint8_t>(i + 1));
    expected.insert(expected.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(out.digest, crypto::digest_hex(crypto::sha256(expected)));
}

TEST_F(HealthTest, FailoverIsDeterministicIncludingMttr) {
  FailoverOutcome first = run_failover(0xF5);
  FailoverOutcome second = run_failover(0xF5);

  // Same seed -> same fault trace, same final image, and byte-identical
  // telemetry JSON — counters, histograms (MTTR included), spans and the
  // flight-recorder tail all agree to the nanosecond.
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.telemetry, second.telemetry);
  EXPECT_EQ(first.mttr_ns, second.mttr_ns);
  ASSERT_FALSE(first.telemetry.empty());
  EXPECT_NE(first.telemetry.find("health.mttr_ns"), std::string::npos);
}

// ------------------------------------------- scale-down monitor unhook

// Regression: parking a replica on scale-down must unregister its stall
// hook and drop it from liveness probing — chaos against the parked VM
// afterwards must neither fire callbacks into the retired relay nor
// count as a chain failure.
TEST_F(HealthTest, ScaleDownThenChaosNeverCallsIntoTheParkedReplica) {
  ServiceSpec spec = noop_spec(RelayMode::kActive,
                               RecoveryPolicyKind::kFence);
  spec.replicas.enabled = true;
  spec.replicas.count = 2;
  spec.replicas.min_count = 1;
  spec.replicas.max_count = 2;
  std::vector<cloud::Vm*> vms;
  std::vector<DeploymentHandle> deps;
  for (unsigned t = 0; t < 6; ++t) {
    vms.push_back(&cloud_.create_vm("vm" + std::to_string(t), "t", t % 4));
    ASSERT_TRUE(
        cloud_.create_volume("vol" + std::to_string(t), 20'000).is_ok());
    deps.push_back(deploy("vm" + std::to_string(t),
                          "vol" + std::to_string(t), {spec}));
  }
  cloud::Vm& vm = *vms[0];
  DeploymentHandle dep = deps[0];
  // Precondition for the regression: both replicas carry flows, so the
  // scale-down victim is a box some chain was monitoring.
  const core::ReplicaSet* pool = platform_.replica_set("t", "noop");
  ASSERT_NE(pool, nullptr);
  std::set<std::string> pinned;
  for (const auto& [cookie, label] : pool->assignments) pinned.insert(label);
  ASSERT_EQ(pinned.size(), 2u) << "flows must spread over both replicas";

  platform_.health().start();
  sim_.run_for(sim::milliseconds(20));
  EXPECT_EQ(platform_.health().monitored_chains(), 6u);
  const std::size_t hooked_before = platform_.health().hooked_stacks();
  ASSERT_GT(hooked_before, 0u);

  Status scale = error(ErrorCode::kIoError, "unset");
  platform_.scale_service_replicas("t", "noop", 1,
                                   [&](Status s) { scale = s; });
  sim_.run_for(sim::milliseconds(50));
  ASSERT_TRUE(scale.is_ok()) << scale.to_string();
  const core::ReplicaSet* set = platform_.replica_set("t", "noop");
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->parked.size(), 1u);
  EXPECT_LT(platform_.health().hooked_stacks(), hooked_before)
      << "the victim's stall hook must be unregistered when it parks";

  // Chaos on the parked box: power-cycle its VM across several probe
  // windows. A monitor that still referenced it would declare a failure
  // (or worse, call a stall hook into the dead relay).
  cloud::Vm* parked_vm = set->parked[0]->vm;
  parked_vm->node().set_down(false);
  sim_.run_for(2 * platform_.health().config().heartbeat_interval);
  parked_vm->node().set_down(true);
  sim_.run_for(5 * platform_.health().config().heartbeat_interval);
  EXPECT_EQ(platform_.health().failures_detected(), 0u);
  EXPECT_FALSE(dep.fenced());

  // The surviving replica still carries the flow.
  int state = 0;
  vm.disk()->write(0, Bytes(8 * block::kSectorSize, 0xEE),
                   [&](Status s) { state = s.is_ok() ? 1 : -1; });
  sim_.run_for(sim::milliseconds(20));
  EXPECT_EQ(state, 1);

  // Detach forgets the chain: it leaves the monitored set immediately.
  EXPECT_TRUE(dep.detach().is_ok());
  sim_.run_for(sim::milliseconds(20));
  EXPECT_EQ(platform_.health().monitored_chains(), 5u);
  EXPECT_EQ(platform_.health().failures_detected(), 0u);
  platform_.health().stop();
}

}  // namespace
}  // namespace storm
