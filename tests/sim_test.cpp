#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace storm::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, FifoTieBreakAtEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.at(1, [&] {
    ++fired;
    sim.after(9, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  sim.at(100, [] {});
  sim.run();
  int fired = 0;
  sim.at(5, [&] { ++fired; });  // in the past; must still run
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Time, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1000u);
  EXPECT_EQ(milliseconds(1), 1'000'000u);
  EXPECT_EQ(seconds(2), 2'000'000'000u);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(7)), 7.0);
}

TEST(Cpu, SingleCoreSerializesTasks) {
  Simulator sim;
  Cpu cpu(sim, "c", 1);
  std::vector<Time> done_at;
  cpu.run(100, [&] { done_at.push_back(sim.now()); });
  cpu.run(100, [&] { done_at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_EQ(done_at[0], 100u);
  EXPECT_EQ(done_at[1], 200u);  // queued behind the first
  EXPECT_EQ(cpu.busy_time(), 200u);
}

TEST(Cpu, MultiCoreRunsInParallel) {
  Simulator sim;
  Cpu cpu(sim, "c", 2);
  std::vector<Time> done_at;
  cpu.run(100, [&] { done_at.push_back(sim.now()); });
  cpu.run(100, [&] { done_at.push_back(sim.now()); });
  cpu.run(100, [&] { done_at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done_at.size(), 3u);
  EXPECT_EQ(done_at[0], 100u);
  EXPECT_EQ(done_at[1], 100u);
  EXPECT_EQ(done_at[2], 200u);
}

TEST(Cpu, BusyTimeAccumulates) {
  Simulator sim;
  Cpu cpu(sim, "c", 4);
  cpu.burn(50);
  cpu.burn(70);
  sim.run();
  EXPECT_EQ(cpu.busy_time(), 120u);
}

// sim::Stats was folded into obs::Histogram (one percentile
// implementation for workloads, benches and telemetry alike); these
// tests pin the behaviours the workload layer relies on.
TEST(Histogram, MeanMinMax) {
  obs::Histogram h;
  h.record(1);
  h.record(2);
  h.record(3);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 3);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, Percentiles) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  // HDR buckets are exact below 64 and within ~1.6% above.
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 2.0);
}

TEST(Histogram, PercentileRejectsOutOfRange) {
  obs::Histogram h;
  h.record(1);
  EXPECT_THROW(h.percentile(-1), std::invalid_argument);
  EXPECT_THROW(h.percentile(101), std::invalid_argument);
}

TEST(Histogram, ClearResets) {
  obs::Histogram h;
  h.record(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

}  // namespace
}  // namespace storm::sim
