#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace storm::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, FifoTieBreakAtEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1, [&] {
    ++fired;
    sim.schedule_in(9, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  sim.schedule(100, [] {});
  sim.run();
  int fired = 0;
  sim.schedule(5, [&] { ++fired; });  // in the past; must still run
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Time, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1000u);
  EXPECT_EQ(milliseconds(1), 1'000'000u);
  EXPECT_EQ(seconds(2), 2'000'000'000u);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(7)), 7.0);
}

// --- the redesigned scheduling surface ---

TEST(ExecutorApi, ScheduleReturnsWorkingCancelToken) {
  Simulator sim;
  int fired = 0;
  Executor exec = sim.executor();
  CancelToken keep = exec.schedule(10, [&] { ++fired; });
  CancelToken drop = exec.schedule(20, [&] { ++fired; });
  EXPECT_TRUE(keep.armed());
  EXPECT_TRUE(drop.armed());
  drop.cancel();
  EXPECT_FALSE(drop.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(keep.armed());  // fired tokens read as disarmed
  EXPECT_EQ(sim.now(), 10u);   // cancelled tail never advanced the clock
}

TEST(ExecutorApi, ScheduleInZeroPostsToEndOfCurrentTick) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(5, [&] {
    order.push_back(1);
    sim.schedule_in(0, [&] { order.push_back(3); });
    order.push_back(2);
  });
  sim.schedule(5, [&] { order.push_back(10); });
  sim.run();
  // The posted callback runs at t=5 but after everything already queued.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 10, 3}));
  EXPECT_EQ(sim.now(), 5u);
}

TEST(ExecutorApi, ImplicitConversionFromSimulatorIsPartitionZero) {
  Simulator sim;
  Executor exec = sim;  // the migration path for Simulator&-taking ctors
  EXPECT_TRUE(exec.valid());
  EXPECT_EQ(exec.partition_id(), 0u);
  EXPECT_EQ(&exec.simulator(), &sim);
  int fired = 0;
  exec.schedule_in(7, [&] { fired = 1; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(exec.now(), 7u);
}

TEST(ExecutorApi, ScheduleSurfaceCoversTheOldShims) {
  // The deprecated at/after/post shims are gone; the two-call Executor
  // surface expresses every pattern they covered.
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10, [&] { order.push_back(1); });
  CancelToken a = sim.schedule(20, [&] { order.push_back(2); });
  sim.schedule_in(30, [&] { order.push_back(3); });
  CancelToken b = sim.schedule_in(40, [&] { order.push_back(4); });
  sim.schedule_in(0, [&] { order.push_back(0); });
  b.cancel();
  EXPECT_TRUE(a.armed());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// --- generation-counted cancel slots ---

TEST(CancelSlot, StaleTokenAfterSlotReuseIsHarmless) {
  Simulator sim;
  int first = 0;
  int second = 0;
  CancelToken stale = sim.schedule(10, [&] { ++first; });
  stale.cancel();  // slot goes back to the pool
  // The very next schedule reuses the recycled slot under a new
  // generation; the stale token must not be able to touch it.
  CancelToken fresh = sim.schedule(20, [&] { ++second; });
  EXPECT_FALSE(stale.armed());
  EXPECT_TRUE(fresh.armed());
  stale.cancel();  // double-cancel of a dead token: no-op
  sim.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(CancelSlot, TokensRecycleWithoutGrowingThePool) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10'000; ++i) {
    CancelToken t = sim.schedule(static_cast<Time>(i + 1), [&] { ++fired; });
    if (i % 2 == 0) t.cancel();
    sim.run();
  }
  EXPECT_EQ(fired, 5'000);
}

TEST(CancelSlot, CancelAfterMigrationAcrossPartitions) {
  // A cross-partition event can be cancelled after it has already been
  // drained into the destination's queue: the generation CAS on the
  // sender-homed slot wins, and the destination discards the dead event.
  ParallelConfig config;
  config.partitions = 2;
  config.threads = 2;
  config.lookahead = 100;
  Simulator sim(config);
  int fired = 0;
  CancelToken t;
  sim.executor(0).schedule(5, [&] {
    t = sim.executor(1).schedule(500, [&] { ++fired; });
  });
  // t=250 is past the first barrier, so the mail has migrated into
  // partition 1's queue — and still 250ns before it would fire.
  sim.executor(0).schedule(250, [&] {
    EXPECT_TRUE(t.armed());
    t.cancel();
    EXPECT_FALSE(t.armed());
  });
  // Keep partition 1 busy past the would-be firing time.
  sim.executor(1).schedule(600, [&] {});
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.lookahead_violations(), 0u);
}

// --- partitioned execution ---

TEST(Partition, CrossPartitionEventsArriveAtTheirTimestamp) {
  ParallelConfig config;
  config.partitions = 2;
  config.threads = 1;
  config.lookahead = microseconds(10);
  Simulator sim(config);
  Executor p0 = sim.executor(0);
  Executor p1 = sim.executor(1);
  Time fired_at = 0;
  const Time send_at = microseconds(3);
  const Time arrive_at = microseconds(17);
  p0.schedule(send_at, [&, p1]() mutable {
    p1.schedule(arrive_at, [&] { fired_at = sim.executor(1).now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, arrive_at);
  EXPECT_EQ(sim.lookahead_violations(), 0u);
}

TEST(Partition, IdlePartitionDoesNotOutrunTheWindow) {
  // Regression: an empty-queue partition must advance in lockstep with
  // the global lookahead window, not jump to the caller's deadline —
  // otherwise a cross-partition event landing later would be in its past.
  ParallelConfig config;
  config.partitions = 2;
  config.threads = 1;
  config.lookahead = microseconds(10);
  Simulator sim(config);
  Time observed_now = kNever;
  const Time arrive_at = microseconds(25);
  sim.executor(0).schedule(microseconds(2), [&] {
    sim.executor(1).schedule(arrive_at,
                             [&] { observed_now = sim.executor(1).now(); });
  });
  // Partition 1 is idle until the mail lands. A distant deadline must
  // not have dragged its clock past the arrival time.
  sim.run_until(seconds(1));
  EXPECT_EQ(observed_now, arrive_at);
  EXPECT_EQ(sim.lookahead_violations(), 0u);
  EXPECT_EQ(sim.now(), seconds(1));
}

TEST(Partition, SameTimestampMailOrdersBySourcePartitionThenSeq) {
  // Three partitions all mail partition 0 for the same timestamp; the
  // merge rule (when, src_partition, src_seq) fixes the execution order
  // regardless of scheduling order here.
  ParallelConfig config;
  config.partitions = 4;
  config.threads = 1;
  config.lookahead = microseconds(10);
  Simulator sim(config);
  std::vector<int> order;
  const Time t0 = microseconds(1);
  const Time when = microseconds(15);
  // Schedule the senders in reverse partition order to prove the merge
  // ignores arrival order.
  for (int src = 3; src >= 1; --src) {
    sim.executor(static_cast<std::uint32_t>(src)).schedule(t0, [&, src] {
      Executor dest = sim.executor(0);
      dest.schedule(when, [&, src] { order.push_back(src * 10); });
      dest.schedule(when, [&, src] { order.push_back(src * 10 + 1); });
    });
  }
  sim.run();
  // src 1's two sends (in its send order), then src 2's, then src 3's.
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 30, 31}));
}

TEST(Partition, LocalFifoStillHoldsAcrossTheMailboxBoundary) {
  // A destination-local event and a same-timestamp mailbox event: the
  // local one was enqueued in an earlier window, so it runs first.
  ParallelConfig config;
  config.partitions = 2;
  config.threads = 1;
  config.lookahead = microseconds(10);
  Simulator sim(config);
  std::vector<std::string> order;
  const Time when = microseconds(15);
  sim.executor(0).schedule(when, [&] { order.push_back("local"); });
  sim.executor(1).schedule(microseconds(1), [&] {
    sim.executor(0).schedule(when, [&] { order.push_back("mail"); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"local", "mail"}));
}

TEST(Partition, LookaheadViolationsAreClampedAndCounted) {
  ParallelConfig config;
  config.partitions = 2;
  config.threads = 1;
  config.lookahead = microseconds(10);
  Simulator sim(config);
  Time fired_at = 0;
  sim.executor(0).schedule(microseconds(5), [&] {
    // One nanosecond ahead: far inside the lookahead window. The mail
    // arrives after the destination's window already passed that time;
    // it must clamp (time never regresses) and be counted.
    sim.executor(1).schedule(microseconds(5) + 1,
                             [&] { fired_at = sim.executor(1).now(); });
  });
  sim.run();
  EXPECT_GE(fired_at, microseconds(5) + 1);
  EXPECT_EQ(sim.lookahead_violations(), 1u);
}

TEST(Partition, RunCountsEventsAcrossAllPartitions) {
  ParallelConfig config;
  config.partitions = 3;
  config.threads = 1;
  Simulator sim(config);
  for (std::uint32_t p = 0; p < 3; ++p) {
    for (int i = 0; i < 5; ++i) {
      sim.executor(p).schedule(static_cast<Time>(i * 100), [] {});
    }
  }
  EXPECT_EQ(sim.pending(), 15u);
  EXPECT_FALSE(sim.empty());
  EXPECT_EQ(sim.run(), 15u);
  EXPECT_TRUE(sim.empty());
}

// --- determinism across thread counts ---

// One seeded multi-partition scenario: per-partition actors burn
// counters/histograms, record flight-recorder events, and mail random
// partitions one lookahead (plus jitter) ahead. Returns the merged
// telemetry dump — the byte-identity probe.
std::string run_seeded_scenario(std::uint64_t seed, std::uint32_t threads) {
  ParallelConfig config;
  config.partitions = 4;
  config.threads = threads;
  config.lookahead = microseconds(10);
  Simulator sim(config);

  struct Actor {
    Rng rng;
    int budget = 40;
  };
  auto actors = std::make_shared<std::vector<Actor>>();
  for (std::uint32_t p = 0; p < 4; ++p) {
    actors->push_back(Actor{Rng(seed * 1000003u + p), 40});
  }

  // step(p) runs inside partition p, does seeded work, then either
  // reschedules locally or mails a random partition ahead of the window.
  auto step = std::make_shared<std::function<void(std::uint32_t)>>();
  *step = [&sim, actors, step](std::uint32_t p) {
    Actor& actor = (*actors)[p];
    Executor self = sim.executor(p);
    obs::Registry& reg = self.telemetry();
    reg.counter("test.steps").add();
    reg.histogram("test.draw").record(
        static_cast<std::int64_t>(actor.rng.below(1000)));
    if (actor.rng.chance(0.25)) {
      reg.record_event("p" + std::to_string(p) + " step");
    }
    if (--actor.budget <= 0) return;
    const auto target =
        static_cast<std::uint32_t>(actor.rng.below(4));
    const Duration jitter = actor.rng.between(0, microseconds(5));
    if (target == p) {
      self.schedule_in(1 + jitter, [step, p] { (*step)(p); });
    } else {
      // Cross-partition: at least one full lookahead ahead.
      sim.executor(target).schedule_in(
          microseconds(10) + jitter, [step, target] { (*step)(target); });
    }
  };
  for (std::uint32_t p = 0; p < 4; ++p) {
    sim.executor(p).schedule(microseconds(1) * (p + 1),
                             [step, p] { (*step)(p); });
  }
  sim.run();
  EXPECT_EQ(sim.lookahead_violations(), 0u);
  return sim.telemetry_json(/*include_spans=*/true);
}

TEST(ParallelDeterminism, SeededRunsAreByteIdenticalAtAnyThreadCount) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const std::string one = run_seeded_scenario(seed, 1);
    const std::string four = run_seeded_scenario(seed, 4);
    const std::string eight = run_seeded_scenario(seed, 8);
    ASSERT_EQ(one, four) << "seed " << seed << ": 1-thread vs 4-thread";
    ASSERT_EQ(one, eight) << "seed " << seed << ": 1-thread vs 8-thread";
  }
}

TEST(ParallelDeterminism, DistinctSeedsProduceDistinctTelemetry) {
  // Guard against the scenario degenerating into seed-independent output
  // (which would make the identity assertion above vacuous).
  std::set<std::string> dumps;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    dumps.insert(run_seeded_scenario(seed, 4));
  }
  EXPECT_EQ(dumps.size(), 5u);
}

TEST(ParallelDeterminism, MergedTelemetryMatchesSinglePartitionShape) {
  // merged_json must emit the same JSON shape as the classic to_json so
  // downstream tooling doesn't care how many partitions produced it.
  Simulator sim;
  sim.telemetry().counter("x").add(3);
  const std::string single = sim.telemetry().to_json();
  const std::string merged = sim.telemetry_json();
  EXPECT_EQ(single, merged);
}

TEST(Cpu, SingleCoreSerializesTasks) {
  Simulator sim;
  Cpu cpu(sim, "c", 1);
  std::vector<Time> done_at;
  cpu.run(100, [&] { done_at.push_back(sim.now()); });
  cpu.run(100, [&] { done_at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_EQ(done_at[0], 100u);
  EXPECT_EQ(done_at[1], 200u);  // queued behind the first
  EXPECT_EQ(cpu.busy_time(), 200u);
}

TEST(Cpu, MultiCoreRunsInParallel) {
  Simulator sim;
  Cpu cpu(sim, "c", 2);
  std::vector<Time> done_at;
  cpu.run(100, [&] { done_at.push_back(sim.now()); });
  cpu.run(100, [&] { done_at.push_back(sim.now()); });
  cpu.run(100, [&] { done_at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done_at.size(), 3u);
  EXPECT_EQ(done_at[0], 100u);
  EXPECT_EQ(done_at[1], 100u);
  EXPECT_EQ(done_at[2], 200u);
}

TEST(Cpu, BusyTimeAccumulates) {
  Simulator sim;
  Cpu cpu(sim, "c", 4);
  cpu.burn(50);
  cpu.burn(70);
  sim.run();
  EXPECT_EQ(cpu.busy_time(), 120u);
}

// sim::Stats was folded into obs::Histogram (one percentile
// implementation for workloads, benches and telemetry alike); these
// tests pin the behaviours the workload layer relies on.
TEST(Histogram, MeanMinMax) {
  obs::Histogram h;
  h.record(1);
  h.record(2);
  h.record(3);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 3);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, Percentiles) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  // HDR buckets are exact below 64 and within ~1.6% above.
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 2.0);
}

TEST(Histogram, PercentileRejectsOutOfRange) {
  obs::Histogram h;
  h.record(1);
  EXPECT_THROW(h.percentile(-1), std::invalid_argument);
  EXPECT_THROW(h.percentile(101), std::invalid_argument);
}

TEST(Histogram, ClearResets) {
  obs::Histogram h;
  h.record(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, MergeMatchesRecordingOneStream) {
  obs::Histogram a;
  obs::Histogram b;
  obs::Histogram combined;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<std::int64_t>(rng.below(100'000));
    ((i % 2 == 0) ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), combined.percentile(p));
  }
}

}  // namespace
}  // namespace storm::sim
