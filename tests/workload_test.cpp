#include <gtest/gtest.h>

#include "block/sim_disk.hpp"
#include "cloud/cloud.hpp"
#include "fs/simext.hpp"
#include "workload/fio.hpp"
#include "workload/ftp.hpp"
#include "workload/minidb.hpp"
#include "workload/postmark.hpp"
#include "testutil.hpp"

namespace storm::workload {
namespace {

// --- fio ---------------------------------------------------------------------

TEST(Fio, ReportsRatesForLocalDisk) {
  sim::Simulator sim;
  block::SimDisk disk(sim, 100'000);
  FioConfig config;
  config.request_bytes = 4096;
  config.jobs = 2;
  config.duration = sim::seconds(2);
  FioRunner fio(sim, disk, config);
  FioResult result;
  bool done = false;
  fio.start([&](FioResult r) {
    result = r;
    done = true;
  });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_GT(result.total_ops, 100u);
  EXPECT_GT(result.iops, 0.0);
  EXPECT_GT(result.mean_latency_ms, 0.0);
  EXPECT_GE(result.p99_latency_ms, result.mean_latency_ms - 1e-9);
  // 50/50 mix within generous bounds.
  double write_frac = static_cast<double>(result.write_ops) /
                      static_cast<double>(result.read_ops + result.write_ops);
  EXPECT_NEAR(write_frac, 0.5, 0.1);
}

TEST(Fio, MoreJobsMoreThroughputOnParallelDisk) {
  auto run_jobs = [](unsigned jobs) {
    sim::Simulator sim;
    block::DiskProfile profile;
    profile.queue_depth = 16;
    block::SimDisk disk(sim, 100'000, profile);
    FioConfig config;
    config.jobs = jobs;
    config.duration = sim::seconds(1);
    FioRunner fio(sim, disk, config);
    double iops = 0;
    fio.start([&](FioResult r) { iops = r.iops; });
    sim.run();
    return iops;
  };
  EXPECT_GT(run_jobs(8), run_jobs(1) * 3);
}

TEST(Fio, LargerRequestsLowerIopsHigherBandwidth) {
  auto run_size = [](std::uint32_t bytes) {
    sim::Simulator sim;
    block::SimDisk disk(sim, 1'000'000);
    FioConfig config;
    config.request_bytes = bytes;
    config.duration = sim::seconds(1);
    FioRunner fio(sim, disk, config);
    FioResult result;
    fio.start([&](FioResult r) { result = r; });
    sim.run();
    return result;
  };
  FioResult small = run_size(4096);
  FioResult big = run_size(256 * 1024);
  EXPECT_GT(small.iops, big.iops);
  EXPECT_GT(big.throughput_mb_s, small.throughput_mb_s);
}

// --- postmark ------------------------------------------------------------------

TEST(Postmark, RunsTransactionMixOverSimExt) {
  sim::Simulator sim;
  block::MemDisk raw(262'144);
  ASSERT_TRUE(fs::SimExt::mkfs(raw).is_ok());
  block::SimDisk disk(sim, 262'144);
  // Copy formatted image into the latency-modeled disk.
  disk.store().write_sync(0, raw.read_sync(0, 262'144));
  fs::SimExt fs(sim, disk);
  fs.mount([](Status s) { ASSERT_TRUE(s.is_ok()); });
  sim.run();

  PostmarkConfig config;
  config.initial_files = 40;
  config.transactions = 200;
  PostmarkRunner postmark(sim, fs, config);
  PostmarkResult result;
  bool done = false;
  postmark.run([&](PostmarkResult r) {
    result = r;
    done = true;
  });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.read_ops_per_s, 0.0);
  EXPECT_GT(result.append_ops_per_s, 0.0);
  EXPECT_GT(result.create_ops_per_s, 0.0);
  EXPECT_GT(result.delete_ops_per_s, 0.0);
  EXPECT_GT(result.read_mb_per_s, 0.0);
  EXPECT_GT(result.write_mb_per_s, 0.0);
}

// --- ftp ------------------------------------------------------------------------

class FtpTest : public ::testing::Test {
 protected:
  FtpTest() : cloud_(sim_, cloud::CloudConfig{}) {}

  void setup() {
    server_vm_ = &cloud_.create_vm("ftp-server", "alice", 0);
    client_vm_ = &cloud_.create_vm("ftp-client", "alice", 1);
    auto volume = cloud_.create_volume("vol1", 262'144);
    ASSERT_TRUE(volume.is_ok());
    ASSERT_TRUE(fs::SimExt::mkfs(volume.value()->disk().store()).is_ok());
    Status status = error(ErrorCode::kIoError, "unset");
    cloud_.attach_volume(*server_vm_, "vol1",
                         [&](Status s, cloud::Attachment) { status = s; });
    sim_.run();
    ASSERT_TRUE(status.is_ok());
    fs_ = std::make_unique<fs::SimExt>(sim_, *server_vm_->disk());
    fs_->mount([](Status s) { ASSERT_TRUE(s.is_ok()); });
    sim_.run();
    server_ = std::make_unique<FtpServer>(*server_vm_, *fs_);
    server_->start();
    client_ = std::make_unique<FtpClient>(
        *client_vm_, net::SocketAddr{server_vm_->ip(), 2121});
  }

  sim::Simulator sim_;
  cloud::Cloud cloud_;
  cloud::Vm* server_vm_ = nullptr;
  cloud::Vm* client_vm_ = nullptr;
  std::unique_ptr<fs::SimExt> fs_;
  std::unique_ptr<FtpServer> server_;
  std::unique_ptr<FtpClient> client_;
};

TEST_F(FtpTest, UploadThenDownloadRoundTrips) {
  setup();
  constexpr std::uint64_t kSize = 8 * 1024 * 1024;
  FtpTransferResult up;
  bool up_done = false;
  client_->upload("big.bin", kSize, [&](FtpTransferResult r) {
    up = r;
    up_done = true;
  });
  sim_.run();
  ASSERT_TRUE(up_done);
  EXPECT_TRUE(up.status.is_ok());
  EXPECT_GT(up.mb_per_s, 1.0);
  EXPECT_EQ(server_->bytes_stored(), kSize);

  FtpTransferResult down;
  bool down_done = false;
  client_->download("big.bin", [&](FtpTransferResult r) {
    down = r;
    down_done = true;
  });
  sim_.run();
  ASSERT_TRUE(down_done);
  EXPECT_EQ(down.bytes, kSize);
  EXPECT_GT(down.mb_per_s, 1.0);
}

// --- minidb -----------------------------------------------------------------------

TEST(MiniDb, TransactionsCommitAndTouchDisk) {
  sim::Simulator sim;
  block::SimDisk disk(sim, 40'000);
  MiniDb db(sim, disk);
  bool ready = false;
  db.init([&](Status s) {
    ASSERT_TRUE(s.is_ok());
    ready = true;
  });
  sim.run();
  ASSERT_TRUE(ready);

  Rng rng(1);
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    db.transaction(rng, [&](Status s) {
      ASSERT_TRUE(s.is_ok());
      ++completed;
    });
  }
  sim.run();
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(db.committed(), 50u);
  EXPECT_GT(disk.writes(), 100u);  // WAL + data pages
  EXPECT_GT(disk.reads(), 100u);
}

TEST(MiniDb, OltpClientsDriveServerOverNetwork) {
  sim::Simulator sim;
  cloud::Cloud cloud(sim, cloud::CloudConfig{});
  cloud::Vm& db_vm = cloud.create_vm("db", "alice", 0);
  ASSERT_TRUE(cloud.create_volume("dbvol", 40'000).is_ok());
  Status status = error(ErrorCode::kIoError, "unset");
  cloud.attach_volume(db_vm, "dbvol",
                      [&](Status s, cloud::Attachment) { status = s; });
  sim.run();
  ASSERT_TRUE(status.is_ok());

  MiniDb db(sim, *db_vm.disk());
  db.init([](Status s) { ASSERT_TRUE(s.is_ok()); });
  sim.run();
  DbServer server(db_vm, db);
  server.start();

  cloud::Vm& c1 = cloud.create_vm("c1", "alice", 1);
  cloud::Vm& c2 = cloud.create_vm("c2", "alice", 2);
  OltpClient client1(c1, net::SocketAddr{db_vm.ip(), 3306}, 3);
  OltpClient client2(c2, net::SocketAddr{db_vm.ip(), 3306}, 3);
  int drained = 0;
  client1.start(sim.now() + sim::seconds(3), [&] { ++drained; });
  client2.start(sim.now() + sim::seconds(3), [&] { ++drained; });
  sim.run();
  EXPECT_EQ(drained, 2);
  EXPECT_GT(client1.total_commits(), 10u);
  EXPECT_GT(client2.total_commits(), 10u);
  EXPECT_EQ(client1.total_commits() + client2.total_commits(),
            server.requests_served());
  EXPECT_FALSE(client1.per_second_commits().empty());
}

}  // namespace
}  // namespace storm::workload
