#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "crypto/sha256.hpp"
#include "fs/simext.hpp"
#include "services/encrypted_disk.hpp"
#include "services/encryption.hpp"
#include "services/monitor.hpp"
#include "services/registry.hpp"
#include "services/replication.hpp"
#include "services/stream_cipher.hpp"
#include "testutil.hpp"

namespace storm::services {
namespace {

using core::DeploymentHandle;
using core::RelayMode;
using core::ServiceSpec;

class ServicesTest : public ::testing::Test {
 protected:
  ServicesTest() : cloud_(sim_, cloud::CloudConfig{}), platform_(cloud_) {
    register_builtin_services(platform_);
  }

  DeploymentHandle deploy(const std::string& vm, const std::string& volume,
                          std::vector<ServiceSpec> chain) {
    Status status = error(ErrorCode::kIoError, "unset");
    DeploymentHandle deployment;
    platform_.attach_with_chain(vm, volume, std::move(chain),
                                [&](Result<DeploymentHandle> r) {
                                  status = r.status();
                                  if (r.is_ok()) deployment = r.value();
                                });
    sim_.run();
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return deployment;
  }

  void write_disk(block::BlockDevice* disk, std::uint64_t lba,
                  const Bytes& data) {
    bool ok = false;
    disk->write(lba, data, [&](Status s) {
      ASSERT_TRUE(s.is_ok()) << s.to_string();
      ok = true;
    });
    sim_.run();
    ASSERT_TRUE(ok);
  }

  Bytes read_disk(block::BlockDevice* disk, std::uint64_t lba,
                  std::uint32_t sectors) {
    Bytes got;
    bool ok = false;
    disk->read(lba, sectors, [&](Status s, Bytes d) {
      ASSERT_TRUE(s.is_ok()) << s.to_string();
      got = std::move(d);
      ok = true;
    });
    sim_.run();
    EXPECT_TRUE(ok);
    return got;
  }

  sim::Simulator sim_;
  cloud::Cloud cloud_;
  core::StormPlatform platform_;
};

// --- encryption -----------------------------------------------------------------

TEST_F(ServicesTest, EncryptionMiddleboxProtectsDataAtRest) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec spec;
  spec.type = "encryption";
  spec.relay = RelayMode::kActive;
  DeploymentHandle dep = deploy("vm1", "vol1", {spec});
  ASSERT_TRUE(dep.valid());

  Bytes plaintext = testutil::pattern_bytes(64 * block::kSectorSize);
  write_disk(vm.disk(), 100, plaintext);

  // On the storage backend: ciphertext only.
  auto volume = cloud_.storage(0).volumes().find_by_name("vol1");
  Bytes on_disk = volume.value()->disk().store().read_sync(100, 64);
  EXPECT_NE(on_disk, plaintext);
  // No 512-byte sector of plaintext survives.
  for (std::size_t off = 0; off + 512 <= plaintext.size(); off += 512) {
    EXPECT_NE(Bytes(on_disk.begin() + off, on_disk.begin() + off + 512),
              Bytes(plaintext.begin() + off, plaintext.begin() + off + 512));
  }

  // The tenant reads its plaintext back, transparently.
  EXPECT_EQ(read_disk(vm.disk(), 100, 64), plaintext);

  auto* service = static_cast<EncryptionService*>(dep.service(0));
  EXPECT_EQ(service->bytes_encrypted(), plaintext.size());
  EXPECT_EQ(service->bytes_decrypted(), plaintext.size());
}

TEST_F(ServicesTest, EncryptionIsDeterministicPerSector) {
  // Same key + same sector => same ciphertext; different sector differs
  // (XTS tweak), across two separate deployments sharing the key.
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec spec;
  spec.type = "encryption";
  spec.params["key"] = std::string(128, 'a');  // 64 bytes of 0xaa
  deploy("vm1", "vol1", {spec});

  Bytes sector(block::kSectorSize, 0x77);
  write_disk(vm.disk(), 10, sector);
  write_disk(vm.disk(), 11, sector);
  auto volume = cloud_.storage(0).volumes().find_by_name("vol1");
  Bytes c10 = volume.value()->disk().store().read_sync(10, 1);
  Bytes c11 = volume.value()->disk().store().read_sync(11, 1);
  EXPECT_NE(c10, c11) << "XTS tweak must differ per sector";
  EXPECT_NE(c10, sector);
}

TEST_F(ServicesTest, TenantSideEncryptedDiskBaselineMatches) {
  // The tenant-side dm-crypt baseline round-trips too, burning VM CPU.
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  Status status = error(ErrorCode::kIoError, "unset");
  cloud_.attach_volume(vm, "vol1",
                       [&](Status s, cloud::Attachment) { status = s; });
  sim_.run();
  ASSERT_TRUE(status.is_ok());

  EncryptedDisk disk(*vm.disk(), vm.cpu(), Bytes(64, 0x24));
  sim::Duration cpu_before = vm.cpu().busy_time();
  Bytes data = testutil::pattern_bytes(16 * block::kSectorSize);
  write_disk(&disk, 0, data);
  EXPECT_EQ(read_disk(&disk, 0, 16), data);
  EXPECT_GT(vm.cpu().busy_time(), cpu_before)
      << "tenant-side cipher must burn tenant vCPU";

  auto volume = cloud_.storage(0).volumes().find_by_name("vol1");
  EXPECT_NE(volume.value()->disk().store().read_sync(0, 16), data);
}

// --- stream cipher ---------------------------------------------------------------

TEST_F(ServicesTest, StreamCipherRoundTripsRandomAccess) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec spec;
  spec.type = "stream_cipher";
  spec.relay = RelayMode::kActive;
  DeploymentHandle dep = deploy("vm1", "vol1", {spec});

  // Write two regions, read them back in a different order, partially.
  Bytes a = testutil::pattern_bytes(8 * block::kSectorSize, 1);
  Bytes b = testutil::pattern_bytes(4 * block::kSectorSize, 2);
  write_disk(vm.disk(), 0, a);
  write_disk(vm.disk(), 1000, b);
  EXPECT_EQ(read_disk(vm.disk(), 1000, 4), b);
  EXPECT_EQ(read_disk(vm.disk(), 0, 8), a);
  // Partial re-read of the middle of region a.
  EXPECT_EQ(read_disk(vm.disk(), 2, 3),
            Bytes(a.begin() + 2 * 512, a.begin() + 5 * 512));

  auto volume = cloud_.storage(0).volumes().find_by_name("vol1");
  EXPECT_NE(volume.value()->disk().store().read_sync(0, 8), a);
  auto* service = static_cast<StreamCipherService*>(dep.service(0));
  EXPECT_GT(service->bytes_processed(), 0u);
}

TEST_F(ServicesTest, StreamCipherWorksUnderPassiveRelay) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec spec;
  spec.type = "stream_cipher";
  spec.relay = RelayMode::kPassive;
  deploy("vm1", "vol1", {spec});
  Bytes data = testutil::pattern_bytes(16 * block::kSectorSize);
  write_disk(vm.disk(), 50, data);
  EXPECT_EQ(read_disk(vm.disk(), 50, 16), data);
  auto volume = cloud_.storage(0).volumes().find_by_name("vol1");
  EXPECT_NE(volume.value()->disk().store().read_sync(50, 16), data);
}

// --- monitor ---------------------------------------------------------------------

class MonitorFixture : public ServicesTest {
 protected:
  /// Format a volume, mount it through the spliced+monitored path, and
  /// return the filesystem handle.
  void setup() {
    vm_ = &cloud_.create_vm("vm1", "alice", 0);
    auto volume = cloud_.create_volume("vol1", 262'144);  // 128 MB
    ASSERT_TRUE(volume.is_ok());
    ASSERT_TRUE(fs::SimExt::mkfs(volume.value()->disk().store()).is_ok());

    ServiceSpec spec;
    spec.type = "monitor";
    spec.relay = RelayMode::kActive;
    spec.params["watch"] = "/box/secret.txt";
    dep_ = deploy("vm1", "vol1", {spec});
    ASSERT_TRUE(dep_.valid());
    monitor_ = static_cast<MonitorService*>(dep_.service(0));

    fs_ = std::make_unique<fs::SimExt>(sim_, *vm_->disk());
    bool mounted = false;
    fs_->mount([&](Status s) {
      ASSERT_TRUE(s.is_ok()) << s.to_string();
      mounted = true;
    });
    sim_.run();
    ASSERT_TRUE(mounted);
  }

  Status fs_op(std::function<void(fs::SimExt::DoneCb)> op) {
    Status status = error(ErrorCode::kIoError, "unset");
    op([&](Status s) { status = s; });
    sim_.run();
    return status;
  }

  bool monitor_logged(core::FileOp::Kind kind, const std::string& path) {
    for (const auto& entry : monitor_->log()) {
      if (entry.op.kind == kind && entry.op.path == path) return true;
    }
    return false;
  }

  cloud::Vm* vm_ = nullptr;
  DeploymentHandle dep_;
  MonitorService* monitor_ = nullptr;
  std::unique_ptr<fs::SimExt> fs_;
};

TEST_F(MonitorFixture, ReconstructsFileOpsFromBlockTraffic) {
  setup();
  ASSERT_TRUE(fs_op([&](auto cb) { fs_->mkdir("/box", cb); }).is_ok());
  ASSERT_TRUE(fs_op([&](auto cb) { fs_->create("/box/7.img", cb); }).is_ok());
  ASSERT_TRUE(fs_op([&](auto cb) {
    fs_->write_file("/box/7.img", 0, Bytes(16'384, 0xAB), cb);
  }).is_ok());

  EXPECT_TRUE(monitor_logged(core::FileOp::Kind::kWrite, "/box/7.img"))
      << "the monitor middle-box must reconstruct the file write";
  EXPECT_TRUE(monitor_logged(core::FileOp::Kind::kMetaWrite,
                             "META: inode_group_0"));
  EXPECT_TRUE(monitor_logged(core::FileOp::Kind::kWrite, "/box/."));

  // Cold read (paper Table I): dir + inode metadata reads appear.
  fs_->drop_caches();
  ASSERT_TRUE(fs_op([&](auto cb) {
    fs_->read_file("/box/7.img", 0, 16'384,
                   [cb](Status s, Bytes) { cb(s); });
  }).is_ok());
  EXPECT_TRUE(monitor_logged(core::FileOp::Kind::kRead, "/box/7.img"));
  EXPECT_TRUE(monitor_logged(core::FileOp::Kind::kRead, "/box/."));
  EXPECT_TRUE(monitor_logged(core::FileOp::Kind::kMetaRead,
                             "META: inode_group_0"));
}

TEST_F(MonitorFixture, AlertsOnWatchedPathEvenIfVmCompromised) {
  setup();
  ASSERT_TRUE(fs_op([&](auto cb) { fs_->mkdir("/box", cb); }).is_ok());
  ASSERT_TRUE(
      fs_op([&](auto cb) { fs_->create("/box/secret.txt", cb); }).is_ok());
  ASSERT_TRUE(fs_op([&](auto cb) {
    fs_->write_file("/box/secret.txt", 0, to_bytes("classified"), cb);
  }).is_ok());
  EXPECT_TRUE(monitor_->alerts().empty() == false)
      << "write to a watched file must raise an alert";
  std::size_t alerts_after_write = monitor_->alerts().size();

  // "Malware" in the VM reads the sensitive file: logged out-of-VM.
  fs_->drop_caches();
  ASSERT_TRUE(fs_op([&](auto cb) {
    fs_->read_file("/box/secret.txt", 0, 4096,
                   [cb](Status s, Bytes) { cb(s); });
  }).is_ok());
  EXPECT_GT(monitor_->alerts().size(), alerts_after_write)
      << "read access must also be alerted";
}

// --- replication -----------------------------------------------------------------

class ReplicationFixture : public ServicesTest {
 protected:
  void setup(int replicas = 2) {
    vm_ = &cloud_.create_vm("db", "alice", 0);
    ASSERT_TRUE(cloud_.create_volume("primary", 40'000).is_ok());
    std::string names;
    for (int i = 0; i < replicas; ++i) {
      std::string name = "replica" + std::to_string(i);
      ASSERT_TRUE(cloud_.create_volume(name, 40'000).is_ok());
      names += (i ? "," : "") + name;
    }
    ServiceSpec spec;
    spec.type = "replication";
    spec.relay = RelayMode::kActive;
    spec.params["replicas"] = names;
    dep_ = deploy("db", "primary", {spec});
    ASSERT_TRUE(dep_.valid());
    service_ = static_cast<ReplicationService*>(dep_.service(0));
  }

  block::MemDisk& backing(const std::string& name) {
    return cloud_.storage(0).volumes().find_by_name(name).value()
        ->disk().store();
  }

  cloud::Vm* vm_ = nullptr;
  DeploymentHandle dep_;
  ReplicationService* service_ = nullptr;
};

TEST_F(ReplicationFixture, WritesLandOnAllCopies) {
  setup();
  Bytes data = testutil::pattern_bytes(8 * block::kSectorSize);
  write_disk(vm_->disk(), 100, data);

  EXPECT_EQ(backing("primary").read_sync(100, 8), data);
  EXPECT_EQ(backing("replica0").read_sync(100, 8), data);
  EXPECT_EQ(backing("replica1").read_sync(100, 8), data);
  EXPECT_EQ(service_->writes_replicated(), 1u);
  EXPECT_EQ(service_->live_replicas(), 2u);
}

TEST_F(ReplicationFixture, ReadsStripeAcrossCopies) {
  setup();
  Bytes data = testutil::pattern_bytes(4 * block::kSectorSize);
  write_disk(vm_->disk(), 0, data);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(read_disk(vm_->disk(), 0, 4), data) << "iteration " << i;
  }
  EXPECT_GT(service_->reads_from_primary(), 0u);
  EXPECT_GT(service_->reads_from_replicas(), 0u);
  EXPECT_EQ(service_->reads_from_primary() + service_->reads_from_replicas(),
            9u);
}

TEST_F(ReplicationFixture, SurvivesReplicaFailure) {
  setup();
  Bytes data = testutil::pattern_bytes(4 * block::kSectorSize);
  write_disk(vm_->disk(), 0, data);

  // Fail replica0 by closing its iSCSI session (as the paper does).
  auto iqn = cloud_.find_attachment(dep_.mb_vm(0)->name(), "replica0");
  ASSERT_TRUE(iqn.has_value());
  EXPECT_EQ(cloud_.storage(0).target().close_sessions_for(iqn->iqn), 1u);
  sim_.run();

  // All reads still succeed; rotation sheds the dead replica.
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(read_disk(vm_->disk(), 0, 4), data) << "iteration " << i;
  }
  EXPECT_LE(service_->live_replicas(), 1u);
  EXPECT_GE(service_->failovers(), 1u);

  // Writes keep replicating to the survivor.
  Bytes data2 = testutil::pattern_bytes(4 * block::kSectorSize, 9);
  write_disk(vm_->disk(), 50, data2);
  EXPECT_EQ(backing("primary").read_sync(50, 4), data2);
  EXPECT_EQ(backing("replica1").read_sync(50, 4), data2);
}

TEST_F(ReplicationFixture, WriteOrderIsConsistentAcrossReplicas) {
  setup();
  // Overlapping writes: all copies must end in the same state.
  for (int i = 0; i < 20; ++i) {
    Bytes data(2 * block::kSectorSize,
               static_cast<std::uint8_t>(i + 1));
    write_disk(vm_->disk(), 10, data);
  }
  Bytes primary = backing("primary").read_sync(10, 2);
  EXPECT_EQ(backing("replica0").read_sync(10, 2), primary);
  EXPECT_EQ(backing("replica1").read_sync(10, 2), primary);
  EXPECT_EQ(primary[0], 20);
}

// --- service chaining (monitor -> encryption, the paper's §II example) ------------

TEST_F(ServicesTest, MonitorThenEncryptionChain) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  auto volume = cloud_.create_volume("vol1", 262'144);
  ASSERT_TRUE(volume.is_ok());

  // Deploy the chain on the *blank* volume, then format it through the
  // spliced path so everything on the backend is ciphertext. The monitor
  // starts unarmed and bootstraps its view from the observed mkfs writes.
  ServiceSpec monitor;
  monitor.type = "monitor";
  monitor.relay = RelayMode::kActive;
  ServiceSpec encryption;
  encryption.type = "encryption";
  encryption.relay = RelayMode::kActive;
  DeploymentHandle dep = deploy("vm1", "vol1", {monitor, encryption});
  ASSERT_TRUE(dep.valid());

  // mkfs into a scratch image, then copy the nonzero blocks through the
  // VM's (spliced, encrypted) disk.
  block::MemDisk image(262'144);
  ASSERT_TRUE(fs::SimExt::mkfs(image).is_ok());
  const Bytes zero_block(fs::kBlockSize, 0);
  for (std::uint64_t block = 0; block < 262'144 / fs::kSectorsPerBlock;
       ++block) {
    Bytes content = image.read_sync(block * fs::kSectorsPerBlock,
                                    fs::kSectorsPerBlock);
    if (content == zero_block) continue;
    write_disk(vm.disk(), block * fs::kSectorsPerBlock, content);
  }

  fs::SimExt fs(sim_, *vm.disk());
  bool mounted = false;
  fs.mount([&](Status s) {
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    mounted = true;
  });
  sim_.run();
  ASSERT_TRUE(mounted);

  bool done = false;
  fs.create("/audit.log", [&](Status s) { ASSERT_TRUE(s.is_ok()); done = true; });
  sim_.run();
  ASSERT_TRUE(done);
  done = false;
  Bytes content = testutil::pattern_bytes(8192);
  fs.write_file("/audit.log", 0, content, [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    done = true;
  });
  sim_.run();
  ASSERT_TRUE(done);

  // Monitor (first box) saw plaintext file semantics...
  auto* mon = static_cast<MonitorService*>(dep.service(0));
  bool saw = false;
  for (const auto& entry : mon->log()) {
    if (entry.op.path == "/audit.log" &&
        entry.op.kind == core::FileOp::Kind::kWrite) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw) << "monitor must run before encryption in the chain";

  // ...while the backend stores ciphertext.
  Bytes got;
  done = false;
  fs.read_file("/audit.log", 0, 8192, [&](Status s, Bytes d) {
    ASSERT_TRUE(s.is_ok());
    got = std::move(d);
    done = true;
  });
  sim_.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got, content);
}

}  // namespace
}  // namespace storm::services
