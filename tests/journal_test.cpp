// Journal engine suite: record framing, group commit, checkpointing and
// segment reclaim — plus the crash-point harness sweeps (kill at every
// record boundary and mid-record) and the randomized crash property test
// that replays hundreds of seeded write/trim/checkpoint schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "journal/checkpoint.hpp"
#include "journal/log.hpp"
#include "journal/segment.hpp"
#include "journal_testutil.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace storm {
namespace {

using testutil::JournalHarness;
using testutil::KillPoint;

journal::Config small_segments() {
  journal::Config config;
  config.segment_bytes = 512;  // force frequent segment rolls
  config.checkpoint_dead_bytes = 0;  // explicit checkpoints only
  return config;
}

// ------------------------------------------------------------- framing

TEST(JournalSegment, ScanRoundTripsAppendedRecords) {
  journal::Segment seg(0, 4096);
  const Bytes a = testutil::pattern_bytes(100, 1);
  const Bytes b = testutil::pattern_bytes(37, 2);
  seg.append(1, 1, 100, journal::kBoundary, std::span<const std::uint8_t>(a));
  seg.append(2, 2, 37, 0, std::span<const std::uint8_t>(b));

  const journal::ScanResult scan = seg.scan();
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.valid_bytes, seg.size());
  EXPECT_EQ(scan.records[0].stream, 1u);
  EXPECT_EQ(scan.records[0].seq, 1u);
  EXPECT_EQ(scan.records[0].watermark, 100u);
  EXPECT_TRUE(scan.records[0].boundary());
  EXPECT_EQ(Bytes(scan.records[0].payload.begin(),
                  scan.records[0].payload.end()),
            a);
  EXPECT_EQ(scan.records[1].stream, 2u);
  EXPECT_FALSE(scan.records[1].boundary());
  EXPECT_EQ(Bytes(scan.records[1].payload.begin(),
                  scan.records[1].payload.end()),
            b);
}

TEST(JournalSegment, TruncatedFrameScansAsTorn) {
  journal::Segment seg(0, 4096);
  const Bytes a = testutil::pattern_bytes(64);
  seg.append(1, 1, 64, journal::kBoundary, std::span<const std::uint8_t>(a));
  const std::size_t full = seg.size();
  for (std::size_t cut = 1; cut < full; ++cut) {
    Bytes image(seg.bytes().begin(), seg.bytes().begin() + cut);
    const journal::ScanResult scan = journal::scan_image(image);
    EXPECT_TRUE(scan.records.empty()) << "cut=" << cut;
    EXPECT_TRUE(scan.torn) << "cut=" << cut;
    EXPECT_EQ(scan.valid_bytes, 0u) << "cut=" << cut;
  }
}

TEST(JournalCheckpoint, CodecRoundTrip) {
  journal::Checkpoint cp;
  cp.cursors[3] = 12345;
  cp.cursors[9] = 7;
  cp.dropped.insert(4);
  const Bytes encoded = journal::encode_checkpoint(cp);
  const journal::Checkpoint decoded = journal::decode_checkpoint(encoded);
  EXPECT_EQ(decoded.cursors, cp.cursors);
  EXPECT_EQ(decoded.dropped, cp.dropped);
  EXPECT_TRUE(decoded.covers(3, 12345));
  EXPECT_FALSE(decoded.covers(3, 12346));
  EXPECT_TRUE(decoded.covers(4, 1));  // dropped: any watermark
  EXPECT_FALSE(decoded.covers(5, 0));
}

// --------------------------------------------------------- group commit

TEST(JournalDevice, GroupCommitBatchesRecordsStagedDuringTheWrite) {
  sim::Simulator sim;
  journal::Config config;
  config.group_commit = true;
  journal::Device device(sim, sim.telemetry().scope("journal."), config);
  const journal::StreamId s = device.open_stream();

  std::vector<std::uint64_t> committed;
  for (int i = 0; i < 8; ++i) {
    device.append(s, {Buf(testutil::pattern_bytes(64))}, (i + 1) * 64, true,
                  [&committed, i] { committed.push_back(i); });
  }
  // All appended before the sim ran: the first write covers record 0 (it
  // was alone when staged... actually the first schedule happens at
  // append #1 with one record staged); everything staged while it was in
  // flight commits as one group.
  sim.run();
  ASSERT_EQ(committed.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(committed[i], static_cast<std::uint64_t>(i)) << "commit order";
  }
  EXPECT_EQ(device.committed_seq(), device.appended_seq());
  EXPECT_TRUE(device.flush_idle());
  // 8 records, but far fewer NVRAM writes than 8: the second write
  // covered all 7 records staged during the first.
  const std::uint64_t commits =
      sim.telemetry().counter("journal.commits").value();
  EXPECT_LE(commits, 2u);
}

TEST(JournalDevice, BaselineModeWritesOneRecordPerCommit) {
  sim::Simulator sim;
  journal::Config config;
  config.group_commit = false;
  journal::Device device(sim, sim.telemetry().scope("journal."), config);
  const journal::StreamId s = device.open_stream();
  for (int i = 0; i < 8; ++i) {
    device.append(s, {Buf(testutil::pattern_bytes(64))}, (i + 1) * 64, true);
  }
  sim.run();
  EXPECT_EQ(sim.telemetry().counter("journal.commits").value(), 8u);
  EXPECT_EQ(device.committed_seq(), device.appended_seq());
}

TEST(JournalDevice, AppendIsDurableBeforeTheCommitLatencyElapses) {
  // The early-ACK contract: a record is power-fail safe the moment
  // append() returns, even if the device write pipeline never ran.
  JournalHarness h(small_segments());
  const journal::StreamId s = h.open_stream();
  Rng rng(7);
  h.append_burst(s, rng, 3, 200);
  // No h.settle(): crash with the flush still pending.
  h.verify_recovery(h.device.export_image(), "pre-flush crash");
}

// -------------------------------------------- checkpoint + segment churn

TEST(JournalDevice, CheckpointReclaimsDeadSegmentsAndSkipsOnReplay) {
  JournalHarness h(small_segments());
  const journal::StreamId s = h.open_stream();
  Rng rng(11);
  // Fill several segments, ack everything, checkpoint: the log should
  // shrink to (nearly) nothing, and replay must skip the acked records.
  std::uint64_t wm = 0;
  for (int burst = 0; burst < 12; ++burst) {
    wm = h.append_burst(s, rng, 2, 100);
  }
  const std::size_t before = h.device.segment_count();
  ASSERT_GT(before, 2u);
  h.trim(s, wm);
  h.checkpoint();
  EXPECT_LT(h.device.segment_count(), before) << "dead segments reclaimed";
  EXPECT_EQ(h.device.stream_bytes(s), 0u);

  // Replay the surviving image: every pre-checkpoint record is skipped.
  sim::Simulator sim2;
  journal::Device recovered(sim2, sim2.telemetry().scope("journal."),
                            h.device.config());
  const auto stats = recovered.load(h.device.export_image());
  EXPECT_EQ(stats.recovered, 0u);
  EXPECT_EQ(recovered.stream_bytes(s), 0u);
  EXPECT_TRUE(stats.clean());
}

TEST(JournalDevice, AutoCheckpointFiresOnDeadByteThreshold) {
  journal::Config config;
  config.segment_bytes = 512;
  config.checkpoint_dead_bytes = 1024;
  JournalHarness h(config);
  const journal::StreamId s = h.open_stream();
  Rng rng(13);
  std::uint64_t wm = 0;
  for (int burst = 0; burst < 10; ++burst) {
    wm = h.append_burst(s, rng, 1, 256);
    h.trim(s, wm);
  }
  EXPECT_GT(h.device.checkpoints_written(), 0u);
  // The harness mirrored every auto-checkpoint; recovery must agree.
  h.verify_recovery(h.device.export_image(), "auto-checkpoint");
}

TEST(JournalDevice, DroppedStreamIsNotResurrectedPastItsTombstone) {
  JournalHarness h(small_segments());
  const journal::StreamId a = h.open_stream();
  const journal::StreamId b = h.open_stream();
  Rng rng(17);
  h.append_burst(a, rng, 2, 80);
  h.append_burst(b, rng, 2, 80);
  h.drop_stream(a);
  h.checkpoint();  // tombstone becomes durable
  const auto stats = h.verify_recovery(h.device.export_image(), "tombstone");
  EXPECT_GT(stats.skipped, 0u) << "dropped stream's records skipped";

  // Without the checkpoint the drop is volatile: resurrection is the
  // documented at-least-once window, and the model expects it too.
  JournalHarness h2(small_segments());
  const journal::StreamId a2 = h2.open_stream();
  Rng rng2(17);
  h2.append_burst(a2, rng2, 2, 80);
  h2.drop_stream(a2);
  h2.verify_recovery(h2.device.export_image(), "volatile drop");
}

// ---------------------------------------------------- crash-point sweeps

TEST(JournalCrash, KillSweepAcrossScriptedScheduleRecoversExactPrefix) {
  // A scripted schedule touching every feature: multiple streams, torn
  // (non-boundary) tails, trims, a drop and a checkpoint — then kill at
  // every record boundary and twice inside every frame.
  JournalHarness h(small_segments());
  Rng rng(23);
  const journal::StreamId a = h.open_stream();
  const journal::StreamId b = h.open_stream();
  h.append_burst(a, rng, 3, 64);
  h.append_burst(b, rng, 1, 150);
  const std::uint64_t wm_a = h.append_burst(a, rng, 2, 100);
  h.trim(a, wm_a);
  h.append_burst(b, rng, 2, 90);
  h.checkpoint();
  const journal::StreamId c = h.open_stream();
  h.append_burst(c, rng, 2, 48);
  h.drop_stream(b);
  h.append_burst(a, rng, 1, 256);
  // Leave an open burst (torn tail) at the very end.
  h.append(a, testutil::pattern_bytes(40, 9), h.watermark(a) + 40,
           /*boundary=*/false);

  h.sweep_kill_points(/*mid_points=*/2);
}

TEST(JournalCrash, ZeroAcknowledgedBurstsLostAtAnyBoundaryKill) {
  // The acceptance bar stated directly: after a kill at any record
  // boundary, every fully-appended record (the committed prefix) is
  // recovered — nothing acknowledged is lost, nothing extra appears.
  JournalHarness h(small_segments());
  Rng rng(29);
  const journal::StreamId s = h.open_stream();
  for (int burst = 0; burst < 6; ++burst) {
    h.append_burst(s, rng, 2, 70);
  }
  const journal::Device::Image image = h.device.export_image();
  for (const KillPoint& kp :
       JournalHarness::enumerate_kill_points(image, /*mid_points=*/0)) {
    const auto cut = JournalHarness::truncate_image(image, kp);
    // Count records fully inside the cut: they must all come back.
    std::size_t kept = 0;
    for (const Bytes& seg : cut.segments) {
      kept += journal::scan_image(seg).records.size();
    }
    sim::Simulator sim2;
    journal::Device recovered(sim2, sim2.telemetry().scope("journal."),
                              h.device.config());
    const auto stats = recovered.load(cut);
    EXPECT_EQ(stats.recovered + stats.skipped, kept)
        << "seg=" << kp.segment << " keep=" << kp.keep_bytes;
    EXPECT_TRUE(stats.clean());
  }
}

// ------------------------------------- randomized crash property testing

/// One seeded random schedule (appends/trims/checkpoints/drops across a
/// few streams), then a random crash offset — including torn mid-frame
/// tails — verified byte-exact against the model. Returns a digest of
/// the device image so same-seed determinism is checkable end to end.
std::string run_random_crash_schedule(std::uint64_t seed) {
  Rng rng(seed);
  journal::Config config;
  config.segment_bytes = 256 + rng.below(1024);
  config.checkpoint_dead_bytes = rng.chance(0.5) ? 0 : 512 + rng.below(2048);
  config.group_commit = rng.chance(0.8);
  JournalHarness h(config);

  std::vector<journal::StreamId> streams;
  for (std::size_t i = 0; i < 1 + rng.below(3); ++i) {
    streams.push_back(h.open_stream());
  }
  const std::size_t ops = 8 + rng.below(25);
  for (std::size_t op = 0; op < ops; ++op) {
    journal::StreamId s = streams[rng.below(streams.size())];
    const double roll = rng.next_double();
    if (roll < 0.55) {
      h.append_burst(s, rng, 1 + rng.below(4), 16 + rng.below(200));
    } else if (roll < 0.75) {
      // Ack a random point — sometimes mid-burst, sometimes beyond.
      const std::uint64_t wm = h.watermark(s);
      h.trim(s, wm == 0 ? 0 : rng.below(wm + wm / 4 + 1));
    } else if (roll < 0.85) {
      h.checkpoint();
    } else if (roll < 0.93) {
      if (rng.chance(0.5)) h.settle();
    } else {
      h.drop_stream(s);
      streams.erase(std::find(streams.begin(), streams.end(), s));
      if (streams.empty()) streams.push_back(h.open_stream());
    }
  }
  // Maybe leave an open (torn) burst at the end.
  if (rng.chance(0.4)) {
    journal::StreamId s = streams[rng.below(streams.size())];
    h.append(s, testutil::pattern_bytes(32, static_cast<std::uint8_t>(seed)),
             h.watermark(s) + 32, /*boundary=*/false);
  }

  // Crash at a random byte offset across the whole image (mid-frame cuts
  // included), plus always the full image.
  const journal::Device::Image image = h.device.export_image();
  h.verify_recovery(image, "seed=" + std::to_string(seed) + " full");
  if (image.bytes() > 0) {
    std::size_t cut = rng.below(image.bytes() + 1);
    KillPoint kp;
    for (std::size_t s = 0; s < image.segments.size(); ++s) {
      if (cut <= image.segments[s].size()) {
        kp = KillPoint{s, cut, false};
        break;
      }
      cut -= image.segments[s].size();
    }
    h.verify_recovery(JournalHarness::truncate_image(image, kp),
                      "seed=" + std::to_string(seed) + " cut");
  }

  // Digest: image bytes + record count, for determinism comparison.
  std::string digest;
  for (const Bytes& seg : image.segments) {
    digest += std::to_string(seg.size()) + ":";
    std::uint64_t h64 = 1469598103934665603ull;
    for (std::uint8_t byte : seg) {
      h64 = (h64 ^ byte) * 1099511628211ull;
    }
    digest += std::to_string(h64) + ";";
  }
  return digest;
}

TEST(JournalCrash, RandomizedSchedulesRecoverTheCommittedPrefix) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    run_random_crash_schedule(seed);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first failing seed: " << seed;
      return;
    }
  }
}

TEST(JournalCrash, SameSeedSchedulesAreByteIdentical) {
  for (std::uint64_t seed : {3ull, 47ull, 101ull}) {
    EXPECT_EQ(run_random_crash_schedule(seed),
              run_random_crash_schedule(seed))
        << "seed " << seed;
  }
}

// -------------------------------------------- multiplexing determinism

/// Two chains interleaving into one shared log: chain A's recovered
/// state must be a function of chain A's history alone, however chain
/// B's records interleave with it.
TEST(JournalMultiplex, RecoveredStreamStateIsIndependentOfInterleaving) {
  auto run = [](bool b_first, std::size_t b_chunk) {
    auto h = std::make_unique<JournalHarness>(small_segments());
    const journal::StreamId a = h->open_stream();
    const journal::StreamId b = h->open_stream();
    Rng rng_a(1001);  // chain A's payloads: identical across runs
    Rng rng_b(2002 + b_chunk);  // chain B varies freely
    for (int round = 0; round < 6; ++round) {
      if (b_first) h->append_burst(b, rng_b, 1 + b_chunk, 50);
      h->append_burst(a, rng_a, 2, 120);
      if (!b_first) h->append_burst(b, rng_b, 1 + b_chunk, 50);
    }
    const std::uint64_t wm_a = h->watermark(a);
    h->trim(a, wm_a / 2);

    sim::Simulator sim2;
    journal::Device recovered(sim2, sim2.telemetry().scope("journal."),
                              h->device.config());
    recovered.load(h->device.export_image());
    std::vector<Bytes> out;
    for (const BufChain& chain : recovered.stream_records(a)) {
      out.push_back(chain_to_bytes(chain));
    }
    return out;
  };

  const std::vector<Bytes> base = run(false, 0);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(run(true, 0), base) << "B-before-A interleaving changed A";
  EXPECT_EQ(run(false, 2), base) << "B burst size changed A";
  EXPECT_EQ(run(true, 3), base) << "both varied";
}

TEST(JournalMultiplex, SameSeedInterleavingExportsByteIdenticalTelemetry) {
  auto run = [] {
    JournalHarness h(small_segments());
    const journal::StreamId a = h.open_stream();
    const journal::StreamId b = h.open_stream();
    Rng rng(31337);
    for (int round = 0; round < 5; ++round) {
      h.append_burst(a, rng, 2, 64);
      h.append_burst(b, rng, 1, 200);
      if (round == 2) {
        h.trim(a, h.watermark(a));
        h.checkpoint();
      }
    }
    h.settle();
    h.device.crash();
    h.device.recover();
    return h.sim.telemetry().to_json(/*include_spans=*/true);
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("journal.replays"), std::string::npos);
  EXPECT_NE(first.find("journal.commit_latency_ns"), std::string::npos);
}

}  // namespace
}  // namespace storm
