#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace storm {
namespace {

TEST(ByteWriterReader, RoundTripsAllWidths) {
  Bytes buf;
  ByteWriter w(buf);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.str("hello");
  w.zeros(3);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.str(), "hello");
  r.skip(3);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteWriterReader, BigEndianLayout) {
  Bytes buf;
  ByteWriter w(buf);
  w.u32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
}

TEST(ByteReader, ThrowsOnTruncatedInput) {
  Bytes buf = {0x01, 0x02};
  ByteReader r(buf);
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(ByteReader, ThrowsOnTruncatedString) {
  Bytes buf;
  ByteWriter w(buf);
  w.u16(100);  // declared length longer than the buffer
  ByteReader r(buf);
  EXPECT_THROW(r.str(), std::out_of_range);
}

TEST(Hash, Crc32KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (classic check value).
  Bytes data = to_bytes("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Hash, Crc32EmptyIsZero) {
  EXPECT_EQ(crc32(Bytes{}), 0x00000000u);
}

TEST(Hash, Fnv1aKnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a(std::string_view{}), 0xcbf29ce484222325ull);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(Hex, FormatsAndTruncates) {
  Bytes data = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(to_hex(data), "deadbeef");
  EXPECT_EQ(to_hex(data, 2), "dead...");
}

TEST(Status, OkAndError) {
  Status ok = Status::ok();
  EXPECT_TRUE(ok.is_ok());
  Status err = error(ErrorCode::kNotFound, "volume gone");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.code(), ErrorCode::kNotFound);
  EXPECT_EQ(err.to_string(), "NOT_FOUND: volume gone");
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad(error(ErrorCode::kIoError, "disk"));
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kIoError);
  EXPECT_THROW(bad.value(), std::runtime_error);
}

TEST(Result, RejectsOkStatus) {
  EXPECT_THROW(Result<int>(Status::ok()), std::logic_error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng r1(7), r2(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r1.next_u64(), r2.next_u64());
  }
}

TEST(Rng, BetweenStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.between(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace storm
