// Unit tests for the SDN controller's steering-rule computation (paper
// Fig. 3): rule counts per chain shape, cookie-scoped removal, and
// reprogramming for on-demand scaling.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/sdn_controller.hpp"
#include "core/splicer.hpp"
#include "net/flow_switch.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "services/registry.hpp"
#include "testutil.hpp"

namespace storm::core {
namespace {

class SdnTest : public ::testing::Test {
 protected:
  SdnTest() : cloud_(sim_, cloud::CloudConfig{}), splicer_(cloud_),
              sdn_(cloud_) {}

  SpliceContext make_context(std::vector<RelayMode> relays) {
    SpliceContext ctx;
    ctx.cookie = next_cookie_++;
    ctx.vm_port = 40000;
    ctx.host_storage_ip = cloud_.compute(0).storage_ip();
    ctx.target_ip = cloud_.storage(0).storage_ip();
    ctx.gateways = splicer_.tenant_gateways("t");
    for (std::size_t i = 0; i < relays.size(); ++i) {
      cloud::Vm& mb = cloud_.create_middlebox_vm(
          "mb" + std::to_string(mb_id_++), "t",
          static_cast<unsigned>(i % cloud_.compute_count()));
      ctx.chain.push_back(Hop{&mb, relays[i]});
    }
    return ctx;
  }

  std::size_t total_rules() {
    std::size_t count = 0;
    for (net::FlowSwitch* fs : cloud_.flow_switches()) {
      count += fs->rule_count();
    }
    return count;
  }

  sim::Simulator sim_;
  cloud::Cloud cloud_;
  NetworkSplicer splicer_;
  SdnController sdn_;
  std::uint64_t next_cookie_ = 1;
  int mb_id_ = 0;
};

TEST_F(SdnTest, SinglePacketLevelHopInstallsForwardAndReverse) {
  // One forward/passive hop: 1 forward steering rule + 1 reverse rule,
  // on every flow switch (5 switches: backbone + 4 OVSes).
  SpliceContext ctx = make_context({RelayMode::kForward});
  sdn_.install_chain_rules(ctx);
  EXPECT_EQ(total_rules(), 2u * cloud_.flow_switches().size());
}

TEST_F(SdnTest, ActiveHopNeedsNoReverseSteering) {
  // An active relay terminates TCP: replies address the relay's own IP,
  // so only the forward mod_dst_mac rule is needed.
  SpliceContext ctx = make_context({RelayMode::kActive});
  sdn_.install_chain_rules(ctx);
  EXPECT_EQ(total_rules(), 1u * cloud_.flow_switches().size());
}

TEST_F(SdnTest, MixedChainRuleCount) {
  // passive, active, passive: forward needs 3 rules (one per hop);
  // reverse needs 1 per passive hop inside each TCP segment = 2.
  SpliceContext ctx = make_context(
      {RelayMode::kPassive, RelayMode::kActive, RelayMode::kPassive});
  sdn_.install_chain_rules(ctx);
  EXPECT_EQ(total_rules(), 5u * cloud_.flow_switches().size());
}

TEST_F(SdnTest, EmptyChainInstallsNothing) {
  SpliceContext ctx = make_context({});
  sdn_.install_chain_rules(ctx);
  EXPECT_EQ(total_rules(), 0u);
}

TEST_F(SdnTest, RemovalIsCookieScoped) {
  SpliceContext a = make_context({RelayMode::kForward});
  SpliceContext b = make_context({RelayMode::kForward, RelayMode::kForward});
  sdn_.install_chain_rules(a);
  sdn_.install_chain_rules(b);
  std::size_t switches = cloud_.flow_switches().size();
  EXPECT_EQ(total_rules(), (2u + 4u) * switches);

  EXPECT_EQ(sdn_.remove_chain_rules(a.cookie), 2u * switches);
  EXPECT_EQ(total_rules(), 4u * switches) << "b's rules must survive";
  EXPECT_EQ(sdn_.remove_chain_rules(a.cookie), 0u) << "idempotent";
  EXPECT_EQ(sdn_.remove_chain_rules(b.cookie), 4u * switches);
  EXPECT_EQ(total_rules(), 0u);
}

TEST_F(SdnTest, ReprogramReplacesRules) {
  SpliceContext ctx = make_context({RelayMode::kForward});
  sdn_.install_chain_rules(ctx);
  std::size_t switches = cloud_.flow_switches().size();
  EXPECT_EQ(total_rules(), 2u * switches);

  // Grow the chain by a second packet-level hop and reprogram.
  cloud::Vm& mb = cloud_.create_middlebox_vm("mb-extra", "t", 1);
  ctx.chain.push_back(Hop{&mb, RelayMode::kPassive});
  sdn_.reprogram_chain(ctx);
  EXPECT_EQ(total_rules(), 4u * switches)
      << "old rules removed, two-hop rules installed";
}

TEST_F(SdnTest, RulesMatchFlowPortAndRewriteMac) {
  SpliceContext ctx = make_context({RelayMode::kForward});
  sdn_.install_chain_rules(ctx);
  // Inspect the backbone's copy of the forward rule.
  const auto& rules = cloud_.instance_backbone().rules();
  ASSERT_EQ(rules.size(), 2u);
  bool found_forward = false;
  for (const auto& rule : rules) {
    if (rule.match.src_port == ctx.vm_port) {
      found_forward = true;
      ASSERT_EQ(rule.actions.size(), 2u);
      EXPECT_EQ(rule.actions[0].type, net::FlowActionType::kSetDstMac);
      EXPECT_EQ(rule.actions[0].mac, ctx.chain[0].vm->mac());
      EXPECT_EQ(rule.actions[1].type, net::FlowActionType::kNormal);
      ASSERT_TRUE(rule.match.dst_ip.has_value());
      EXPECT_EQ(*rule.match.dst_ip, ctx.gateways.egress_instance_ip());
    }
  }
  EXPECT_TRUE(found_forward);
}

TEST_F(SdnTest, GatewayPairsAreReusedPerTenant) {
  GatewayPair& first = splicer_.tenant_gateways("t");
  GatewayPair& again = splicer_.tenant_gateways("t");
  EXPECT_EQ(first.ingress, again.ingress);
  GatewayPair& other = splicer_.tenant_gateways("other");
  EXPECT_NE(first.ingress, other.ingress);
  EXPECT_NE(first.ingress_instance_ip(), other.ingress_instance_ip());
}

// --------------------------------------------- consistent-hash flow ring

TEST(FlowHashRing, AssignmentIsDeterministicAcrossInstances) {
  FlowHashRing a, b;
  for (const char* label : {"t/noop#0", "t/noop#1", "t/noop#2"}) {
    a.add_node(label);
    b.add_node(label);
  }
  EXPECT_EQ(a.node_count(), 3u);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(a.assign(key), b.assign(key));
  }
  // The 4-tuple key is order-sensitive: forward and reverse directions
  // of different flows must not collide systematically.
  EXPECT_NE(FlowHashRing::flow_key(net::Ipv4Addr{0x0a000001}, 40000,
                                   net::Ipv4Addr{0x0a000002}, 3260),
            FlowHashRing::flow_key(net::Ipv4Addr{0x0a000002}, 3260,
                                   net::Ipv4Addr{0x0a000001}, 40000));
}

TEST(FlowHashRing, ScaleUpMovesOnlyArcsTheNewNodeTook) {
  FlowHashRing ring;
  ring.add_node("t/noop#0");
  ring.add_node("t/noop#1");
  ring.add_node("t/noop#2");
  constexpr std::uint64_t kFlows = 2000;
  std::vector<std::string> before;
  before.reserve(kFlows);
  for (std::uint64_t key = 0; key < kFlows; ++key) {
    before.push_back(ring.assign(key));
  }
  ring.add_node("t/noop#3");
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < kFlows; ++key) {
    const std::string& after = ring.assign(key);
    if (after == before[key]) continue;
    ++moved;
    EXPECT_EQ(after, "t/noop#3")
        << "a flow may only move to the node that took its arc";
  }
  // Expected movement is ~1/4 of the keyspace; anywhere under half
  // proves the ring beats mod-N rehashing (which moves ~3/4).
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kFlows / 2);
}

TEST(FlowHashRing, RemovalOnlyMovesTheVictimsFlows) {
  FlowHashRing ring;
  ring.add_node("t/noop#0");
  ring.add_node("t/noop#1");
  ring.add_node("t/noop#2");
  constexpr std::uint64_t kFlows = 2000;
  std::vector<std::string> before;
  for (std::uint64_t key = 0; key < kFlows; ++key) {
    before.push_back(ring.assign(key));
  }
  ring.remove_node("t/noop#1");
  EXPECT_EQ(ring.node_count(), 2u);
  EXPECT_FALSE(ring.contains("t/noop#1"));
  for (std::uint64_t key = 0; key < kFlows; ++key) {
    if (before[key] != "t/noop#1") {
      EXPECT_EQ(ring.assign(key), before[key])
          << "survivor flows must not move on scale-down";
    } else {
      EXPECT_NE(ring.assign(key), "t/noop#1");
    }
  }
  // Re-adding restores the exact prior assignment (labels hash to fixed
  // vnode points).
  ring.add_node("t/noop#1");
  for (std::uint64_t key = 0; key < kFlows; ++key) {
    EXPECT_EQ(ring.assign(key), before[key]);
  }
}

TEST(FlowHashRing, VnodesSpreadLoadRoughlyEvenly) {
  FlowHashRing ring;
  std::map<std::string, std::size_t> load;
  for (int n = 0; n < 4; ++n) {
    ring.add_node("t/noop#" + std::to_string(n));
  }
  constexpr std::uint64_t kFlows = 8000;
  for (std::uint64_t key = 0; key < kFlows; ++key) {
    ++load[ring.assign(key)];
  }
  ASSERT_EQ(load.size(), 4u) << "every node must own some arc";
  for (const auto& [label, count] : load) {
    EXPECT_GT(count, kFlows / 10) << label << " starved";
    EXPECT_LT(count, kFlows / 2) << label << " overloaded";
  }
}

// ------------------------------- rule swap vs the exact-match fast path

// Regression: swap_rules_by_cookie must revalidate the memoized
// exact-match entries in the same indivisible update. Before the fix, a
// cached entry could keep steering into the pre-swap rule (stale index)
// — under replica rebalancing that means packets delivered to a relay
// that no longer owns the flow.
TEST(FlowSwitchSwap, SwapRevalidatesCachedEntriesWithoutDroppingThem) {
  sim::Simulator sim;
  net::FlowSwitch sw(sim, "ovs");
  net::Link l_in(sim, 1'000'000'000ull, 0), l_a(sim, 1'000'000'000ull, 0),
      l_b(sim, 1'000'000'000ull, 0);
  int got_a = 0, got_b = 0;
  l_a.connect(0, [&](net::Packet) { ++got_a; });
  l_b.connect(0, [&](net::Packet) { ++got_b; });
  sw.attach(l_in, 1);
  const int port_a = sw.attach(l_a, 1);
  const int port_b = sw.attach(l_b, 1);

  auto make_rule = [](std::uint64_t cookie, std::uint16_t src_port,
                      int out_port) {
    net::FlowRule rule;
    rule.priority = 10;
    rule.cookie = cookie;
    rule.match.src_port = src_port;
    rule.actions = {net::FlowAction::output(out_port)};
    return rule;
  };
  auto make_pkt = [](std::uint16_t src_port) {
    net::Packet pkt;
    pkt.ip.src = testutil::ip("10.0.0.1");
    pkt.ip.dst = testutil::ip("10.0.0.9");
    pkt.tcp.src_port = src_port;
    pkt.tcp.dst_port = 3260;
    pkt.eth.src = testutil::mac(0xA);
    pkt.eth.dst = testutil::mac(0xB);
    pkt.tcp.checksum = net::tcp_checksum(pkt);
    return pkt;
  };

  // Flow 1000 (cookie 7) steers to A; flow 2000 (cookie 8) to B.
  sw.add_rule(make_rule(7, 1000, port_a));
  sw.add_rule(make_rule(8, 2000, port_b));

  // Populate the exact-match cache (first packet misses, second hits).
  for (int i = 0; i < 2; ++i) {
    l_in.send(0, make_pkt(1000));
    l_in.send(0, make_pkt(2000));
  }
  sim.run();
  ASSERT_EQ(got_a, 2);
  ASSERT_EQ(got_b, 2);
  ASSERT_EQ(sw.cache_entries(), 2u);
  const std::uint64_t hits_before = sw.cache_hits();
  const std::uint64_t misses_before = sw.cache_misses();
  ASSERT_GE(hits_before, 2u);

  // Rebalance: cookie 7's flow moves to output B (replica handoff).
  EXPECT_EQ(sw.swap_rules_by_cookie(7, {make_rule(7, 1000, port_b)}), 1u);

  l_in.send(0, make_pkt(1000));
  l_in.send(0, make_pkt(2000));
  sim.run();
  EXPECT_EQ(got_a, 2) << "stale cache entry steered into the old replica";
  EXPECT_EQ(got_b, 4);
  // Both flows stayed on the fast path: the swap revalidated the
  // memoized entries instead of flushing them.
  EXPECT_EQ(sw.cache_misses(), misses_before)
      << "swap must not cost cached flows their fast path";
  EXPECT_EQ(sw.cache_hits(), hits_before + 2);
  EXPECT_EQ(sw.cache_entries(), 2u);
}

TEST_F(SdnTest, CaptureRulesFollowActiveChainSegments) {
  // igw -> active mb1 -> active mb2: mb1 captures from the ingress
  // gateway's address, mb2 from mb1's.
  SpliceContext ctx = make_context({RelayMode::kActive, RelayMode::kActive});
  splicer_.install_capture_rules(ctx);
  EXPECT_EQ(ctx.chain[0].vm->node().nat().rule_count(), 1u);
  EXPECT_EQ(ctx.chain[1].vm->node().nat().rule_count(), 1u);
  EXPECT_EQ(splicer_.remove_all_rules(ctx), 2u);
  EXPECT_EQ(ctx.chain[0].vm->node().nat().rule_count(), 0u);
}

}  // namespace
}  // namespace storm::core
