// Unit tests for the SDN controller's steering-rule computation (paper
// Fig. 3): rule counts per chain shape, cookie-scoped removal, and
// reprogramming for on-demand scaling.
#include <gtest/gtest.h>

#include "core/sdn_controller.hpp"
#include "core/splicer.hpp"
#include "services/registry.hpp"
#include "testutil.hpp"

namespace storm::core {
namespace {

class SdnTest : public ::testing::Test {
 protected:
  SdnTest() : cloud_(sim_, cloud::CloudConfig{}), splicer_(cloud_),
              sdn_(cloud_) {}

  SpliceContext make_context(std::vector<RelayMode> relays) {
    SpliceContext ctx;
    ctx.cookie = next_cookie_++;
    ctx.vm_port = 40000;
    ctx.host_storage_ip = cloud_.compute(0).storage_ip();
    ctx.target_ip = cloud_.storage(0).storage_ip();
    ctx.gateways = splicer_.tenant_gateways("t");
    for (std::size_t i = 0; i < relays.size(); ++i) {
      cloud::Vm& mb = cloud_.create_middlebox_vm(
          "mb" + std::to_string(mb_id_++), "t",
          static_cast<unsigned>(i % cloud_.compute_count()));
      ctx.chain.push_back(Hop{&mb, relays[i]});
    }
    return ctx;
  }

  std::size_t total_rules() {
    std::size_t count = 0;
    for (net::FlowSwitch* fs : cloud_.flow_switches()) {
      count += fs->rule_count();
    }
    return count;
  }

  sim::Simulator sim_;
  cloud::Cloud cloud_;
  NetworkSplicer splicer_;
  SdnController sdn_;
  std::uint64_t next_cookie_ = 1;
  int mb_id_ = 0;
};

TEST_F(SdnTest, SinglePacketLevelHopInstallsForwardAndReverse) {
  // One forward/passive hop: 1 forward steering rule + 1 reverse rule,
  // on every flow switch (5 switches: backbone + 4 OVSes).
  SpliceContext ctx = make_context({RelayMode::kForward});
  sdn_.install_chain_rules(ctx);
  EXPECT_EQ(total_rules(), 2u * cloud_.flow_switches().size());
}

TEST_F(SdnTest, ActiveHopNeedsNoReverseSteering) {
  // An active relay terminates TCP: replies address the relay's own IP,
  // so only the forward mod_dst_mac rule is needed.
  SpliceContext ctx = make_context({RelayMode::kActive});
  sdn_.install_chain_rules(ctx);
  EXPECT_EQ(total_rules(), 1u * cloud_.flow_switches().size());
}

TEST_F(SdnTest, MixedChainRuleCount) {
  // passive, active, passive: forward needs 3 rules (one per hop);
  // reverse needs 1 per passive hop inside each TCP segment = 2.
  SpliceContext ctx = make_context(
      {RelayMode::kPassive, RelayMode::kActive, RelayMode::kPassive});
  sdn_.install_chain_rules(ctx);
  EXPECT_EQ(total_rules(), 5u * cloud_.flow_switches().size());
}

TEST_F(SdnTest, EmptyChainInstallsNothing) {
  SpliceContext ctx = make_context({});
  sdn_.install_chain_rules(ctx);
  EXPECT_EQ(total_rules(), 0u);
}

TEST_F(SdnTest, RemovalIsCookieScoped) {
  SpliceContext a = make_context({RelayMode::kForward});
  SpliceContext b = make_context({RelayMode::kForward, RelayMode::kForward});
  sdn_.install_chain_rules(a);
  sdn_.install_chain_rules(b);
  std::size_t switches = cloud_.flow_switches().size();
  EXPECT_EQ(total_rules(), (2u + 4u) * switches);

  EXPECT_EQ(sdn_.remove_chain_rules(a.cookie), 2u * switches);
  EXPECT_EQ(total_rules(), 4u * switches) << "b's rules must survive";
  EXPECT_EQ(sdn_.remove_chain_rules(a.cookie), 0u) << "idempotent";
  EXPECT_EQ(sdn_.remove_chain_rules(b.cookie), 4u * switches);
  EXPECT_EQ(total_rules(), 0u);
}

TEST_F(SdnTest, ReprogramReplacesRules) {
  SpliceContext ctx = make_context({RelayMode::kForward});
  sdn_.install_chain_rules(ctx);
  std::size_t switches = cloud_.flow_switches().size();
  EXPECT_EQ(total_rules(), 2u * switches);

  // Grow the chain by a second packet-level hop and reprogram.
  cloud::Vm& mb = cloud_.create_middlebox_vm("mb-extra", "t", 1);
  ctx.chain.push_back(Hop{&mb, RelayMode::kPassive});
  sdn_.reprogram_chain(ctx);
  EXPECT_EQ(total_rules(), 4u * switches)
      << "old rules removed, two-hop rules installed";
}

TEST_F(SdnTest, RulesMatchFlowPortAndRewriteMac) {
  SpliceContext ctx = make_context({RelayMode::kForward});
  sdn_.install_chain_rules(ctx);
  // Inspect the backbone's copy of the forward rule.
  const auto& rules = cloud_.instance_backbone().rules();
  ASSERT_EQ(rules.size(), 2u);
  bool found_forward = false;
  for (const auto& rule : rules) {
    if (rule.match.src_port == ctx.vm_port) {
      found_forward = true;
      ASSERT_EQ(rule.actions.size(), 2u);
      EXPECT_EQ(rule.actions[0].type, net::FlowActionType::kSetDstMac);
      EXPECT_EQ(rule.actions[0].mac, ctx.chain[0].vm->mac());
      EXPECT_EQ(rule.actions[1].type, net::FlowActionType::kNormal);
      ASSERT_TRUE(rule.match.dst_ip.has_value());
      EXPECT_EQ(*rule.match.dst_ip, ctx.gateways.egress_instance_ip());
    }
  }
  EXPECT_TRUE(found_forward);
}

TEST_F(SdnTest, GatewayPairsAreReusedPerTenant) {
  GatewayPair& first = splicer_.tenant_gateways("t");
  GatewayPair& again = splicer_.tenant_gateways("t");
  EXPECT_EQ(first.ingress, again.ingress);
  GatewayPair& other = splicer_.tenant_gateways("other");
  EXPECT_NE(first.ingress, other.ingress);
  EXPECT_NE(first.ingress_instance_ip(), other.ingress_instance_ip());
}

TEST_F(SdnTest, CaptureRulesFollowActiveChainSegments) {
  // igw -> active mb1 -> active mb2: mb1 captures from the ingress
  // gateway's address, mb2 from mb1's.
  SpliceContext ctx = make_context({RelayMode::kActive, RelayMode::kActive});
  splicer_.install_capture_rules(ctx);
  EXPECT_EQ(ctx.chain[0].vm->node().nat().rule_count(), 1u);
  EXPECT_EQ(ctx.chain[1].vm->node().nat().rule_count(), 1u);
  EXPECT_EQ(splicer_.remove_all_rules(ctx), 2u);
  EXPECT_EQ(ctx.chain[0].vm->node().nat().rule_count(), 0u);
}

}  // namespace
}  // namespace storm::core
