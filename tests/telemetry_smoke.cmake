# Runs the quickstart example in a scratch directory and checks that the
# telemetry JSON it writes parses cleanly (`jq empty`). Invoked by ctest;
# expects -DQUICKSTART=<binary> and -DJQ=<jq binary>.
set(scratch ${CMAKE_CURRENT_BINARY_DIR}/telemetry_smoke)
file(MAKE_DIRECTORY ${scratch})

execute_process(COMMAND ${QUICKSTART}
                WORKING_DIRECTORY ${scratch}
                RESULT_VARIABLE run_result
                OUTPUT_VARIABLE run_output
                ERROR_VARIABLE run_output)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "quickstart failed (${run_result}):\n${run_output}")
endif()

set(json ${scratch}/quickstart_telemetry.json)
if(NOT EXISTS ${json})
  message(FATAL_ERROR "quickstart did not write ${json}")
endif()

execute_process(COMMAND ${JQ} empty ${json}
                RESULT_VARIABLE jq_result
                ERROR_VARIABLE jq_error)
if(NOT jq_result EQUAL 0)
  message(FATAL_ERROR "telemetry JSON is invalid:\n${jq_error}")
endif()

# The dump must carry real content, not an empty shell.
execute_process(COMMAND ${JQ} -e ".counters | length > 0" ${json}
                RESULT_VARIABLE jq_result OUTPUT_QUIET)
if(NOT jq_result EQUAL 0)
  message(FATAL_ERROR "telemetry JSON has no counters")
endif()
