// Partition-aware placement: the host→partition mapping, the
// auto-derived lookahead over partition-spanning links, byte-identical
// multi-tenant runs at any worker-thread count (chaos included), the
// batched cross-partition mailboxes, and the at_barrier control channel.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/cloud.hpp"
#include "core/health_manager.hpp"
#include "core/platform.hpp"
#include "services/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/fio.hpp"

using namespace storm;

namespace {

cloud::CloudConfig small_config() {
  cloud::CloudConfig config;
  config.compute_hosts = 3;
  config.storage_hosts = 2;
  config.link_delay = sim::microseconds(15);
  return config;
}

// ------------------------------------------------------------ Placement

TEST(Placement, HostPartitionMappingIsDeterministicAndStable) {
  const cloud::CloudConfig config = small_config();
  // Two identically configured clouds must agree on every assignment,
  // and every assignment must be a real data partition (not 0, which is
  // reserved for the shared fabric + control plane).
  sim::Simulator sim_a(cloud::Cloud::parallel_config(config, 1));
  sim::Simulator sim_b(cloud::Cloud::parallel_config(config, 1));
  cloud::Cloud a(sim_a, config);
  cloud::Cloud b(sim_b, config);

  ASSERT_EQ(sim_a.partition_count(),
            1 + config.compute_hosts + config.storage_hosts);
  for (unsigned i = 0; i < config.compute_hosts; ++i) {
    EXPECT_EQ(a.host_partition(i), b.host_partition(i));
    EXPECT_GE(a.host_partition(i), 1u);
    EXPECT_LT(a.host_partition(i), sim_a.partition_count());
  }
  for (unsigned i = 0; i < config.storage_hosts; ++i) {
    EXPECT_EQ(a.storage_partition(i), b.storage_partition(i));
    EXPECT_GE(a.storage_partition(i), 1u);
  }
  // Distinct hosts land on distinct partitions while partitions are
  // plentiful (one per physical host group).
  std::set<std::uint32_t> used;
  for (unsigned i = 0; i < config.compute_hosts; ++i) {
    used.insert(a.host_partition(i));
  }
  for (unsigned i = 0; i < config.storage_hosts; ++i) {
    used.insert(a.storage_partition(i));
  }
  EXPECT_EQ(used.size(), config.compute_hosts + config.storage_hosts);

  // A VM's components live on its host's partition (the 0-delay virtio
  // link must never span partitions).
  cloud::Vm& vm = a.create_vm("vm0", "t", 1);
  EXPECT_EQ(vm.node().executor().partition_id(), a.host_partition(1));
}

TEST(Placement, Partition0PolicyAndSinglePartitionSimDegenerate) {
  cloud::CloudConfig config = small_config();

  // Single-partition simulator: every mapping collapses to 0.
  sim::Simulator single;
  cloud::Cloud classic(single, config);
  for (unsigned i = 0; i < config.compute_hosts; ++i) {
    EXPECT_EQ(classic.host_partition(i), 0u);
  }
  EXPECT_EQ(classic.storage_partition(0), 0u);

  // Partitioned simulator but the kPartition0 policy: same collapse.
  config.placement = cloud::PlacementPolicy::kPartition0;
  sim::Simulator parted(cloud::Cloud::parallel_config(config, 2));
  cloud::Cloud pinned(parted, config);
  for (unsigned i = 0; i < config.compute_hosts; ++i) {
    EXPECT_EQ(pinned.host_partition(i), 0u);
  }
  EXPECT_EQ(pinned.storage_partition(1), 0u);
}

TEST(Placement, AutoLookaheadDerivesFromSpanningLinksWithNoViolations) {
  const cloud::CloudConfig config = small_config();
  sim::Simulator sim(cloud::Cloud::parallel_config(config, 2));
  cloud::Cloud cloud(sim, config);

  cloud::Vm& vm = cloud.create_vm("vm0", "t", 0);
  ASSERT_TRUE(cloud.create_volume("vol0", 4096).is_ok());
  bool attached = false;
  cloud.attach_volume(vm, "vol0",
                      [&](Status s, cloud::Attachment) {
                        attached = s.is_ok();
                      });
  sim.run();
  ASSERT_TRUE(attached);

  // Every partition-spanning link was wired with config.link_delay, so
  // the derived conservative lookahead is exactly that — and no event
  // may ever need to cross faster.
  EXPECT_EQ(sim.lookahead(), config.link_delay);
  EXPECT_EQ(sim.lookahead_violations(), 0u);
}

// One multi-tenant scenario with chains, faults and recovery: the
// byte-identity witness for the whole placement layer. Returns the
// merged telemetry dump.
std::string run_tenant_scenario(unsigned threads) {
  const cloud::CloudConfig config = small_config();
  sim::Simulator sim(cloud::Cloud::parallel_config(config, threads));
  cloud::Cloud cloud(sim, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  // Three tenants on three hosts, volumes striped over both storage
  // hosts, three different relay modes.
  const core::RelayMode modes[] = {core::RelayMode::kActive,
                                   core::RelayMode::kPassive,
                                   core::RelayMode::kForward};
  std::vector<cloud::Vm*> vms;
  std::vector<core::DeploymentHandle> deployments(3);
  for (unsigned t = 0; t < 3; ++t) {
    vms.push_back(&cloud.create_vm("vm" + std::to_string(t),
                                   "tenant" + std::to_string(t), t, 2));
    EXPECT_TRUE(
        cloud.create_volume("vol" + std::to_string(t), 64 * 1024, t % 2)
            .is_ok());
    core::ServiceSpec spec;
    spec.type = modes[t] == core::RelayMode::kForward ? "noop"
                                                      : "stream_cipher";
    spec.relay = modes[t];
    platform.attach_with_chain(
        "vm" + std::to_string(t), "vol" + std::to_string(t), {spec},
        [&deployments, t](Result<core::DeploymentHandle> r) {
          ASSERT_TRUE(r.is_ok()) << r.status().to_string();
          deployments[t] = r.value();
        });
  }
  sim.run();
  for (auto& d : deployments) EXPECT_TRUE(d.valid());

  std::vector<std::unique_ptr<workload::FioRunner>> runners;
  for (unsigned t = 0; t < 3; ++t) {
    workload::FioConfig fio_config;
    fio_config.request_bytes = 16 * 1024;
    fio_config.jobs = 2;
    fio_config.duration = sim::milliseconds(400);
    fio_config.seed = 7 + t;
    runners.push_back(std::make_unique<workload::FioRunner>(
        vms[t]->node().executor(), *vms[t]->disk(), fio_config));
    runners.back()->start([](workload::FioResult) {});
  }

  // fig13-style chaos while the workloads run: power-fail the active
  // relay's box and bring it back. The handle calls self-defer to the
  // window barrier when invoked from a partition thread.
  sim.schedule_in(sim::milliseconds(120), [&deployments] {
    (void)deployments[0].crash_middlebox(0);
  });
  sim.schedule_in(sim::milliseconds(200), [&deployments] {
    (void)deployments[0].restart_middlebox(0);
  });
  sim.run();

  EXPECT_EQ(sim.lookahead_violations(), 0u);
  return sim.telemetry_json();
}

TEST(Placement, MultiTenantChaosRunIsByteIdenticalAcrossThreadCounts) {
  const std::string one = run_tenant_scenario(1);
  const std::string four = run_tenant_scenario(4);
  const std::string eight = run_tenant_scenario(8);
  ASSERT_EQ(one, four) << "1-thread vs 4-thread";
  ASSERT_EQ(one, eight) << "1-thread vs 8-thread";
  // Guard against the scenario degenerating to an empty dump.
  EXPECT_NE(one.find("iscsi"), std::string::npos);
}

// ---------------------------------------------------------- MailboxBatch

// A two-partition ping-pong with staggered timestamps from both sides:
// execution order on each side must match the (when, src, seq) merge
// contract at any thread count, and the sender-side outboxes must
// coalesce multiple sends per window into fewer inbox locks.
std::vector<int> run_pingpong(unsigned threads, sim::Simulator** out_sim,
                              std::unique_ptr<sim::Simulator>* keep) {
  sim::ParallelConfig pc;
  pc.partitions = 3;
  pc.threads = threads;
  pc.lookahead = sim::microseconds(10);
  auto sim = std::make_unique<sim::Simulator>(pc);
  auto order = std::make_shared<std::vector<int>>();

  // Partitions 1 and 2 both mail partition 0 three events per round at
  // identical timestamps; the merge must order them by (src, seq).
  for (std::uint32_t p = 1; p <= 2; ++p) {
    for (int round = 0; round < 8; ++round) {
      sim.get()->executor(p).schedule(
          sim::microseconds(5) + sim::microseconds(20) * round,
          [sim = sim.get(), order, p, round] {
            for (int k = 0; k < 3; ++k) {
              sim->executor(0).schedule_in(
                  sim::microseconds(15),
                  [order, p, round, k] {
                    order->push_back(static_cast<int>(p) * 1000 +
                                     round * 10 + k);
                  });
            }
          });
    }
  }
  sim->run();
  *out_sim = sim.get();
  *keep = std::move(sim);
  return *order;
}

TEST(MailboxBatch, MergeOrderIsIdenticalAcrossThreadCounts) {
  sim::Simulator* s1 = nullptr;
  sim::Simulator* s3 = nullptr;
  std::unique_ptr<sim::Simulator> keep1, keep3;
  const std::vector<int> one = run_pingpong(1, &s1, &keep1);
  const std::vector<int> three = run_pingpong(3, &s3, &keep3);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, three);

  // Same-timestamp mail from partition 1 sorts before partition 2, and
  // each source's own sends stay FIFO.
  for (int round = 0; round < 8; ++round) {
    std::vector<int> expect;
    for (int p = 1; p <= 2; ++p) {
      for (int k = 0; k < 3; ++k) expect.push_back(p * 1000 + round * 10 + k);
    }
    const std::vector<int> got(one.begin() + round * 6,
                               one.begin() + round * 6 + 6);
    EXPECT_EQ(got, expect) << "round " << round;
  }
}

TEST(MailboxBatch, CoalescesPostsAndCountsDeterministically) {
  sim::Simulator* a = nullptr;
  sim::Simulator* b = nullptr;
  std::unique_ptr<sim::Simulator> keep_a, keep_b;
  run_pingpong(1, &a, &keep_a);
  run_pingpong(3, &b, &keep_b);
  // 3 same-window posts per sender per round: strictly fewer batches
  // than posts proves the per-(src,dst) coalescing works.
  EXPECT_GT(a->mailbox_posts(), 0u);
  EXPECT_LT(a->mailbox_batches(), a->mailbox_posts());
  // The batch/post counters are part of the deterministic surface.
  EXPECT_EQ(a->mailbox_posts(), b->mailbox_posts());
  EXPECT_EQ(a->mailbox_batches(), b->mailbox_batches());
}

TEST(MailboxBatch, CrossPartitionCancellationIsHonored) {
  sim::ParallelConfig pc;
  pc.partitions = 2;
  pc.threads = 2;
  pc.lookahead = sim::microseconds(10);
  sim::Simulator sim(pc);
  auto fired = std::make_shared<std::atomic<int>>(0);

  // From partition 1's context: mail partition 0 two events, cancel one
  // before the window ships it.
  sim.executor(1).schedule(sim::microseconds(5), [&sim, fired] {
    sim::CancelToken keep = sim.executor(0).schedule_in(
        sim::microseconds(25), [fired] { fired->fetch_add(1); });
    sim::CancelToken drop = sim.executor(0).schedule_in(
        sim::microseconds(25), [fired] { fired->fetch_add(100); });
    drop.cancel();
    EXPECT_TRUE(keep.armed());
    EXPECT_FALSE(drop.armed());
  });
  sim.run();
  EXPECT_EQ(fired->load(), 1);
}

// --------------------------------------------------------- ControlBarrier

TEST(ControlBarrier, RunsInlineOnSinglePartitionSimulators) {
  sim::Simulator sim;
  bool ran = false;
  sim.at_barrier([&] { ran = true; });
  EXPECT_TRUE(ran);  // no deferral: classic kernel semantics
  EXPECT_FALSE(sim::Simulator::in_partition_context());
}

TEST(ControlBarrier, DeferredRequestsRunInTimeSourceSeqOrder) {
  auto run_once = [](unsigned threads) {
    sim::ParallelConfig pc;
    pc.partitions = 3;
    pc.threads = threads;
    pc.lookahead = sim::microseconds(10);
    sim::Simulator sim(pc);
    auto order = std::make_shared<std::vector<int>>();
    // Both data partitions request barriers from inside their own
    // events, at interleaved timestamps.
    for (std::uint32_t p = 1; p <= 2; ++p) {
      for (int i = 0; i < 4; ++i) {
        sim.executor(p).schedule(
            sim::microseconds(3 + 7 * i),
            [&sim, order, p, i] {
              EXPECT_TRUE(sim::Simulator::in_partition_context());
              sim.at_barrier([order, p, i] {
                order->push_back(static_cast<int>(p) * 10 + i);
              });
            });
      }
    }
    sim.run();
    return *order;
  };
  const std::vector<int> one = run_once(1);
  const std::vector<int> three = run_once(3);
  ASSERT_EQ(one.size(), 8u);
  EXPECT_EQ(one, three);
  // Same request time on both partitions → partition 1 first.
  for (std::size_t i = 0; i + 1 < one.size(); i += 2) {
    EXPECT_EQ(one[i] / 10, 1);
    EXPECT_EQ(one[i + 1] / 10, 2);
    EXPECT_EQ(one[i] % 10, one[i + 1] % 10);
  }
}

TEST(ControlBarrier, NestedBarrierRequestsRunInline) {
  sim::ParallelConfig pc;
  pc.partitions = 2;
  pc.threads = 2;
  pc.lookahead = sim::microseconds(10);
  sim::Simulator sim(pc);
  auto log = std::make_shared<std::vector<std::string>>();
  sim.executor(1).schedule(sim::microseconds(5), [&sim, log] {
    sim.at_barrier([&sim, log] {
      log->push_back("outer");
      // Barrier context is not a partition context: nested requests
      // (e.g. attach_volume called from a barrier-deferred control op)
      // must run immediately, not deadlock waiting for the next window.
      sim.at_barrier([log] { log->push_back("inner"); });
      log->push_back("after");
    });
  });
  sim.run();
  const std::vector<std::string> expect = {"outer", "inner", "after"};
  EXPECT_EQ(*log, expect);
}

}  // namespace
