#include <gtest/gtest.h>

#include "block/volume.hpp"
#include "crypto/sha256.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/pdu.hpp"
#include "iscsi/remote_disk.hpp"
#include "iscsi/target.hpp"
#include "testutil.hpp"

namespace storm::iscsi {
namespace {

using testutil::ip;

// --- PDU codec ---------------------------------------------------------------

TEST(Pdu, SerializeParseRoundTrip) {
  Pdu pdu;
  pdu.opcode = Opcode::kScsiCommand;
  pdu.flags = kFlagFinal | kFlagRead;
  pdu.task_tag = 77;
  pdu.lba = 123456789ull;
  pdu.transfer_length = 64 * 1024;
  pdu.data_offset = 4096;
  pdu.text = "iqn=iqn.2016-01.org.storm:s:volume-1";
  pdu.data = testutil::pattern_bytes(1000);

  Bytes wire = serialize(pdu);
  // Strip the length prefix for parse_pdu.
  auto result = parse_pdu(
      std::span<const std::uint8_t>(wire.data() + 4, wire.size() - 4));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const Pdu& back = result.value();
  EXPECT_EQ(back.opcode, pdu.opcode);
  EXPECT_EQ(back.flags, pdu.flags);
  EXPECT_EQ(back.task_tag, pdu.task_tag);
  EXPECT_EQ(back.lba, pdu.lba);
  EXPECT_EQ(back.transfer_length, pdu.transfer_length);
  EXPECT_EQ(back.data_offset, pdu.data_offset);
  EXPECT_EQ(back.text, pdu.text);
  EXPECT_EQ(back.data, pdu.data);
}

TEST(Pdu, ParseRejectsCorruptedData) {
  Pdu pdu = make_data_out(1, 0, testutil::pattern_bytes(100), true);
  Bytes wire = serialize(pdu);
  wire[wire.size() - 20] ^= 0xFF;  // flip a data byte: digest must catch it
  auto result = parse_pdu(
      std::span<const std::uint8_t>(wire.data() + 4, wire.size() - 4));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kParseError);
}

TEST(Pdu, ParseRejectsTruncated) {
  Pdu pdu = make_read_command(1, 0, 4096);
  Bytes wire = serialize(pdu);
  auto result = parse_pdu(
      std::span<const std::uint8_t>(wire.data() + 4, wire.size() - 10));
  EXPECT_FALSE(result.is_ok());
}

TEST(StreamParser, ReassemblesAcrossArbitrarySegmentation) {
  // Three PDUs, fed one byte at a time.
  Bytes stream;
  std::vector<Pdu> originals;
  originals.push_back(make_login_request("iqn.test"));
  originals.push_back(make_write_command(5, 100, 4096));
  originals.push_back(make_data_out(5, 0, testutil::pattern_bytes(4096), true));
  for (const auto& pdu : originals) {
    Bytes wire = serialize(pdu);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  StreamParser parser;
  std::vector<Pdu> got;
  for (std::uint8_t byte : stream) {
    ASSERT_TRUE(parser.feed(std::span<const std::uint8_t>(&byte, 1), got)
                    .is_ok());
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].opcode, Opcode::kLoginRequest);
  EXPECT_EQ(got[1].opcode, Opcode::kScsiCommand);
  EXPECT_EQ(got[2].data.size(), 4096u);
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(StreamParser, HandlesBatchedPdus) {
  Bytes stream;
  for (int i = 0; i < 10; ++i) {
    Bytes wire = serialize(make_read_command(static_cast<std::uint32_t>(i),
                                             static_cast<std::uint64_t>(i),
                                             512));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  StreamParser parser;
  std::vector<Pdu> got;
  ASSERT_TRUE(parser.feed(stream, got).is_ok());
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].task_tag,
              static_cast<std::uint32_t>(i));
  }
}

// --- end-to-end initiator/target over the fabric ------------------------------

class IscsiEndToEnd : public ::testing::Test {
 protected:
  IscsiEndToEnd()
      : net_(), volumes_(net_.sim, "storage1", 1'000'000),
        target_(net_.b, volumes_) {
    volume_ = volumes_.create("vol1", 10'000).value();
    target_.start();
  }

  std::unique_ptr<Initiator> make_initiator(const std::string& iqn) {
    return std::make_unique<Initiator>(
        net_.a, net::SocketAddr{ip("10.0.0.2"), kIscsiPort}, iqn);
  }

  testutil::TwoNodeNet net_;
  block::VolumeManager volumes_;
  Target target_;
  block::Volume* volume_ = nullptr;
};

TEST_F(IscsiEndToEnd, LoginSucceedsForKnownIqn) {
  auto initiator = make_initiator(volume_->iqn());
  Status login_status = error(ErrorCode::kIoError, "unset");
  initiator->login([&](Status s) { login_status = s; });
  net_.sim.run();
  EXPECT_TRUE(login_status.is_ok()) << login_status.to_string();
  EXPECT_TRUE(initiator->logged_in());
  ASSERT_EQ(target_.sessions().size(), 1u);
  EXPECT_EQ(target_.sessions()[0].iqn, volume_->iqn());
}

TEST_F(IscsiEndToEnd, LoginFailsForUnknownIqn) {
  auto initiator = make_initiator("iqn.bogus");
  Status login_status = Status::ok();
  initiator->login([&](Status s) { login_status = s; });
  net_.sim.run();
  EXPECT_EQ(login_status.code(), ErrorCode::kPermissionDenied);
}

TEST_F(IscsiEndToEnd, WriteThenReadRoundTrips) {
  auto initiator = make_initiator(volume_->iqn());
  initiator->login([](Status s) { ASSERT_TRUE(s.is_ok()); });
  net_.sim.run();

  Bytes data = testutil::pattern_bytes(8 * block::kSectorSize);
  bool write_done = false;
  initiator->write(100, data, [&](Status s) {
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    write_done = true;
  });
  net_.sim.run();
  EXPECT_TRUE(write_done);
  // Data must actually be on the backing volume.
  EXPECT_EQ(volume_->disk().store().read_sync(100, 8), data);

  Bytes read_back;
  initiator->read(100, 8, [&](Status s, Bytes got) {
    ASSERT_TRUE(s.is_ok());
    read_back = std::move(got);
  });
  net_.sim.run();
  EXPECT_EQ(read_back, data);
}

TEST_F(IscsiEndToEnd, LargeTransferSpansManySegments) {
  auto initiator = make_initiator(volume_->iqn());
  initiator->login([](Status) {});
  net_.sim.run();

  // 1 MB write: 16 Data segments at 64 KB each.
  Bytes data = testutil::pattern_bytes(2048 * block::kSectorSize);
  bool done = false;
  initiator->write(0, data, [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    done = true;
  });
  net_.sim.run();
  ASSERT_TRUE(done);

  Bytes got;
  initiator->read(0, 2048, [&](Status s, Bytes data_in) {
    ASSERT_TRUE(s.is_ok());
    got = std::move(data_in);
  });
  net_.sim.run();
  EXPECT_EQ(crypto::sha256(got), crypto::sha256(data));
}

TEST_F(IscsiEndToEnd, ConcurrentCommandsComplete) {
  auto initiator = make_initiator(volume_->iqn());
  initiator->login([](Status) {});
  net_.sim.run();

  int completed = 0;
  for (int i = 0; i < 16; ++i) {
    Bytes data = testutil::pattern_bytes(4 * block::kSectorSize,
                                         static_cast<std::uint8_t>(i + 1));
    initiator->write(static_cast<std::uint64_t>(i) * 4, data,
                     [&](Status s) {
                       EXPECT_TRUE(s.is_ok());
                       ++completed;
                     });
  }
  net_.sim.run();
  EXPECT_EQ(completed, 16);
  EXPECT_EQ(target_.commands_served(), 16u);
}

TEST_F(IscsiEndToEnd, ReadBeyondVolumeFails) {
  auto initiator = make_initiator(volume_->iqn());
  initiator->login([](Status) {});
  net_.sim.run();
  Status status = Status::ok();
  initiator->read(9999, 100, [&](Status s, Bytes) { status = s; });
  net_.sim.run();
  EXPECT_EQ(status.code(), ErrorCode::kIoError);
}

TEST_F(IscsiEndToEnd, CommandBeforeLoginFails) {
  auto initiator = make_initiator(volume_->iqn());
  Status status = Status::ok();
  initiator->read(0, 1, [&](Status s, Bytes) { status = s; });
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
}

TEST_F(IscsiEndToEnd, SessionCloseFailsOutstandingCommands) {
  auto initiator = make_initiator(volume_->iqn());
  initiator->login([](Status) {});
  net_.sim.run();

  Status write_status = Status::ok();
  bool failure_seen = false;
  initiator->set_on_failure([&](Status) { failure_seen = true; });
  initiator->write(0, testutil::pattern_bytes(block::kSectorSize),
                   [&](Status s) { write_status = s; });
  // Kill the session before the write can be served.
  EXPECT_EQ(target_.close_sessions_for(volume_->iqn()), 1u);
  net_.sim.run();
  EXPECT_EQ(write_status.code(), ErrorCode::kConnectionFailed);
  EXPECT_TRUE(failure_seen);
  EXPECT_FALSE(initiator->logged_in());
}

TEST_F(IscsiEndToEnd, SourcePortExposedForAttribution) {
  auto initiator = make_initiator(volume_->iqn());
  initiator->login([](Status) {});
  net_.sim.run();
  ASSERT_EQ(target_.sessions().size(), 1u);
  // The port the initiator reports must match what the target observes —
  // this is the join key for StorM's connection attribution.
  EXPECT_EQ(target_.sessions()[0].tuple.dst.port, initiator->source_port());
}

TEST_F(IscsiEndToEnd, RemoteDiskAdapterWorks) {
  auto initiator = make_initiator(volume_->iqn());
  initiator->login([](Status) {});
  net_.sim.run();

  RemoteDisk disk(*initiator, volume_->disk().num_sectors());
  EXPECT_EQ(disk.num_sectors(), 10'000u);
  Bytes data = testutil::pattern_bytes(2 * block::kSectorSize);
  disk.write(50, data, [](Status s) { ASSERT_TRUE(s.is_ok()); });
  net_.sim.run();
  Bytes got;
  disk.read(50, 2, [&](Status s, Bytes d) {
    ASSERT_TRUE(s.is_ok());
    got = std::move(d);
  });
  net_.sim.run();
  EXPECT_EQ(got, data);

  Status status = Status::ok();
  disk.read(9999, 2, [&](Status s, Bytes) { status = s; });
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

TEST_F(IscsiEndToEnd, TwoVolumesTwoSessions) {
  block::Volume* volume2 = volumes_.create("vol2", 5'000).value();
  auto init1 = make_initiator(volume_->iqn());
  auto init2 = make_initiator(volume2->iqn());
  init1->login([](Status) {});
  init2->login([](Status) {});
  net_.sim.run();
  EXPECT_EQ(target_.sessions().size(), 2u);
  EXPECT_NE(init1->source_port(), init2->source_port());

  // Writes land on their own volumes.
  init1->write(0, Bytes(block::kSectorSize, 0x11), [](Status) {});
  init2->write(0, Bytes(block::kSectorSize, 0x22), [](Status) {});
  net_.sim.run();
  EXPECT_EQ(volume_->disk().store().read_sync(0, 1)[0], 0x11);
  EXPECT_EQ(volume2->disk().store().read_sync(0, 1)[0], 0x22);
}

}  // namespace
}  // namespace storm::iscsi
