// Elastic chain scale-out suite: replica pools shared by every flow of a
// tenant (policy stanza `replicas N`), consistent-hash flow pinning,
// migration-based scale-up/-down that never fails an in-flight write,
// the QoS-driven autoscaler, and the seeded many-tenant determinism run
// whose telemetry must be byte-identical at any worker-thread count.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/cloud.hpp"
#include "core/autoscaler.hpp"
#include "core/platform.hpp"
#include "core/sdn_controller.hpp"
#include "iscsi/pdu.hpp"
#include "services/registry.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"
#include "workload/fio.hpp"

namespace storm {
namespace {

using core::DeploymentHandle;
using core::FlowHashRing;
using core::RelayMode;
using core::ReplicaSet;
using core::ServiceSpec;

ServiceSpec pooled_spec(unsigned count, unsigned min_count,
                        unsigned max_count) {
  ServiceSpec spec;
  spec.type = "noop";
  spec.relay = RelayMode::kActive;
  spec.replicas.enabled = true;
  spec.replicas.count = count;
  spec.replicas.min_count = min_count;
  spec.replicas.max_count = max_count;
  return spec;
}

class ScaleoutTest : public ::testing::Test {
 protected:
  ScaleoutTest() : cloud_(sim_, config()), platform_(cloud_) {
    services::register_builtin_services(platform_);
  }

  static cloud::CloudConfig config() {
    cloud::CloudConfig config;
    config.compute_hosts = 4;
    config.storage_hosts = 2;
    return config;
  }

  DeploymentHandle deploy(const std::string& vm, const std::string& vol,
                          std::vector<ServiceSpec> chain) {
    Status status = error(ErrorCode::kIoError, "unset");
    DeploymentHandle deployment;
    platform_.attach_with_chain(vm, vol, std::move(chain),
                                [&](Result<DeploymentHandle> r) {
                                  status = r.status();
                                  if (r.is_ok()) deployment = r.value();
                                });
    sim_.run();
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return deployment;
  }

  /// One write+read roundtrip through the chain; returns true when both
  /// complete OK and the data survives.
  bool roundtrip(cloud::Vm& vm, std::uint64_t lba) {
    const Bytes data = testutil::pattern_bytes(4 * block::kSectorSize,
                                               static_cast<std::uint8_t>(lba));
    int state = 0;
    Bytes got;
    vm.disk()->write(lba, data, [&](Status s) {
      if (!s.is_ok()) {
        state = -1;
        return;
      }
      vm.disk()->read(lba, 4, [&](Status rs, Bytes bytes) {
        state = rs.is_ok() ? 1 : -1;
        got = std::move(bytes);
      });
    });
    sim_.run();
    return state == 1 && got == data;
  }

  sim::Simulator sim_;
  cloud::Cloud cloud_;
  core::StormPlatform platform_;
};

// ------------------------------------------------------------ replica sets

TEST_F(ScaleoutTest, ReplicaPoolIsSharedAndSpreadAcrossHosts) {
  cloud::Vm& vm0 = cloud_.create_vm("vm0", "t", 0);
  cloud::Vm& vm1 = cloud_.create_vm("vm1", "t", 1);
  ASSERT_TRUE(cloud_.create_volume("vol0", 20'000, 0).is_ok());
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000, 1).is_ok());

  DeploymentHandle dep0 = deploy("vm0", "vol0", {pooled_spec(3, 1, 3)});
  DeploymentHandle dep1 = deploy("vm1", "vol1", {pooled_spec(3, 1, 3)});
  ASSERT_TRUE(dep0.valid());
  ASSERT_TRUE(dep1.valid());

  // One pool of exactly three replicas serves both flows: the second
  // attach joined the pool instead of provisioning its own boxes.
  const ReplicaSet* set = platform_.replica_set("t", "noop");
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->replicas.size(), 3u);
  EXPECT_TRUE(set->parked.empty());
  EXPECT_EQ(set->ring.node_count(), 3u);
  EXPECT_EQ(set->assignments.size(), 2u);

  // Replicas land on distinct hosts — losing one host must never take
  // two replicas with it.
  std::set<unsigned> hosts;
  for (const auto& replica : set->replicas) {
    EXPECT_TRUE(replica->pooled);
    EXPECT_FALSE(replica->replica_label.empty());
    ASSERT_NE(replica->active_relay, nullptr);
    hosts.insert(replica->vm->host_index());
  }
  EXPECT_EQ(hosts.size(), 3u);

  // Both flows carry real data through their pinned replica.
  EXPECT_TRUE(roundtrip(vm0, 0));
  EXPECT_TRUE(roundtrip(vm1, 64));
}

TEST_F(ScaleoutTest, FlowPinningFollowsTheConsistentHashRing) {
  cloud_.create_vm("vm0", "t", 0);
  cloud_.create_vm("vm1", "t", 1);
  ASSERT_TRUE(cloud_.create_volume("vol0", 20'000, 0).is_ok());
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000, 1).is_ok());
  DeploymentHandle deps[] = {deploy("vm0", "vol0", {pooled_spec(3, 1, 3)}),
                             deploy("vm1", "vol1", {pooled_spec(3, 1, 3)})};

  const ReplicaSet* set = platform_.replica_set("t", "noop");
  ASSERT_NE(set, nullptr);
  for (DeploymentHandle& dep : deps) {
    const core::SpliceContext* splice = dep.splice();
    ASSERT_NE(splice, nullptr);
    // The recorded assignment is exactly what the ring computes from the
    // flow's iSCSI 4-tuple, and the deployment's chain hop is that
    // replica's relay — not a private instance.
    const std::string& expected = set->ring.assign(FlowHashRing::flow_key(
        splice->host_storage_ip, splice->vm_port, splice->target_ip,
        iscsi::kIscsiPort));
    ASSERT_TRUE(set->assignments.contains(dep.cookie()));
    EXPECT_EQ(set->assignments.at(dep.cookie()), expected);
    const core::MiddleboxInstance* pinned = set->find(expected);
    ASSERT_NE(pinned, nullptr);
    EXPECT_EQ(dep.active_relay(0), pinned->active_relay.get());
  }
}

// ------------------------------------------------------- scale-up / down

TEST_F(ScaleoutTest, ScaleUpMigratesFlowsWithZeroFailedWrites) {
  std::vector<cloud::Vm*> vms;
  std::vector<DeploymentHandle> deps;
  for (unsigned t = 0; t < 3; ++t) {
    vms.push_back(&cloud_.create_vm("vm" + std::to_string(t), "t", t));
    ASSERT_TRUE(
        cloud_.create_volume("vol" + std::to_string(t), 20'000, t % 2)
            .is_ok());
    deps.push_back(deploy("vm" + std::to_string(t),
                          "vol" + std::to_string(t),
                          {pooled_spec(1, 1, 3)}));
  }
  const ReplicaSet* set = platform_.replica_set("t", "noop");
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->replicas.size(), 1u) << "all three flows start on one box";

  std::vector<workload::FioResult> results(3);
  std::vector<bool> finished(3, false);
  std::vector<std::unique_ptr<workload::FioRunner>> runners;
  for (unsigned t = 0; t < 3; ++t) {
    workload::FioConfig fio;
    fio.request_bytes = 8 * 1024;
    fio.jobs = 2;
    fio.duration = sim::milliseconds(120);
    fio.seed = 5 + t;
    runners.push_back(std::make_unique<workload::FioRunner>(
        vms[t]->node().executor(), *vms[t]->disk(), fio));
    runners.back()->start([&results, &finished, t](workload::FioResult r) {
      results[t] = r;
      finished[t] = true;
    });
  }

  Status scale_status = error(ErrorCode::kIoError, "unset");
  sim_.schedule_in(sim::milliseconds(30), [&] {
    platform_.scale_service_replicas("t", "noop", 3,
                                     [&](Status s) { scale_status = s; });
  });
  sim_.run();

  EXPECT_TRUE(scale_status.is_ok()) << scale_status.to_string();
  EXPECT_EQ(set->replicas.size(), 3u);
  EXPECT_EQ(set->ring.node_count(), 3u);

  // The rebalance moved at least one flow (atomically, via
  // swap_rules_by_cookie) and after it the flows spread over >1 replica.
  EXPECT_GE(sim_.telemetry().counter("scaleout.migrations").value(), 1u);
  EXPECT_GE(platform_.sdn().rule_swaps(), 1u);
  std::set<std::string> labels;
  for (const auto& [cookie, label] : set->assignments) labels.insert(label);
  EXPECT_GT(labels.size(), 1u);

  // Zero failed or dropped I/O: every op each job issued completed OK
  // (total_ops only counts successes).
  for (unsigned t = 0; t < 3; ++t) {
    ASSERT_TRUE(finished[t]);
    EXPECT_GT(results[t].total_ops, 0u);
    EXPECT_EQ(results[t].read_ops + results[t].write_ops,
              results[t].total_ops)
        << "tenant flow " << t << " lost ops during the migration";
  }
}

TEST_F(ScaleoutTest, DrainBasedScaleDownParksVictimsWithoutDroppingWrites) {
  std::vector<cloud::Vm*> vms;
  for (unsigned t = 0; t < 2; ++t) {
    vms.push_back(&cloud_.create_vm("vm" + std::to_string(t), "t", t));
    ASSERT_TRUE(
        cloud_.create_volume("vol" + std::to_string(t), 20'000, t % 2)
            .is_ok());
    deploy("vm" + std::to_string(t), "vol" + std::to_string(t),
           {pooled_spec(3, 1, 3)});
  }
  const ReplicaSet* set = platform_.replica_set("t", "noop");
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->replicas.size(), 3u);

  std::vector<workload::FioResult> results(2);
  std::vector<bool> finished(2, false);
  std::vector<std::unique_ptr<workload::FioRunner>> runners;
  for (unsigned t = 0; t < 2; ++t) {
    workload::FioConfig fio;
    fio.request_bytes = 8 * 1024;
    fio.jobs = 2;
    fio.duration = sim::milliseconds(120);
    fio.seed = 11 + t;
    runners.push_back(std::make_unique<workload::FioRunner>(
        vms[t]->node().executor(), *vms[t]->disk(), fio));
    runners.back()->start([&results, &finished, t](workload::FioResult r) {
      results[t] = r;
      finished[t] = true;
    });
  }

  Status scale_status = error(ErrorCode::kIoError, "unset");
  sim_.schedule_in(sim::milliseconds(30), [&] {
    platform_.scale_service_replicas("t", "noop", 1,
                                     [&](Status s) { scale_status = s; });
  });
  sim_.run();

  EXPECT_TRUE(scale_status.is_ok()) << scale_status.to_string();
  ASSERT_EQ(set->replicas.size(), 1u);
  EXPECT_EQ(set->parked.size(), 2u);
  EXPECT_EQ(set->ring.node_count(), 1u);
  EXPECT_GE(sim_.telemetry().counter("scaleout.scale_downs").value(), 1u);

  // Every flow drained onto the survivor; the victims are powered off
  // with their journals intact (crash, not destruction).
  const std::string& survivor = set->replicas[0]->replica_label;
  for (const auto& [cookie, label] : set->assignments) {
    EXPECT_EQ(label, survivor);
  }
  for (const auto& parked : set->parked) {
    EXPECT_TRUE(parked->vm->node().is_down());
    ASSERT_NE(parked->active_relay, nullptr);
    EXPECT_TRUE(parked->active_relay->crashed());
  }

  for (unsigned t = 0; t < 2; ++t) {
    ASSERT_TRUE(finished[t]);
    EXPECT_GT(results[t].total_ops, 0u);
    EXPECT_EQ(results[t].read_ops + results[t].write_ops,
              results[t].total_ops)
        << "tenant flow " << t << " lost ops during the drain";
  }

  // The parked replicas are revived — not rebuilt — on the next
  // scale-up.
  scale_status = error(ErrorCode::kIoError, "unset");
  platform_.scale_service_replicas("t", "noop", 2,
                                   [&](Status s) { scale_status = s; });
  sim_.run();
  EXPECT_TRUE(scale_status.is_ok()) << scale_status.to_string();
  EXPECT_EQ(set->replicas.size(), 2u);
  EXPECT_EQ(set->parked.size(), 1u);
  EXPECT_FALSE(set->replicas.back()->vm->node().is_down());
  EXPECT_TRUE(roundtrip(*vms[0], 128));
}

TEST_F(ScaleoutTest, DetachReleasesOnlyItsOwnFlow) {
  cloud_.create_vm("vm0", "t", 0);
  cloud::Vm& vm1 = cloud_.create_vm("vm1", "t", 1);
  ASSERT_TRUE(cloud_.create_volume("vol0", 20'000, 0).is_ok());
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000, 1).is_ok());
  DeploymentHandle dep0 = deploy("vm0", "vol0", {pooled_spec(2, 1, 2)});
  DeploymentHandle dep1 = deploy("vm1", "vol1", {pooled_spec(2, 1, 2)});

  const ReplicaSet* set = platform_.replica_set("t", "noop");
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->assignments.size(), 2u);

  EXPECT_TRUE(dep0.detach().is_ok());
  sim_.run();
  EXPECT_FALSE(dep0.valid());

  // The pool survives the detach — only the detached flow's session and
  // ring assignment are gone; the other tenant flow still carries data.
  EXPECT_EQ(set->replicas.size(), 2u);
  ASSERT_EQ(set->assignments.size(), 1u);
  EXPECT_TRUE(set->assignments.contains(dep1.cookie()));
  for (const auto& replica : set->replicas) {
    EXPECT_FALSE(replica->active_relay->crashed());
  }
  EXPECT_TRUE(roundtrip(vm1, 0));
}

// ------------------------------------------------------------- autoscaler

TEST_F(ScaleoutTest, AutoscalerScalesUpUnderThrottleAndRepricesBucket) {
  core::QosSpec qos;
  qos.enabled = true;
  qos.rate_bytes_per_sec = 2'000'000;
  qos.burst_bytes = 64 * 1024;
  platform_.set_tenant_qos("t", qos);

  cloud::Vm& vm = cloud_.create_vm("vm0", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol0", 40'000, 0).is_ok());
  deploy("vm0", "vol0", {pooled_spec(1, 1, 3)});

  core::AutoscalerConfig cfg;
  cfg.tick_interval = sim::milliseconds(10);
  cfg.scale_up_bytes_per_sec = 1'000'000;
  cfg.scale_down_bytes_per_sec = 64 * 1024;
  cfg.sustain_up_ticks = 2;
  cfg.sustain_down_ticks = 1000;  // never down in this test
  cfg.cooldown = sim::milliseconds(30);
  core::Autoscaler scaler(platform_, cfg);
  scaler.watch_tenant("t", "noop", 1, 3);
  scaler.start();

  // A hot tenant: offered load far above the 2 MB/s admission rate, so
  // the bucket throttles hard and the scaler reads sustained pressure.
  workload::FioConfig fio;
  fio.request_bytes = 32 * 1024;
  fio.jobs = 4;
  fio.write_ratio = 1.0;
  fio.duration = sim::milliseconds(250);
  fio.seed = 21;
  workload::FioResult result;
  bool finished = false;
  workload::FioRunner runner(vm.node().executor(), *vm.disk(), fio);
  runner.start([&](workload::FioResult r) {
    result = r;
    finished = true;
  });
  sim_.run_for(sim::milliseconds(400));
  scaler.stop();
  sim_.run();

  EXPECT_GE(scaler.scale_ups(), 1u);
  EXPECT_EQ(scaler.scale_downs(), 0u);
  const ReplicaSet* set = platform_.replica_set("t", "noop");
  ASSERT_NE(set, nullptr);
  EXPECT_GE(set->replicas.size(), 2u);
  EXPECT_GE(sim_.telemetry().counter("autoscaler.t.scale_ups").value(), 1u);

  // Capacity actually follows the pool: the bucket was re-priced to
  // base_rate * replicas, so the added replica is admittable.
  const net::TokenBucket* bucket = platform_.tenant_qos("t");
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->rate_bytes_per_sec(),
            2'000'000u * set->replicas.size());

  ASSERT_TRUE(finished);
  EXPECT_GT(result.total_ops, 0u);
  EXPECT_EQ(result.read_ops + result.write_ops, result.total_ops)
      << "autoscaling must never fail a write";
}

TEST_F(ScaleoutTest, AutoscalerScalesDownWhenSustainedIdle) {
  core::QosSpec qos;
  qos.enabled = true;
  qos.rate_bytes_per_sec = 4'000'000;
  qos.burst_bytes = 64 * 1024;
  platform_.set_tenant_qos("t", qos);

  cloud_.create_vm("vm0", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol0", 20'000, 0).is_ok());
  deploy("vm0", "vol0", {pooled_spec(2, 1, 2)});

  core::AutoscalerConfig cfg;
  cfg.tick_interval = sim::milliseconds(5);
  cfg.sustain_down_ticks = 3;
  cfg.cooldown = sim::milliseconds(20);
  core::Autoscaler scaler(platform_, cfg);
  scaler.watch_tenant("t", "noop", 1, 2);  // base rate: 4 MB/s over 2
  scaler.start();

  sim_.run_for(sim::milliseconds(150));
  scaler.stop();
  sim_.run();

  EXPECT_GE(scaler.scale_downs(), 1u);
  const ReplicaSet* set = platform_.replica_set("t", "noop");
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->replicas.size(), 1u);
  EXPECT_EQ(set->parked.size(), 1u);
  // The idle replica's admission share left with it.
  const net::TokenBucket* bucket = platform_.tenant_qos("t");
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->rate_bytes_per_sec(), 2'000'000u);
}

// ----------------------------------------------------------- determinism

// Satellite: the seeded many-tenant scale-out run — fio traffic on every
// tenant, one mid-run scale-up and one drain-based scale-down on the hot
// tenant — must produce byte-identical telemetry at 1, 4 and 8 worker
// threads.
std::string run_scaleout_scenario(unsigned threads, unsigned tenants) {
  cloud::CloudConfig config;
  config.compute_hosts = 4;
  config.storage_hosts = 2;
  config.link_delay = sim::microseconds(15);
  sim::Simulator sim(cloud::Cloud::parallel_config(config, threads));
  cloud::Cloud cloud(sim, config);
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);

  std::vector<cloud::Vm*> vms;
  std::vector<DeploymentHandle> deps(tenants);
  for (unsigned t = 0; t < tenants; ++t) {
    const std::string name = std::to_string(t);
    vms.push_back(&cloud.create_vm("vm" + name, "tenant" + name, t % 4));
    EXPECT_TRUE(cloud.create_volume("vol" + name, 20'000, t % 2).is_ok());
    platform.attach_with_chain(
        "vm" + name, "vol" + name, {pooled_spec(1, 1, 3)},
        [&deps, t](Result<DeploymentHandle> r) {
          ASSERT_TRUE(r.is_ok()) << r.status().to_string();
          deps[t] = r.value();
        });
  }
  sim.run();
  for (auto& d : deps) EXPECT_TRUE(d.valid());

  std::vector<std::unique_ptr<workload::FioRunner>> runners;
  for (unsigned t = 0; t < tenants; ++t) {
    workload::FioConfig fio;
    fio.request_bytes = 8 * 1024;
    fio.jobs = 1;
    fio.duration = sim::milliseconds(20);
    fio.seed = 100 + t;
    runners.push_back(std::make_unique<workload::FioRunner>(
        vms[t]->node().executor(), *vms[t]->disk(), fio));
    runners.back()->start([](workload::FioResult) {});
  }

  // The hot tenant scales out under load, then back in via the drain
  // protocol while its flow is still running.
  sim.schedule_in(sim::milliseconds(5), [&platform] {
    platform.scale_service_replicas("tenant0", "noop", 3);
  });
  sim.schedule_in(sim::milliseconds(12), [&platform] {
    platform.scale_service_replicas("tenant0", "noop", 1);
  });
  sim.run();

  EXPECT_EQ(sim.lookahead_violations(), 0u);
  const ReplicaSet* set = platform.replica_set("tenant0", "noop");
  EXPECT_NE(set, nullptr);
  if (set != nullptr) {
    EXPECT_EQ(set->replicas.size(), 1u);
    EXPECT_EQ(set->parked.size(), 2u);
  }
  return sim.telemetry_json();
}

TEST(ScaleoutDeterminism, SeededRunIsByteIdenticalAcrossThreadCounts) {
  constexpr unsigned kTenants = 100;
  const std::string one = run_scaleout_scenario(1, kTenants);
  const std::string four = run_scaleout_scenario(4, kTenants);
  const std::string eight = run_scaleout_scenario(8, kTenants);
  ASSERT_EQ(one, four) << "1-thread vs 4-thread";
  ASSERT_EQ(one, eight) << "1-thread vs 8-thread";
  EXPECT_NE(one.find("scaleout"), std::string::npos)
      << "scenario must actually exercise the scale-out path";
}

}  // namespace
}  // namespace storm
