// Quorum replication + copy-machine rebuild suite: W-of-N write commit,
// the versioned read rotation, and the throttled background rebuild that
// returns a degraded replica to parity (ISSUE 8 tentpole).
#include <gtest/gtest.h>

#include <functional>

#include "core/platform.hpp"
#include "net/qos.hpp"
#include "services/rebuild.hpp"
#include "services/registry.hpp"
#include "services/replication.hpp"
#include "testutil.hpp"

namespace storm::services {
namespace {

using core::DeploymentHandle;
using core::RelayMode;
using core::ServiceSpec;

// --- ExtentSet ----------------------------------------------------------------

TEST(ExtentSet, CoalescesOverlappingAndAdjacentRanges) {
  ExtentSet set;
  set.add(10, 20);
  set.add(30, 40);
  EXPECT_EQ(set.count(), 2u);
  set.add(20, 30);  // bridges the gap
  EXPECT_EQ(set.count(), 1u);
  EXPECT_EQ(set.sectors(), 30u);
  EXPECT_TRUE(set.intersects(15, 16));
  EXPECT_TRUE(set.intersects(0, 11));
  EXPECT_FALSE(set.intersects(0, 10));  // half-open: [0,10) misses [10,40)
  EXPECT_FALSE(set.intersects(40, 50));
}

TEST(ExtentSet, RemoveSplitsAndTakeFrontChunks) {
  ExtentSet set;
  set.add(0, 100);
  set.remove(40, 60);  // splits into [0,40) and [60,100)
  EXPECT_EQ(set.count(), 2u);
  EXPECT_EQ(set.sectors(), 80u);
  EXPECT_FALSE(set.intersects(40, 60));

  auto chunk = set.take_front(32);
  EXPECT_EQ(chunk.first, 0u);
  EXPECT_EQ(chunk.second, 32u);
  chunk = set.take_front(32);
  EXPECT_EQ(chunk.first, 32u);
  EXPECT_EQ(chunk.second, 40u);  // clipped at the extent boundary
  chunk = set.take_front(1000);
  EXPECT_EQ(chunk.first, 60u);
  EXPECT_EQ(chunk.second, 100u);
  EXPECT_TRUE(set.empty());
  chunk = set.take_front(8);
  EXPECT_EQ(chunk.first, 0u);
  EXPECT_EQ(chunk.second, 0u);
}

// --- CopyMachine --------------------------------------------------------------

class CopyMachineTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kSectors = 4096;

  CopyMachineTest() : source_(kSectors), target_(kSectors) {}

  // rate/burst default to "effectively unthrottled" for logic tests.
  std::shared_ptr<CopyMachine> make_machine(
      std::uint64_t rate = 1'000'000'000, std::uint64_t burst = 1 << 20) {
    pacer_ = std::make_unique<net::TokenBucket>(sim_.executor(0), rate, burst);
    CopyMachine::Hooks hooks;
    hooks.read_source = [this](std::uint64_t lba, std::uint32_t sectors,
                               block::BlockDevice::ReadCallback done) {
      if (source_dead_) {
        done(error(ErrorCode::kUnavailable, "no source"), {});
        return;
      }
      if (hold_reads_) {
        held_.push_back([this, lba, sectors, done = std::move(done)] {
          source_.read(lba, sectors, done);
        });
        return;
      }
      source_.read(lba, sectors, std::move(done));
    };
    hooks.on_chunk = [this](std::uint64_t, std::uint64_t sectors) {
      ++chunks_;
      copied_sectors_ += sectors;
    };
    hooks.on_drained = [this] { ++drained_; };
    hooks.on_target_error = [this](Status) { ++target_errors_; };
    CopyMachine::Config config;
    config.chunk_sectors = 128;
    return std::make_shared<CopyMachine>(sim_.executor(0), *pacer_, &target_,
                                         dirty_, hooks, config);
  }

  sim::Simulator sim_;
  block::MemDisk source_;
  block::MemDisk target_;
  ExtentSet dirty_;
  std::unique_ptr<net::TokenBucket> pacer_;
  bool source_dead_ = false;
  bool hold_reads_ = false;
  std::vector<std::function<void()>> held_;
  int chunks_ = 0;
  int drained_ = 0;
  int target_errors_ = 0;
  std::uint64_t copied_sectors_ = 0;
};

TEST_F(CopyMachineTest, DrainsDirtyExtentsLowestFirstAndMatchesSource) {
  Bytes data = testutil::pattern_bytes(512 * block::kSectorSize);
  source_.write_sync(100, data);
  dirty_.add(100, 612);
  dirty_.add(2000, 2010);
  source_.write_sync(2000, testutil::pattern_bytes(10 * block::kSectorSize, 7));

  auto machine = make_machine();
  machine->kick();
  sim_.run();

  EXPECT_EQ(drained_, 1);
  EXPECT_TRUE(dirty_.empty());
  EXPECT_EQ(copied_sectors_, 522u);
  EXPECT_EQ(machine->bytes_copied(), 522u * block::kSectorSize);
  EXPECT_EQ(target_.read_sync(100, 512), data);
  EXPECT_EQ(target_.read_sync(2000, 10), source_.read_sync(2000, 10));
  EXPECT_GE(machine->cursor(), 2010u);
}

TEST_F(CopyMachineTest, TokenBucketPacesTheCopy) {
  // 1 MB dirty at 256 KB/s with a 64 KB burst: the tail ~960 KB must
  // wait for refill, so the drain takes at least ~3.5 simulated seconds.
  dirty_.add(0, 2048);
  auto machine = make_machine(/*rate=*/256 * 1024, /*burst=*/64 * 1024);
  machine->kick();
  sim_.run();

  EXPECT_EQ(drained_, 1);
  EXPECT_TRUE(dirty_.empty());
  EXPECT_GE(sim_.now(), sim::seconds(3));
  EXPECT_GT(pacer_->throttled_bytes(), 0u);
}

TEST_F(CopyMachineTest, HaltDropsInFlightAndPreservesRemainder) {
  dirty_.add(0, 1024);
  // Slow pacer so the copy is still mid-flight when we halt.
  auto machine = make_machine(/*rate=*/64 * 1024, /*burst=*/64 * 1024);
  machine->kick();
  sim_.run_until(sim::milliseconds(500));
  ASSERT_GT(chunks_, 0);
  ASSERT_FALSE(dirty_.empty()) << "test needs a mid-flight halt";

  const int chunks_at_halt = chunks_;
  machine->halt();
  sim_.run();
  EXPECT_EQ(chunks_, chunks_at_halt) << "no chunk may land after halt()";
  EXPECT_EQ(drained_, 0);
  EXPECT_TRUE(machine->halted());
  EXPECT_FALSE(dirty_.empty()) << "the remainder stays for the owner";
}

TEST_F(CopyMachineTest, SourceErrorStallsUntilKicked) {
  dirty_.add(0, 256);
  source_dead_ = true;
  auto machine = make_machine();
  machine->kick();
  sim_.run();

  EXPECT_EQ(drained_, 0);
  EXPECT_EQ(chunks_, 0);
  EXPECT_FALSE(machine->in_flight());
  EXPECT_FALSE(dirty_.empty()) << "failed chunk must be re-planned";

  source_dead_ = false;
  machine->kick();  // the owner's health probe re-kicks a stalled machine
  sim_.run();
  EXPECT_EQ(drained_, 1);
  EXPECT_TRUE(dirty_.empty());
}

TEST_F(CopyMachineTest, ActiveChunkExposesTheInFlightRange) {
  dirty_.add(0, 64);
  // Hold the source read so the chunk is observably in flight: this is
  // the window where a foreground write overlapping [0, 64) must be
  // routed to dirty instead of written through (stale-overwrite race).
  hold_reads_ = true;
  auto machine = make_machine();
  EXPECT_EQ(machine->active_chunk(), std::make_pair(std::uint64_t{0},
                                                    std::uint64_t{0}));
  machine->kick();
  ASSERT_EQ(held_.size(), 1u);
  EXPECT_TRUE(machine->in_flight());
  auto active = machine->active_chunk();
  EXPECT_EQ(active.first, 0u);
  EXPECT_EQ(active.second, 64u);

  hold_reads_ = false;
  held_[0]();  // complete the held read; the chunk lands on the target
  sim_.run();
  EXPECT_EQ(machine->active_chunk(), std::make_pair(std::uint64_t{0},
                                                    std::uint64_t{0}));
  EXPECT_EQ(drained_, 1);
}

// --- quorum replication through the platform ----------------------------------

class QuorumTest : public ::testing::Test {
 protected:
  QuorumTest() : cloud_(sim_, cloud::CloudConfig{}), platform_(cloud_) {
    register_builtin_services(platform_);
  }

  /// Deploy replication with a quorum stanza: `replicas` backup volumes,
  /// commit at `w` of 1+replicas copies.
  void setup(int replicas, unsigned w,
             std::uint64_t rebuild_rate = 64 * 1024 * 1024) {
    vm_ = &cloud_.create_vm("db", "alice", 0);
    ASSERT_TRUE(cloud_.create_volume("primary", 40'000).is_ok());
    std::string names;
    for (int i = 0; i < replicas; ++i) {
      std::string name = "replica" + std::to_string(i);
      ASSERT_TRUE(cloud_.create_volume(name, 40'000).is_ok());
      names += (i ? "," : "") + name;
    }
    ServiceSpec spec;
    spec.type = "replication";
    spec.relay = RelayMode::kActive;
    spec.params["replicas"] = names;
    spec.quorum.enabled = true;
    spec.quorum.write_quorum = w;
    spec.quorum.rebuild_rate_bytes_per_sec = rebuild_rate;

    Status status = error(ErrorCode::kIoError, "unset");
    platform_.attach_with_chain("db", "primary", {spec},
                                [&](Result<DeploymentHandle> r) {
                                  status = r.status();
                                  if (r.is_ok()) dep_ = r.value();
                                });
    sim_.run();
    ASSERT_TRUE(status.is_ok()) << status.to_string();
    ASSERT_TRUE(dep_.valid());
    service_ = static_cast<ReplicationService*>(dep_.service(0));
  }

  void write(std::uint64_t lba, const Bytes& data) {
    bool ok = false;
    vm_->disk()->write(lba, data, [&](Status s) {
      ASSERT_TRUE(s.is_ok()) << s.to_string();
      ok = true;
    });
    sim_.run();
    ASSERT_TRUE(ok);
  }

  Bytes read(std::uint64_t lba, std::uint32_t sectors) {
    Bytes got;
    bool ok = false;
    vm_->disk()->read(lba, sectors, [&](Status s, Bytes d) {
      ASSERT_TRUE(s.is_ok()) << s.to_string();
      got = std::move(d);
      ok = true;
    });
    sim_.run();
    EXPECT_TRUE(ok);
    return got;
  }

  block::MemDisk& backing(const std::string& name) {
    return cloud_.storage(0).volumes().find_by_name(name).value()
        ->disk().store();
  }

  void kill_replica_session(int i) {
    auto iqn = cloud_.find_attachment(dep_.mb_vm(0)->name(),
                                      "replica" + std::to_string(i));
    ASSERT_TRUE(iqn.has_value());
    ASSERT_GE(cloud_.storage(0).target().close_sessions_for(iqn->iqn), 1u);
    sim_.run();
  }

  /// Drive the service's probe-hook state machine (re-attach, rebuild
  /// kicks) the way ChainHealthManager would, until the predicate holds.
  void probe_until(const std::function<bool()>& done, int max_probes = 200) {
    for (int i = 0; i < max_probes && !done(); ++i) {
      service_->on_health_probe(sim_.now());
      sim_.run();
    }
    EXPECT_TRUE(done()) << "state machine did not converge";
  }

  sim::Simulator sim_;
  cloud::Cloud cloud_;
  core::StormPlatform platform_;
  cloud::Vm* vm_ = nullptr;
  DeploymentHandle dep_;
  ReplicationService* service_ = nullptr;
};

TEST_F(QuorumTest, WriteCommitsAtWOfNAndLandsEverywhere) {
  setup(/*replicas=*/2, /*w=*/2);
  Bytes data = testutil::pattern_bytes(8 * block::kSectorSize);
  write(100, data);

  EXPECT_EQ(service_->quorum_commits(), 1u);
  EXPECT_EQ(service_->quorum_failures(), 0u);
  EXPECT_EQ(service_->set_version(), 1u);
  EXPECT_EQ(backing("primary").read_sync(100, 8), data);
  EXPECT_EQ(backing("replica0").read_sync(100, 8), data);
  EXPECT_EQ(backing("replica1").read_sync(100, 8), data);
  // Once everything drains, every copy's version-map row is current.
  EXPECT_EQ(service_->replica_version(0), 1u);
  EXPECT_EQ(service_->replica_version(1), 1u);
}

TEST_F(QuorumTest, VersionMapAdvancesOncePerBurst) {
  setup(2, 2);
  for (int i = 1; i <= 5; ++i) {
    write(10, Bytes(2 * block::kSectorSize, static_cast<std::uint8_t>(i)));
    EXPECT_EQ(service_->set_version(), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(service_->writes_replicated(), 5u);
  EXPECT_EQ(service_->quorum_commits(), 5u);
  EXPECT_EQ(service_->replica_version(0), 5u);
  EXPECT_EQ(service_->replica_version(1), 5u);
}

TEST_F(QuorumTest, WritesCommitWithADeadReplica) {
  setup(2, 2);
  kill_replica_session(0);

  // W=2 of N=3 still holds with the primary + one live replica: no
  // write toward the tenant may fail.
  for (int i = 1; i <= 8; ++i) {
    write(static_cast<std::uint64_t>(i) * 16,
          Bytes(4 * block::kSectorSize, static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(service_->quorum_commits(), 8u);
  EXPECT_EQ(service_->quorum_failures(), 0u);
  EXPECT_EQ(service_->replica_state(0), ReplicaState::kDegraded);
  EXPECT_EQ(service_->replica_state(1), ReplicaState::kLive);
  EXPECT_GT(service_->rebuild_backlog_sectors(), 0u)
      << "missed writes must be tracked as dirty extents";
  EXPECT_EQ(backing("replica1").read_sync(16, 4),
            Bytes(4 * block::kSectorSize, 1));
}

TEST_F(QuorumTest, DegradedReplicaIsExcludedFromReads) {
  setup(2, 2);
  Bytes data = testutil::pattern_bytes(4 * block::kSectorSize);
  write(0, data);
  kill_replica_session(0);
  // First post-kill writes declare the replica dead and degrade it.
  write(50, testutil::pattern_bytes(2 * block::kSectorSize, 3));
  ASSERT_EQ(service_->replica_state(0), ReplicaState::kDegraded);

  // Every read is served correctly from the primary or the live copy;
  // the degraded replica never contributes (and never errors a read).
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(read(0, 4), data) << "iteration " << i;
  }
  EXPECT_EQ(service_->reads_from_primary() + service_->reads_from_replicas() +
                service_->reads_failed_over(),
            12u)
      << "read accounting must cover every read exactly once";
}

TEST_F(QuorumTest, RebuildReturnsReplicaToRotationAtMatchingVersion) {
  setup(2, 2);
  Bytes before = testutil::pattern_bytes(8 * block::kSectorSize);
  write(0, before);
  kill_replica_session(0);

  Bytes missed = testutil::pattern_bytes(8 * block::kSectorSize, 5);
  write(200, missed);
  ASSERT_EQ(service_->replica_state(0), ReplicaState::kDegraded);
  ASSERT_LT(service_->replica_version(0), service_->set_version());

  probe_until([&] {
    return service_->replica_state(0) == ReplicaState::kLive;
  });

  // Version-map match gates the return to rotation; the dirty extents
  // were streamed from a survivor.
  EXPECT_EQ(service_->replica_version(0), service_->set_version());
  EXPECT_EQ(service_->rebuilds_completed(), 1u);
  EXPECT_GT(service_->rebuild_bytes(), 0u);
  EXPECT_EQ(service_->rebuild_backlog_sectors(), 0u);
  EXPECT_EQ(backing("replica0").read_sync(200, 8), missed);
  EXPECT_EQ(service_->live_replicas(), 2u);
}

TEST_F(QuorumTest, RebuildIsPacedByThePolicyTokenBucket) {
  // 1 MB/s rebuild rate: re-silvering ~2 MB of missed writes must take
  // more than a simulated second (burst covers only the first 256 KB).
  setup(2, 2, /*rebuild_rate=*/1024 * 1024);
  kill_replica_session(0);
  for (int i = 0; i < 32; ++i) {
    write(static_cast<std::uint64_t>(i) * 128,
          Bytes(128 * block::kSectorSize, static_cast<std::uint8_t>(i + 1)));
  }
  ASSERT_EQ(service_->replica_state(0), ReplicaState::kDegraded);
  ASSERT_GE(service_->rebuild_backlog_sectors(), 4096u);

  const sim::Time started = sim_.now();
  probe_until([&] {
    return service_->replica_state(0) == ReplicaState::kLive;
  }, /*max_probes=*/2000);
  EXPECT_GE(sim_.now() - started, sim::seconds(1))
      << "an unthrottled rebuild would finish instantly in virtual time";
  EXPECT_EQ(service_->rebuilds_completed(), 1u);
  EXPECT_EQ(backing("replica0").read_sync(31 * 128, 128),
            Bytes(128 * block::kSectorSize, 32));
}

TEST_F(QuorumTest, AttachedSpareIsSilveredBeforeJoiningRotation) {
  setup(1, 2);  // N=2: primary + replica0
  Bytes data = testutil::pattern_bytes(16 * block::kSectorSize);
  write(0, data);
  write(300, data);

  ASSERT_TRUE(cloud_.create_volume("spare", 40'000).is_ok());
  service_->attach_spare("spare");
  ASSERT_EQ(service_->replica_count(), 2u);
  ASSERT_EQ(service_->replica_state(1), ReplicaState::kDegraded);

  probe_until([&] {
    return service_->replica_state(1) == ReplicaState::kLive;
  });
  EXPECT_EQ(service_->replica_version(1), service_->set_version());
  EXPECT_EQ(backing("spare").read_sync(0, 16), data);
  EXPECT_EQ(backing("spare").read_sync(300, 16), data);
  EXPECT_EQ(service_->live_replicas(), 2u);
}

TEST_F(QuorumTest, RelayCrashDegradesConservativelyAndRebuildResumes) {
  setup(2, 2);
  // The tenant-side initiator re-dials the relay after restart.
  dep_.attachment()->initiator->set_recovery({.enabled = true});
  Bytes data = testutil::pattern_bytes(8 * block::kSectorSize);
  write(0, data);
  write(100, data);

  // Crash the hosting relay and restart it: the journaled state map is
  // all that survives. Replicas must come back no better than degraded-
  // conservative (never silently "up to date"), and the rebuild machine
  // must reconverge them from the journaled intents.
  ASSERT_TRUE(dep_.crash_middlebox(0).is_ok());
  sim_.run_for(sim::milliseconds(10));
  ASSERT_TRUE(dep_.restart_middlebox(0).is_ok());
  sim_.run();

  // Tenant I/O still works through the recovered relay.
  EXPECT_EQ(read(0, 8), data);
  write(500, data);
  EXPECT_EQ(backing("primary").read_sync(500, 8), data);

  probe_until([&] {
    return service_->live_replicas() == 2 &&
           service_->rebuild_backlog_sectors() == 0;
  });
  EXPECT_EQ(backing("replica0").read_sync(500, 8), data);
  EXPECT_EQ(backing("replica1").read_sync(500, 8), data);
  EXPECT_EQ(service_->replica_version(0), service_->set_version());
  EXPECT_EQ(service_->replica_version(1), service_->set_version());
}

}  // namespace
}  // namespace storm::services
