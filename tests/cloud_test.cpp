#include <gtest/gtest.h>

#include "cloud/cloud.hpp"
#include "testutil.hpp"

namespace storm::cloud {
namespace {

class CloudTest : public ::testing::Test {
 protected:
  CloudTest() : cloud_(sim_, CloudConfig{}) {}

  Attachment attach(Vm& vm, const std::string& volume,
                    AttachHooks hooks = {}) {
    Status status = error(ErrorCode::kIoError, "unset");
    Attachment attachment;
    cloud_.attach_volume(vm, volume, [&](Status s, Attachment a) {
      status = s;
      attachment = std::move(a);
    }, std::move(hooks));
    sim_.run();
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return attachment;
  }

  sim::Simulator sim_;
  Cloud cloud_;
};

TEST_F(CloudTest, TopologyComesUp) {
  EXPECT_EQ(cloud_.compute_count(), 4u);
  EXPECT_EQ(cloud_.flow_switches().size(), 5u);  // backbone + 4 OVSes
  EXPECT_NE(cloud_.compute(0).storage_ip(), cloud_.compute(1).storage_ip());
}

TEST_F(CloudTest, VmToVmTcpAcrossHosts) {
  Vm& a = cloud_.create_vm("vm-a", "tenant1", 0);
  Vm& b = cloud_.create_vm("vm-b", "tenant1", 1);
  Bytes received;
  b.node().tcp().listen(7000, [&](net::TcpConnection& conn) {
    conn.set_on_data([&](Buf data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  auto& conn = a.node().tcp().connect(net::SocketAddr{b.ip(), 7000}, [] {});
  conn.send(to_bytes("cross-host hello"));
  sim_.run();
  EXPECT_EQ(std::string(received.begin(), received.end()),
            "cross-host hello");
  EXPECT_GT(a.cpu().busy_time(), 0u) << "virtio copies must cost VM CPU";
}

TEST_F(CloudTest, AttachedVolumeServesIo) {
  Vm& vm = cloud_.create_vm("vm1", "tenant1", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 10'000).is_ok());
  Attachment attachment = attach(vm, "vol1");
  EXPECT_EQ(attachment.vm, "vm1");
  EXPECT_NE(attachment.source_port, 0);
  ASSERT_NE(vm.disk(), nullptr);

  Bytes data = testutil::pattern_bytes(8 * block::kSectorSize);
  bool done = false;
  vm.disk()->write(100, data, [&](Status s) {
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    done = true;
  });
  sim_.run();
  ASSERT_TRUE(done);

  // The bytes must be on the actual backing volume on the storage host.
  auto volume = cloud_.storage(0).volumes().find_by_name("vol1");
  ASSERT_TRUE(volume.is_ok());
  EXPECT_EQ(volume.value()->disk().store().read_sync(100, 8), data);

  Bytes got;
  vm.disk()->read(100, 8, [&](Status s, Bytes d) {
    ASSERT_TRUE(s.is_ok());
    got = std::move(d);
  });
  sim_.run();
  EXPECT_EQ(got, data);
}

TEST_F(CloudTest, AttachmentRegistryJoinsVmIqnAndPort) {
  Vm& vm = cloud_.create_vm("vm1", "tenant1", 2);
  ASSERT_TRUE(cloud_.create_volume("vol1", 1'000).is_ok());
  Attachment attachment = attach(vm, "vol1");

  auto found = cloud_.find_attachment("vm1", "vol1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->iqn, attachment.iqn);
  EXPECT_EQ(found->host_ip, cloud_.compute(2).storage_ip());
  EXPECT_EQ(found->source_port, attachment.initiator->source_port());
  // The target's view of the session must agree (the attribution join).
  auto sessions = cloud_.storage(0).target().sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].iqn, attachment.iqn);
  EXPECT_EQ(sessions[0].tuple.dst.port, attachment.source_port);
}

TEST_F(CloudTest, AttachHooksBracketLogin) {
  Vm& vm = cloud_.create_vm("vm1", "tenant1", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 1'000).is_ok());
  std::vector<std::string> events;
  AttachHooks hooks;
  hooks.before_login = [&](ComputeHost&, const Attachment& a) {
    events.push_back("before:" + a.iqn);
    EXPECT_EQ(a.source_port, 0) << "port unknown before login";
  };
  hooks.after_login = [&](ComputeHost&, const Attachment& a) {
    events.push_back("after");
    EXPECT_NE(a.source_port, 0) << "port known after login";
  };
  attach(vm, "vol1", std::move(hooks));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].starts_with("before:iqn."));
  EXPECT_EQ(events[1], "after");
}

TEST_F(CloudTest, AttachmentsOnOneHostSerialize) {
  Vm& vm1 = cloud_.create_vm("vm1", "tenant1", 0);
  Vm& vm2 = cloud_.create_vm("vm2", "tenant1", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 1'000).is_ok());
  ASSERT_TRUE(cloud_.create_volume("vol2", 1'000).is_ok());

  int in_window = 0;
  int max_in_window = 0;
  AttachHooks hooks;
  hooks.before_login = [&](ComputeHost&, const Attachment&) {
    max_in_window = std::max(max_in_window, ++in_window);
  };
  hooks.after_login = [&](ComputeHost&, const Attachment&) { --in_window; };

  int completed = 0;
  cloud_.attach_volume(vm1, "vol1",
                       [&](Status s, Attachment) {
                         EXPECT_TRUE(s.is_ok());
                         ++completed;
                       },
                       hooks);
  cloud_.attach_volume(vm2, "vol2",
                       [&](Status s, Attachment) {
                         EXPECT_TRUE(s.is_ok());
                         ++completed;
                       },
                       hooks);
  sim_.run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(max_in_window, 1)
      << "two NAT windows must never overlap on one host (the mutex)";
}

TEST_F(CloudTest, DoubleAttachRejected) {
  Vm& vm1 = cloud_.create_vm("vm1", "tenant1", 0);
  Vm& vm2 = cloud_.create_vm("vm2", "tenant1", 1);
  ASSERT_TRUE(cloud_.create_volume("vol1", 1'000).is_ok());
  attach(vm1, "vol1");
  Status status = Status::ok();
  cloud_.attach_volume(vm2, "vol1",
                       [&](Status s, Attachment) { status = s; });
  sim_.run();
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
}

TEST_F(CloudTest, AttachUnknownVolumeFails) {
  Vm& vm = cloud_.create_vm("vm1", "tenant1", 0);
  Status status = Status::ok();
  cloud_.attach_volume(vm, "ghost",
                       [&](Status s, Attachment) { status = s; });
  sim_.run();
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST_F(CloudTest, GatewayBridgesBothNetworks) {
  net::NetNode& gateway = cloud_.create_gateway("gw0");
  EXPECT_EQ(gateway.nic_count(), 2);
  // Storage-side NIC reachable from a compute host over the storage
  // network; instance-side NIC reachable from a VM.
  Vm& vm = cloud_.create_vm("vm1", "tenant1", 0);
  bool vm_to_gw = false;
  gateway.tcp().listen(9000, [&](net::TcpConnection&) { vm_to_gw = true; });
  vm.node().tcp().connect(net::SocketAddr{gateway.nic_ip(1), 9000}, [] {});

  bool host_to_gw = false;
  gateway.tcp().listen(9001, [&](net::TcpConnection&) { host_to_gw = true; });
  cloud_.compute(0).node().tcp().connect(
      net::SocketAddr{gateway.nic_ip(0), 9001}, [] {});
  sim_.run();
  EXPECT_TRUE(vm_to_gw);
  EXPECT_TRUE(host_to_gw);
}

TEST_F(CloudTest, TwoVmsOnDifferentTenantsTracked) {
  Vm& a = cloud_.create_vm("vm-a", "alice", 0);
  Vm& b = cloud_.create_vm("vm-b", "bob", 0);
  EXPECT_EQ(a.tenant(), "alice");
  EXPECT_EQ(b.tenant(), "bob");
  EXPECT_EQ(cloud_.find_vm("vm-a"), &a);
  EXPECT_EQ(cloud_.find_vm("vm-b"), &b);
  EXPECT_EQ(cloud_.find_vm("vm-c"), nullptr);
}

TEST_F(CloudTest, MiddleboxVmHasForwardingEnabled) {
  Vm& mb = cloud_.create_middlebox_vm("mb1", "tenant1", 3);
  // Address comes from the middle-box range, distinct from tenant VMs.
  Vm& vm = cloud_.create_vm("vm1", "tenant1", 3);
  EXPECT_NE(mb.ip().value >> 8, vm.ip().value >> 8);
  // Forwarding: a packet addressed elsewhere is forwarded, not dropped.
  // (Covered behaviorally in the StorM integration tests; here we assert
  // the knob is set by sending a packet through it.)
  EXPECT_EQ(mb.node().packets_forwarded(), 0u);
}

}  // namespace
}  // namespace storm::cloud
