#include <gtest/gtest.h>

#include <string>

#include "block/block_device.hpp"
#include "crypto/sha256.hpp"
#include "fs/layout.hpp"
#include "fs/simext.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace storm::fs {
namespace {

// 4096 blocks of 4 KB = 16 MB, 3 full groups of 1024 blocks.
constexpr std::uint64_t kTestSectors = 4096 * kSectorsPerBlock;

class SimExtTest : public ::testing::Test {
 protected:
  SimExtTest() : disk_(kTestSectors), fs_(sim_, disk_) {
    EXPECT_TRUE(SimExt::mkfs(disk_).is_ok());
    Status status = error(ErrorCode::kIoError, "unset");
    fs_.mount([&](Status s) { status = s; });
    sim_.run();
    EXPECT_TRUE(status.is_ok()) << status.to_string();
  }

  Status run(std::function<void(SimExt::DoneCb)> op) {
    Status status = error(ErrorCode::kIoError, "op never completed");
    bool done = false;
    op([&](Status s) {
      status = s;
      done = true;
    });
    sim_.run();
    EXPECT_TRUE(done);
    return status;
  }

  Status create(const std::string& path) {
    return run([&](SimExt::DoneCb cb) { fs_.create(path, cb); });
  }
  Status mkdir(const std::string& path) {
    return run([&](SimExt::DoneCb cb) { fs_.mkdir(path, cb); });
  }
  Status write(const std::string& path, std::uint64_t offset, Bytes data) {
    return run([&](SimExt::DoneCb cb) {
      fs_.write_file(path, offset, std::move(data), cb);
    });
  }
  std::pair<Status, Bytes> read(const std::string& path, std::uint64_t offset,
                                std::uint32_t length) {
    Status status = error(ErrorCode::kIoError, "unset");
    Bytes data;
    fs_.read_file(path, offset, length, [&](Status s, Bytes d) {
      status = s;
      data = std::move(d);
    });
    sim_.run();
    return {status, std::move(data)};
  }
  Status unlink(const std::string& path) {
    return run([&](SimExt::DoneCb cb) { fs_.unlink(path, cb); });
  }
  Status rename(const std::string& from, const std::string& to) {
    return run([&](SimExt::DoneCb cb) { fs_.rename(from, to, cb); });
  }
  std::pair<Status, std::vector<DirEntry>> readdir(const std::string& path) {
    Status status = error(ErrorCode::kIoError, "unset");
    std::vector<DirEntry> entries;
    fs_.readdir(path, [&](Status s, std::vector<DirEntry> e) {
      status = s;
      entries = std::move(e);
    });
    sim_.run();
    return {status, std::move(entries)};
  }
  std::pair<Status, StatInfo> stat(const std::string& path) {
    Status status = error(ErrorCode::kIoError, "unset");
    StatInfo info;
    fs_.stat(path, [&](Status s, StatInfo i) {
      status = s;
      info = i;
    });
    sim_.run();
    return {status, info};
  }

  sim::Simulator sim_;
  block::MemDisk disk_;
  SimExt fs_;
};

TEST_F(SimExtTest, MkfsProducesValidSuperblock) {
  EXPECT_EQ(fs_.superblock().total_blocks, 4096u);
  EXPECT_EQ(fs_.superblock().num_groups, 3u);
  EXPECT_EQ(fs_.superblock().inode_table_blocks(), 16u);
}

TEST_F(SimExtTest, CreateWriteReadRoundTrip) {
  ASSERT_TRUE(create("/hello.txt").is_ok());
  Bytes data = to_bytes("hello, SimExt!");
  ASSERT_TRUE(write("/hello.txt", 0, data).is_ok());
  auto [status, got] = read("/hello.txt", 0, 100);
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(got, data);
}

TEST_F(SimExtTest, NestedDirectories) {
  ASSERT_TRUE(mkdir("/a").is_ok());
  ASSERT_TRUE(mkdir("/a/b").is_ok());
  ASSERT_TRUE(create("/a/b/file").is_ok());
  ASSERT_TRUE(write("/a/b/file", 0, to_bytes("deep")).is_ok());
  auto [status, got] = read("/a/b/file", 0, 10);
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(got, to_bytes("deep"));

  auto [list_status, entries] = readdir("/a");
  ASSERT_TRUE(list_status.is_ok());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "b");
  EXPECT_EQ(entries[0].type, InodeType::kDirectory);
}

TEST_F(SimExtTest, StatReportsSizeAndType) {
  ASSERT_TRUE(create("/f").is_ok());
  ASSERT_TRUE(write("/f", 0, Bytes(5000, 0xAB)).is_ok());
  auto [status, info] = stat("/f");
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(info.size, 5000u);
  EXPECT_EQ(info.type, InodeType::kFile);

  auto [root_status, root_info] = stat("/");
  ASSERT_TRUE(root_status.is_ok());
  EXPECT_EQ(root_info.type, InodeType::kDirectory);
  EXPECT_EQ(root_info.inode, kRootInode);
}

TEST_F(SimExtTest, OverwriteMiddleOfFile) {
  ASSERT_TRUE(create("/f").is_ok());
  ASSERT_TRUE(write("/f", 0, Bytes(10000, 0x11)).is_ok());
  ASSERT_TRUE(write("/f", 4000, Bytes(200, 0x22)).is_ok());
  auto [status, got] = read("/f", 0, 10000);
  ASSERT_TRUE(status.is_ok());
  ASSERT_EQ(got.size(), 10000u);
  EXPECT_EQ(got[3999], 0x11);
  EXPECT_EQ(got[4000], 0x22);
  EXPECT_EQ(got[4199], 0x22);
  EXPECT_EQ(got[4200], 0x11);
}

TEST_F(SimExtTest, SparseFileReadsZerosInHoles) {
  ASSERT_TRUE(create("/sparse").is_ok());
  // Write at 100 KB, leaving a hole at the start.
  ASSERT_TRUE(write("/sparse", 100 * 1024, Bytes(10, 0x77)).is_ok());
  auto [status, got] = read("/sparse", 0, 100 * 1024 + 10);
  ASSERT_TRUE(status.is_ok());
  ASSERT_EQ(got.size(), 100u * 1024 + 10);
  EXPECT_EQ(got[0], 0x00);
  EXPECT_EQ(got[50 * 1024], 0x00);
  EXPECT_EQ(got[100 * 1024], 0x77);
}

TEST_F(SimExtTest, ReadPastEndTruncates) {
  ASSERT_TRUE(create("/f").is_ok());
  ASSERT_TRUE(write("/f", 0, Bytes(100, 1)).is_ok());
  auto [status, got] = read("/f", 50, 1000);
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(got.size(), 50u);
  auto [status2, got2] = read("/f", 200, 10);
  ASSERT_TRUE(status2.is_ok());
  EXPECT_TRUE(got2.empty());
}

TEST_F(SimExtTest, LargeFileUsesIndirectBlocks) {
  // > 12 direct blocks (48 KB) and > indirect (48 KB + 4 MB would exceed
  // the test disk, so stay within indirect range): 200 KB.
  ASSERT_TRUE(create("/big").is_ok());
  Bytes data = testutil::pattern_bytes(200 * 1024);
  ASSERT_TRUE(write("/big", 0, data).is_ok());
  auto [status, got] = read("/big", 0, 200 * 1024);
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(crypto::sha256(got), crypto::sha256(data));
}

TEST_F(SimExtTest, UnlinkFreesSpace) {
  // Warm up the root directory so its data block (which directories keep
  // after entries are removed) is already allocated.
  ASSERT_TRUE(create("/warmup").is_ok());
  std::uint32_t before = fs_.free_data_blocks();
  ASSERT_TRUE(create("/f").is_ok());
  ASSERT_TRUE(write("/f", 0, Bytes(100 * 1024, 0xCD)).is_ok());
  EXPECT_LT(fs_.free_data_blocks(), before);
  ASSERT_TRUE(unlink("/f").is_ok());
  EXPECT_EQ(fs_.free_data_blocks(), before);
  auto [status, got] = read("/f", 0, 10);
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST_F(SimExtTest, RenameMovesBetweenDirectories) {
  ASSERT_TRUE(mkdir("/src").is_ok());
  ASSERT_TRUE(mkdir("/dst").is_ok());
  ASSERT_TRUE(create("/src/f").is_ok());
  ASSERT_TRUE(write("/src/f", 0, to_bytes("content")).is_ok());
  ASSERT_TRUE(rename("/src/f", "/dst/g").is_ok());
  EXPECT_EQ(read("/src/f", 0, 10).first.code(), ErrorCode::kNotFound);
  auto [status, got] = read("/dst/g", 0, 10);
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(got, to_bytes("content"));
}

TEST_F(SimExtTest, ErrorCases) {
  EXPECT_EQ(create("/nodir/f").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(create("/f").is_ok());
  EXPECT_EQ(create("/f").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(write("/missing", 0, Bytes(10)).code(), ErrorCode::kNotFound);
  EXPECT_EQ(write("/f/sub", 0, Bytes(10)).code(),
            ErrorCode::kInvalidArgument);  // file used as directory
  EXPECT_EQ(unlink("/missing").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(mkdir("/d").is_ok());
  ASSERT_TRUE(create("/d/child").is_ok());
  EXPECT_EQ(unlink("/d").code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(unlink("/d/child").is_ok());
  EXPECT_TRUE(unlink("/d").is_ok());
  ASSERT_TRUE(create("/g").is_ok());
  EXPECT_EQ(rename("/f", "/g").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(rename("/missing", "/x").code(), ErrorCode::kNotFound);
  std::string long_name(200, 'x');
  EXPECT_EQ(create("/" + long_name).code(), ErrorCode::kInvalidArgument);
}

TEST_F(SimExtTest, PersistsAcrossRemount) {
  ASSERT_TRUE(mkdir("/data").is_ok());
  ASSERT_TRUE(create("/data/f").is_ok());
  Bytes data = testutil::pattern_bytes(30'000);
  ASSERT_TRUE(write("/data/f", 0, data).is_ok());

  // Fresh SimExt instance over the same disk: everything must persist.
  SimExt fresh(sim_, disk_);
  Status mount_status = error(ErrorCode::kIoError, "unset");
  fresh.mount([&](Status s) { mount_status = s; });
  sim_.run();
  ASSERT_TRUE(mount_status.is_ok());
  Status read_status = error(ErrorCode::kIoError, "unset");
  Bytes got;
  fresh.read_file("/data/f", 0, 30'000, [&](Status s, Bytes d) {
    read_status = s;
    got = std::move(d);
  });
  sim_.run();
  ASSERT_TRUE(read_status.is_ok()) << read_status.to_string();
  EXPECT_EQ(got, data);
}

TEST_F(SimExtTest, DropCachesStillReadsCorrectly) {
  ASSERT_TRUE(mkdir("/d").is_ok());
  ASSERT_TRUE(create("/d/f").is_ok());
  ASSERT_TRUE(write("/d/f", 0, to_bytes("cold")).is_ok());
  std::uint64_t reads_before = 0;
  fs_.drop_caches();
  auto [status, got] = read("/d/f", 0, 10);
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(got, to_bytes("cold"));
  (void)reads_before;
}

TEST_F(SimExtTest, ManyFilesInDirectory) {
  ASSERT_TRUE(mkdir("/dir").is_ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(create("/dir/file" + std::to_string(i)).is_ok()) << i;
  }
  auto [status, entries] = readdir("/dir");
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(entries.size(), 100u);
}

TEST_F(SimExtTest, OutOfSpaceIsReported) {
  ASSERT_TRUE(create("/hog").is_ok());
  // The 16 MB test disk cannot hold a 32 MB file.
  Status status = write("/hog", 0, Bytes(4 * 1024 * 1024, 1));
  Status status2 = Status::ok();
  if (status.is_ok()) {
    status2 = write("/hog", 4 * 1024 * 1024, Bytes(16 * 1024 * 1024, 1));
  }
  EXPECT_TRUE(!status.is_ok() || !status2.is_ok());
  EXPECT_TRUE(status.is_ok() || status.code() == ErrorCode::kOutOfSpace);
}

TEST_F(SimExtTest, WritebackModeDefersThenFlushes) {
  block::MemDisk disk(kTestSectors);
  ASSERT_TRUE(SimExt::mkfs(disk).is_ok());
  SimExt::Options options;
  options.writeback_delay = sim::milliseconds(100);
  SimExt wb(sim_, disk, options);
  wb.mount([](Status s) { ASSERT_TRUE(s.is_ok()); });
  sim_.run();

  bool created = false;
  wb.create("/f", [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    created = true;
  });
  bool written = false;
  wb.write_file("/f", 0, to_bytes("buffered"), [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    written = true;
  });
  sim_.run_until(sim_.now() + sim::milliseconds(1));
  EXPECT_TRUE(created);
  EXPECT_TRUE(written);
  // The flush timer is still pending; on-disk root dir must not yet show
  // the file with its data written (the inode table block is dirty in
  // cache). Run past the writeback delay and verify it lands.
  sim_.run();

  SimExt fresh(sim_, disk);
  fresh.mount([](Status s) { ASSERT_TRUE(s.is_ok()); });
  sim_.run();
  Status read_status = error(ErrorCode::kIoError, "unset");
  Bytes got;
  fresh.read_file("/f", 0, 100, [&](Status s, Bytes d) {
    read_status = s;
    got = std::move(d);
  });
  sim_.run();
  ASSERT_TRUE(read_status.is_ok());
  EXPECT_EQ(got, to_bytes("buffered"));
}

TEST(SplitPath, Variants) {
  EXPECT_TRUE(split_path("/").is_ok());
  EXPECT_TRUE(split_path("/").value().empty());
  auto parts = split_path("/a/b/c");
  ASSERT_TRUE(parts.is_ok());
  EXPECT_EQ(parts.value(),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_path("//x///y/").value(),
            (std::vector<std::string>{"x", "y"}));
  EXPECT_FALSE(split_path("relative/path").is_ok());
  EXPECT_FALSE(split_path("").is_ok());
}

TEST(Layout, ClassifyBlocks) {
  SuperBlock sb;
  sb.total_blocks = 4096;
  sb.blocks_per_group = 1024;
  sb.inodes_per_group = 512;
  sb.num_groups = 3;

  EXPECT_EQ(classify_block(sb, 0).kind, BlockClass::Kind::kSuperblock);
  EXPECT_EQ(classify_block(sb, 1).kind, BlockClass::Kind::kBlockBitmap);
  EXPECT_EQ(classify_block(sb, 2).kind, BlockClass::Kind::kInodeBitmap);
  auto table = classify_block(sb, 3);
  EXPECT_EQ(table.kind, BlockClass::Kind::kInodeTable);
  EXPECT_EQ(table.group, 0u);
  EXPECT_EQ(table.table_index, 0u);
  EXPECT_EQ(classify_block(sb, 3 + 16).kind, BlockClass::Kind::kData);

  auto group1_bitmap = classify_block(sb, 1 + 1024);
  EXPECT_EQ(group1_bitmap.kind, BlockClass::Kind::kBlockBitmap);
  EXPECT_EQ(group1_bitmap.group, 1u);
  EXPECT_EQ(classify_block(sb, 4096).kind, BlockClass::Kind::kOutOfRange);
  EXPECT_EQ(classify_block(sb, 1 + 3 * 1024).kind,
            BlockClass::Kind::kOutOfRange)
      << "blocks past the last full group are unusable";

  EXPECT_EQ(classify_block(sb, 5).to_string(), "inode_group_0");
}

TEST(Layout, InodeGeometryRoundTrip) {
  SuperBlock sb;
  sb.total_blocks = 4096;
  sb.blocks_per_group = 1024;
  sb.inodes_per_group = 512;
  sb.num_groups = 3;

  for (std::uint32_t ino : {1u, 31u, 32u, 511u, 512u, 1000u}) {
    auto [block, offset] = inode_location(sb, ino);
    auto cls = classify_block(sb, block);
    EXPECT_EQ(cls.kind, BlockClass::Kind::kInodeTable) << ino;
    EXPECT_EQ(cls.group, inode_group(sb, ino)) << ino;
    std::uint32_t first = first_inode_of_table_block(sb, cls.group,
                                                     cls.table_index);
    EXPECT_LE(first, ino);
    EXPECT_LT(ino, first + kInodesPerBlock);
    EXPECT_EQ((ino - first) * kInodeSize, offset);
  }
}

TEST(Layout, InodeAndDirEntryCodecs) {
  Inode inode;
  inode.type = InodeType::kFile;
  inode.links = 2;
  inode.size = 0x123456789ull;
  inode.direct[0] = 77;
  inode.direct[11] = 99;
  inode.indirect = 1234;
  inode.dindirect = 5678;
  Bytes slot(kInodeSize);
  inode.serialize_into(slot);
  Inode back = Inode::parse(slot);
  EXPECT_EQ(back.type, inode.type);
  EXPECT_EQ(back.links, inode.links);
  EXPECT_EQ(back.size, inode.size);
  EXPECT_EQ(back.direct, inode.direct);
  EXPECT_EQ(back.indirect, inode.indirect);
  EXPECT_EQ(back.dindirect, inode.dindirect);

  DirEntry entry;
  entry.inode = 42;
  entry.type = InodeType::kDirectory;
  entry.name = "some_directory";
  Bytes dslot(kDirEntrySize);
  entry.serialize_into(dslot);
  DirEntry dback = DirEntry::parse(dslot);
  EXPECT_EQ(dback.inode, entry.inode);
  EXPECT_EQ(dback.type, entry.type);
  EXPECT_EQ(dback.name, entry.name);
}

TEST(Layout, BitmapHelpers) {
  Bytes bitmap(kBlockSize, 0);
  EXPECT_FALSE(bitmap_get(bitmap, 100));
  bitmap_set(bitmap, 100, true);
  EXPECT_TRUE(bitmap_get(bitmap, 100));
  EXPECT_FALSE(bitmap_get(bitmap, 99));
  EXPECT_FALSE(bitmap_get(bitmap, 101));
  auto clear = bitmap_find_clear(bitmap, 102);
  ASSERT_TRUE(clear.has_value());
  EXPECT_EQ(*clear, 0u);
  for (std::uint32_t i = 0; i < 100; ++i) bitmap_set(bitmap, i, true);
  EXPECT_FALSE(bitmap_find_clear(bitmap, 101).has_value())
      << "bits 0..100 are all set";
  bitmap_set(bitmap, 100, false);
  EXPECT_EQ(*bitmap_find_clear(bitmap, 101), 100u);
}

// Property sweep: write/read round-trip across sizes straddling the
// direct/indirect/double-indirect boundaries and odd offsets.
class FileSizeSweep : public SimExtTest,
                      public ::testing::WithParamInterface<std::uint32_t> {};

TEST_P(FileSizeSweep, RoundTripsAtSize) {
  std::uint32_t size = GetParam();
  ASSERT_TRUE(create("/sweep").is_ok());
  Bytes data = testutil::pattern_bytes(size, static_cast<std::uint8_t>(size));
  ASSERT_TRUE(write("/sweep", 0, data).is_ok());
  auto [status, got] = read("/sweep", 0, size + 100);
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(crypto::sha256(got), crypto::sha256(data));
  auto [stat_status, info] = stat("/sweep");
  ASSERT_TRUE(stat_status.is_ok());
  EXPECT_EQ(info.size, size);
  ASSERT_TRUE(unlink("/sweep").is_ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FileSizeSweep,
    ::testing::Values(1u, 511u, 512u, 4095u, 4096u, 4097u,
                      12u * 4096u,             // last direct block
                      12u * 4096u + 1u,        // first indirect byte
                      64u * 1024u, 200u * 1024u,
                      (12u + 1024u) * 4096u,       // last indirect block
                      (12u + 1024u) * 4096u + 1u,  // first double-indirect
                      (12u + 1024u + 300u) * 4096u));

// Property sweep: unaligned overwrite windows never corrupt surrounding
// bytes.
class OverwriteSweep
    : public SimExtTest,
      public ::testing::WithParamInterface<std::pair<std::uint32_t,
                                                     std::uint32_t>> {};

TEST_P(OverwriteSweep, SurroundingBytesIntact) {
  auto [offset, length] = GetParam();
  const std::uint32_t file_size = 64 * 1024;
  ASSERT_TRUE(create("/ow").is_ok());
  Bytes base = testutil::pattern_bytes(file_size, 3);
  ASSERT_TRUE(write("/ow", 0, base).is_ok());
  Bytes patch(length, 0xEE);
  ASSERT_TRUE(write("/ow", offset, patch).is_ok());

  Bytes expect = base;
  std::copy(patch.begin(), patch.end(),
            expect.begin() + static_cast<std::ptrdiff_t>(offset));
  auto [status, got] = read("/ow", 0, file_size);
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(crypto::sha256(got), crypto::sha256(expect));
  ASSERT_TRUE(unlink("/ow").is_ok());
}

INSTANTIATE_TEST_SUITE_P(
    Windows, OverwriteSweep,
    ::testing::Values(std::pair{0u, 1u}, std::pair{1u, 4096u},
                      std::pair{4095u, 2u}, std::pair{4096u, 4096u},
                      std::pair{10000u, 30000u}, std::pair{60000u, 5536u},
                      std::pair{49151u, 4098u}));

}  // namespace
}  // namespace storm::fs
