#include <gtest/gtest.h>

#include "core/active_relay.hpp"
#include "core/attribution.hpp"
#include "core/platform.hpp"
#include "core/policy.hpp"
#include "core/reconstruction.hpp"
#include "crypto/sha256.hpp"
#include "fs/simext.hpp"
#include "testutil.hpp"

namespace storm::core {
namespace {

// --- policy -------------------------------------------------------------------

TEST(Policy, ParsesFullGrammar) {
  auto policy = parse_policy(R"(
# a comment
tenant alice
volume vm1 vol1
  service monitor relay=passive vcpus=4
  service encryption relay=active key=s3cret host=2
volume vm2 vol2
  service replication replicas=r1,r2
)");
  ASSERT_TRUE(policy.is_ok()) << policy.status().to_string();
  const TenantPolicy& p = policy.value();
  EXPECT_EQ(p.tenant, "alice");
  ASSERT_EQ(p.volumes.size(), 2u);
  EXPECT_EQ(p.volumes[0].vm, "vm1");
  ASSERT_EQ(p.volumes[0].chain.size(), 2u);
  EXPECT_EQ(p.volumes[0].chain[0].type, "monitor");
  EXPECT_EQ(p.volumes[0].chain[0].relay, RelayMode::kPassive);
  EXPECT_EQ(p.volumes[0].chain[0].vcpus, 4u);
  EXPECT_EQ(p.volumes[0].chain[1].param("key"), "s3cret");
  EXPECT_EQ(p.volumes[0].chain[1].host_index, 2);
  EXPECT_EQ(p.volumes[1].chain[0].param("replicas"), "r1,r2");
}

TEST(Policy, RejectsMalformedInput) {
  EXPECT_FALSE(parse_policy("volume vm1 vol1").is_ok());  // no tenant
  EXPECT_FALSE(parse_policy("tenant t\nservice monitor").is_ok());
  EXPECT_FALSE(parse_policy("tenant t\nvolume vm1 vol1\n  service monitor "
                            "relay=bogus").is_ok());
  EXPECT_FALSE(parse_policy("tenant t\nvolume vm1 vol1").is_ok());  // empty chain
  EXPECT_FALSE(parse_policy("tenant t\nbananas").is_ok());
  EXPECT_FALSE(parse_policy("tenant t\nvolume vm1 vol1\n"
                            "  service replication relay=passive").is_ok())
      << "replication must demand an active relay";
}

TEST(Policy, ParsesQosStanza) {
  auto policy = parse_policy(R"(
tenant alice
qos rate_mbps=800 burst_kb=256
volume vm1 vol1
  service noop relay=active
)");
  ASSERT_TRUE(policy.is_ok()) << policy.status().to_string();
  const QosSpec& qos = policy.value().qos;
  EXPECT_TRUE(qos.enabled);
  EXPECT_EQ(qos.rate_bytes_per_sec, 100'000'000u);  // 800 Mbps in bytes
  EXPECT_EQ(qos.burst_bytes, 256u * 1024u);
  EXPECT_TRUE(validate_policy(policy.value()).is_ok());

  // Raw-byte keys and the default burst.
  auto raw = parse_policy(
      "tenant t\nqos rate_bytes=1000000\nvolume vm1 vol1\n"
      "  service noop relay=active\n");
  ASSERT_TRUE(raw.is_ok());
  EXPECT_EQ(raw.value().qos.rate_bytes_per_sec, 1'000'000u);
  EXPECT_EQ(raw.value().qos.burst_bytes, 64u * 1024u);

  // No stanza: disabled.
  auto none = parse_policy(
      "tenant t\nvolume vm1 vol1\n  service noop relay=active\n");
  ASSERT_TRUE(none.is_ok());
  EXPECT_FALSE(none.value().qos.enabled);
}

TEST(Policy, RejectsMalformedQos) {
  EXPECT_FALSE(parse_policy("tenant t\nqos\nvolume vm1 vol1\n"
                            "  service noop relay=active\n")
                   .is_ok());
  EXPECT_FALSE(parse_policy("tenant t\nqos turbo=yes\nvolume vm1 vol1\n"
                            "  service noop relay=active\n")
                   .is_ok())
      << "unknown qos key must be a parse error";
  // A qos stanza without a rate fails validation (parse_policy runs it).
  EXPECT_FALSE(parse_policy("tenant t\nqos burst_kb=4\nvolume vm1 vol1\n"
                            "  service noop relay=active\n")
                   .is_ok());
  TenantPolicy no_rate;
  no_rate.tenant = "t";
  ServiceSpec noop;
  noop.type = "noop";
  no_rate.volumes.push_back({"vm1", "vol1", {noop}});
  ASSERT_TRUE(validate_policy(no_rate).is_ok());
  no_rate.qos.enabled = true;  // enabled but rate_bytes_per_sec == 0
  EXPECT_FALSE(validate_policy(no_rate).is_ok());
}

TEST(Policy, ParsesQuorumStanza) {
  auto policy = parse_policy(R"(
tenant alice
volume vm1 vol1
  service replication replicas=r1,r2
  quorum w=2 rebuild_mbps=64 rebuild_burst_kb=256
)");
  ASSERT_TRUE(policy.is_ok()) << policy.status().to_string();
  const QuorumSpec& quorum = policy.value().volumes[0].chain[0].quorum;
  EXPECT_TRUE(quorum.enabled);
  EXPECT_EQ(quorum.write_quorum, 2u);
  EXPECT_EQ(quorum.rebuild_rate_bytes_per_sec, 64'000'000u);
  EXPECT_EQ(quorum.rebuild_burst_bytes, 256u * 1024u);

  // Raw-byte rate key and defaults for everything else.
  auto raw = parse_policy(
      "tenant t\nvolume vm1 vol1\n"
      "  service replication replicas=r1\n"
      "  quorum w=1 rebuild_bytes_per_sec=1000000\n");
  ASSERT_TRUE(raw.is_ok()) << raw.status().to_string();
  EXPECT_EQ(raw.value().volumes[0].chain[0].quorum.rebuild_rate_bytes_per_sec,
            1'000'000u);

  // No stanza: disabled, legacy mirroring semantics.
  auto none = parse_policy(
      "tenant t\nvolume vm1 vol1\n  service replication replicas=r1\n");
  ASSERT_TRUE(none.is_ok());
  EXPECT_FALSE(none.value().volumes[0].chain[0].quorum.enabled);
}

TEST(Policy, RejectsMalformedQuorum) {
  // Stanza with no service above it.
  EXPECT_FALSE(parse_policy("tenant t\nvolume vm1 vol1\n  quorum w=2\n"
                            "  service replication replicas=r1\n")
                   .is_ok());
  // Unknown key.
  EXPECT_FALSE(parse_policy("tenant t\nvolume vm1 vol1\n"
                            "  service replication replicas=r1\n"
                            "  quorum turbo=yes\n")
                   .is_ok());
  // Quorum on a non-replication service.
  EXPECT_FALSE(parse_policy("tenant t\nvolume vm1 vol1\n"
                            "  service monitor relay=active\n"
                            "  quorum w=1\n")
                   .is_ok());
  // w exceeding the copy count (primary + replicas).
  EXPECT_FALSE(parse_policy("tenant t\nvolume vm1 vol1\n"
                            "  service replication replicas=r1\n"
                            "  quorum w=3\n")
                   .is_ok())
      << "w=3 with one replica (two copies) must fail validation";
  // w=0 and a zero rebuild rate are both invalid.
  EXPECT_FALSE(parse_policy("tenant t\nvolume vm1 vol1\n"
                            "  service replication replicas=r1\n"
                            "  quorum w=0\n")
                   .is_ok());
  EXPECT_FALSE(parse_policy("tenant t\nvolume vm1 vol1\n"
                            "  service replication replicas=r1\n"
                            "  quorum w=1 rebuild_bytes_per_sec=0\n")
                   .is_ok());
}

// --- relay journal -------------------------------------------------------------

TEST(RelayJournal, AppendTrimReplay) {
  // The relay journals through a journal::Stream on a shared
  // journal::Device now; the append/trim/replay semantics are unchanged.
  sim::Simulator sim;
  journal::Device device(sim, sim.telemetry().scope("journal."));
  journal::Stream journal(device);
  journal.append({Buf(Bytes(100, 1))}, 100);
  journal.append({Buf(Bytes(50, 2))}, 150);
  journal.append({Buf(Bytes(25, 3))}, 175);
  EXPECT_EQ(journal.entries(), 3u);
  EXPECT_EQ(journal.bytes(), 175u);

  journal.trim(100);
  EXPECT_EQ(journal.entries(), 2u);
  journal.trim(149);  // entry 2 not fully acked yet
  EXPECT_EQ(journal.entries(), 2u);
  journal.trim(150);
  EXPECT_EQ(journal.entries(), 1u);
  auto replay = journal.unacknowledged();
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(chain_to_bytes(replay[0]), Bytes(25, 3));
  journal.trim(175);
  EXPECT_EQ(journal.bytes(), 0u);
}

// --- integration fixture ---------------------------------------------------------

/// XOR "cipher" used to observe transforms end-to-end (symmetric, size
/// preserving). Encrypts write payloads toward the target, decrypts
/// Data-In toward the initiator.
class XorService : public StorageService {
 public:
  std::string name() const override { return "xor"; }
  ServiceVerdict on_pdu(ServiceContext&, Direction dir,
                        iscsi::Pdu& pdu) override {
    bool is_write_data = dir == Direction::kToTarget &&
                         (pdu.opcode == iscsi::Opcode::kScsiCommand ||
                          pdu.opcode == iscsi::Opcode::kDataOut);
    bool is_read_data = dir == Direction::kToInitiator &&
                        pdu.opcode == iscsi::Opcode::kDataIn;
    if (is_write_data || is_read_data) {
      for (auto& byte : pdu.data.mutable_span()) byte ^= 0x5A;
      ++transformed_;
    }
    return {};
  }
  int transformed() const { return transformed_; }

 private:
  int transformed_ = 0;
};

class StormTest : public ::testing::Test {
 protected:
  StormTest() : cloud_(sim_, cloud::CloudConfig{}), platform_(cloud_) {
    platform_.register_service("xor", [this](ServiceEnv&) {
      auto service = std::make_unique<XorService>();
      last_xor_ = service.get();
      return Result<std::unique_ptr<StorageService>>(std::move(service));
    });
  }

  DeploymentHandle deploy(const std::string& vm, const std::string& volume,
                          std::vector<ServiceSpec> chain) {
    Status status = error(ErrorCode::kIoError, "unset");
    DeploymentHandle deployment;
    platform_.attach_with_chain(vm, volume, std::move(chain),
                                [&](Result<DeploymentHandle> r) {
                                  status = r.status();
                                  if (r.is_ok()) deployment = r.value();
                                });
    sim_.run();
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    return deployment;
  }

  Bytes write_read_roundtrip(cloud::Vm& vm, std::uint64_t lba,
                             const Bytes& data) {
    bool write_ok = false;
    vm.disk()->write(lba, data, [&](Status s) {
      ASSERT_TRUE(s.is_ok()) << s.to_string();
      write_ok = true;
    });
    sim_.run();
    EXPECT_TRUE(write_ok);
    Bytes got;
    vm.disk()->read(lba, static_cast<std::uint32_t>(data.size() / 512),
                    [&](Status s, Bytes d) {
                      ASSERT_TRUE(s.is_ok()) << s.to_string();
                      got = std::move(d);
                    });
    sim_.run();
    return got;
  }

  sim::Simulator sim_;
  cloud::Cloud cloud_;
  StormPlatform platform_;
  XorService* last_xor_ = nullptr;
};

TEST_F(StormTest, SplicedIoThroughActiveNoopRelay) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec noop;
  noop.type = "noop";
  noop.relay = RelayMode::kActive;
  DeploymentHandle dep = deploy("vm1", "vol1", {noop});
  ASSERT_TRUE(dep.valid());

  Bytes data = testutil::pattern_bytes(16 * block::kSectorSize);
  Bytes got = write_read_roundtrip(vm, 500, data);
  EXPECT_EQ(got, data);

  // Traffic must actually traverse the middle-box relay.
  ASSERT_NE(dep.active_relay(0), nullptr);
  EXPECT_GT(dep.active_relay(0)->pdus_relayed(), 0u);
  EXPECT_EQ(dep.active_relay(0)->session_count(), 1u);
  // Once everything is acknowledged, the NVRAM journal must be empty.
  EXPECT_EQ(dep.active_relay(0)->journal_bytes(), 0u);
}

TEST_F(StormTest, SplicedIoThroughForwardOnlyMiddlebox) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec fwd;
  fwd.type = "noop";
  fwd.relay = RelayMode::kForward;
  DeploymentHandle dep = deploy("vm1", "vol1", {fwd});
  ASSERT_TRUE(dep.valid());

  Bytes data = testutil::pattern_bytes(8 * block::kSectorSize);
  EXPECT_EQ(write_read_roundtrip(vm, 0, data), data);
  // Packets flow through the MB VM's IP forwarding path.
  EXPECT_GT(dep.mb_vm(0)->node().packets_forwarded(), 0u);
}

TEST_F(StormTest, PassiveRelayTransformsInPlace) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec xor_spec;
  xor_spec.type = "xor";
  xor_spec.relay = RelayMode::kPassive;
  DeploymentHandle dep = deploy("vm1", "vol1", {xor_spec});
  ASSERT_TRUE(dep.valid());

  Bytes data = testutil::pattern_bytes(8 * block::kSectorSize);
  Bytes got = write_read_roundtrip(vm, 100, data);
  EXPECT_EQ(got, data) << "XOR must round-trip through the passive relay";

  // On-disk bytes are the transformed ones.
  auto volume = cloud_.storage(0).volumes().find_by_name("vol1");
  Bytes on_disk = volume.value()->disk().store().read_sync(100, 8);
  EXPECT_NE(on_disk, data);
  Bytes unxored = on_disk;
  for (auto& byte : unxored) byte ^= 0x5A;
  EXPECT_EQ(unxored, data);
  EXPECT_GT(dep.passive_relay(0)->pdus_processed(), 0u);
}

TEST_F(StormTest, ActiveRelayTransformsInPlace) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec xor_spec;
  xor_spec.type = "xor";
  xor_spec.relay = RelayMode::kActive;
  deploy("vm1", "vol1", {xor_spec});

  Bytes data = testutil::pattern_bytes(64 * block::kSectorSize);  // 32 KB
  Bytes got = write_read_roundtrip(vm, 100, data);
  EXPECT_EQ(got, data);
  auto volume = cloud_.storage(0).volumes().find_by_name("vol1");
  Bytes on_disk = volume.value()->disk().store().read_sync(100, 64);
  EXPECT_NE(on_disk, data);
}

TEST_F(StormTest, TwoBoxChainMonitorThenCipherOrder) {
  // xor (active) -> xor (active): double-XOR cancels out on disk.
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec a, b;
  a.type = b.type = "xor";
  a.relay = b.relay = RelayMode::kActive;
  DeploymentHandle dep = deploy("vm1", "vol1", {a, b});
  ASSERT_TRUE(dep.valid());
  ASSERT_EQ(dep.chain_length(), 2u);

  Bytes data = testutil::pattern_bytes(8 * block::kSectorSize);
  Bytes got = write_read_roundtrip(vm, 0, data);
  EXPECT_EQ(got, data);
  auto volume = cloud_.storage(0).volumes().find_by_name("vol1");
  EXPECT_EQ(volume.value()->disk().store().read_sync(0, 8), data)
      << "two XOR boxes must cancel out on disk";
  EXPECT_GT(dep.active_relay(0)->pdus_relayed(), 0u);
  EXPECT_GT(dep.active_relay(1)->pdus_relayed(), 0u);
}

TEST_F(StormTest, MixedChainPassiveThenActive) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec passive, active;
  passive.type = "xor";
  passive.relay = RelayMode::kPassive;
  active.type = "xor";
  active.relay = RelayMode::kActive;
  DeploymentHandle dep = deploy("vm1", "vol1", {passive, active});
  ASSERT_TRUE(dep.valid());

  Bytes data = testutil::pattern_bytes(16 * block::kSectorSize);
  Bytes got = write_read_roundtrip(vm, 64, data);
  EXPECT_EQ(got, data);
  auto volume = cloud_.storage(0).volumes().find_by_name("vol1");
  EXPECT_EQ(volume.value()->disk().store().read_sync(64, 16), data);
  EXPECT_GT(dep.passive_relay(0)->pdus_processed(), 0u);
  EXPECT_GT(dep.active_relay(1)->pdus_relayed(), 0u);
}

TEST_F(StormTest, HostNatRulesRemovedAfterAtomicAttach) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  (void)vm;
  ASSERT_TRUE(cloud_.create_volume("vol1", 10'000).is_ok());
  ServiceSpec noop;
  noop.type = "noop";
  deploy("vm1", "vol1", {noop});
  // After attach, the host's NAT *rules* are gone; the flow lives on via
  // conntrack (paper §III-A).
  EXPECT_EQ(cloud_.compute(0).node().nat().rule_count(), 0u);
  EXPECT_GT(cloud_.compute(0).node().nat().conntrack_size(), 0u);

  // And I/O still flows after rule removal.
  Bytes data = testutil::pattern_bytes(block::kSectorSize);
  EXPECT_EQ(write_read_roundtrip(*cloud_.find_vm("vm1"), 1, data), data);
}

TEST_F(StormTest, SecondVolumeAttachUnaffectedByFirst) {
  // The atomic window must scope rules to one attachment: a LEGACY
  // (non-StorM) attach after a StorM attach goes direct.
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 10'000).is_ok());
  ASSERT_TRUE(cloud_.create_volume("vol2", 10'000).is_ok());
  ServiceSpec noop;
  noop.type = "noop";
  DeploymentHandle dep = deploy("vm1", "vol1", {noop});

  Status status = error(ErrorCode::kIoError, "unset");
  cloud_.attach_volume(vm, "vol2",
                       [&](Status s, cloud::Attachment) { status = s; });
  sim_.run();
  ASSERT_TRUE(status.is_ok()) << status.to_string();

  std::uint64_t mb_packets_before = dep.active_relay(0)->pdus_relayed();
  Bytes data = testutil::pattern_bytes(4 * block::kSectorSize);
  bool ok = false;
  vm.disk(1)->write(0, data, [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    ok = true;
  });
  sim_.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(dep.active_relay(0)->pdus_relayed(), mb_packets_before)
      << "vol2 traffic must not traverse vol1's middle-box";
}

TEST_F(StormTest, AttributionAnswersBothDirections) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 1);
  (void)vm;
  ASSERT_TRUE(cloud_.create_volume("vol1", 10'000).is_ok());
  ServiceSpec noop;
  noop.type = "noop";
  DeploymentHandle dep = deploy("vm1", "vol1", {noop});

  auto by_port =
      platform_.attribution().by_source_port(dep.splice()->vm_port);
  ASSERT_TRUE(by_port.has_value());
  EXPECT_EQ(by_port->vm, "vm1");
  EXPECT_EQ(by_port->volume, "vol1");
  EXPECT_EQ(by_port->tenant, "alice");

  auto by_name = platform_.attribution().by_vm_volume("vm1", "vol1");
  ASSERT_TRUE(by_name.has_value());
  EXPECT_EQ(by_name->source_port, dep.splice()->vm_port);
  EXPECT_EQ(platform_.attribution().tenant_flows("alice").size(), 1u);
  EXPECT_TRUE(platform_.attribution().tenant_flows("bob").empty());
}

TEST_F(StormTest, ActiveRelayRecoversFromUpstreamFailure) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec noop;
  noop.type = "noop";
  noop.relay = RelayMode::kActive;
  DeploymentHandle dep = deploy("vm1", "vol1", {noop});
  ActiveRelay& relay = *dep.active_relay(0);

  // Prove the path works, then cut and restore the upstream between
  // bursts: the journal replays and I/O continues.
  Bytes data = testutil::pattern_bytes(4 * block::kSectorSize);
  EXPECT_EQ(write_read_roundtrip(vm, 0, data), data);

  relay.fail_upstream();
  sim_.run();
  relay.recover_upstream();
  sim_.run();

  Bytes data2 = testutil::pattern_bytes(4 * block::kSectorSize, 99);
  EXPECT_EQ(write_read_roundtrip(vm, 8, data2), data2);
}

TEST_F(StormTest, DynamicAddAndRemoveMiddlebox) {
  cloud::Vm& vm = cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec fwd;
  fwd.type = "noop";
  fwd.relay = RelayMode::kForward;
  DeploymentHandle dep = deploy("vm1", "vol1", {fwd});

  Bytes data = testutil::pattern_bytes(4 * block::kSectorSize);
  EXPECT_EQ(write_read_roundtrip(vm, 0, data), data);

  // Scale up: insert a passive XOR box on the live flow.
  ServiceSpec xor_spec;
  xor_spec.type = "xor";
  xor_spec.relay = RelayMode::kPassive;
  ASSERT_TRUE(dep.add_middlebox(xor_spec, 1).is_ok());
  Bytes data2 = testutil::pattern_bytes(4 * block::kSectorSize, 7);
  EXPECT_EQ(write_read_roundtrip(vm, 8, data2), data2);
  auto volume = cloud_.storage(0).volumes().find_by_name("vol1");
  EXPECT_NE(volume.value()->disk().store().read_sync(8, 4), data2)
      << "new middle-box must now transform the data";

  // Scale down: remove it again.
  ASSERT_TRUE(dep.remove_middlebox(1).is_ok());
  Bytes data3 = testutil::pattern_bytes(4 * block::kSectorSize, 9);
  EXPECT_EQ(write_read_roundtrip(vm, 16, data3), data3);
  EXPECT_EQ(volume.value()->disk().store().read_sync(16, 4), data3)
      << "after removal the data must land untransformed";

  // Active relays cannot be spliced into a live connection.
  ServiceSpec active;
  active.type = "noop";
  active.relay = RelayMode::kActive;
  EXPECT_FALSE(dep.add_middlebox(active, 0).is_ok());
}

TEST_F(StormTest, DetachInvalidatesEveryHandleCopy) {
  cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 20'000).is_ok());
  ServiceSpec noop;
  noop.type = "noop";
  noop.relay = RelayMode::kActive;
  DeploymentHandle dep = deploy("vm1", "vol1", {noop});
  DeploymentHandle copy = platform_.find_deployment("vm1", "vol1");
  ASSERT_TRUE(dep.valid());
  ASSERT_TRUE(copy.valid());
  EXPECT_EQ(copy.cookie(), dep.cookie());

  ASSERT_TRUE(dep.detach().is_ok());
  sim_.run();
  EXPECT_FALSE(dep.valid());
  EXPECT_FALSE(copy.valid()) << "stale copies must also report invalid";
  EXPECT_EQ(dep.active_relay(0), nullptr);
  EXPECT_EQ(dep.splice(), nullptr);
  EXPECT_FALSE(platform_.find_deployment("vm1", "vol1").valid());
  // Double-detach is an error, not a crash.
  EXPECT_FALSE(dep.detach().is_ok());
}

TEST_F(StormTest, ApplyPolicyDeploysEverything) {
  cloud_.create_vm("vm1", "alice", 0);
  cloud_.create_vm("vm2", "alice", 1);
  ASSERT_TRUE(cloud_.create_volume("vol1", 10'000).is_ok());
  ASSERT_TRUE(cloud_.create_volume("vol2", 10'000).is_ok());

  auto policy = parse_policy(R"(
tenant alice
volume vm1 vol1
  service xor relay=active
volume vm2 vol2
  service noop relay=forward
)");
  ASSERT_TRUE(policy.is_ok());
  Status status = error(ErrorCode::kIoError, "unset");
  std::size_t handles = 0;
  platform_.apply_policy(policy.value(),
                         [&](Result<std::vector<DeploymentHandle>> r) {
                           status = r.status();
                           if (r.is_ok()) handles = r.value().size();
                         });
  sim_.run();
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(handles, 2u);
  EXPECT_TRUE(platform_.find_deployment("vm1", "vol1").valid());
  EXPECT_TRUE(platform_.find_deployment("vm2", "vol2").valid());

  Bytes data = testutil::pattern_bytes(2 * block::kSectorSize);
  EXPECT_EQ(write_read_roundtrip(*cloud_.find_vm("vm1"), 0, data), data);
  EXPECT_EQ(write_read_roundtrip(*cloud_.find_vm("vm2"), 0, data), data);
}

TEST_F(StormTest, ApplyPolicyInstallsTenantQosAndPacesWrites) {
  cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 10'000).is_ok());
  auto policy = parse_policy(R"(
tenant alice
qos rate_mbps=100 burst_kb=64
volume vm1 vol1
  service noop relay=active
)");
  ASSERT_TRUE(policy.is_ok()) << policy.status().to_string();
  Status status = error(ErrorCode::kIoError, "unset");
  platform_.apply_policy(policy.value(),
                         [&](Result<std::vector<DeploymentHandle>> r) {
                           status = r.status();
                         });
  sim_.run();
  ASSERT_TRUE(status.is_ok()) << status.to_string();

  const net::TokenBucket* bucket = platform_.tenant_qos("alice");
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->rate_bytes_per_sec(), 12'500'000u);  // 100 Mbps
  EXPECT_EQ(bucket->burst_bytes(), 64u * 1024u);
  EXPECT_EQ(platform_.splicer().tenant_gateways("alice").ingress
                ->rate_limiter(),
            bucket)
      << "the bucket must shape the tenant's ingress gateway";

  // The limiter actually paces: 512 KiB through a 12.5 MB/s bucket with
  // a 64 KiB burst cannot finish faster than ~36 ms of sim time.
  cloud::Vm& vm = *cloud_.find_vm("vm1");
  const sim::Time start = sim_.now();
  Bytes data = testutil::pattern_bytes(1024 * block::kSectorSize);
  EXPECT_EQ(write_read_roundtrip(vm, 0, data), data);
  EXPECT_GT(sim_.now() - start, sim::milliseconds(30))
      << "rate limit had no effect on the data path";
  EXPECT_GT(sim_.telemetry().counter("qos.alice.throttled_bytes").value(),
            0u);

  // A disabled spec removes the limiter.
  platform_.set_tenant_qos("alice", QosSpec{});
  EXPECT_EQ(platform_.tenant_qos("alice"), nullptr);
  EXPECT_EQ(
      platform_.splicer().tenant_gateways("alice").ingress->rate_limiter(),
      nullptr);
}

TEST_F(StormTest, UnknownServiceTypeFailsDeploy) {
  cloud_.create_vm("vm1", "alice", 0);
  ASSERT_TRUE(cloud_.create_volume("vol1", 10'000).is_ok());
  ServiceSpec ghost;
  ghost.type = "ghost";
  Status status = Status::ok();
  platform_.attach_with_chain(
      "vm1", "vol1", {ghost},
      [&](Result<DeploymentHandle> r) { status = r.status(); });
  sim_.run();
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

// --- semantics reconstruction -----------------------------------------------------

class ReconstructionTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kSectors = 4096 * fs::kSectorsPerBlock;

  ReconstructionTest() : disk_(kSectors), fs_(sim_, tap_) {
    EXPECT_TRUE(fs::SimExt::mkfs(disk_).is_ok());
  }

  /// Pass-through device that feeds every I/O to the reconstructor,
  /// standing in for the middle-box's intercept position.
  class TapDisk : public block::BlockDevice {
   public:
    explicit TapDisk(ReconstructionTest& outer) : outer_(outer) {}
    void read(std::uint64_t lba, std::uint32_t count,
              ReadCallback done) override {
      if (outer_.recon_) {
        auto ops = outer_.recon_->on_read(
            lba, static_cast<std::uint64_t>(count) * 512);
        outer_.log_.insert(outer_.log_.end(), ops.begin(), ops.end());
      }
      outer_.disk_.read(lba, count, std::move(done));
    }
    void write(std::uint64_t lba, Bytes data, WriteCallback done) override {
      if (outer_.recon_) {
        auto ops = outer_.recon_->on_write(lba, data);
        outer_.log_.insert(outer_.log_.end(), ops.begin(), ops.end());
      }
      outer_.disk_.write(lba, std::move(data), std::move(done));
    }
    std::uint64_t num_sectors() const override {
      return outer_.disk_.num_sectors();
    }

   private:
    ReconstructionTest& outer_;
  };

  void mount_and_arm() {
    bool mounted = false;
    fs_.mount([&](Status s) {
      ASSERT_TRUE(s.is_ok());
      mounted = true;
    });
    sim_.run();
    ASSERT_TRUE(mounted);
    arm();
  }

  void arm() {
    auto recon = SemanticsReconstructor::from_snapshot(disk_);
    ASSERT_TRUE(recon.is_ok()) << recon.status().to_string();
    recon_ = std::move(recon).take();
    log_.clear();
  }

  Status run(std::function<void(fs::SimExt::DoneCb)> op) {
    Status status = error(ErrorCode::kIoError, "unset");
    op([&](Status s) { status = s; });
    sim_.run();
    return status;
  }

  bool logged(FileOp::Kind kind, const std::string& path) const {
    for (const auto& op : log_) {
      if (op.kind == kind && op.path == path) return true;
    }
    return false;
  }

  sim::Simulator sim_;
  block::MemDisk disk_;
  TapDisk tap_{*this};
  fs::SimExt fs_;
  std::unique_ptr<SemanticsReconstructor> recon_;
  std::vector<FileOp> log_;
};

TEST_F(ReconstructionTest, SnapshotIndexesExistingFiles) {
  // Build a tree before arming the reconstructor.
  bool ok = false;
  fs_.mount([&](Status s) { ok = s.is_ok(); });
  sim_.run();
  ASSERT_TRUE(ok);
  ASSERT_TRUE(run([&](auto cb) { fs_.mkdir("/box", cb); }).is_ok());
  ASSERT_TRUE(run([&](auto cb) { fs_.create("/box/a.img", cb); }).is_ok());
  ASSERT_TRUE(run([&](auto cb) {
    fs_.write_file("/box/a.img", 0, Bytes(20'000, 0xAA), cb);
  }).is_ok());

  arm();
  EXPECT_EQ(recon_->tracked_files(), 1u);
  EXPECT_EQ(recon_->path_of_inode(fs::kRootInode), "/");
  // a.img's data blocks resolve to its path.
  bool found = false;
  for (std::uint32_t block = 0; block < 4096; ++block) {
    auto path = recon_->path_of_block(block);
    if (path && *path == "/box/a.img") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ReconstructionTest, LiveCreateWriteIsReconstructed) {
  mount_and_arm();
  ASSERT_TRUE(run([&](auto cb) { fs_.mkdir("/box", cb); }).is_ok());
  ASSERT_TRUE(run([&](auto cb) { fs_.create("/box/1.img", cb); }).is_ok());
  ASSERT_TRUE(run([&](auto cb) {
    fs_.write_file("/box/1.img", 0, Bytes(16'384, 0xBB), cb);
  }).is_ok());

  EXPECT_TRUE(logged(FileOp::Kind::kWrite, "/box/1.img"))
      << "data write must map to the new file's path";
  // Metadata writes observed: inode table of group 0.
  EXPECT_TRUE(logged(FileOp::Kind::kMetaWrite, "META: inode_group_0"));

  // Aggregated size: one logged write of 16384 bytes.
  bool size_ok = false;
  for (const auto& op : log_) {
    if (op.kind == FileOp::Kind::kWrite && op.path == "/box/1.img" &&
        op.size == 16'384) {
      size_ok = true;
    }
  }
  EXPECT_TRUE(size_ok);
}

TEST_F(ReconstructionTest, ReadsClassifiedAgainstView) {
  bool ok = false;
  fs_.mount([&](Status s) { ok = s.is_ok(); });
  sim_.run();
  ASSERT_TRUE(ok);
  ASSERT_TRUE(run([&](auto cb) { fs_.mkdir("/box", cb); }).is_ok());
  ASSERT_TRUE(run([&](auto cb) { fs_.create("/box/7.img", cb); }).is_ok());
  ASSERT_TRUE(run([&](auto cb) {
    fs_.write_file("/box/7.img", 0, Bytes(4096, 0xCC), cb);
  }).is_ok());

  arm();
  fs_.drop_caches();  // force cold metadata reads, as in paper Table I
  Bytes got;
  ASSERT_TRUE(run([&](auto cb) {
    fs_.read_file("/box/7.img", 0, 4096, [&got, cb](Status s, Bytes d) {
      got = std::move(d);
      cb(s);
    });
  }).is_ok());

  EXPECT_TRUE(logged(FileOp::Kind::kRead, "/box/7.img"));
  EXPECT_TRUE(logged(FileOp::Kind::kRead, "/box/."))
      << "directory lookup must appear as a dir read";
  EXPECT_TRUE(logged(FileOp::Kind::kMetaRead, "META: inode_group_0"));
}

TEST_F(ReconstructionTest, RenameTracked) {
  mount_and_arm();
  ASSERT_TRUE(run([&](auto cb) { fs_.create("/old", cb); }).is_ok());
  ASSERT_TRUE(run([&](auto cb) {
    fs_.write_file("/old", 0, Bytes(4096, 1), cb);
  }).is_ok());
  ASSERT_TRUE(run([&](auto cb) { fs_.rename("/old", "/new", cb); }).is_ok());
  log_.clear();
  ASSERT_TRUE(run([&](auto cb) {
    fs_.write_file("/new", 0, Bytes(4096, 2), cb);
  }).is_ok());
  EXPECT_TRUE(logged(FileOp::Kind::kWrite, "/new"))
      << "view must follow the rename";
}

TEST_F(ReconstructionTest, DeleteDropsMapping) {
  mount_and_arm();
  ASSERT_TRUE(run([&](auto cb) { fs_.create("/f", cb); }).is_ok());
  ASSERT_TRUE(run([&](auto cb) {
    fs_.write_file("/f", 0, Bytes(8192, 1), cb);
  }).is_ok());
  std::size_t before = recon_->tracked_files();
  EXPECT_EQ(before, 1u);
  ASSERT_TRUE(run([&](auto cb) { fs_.unlink("/f", cb); }).is_ok());
  EXPECT_EQ(recon_->tracked_files(), 0u);
}

TEST_F(ReconstructionTest, UnknownBlockFallsBack) {
  mount_and_arm();
  auto ops = recon_->on_read(3000 * fs::kSectorsPerBlock, 4096);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_TRUE(ops[0].path.starts_with("unallocated_block_"));
}

}  // namespace
}  // namespace storm::core
