// Shared helpers for building small simulated topologies in tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/tcp.hpp"
#include "sim/simulator.hpp"

namespace storm::testutil {

inline net::MacAddr mac(std::uint64_t n) { return net::MacAddr{n}; }

inline net::Ipv4Addr ip(const std::string& dotted) {
  return net::Ipv4Addr::from_string(dotted);
}

inline Bytes pattern_bytes(std::size_t n, std::uint8_t seed = 1) {
  Bytes out(n);
  std::uint8_t v = seed;
  for (auto& b : out) {
    b = v;
    v = static_cast<std::uint8_t>(v * 31 + 7);
  }
  return out;
}

/// Two nodes on one subnet joined by a single full-duplex link.
struct TwoNodeNet {
  sim::Simulator sim;
  std::shared_ptr<net::ArpRegistry> arp = std::make_shared<net::ArpRegistry>();
  net::Link link;
  net::NetNode a;
  net::NetNode b;

  explicit TwoNodeNet(std::uint64_t bps = 1'000'000'000ull,
                      sim::Duration delay = sim::microseconds(50))
      : link(sim, bps, delay),
        a(sim, "a", arp),
        b(sim, "b", arp) {
    net::Subnet subnet{ip("10.0.0.0"), 24};
    a.add_nic(mac(0xA), ip("10.0.0.1"), subnet, link, 0);
    b.add_nic(mac(0xB), ip("10.0.0.2"), subnet, link, 1);
  }
};

}  // namespace storm::testutil
