#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/bytes.hpp"
#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace storm::crypto {
namespace {

Bytes from_hex(const std::string& hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

// --- AES: FIPS-197 Appendix C known-answer vectors -------------------------

TEST(Aes, Fips197Aes128KnownAnswer) {
  Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Bytes expect = from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(Bytes(ct, ct + 16), expect);
}

TEST(Aes, Fips197Aes256KnownAnswer) {
  Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Bytes expect = from_hex("8ea2b7ca516745bfeafc49904b496089");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(Bytes(ct, ct + 16), expect);
}

TEST(Aes, DecryptInvertsEncrypt128And256) {
  for (std::size_t key_len : {16u, 32u}) {
    Bytes key(key_len);
    for (std::size_t i = 0; i < key_len; ++i) key[i] = static_cast<std::uint8_t>(i * 7);
    Aes aes(key);
    std::uint8_t pt[16], ct[16], rt[16];
    for (int i = 0; i < 16; ++i) pt[i] = static_cast<std::uint8_t>(i * 11 + 3);
    aes.encrypt_block(pt, ct);
    aes.decrypt_block(ct, rt);
    EXPECT_EQ(0, std::memcmp(pt, rt, 16)) << "key_len=" << key_len;
  }
}

TEST(Aes, RejectsBadKeySize) {
  Bytes bad(24);  // AES-192 unsupported by design
  EXPECT_THROW(Aes cipher(bad), std::invalid_argument);
}

// --- AES-CTR: NIST SP 800-38A F.5.1 ----------------------------------------

TEST(AesCtr, Sp80038aF51KnownAnswer) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes iv = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  Bytes expect = from_hex(
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee");
  Aes aes(key);
  Bytes ct(pt.size());
  aes_ctr_crypt(aes, iv.data(), pt, ct);
  EXPECT_EQ(ct, expect);

  Bytes rt(ct.size());
  aes_ctr_crypt(aes, iv.data(), ct, rt);
  EXPECT_EQ(rt, pt);
}

TEST(AesCtr, HandlesPartialFinalBlock) {
  Bytes key(16, 0x42);
  Aes aes(key);
  std::uint8_t iv[16] = {};
  Bytes pt = to_bytes("only 21 bytes here!!!");
  Bytes ct(pt.size());
  aes_ctr_crypt(aes, iv, pt, ct);
  Bytes rt(pt.size());
  aes_ctr_crypt(aes, iv, ct, rt);
  EXPECT_EQ(rt, pt);
  EXPECT_NE(ct, pt);
}

// --- AES-XTS: IEEE 1619 Vector 1 + properties -------------------------------

TEST(AesXts, Ieee1619Vector1) {
  Bytes key(16, 0x00);
  AesXts xts(key, key);
  Bytes pt(32, 0x00);
  Bytes expect = from_hex(
      "917cf69ebd68b2ec9b9fe9a3eadda692"
      "cd43d2f59598ed858c02c2652fbf922e");
  Bytes ct(32);
  xts.encrypt_sector(0, pt, ct);
  EXPECT_EQ(ct, expect);
  Bytes rt(32);
  xts.decrypt_sector(0, ct, rt);
  EXPECT_EQ(rt, pt);
}

TEST(AesXts, SectorNumberChangesCiphertext) {
  Bytes key1(32, 0x11), key2(32, 0x22);
  AesXts xts(key1, key2);
  Bytes pt(512, 0xAA);
  Bytes c0(512), c1(512);
  xts.encrypt_sector(0, pt, c0);
  xts.encrypt_sector(1, pt, c1);
  EXPECT_NE(c0, c1) << "same plaintext must differ across sectors";
}

TEST(AesXts, RoundTrips512ByteSectors) {
  Bytes key1(32, 0x01), key2(32, 0x02);
  AesXts xts(key1, key2);
  for (std::uint64_t sector : {0ull, 1ull, 999ull, 1ull << 40}) {
    Bytes pt(512);
    for (std::size_t i = 0; i < pt.size(); ++i) {
      pt[i] = static_cast<std::uint8_t>(i ^ sector);
    }
    Bytes ct(512), rt(512);
    xts.encrypt_sector(sector, pt, ct);
    xts.decrypt_sector(sector, ct, rt);
    EXPECT_EQ(rt, pt) << "sector " << sector;
    EXPECT_NE(ct, pt);
  }
}

TEST(AesXts, RejectsUnalignedLength) {
  Bytes key(16, 0x0);
  AesXts xts(key, key);
  Bytes pt(20);
  Bytes ct(20);
  EXPECT_THROW(xts.encrypt_sector(0, pt, ct), std::invalid_argument);
}

// --- ChaCha20: RFC 8439 -----------------------------------------------------

TEST(ChaCha20, Rfc8439BlockFunction) {
  Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = from_hex("000000090000004a00000000");
  std::uint8_t block[64];
  chacha20_block(key, nonce, 1, block);
  Bytes expect = from_hex(
      "10f1e7e4d13b5915500fdd1fa32071c4"
      "c7d1f4c733c068030422aa9ac3d46c4e"
      "d2826446079faa0914c2d705d98b02a2"
      "b5129cd1de164eb9cbd083e8a2503c4e");
  EXPECT_EQ(Bytes(block, block + 64), expect);
}

TEST(ChaCha20, Rfc8439EncryptionVector) {
  Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = from_hex("000000000000004a00000000");
  std::string pt_str =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Bytes pt = to_bytes(pt_str);
  Bytes ct(pt.size());
  chacha20_crypt(key, nonce, 1, pt, ct);
  Bytes expect = from_hex(
      "6e2e359a2568f98041ba0728dd0d6981"
      "e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b357"
      "1639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e"
      "52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42"
      "874d");
  EXPECT_EQ(ct, expect);

  Bytes rt(ct.size());
  chacha20_crypt(key, nonce, 1, ct, rt);
  EXPECT_EQ(rt, pt);
}

TEST(ChaCha20, RejectsBadKeyOrNonce) {
  Bytes key(31), nonce(12), buf(8);
  EXPECT_THROW(chacha20_crypt(key, nonce, 0, buf, buf),
               std::invalid_argument);
  Bytes key32(32), nonce11(11);
  EXPECT_THROW(chacha20_crypt(key32, nonce11, 0, buf, buf),
               std::invalid_argument);
}

// --- SHA-256 ----------------------------------------------------------------

TEST(Sha256, KnownAnswers) {
  EXPECT_EQ(digest_hex(sha256(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(digest_hex(sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      digest_hex(sha256(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ChunkedUpdateMatchesOneShot) {
  Bytes data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  Sha256 chunked;
  std::size_t pos = 0;
  for (std::size_t chunk : {1u, 7u, 63u, 64u, 65u, 500u, 300u}) {
    std::size_t n = std::min(chunk, data.size() - pos);
    chunked.update(std::span<const std::uint8_t>(data.data() + pos, n));
    pos += n;
  }
  chunked.update(std::span<const std::uint8_t>(data.data() + pos,
                                               data.size() - pos));
  EXPECT_EQ(chunked.finish(), sha256(data));
}

TEST(Sha256, MillionAs) {
  // FIPS 180-4 long vector: one million 'a'.
  Bytes data(1'000'000, 'a');
  EXPECT_EQ(digest_hex(sha256(data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

}  // namespace
}  // namespace storm::crypto
