// Fault-injection suite: the deterministic FaultPlan itself, TCP loss
// recovery under induced drop/corrupt/duplicate/reorder, journal
// retention invariants, atomic-attachment rollback, and the full chaos
// test (lossy fabric + middle-box power failure mid-workload) whose
// event trace and data digest must be byte-identical across runs with
// the same seed.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "core/active_relay.hpp"
#include "core/platform.hpp"
#include "journal/log.hpp"
#include "crypto/sha256.hpp"
#include "iscsi/pdu.hpp"
#include "services/registry.hpp"
#include "sim/fault.hpp"
#include "testutil.hpp"

namespace storm {
namespace {

using testutil::ip;
using testutil::TwoNodeNet;

// ------------------------------------------------------------- FaultPlan

TEST(FaultPlan, SameSeedSameDecisionsAndTrace) {
  sim::PacketFaultProfile profile;
  profile.drop_rate = 0.3;
  profile.corrupt_rate = 0.2;
  profile.duplicate_rate = 0.2;
  profile.delay_rate = 0.2;

  sim::Simulator sim_a, sim_b;
  sim::FaultPlan a(sim_a, 42), b(sim_b, 42);
  for (int i = 0; i < 500; ++i) {
    auto da = a.decide(profile, "link");
    auto db = b.decide(profile, "link");
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.corrupt, db.corrupt);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.extra_delay, db.extra_delay);
  }
  EXPECT_EQ(a.trace_string(), b.trace_string());
  EXPECT_GT(a.dropped() + a.corrupted() + a.duplicated() + a.delayed(), 0u);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  sim::PacketFaultProfile profile;
  profile.drop_rate = 0.5;
  sim::Simulator sim;
  sim::FaultPlan a(sim, 1), b(sim, 2);
  for (int i = 0; i < 1000; ++i) {
    a.decide(profile, "l");
    b.decide(profile, "l");
  }
  EXPECT_NE(a.trace_string(), b.trace_string());
}

TEST(FaultPlan, FlipRandomBitChangesExactlyOneBit) {
  sim::Simulator sim;
  sim::FaultPlan plan(sim, 7);
  Bytes buf = testutil::pattern_bytes(64);
  Bytes orig = buf;
  plan.flip_random_bit(buf);
  int diff_bits = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    std::uint8_t x = buf[i] ^ orig[i];
    while (x) {
      diff_bits += x & 1;
      x >>= 1;
    }
  }
  EXPECT_EQ(diff_bits, 1);
}

TEST(FaultPlan, ScheduledEventsFireInOrderAndTrace) {
  sim::Simulator sim;
  sim::FaultPlan plan(sim, 9);
  std::vector<std::string> fired;
  plan.schedule(sim::milliseconds(2), "second", [&] { fired.push_back("b"); });
  plan.schedule(sim::milliseconds(1), "first", [&] { fired.push_back("a"); });
  sim.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], "a");
  EXPECT_EQ(fired[1], "b");
  ASSERT_EQ(plan.trace().size(), 2u);
  EXPECT_EQ(plan.trace()[0].label, "first");
  EXPECT_EQ(plan.trace()[1].label, "second");
  EXPECT_EQ(plan.trace()[0].at, sim::milliseconds(1));
}

// ----------------------------------------------- TCP under induced faults

Bytes transfer_through(TwoNodeNet& net, sim::FaultPlan& plan,
                       sim::PacketFaultProfile profile, std::size_t size) {
  net.link.set_fault(&plan, profile, "ab");
  Bytes received;
  net.b.tcp().listen(80, [&](net::TcpConnection& conn) {
    conn.set_on_data([&](Buf data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  net::TcpConnection& client =
      net.a.tcp().connect(net::SocketAddr{ip("10.0.0.2"), 80}, [] {});
  client.send(testutil::pattern_bytes(size));
  net.sim.run();
  return received;
}

TEST(TcpFault, RecoversFromPacketLoss) {
  TwoNodeNet net;
  sim::FaultPlan plan(net.sim, 11);
  sim::PacketFaultProfile profile;
  profile.drop_rate = 0.05;
  Bytes got = transfer_through(net, plan, profile, 200'000);
  EXPECT_EQ(crypto::sha256(got), crypto::sha256(testutil::pattern_bytes(200'000)));
  EXPECT_GT(plan.dropped(), 0u);
  EXPECT_GT(net.a.tcp().retransmits(), 0u);
}

TEST(TcpFault, ChecksumRejectsCorruptedSegments) {
  TwoNodeNet net;
  sim::FaultPlan plan(net.sim, 12);
  sim::PacketFaultProfile profile;
  profile.corrupt_rate = 0.05;
  Bytes got = transfer_through(net, plan, profile, 200'000);
  EXPECT_EQ(crypto::sha256(got), crypto::sha256(testutil::pattern_bytes(200'000)));
  EXPECT_GT(plan.corrupted(), 0u);
  // Corrupted segments must be dropped by the checksum, then retransmitted.
  EXPECT_GT(net.a.tcp().checksum_drops() + net.b.tcp().checksum_drops(), 0u);
}

TEST(TcpFault, DuplicatesDoNotDuplicateDelivery) {
  TwoNodeNet net;
  sim::FaultPlan plan(net.sim, 13);
  sim::PacketFaultProfile profile;
  profile.duplicate_rate = 0.1;
  Bytes got = transfer_through(net, plan, profile, 100'000);
  EXPECT_EQ(got.size(), 100'000u);
  EXPECT_EQ(crypto::sha256(got), crypto::sha256(testutil::pattern_bytes(100'000)));
  EXPECT_GT(plan.duplicated(), 0u);
}

TEST(TcpFault, ReorderingIsResequenced) {
  TwoNodeNet net;
  sim::FaultPlan plan(net.sim, 14);
  sim::PacketFaultProfile profile;
  profile.delay_rate = 0.1;
  profile.delay_jitter = sim::milliseconds(2);
  Bytes got = transfer_through(net, plan, profile, 100'000);
  EXPECT_EQ(crypto::sha256(got), crypto::sha256(testutil::pattern_bytes(100'000)));
  EXPECT_GT(plan.delayed(), 0u);
}

TEST(TcpFault, CombinedStormStillDeliversExactly) {
  TwoNodeNet net;
  sim::FaultPlan plan(net.sim, 15);
  sim::PacketFaultProfile profile;
  profile.drop_rate = 0.02;
  profile.corrupt_rate = 0.01;
  profile.duplicate_rate = 0.02;
  profile.delay_rate = 0.05;
  Bytes got = transfer_through(net, plan, profile, 300'000);
  EXPECT_EQ(crypto::sha256(got), crypto::sha256(testutil::pattern_bytes(300'000)));
}

TEST(TcpFault, TotalLossFailsConnectionAfterRetries) {
  TwoNodeNet net;
  sim::FaultPlan plan(net.sim, 16);
  sim::PacketFaultProfile profile;
  profile.drop_rate = 1.0;  // black hole
  net.link.set_fault(&plan, profile, "ab");
  bool established = false;
  Status closed = Status::ok();
  net::TcpConnection& client = net.a.tcp().connect(
      net::SocketAddr{ip("10.0.0.2"), 80}, [&] { established = true; });
  client.set_on_closed([&](Status s) { closed = s; });
  net.sim.run();
  EXPECT_FALSE(established);
  EXPECT_EQ(closed.code(), ErrorCode::kConnectionFailed);
  EXPECT_GE(client.retransmits(), net::kTcpMaxRetries);
}

// ----------------------------------- relay journal stream semantics unit
// These began life against the per-session RelayJournal buffer; the relay
// now journals through a journal::Stream multiplexed into a shared
// journal::Device, and the burst-atomicity/watermark semantics must hold
// unchanged on the new engine.

Bytes wire_of(const iscsi::Pdu& pdu) { return iscsi::serialize(pdu); }

TEST(RelayJournal, TrimNeverSplitsABurst) {
  sim::Simulator sim;
  journal::Device device(sim, sim.telemetry().scope("journal."));
  journal::Stream journal(device);
  // Burst 1: A (final). Burst 2: B (mid) + C (final). Burst 3: D (mid).
  journal.append({Buf(Bytes(10, 1))}, 10, true);
  journal.append({Buf(Bytes(10, 2))}, 20, false);
  journal.append({Buf(Bytes(10, 3))}, 30, true);
  journal.append({Buf(Bytes(10, 4))}, 40, false);
  ASSERT_EQ(journal.entries(), 4u);

  // Ack lands mid-burst-2: only whole burst 1 may go.
  journal.trim(25);
  EXPECT_EQ(journal.entries(), 3u);
  EXPECT_EQ(journal.bytes(), 30u);

  // Ack covers burst 2 exactly: B and C go, the torn tail D stays.
  journal.trim(30);
  EXPECT_EQ(journal.entries(), 1u);
  EXPECT_EQ(chain_to_bytes(journal.unacknowledged().front()), Bytes(10, 4));

  // Acks past a non-boundary tail never drop it.
  journal.trim(1000);
  EXPECT_EQ(journal.entries(), 1u);
}

TEST(RelayJournal, ReplayHeadIsAlwaysAFreshCommand) {
  // Build a journal the way the relay does: two write bursts, each a
  // command PDU followed by Data-Out PDUs (final flag on the last).
  struct Entry {
    Bytes wire;
    std::uint64_t watermark;
    bool boundary;
  };
  std::vector<Entry> entries;
  std::uint64_t watermark = 0;
  std::vector<std::uint64_t> watermarks;
  for (std::uint32_t burst = 0; burst < 2; ++burst) {
    iscsi::Pdu cmd = iscsi::make_write_command(burst + 1, burst * 64, 16384);
    Bytes w = wire_of(cmd);
    watermark += w.size();
    entries.push_back(Entry{std::move(w), watermark, cmd.is_final()});
    watermarks.push_back(watermark);
    for (std::uint32_t off = 0; off < 16384; off += iscsi::kMaxDataSegment) {
      iscsi::Pdu data = iscsi::make_data_out(
          burst + 1, off, Bytes(iscsi::kMaxDataSegment, 0x5A),
          off + iscsi::kMaxDataSegment == 16384);
      Bytes dw = wire_of(data);
      watermark += dw.size();
      entries.push_back(Entry{std::move(dw), watermark, data.is_final()});
      watermarks.push_back(watermark);
    }
  }

  // Sweep every entry boundary (and a mid-entry ack): after any trim, a
  // replay must start at a SCSI command, never inside a burst. The old
  // buffer was copyable; the engine is not, so rebuild per ack point.
  std::vector<std::uint64_t> acks = watermarks;
  for (std::uint64_t w : watermarks) acks.push_back(w > 3 ? w - 3 : 0);
  acks.push_back(0);
  for (std::uint64_t ack : acks) {
    sim::Simulator sim;
    journal::Device device(sim, sim.telemetry().scope("journal."));
    journal::Stream journal(device);
    for (const Entry& e : entries) {
      journal.append({Buf(Bytes(e.wire))}, e.watermark, e.boundary);
    }
    journal.trim(ack);
    auto replay = journal.unacknowledged();
    if (replay.empty()) continue;
    Bytes head = chain_to_bytes(replay.front());
    auto parsed = iscsi::parse_pdu(
        std::span<const std::uint8_t>(head.data() + 4, head.size() - 4));
    ASSERT_TRUE(parsed.is_ok()) << "ack=" << ack;
    EXPECT_EQ(parsed.value().opcode, iscsi::Opcode::kScsiCommand)
        << "replay after ack=" << ack << " starts mid-burst with "
        << iscsi::to_string(parsed.value().opcode);
  }
}

TEST(RelayJournal, WatermarkTrimmingTracksBytes) {
  sim::Simulator sim;
  journal::Device device(sim, sim.telemetry().scope("journal."));
  journal::Stream journal(device);
  journal.append({Buf(Bytes(100, 1))}, 100, true);
  journal.append({Buf(Bytes(50, 2))}, 150, true);
  EXPECT_EQ(journal.bytes(), 150u);
  journal.trim(99);  // nothing fully acked
  EXPECT_EQ(journal.bytes(), 150u);
  journal.trim(100);
  EXPECT_EQ(journal.bytes(), 50u);
  journal.trim(150);
  EXPECT_EQ(journal.bytes(), 0u);
  EXPECT_TRUE(journal.unacknowledged().empty());
}

// --------------------------------------------- atomic attachment rollback

class PlatformFaultTest : public ::testing::Test {
 protected:
  PlatformFaultTest() : cloud_(sim_, cloud::CloudConfig{}),
                        platform_(cloud_) {
    services::register_builtin_services(platform_);
  }

  core::DeploymentHandle deploy(const std::string& vm, const std::string& vol,
                                Status* out_status = nullptr) {
    core::ServiceSpec spec;
    spec.type = "noop";
    spec.relay = core::RelayMode::kActive;
    Status status = error(ErrorCode::kIoError, "unset");
    core::DeploymentHandle deployment;
    platform_.attach_with_chain(vm, vol, {spec},
                                [&](Result<core::DeploymentHandle> r) {
                                  status = r.status();
                                  if (r.is_ok()) deployment = r.value();
                                });
    sim_.run();
    if (out_status != nullptr) *out_status = status;
    return deployment;
  }

  /// Count rules tagged with `cookie` anywhere in the fabric. Rollback
  /// must leave this at zero.
  std::size_t rules_with_cookie(std::uint64_t cookie) {
    std::size_t count = 0;
    for (net::FlowSwitch* fs : cloud_.flow_switches()) {
      for (const auto& rule : fs->rules()) {
        if (rule.cookie == cookie) ++count;
      }
    }
    auto& gws = platform_.splicer().tenant_gateways("t");
    count += gws.ingress->nat().remove_rules_by_cookie(cookie);
    count += gws.egress->nat().remove_rules_by_cookie(cookie);
    for (unsigned i = 0; i < cloud_.compute_count(); ++i) {
      count += cloud_.compute(i).node().nat().remove_rules_by_cookie(cookie);
    }
    return count;
  }

  sim::Simulator sim_;
  cloud::Cloud cloud_;
  core::StormPlatform platform_;
};

TEST_F(PlatformFaultTest, FailedAttachRollsBackAllRulesAndFlows) {
  cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 20'000).is_ok());

  // Backend dark before the attach: every rule is installed, the login
  // SYN retries exhaust, and the attach must fail *atomically* — no NAT
  // rule, no SDN flow, no deployment left behind.
  cloud_.storage(0).node().set_down(true);

  Status status = Status::ok();
  core::DeploymentHandle dep = deploy("vm", "vol", &status);
  EXPECT_FALSE(status.is_ok());
  EXPECT_FALSE(dep.valid());
  EXPECT_FALSE(platform_.find_deployment("vm", "vol").valid());
  EXPECT_EQ(rules_with_cookie(1), 0u) << "half-spliced state survived";
  EXPECT_FALSE(cloud_.find_attachment("vm", "vol").has_value());

  // The fabric is clean: power the backend back on and the same attach
  // succeeds from scratch.
  cloud_.storage(0).node().set_down(false);
  dep = deploy("vm", "vol", &status);
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  ASSERT_TRUE(dep.valid());

  cloud::Vm& vm = *cloud_.find_vm("vm");
  bool ok = false;
  vm.disk()->write(0, Bytes(block::kSectorSize, 0xCD),
                   [&](Status s) { ok = s.is_ok(); });
  sim_.run();
  EXPECT_TRUE(ok);
}

TEST_F(PlatformFaultTest, CrashAndRestartReplaysJournal) {
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 40'000).is_ok());
  core::DeploymentHandle dep = deploy("vm", "vol");
  ASSERT_TRUE(dep.valid());
  dep.attachment()->initiator->set_recovery({.enabled = true});

  Bytes payload = testutil::pattern_bytes(128 * block::kSectorSize);
  int state = 0;
  vm.disk()->write(64, payload, [&](Status s) { state = s.is_ok() ? 1 : -1; });
  // Power-fail the middle-box with the burst mid-flight.
  sim_.run_for(sim::microseconds(400));
  ASSERT_TRUE(dep.crash_middlebox(0).is_ok());
  sim_.run_for(sim::milliseconds(20));
  ASSERT_TRUE(dep.restart_middlebox(0).is_ok());
  sim_.run();

  EXPECT_EQ(state, 1) << "write lost across middle-box power failure";
  EXPECT_GT(dep.active_relay(0)->journal_replays(), 0u);
  EXPECT_GT(dep.attachment()->initiator->recoveries(), 0u);
  auto volume = cloud_.storage(0).volumes().find_by_name("vol");
  EXPECT_EQ(volume.value()->disk().store().read_sync(64, 128), payload);
}

// ------------------------------------------- backpressure under stall

/// Active-relay deployment with tenant-tuned NVRAM watermarks: pause
/// ingress credit at 32 KiB buffered, resume at 8 KiB.
core::DeploymentHandle deploy_with_watermarks(core::StormPlatform& platform,
                                              sim::Simulator& sim) {
  core::ServiceSpec spec;
  spec.type = "noop";
  spec.relay = core::RelayMode::kActive;
  spec.params["journal_hwm_kb"] = "32";
  spec.params["journal_lwm_kb"] = "8";
  Status status = error(ErrorCode::kIoError, "unset");
  core::DeploymentHandle dep;
  platform.attach_with_chain("vm", "vol", {spec},
                             [&](Result<core::DeploymentHandle> r) {
                               status = r.status();
                               if (r.is_ok()) dep = r.value();
                             });
  sim.run();
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  return dep;
}

TEST_F(PlatformFaultTest, WatermarksBoundRelayBufferingAcrossStall) {
  cloud::Vm& vm = cloud_.create_vm("vm", "t", 0);
  ASSERT_TRUE(cloud_.create_volume("vol", 40'000).is_ok());
  core::DeploymentHandle dep = deploy_with_watermarks(platform_, sim_);
  ASSERT_TRUE(dep.valid());
  core::ActiveRelay* relay = dep.active_relay(0);
  ASSERT_NE(relay, nullptr);
  ASSERT_EQ(relay->flow_control().high_watermark, 32u * 1024u);

  // Stall the backend for 500 ms of sim time while the initiator keeps
  // four 64 KiB writes in flight (each completion issues the next).
  cloud_.storage(0).node().set_down(true);
  sim_.schedule_in(sim::milliseconds(500),
             [&] { cloud_.storage(0).node().set_down(false); });

  constexpr int kWrites = 24;
  constexpr std::uint32_t kSectors = 128;  // 64 KiB each, distinct LBAs
  int completed = 0, failed = 0, next = 0;
  std::function<void()> issue = [&] {
    const int i = next++;
    Bytes data = testutil::pattern_bytes(kSectors * block::kSectorSize,
                                         static_cast<std::uint8_t>(i + 1));
    vm.disk()->write(static_cast<std::uint64_t>(i) * kSectors,
                     std::move(data), [&](Status s) {
                       ++completed;
                       if (!s.is_ok()) ++failed;
                       if (next < kWrites) issue();
                     });
  };
  for (int i = 0; i < 4; ++i) issue();

  // Mid-stall the relay must be paused with its buffering pinned near
  // the watermark, and the stalled-but-alive initiator must not have
  // lost its connection.
  sim_.run_until(sim::milliseconds(300));
  EXPECT_GE(relay->paused_directions(), 1u);
  EXPECT_GE(relay->buffered_bytes(), 32u * 1024u);

  sim_.run();
  EXPECT_EQ(completed, kWrites);
  EXPECT_EQ(failed, 0);
  // Bound: one complete 64 KiB burst (the watermarks only count complete
  // bursts, so a burst already past the 32 KiB watermark finishes) + one
  // receive window of in-flight credit for the next torn burst + header/
  // segmentation slack. Without backpressure the early-ACK loop would
  // have journaled the whole 1.5 MiB workload during the stall.
  EXPECT_GE(relay->peak_buffered_bytes(), 32u * 1024u);
  EXPECT_LE(relay->peak_buffered_bytes(), 64u * 1024u + 36u * 1024u + 28u * 1024u);
  // Fully drained and unpaused once the backend caught up.
  EXPECT_EQ(relay->queue_bytes(), 0u);
  EXPECT_EQ(relay->paused_directions(), 0u);
  EXPECT_EQ(relay->journal_bytes(), 0u);

  // Early-ACK semantics below the watermark survived: every byte landed.
  auto volume = cloud_.storage(0).volumes().find_by_name("vol");
  ASSERT_TRUE(volume.is_ok());
  for (int i = 0; i < kWrites; ++i) {
    Bytes expect = testutil::pattern_bytes(kSectors * block::kSectorSize,
                                           static_cast<std::uint8_t>(i + 1));
    EXPECT_EQ(volume.value()->disk().store().read_sync(
                  static_cast<std::uint64_t>(i) * kSectors, kSectors),
              expect)
        << "write " << i << " corrupted or lost";
  }
}

// The backpressure-paused-crash replay regression moved to
// failure_test.cpp (FailureTest.JournalReplaysAfterBackpressurePausedCrash),
// re-pointed at the journal engine with segment-level asserts.

// ------------------------------------------------------------- chaos test

struct ChaosOutcome {
  std::string trace;
  std::string digest;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t replays = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t retransmits = 0;
  int failed_writes = 0;
  std::string first_error;
};

/// One full chaos run: active-relay chain, 1% loss / 0.1% corruption /
/// 0.2% duplication on every link, middle-box power failure at the
/// workload's midpoint, restart 20 ms later. Returns the fault trace and
/// the digest of the final volume image.
ChaosOutcome run_chaos(std::uint64_t seed) {
  sim::Simulator sim;
  cloud::Cloud cloud(sim, cloud::CloudConfig{});
  core::StormPlatform platform(cloud);
  services::register_builtin_services(platform);
  sim::FaultPlan plan(sim, seed);

  cloud::Vm& vm = cloud.create_vm("vm", "t", 0);
  if (!cloud.create_volume("vol", 40'000).is_ok()) return {};
  core::ServiceSpec spec;
  spec.type = "noop";
  spec.relay = core::RelayMode::kActive;
  Status status = error(ErrorCode::kIoError, "unset");
  core::DeploymentHandle dep;
  platform.attach_with_chain("vm", "vol", {spec},
                             [&](Result<core::DeploymentHandle> r) {
                               status = r.status();
                               if (r.is_ok()) dep = r.value();
                             });
  sim.run();
  if (!status.is_ok() || !dep.valid()) return {};
  dep.attachment()->initiator->set_recovery({.enabled = true});

  // Faults arm only after the clean attach: the acceptance scenario is a
  // healthy deployment hit by a lossy fabric plus a power failure.
  sim::PacketFaultProfile profile;
  profile.drop_rate = 0.01;
  profile.corrupt_rate = 0.001;
  profile.duplicate_rate = 0.002;
  cloud.set_fault_plan(&plan, profile);

  constexpr int kWrites = 24;
  constexpr std::uint32_t kSectors = 16;  // 8 KB each, distinct LBAs
  ChaosOutcome out;
  int completed = 0;
  for (int i = 0; i < kWrites; ++i) {
    Bytes data = testutil::pattern_bytes(
        kSectors * block::kSectorSize, static_cast<std::uint8_t>(i + 1));
    vm.disk()->write(static_cast<std::uint64_t>(i) * kSectors,
                     std::move(data), [&, i](Status s) {
                       ++completed;
                       if (!s.is_ok()) {
                         ++out.failed_writes;
                         if (out.first_error.empty()) {
                           out.first_error = s.to_string();
                         }
                       }
                       if (i == kWrites / 2) {
                         // Power-fail the middle-box mid-workload; bring
                         // it back 20 ms later.
                         plan.record("crash mb0");
                         (void)dep.crash_middlebox(0);
                         plan.schedule(
                             sim.now() + sim::milliseconds(20), "restart mb0",
                             [&] { (void)dep.restart_middlebox(0); });
                       }
                     });
  }
  sim.run();

  if (completed != kWrites) out.failed_writes = kWrites - completed;
  out.trace = plan.trace_string();
  out.dropped = plan.dropped();
  out.corrupted = plan.corrupted();
  out.replays = dep.active_relay(0)->journal_replays();
  out.recoveries = dep.attachment()->initiator->recoveries();
  out.retransmits = cloud.compute(0).node().tcp().retransmits();

  auto volume = cloud.storage(0).volumes().find_by_name("vol");
  Bytes image = volume.value()->disk().store().read_sync(
      0, kWrites * kSectors);
  out.digest = crypto::digest_hex(crypto::sha256(image));
  return out;
}

TEST(Chaos, SameSeedIsByteIdenticalAndLosesNothing) {
  ChaosOutcome first = run_chaos(0xC0FFEE);
  ChaosOutcome second = run_chaos(0xC0FFEE);

  // Determinism: same seed -> same fault trace, same final volume image.
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.digest, second.digest);
  ASSERT_FALSE(first.digest.empty());

  // Zero data loss through loss, corruption, duplication and a
  // mid-workload middle-box power failure.
  EXPECT_EQ(first.failed_writes, 0);
  EXPECT_EQ(second.failed_writes, 0);

  // The run actually exercised the machinery it claims to.
  EXPECT_GT(first.dropped, 0u);
  EXPECT_GT(first.corrupted, 0u);
  EXPECT_GT(first.replays, 0u);
  EXPECT_GT(first.recoveries, 0u);
  EXPECT_GT(first.retransmits, 0u);

  // The expected image: every write landed exactly where it was aimed.
  Bytes expected;
  for (int i = 0; i < 24; ++i) {
    Bytes chunk = testutil::pattern_bytes(16 * block::kSectorSize,
                                          static_cast<std::uint8_t>(i + 1));
    expected.insert(expected.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(first.digest, crypto::digest_hex(crypto::sha256(expected)));
}

TEST(Chaos, DifferentSeedsProduceDifferentTracesSameData) {
  ChaosOutcome a = run_chaos(1);
  ChaosOutcome b = run_chaos(2);
  EXPECT_NE(a.trace, b.trace);
  // Data integrity is seed-independent.
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.failed_writes, 0) << a.first_error;
  EXPECT_EQ(b.failed_writes, 0) << b.first_error;
}

}  // namespace
}  // namespace storm
