// Non-cryptographic hashes: CRC32 (iSCSI-style data digests) and FNV-1a
// (hash-table keys for the semantics-reconstruction block index).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace storm {

/// CRC32 (IEEE 802.3 polynomial, reflected). Used as the data digest on
/// simulated iSCSI PDUs.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental CRC32 over a sequence of spans; final() equals crc32() of
/// the concatenation. Lets chunked serializers digest a scattered PDU
/// without first flattening it.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data);
  std::uint32_t final() const { return c_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t c_ = 0xFFFFFFFFu;
};

/// 64-bit FNV-1a.
std::uint64_t fnv1a(std::string_view s);
std::uint64_t fnv1a(std::span<const std::uint8_t> data);

}  // namespace storm
