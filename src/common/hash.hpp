// Non-cryptographic hashes: CRC32 (iSCSI-style data digests) and FNV-1a
// (hash-table keys for the semantics-reconstruction block index).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace storm {

/// CRC32 (IEEE 802.3 polynomial, reflected). Used as the data digest on
/// simulated iSCSI PDUs.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// 64-bit FNV-1a.
std::uint64_t fnv1a(std::string_view s);
std::uint64_t fnv1a(std::span<const std::uint8_t> data);

}  // namespace storm
