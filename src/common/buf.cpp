#include "common/buf.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace storm {

namespace bufstats {
namespace {
// Relaxed atomic: the simulator is single-threaded, but the TSan CI job
// may run suites that touch this from test scaffolding.
std::atomic<std::uint64_t> g_bytes_copied{0};
}  // namespace

std::uint64_t bytes_copied() {
  return g_bytes_copied.load(std::memory_order_relaxed);
}

void add_bytes_copied(std::size_t n) {
  g_bytes_copied.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace bufstats

Buf::Buf(Bytes&& bytes) {
  if (bytes.empty()) return;
  len_ = bytes.size();
  storage_ = std::make_shared<Bytes>(std::move(bytes));
}

Buf Buf::copy(std::span<const std::uint8_t> data) {
  bufstats::add_bytes_copied(data.size());
  return Buf(Bytes(data.begin(), data.end()));
}

Buf Buf::slice(std::size_t off, std::size_t len) const {
  if (off > len_ || len > len_ - off) {
    throw std::out_of_range("Buf::slice out of range");
  }
  if (len == 0) return Buf{};
  return Buf(storage_, off_ + off, len);
}

std::span<std::uint8_t> Buf::mutable_span() {
  if (!storage_) return {};
  if (storage_.use_count() > 1) {
    bufstats::add_bytes_copied(len_);
    auto clone = std::make_shared<Bytes>(
        storage_->begin() + static_cast<std::ptrdiff_t>(off_),
        storage_->begin() + static_cast<std::ptrdiff_t>(off_ + len_));
    storage_ = std::move(clone);
    off_ = 0;
  }
  return {storage_->data() + off_, len_};
}

Bytes Buf::to_bytes() const {
  bufstats::add_bytes_copied(len_);
  return Bytes(begin(), end());
}

void Buf::append_to(Bytes& out) const {
  bufstats::add_bytes_copied(len_);
  out.insert(out.end(), begin(), end());
}

bool operator==(const Buf& a, const Buf& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool operator==(const Buf& a, const Bytes& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

std::size_t chain_size(const BufChain& chain) {
  std::size_t total = 0;
  for (const Buf& chunk : chain) total += chunk.size();
  return total;
}

Bytes chain_to_bytes(const BufChain& chain) {
  Bytes out;
  out.reserve(chain_size(chain));
  for (const Buf& chunk : chain) chunk.append_to(out);
  return out;
}

}  // namespace storm
