#include "common/bytes.hpp"

namespace storm {

std::string to_hex(std::span<const std::uint8_t> data, std::size_t max) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  std::size_t n = std::min(data.size(), max);
  out.reserve(n * 2 + 3);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xF]);
  }
  if (n < data.size()) out += "...";
  return out;
}

}  // namespace storm
