// Refcounted, immutable payload buffer with O(1) slicing and
// copy-on-write mutation — the zero-copy currency of the data path.
//
// A Buf is a [off, off+len) view into shared storage. Copying a Buf or
// taking a slice() bumps a refcount; no payload bytes move. The only
// operations that copy bytes are the explicit ones (Buf::copy, to_bytes,
// append_to) and the COW clone inside mutable_span() when the storage is
// shared — and every one of them feeds the process-wide copied-bytes
// ledger (bufstats), which the obs registry exports as net.bytes_copied.
// That makes "how many times did this byte get memcpy'd on its way from
// initiator to disk" a directly observable quantity.
//
// Ownership rules (see DESIGN.md "Buffer ownership"):
//   * Anyone may hold a Buf indefinitely (journal entries, retransmit
//     queues, held packets); holders are isolated from each other because
//     the bytes behind a shared Buf are never mutated in place.
//   * Writers call mutable_span(); it clones iff the storage is shared,
//     so a corrupted or rewritten packet can never alias another
//     holder's bytes.
//   * A uniquely-owned Buf mutates in place even when sliced — no other
//     reference can observe any byte of that storage.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace storm {

namespace bufstats {

/// Process-wide monotonic count of payload bytes copied by the data path.
std::uint64_t bytes_copied();

/// Charge `n` bytes to the copy ledger. Buf's own copying operations call
/// this internally; code that copies payload through other means (vector
/// inserts, memcpy gather loops) charges itself explicitly.
void add_bytes_copied(std::size_t n);

}  // namespace bufstats

class Buf {
 public:
  Buf() = default;

  /// Adopt a byte vector (zero copy). Intentionally implicit: it makes
  /// `payload = std::move(bytes)` and `{}` work wherever a Buf is taken.
  Buf(Bytes&& bytes);

  /// Counted copy into fresh storage.
  static Buf copy(std::span<const std::uint8_t> data);

  Buf(const Buf&) = default;
  Buf& operator=(const Buf&) = default;

  // A moved-from Buf is empty, exactly like a moved-from Bytes vector.
  // Code that queues a packet with `[p = std::move(pkt)] {...}` and then
  // asks the original for its size must keep seeing zero, or every
  // size-derived cost in the simulation shifts.
  Buf(Buf&& other) noexcept
      : storage_(std::move(other.storage_)), off_(other.off_),
        len_(other.len_) {
    other.off_ = 0;
    other.len_ = 0;
  }
  Buf& operator=(Buf&& other) noexcept {
    storage_ = std::move(other.storage_);
    off_ = other.off_;
    len_ = other.len_;
    other.off_ = 0;
    other.len_ = 0;
    return *this;
  }

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  const std::uint8_t* data() const {
    return storage_ ? storage_->data() + off_ : nullptr;
  }
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + len_; }
  const std::uint8_t& operator[](std::size_t i) const { return data()[i]; }

  std::span<const std::uint8_t> span() const { return {data(), len_}; }
  operator std::span<const std::uint8_t>() const { return span(); }

  /// O(1) sub-view sharing this Buf's storage.
  Buf slice(std::size_t off, std::size_t len) const;
  Buf slice(std::size_t off) const { return slice(off, len_ - off); }

  /// Writable view, copy-on-write: clones [off, off+len) iff the storage
  /// is shared with any other Buf. Mutating through the returned span can
  /// therefore never change bytes another holder sees.
  std::span<std::uint8_t> mutable_span();

  /// Counted copy out to a standalone vector.
  Bytes to_bytes() const;
  /// Counted append onto `out`.
  void append_to(Bytes& out) const;

  /// Diagnostics for the aliasing tests.
  bool shares_storage_with(const Buf& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }
  long storage_use_count() const { return storage_.use_count(); }

 private:
  Buf(std::shared_ptr<Bytes> storage, std::size_t off, std::size_t len)
      : storage_(std::move(storage)), off_(off), len_(len) {}

  std::shared_ptr<Bytes> storage_;  // mutated only when uniquely owned
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

bool operator==(const Buf& a, const Buf& b);
bool operator==(const Buf& a, const Bytes& b);

/// A wire message as a sequence of refcounted chunks (typically
/// header / data / trailer) — lets a serializer reference a payload
/// instead of copying it into a contiguous buffer.
using BufChain = std::vector<Buf>;

std::size_t chain_size(const BufChain& chain);

/// Counted flatten of a chain into one contiguous vector.
Bytes chain_to_bytes(const BufChain& chain);

}  // namespace storm
