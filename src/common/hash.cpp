#include "common/hash.hpp"

#include <array>

namespace storm {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) {
  static const auto table = make_crc_table();
  for (std::uint8_t b : data) {
    c_ = table[(c_ ^ b) & 0xFF] ^ (c_ >> 8);
  }
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  Crc32 state;
  state.update(data);
  return state.final();
}

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
}  // namespace

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (char ch : s) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = kFnvOffset;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace storm
