// Minimal leveled logger. Defaults to warnings-only so tests and benches
// stay quiet; examples raise the level to show the platform working.
#pragma once

#include <sstream>
#include <string>

namespace storm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { log_message(level_, component_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

struct NullLine {
  template <typename T>
  NullLine& operator<<(const T&) {
    return *this;
  }
};

}  // namespace detail

inline auto log_debug(std::string component) {
  return detail::LogLine(LogLevel::kDebug, std::move(component));
}
inline auto log_info(std::string component) {
  return detail::LogLine(LogLevel::kInfo, std::move(component));
}
inline auto log_warn(std::string component) {
  return detail::LogLine(LogLevel::kWarn, std::move(component));
}
inline auto log_error(std::string component) {
  return detail::LogLine(LogLevel::kError, std::move(component));
}

}  // namespace storm
