// Byte-buffer utilities: big-endian wire codecs used by every protocol
// module (iSCSI PDUs, Ethernet/IP/TCP headers, on-disk filesystem layouts).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace storm {

using Bytes = std::vector<std::uint8_t>;

/// Appends big-endian encoded fields to a growing byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void raw(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }
  /// Length-prefixed (u16) string, used by key=value protocol segments.
  void str(std::string_view s) {
    u16(static_cast<std::uint16_t>(s.size()));
    raw(s.data(), s.size());
  }
  void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

  std::size_t size() const { return out_.size(); }

 private:
  Bytes& out_;
};

/// Reads big-endian encoded fields from a byte span with bounds checking.
/// Throws std::out_of_range on truncated input; protocol layers convert
/// this to a parse error at their boundary.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                      data_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u64() {
    std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  Bytes raw(std::size_t n) {
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string str() {
    std::size_t n = u16();
    need(n);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw std::out_of_range("ByteReader: truncated input");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Human-readable hex dump of up to `max` bytes (diagnostics / logs).
std::string to_hex(std::span<const std::uint8_t> data, std::size_t max = 64);

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace storm
