// Deterministic PRNG (splitmix64) so every simulation run, test and bench
// is bit-for-bit reproducible regardless of platform libstdc++.
#pragma once

#include <cstdint>

namespace storm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5a17b0d5u) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64()); }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace storm
