// Lightweight Status / Result<T> error propagation for recoverable
// protocol and storage errors (C++20 has no std::expected yet).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace storm {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfSpace,
  kIoError,
  kParseError,
  kConnectionFailed,
  kPermissionDenied,
  kUnavailable,
  kFailedPrecondition,
  kDeadlineExceeded,
};

const char* to_string(ErrorCode code);

class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(storm::to_string(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

/// Holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).is_ok()) {
      throw std::logic_error("Result constructed from OK status");
    }
  }

  bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    check();
    return std::get<T>(data_);
  }
  T& value() & {
    check();
    return std::get<T>(data_);
  }
  T&& take() && {
    check();
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }

 private:
  void check() const {
    if (!is_ok()) {
      throw std::runtime_error("Result::value on error: " +
                               std::get<Status>(data_).to_string());
    }
  }

  std::variant<T, Status> data_;
};

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kOutOfSpace: return "OUT_OF_SPACE";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kParseError: return "PARSE_ERROR";
    case ErrorCode::kConnectionFailed: return "CONNECTION_FAILED";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

}  // namespace storm
