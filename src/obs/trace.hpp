// Trace spans over simulated time.
//
// A Span covers one logical operation (a SCSI command, a deployment
// attach); hop events stamped onto it record each layer crossing with
// sim-time and a free-form value (queue depth, byte count). Spans link
// parent -> child, so one command traced VM -> gateway -> middle-boxes
// -> target carries per-relay child spans under the command's root span.
//
// Cross-layer correlation uses string keys (e.g. "cmd:<port>:<tag>"):
// the layer that starts a root span binds the key; downstream layers
// look it up to attach events/children without any in-band plumbing.
// Span ids are sequential and times are sim-clock, so identically
// seeded runs produce identical traces.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace storm::obs {

using SpanId = std::uint64_t;

struct SpanEvent {
  std::string label;
  sim::Time at = 0;
  std::uint64_t value = 0;  // layer-defined: queue depth, bytes, ...
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  sim::Time start = 0;
  sim::Time end = 0;
  bool ended = false;
  std::vector<SpanEvent> events;
};

class Tracer {
 public:
  /// Spans beyond this many become id-only (events/end are dropped);
  /// bounds memory on long benchmark runs while keeping early commands
  /// fully traced for sampling.
  explicit Tracer(std::size_t max_retained = 8192)
      : max_retained_(max_retained) {}

  SpanId begin_span(std::string name, sim::Time now, SpanId parent = 0);
  void add_event(SpanId id, std::string label, sim::Time now,
                 std::uint64_t value = 0);
  void end_span(SpanId id, sim::Time now);

  /// Correlation keys: at most one live span per key.
  void bind(const std::string& key, SpanId id) { bindings_[key] = id; }
  SpanId lookup(const std::string& key) const;
  void unbind(const std::string& key) { bindings_.erase(key); }

  const Span* span(SpanId id) const;
  std::vector<const Span*> spans_named(const std::string& name) const;
  std::vector<const Span*> children_of(SpanId parent) const;
  const std::vector<Span>& spans() const { return spans_; }

  std::uint64_t spans_started() const { return next_id_ - 1; }
  std::uint64_t spans_dropped() const { return dropped_; }

 private:
  Span* find(SpanId id);

  std::size_t max_retained_;
  SpanId next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<Span> spans_;
  std::map<SpanId, std::size_t> index_;
  std::map<std::string, SpanId> bindings_;
};

}  // namespace storm::obs
