#include "obs/trace.hpp"

namespace storm::obs {

SpanId Tracer::begin_span(std::string name, sim::Time now, SpanId parent) {
  SpanId id = next_id_++;
  if (spans_.size() >= max_retained_) {
    ++dropped_;
    return id;
  }
  Span span;
  span.id = id;
  span.parent = parent;
  span.name = std::move(name);
  span.start = now;
  index_[id] = spans_.size();
  spans_.push_back(std::move(span));
  return id;
}

Span* Tracer::find(SpanId id) {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

void Tracer::add_event(SpanId id, std::string label, sim::Time now,
                       std::uint64_t value) {
  if (Span* span = find(id)) {
    span->events.push_back(SpanEvent{std::move(label), now, value});
  }
}

void Tracer::end_span(SpanId id, sim::Time now) {
  if (Span* span = find(id)) {
    span->end = now;
    span->ended = true;
  }
}

SpanId Tracer::lookup(const std::string& key) const {
  auto it = bindings_.find(key);
  return it == bindings_.end() ? 0 : it->second;
}

const Span* Tracer::span(SpanId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

std::vector<const Span*> Tracer::spans_named(const std::string& name) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.name == name) out.push_back(&span);
  }
  return out;
}

std::vector<const Span*> Tracer::children_of(SpanId parent) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.parent == parent) out.push_back(&span);
  }
  return out;
}

}  // namespace storm::obs
