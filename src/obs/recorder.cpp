#include "obs/recorder.hpp"

namespace storm::obs {

void FlightRecorder::record(sim::Time now, std::string what) {
  ++total_;
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(Event{now, std::move(what)});
    return;
  }
  ring_[next_] = Event{now, std::move(what)};
  next_ = (next_ + 1) % capacity_;
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::dump(std::ostream& out) const {
  out << "--- flight recorder (" << ring_.size() << "/" << total_
      << " events) ---\n";
  for (const Event& event : events()) {
    out << "  t=" << event.at << "ns  " << event.what << "\n";
  }
}

}  // namespace storm::obs
