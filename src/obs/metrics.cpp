#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace storm::obs {

namespace {
// 64 linear sub-buckets per power of two: values below 64 are exact,
// larger values quantize to a bucket of width 2^(msb-6).
constexpr std::uint32_t kSubBuckets = 64;
constexpr std::uint32_t kSubBucketBits = 6;
}  // namespace

std::uint32_t Histogram::bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::uint32_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - static_cast<int>(kSubBucketBits);
  const std::uint64_t top = v >> shift;  // in [64, 127]
  return static_cast<std::uint32_t>((shift + 1) * kSubBuckets +
                                    (top - kSubBuckets));
}

std::int64_t Histogram::bucket_representative(std::uint32_t index) {
  if (index < kSubBuckets) return static_cast<std::int64_t>(index);
  const std::uint32_t shift = index / kSubBuckets - 1;
  const std::uint64_t top = kSubBuckets + index % kSubBuckets;
  const std::uint64_t low = top << shift;
  const std::uint64_t high = low + ((1ull << shift) - 1);
  return static_cast<std::int64_t>((low + high) / 2);
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  ++buckets_[bucket_index(static_cast<std::uint64_t>(value))];
}

double Histogram::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::percentile(double p) const {
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  if (count_ == 0) return 0.0;
  if (p == 0.0) return static_cast<double>(min_);
  if (p == 100.0) return static_cast<double>(max_);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (const auto& [index, n] : buckets_) {
    seen += n;
    if (seen >= target) {
      // Clamp the representative into the observed range so percentiles
      // never stray outside [min, max].
      std::int64_t rep = bucket_representative(index);
      if (rep < min_) rep = min_;
      if (rep > max_) rep = max_;
      return static_cast<double>(rep);
    }
  }
  return static_cast<double>(max_);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
}

void Histogram::clear() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::map<std::int64_t, std::uint64_t> Histogram::buckets() const {
  std::map<std::int64_t, std::uint64_t> out;
  for (const auto& [index, n] : buckets_) {
    out[bucket_representative(index)] += n;
  }
  return out;
}

}  // namespace storm::obs
