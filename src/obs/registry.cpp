#include "obs/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <sstream>

#include "common/buf.hpp"
#include "sim/simulator.hpp"

namespace storm::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  append_escaped(out, s);
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

// Shared renderer so the single-registry and merged exports emit exactly
// the same shape (and stay byte-comparable between the two paths).
std::string render_json(sim::Time now,
                        const std::map<std::string, std::uint64_t>& counters,
                        const std::map<std::string, std::int64_t>& gauges,
                        const std::map<std::string, const Histogram*>& hists,
                        const std::vector<FlightRecorder::Event>& events,
                        const std::vector<const Span*>& spans,
                        bool include_spans) {
  std::string out;
  out += "{\n  \"sim_time_ns\": " + std::to_string(now);

  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : hists) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(hist->count());
    out += ", \"sum\": " + std::to_string(hist->sum());
    out += ", \"min\": " + std::to_string(hist->min());
    out += ", \"max\": " + std::to_string(hist->max());
    out += ", \"mean\": ";
    append_double(out, hist->mean());
    for (double p : {50.0, 90.0, 99.0}) {
      out += ", \"p" + std::to_string(static_cast<int>(p)) + "\": ";
      append_double(out, hist->percentile(p));
    }
    out += "}";
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"flight_recorder\": [";
  first = true;
  for (const auto& event : events) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"at\": " + std::to_string(event.at) + ", \"what\": ";
    append_json_string(out, event.what);
    out += "}";
  }
  out += first ? "]" : "\n  ]";

  if (include_spans) {
    out += ",\n  \"spans\": [";
    first = true;
    for (const Span* span : spans) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"id\": " + std::to_string(span->id);
      out += ", \"parent\": " + std::to_string(span->parent);
      out += ", \"name\": ";
      append_json_string(out, span->name);
      out += ", \"start\": " + std::to_string(span->start);
      out +=
          ", \"end\": " + std::to_string(span->ended ? span->end : span->start);
      out += ", \"ended\": ";
      out += span->ended ? "true" : "false";
      out += ", \"events\": [";
      bool first_event = true;
      for (const SpanEvent& event : span->events) {
        out += first_event ? "" : ", ";
        first_event = false;
        out += "{\"label\": ";
        append_json_string(out, event.label);
        out += ", \"at\": " + std::to_string(event.at);
        out += ", \"value\": " + std::to_string(event.value) + "}";
      }
      out += "]}";
    }
    out += first ? "]" : "\n  ]";
  }

  out += "\n}\n";
  return out;
}

}  // namespace

Counter& Scope::counter(const std::string& name) const {
  static Counter null_counter;
  if (registry_ == nullptr) return null_counter;
  return registry_->counter(prefix_ + name);
}

Gauge& Scope::gauge(const std::string& name) const {
  static Gauge null_gauge;
  if (registry_ == nullptr) return null_gauge;
  return registry_->gauge(prefix_ + name);
}

Histogram& Scope::histogram(const std::string& name) const {
  static Histogram null_histogram;
  if (registry_ == nullptr) return null_histogram;
  return registry_->histogram(prefix_ + name);
}

Registry::Registry(sim::Executor executor)
    : exec_(executor), copy_baseline_(bufstats::bytes_copied()) {
  // Pre-register so the counter appears (as 0) even in dumps taken
  // before any payload byte was copied.
  counter("net.bytes_copied");
}

Counter& Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

sim::Time Registry::now() const { return exec_.now(); }

SpanId Registry::begin_span(std::string name, SpanId parent) {
  return tracer_.begin_span(std::move(name), exec_.now(), parent);
}

void Registry::add_event(SpanId id, std::string label, std::uint64_t value) {
  tracer_.add_event(id, std::move(label), exec_.now(), value);
}

void Registry::end_span(SpanId id) { tracer_.end_span(id, exec_.now()); }

void Registry::record_event(std::string what) {
  recorder_.record(exec_.now(), std::move(what));
}

std::string Registry::to_json(bool include_spans) {
  // Sync the data-path copy tally: counters only add, so bring the
  // exported counter up to the current delta.
  Counter& copied = counter("net.bytes_copied");
  const std::uint64_t delta = bufstats::bytes_copied() - copy_baseline_;
  if (delta > copied.value()) copied.add(delta - copied.value());

  std::map<std::string, std::uint64_t> counters;
  for (const auto& [name, counter_ptr] : counters_) {
    counters[name] = counter_ptr->value();
  }
  std::map<std::string, std::int64_t> gauges;
  for (const auto& [name, gauge] : gauges_) gauges[name] = gauge->value();
  std::map<std::string, const Histogram*> hists;
  for (const auto& [name, hist] : histograms_) hists[name] = hist.get();
  std::vector<const Span*> spans;
  for (const Span& span : tracer_.spans()) spans.push_back(&span);
  return render_json(exec_.now(), counters, gauges, hists, recorder_.events(),
                     spans, include_spans);
}

std::string Registry::merged_json(const std::vector<Registry*>& registries,
                                  sim::Time now, std::uint64_t copied_bytes,
                                  bool include_spans) {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Histogram> hists;
  std::vector<FlightRecorder::Event> events;
  std::deque<Span> span_storage;  // stable addresses for the view below
  SpanId id_base = 0;

  for (Registry* reg : registries) {
    for (const auto& [name, counter] : reg->counters_) {
      counters[name] += counter->value();
    }
    for (const auto& [name, gauge] : reg->gauges_) {
      gauges[name] += gauge->value();
    }
    for (const auto& [name, hist] : reg->histograms_) {
      hists[name].merge(*hist);
    }
    for (FlightRecorder::Event& event : reg->recorder_.events()) {
      events.push_back(std::move(event));
    }
    if (include_spans) {
      for (const Span& span : reg->tracer_.spans()) {
        Span copy = span;
        copy.id += id_base;
        if (copy.parent != 0) copy.parent += id_base;
        span_storage.push_back(std::move(copy));
      }
      id_base += reg->tracer_.spans_started();
    }
  }
  // The per-process copy tally cannot be split per partition; the
  // coordinator supplies its own delta (and the per-registry synced
  // values, if any, are discarded rather than double-counted).
  counters["net.bytes_copied"] = copied_bytes;

  // Interleave flight-recorder entries by sim-time; stable_sort keeps
  // partition-id order (then intra-registry order) for equal stamps.
  std::stable_sort(
      events.begin(), events.end(),
      [](const FlightRecorder::Event& a, const FlightRecorder::Event& b) {
        return a.at < b.at;
      });

  std::map<std::string, const Histogram*> hist_view;
  for (const auto& [name, hist] : hists) hist_view[name] = &hist;
  std::vector<const Span*> span_view;
  for (const Span& span : span_storage) span_view.push_back(&span);
  return render_json(now, counters, gauges, hist_view, events, span_view,
                     include_spans);
}

std::string command_trace_key(std::uint16_t source_port,
                              std::uint32_t task_tag) {
  return "cmd:" + std::to_string(source_port) + ":" +
         std::to_string(task_tag);
}

}  // namespace storm::obs
