#include "obs/registry.hpp"

#include <cstdio>
#include <sstream>

#include "common/buf.hpp"
#include "sim/simulator.hpp"

namespace storm::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  append_escaped(out, s);
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

Counter& Scope::counter(const std::string& name) const {
  static Counter null_counter;
  if (registry_ == nullptr) return null_counter;
  return registry_->counter(prefix_ + name);
}

Gauge& Scope::gauge(const std::string& name) const {
  static Gauge null_gauge;
  if (registry_ == nullptr) return null_gauge;
  return registry_->gauge(prefix_ + name);
}

Histogram& Scope::histogram(const std::string& name) const {
  static Histogram null_histogram;
  if (registry_ == nullptr) return null_histogram;
  return registry_->histogram(prefix_ + name);
}

Registry::Registry(sim::Simulator& simulator)
    : sim_(simulator), copy_baseline_(bufstats::bytes_copied()) {
  // Pre-register so the counter appears (as 0) even in dumps taken
  // before any payload byte was copied.
  counter("net.bytes_copied");
}

Counter& Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

sim::Time Registry::now() const { return sim_.now(); }

SpanId Registry::begin_span(std::string name, SpanId parent) {
  return tracer_.begin_span(std::move(name), sim_.now(), parent);
}

void Registry::add_event(SpanId id, std::string label, std::uint64_t value) {
  tracer_.add_event(id, std::move(label), sim_.now(), value);
}

void Registry::end_span(SpanId id) { tracer_.end_span(id, sim_.now()); }

void Registry::record_event(std::string what) {
  recorder_.record(sim_.now(), std::move(what));
}

std::string Registry::to_json(bool include_spans) {
  // Sync the data-path copy tally: counters only add, so bring the
  // exported counter up to the current delta.
  Counter& copied = counter("net.bytes_copied");
  const std::uint64_t delta = bufstats::bytes_copied() - copy_baseline_;
  if (delta > copied.value()) copied.add(delta - copied.value());

  std::string out;
  out += "{\n  \"sim_time_ns\": " + std::to_string(sim_.now());

  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(counter->value());
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(gauge->value());
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(hist->count());
    out += ", \"sum\": " + std::to_string(hist->sum());
    out += ", \"min\": " + std::to_string(hist->min());
    out += ", \"max\": " + std::to_string(hist->max());
    out += ", \"mean\": ";
    append_double(out, hist->mean());
    for (double p : {50.0, 90.0, 99.0}) {
      out += ", \"p" + std::to_string(static_cast<int>(p)) + "\": ";
      append_double(out, hist->percentile(p));
    }
    out += "}";
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"flight_recorder\": [";
  first = true;
  for (const auto& event : recorder_.events()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"at\": " + std::to_string(event.at) + ", \"what\": ";
    append_json_string(out, event.what);
    out += "}";
  }
  out += first ? "]" : "\n  ]";

  if (include_spans) {
    out += ",\n  \"spans\": [";
    first = true;
    for (const Span& span : tracer_.spans()) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"id\": " + std::to_string(span.id);
      out += ", \"parent\": " + std::to_string(span.parent);
      out += ", \"name\": ";
      append_json_string(out, span.name);
      out += ", \"start\": " + std::to_string(span.start);
      out += ", \"end\": " + std::to_string(span.ended ? span.end : span.start);
      out += ", \"ended\": ";
      out += span.ended ? "true" : "false";
      out += ", \"events\": [";
      bool first_event = true;
      for (const SpanEvent& event : span.events) {
        out += first_event ? "" : ", ";
        first_event = false;
        out += "{\"label\": ";
        append_json_string(out, event.label);
        out += ", \"at\": " + std::to_string(event.at);
        out += ", \"value\": " + std::to_string(event.value) + "}";
      }
      out += "]}";
    }
    out += first ? "]" : "\n  ]";
  }

  out += "\n}\n";
  return out;
}

std::string command_trace_key(std::uint16_t source_port,
                              std::uint32_t task_tag) {
  return "cmd:" + std::to_string(source_port) + ":" +
         std::to_string(task_tag);
}

}  // namespace storm::obs
