// The per-simulation telemetry hub. One Registry hangs off each
// sim::Simulator (see Simulator::telemetry()), so every component of a
// simulated cluster — links, TCP stacks, NAT engines, relays, services,
// the platform — reports into the same deterministic store. All
// timestamps are sim-clock: two identically seeded runs produce
// byte-identical to_json() output.
//
// Metric objects have stable addresses for the Registry's lifetime;
// hot-path components look them up once by name and keep the pointer.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace storm::obs {

class Registry;

/// A named slice of a Registry: metric names are prefixed with the
/// scope's prefix ("relay.mb-1-encryption." + "pdus"). Copyable handle;
/// a default-constructed Scope discards everything (null object), so
/// components can hold one unconditionally.
class Scope {
 public:
  Scope() = default;
  Scope(Registry& registry, std::string prefix)
      : registry_(&registry), prefix_(std::move(prefix)) {}

  Counter& counter(const std::string& name) const;
  Gauge& gauge(const std::string& name) const;
  Histogram& histogram(const std::string& name) const;

  Registry* registry() const { return registry_; }
  const std::string& prefix() const { return prefix_; }

 private:
  Registry* registry_ = nullptr;
  std::string prefix_;
};

class Registry {
 public:
  /// Bound to one partition's executor: timestamps come from that
  /// partition's clock, and hot-path metric updates stay confined to the
  /// partition's worker thread. A Simulator& converts implicitly
  /// (partition 0), preserving the historical one-registry-per-sim use.
  explicit Registry(sim::Executor executor);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Scope scope(std::string prefix) { return Scope(*this, std::move(prefix)); }

  // --- tracing (see trace.hpp) ---
  SpanId begin_span(std::string name, SpanId parent = 0);
  void add_event(SpanId id, std::string label, std::uint64_t value = 0);
  void end_span(SpanId id);
  void bind(const std::string& key, SpanId id) { tracer_.bind(key, id); }
  SpanId lookup(const std::string& key) const { return tracer_.lookup(key); }
  void unbind(const std::string& key) { tracer_.unbind(key); }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // --- flight recorder ---
  FlightRecorder& recorder() { return recorder_; }
  /// Stamp `what` with the current sim-time into the flight recorder.
  void record_event(std::string what);

  sim::Time now() const;
  sim::Simulator& simulator() { return exec_.simulator(); }
  sim::Executor executor() const { return exec_; }

  /// Machine-readable dump: counters, gauges, histogram summaries, the
  /// flight-recorder tail, and (optionally) every retained span. Keys
  /// are emitted in name order, values in sim-time units — deterministic
  /// for identically seeded runs. Non-const: it first syncs the
  /// "net.bytes_copied" counter from the process-wide buffer-copy
  /// tally (delta since this Registry was constructed, so concurrent
  /// simulations in one process don't bleed into each other).
  std::string to_json(bool include_spans = false);

  /// Deterministic multi-registry export: merge `registries` **in the
  /// given (partition-id) order** into one dump with the same shape as
  /// to_json(). Counters and gauges sum, histograms merge bucket-wise,
  /// flight-recorder entries interleave by (sim-time, registry order),
  /// and spans concatenate with ids offset per registry so they stay
  /// unique. `copied_bytes` replaces the net.bytes_copied counter (the
  /// process-wide copy tally cannot be attributed per partition).
  /// Because the merge order is positional — never wall clock — two
  /// identically seeded runs produce byte-identical output at any
  /// thread count.
  static std::string merged_json(const std::vector<Registry*>& registries,
                                 sim::Time now, std::uint64_t copied_bytes,
                                 bool include_spans = false);

 private:
  sim::Executor exec_;
  std::uint64_t copy_baseline_ = 0;  // bufstats at construction
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  Tracer tracer_;
  FlightRecorder recorder_;
};

/// Correlation key for one SCSI command's trace, derivable at every
/// PDU-aware layer: the flow's (preserved) TCP source port plus the
/// command's initiator task tag.
std::string command_trace_key(std::uint16_t source_port,
                              std::uint32_t task_tag);

}  // namespace storm::obs
