// Flight recorder: a bounded ring of the last N notable events (session
// drops, journal replays, crashes, deployment changes). Cheap enough to
// leave on everywhere; dumped when something goes wrong — a relay
// crash, a failed test — to show what led up to it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace storm::obs {

class FlightRecorder {
 public:
  struct Event {
    sim::Time at = 0;
    std::string what;
  };

  explicit FlightRecorder(std::size_t capacity = 256) : capacity_(capacity) {}

  void record(sim::Time now, std::string what);

  /// Retained events, oldest first.
  std::vector<Event> events() const;

  /// Events ever recorded (including those the ring has overwritten).
  std::uint64_t total_recorded() const { return total_; }
  std::size_t capacity() const { return capacity_; }

  /// Human-readable dump of the retained tail, one event per line.
  void dump(std::ostream& out) const;

 private:
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t next_ = 0;  // overwrite position once full
  std::uint64_t total_ = 0;
};

}  // namespace storm::obs
