// Value-type metric primitives for the obs:: telemetry layer.
//
// Histogram is HDR-style: log2 buckets with 64 linear sub-buckets each,
// so any recorded value lands in a bucket whose width is at most ~1.6%
// of its magnitude. That bounds percentile error while keeping record()
// O(1) and memory proportional to the number of *occupied* buckets — a
// latency histogram over an 8-second fio run costs a few dozen map
// entries, not a sample vector. count/sum/min/max/mean are exact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

namespace storm::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t d) { value_ += d; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Histogram {
 public:
  /// Record one non-negative sample (negatives clamp to 0).
  void record(std::int64_t value);

  std::size_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return count_ ? max_ : 0; }
  double mean() const;

  /// p in [0,100]; nearest-rank over the buckets. p=0 and p=100 return
  /// the exact min/max; interior percentiles return the representative
  /// (midpoint) of the bucket holding that rank, within ~1.6% of the
  /// exact order statistic. Throws std::invalid_argument outside [0,100].
  double percentile(double p) const;

  void clear();

  /// Fold `other` into this histogram bucket-wise: counts, sums and
  /// min/max combine exactly; percentiles of the merged histogram are
  /// identical to recording both sample streams into one histogram.
  /// Used by the partition-order telemetry merge.
  void merge(const Histogram& other);

  /// Occupied buckets as (representative value -> count), ascending.
  /// Exposed for JSON export.
  std::map<std::int64_t, std::uint64_t> buckets() const;

 private:
  static std::uint32_t bucket_index(std::uint64_t v);
  static std::int64_t bucket_representative(std::uint32_t index);

  std::map<std::uint32_t, std::uint64_t> buckets_;
  std::size_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace storm::obs
