// OpenStack-like control plane over the simulated fabric.
//
// Topology (paper Fig. 1): every physical host has two NICs — one on the
// flat *storage network* (a plain L2 switch) and, for compute hosts, an
// Open-vSwitch-style FlowSwitch bridging its local VMs to an instance-
// network backbone FlowSwitch. iSCSI initiators run on the compute hosts
// (not in tenant VMs), one session per attached volume, exactly the
// arrangement StorM's connection attribution depends on.
//
//   storage subnet  10.1.0.0/16   hosts 10.1.0.x, storage hosts 10.1.1.x,
//                                 gateways 10.1.2.x
//   instance subnet 10.2.0.0/16   VMs 10.2.0.x, middle-boxes 10.2.1.x,
//                                 gateways 10.2.2.x
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "block/volume.hpp"
#include "iscsi/initiator.hpp"
#include "iscsi/remote_disk.hpp"
#include "iscsi/target.hpp"
#include "net/flow_switch.hpp"
#include "net/node.hpp"
#include "sim/cpu.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace storm::cloud {

/// How the Cloud maps simulated hosts onto simulator partitions.
enum class PlacementPolicy {
  /// Everything on partition 0, the historical layout. Forced whenever
  /// the simulator has a single partition.
  kPartition0,
  /// One partition per physical host group: partition 0 keeps the shared
  /// fabric (storage switch, instance backbone) and the control plane,
  /// data partitions 1..P-1 carry the hosts. Compute host i goes to
  /// 1 + (i mod (P-1)), storage host j to
  /// 1 + ((compute_hosts + j) mod (P-1)), and gateways round-robin over
  /// the data partitions in creation order — a pure function of the
  /// topology, so placement is deterministic and stable across runs.
  /// Everything a host owns (VMs, virtio links, OVS, NAT, initiators,
  /// CPUs, disks) lands on the host's partition; inter-host links span
  /// partitions and feed the auto-lookahead derivation.
  kHostPerPartition,
};

struct CloudConfig {
  unsigned compute_hosts = 4;
  unsigned storage_hosts = 1;
  /// Host → partition mapping policy. The default exploits whatever
  /// partitions the simulator was built with; with a single-partition
  /// simulator it degenerates to the historical partition-0 layout.
  PlacementPolicy placement = PlacementPolicy::kHostPerPartition;
  std::uint64_t link_bps = 1'000'000'000ull;  // 1 GbE, as in the testbed
  // Instance-network links (OVS uplinks, backbone, gateway instance side)
  // are bonded dual-1GbE — a middle-box's host NIC carries every spliced
  // flow twice (in and out), so OpenStack deployments bond these.
  std::uint64_t instance_link_bps = 2'000'000'000ull;
  sim::Duration link_delay = sim::microseconds(20);
  std::uint64_t storage_pool_sectors = 8ull * 1024 * 1024;  // 4 GiB/host
  block::DiskProfile disk_profile{};
  unsigned host_cores = 8;
  // Virtio-style per-packet guest copy cost (the paper observes these
  // intra-host copies dominate middle-box routing overhead).
  sim::Duration vm_packet_cost = sim::microseconds(3);
  double vm_ns_per_byte = 0.4;
  // Middle-box VMs pay more per packet: forwarded traffic crosses the
  // virtio boundary twice (in and out), on a single queue ("the
  // virtualization driver ... uses a single thread per VM's virtual
  // interface", §V-A).
  sim::Duration mb_packet_cost = sim::microseconds(2);
  double mb_ns_per_byte = 0.25;
  // TCP window for every stack in the cloud (hosts, storage, guests).
  // Small enough that a flow spanning the whole spliced path is
  // ACK-clocked below line rate — the effect StorM's active relay
  // removes by terminating TCP at the middle-box.
  std::uint32_t tcp_window = 36 * 1024;
};

class Cloud;

/// A guest VM: one instance-network NIC behind its host's OVS, its own
/// vCPUs, and the virtual disks attached to it.
class Vm {
 public:
  Vm(Cloud& cloud, std::string name, std::string tenant, unsigned host_index,
     unsigned vcpus);

  const std::string& name() const { return name_; }
  const std::string& tenant() const { return tenant_; }
  unsigned host_index() const { return host_index_; }
  net::NetNode& node() { return *node_; }
  sim::Cpu& cpu() { return *cpu_; }
  net::Ipv4Addr ip() const { return ip_; }
  net::MacAddr mac() const { return mac_; }

  /// Disks attached so far, in attach order.
  block::BlockDevice* disk(std::size_t index = 0);
  std::size_t disk_count() const { return disks_.size(); }

 private:
  friend class Cloud;
  std::string name_;
  std::string tenant_;
  unsigned host_index_;
  net::Ipv4Addr ip_;
  net::MacAddr mac_;
  std::unique_ptr<sim::Cpu> cpu_;
  std::unique_ptr<net::NetNode> node_;
  std::unique_ptr<net::Link> link_;  // virtio link to the host OVS
  std::vector<std::unique_ptr<iscsi::RemoteDisk>> disks_;
};

class ComputeHost {
 public:
  ComputeHost(Cloud& cloud, unsigned index);

  net::NetNode& node() { return *node_; }       // host network namespace
  net::FlowSwitch& ovs() { return *ovs_; }
  sim::Cpu& cpu() { return *cpu_; }
  unsigned index() const { return index_; }
  net::Ipv4Addr storage_ip() const { return storage_ip_; }

 private:
  friend class Cloud;
  unsigned index_;
  net::Ipv4Addr storage_ip_;
  std::unique_ptr<sim::Cpu> cpu_;
  std::unique_ptr<net::NetNode> node_;
  std::unique_ptr<net::FlowSwitch> ovs_;
  std::unique_ptr<net::Link> storage_link_;  // host <-> storage switch
  std::unique_ptr<net::Link> uplink_;        // ovs <-> instance backbone
  std::vector<std::unique_ptr<iscsi::Initiator>> initiators_;
};

class StorageHost {
 public:
  StorageHost(Cloud& cloud, unsigned index);

  net::NetNode& node() { return *node_; }
  sim::Cpu& cpu() { return *cpu_; }
  block::VolumeManager& volumes() { return *volumes_; }
  iscsi::Target& target() { return *target_; }
  net::Ipv4Addr storage_ip() const { return storage_ip_; }

 private:
  friend class Cloud;
  unsigned index_;
  net::Ipv4Addr storage_ip_;
  std::unique_ptr<sim::Cpu> cpu_;
  std::unique_ptr<net::NetNode> node_;
  std::unique_ptr<net::Link> storage_link_;
  std::unique_ptr<block::VolumeManager> volumes_;
  std::unique_ptr<iscsi::Target> target_;
};

/// One attached volume as the hypervisor + modified iSCSI login see it:
/// the join of VM <-> IQN (from the hypervisor) and IQN <-> TCP source
/// port (from the patched login path). This is the paper's connection-
/// attribution data.
struct Attachment {
  std::string vm;
  std::string tenant;
  std::string volume;
  std::string iqn;
  unsigned host_index = 0;
  net::Ipv4Addr host_ip;      // initiator side (compute host storage NIC)
  net::Ipv4Addr target_ip;    // storage host
  std::uint16_t source_port = 0;
  iscsi::Initiator* initiator = nullptr;
  iscsi::RemoteDisk* disk = nullptr;
};

/// Hooks StorM uses to make volume attachment atomic: NAT redirect rules
/// are installed just before the login connection opens and removed right
/// after it is established (§III-A).
struct AttachHooks {
  std::function<void(ComputeHost&, const Attachment&)> before_login;
  std::function<void(ComputeHost&, const Attachment&)> after_login;
  /// When nonzero, the initiator binds this TCP source port. StorM pins
  /// the port so per-flow NAT/steering rules can be installed before the
  /// first SYN (our equivalent of the paper's patched login path, which
  /// exposes the port to the platform).
  std::uint16_t force_source_port = 0;
};

class Cloud {
 public:
  Cloud(sim::Simulator& simulator, CloudConfig config);

  Cloud(const Cloud&) = delete;
  Cloud& operator=(const Cloud&) = delete;

  /// The ParallelConfig a partition-aware Cloud wants: one data
  /// partition per host plus the fabric/control partition, lookahead
  /// derived from the wired topology (link_delay as the fallback).
  /// Build the Simulator from this, then hand it to the Cloud:
  ///
  ///   sim::Simulator sim(cloud::Cloud::parallel_config(config, threads));
  ///   cloud::Cloud cloud(sim, config);
  static sim::ParallelConfig parallel_config(const CloudConfig& config,
                                             std::uint32_t threads = 1) {
    sim::ParallelConfig pc;
    pc.partitions = 1 + config.compute_hosts + config.storage_hosts;
    pc.threads = threads;
    pc.lookahead = config.link_delay;
    pc.auto_lookahead = true;
    return pc;
  }

  sim::Simulator& simulator() { return sim_; }

  /// Control-plane executor (partition 0): the shared fabric, the SDN
  /// controller, platform bookkeeping. Data-plane components belong on
  /// host_executor/storage_executor — placement is deliberate now, not
  /// a partition-0 default.
  sim::Executor control_executor() { return sim_.executor(0); }

  /// Partition assignment for compute host `index` under the configured
  /// placement policy (0 when the simulator is single-partition).
  std::uint32_t host_partition(unsigned index) const;
  std::uint32_t storage_partition(unsigned index) const;
  /// Gateways spread round-robin over the data partitions by creation
  /// ordinal — they carry every spliced flow, so leaving them all on the
  /// fabric partition would serialize the datapath.
  std::uint32_t gateway_partition(unsigned ordinal) const;

  sim::Executor host_executor(unsigned index) {
    return sim_.executor(host_partition(index));
  }
  sim::Executor storage_executor(unsigned index) {
    return sim_.executor(storage_partition(index));
  }

  const CloudConfig& config() const { return config_; }
  std::shared_ptr<net::ArpRegistry> arp() { return arp_; }

  ComputeHost& compute(unsigned index) { return *compute_[index]; }
  StorageHost& storage(unsigned index) { return *storage_[index]; }
  unsigned compute_count() const { return static_cast<unsigned>(compute_.size()); }
  net::L2Switch& storage_switch() { return *storage_switch_; }
  net::FlowSwitch& instance_backbone() { return *backbone_; }

  /// Every FlowSwitch in the instance network (per-host OVSes + backbone);
  /// the SDN controller installs steering rules across these.
  std::vector<net::FlowSwitch*> flow_switches();

  /// Exact-match fast-path statistics aggregated over every FlowSwitch.
  /// Scale-out rule swaps must keep the hit rate intact — the bench gates
  /// on hits / (hits + misses) staying above 99.99%.
  struct FlowCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
    double hit_rate() const {
      const double total = static_cast<double>(hits + misses);
      return total == 0.0 ? 1.0 : static_cast<double>(hits) / total;
    }
  };
  FlowCacheStats flow_cache_stats();

  /// Provision a VM on a compute host.
  Vm& create_vm(const std::string& name, const std::string& tenant,
                unsigned host_index, unsigned vcpus = 2);

  /// Provision a middle-box VM: same as a tenant VM but addressed from
  /// the middle-box range and with IP forwarding enabled (the only guest
  /// configuration the paper's steering requires).
  Vm& create_middlebox_vm(const std::string& name, const std::string& tenant,
                          unsigned host_index, unsigned vcpus = 2);

  Vm* find_vm(const std::string& name);

  /// Create a block volume ("cinder create").
  Result<block::Volume*> create_volume(const std::string& name,
                                       std::uint64_t sectors,
                                       unsigned storage_index = 0);

  /// Find a volume by name across storage hosts; returns the volume and
  /// the index of the storage host owning it.
  Result<std::pair<block::Volume*, unsigned>> locate_volume(
      const std::string& name);

  /// Attach a volume to a VM: spin up a host-side initiator, log in, and
  /// expose the volume as a virtual disk. Attachments on one host are
  /// serialized (the paper's mutex); hooks bracket the login for StorM's
  /// atomic NAT window. On a partitioned topology the control-plane
  /// steps run at window barriers (sim::Simulator::at_barrier); `done`
  /// fires from barrier context and may safely touch any partition.
  void attach_volume(Vm& vm, const std::string& volume_name,
                     std::function<void(Status, Attachment)> done,
                     AttachHooks hooks = {});

  /// Release an attachment: close any surviving sessions for its IQN,
  /// drop the hypervisor registry row, and mark the volume free for a
  /// fresh attach. This is how a replica whose session died is recycled
  /// before the replication service re-attaches it. Called from a
  /// partition thread of a multi-partition run, the detach is deferred
  /// to the next barrier and this returns OK immediately.
  Status detach_volume(const std::string& vm, const std::string& volume_name);

  /// All completed attachments (the hypervisor registry).
  const std::vector<Attachment>& attachments() const { return attachments_; }
  std::optional<Attachment> find_attachment(const std::string& vm,
                                            const std::string& volume) const;

  /// Create a dual-homed infrastructure node (StorM storage gateways):
  /// one NIC on the storage network, one on the instance backbone.
  net::NetNode& create_gateway(const std::string& name);

  /// Arm packet fault injection on every link in the cloud — existing and
  /// any created later. Pass nullptr to disarm. Labels in the plan's event
  /// trace name the link ("host0.storage", "vm.web1", "gw-t1.instance").
  void set_fault_plan(sim::FaultPlan* plan,
                      sim::PacketFaultProfile profile = {});

  /// Look up a registered link by its fault label (for targeted flaps).
  net::Link* find_link(const std::string& label);

  net::MacAddr next_mac() { return net::MacAddr{next_mac_++}; }

 private:
  friend class Vm;
  friend class ComputeHost;
  friend class StorageHost;

  void run_attach_queue(unsigned host_index);

  /// Track a link under `label` and apply the current fault plan to it.
  void register_link(net::Link& link, std::string label);

  /// Whether a fault plan may legally observe this link (both ends in
  /// one partition); warns once when a spanning link is excluded.
  bool link_fault_safe(net::Link& link);

  sim::Simulator& sim_;
  CloudConfig config_;
  std::shared_ptr<net::ArpRegistry> arp_;
  std::unique_ptr<net::L2Switch> storage_switch_;
  std::unique_ptr<net::FlowSwitch> backbone_;
  std::vector<std::unique_ptr<ComputeHost>> compute_;
  std::vector<std::unique_ptr<StorageHost>> storage_;
  std::vector<std::unique_ptr<Vm>> vms_;

  struct GatewayNode {
    std::unique_ptr<net::NetNode> node;
    std::unique_ptr<net::Link> storage_link;
    std::unique_ptr<net::Link> instance_link;
  };
  std::vector<GatewayNode> gateways_;

  sim::FaultPlan* fault_plan_ = nullptr;
  sim::PacketFaultProfile fault_profile_;
  bool warned_fault_span_ = false;
  std::vector<std::pair<net::Link*, std::string>> links_;

  std::vector<Attachment> attachments_;
  struct PendingAttach {
    Vm* vm;
    std::string volume;
    std::function<void(Status, Attachment)> done;
    AttachHooks hooks;
  };
  std::map<unsigned, std::vector<PendingAttach>> attach_queues_;
  std::map<unsigned, bool> attach_in_progress_;

  std::uint64_t next_mac_ = 0x020000000001ull;  // locally administered
  std::uint32_t next_vm_ip_ = 0;
  std::uint32_t next_mb_ip_ = 0;
  std::uint32_t next_gw_ip_ = 0;
};

}  // namespace storm::cloud
