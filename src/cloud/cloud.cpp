#include "cloud/cloud.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "net/tcp.hpp"

namespace storm::cloud {

namespace {

const net::Subnet kStorageSubnet{net::Ipv4Addr::from_string("10.1.0.0"), 16};
const net::Subnet kInstanceSubnet{net::Ipv4Addr::from_string("10.2.0.0"), 16};

net::Ipv4Addr make_ip(std::uint32_t base, std::uint32_t index) {
  return net::Ipv4Addr{base + index};
}

constexpr std::uint32_t kHostStorageBase = (10u << 24) | (1u << 16) | 1;
constexpr std::uint32_t kStorageHostBase = (10u << 24) | (1u << 16) | (1u << 8) | 1;
constexpr std::uint32_t kGatewayStorageBase = (10u << 24) | (1u << 16) | (2u << 8) | 1;
constexpr std::uint32_t kVmBase = (10u << 24) | (2u << 16) | 1;
constexpr std::uint32_t kMbBase = (10u << 24) | (2u << 16) | (1u << 8) | 1;
constexpr std::uint32_t kGatewayInstanceBase = (10u << 24) | (2u << 16) | (2u << 8) | 1;

}  // namespace

// ------------------------------------------------------------------- hosts

// Everything a host owns is constructed on the host's partition
// executor; the links toward the shared fabric (partition 0) get their
// switch-side end rebound afterwards, which reports the propagation
// delay for auto-lookahead when the ends land in different partitions.

ComputeHost::ComputeHost(Cloud& cloud, unsigned index)
    : index_(index),
      storage_ip_(make_ip(kHostStorageBase, index)),
      cpu_(std::make_unique<sim::Cpu>(cloud.host_executor(index),
                                      "host" + std::to_string(index),
                                      cloud.config().host_cores)),
      node_(std::make_unique<net::NetNode>(cloud.host_executor(index),
                                           "host" + std::to_string(index),
                                           cloud.arp())),
      ovs_(std::make_unique<net::FlowSwitch>(cloud.host_executor(index),
                                             "ovs" + std::to_string(index))),
      storage_link_(std::make_unique<net::Link>(cloud.host_executor(index),
                                                cloud.config().link_bps,
                                                cloud.config().link_delay)),
      uplink_(std::make_unique<net::Link>(cloud.host_executor(index),
                                          cloud.config().instance_link_bps,
                                          cloud.config().link_delay)) {
  storage_link_->set_end_executor(1, cloud.control_executor());
  uplink_->set_end_executor(1, cloud.control_executor());
  cloud.storage_switch().attach(*storage_link_, 1);
  node_->add_nic(cloud.next_mac(), storage_ip_, kStorageSubnet,
                 *storage_link_, 0);
  // Host-side per-packet cost on the host CPU (NIC + kernel path).
  node_->set_packet_processing(cpu_.get(), sim::microseconds(1), 0.1);
  node_->tcp().set_default_window(cloud.config().tcp_window);
  cloud.instance_backbone().attach(*uplink_, 1);
  ovs_->attach(*uplink_, 0);
  cloud.register_link(*storage_link_,
                      "host" + std::to_string(index) + ".storage");
  cloud.register_link(*uplink_, "host" + std::to_string(index) + ".uplink");
}

StorageHost::StorageHost(Cloud& cloud, unsigned index)
    : index_(index),
      storage_ip_(make_ip(kStorageHostBase, index)),
      cpu_(std::make_unique<sim::Cpu>(cloud.storage_executor(index),
                                      "storage" + std::to_string(index),
                                      cloud.config().host_cores)),
      node_(std::make_unique<net::NetNode>(cloud.storage_executor(index),
                                           "storage" + std::to_string(index),
                                           cloud.arp())),
      storage_link_(std::make_unique<net::Link>(cloud.storage_executor(index),
                                                cloud.config().link_bps,
                                                cloud.config().link_delay)),
      volumes_(std::make_unique<block::VolumeManager>(
          cloud.storage_executor(index), "storage" + std::to_string(index),
          cloud.config().storage_pool_sectors, cloud.config().disk_profile)),
      target_(std::make_unique<iscsi::Target>(*node_, *volumes_)) {
  storage_link_->set_end_executor(1, cloud.control_executor());
  cloud.storage_switch().attach(*storage_link_, 1);
  node_->add_nic(cloud.next_mac(), storage_ip_, kStorageSubnet,
                 *storage_link_, 0);
  node_->set_packet_processing(cpu_.get(), sim::microseconds(1), 0.1);
  node_->tcp().set_default_window(cloud.config().tcp_window);
  cloud.register_link(*storage_link_,
                      "storage" + std::to_string(index) + ".storage");
  target_->start();
}

// --------------------------------------------------------------------- VM

// A VM lives entirely on its host's partition: the virtio link has zero
// propagation delay, so splitting it across partitions would violate any
// lookahead. Middle-box VMs therefore execute on the same partition as
// the host whose OVS captures their traffic.

Vm::Vm(Cloud& cloud, std::string name, std::string tenant,
       unsigned host_index, unsigned vcpus)
    : name_(std::move(name)), tenant_(std::move(tenant)),
      host_index_(host_index),
      cpu_(std::make_unique<sim::Cpu>(cloud.host_executor(host_index), name_,
                                      vcpus)),
      node_(std::make_unique<net::NetNode>(cloud.host_executor(host_index),
                                           name_, cloud.arp())),
      link_(std::make_unique<net::Link>(cloud.host_executor(host_index),
                                        // Virtio links are fast; the cost
                                        // is the per-packet copy below.
                                        10'000'000'000ull, 0)) {
}

block::BlockDevice* Vm::disk(std::size_t index) {
  if (index >= disks_.size()) return nullptr;
  return disks_[index].get();
}

// ------------------------------------------------------------------ Cloud

Cloud::Cloud(sim::Simulator& simulator, CloudConfig config)
    : sim_(simulator), config_(config),
      arp_(std::make_shared<net::ArpRegistry>()),
      storage_switch_(std::make_unique<net::L2Switch>(simulator, "storage-sw")),
      backbone_(std::make_unique<net::FlowSwitch>(simulator, "backbone")) {
  for (unsigned i = 0; i < config_.compute_hosts; ++i) {
    compute_.push_back(std::make_unique<ComputeHost>(*this, i));
  }
  for (unsigned i = 0; i < config_.storage_hosts; ++i) {
    storage_.push_back(std::make_unique<StorageHost>(*this, i));
  }
}

// ------------------------------------------------------------- placement

// Deterministic host → partition mapping (PlacementPolicy doc in the
// header): a pure function of (policy, partition count, host counts), so
// two runs of the same topology always place identically.

std::uint32_t Cloud::host_partition(unsigned index) const {
  const std::uint32_t parts = sim_.partition_count();
  if (parts <= 1 || config_.placement == PlacementPolicy::kPartition0) {
    return 0;
  }
  const std::uint32_t data = parts - 1;
  return 1 + (index % data);
}

std::uint32_t Cloud::storage_partition(unsigned index) const {
  const std::uint32_t parts = sim_.partition_count();
  if (parts <= 1 || config_.placement == PlacementPolicy::kPartition0) {
    return 0;
  }
  const std::uint32_t data = parts - 1;
  return 1 + ((config_.compute_hosts + index) % data);
}

std::uint32_t Cloud::gateway_partition(unsigned ordinal) const {
  const std::uint32_t parts = sim_.partition_count();
  if (parts <= 1 || config_.placement == PlacementPolicy::kPartition0) {
    return 0;
  }
  const std::uint32_t data = parts - 1;
  return 1 + (ordinal % data);
}

std::vector<net::FlowSwitch*> Cloud::flow_switches() {
  std::vector<net::FlowSwitch*> switches;
  switches.push_back(backbone_.get());
  for (auto& host : compute_) switches.push_back(host->ovs_.get());
  return switches;
}

Cloud::FlowCacheStats Cloud::flow_cache_stats() {
  FlowCacheStats stats;
  for (net::FlowSwitch* fs : flow_switches()) {
    stats.hits += fs->cache_hits();
    stats.misses += fs->cache_misses();
    stats.entries += fs->cache_entries();
  }
  return stats;
}

Vm& Cloud::create_vm(const std::string& name, const std::string& tenant,
                     unsigned host_index, unsigned vcpus) {
  auto vm = std::make_unique<Vm>(*this, name, tenant, host_index, vcpus);
  Vm& ref = *vm;
  ref.ip_ = make_ip(kVmBase, next_vm_ip_++);
  ref.mac_ = next_mac();
  ComputeHost& host = compute(host_index);
  host.ovs().attach(*ref.link_, 1);
  ref.node_->add_nic(ref.mac_, ref.ip_, kInstanceSubnet, *ref.link_, 0);
  ref.node_->set_packet_processing(ref.cpu_.get(), config_.vm_packet_cost,
                                   config_.vm_ns_per_byte);
  ref.node_->tcp().set_default_window(config_.tcp_window);
  register_link(*ref.link_, "vm." + ref.name_);
  vms_.push_back(std::move(vm));
  return ref;
}

Vm& Cloud::create_middlebox_vm(const std::string& name,
                               const std::string& tenant,
                               unsigned host_index, unsigned vcpus) {
  auto vm = std::make_unique<Vm>(*this, name, tenant, host_index, vcpus);
  Vm& ref = *vm;
  ref.ip_ = make_ip(kMbBase, next_mb_ip_++);
  ref.mac_ = next_mac();
  ComputeHost& host = compute(host_index);
  host.ovs().attach(*ref.link_, 1);
  ref.node_->add_nic(ref.mac_, ref.ip_, kInstanceSubnet, *ref.link_, 0);
  ref.node_->set_packet_processing(ref.cpu_.get(), config_.mb_packet_cost,
                                   config_.mb_ns_per_byte);
  ref.node_->tcp().set_default_window(config_.tcp_window);
  ref.node_->set_ip_forward(true);
  register_link(*ref.link_, "vm." + ref.name_);
  vms_.push_back(std::move(vm));
  return ref;
}

Vm* Cloud::find_vm(const std::string& name) {
  for (auto& vm : vms_) {
    if (vm->name() == name) return vm.get();
  }
  return nullptr;
}

Result<block::Volume*> Cloud::create_volume(const std::string& name,
                                            std::uint64_t sectors,
                                            unsigned storage_index) {
  return storage(storage_index).volumes().create(name, sectors);
}

Result<std::pair<block::Volume*, unsigned>> Cloud::locate_volume(
    const std::string& name) {
  for (unsigned i = 0; i < storage_.size(); ++i) {
    auto found = storage_[i]->volumes().find_by_name(name);
    if (found.is_ok()) return std::pair{found.value(), i};
  }
  return error(ErrorCode::kNotFound, "no volume " + name);
}

void Cloud::attach_volume(Vm& vm, const std::string& volume_name,
                          std::function<void(Status, Attachment)> done,
                          AttachHooks hooks) {
  // Attachment is a control-plane operation: it reads volumes on the
  // storage partitions, spins up an initiator on the host partition and
  // mutates the hypervisor registry. Deferring to the window barrier
  // makes all of that race-free on a partitioned topology; on a
  // single-partition simulator at_barrier runs inline and this is
  // byte-identical to the historical path.
  sim_.at_barrier([this, &vm, volume_name, done = std::move(done),
                   hooks = std::move(hooks)]() mutable {
    unsigned host_index = vm.host_index();
    attach_queues_[host_index].push_back(
        PendingAttach{&vm, volume_name, std::move(done), std::move(hooks)});
    if (!attach_in_progress_[host_index]) run_attach_queue(host_index);
  });
}

void Cloud::run_attach_queue(unsigned host_index) {
  auto& queue = attach_queues_[host_index];
  if (queue.empty()) {
    attach_in_progress_[host_index] = false;
    return;
  }
  attach_in_progress_[host_index] = true;
  PendingAttach pending = std::move(queue.front());
  queue.erase(queue.begin());

  // `finish` may fire from the host partition's thread (the login
  // callback); hop to the barrier before touching control state. Inline
  // on a single-partition simulator, where the schedule_in(0) deferral
  // preserves the historical event order exactly.
  auto finish = [this, host_index, done = std::move(pending.done)](
                    Status status, Attachment attachment) {
    sim_.at_barrier([this, host_index, done, status,
                     attachment = std::move(attachment)]() mutable {
      done(status, std::move(attachment));
      if (sim_.partition_count() == 1) {
        sim_.schedule_in(0,
                         [this, host_index] { run_attach_queue(host_index); });
      } else {
        // Already quiescent at the barrier: start the next attach now.
        run_attach_queue(host_index);
      }
    });
  };

  auto located = locate_volume(pending.volume);
  if (!located.is_ok()) {
    finish(located.status(), {});
    return;
  }
  block::Volume* volume = located.value().first;
  StorageHost* owner = storage_[located.value().second].get();
  if (volume->attached()) {
    finish(error(ErrorCode::kFailedPrecondition,
                 "volume already attached: " + pending.volume), {});
    return;
  }

  Vm& vm = *pending.vm;
  ComputeHost& host = compute(host_index);

  Attachment attachment;
  attachment.vm = vm.name();
  attachment.tenant = vm.tenant();
  attachment.volume = pending.volume;
  attachment.iqn = volume->iqn();
  attachment.host_index = host_index;
  attachment.host_ip = host.storage_ip();
  attachment.target_ip = owner->storage_ip();

  attachment.source_port = pending.hooks.force_source_port;

  // --- atomic attachment window opens (StorM installs NAT rules here) ---
  if (pending.hooks.before_login) {
    pending.hooks.before_login(host, attachment);
  }

  auto initiator = std::make_unique<iscsi::Initiator>(
      host.node(), net::SocketAddr{owner->storage_ip(), iscsi::kIscsiPort},
      volume->iqn(), pending.hooks.force_source_port);
  iscsi::Initiator* init_ptr = initiator.get();
  host.initiators_.push_back(std::move(initiator));

  init_ptr->login([this, finish, attachment, init_ptr, volume, &vm, &host,
                   hooks = std::move(pending.hooks)](Status status) mutable {
    Attachment complete = attachment;
    // The patched login path exposes the TCP source port (§III-A).
    complete.source_port = init_ptr->source_port();
    complete.initiator = init_ptr;
    // --- atomic attachment window closes (StorM removes NAT rules) ---
    // Host-local by design: the callback fires on the host's partition,
    // which is exactly where the NAT rules live.
    if (hooks.after_login) hooks.after_login(host, complete);
    if (!status.is_ok()) {
      finish(status, {});
      return;
    }
    // The registry bookkeeping crosses partitions (the volume's state
    // lives with its storage host); hop to the barrier like finish does.
    sim_.at_barrier([this, finish, complete, init_ptr, volume,
                     &vm]() mutable {
      auto disk = std::make_unique<iscsi::RemoteDisk>(
          *init_ptr, volume->disk().num_sectors());
      complete.disk = disk.get();
      vm.disks_.push_back(std::move(disk));
      volume->set_attached(true);
      attachments_.push_back(complete);
      log_info("cloud") << "attached " << complete.volume << " to "
                        << complete.vm << " (iqn=" << complete.iqn
                        << " port=" << complete.source_port << ")";
      finish(Status::ok(), complete);
    });
  });
}

Status Cloud::detach_volume(const std::string& vm,
                            const std::string& volume_name) {
  // From a partition thread (a service reacting to a dead replica) the
  // detach is deferred to the barrier and reported as accepted; the
  // registry row disappearing is the observable completion. From control
  // context (and always on a single-partition simulator) it runs inline
  // and returns the real status.
  if (sim_.partition_count() > 1 && sim::Simulator::in_partition_context()) {
    sim_.at_barrier([this, vm, volume_name] {
      Status status = detach_volume(vm, volume_name);
      if (!status.is_ok()) {
        log_warn("cloud") << "deferred detach of " << volume_name << " from "
                          << vm << " failed: " << status.message();
      }
    });
    return Status::ok();
  }
  auto it = std::find_if(attachments_.begin(), attachments_.end(),
                         [&](const Attachment& a) {
                           return a.vm == vm && a.volume == volume_name;
                         });
  if (it == attachments_.end()) {
    return error(ErrorCode::kNotFound,
                 "no attachment " + vm + ":" + volume_name);
  }
  auto located = locate_volume(volume_name);
  if (located.is_ok()) {
    storage_[located.value().second]->target().close_sessions_for(it->iqn);
    located.value().first->set_attached(false);
  }
  log_info("cloud") << "detached " << volume_name << " from " << vm;
  attachments_.erase(it);
  return Status::ok();
}

std::optional<Attachment> Cloud::find_attachment(
    const std::string& vm, const std::string& volume) const {
  for (const auto& attachment : attachments_) {
    if (attachment.vm == vm && attachment.volume == volume) {
      return attachment;
    }
  }
  return std::nullopt;
}

net::NetNode& Cloud::create_gateway(const std::string& name) {
  // Gateways carry every spliced flow twice; spreading them round-robin
  // over the data partitions keeps the fabric partition from becoming
  // the serial bottleneck of a parallel run.
  sim::Executor exec =
      sim_.executor(gateway_partition(static_cast<unsigned>(gateways_.size())));
  GatewayNode gateway;
  gateway.node = std::make_unique<net::NetNode>(exec, name, arp_);
  gateway.storage_link = std::make_unique<net::Link>(
      exec, config_.link_bps, config_.link_delay);
  gateway.instance_link = std::make_unique<net::Link>(
      exec, config_.instance_link_bps, config_.link_delay);
  gateway.storage_link->set_end_executor(1, control_executor());
  gateway.instance_link->set_end_executor(1, control_executor());
  storage_switch_->attach(*gateway.storage_link, 1);
  gateway.node->add_nic(next_mac(), make_ip(kGatewayStorageBase, next_gw_ip_),
                        kStorageSubnet, *gateway.storage_link, 0);
  backbone_->attach(*gateway.instance_link, 1);
  gateway.node->add_nic(next_mac(),
                        make_ip(kGatewayInstanceBase, next_gw_ip_),
                        kInstanceSubnet, *gateway.instance_link, 0);
  ++next_gw_ip_;
  gateway.node->set_ip_forward(true);
  // Gateways are host-level software (network namespaces), cheaper than a
  // guest's virtio path.
  gateway.node->set_packet_processing(nullptr, sim::microseconds(1), 0.05);
  net::NetNode& ref = *gateway.node;
  register_link(*gateway.storage_link, name + ".storage");
  register_link(*gateway.instance_link, name + ".instance");
  gateways_.push_back(std::move(gateway));
  return ref;
}

bool Cloud::link_fault_safe(net::Link& link) {
  // A FaultPlan owns a single Rng, so it may only see packets from one
  // partition's thread (see net/link.hpp). Partition-spanning links are
  // excluded on a partitioned topology; use Link::set_down / targeted
  // flaps for those instead.
  if (link.end_executor(0).partition_id() ==
      link.end_executor(1).partition_id()) {
    return true;
  }
  if (!warned_fault_span_) {
    warned_fault_span_ = true;
    log_warn("cloud") << "fault plan skips partition-spanning links (a "
                         "FaultPlan's Rng is single-threaded); span faults "
                         "need Link::set_down or a single-partition run";
  }
  return false;
}

void Cloud::register_link(net::Link& link, std::string label) {
  if (fault_plan_ != nullptr && link_fault_safe(link)) {
    link.set_fault(fault_plan_, fault_profile_, label);
  }
  link.set_label(label);  // per-link telemetry under the same name
  links_.emplace_back(&link, std::move(label));
}

void Cloud::set_fault_plan(sim::FaultPlan* plan,
                           sim::PacketFaultProfile profile) {
  fault_plan_ = plan;
  fault_profile_ = profile;
  for (auto& [link, label] : links_) {
    if (plan == nullptr || link_fault_safe(*link)) {
      link->set_fault(plan, profile, label);
    }
  }
}

net::Link* Cloud::find_link(const std::string& label) {
  for (auto& [link, link_label] : links_) {
    if (link_label == label) return link;
  }
  return nullptr;
}

}  // namespace storm::cloud
