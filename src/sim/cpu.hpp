// CPU model: a set of cores that serialize work items. Used to account
// CPU utilization per VM / host (paper Fig. 10) and to model compute
// costs of services (ciphers, parsing) on the data path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulator.hpp"

namespace storm::sim {

class Cpu {
 public:
  Cpu(Executor executor, std::string name, unsigned cores)
      : sim_(executor), name_(std::move(name)), free_cores_(cores),
        total_cores_(cores) {}

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Execute a task costing `cost` ns of CPU time; `done` fires when the
  /// task finishes (possibly after queueing for a free core).
  void run(Duration cost, std::function<void()> done);

  /// Convenience: account cost with no completion action.
  void burn(Duration cost) {
    run(cost, [] {});
  }

  /// Cumulative busy nanoseconds across all cores (credited at task
  /// start). For utilization over a window, snapshot busy_time() at the
  /// window start and compute (delta_busy) / (window * cores).
  Duration busy_time() const { return busy_ns_; }

  unsigned cores() const { return total_cores_; }
  const std::string& name() const { return name_; }

 private:
  struct Task {
    Duration cost;
    std::function<void()> done;
  };

  void start(Task task);

  Executor sim_;
  std::string name_;
  unsigned free_cores_;
  unsigned total_cores_;
  Duration busy_ns_ = 0;
  std::deque<Task> waiting_;
};

}  // namespace storm::sim
