// Deterministic, seedable fault injection.
//
// A FaultPlan is the single source of randomness and scheduling for every
// induced fault in a simulation run: links consult it per packet for
// probabilistic drop/corrupt/duplicate/delay decisions, and tests/benches
// register named scheduled events (crash a middle-box VM, flap a link,
// take the backend down mid-burst). Every decision and event is appended
// to an ordered trace, so two runs with the same seed and the same
// workload produce byte-identical traces — the chaos tests assert exactly
// that.
//
// This layer deliberately knows nothing about net:: types; it deals in
// probabilities, durations and raw byte buffers. The Link applies the
// decisions to packets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace storm::sim {

/// Per-link fault probabilities. All default to zero (clean link).
struct PacketFaultProfile {
  double drop_rate = 0.0;       // packet silently discarded
  double corrupt_rate = 0.0;    // one random bit flipped in flight
  double duplicate_rate = 0.0;  // packet delivered twice
  double delay_rate = 0.0;      // packet held back -> reordering
  Duration delay_jitter = microseconds(500);  // extra delay when delayed

  bool enabled() const {
    return drop_rate > 0 || corrupt_rate > 0 || duplicate_rate > 0 ||
           delay_rate > 0;
  }
};

/// Outcome of one per-packet consultation.
struct PacketFaultDecision {
  bool drop = false;
  bool corrupt = false;
  bool duplicate = false;
  Duration extra_delay = 0;
};

/// One entry in the deterministic fault trace.
struct FaultEvent {
  Time at = 0;
  std::string label;
};

class FaultPlan {
 public:
  FaultPlan(Executor executor, std::uint64_t seed)
      : sim_(executor), rng_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }
  Rng& rng() { return rng_; }

  /// Roll the dice for one packet crossing a link labelled `label`.
  /// Draw order is fixed (drop, corrupt, duplicate, delay) so traces are
  /// reproducible for a given packet sequence.
  PacketFaultDecision decide(const PacketFaultProfile& profile,
                             const std::string& label);

  /// Flip one uniformly-chosen bit in `buf` (no-op on empty buffers).
  /// The span form is what the link uses on a packet's COW payload view.
  void flip_random_bit(std::span<std::uint8_t> buf);
  void flip_random_bit(Bytes& buf) {
    flip_random_bit(std::span<std::uint8_t>(buf));
  }

  /// Schedule a named fault action; it is recorded in the trace when it
  /// fires.
  void schedule(Time when, std::string label, std::function<void()> action);

  /// Record a trace entry for an externally-triggered fault.
  void record(const std::string& label);

  const std::vector<FaultEvent>& trace() const { return trace_; }

  /// One line per trace entry: "<time_ns> <label>". Used for golden
  /// comparisons between runs.
  std::string trace_string() const;

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t corrupted() const { return corrupted_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t delayed() const { return delayed_; }

 private:
  Executor sim_;
  Rng rng_;
  std::uint64_t seed_;
  std::vector<FaultEvent> trace_;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
};

}  // namespace storm::sim
