#include "sim/cpu.hpp"

#include <utility>

namespace storm::sim {

void Cpu::run(Duration cost, std::function<void()> done) {
  Task task{cost, std::move(done)};
  if (free_cores_ > 0) {
    start(std::move(task));
  } else {
    waiting_.push_back(std::move(task));
  }
}

void Cpu::start(Task task) {
  --free_cores_;
  busy_ns_ += task.cost;
  sim_.schedule_in(task.cost, [this, done = std::move(task.done)]() mutable {
    ++free_cores_;
    if (!waiting_.empty()) {
      Task next = std::move(waiting_.front());
      waiting_.pop_front();
      start(std::move(next));
    }
    done();
  });
}

}  // namespace storm::sim
