#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace storm::sim {

void Stats::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_valid_ = false;
}

double Stats::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

void Stats::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Stats::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Stats::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Stats::percentile(double p) const {
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  auto lo = static_cast<std::size_t>(std::floor(rank));
  auto hi = static_cast<std::size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void Stats::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0;
}

}  // namespace storm::sim
