#include "sim/fault.hpp"

#include <sstream>
#include <utility>

namespace storm::sim {

PacketFaultDecision FaultPlan::decide(const PacketFaultProfile& profile,
                                      const std::string& label) {
  PacketFaultDecision d;
  if (profile.drop_rate > 0 && rng_.chance(profile.drop_rate)) {
    d.drop = true;
    ++dropped_;
    record("drop " + label);
    return d;  // a dropped packet can't also be corrupted or duplicated
  }
  if (profile.corrupt_rate > 0 && rng_.chance(profile.corrupt_rate)) {
    d.corrupt = true;
    ++corrupted_;
    record("corrupt " + label);
  }
  if (profile.duplicate_rate > 0 && rng_.chance(profile.duplicate_rate)) {
    d.duplicate = true;
    ++duplicated_;
    record("duplicate " + label);
  }
  if (profile.delay_rate > 0 && rng_.chance(profile.delay_rate)) {
    // Jitter in [jitter/2, 3*jitter/2): enough spread that back-to-back
    // delayed packets land at distinct times.
    Duration base = profile.delay_jitter;
    d.extra_delay = base / 2 + static_cast<Duration>(
                                   rng_.below(static_cast<std::uint64_t>(
                                       base > 0 ? base : 1)));
    ++delayed_;
    record("delay " + label);
  }
  return d;
}

void FaultPlan::flip_random_bit(std::span<std::uint8_t> buf) {
  if (buf.empty()) return;
  std::uint64_t bit = rng_.below(buf.size() * 8);
  buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void FaultPlan::schedule(Time when, std::string label,
                         std::function<void()> action) {
  sim_.schedule(when, [this, label = std::move(label),
                 action = std::move(action)]() {
    record(label);
    action();
  });
}

void FaultPlan::record(const std::string& label) {
  trace_.push_back(FaultEvent{sim_.now(), label});
}

std::string FaultPlan::trace_string() const {
  std::ostringstream os;
  for (const FaultEvent& ev : trace_) {
    os << ev.at << " " << ev.label << "\n";
  }
  return os.str();
}

}  // namespace storm::sim
