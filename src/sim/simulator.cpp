#include "sim/simulator.hpp"

#include <utility>

#include "obs/registry.hpp"

namespace storm::sim {

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

obs::Registry& Simulator::telemetry() {
  if (!telemetry_) telemetry_ = std::make_unique<obs::Registry>(*this);
  return *telemetry_;
}

void Simulator::at(Time when, Callback fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(fn), nullptr});
}

CancelToken Simulator::at_cancellable(Time when, Callback fn) {
  if (when < now_) when = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when, next_seq_++, std::move(fn), alive});
  return CancelToken{std::move(alive)};
}

std::size_t Simulator::run() {
  std::size_t count = 0;
  while (!queue_.empty()) {
    // Copy out before pop: the callback may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    if (ev.alive && !*ev.alive) continue;  // cancelled: don't advance now_
    now_ = ev.when;
    ev.fn();
    ++count;
  }
  return count;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.alive && !*ev.alive) continue;
    now_ = ev.when;
    ev.fn();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace storm::sim
