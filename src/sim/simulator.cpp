#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/buf.hpp"
#include "common/log.hpp"
#include "obs/registry.hpp"

namespace storm::sim {

thread_local Partition* Partition::s_current = nullptr;

Partition::Partition(Simulator& owner, std::uint32_t id)
    : owner_(&owner), id_(id) {}

Partition::~Partition() = default;

obs::Registry& Partition::telemetry() {
  if (!telemetry_) {
    telemetry_ = std::make_unique<obs::Registry>(Executor(this));
  }
  return *telemetry_;
}

CancelToken Partition::send_to(Partition& dst, Time when, Callback fn) {
  CancelSlot* slot = acquire_slot();
  const std::uint64_t gen = slot->gen.load(std::memory_order_relaxed);
  outbox_[dst.id_].push_back(
      Mail{when, id_, mail_seq_++, std::move(fn), slot, gen});
  return CancelToken(slot, gen);
}

void Partition::flush_outboxes() {
  for (std::size_t d = 0; d < outbox_.size(); ++d) {
    std::vector<Mail>& out = outbox_[d];
    if (out.empty()) continue;
    Partition& dst = *owner_->parts_[d];
    {
      std::lock_guard<std::mutex> lock(dst.inbox_mu_);
      std::move(out.begin(), out.end(), std::back_inserter(dst.inbox_));
    }
    mailbox_posts_ += out.size();
    ++mailbox_batches_;
    out.clear();
  }
}

void Partition::drain_inbox() {
  std::vector<Mail> mail;
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    if (inbox_.empty()) return;
    mail.swap(inbox_);
  }
  // The deterministic merge rule: mailbox messages are ordered among
  // themselves by (when, src_partition, src_seq) — a total order that
  // does not depend on which worker thread appended first — and receive
  // local FIFO sequence numbers in that order, i.e. after every event
  // the destination had already scheduled by the barrier.
  std::sort(mail.begin(), mail.end(), [](const Mail& a, const Mail& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.src_seq < b.src_seq;
  });
  for (Mail& m : mail) {
    Time when = m.when;
    if (when <= now_) {
      // The sender broke the lookahead contract (a partition-spanning
      // interaction faster than the configured lookahead). Clamp to the
      // barrier so time never regresses, and count it: a nonzero
      // counter means the topology's minimum cross-partition delay is
      // smaller than ParallelConfig::lookahead.
      owner_->lookahead_violations_.fetch_add(1, std::memory_order_relaxed);
      when = now_;
    }
    enqueue(when, std::move(m.fn), m.slot, m.gen);
  }
}

std::size_t Partition::run_window(Time limit) {
  ScopedCurrent guard(this);
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= limit) {
    Event ev = pop_event();
    if (!claim_fire(ev)) continue;  // cancelled: don't advance now_
    now_ = ev.when;
    ev.fn();
    recycle_slot(ev.slot);
    ++count;
  }
  // Advance to the window end — and no further. An idle partition moves
  // in lockstep with the global window so a cross-partition event landing
  // in a later window can never be in its past.
  if (now_ < limit) now_ = limit;
  // Batched mailbox flush: every cross-partition send of this window goes
  // out under one lock per destination, before the round is reported done.
  flush_outboxes();
  return count;
}

Simulator::Simulator(ParallelConfig config)
    : lookahead_(config.lookahead == 0 ? 1 : config.lookahead),
      auto_lookahead_(config.auto_lookahead),
      copy_baseline_(bufstats::bytes_copied()) {
  const std::uint32_t n = config.partitions == 0 ? 1 : config.partitions;
  parts_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    parts_.emplace_back(new Partition(*this, i));
  }
  for (auto& p : parts_) p->outbox_.resize(n);
  const std::uint32_t threads = config.threads == 0 ? n : config.threads;
  threads_ = std::min(threads, n);
  if (parts_.size() > 1 && threads_ > 1) {
    workers_.reserve(threads_ - 1);
    for (std::uint32_t i = 0; i + 1 < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

Simulator::~Simulator() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }
}

obs::Registry& Simulator::telemetry() { return parts_[0]->telemetry(); }

std::uint64_t Simulator::mailbox_batches() const {
  std::uint64_t total = 0;
  for (const auto& p : parts_) total += p->mailbox_batches_;
  return total;
}

std::uint64_t Simulator::mailbox_posts() const {
  std::uint64_t total = 0;
  for (const auto& p : parts_) total += p->mailbox_posts_;
  return total;
}

std::string Simulator::telemetry_json(bool include_spans) {
  if (parts_.size() > 1) {
    // Kernel health gauges, partition 0's registry: a nonzero
    // sim.lookahead.violations means some partition-spanning interaction
    // is faster than the window lookahead and was clamped (timing skew);
    // the mailbox gauges size the batching win. All three are
    // deterministic for a fixed partition count, so they are safe inside
    // byte-identity-gated dumps.
    obs::Registry& reg = telemetry();
    reg.gauge("sim.lookahead.violations")
        .set(static_cast<std::int64_t>(lookahead_violations()));
    reg.gauge("sim.mailbox.batches")
        .set(static_cast<std::int64_t>(mailbox_batches()));
    reg.gauge("sim.mailbox.posts")
        .set(static_cast<std::int64_t>(mailbox_posts()));
  }
  std::vector<obs::Registry*> registries;
  for (auto& p : parts_) {
    if (p->telemetry_) registries.push_back(p->telemetry_.get());
  }
  const std::uint64_t copied = bufstats::bytes_copied() - copy_baseline_;
  return obs::Registry::merged_json(registries, now(), copied, include_spans);
}

bool Simulator::empty() const {
  for (const auto& p : parts_) {
    if (!p->queue_.empty()) return false;
  }
  return true;
}

std::size_t Simulator::pending() const {
  std::size_t total = 0;
  for (const auto& p : parts_) total += p->queue_.size();
  return total;
}

std::size_t Simulator::run() {
  if (parts_.size() == 1) {
    // Classic inline loop: now() ends at the last *executed* event, and
    // a cancelled tail event leaves the clock untouched.
    Partition& p = *parts_[0];
    Partition::ScopedCurrent guard(&p);
    std::size_t count = 0;
    while (!p.queue_.empty()) {
      Partition::Event ev = p.pop_event();
      if (!p.claim_fire(ev)) continue;
      p.now_ = ev.when;
      ev.fn();
      p.recycle_slot(ev.slot);
      ++count;
    }
    return count;
  }
  return run_windowed(kNever, /*until_empty=*/true);
}

std::size_t Simulator::run_until(Time deadline) {
  if (parts_.size() == 1) return parts_[0]->run_window(deadline);
  return run_windowed(deadline, /*until_empty=*/false);
}

void Simulator::resolve_lookahead() {
  if (!auto_lookahead_ || lookahead_resolved_) return;
  lookahead_resolved_ = true;
  if (span_seen_) {
    lookahead_ = min_span_delay_ == 0 ? 1 : min_span_delay_;
    return;
  }
  if (!warned_no_span_) {
    warned_no_span_ = true;
    log_warn("sim") << "auto lookahead: no partition-spanning link was "
                       "wired; falling back to the configured lookahead of "
                    << lookahead_ << "ns";
  }
}

std::size_t Simulator::run_windowed(Time deadline, bool until_empty) {
  resolve_lookahead();
  std::size_t total = 0;
  for (;;) {
    Time floor = kNever;
    for (auto& p : parts_) floor = std::min(floor, p->next_event_time());
    if (floor == kNever) break;
    if (!until_empty && floor > deadline) break;
    Time limit = (floor >= kNever - lookahead_) ? kNever - 1
                                                : floor + lookahead_ - 1;
    if (!until_empty && limit > deadline) limit = deadline;
    run_round(limit);
    for (auto& p : parts_) total += p->last_window_events_;
    // Barrier: merge cross-partition mail, in partition-id order.
    for (auto& p : parts_) p->drain_inbox();
    // All partitions quiescent at `limit`: run the control-plane
    // callbacks the window raised (Simulator::at_barrier). They may
    // schedule fresh events anywhere, so the floor is recomputed next
    // iteration.
    run_barrier_reqs(limit);
  }
  if (until_empty) {
    Time max_now = 0;
    for (auto& p : parts_) max_now = std::max(max_now, p->now_);
    now_ = std::max(now_, max_now);
  } else {
    for (auto& p : parts_) p->now_ = std::max(p->now_, deadline);
    now_ = std::max(now_, deadline);
  }
  warn_on_violations();
  return total;
}

void Simulator::run_barrier_reqs(Time limit) {
  std::vector<Partition::BarrierReq> reqs;
  for (auto& p : parts_) {
    if (p->barrier_reqs_.empty()) continue;
    std::move(p->barrier_reqs_.begin(), p->barrier_reqs_.end(),
              std::back_inserter(reqs));
    p->barrier_reqs_.clear();
  }
  if (reqs.empty()) return;
  // Total order independent of worker scheduling: poster's clock, then
  // poster's partition id, then per-partition posting sequence.
  std::sort(reqs.begin(), reqs.end(),
            [](const Partition::BarrierReq& a, const Partition::BarrierReq& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  now_ = std::max(now_, limit);
  for (Partition::BarrierReq& r : reqs) r.fn();
}

void Simulator::warn_on_violations() {
  if (warned_violations_) return;
  const std::uint64_t v = lookahead_violations();
  if (v == 0) return;
  warned_violations_ = true;
  log_warn("sim") << v
                  << " lookahead violation(s) were clamped to window "
                     "barriers: some partition-spanning interaction is "
                     "faster than the derived lookahead of "
                  << lookahead_ << "ns (check placement and link delays)";
}

void Simulator::run_round(Time limit) {
  if (workers_.empty()) {
    // Serial rounds, partition-id order: byte-identical to any parallel
    // schedule because partitions only interact at the barrier.
    round_limit_ = limit;
    for (auto& p : parts_) p->last_window_events_ = p->run_window(limit);
    return;
  }
  const auto n = static_cast<std::uint32_t>(parts_.size());
  // Order matters: limit and parts_done_ are published by the release
  // store to next_part_; a (possibly stale) worker's first claim
  // acquires it and therefore sees this round's state.
  round_limit_ = limit;
  parts_done_.store(0, std::memory_order_relaxed);
  next_part_.store(0, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    round_sig_.fetch_add(1, std::memory_order_release);
  }
  cv_work_.notify_all();
  work_round();  // the coordinator thread pulls its weight too
  if (parts_done_.load(std::memory_order_acquire) != n) {
    std::unique_lock<std::mutex> lock(done_mu_);
    cv_done_.wait(lock, [&] {
      return parts_done_.load(std::memory_order_acquire) == n;
    });
  }
}

void Simulator::work_round() {
  const auto n = static_cast<std::uint32_t>(parts_.size());
  for (;;) {
    const std::uint32_t i = next_part_.fetch_add(1, std::memory_order_acq_rel);
    if (i >= n) break;
    // Read the limit only after a successful claim: the claim's acquire
    // pairs with run_round's release, and the round cannot end (and the
    // limit cannot change) while this claim's parts_done_ increment is
    // outstanding.
    const Time limit = round_limit_;
    parts_[i]->last_window_events_ = parts_[i]->run_window(limit);
    if (parts_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      std::lock_guard<std::mutex> lock(done_mu_);
      cv_done_.notify_all();
    }
  }
}

void Simulator::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t sig = round_sig_.load(std::memory_order_acquire);
    for (int spins = 0; sig == seen && spins < 4096; ++spins) {
      std::this_thread::yield();
      sig = round_sig_.load(std::memory_order_acquire);
    }
    if (sig == seen) {
      std::unique_lock<std::mutex> lock(pool_mu_);
      cv_work_.wait(lock, [&] {
        return shutdown_ ||
               round_sig_.load(std::memory_order_acquire) != seen;
      });
      if (shutdown_) return;
      sig = round_sig_.load(std::memory_order_acquire);
    }
    seen = sig;
    work_round();
  }
}

}  // namespace storm::sim
