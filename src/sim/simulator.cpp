#include "sim/simulator.hpp"

#include <utility>

namespace storm::sim {

void Simulator::at(Time when, Callback fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(fn), nullptr});
}

CancelToken Simulator::at_cancellable(Time when, Callback fn) {
  if (when < now_) when = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when, next_seq_++, std::move(fn), alive});
  return CancelToken{std::move(alive)};
}

std::size_t Simulator::run() {
  std::size_t count = 0;
  while (!queue_.empty()) {
    // Copy out before pop: the callback may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    if (ev.alive && !*ev.alive) continue;  // cancelled: don't advance now_
    now_ = ev.when;
    ev.fn();
    ++count;
  }
  return count;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.alive && !*ev.alive) continue;
    now_ = ev.when;
    ev.fn();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace storm::sim
