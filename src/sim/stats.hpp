// Sample accumulator for benchmark metrics: mean, min/max, percentiles.
#pragma once

#include <cstddef>
#include <vector>

namespace storm::sim {

class Stats {
 public:
  void add(double sample);

  std::size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// p in [0,100]; nearest-rank on the sorted samples.
  double percentile(double p) const;

  void clear();

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
};

}  // namespace storm::sim
