// Discrete-event simulation kernel. Single-threaded and deterministic:
// events at equal timestamps run in scheduling order (FIFO tie-break).
//
// Every latency-bearing component (links, NICs, disks, CPUs, relays) is
// driven by callbacks scheduled here, so a whole "cluster" executes inside
// one OS thread and produces identical timings on every run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace storm::obs {
class Registry;
}

namespace storm::sim {

/// Handle for a cancellable event. Cancelling marks the event dead; the
/// run loop discards dead events without advancing now(), so abandoned
/// timers (e.g. a TCP retransmission timer disarmed by an ACK) leave no
/// trace in the simulated clock.
class CancelToken {
 public:
  CancelToken() = default;

  void cancel() {
    if (alive_) *alive_ = false;
    alive_.reset();
  }
  bool armed() const { return alive_ && *alive_; }

 private:
  friend class Simulator;
  explicit CancelToken(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Schedule `fn` at absolute time `when` (clamped to now).
  void at(Time when, Callback fn);

  /// Schedule `fn` at `when`; the returned token can cancel it before it
  /// fires. A cancelled event is skipped without advancing now().
  CancelToken at_cancellable(Time when, Callback fn);

  CancelToken after_cancellable(Duration delay, Callback fn) {
    return at_cancellable(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` `delay` ns from now.
  void after(Duration delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  /// Schedule `fn` at the current time, after already-pending events at
  /// this timestamp ("post to the end of the current tick").
  void post(Callback fn) { at(now_, std::move(fn)); }

  Time now() const { return now_; }

  /// Run until the event queue is empty. Returns number of events run.
  std::size_t run();

  /// Run events with time <= deadline; advances now() to deadline.
  std::size_t run_until(Time deadline);

  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// This simulation's telemetry hub (created on first use). Everything
  /// driven by this clock — links, TCP, relays, services, the platform —
  /// reports here, so one call yields the whole cluster's metrics and
  /// traces, stamped in deterministic sim-time.
  obs::Registry& telemetry();

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback fn;
    std::shared_ptr<bool> alive;  // null for non-cancellable events
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unique_ptr<obs::Registry> telemetry_;
};

}  // namespace storm::sim
