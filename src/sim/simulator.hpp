// Discrete-event simulation kernel, sharded for parallel execution.
//
// The simulation is split into one or more Partitions (simulated host
// groups / fabric cuts). Each partition owns its own event queue, clock
// and cancel-slot pool, and — in parallel runs — executes on a worker
// thread. Partitions synchronize with conservative lookahead windows
// derived from the minimum cross-partition link propagation delay: all
// partitions run their events in [t, t + lookahead) concurrently, then
// meet at a barrier where cross-partition events (posted into the
// destination's inbox as mailbox messages) are merged in
// (when, src_partition, src_seq) order — never wall-clock order — so
// identically seeded runs produce byte-identical results at any thread
// count. Within a partition, events at equal timestamps run in
// scheduling order (FIFO tie-break), exactly as the classic
// single-threaded kernel did.
//
// Components schedule through a partition-local Executor handle:
//
//   sim::Executor exec = simulator.executor(partition_id);
//   sim::CancelToken t = exec.schedule(when, fn);      // absolute
//   sim::CancelToken t = exec.schedule_in(delay, fn);  // relative
//
// An Executor converts implicitly from Simulator& (partition 0), so
// single-partition code keeps passing the simulator around. Control-plane
// code that must read or mutate state across partitions defers itself to
// the next window barrier with Simulator::at_barrier(fn): barrier
// callbacks run on the coordinator thread while every partition is
// quiescent, in a (when, src_partition, seq) total order, so they are
// race-free and thread-count-deterministic by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "sim/time.hpp"

namespace storm::obs {
class Registry;
}

namespace storm::sim {

class Partition;
class Simulator;
class Executor;

/// Time value meaning "no pending event".
inline constexpr Time kNever = std::numeric_limits<Time>::max();

/// Generation-counted cancellation slot. One atomic per armed event,
/// recycled through its home partition's pool, so arming a cancellable
/// timer (every TCP RTO) allocates nothing in steady state. The
/// generation check makes stale tokens harmless after the slot has been
/// recycled to a newer event.
struct CancelSlot {
  std::atomic<std::uint64_t> gen{0};
  Partition* home = nullptr;
};

/// Handle for a scheduled event. Cancelling marks the event dead; the
/// run loop discards dead events without advancing now(), so abandoned
/// timers (e.g. a TCP retransmission timer disarmed by an ACK) leave no
/// trace in the simulated clock. Tokens are cheap value types: a slot
/// pointer plus the generation it was armed under.
class CancelToken {
 public:
  CancelToken() = default;

  /// Idempotent; a token whose event already fired is a no-op.
  void cancel();

  bool armed() const {
    return slot_ != nullptr &&
           slot_->gen.load(std::memory_order_acquire) == gen_;
  }

 private:
  friend class Partition;
  CancelToken(CancelSlot* slot, std::uint64_t gen)
      : slot_(slot), gen_(gen) {}

  CancelSlot* slot_ = nullptr;
  std::uint64_t gen_ = 0;
};

/// One shard of the simulation: an event queue, a clock, a cancel-slot
/// pool and a cross-partition inbox. Created and owned by the Simulator;
/// components touch it only through Executor handles.
class Partition {
 public:
  using Callback = std::function<void()>;

  Time now() const { return now_; }
  std::uint32_t id() const { return id_; }
  Simulator& simulator() { return *owner_; }

  /// This partition's telemetry registry (created on first use).
  /// Per-partition registries keep hot-path metric updates
  /// thread-confined; Simulator::telemetry_json() merges them in
  /// partition-id order for one deterministic cluster-wide dump.
  obs::Registry& telemetry();

  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;
  ~Partition();

  /// RAII marker for "this thread is currently executing this
  /// partition" — the signal Executor::schedule uses to route
  /// cross-partition calls through the mailbox.
  struct ScopedCurrent {
    explicit ScopedCurrent(Partition* p) : prev(s_current) { s_current = p; }
    ~ScopedCurrent() { s_current = prev; }
    ScopedCurrent(const ScopedCurrent&) = delete;
    ScopedCurrent& operator=(const ScopedCurrent&) = delete;
    Partition* prev;
  };

 private:
  friend class Simulator;
  friend class Executor;
  friend class CancelToken;

  struct Event {
    Time when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback fn;
    CancelSlot* slot;
    std::uint64_t gen;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  /// A cross-partition event waiting for the destination's next window.
  /// (src, src_seq) make the merge order a total order independent of
  /// which worker thread appended first.
  struct Mail {
    Time when;
    std::uint32_t src;
    std::uint64_t src_seq;
    Callback fn;
    CancelSlot* slot;
    std::uint64_t gen;
  };

  Partition(Simulator& owner, std::uint32_t id);  // defined in .cpp:
  // members include unique_ptr<obs::Registry>, incomplete here.

  // --- cancel-slot pool ---
  // acquire is only ever called by the thread legally running this
  // partition (its window worker, or the coordinator thread outside a
  // run), so the local free list needs no lock. Frees coming from other
  // partitions' threads (a mailbox event firing remotely, a
  // cross-partition cancel) go through the mutex-guarded remote list.
  CancelSlot* acquire_slot() {
    if (free_local_.empty()) {
      std::lock_guard<std::mutex> lock(pool_mu_);
      if (free_remote_.empty()) {
        slots_.emplace_back();
        slots_.back().home = this;
        return &slots_.back();
      }
      free_local_.swap(free_remote_);
    }
    CancelSlot* slot = free_local_.back();
    free_local_.pop_back();
    return slot;
  }
  void recycle_slot(CancelSlot* slot) {
    if (s_current == this || s_current == nullptr) {
      free_local_.push_back(slot);
    } else {
      std::lock_guard<std::mutex> lock(pool_mu_);
      free_remote_.push_back(slot);
    }
  }

  void enqueue(Time when, Callback fn, CancelSlot* slot, std::uint64_t gen) {
    queue_.push(Event{when, next_seq_++, std::move(fn), slot, gen});
  }

  CancelToken schedule_local(Time when, Callback fn) {
    if (when < now_) when = now_;
    CancelSlot* slot = acquire_slot();
    const std::uint64_t gen = slot->gen.load(std::memory_order_relaxed);
    enqueue(when, std::move(fn), slot, gen);
    return CancelToken(slot, gen);
  }

  /// Post a cross-partition event from *this* (the partition the calling
  /// thread is running) toward `dst`. Appends to the thread-confined
  /// per-destination outbox; the whole outbox is flushed into `dst`'s
  /// inbox with one lock acquisition at the end of this partition's
  /// window (mailbox batching). (src, src_seq) are stamped at append
  /// time, so the barrier merge order is exactly what per-message posts
  /// produced.
  CancelToken send_to(Partition& dst, Time when, Callback fn);

  /// Flush every non-empty per-destination outbox into its inbox — one
  /// inbox_mu_ acquisition per (src, dst) pair per window instead of one
  /// per message. Runs on this partition's window thread at the end of
  /// run_window, before the round is reported done, so the coordinator's
  /// barrier observes every send of the round.
  void flush_outboxes();

  /// Sort the inbox by (when, src, src_seq) and feed it into the local
  /// queue. Runs at the window barrier, in partition-id order.
  void drain_inbox();

  /// Run all events with when <= limit; advances now() to limit. The
  /// limit is the window end, never the caller's deadline, so an idle
  /// partition can never outrun the global lookahead window.
  std::size_t run_window(Time limit);

  Time next_event_time() const {
    return queue_.empty() ? kNever : queue_.top().when;
  }

  /// Move-extract the top event (the comparator only reads when/seq,
  /// which moving leaves intact, so hollowing out fn before pop is safe
  /// and skips a std::function deep copy per event).
  Event pop_event() {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    return ev;
  }

  /// True if popped event was cancelled; winner of the generation CAS
  /// owns the slot recycle.
  bool claim_fire(const Event& ev) {
    std::uint64_t expected = ev.gen;
    return ev.slot->gen.compare_exchange_strong(expected, ev.gen + 1,
                                                std::memory_order_acq_rel);
  }

  static thread_local Partition* s_current;

  /// A control-plane callback deferred to the next window barrier
  /// (Simulator::at_barrier). Buffered thread-confined on the posting
  /// partition; the coordinator collects and sorts across partitions.
  struct BarrierReq {
    Time when;          // poster's clock at the call
    std::uint32_t src;  // posting partition id
    std::uint64_t seq;  // per-partition monotonic tie-break
    Callback fn;
  };

  Simulator* owner_;
  std::uint32_t id_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t mail_seq_ = 0;  // outgoing cross-partition send counter
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unique_ptr<obs::Registry> telemetry_;
  std::size_t last_window_events_ = 0;

  // Per-destination outboxes (index = destination partition id), written
  // only by the thread running this partition's window. Flushed by
  // flush_outboxes at the end of each window.
  std::vector<std::vector<Mail>> outbox_;
  std::uint64_t mailbox_batches_ = 0;  // non-empty (src,dst) flushes
  std::uint64_t mailbox_posts_ = 0;    // messages carried by them

  // at_barrier requests raised while this partition's window ran.
  std::vector<BarrierReq> barrier_reqs_;
  std::uint64_t barrier_seq_ = 0;

  // Slot pool: slots_ gives stable addresses; the free lists recycle.
  std::deque<CancelSlot> slots_;
  std::vector<CancelSlot*> free_local_;
  std::mutex pool_mu_;
  std::vector<CancelSlot*> free_remote_;

  std::mutex inbox_mu_;
  std::vector<Mail> inbox_;
};

/// The partition-local scheduling facade components hold instead of a
/// Simulator&. Copyable, two words, converts implicitly from Simulator&
/// (partition 0). All scheduling goes through the two-call surface:
/// schedule(when) / schedule_in(delay), both returning a CancelToken.
class Executor {
 public:
  using Callback = Partition::Callback;

  Executor() = default;
  Executor(Simulator& simulator);  // NOLINT(google-explicit-constructor)

  /// Schedule `fn` at absolute time `when` (clamped to the target
  /// partition's now). Cross-partition calls are routed through the
  /// destination's mailbox; `when` must then be at least one lookahead
  /// ahead of the caller's clock (links guarantee this via propagation
  /// delay; violations are clamped and counted).
  CancelToken schedule(Time when, Callback fn) const {
    Partition* cur = Partition::s_current;
    if (cur == nullptr || cur == part_) {
      return part_->schedule_local(when, std::move(fn));
    }
    return cur->send_to(*part_, when, std::move(fn));
  }

  /// Schedule `fn` `delay` ns from the calling context's clock.
  /// schedule_in(0, fn) posts to the end of the current tick.
  CancelToken schedule_in(Duration delay, Callback fn) const {
    Partition* cur = Partition::s_current;
    const Time base = (cur != nullptr) ? cur->now_ : part_->now_;
    return schedule(base + delay, std::move(fn));
  }

  /// This partition's clock. Only meaningful from the partition's own
  /// execution context (or between runs).
  Time now() const { return part_->now_; }

  obs::Registry& telemetry() const { return part_->telemetry(); }
  std::uint32_t partition_id() const { return part_->id(); }
  Simulator& simulator() const { return *part_->owner_; }
  bool valid() const { return part_ != nullptr; }

 private:
  friend class Simulator;
  friend class Partition;
  explicit Executor(Partition* partition) : part_(partition) {}

  Partition* part_ = nullptr;
};

/// Sharding configuration. The defaults give the classic single-threaded
/// kernel: one partition, run inline on the calling thread.
struct ParallelConfig {
  /// Number of partitions (simulated host groups). Fixed per topology:
  /// determinism holds across *thread* counts for a fixed partition
  /// count, because mailbox merge order depends only on partition ids.
  std::uint32_t partitions = 1;
  /// Worker threads executing partition windows. 0 = one per partition.
  /// Clamped to the partition count; 1 runs windows serially inline.
  std::uint32_t threads = 1;
  /// Conservative lookahead: the minimum cross-partition event delay.
  /// Every window runs [t, t + lookahead) in parallel, so this must be
  /// <= the smallest propagation delay of any partition-spanning link.
  Duration lookahead = microseconds(10);
  /// Derive the lookahead from the wired topology instead: at run start
  /// it becomes the minimum propagation delay across all
  /// partition-spanning links (reported via note_span_delay, which
  /// net::Link calls when an end is rebound to another partition). When
  /// no spanning link was noted, `lookahead` above is the fallback and a
  /// warning is logged once — the topology either needs no lookahead or
  /// was wired through a side channel the derivation cannot see.
  bool auto_lookahead = false;
};

/// Coordinator owning the partitions, the worker pool and the global
/// window loop. For partitions == 1 every run_* call degenerates to the
/// classic inline event loop with identical semantics (and identical
/// seeded telemetry) to the historical single-threaded kernel.
class Simulator {
 public:
  using Callback = Partition::Callback;

  Simulator() : Simulator(ParallelConfig{}) {}
  explicit Simulator(ParallelConfig config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- redesigned scheduling surface (partition 0) ---

  /// Schedule `fn` at absolute time `when` (clamped to now).
  CancelToken schedule(Time when, Callback fn) {
    return executor().schedule(when, std::move(fn));
  }
  /// Schedule `fn` `delay` ns from now; schedule_in(0, fn) posts to the
  /// end of the current tick.
  CancelToken schedule_in(Duration delay, Callback fn) {
    return executor().schedule_in(delay, std::move(fn));
  }

  /// The scheduling handle for one partition. Components hold this.
  Executor executor(std::uint32_t partition = 0) {
    return Executor(parts_[partition].get());
  }
  std::uint32_t partition_count() const {
    return static_cast<std::uint32_t>(parts_.size());
  }
  Duration lookahead() const { return lookahead_; }
  std::uint32_t threads() const { return threads_; }

  /// A partition-spanning edge with propagation delay `prop` was wired
  /// (net::Link::set_end_executor). With auto_lookahead, the smallest
  /// such delay becomes the window lookahead at the next run start.
  void note_span_delay(Duration prop) {
    if (prop <= 0) return;
    if (!span_seen_ || prop < min_span_delay_) {
      span_seen_ = true;
      min_span_delay_ = prop;
      lookahead_resolved_ = false;
    }
  }
  bool span_delay_seen() const { return span_seen_; }

  /// Global clock: with one partition, that partition's clock; with
  /// several, the coordinator's window floor (all partition clocks are
  /// >= a window start and < its end while running).
  Time now() const {
    return parts_.size() == 1 ? parts_[0]->now() : now_;
  }

  /// Defer `fn` to the next window barrier. Barrier callbacks run on the
  /// coordinator thread while every partition is quiescent (all clocks at
  /// the window end), so they may read and mutate any partition's state
  /// race-free — the control channel for cloud attach/detach, health
  /// probes and chaos injection on a partitioned topology. Callbacks
  /// collected from all partitions execute in (when, src_partition, seq)
  /// order, so the schedule is thread-count-deterministic. Runs `fn`
  /// inline when that is already safe: a single-partition simulator, a
  /// call from outside any partition (coordinator between runs), or a
  /// call from within another barrier callback.
  void at_barrier(Callback fn) {
    Partition* cur = Partition::s_current;
    if (parts_.size() == 1 || cur == nullptr) {
      fn();
      return;
    }
    cur->barrier_reqs_.push_back(Partition::BarrierReq{
        cur->now_, cur->id_, cur->barrier_seq_++, std::move(fn)});
  }

  /// True when the calling thread is executing a partition window (as
  /// opposed to the coordinator thread between rounds, inside a barrier
  /// callback, or outside a run) — the cue for control-plane entry
  /// points that must defer themselves with at_barrier.
  static bool in_partition_context() { return Partition::s_current != nullptr; }

  /// Mailbox batching telemetry: non-empty (src, dst) outbox flushes and
  /// the cross-partition messages they carried. Deterministic for a fixed
  /// partition count. Also exported as sim.mailbox.* gauges in
  /// telemetry_json().
  std::uint64_t mailbox_batches() const;
  std::uint64_t mailbox_posts() const;

  /// Run until every queue is empty. Returns number of events run.
  std::size_t run();

  /// Run events with time <= deadline; advances now() to the deadline.
  /// Partition clocks advance window by window — an idle partition never
  /// jumps past the global lookahead window while others still run.
  std::size_t run_until(Time deadline);

  std::size_t run_for(Duration d) { return run_until(now() + d); }

  bool empty() const;
  std::size_t pending() const;

  /// Partition 0's telemetry hub (the whole cluster's, for
  /// single-partition simulations — the historical behavior).
  obs::Registry& telemetry();

  /// Deterministic cluster-wide telemetry dump: all partition registries
  /// merged in partition-id order (counters/gauges sum, histograms merge
  /// bucket-wise, flight-recorder entries interleave by sim-time, spans
  /// concatenate with ids remapped). Byte-identical for identically
  /// seeded runs at any thread count.
  std::string telemetry_json(bool include_spans = false);

  /// Cross-partition events that arrived at or before the destination's
  /// window (sender broke the lookahead contract). They are clamped to
  /// the window barrier; a nonzero count means the configured lookahead
  /// exceeds some link's real propagation delay.
  std::uint64_t lookahead_violations() const {
    return lookahead_violations_.load(std::memory_order_relaxed);
  }

 private:
  friend class Partition;

  std::size_t run_windowed(Time deadline, bool until_empty);
  /// Collect, order and execute pending at_barrier callbacks (coordinator
  /// thread, all partitions quiescent at `limit`).
  void run_barrier_reqs(Time limit);
  /// End-of-run lookahead accounting: warn once if any violation was
  /// clamped during this simulator's lifetime.
  void warn_on_violations();
  void run_round(Time limit);
  void work_round();
  void worker_loop();
  /// Apply auto_lookahead at run start (topology-derived, see
  /// ParallelConfig::auto_lookahead).
  void resolve_lookahead();

  std::vector<std::unique_ptr<Partition>> parts_;
  Duration lookahead_;
  bool auto_lookahead_ = false;
  bool span_seen_ = false;
  bool lookahead_resolved_ = false;
  bool warned_no_span_ = false;
  Duration min_span_delay_ = 0;
  std::uint32_t threads_;
  Time now_ = 0;
  std::uint64_t copy_baseline_ = 0;  // bufstats tally at construction
  std::atomic<std::uint64_t> lookahead_violations_{0};
  bool warned_violations_ = false;

  // Worker pool (spawned only for partitions > 1 && threads > 1).
  // Round protocol: the coordinator publishes round_sig_/round_limit_,
  // workers claim partitions via next_part_ and report through
  // parts_done_; acquire/release on the two signal atomics carries the
  // happens-before edges for all partition state.
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable cv_work_;
  std::mutex done_mu_;
  std::condition_variable cv_done_;
  std::atomic<std::uint64_t> round_sig_{0};
  bool shutdown_ = false;
  Time round_limit_ = 0;
  std::atomic<std::uint32_t> next_part_{0};
  std::atomic<std::uint32_t> parts_done_{0};
};

inline Executor::Executor(Simulator& simulator)
    : part_(simulator.executor(0).part_) {}

inline void CancelToken::cancel() {
  if (slot_ == nullptr) return;
  std::uint64_t expected = gen_;
  if (slot_->gen.compare_exchange_strong(expected, gen_ + 1,
                                         std::memory_order_acq_rel)) {
    slot_->home->recycle_slot(slot_);
  }
  slot_ = nullptr;
}

}  // namespace storm::sim
