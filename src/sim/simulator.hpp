// Discrete-event simulation kernel. Single-threaded and deterministic:
// events at equal timestamps run in scheduling order (FIFO tie-break).
//
// Every latency-bearing component (links, NICs, disks, CPUs, relays) is
// driven by callbacks scheduled here, so a whole "cluster" executes inside
// one OS thread and produces identical timings on every run.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace storm::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `when` (clamped to now).
  void at(Time when, Callback fn);

  /// Schedule `fn` `delay` ns from now.
  void after(Duration delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  /// Schedule `fn` at the current time, after already-pending events at
  /// this timestamp ("post to the end of the current tick").
  void post(Callback fn) { at(now_, std::move(fn)); }

  Time now() const { return now_; }

  /// Run until the event queue is empty. Returns number of events run.
  std::size_t run();

  /// Run events with time <= deadline; advances now() to deadline.
  std::size_t run_until(Time deadline);

  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace storm::sim
