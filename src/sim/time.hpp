// Simulated time: 64-bit nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace storm::sim {

using Time = std::uint64_t;      // absolute, nanoseconds
using Duration = std::uint64_t;  // relative, nanoseconds

constexpr Duration nanoseconds(std::uint64_t n) { return n; }
constexpr Duration microseconds(std::uint64_t n) { return n * 1'000ull; }
constexpr Duration milliseconds(std::uint64_t n) { return n * 1'000'000ull; }
constexpr Duration seconds(std::uint64_t n) { return n * 1'000'000'000ull; }

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / 1e9;
}
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / 1e6;
}

}  // namespace storm::sim
