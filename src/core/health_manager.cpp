#include "core/health_manager.hpp"

#include <sstream>
#include <utility>

#include "common/log.hpp"
#include "core/platform.hpp"
#include "iscsi/initiator.hpp"

namespace storm::core {

const char* to_string(RelayHealth state) {
  switch (state) {
    case RelayHealth::kAlive:
      return "alive";
    case RelayHealth::kSuspect:
      return "suspect";
    case RelayHealth::kFailed:
      return "failed";
    case RelayHealth::kStandbyPromoted:
      return "standby-promoted";
    case RelayHealth::kBypassed:
      return "bypassed";
    case RelayHealth::kFenced:
      return "fenced";
  }
  return "?";
}

void dump_flight_recorder(obs::Registry& registry, const std::string& why) {
  std::ostringstream dump;
  registry.recorder().dump(dump);
  log_warn("health") << why << "; flight recorder tail:\n" << dump.str();
}

ChainHealthManager::ChainHealthManager(StormPlatform& platform,
                                       HealthConfig config)
    : platform_(platform), config_(config) {}

obs::Registry& ChainHealthManager::telemetry() const {
  return platform_.cloud_.simulator().telemetry();
}

void ChainHealthManager::start() {
  if (running_) {
    return;
  }
  running_ = true;
  telemetry().record_event("health: monitoring started");
  tick();
}

void ChainHealthManager::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  tick_token_.cancel();
  // Unhook the stall callbacks: the stacks outlive this manager only by
  // accident of destruction order, and a dangling std::function target
  // must never be left behind.
  for (net::TcpStack* stack : hooked_stacks_) {
    stack->set_on_stall(nullptr);
  }
  hooked_stacks_.clear();
}

void ChainHealthManager::tick() {
  if (!running_) {
    return;
  }
  // The probe reads relay/node/initiator state on every partition and
  // the recovery policies rewire the chain; both belong at the window
  // barrier (inline on a single-partition simulator). The heartbeat
  // timer itself lives on the control partition.
  platform_.cloud_.simulator().at_barrier([this] {
    if (!running_) {
      return;
    }
    for (auto& dep : platform_.deployments_) {
      ChainHealth& chain = chains_[dep->splice.cookie];
      if (chain.boxes.size() != dep->boxes.size()) {
        // First sight of this chain (or an add/remove_middlebox reshaped
        // it): everything is presumed alive as of now.
        chain.boxes.assign(dep->boxes.size(), BoxHealth{});
        for (BoxHealth& bh : chain.boxes) {
          bh.last_alive = telemetry().now();
        }
      }
      install_stall_hooks(*dep);
      if (dep->state != DeploymentState::kActive) {
        continue;
      }
      if (chain.recovering) {
        check_recovery(*dep, chain);
      }
      probe_deployment(*dep, chain);
    }
  });
  tick_token_ = platform_.cloud_.control_executor().schedule_in(
      config_.heartbeat_interval, [this] { tick(); });
}

bool ChainHealthManager::box_alive(const Deployment& dep,
                                   std::size_t position) const {
  const MiddleboxInstance& box = *dep.boxes[position];
  if (box.vm->node().is_down()) {
    return false;
  }
  if (box.active_relay && box.active_relay->crashed()) {
    return false;
  }
  return true;
}

void ChainHealthManager::probe_deployment(Deployment& dep,
                                          ChainHealth& chain) {
  const sim::Time now = telemetry().now();
  obs::Registry& reg = telemetry();
  for (std::size_t i = 0; i < dep.boxes.size(); ++i) {
    BoxHealth& bh = chain.boxes[i];
    // Services piggyback their own failure detection and repair state
    // machines (replica death declaration, re-attach, rebuild kicks) on
    // the heartbeat cadence — one recovery-latency knob for the chain.
    if (dep.boxes[i]->service != nullptr && box_alive(dep, i)) {
      dep.boxes[i]->service->on_health_probe(now);
    }
    if (bh.state != RelayHealth::kAlive && bh.state != RelayHealth::kSuspect) {
      continue;
    }
    reg.counter("health.heartbeats").add();
    if (box_alive(dep, i)) {
      if (bh.state == RelayHealth::kSuspect) {
        reg.record_event("health: relay " + dep.boxes[i]->vm->name() +
                         " answered before deadline");
      }
      bh.state = RelayHealth::kAlive;
      bh.misses = 0;
      bh.last_alive = now;
      continue;
    }
    ++bh.misses;
    reg.counter("health.misses").add();
    if (bh.state == RelayHealth::kAlive) {
      bh.state = RelayHealth::kSuspect;
      reg.record_event("health: relay " + dep.boxes[i]->vm->name() +
                       " suspect (" + std::to_string(bh.misses) + "/" +
                       std::to_string(config_.miss_threshold) + " misses)");
    }
    if (bh.misses >= config_.miss_threshold) {
      declare_failed(dep, chain, i, "heartbeat deadline");
      break;  // the recovery policy may have reshaped the chain
    }
  }
}

void ChainHealthManager::declare_failed(Deployment& dep, ChainHealth& chain,
                                        std::size_t position,
                                        const std::string& how) {
  obs::Registry& reg = telemetry();
  BoxHealth& bh = chain.boxes[position];
  bh.state = RelayHealth::kFailed;
  ++failures_;

  // The policy executors below may destroy or erase the box — capture
  // everything we need from it first.
  const std::string box_name = dep.boxes[position]->vm->name();
  const RecoveryPolicyKind policy = dep.boxes[position]->spec.recovery;

  reg.counter("health.failures").add();
  reg.record_event("health: relay " + box_name + " FAILED (" + how +
                   "; policy " + std::string(to_string(policy)) + ")");
  dump_flight_recorder(reg, "relay " + box_name + " failed (" + how + ")");

  chain.recovering = true;
  chain.recovery_kind = policy;
  chain.recovering_position = position;
  chain.failure_last_alive = bh.last_alive;
  chain.failed_at = reg.now();
  chain.failover_span = reg.begin_span("failover." + dep.vm + ":" + dep.volume);
  reg.add_event(chain.failover_span, "detected:" + box_name,
                static_cast<std::uint64_t>(chain.failed_at -
                                           chain.failure_last_alive));
  reg.histogram("health.detect_ns")
      .record(static_cast<std::int64_t>(chain.failed_at -
                                        chain.failure_last_alive));

  Status status;
  switch (policy) {
    case RecoveryPolicyKind::kStandby:
      status = platform_.promote_standby(dep, position);
      if (status.is_ok()) {
        // The spare now occupies `position`; it starts a fresh health
        // history. Recovery completes once its sessions re-establish
        // (polled by check_recovery).
        chain.boxes[position] = BoxHealth{};
        chain.boxes[position].last_alive = reg.now();
        chain.outcome = RelayHealth::kStandbyPromoted;
        reg.add_event(chain.failover_span, "standby_promoted");
        reg.counter("health.failovers").add();
        return;
      }
      break;
    case RecoveryPolicyKind::kBypass:
      status = platform_.bypass_middlebox(dep, position);
      if (status.is_ok()) {
        chain.boxes.erase(chain.boxes.begin() +
                          static_cast<std::ptrdiff_t>(position));
        chain.outcome = RelayHealth::kBypassed;
        reg.add_event(chain.failover_span, "bypassed");
        reg.counter("health.bypasses").add();
        return;
      }
      break;
    case RecoveryPolicyKind::kFence:
      break;
  }

  if (policy != RecoveryPolicyKind::kFence) {
    reg.record_event("health: " + std::string(to_string(policy)) +
                     " recovery failed (" + status.to_string() +
                     "); fencing instead");
  }
  platform_.fence_deployment(dep, "relay " + box_name + " failed (" + how +
                                      ")");
  // position is still valid: fencing never erases boxes, and the failed
  // promote/bypass paths leave the vector untouched.
  chain.boxes[position].state = RelayHealth::kFenced;
  chain.outcome = RelayHealth::kFenced;
  chain.recovering = false;
  const sim::Time now = reg.now();
  reg.histogram("health.fence_ns")
      .record(static_cast<std::int64_t>(now - chain.failure_last_alive));
  reg.add_event(chain.failover_span, "fenced",
                static_cast<std::uint64_t>(now - chain.failure_last_alive));
  reg.end_span(chain.failover_span);
  chain.failover_span = 0;
  reg.counter("health.fences").add();
}

void ChainHealthManager::check_recovery(Deployment& dep, ChainHealth& chain) {
  bool restored = true;
  if (chain.outcome == RelayHealth::kStandbyPromoted &&
      chain.recovering_position < dep.boxes.size()) {
    ActiveRelay* relay =
        dep.boxes[chain.recovering_position]->active_relay.get();
    if (relay != nullptr) {
      restored = relay->sessions_established() && !relay->crashed();
    }
  }
  iscsi::Initiator* initiator = dep.attachment.initiator;
  if (initiator != nullptr) {
    restored = restored && initiator->logged_in() && !initiator->recovering();
  }
  if (restored) {
    finish_recovery(dep, chain);
  }
}

void ChainHealthManager::finish_recovery(Deployment& dep, ChainHealth& chain) {
  obs::Registry& reg = telemetry();
  const sim::Time now = reg.now();
  // MTTR runs from the instant the failed relay was last known alive to
  // the data path being fully restored — detection latency included.
  reg.histogram("health.mttr_ns")
      .record(static_cast<std::int64_t>(now - chain.failure_last_alive));
  reg.histogram("health.repair_ns")
      .record(static_cast<std::int64_t>(now - chain.failed_at));
  reg.add_event(chain.failover_span, "recovered",
                static_cast<std::uint64_t>(now - chain.failure_last_alive));
  reg.end_span(chain.failover_span);
  chain.failover_span = 0;
  chain.recovering = false;
  ++recoveries_;
  reg.counter("health.recoveries").add();
  reg.record_event("health: " + dep.vm + ":" + dep.volume + " recovered (" +
                   std::string(to_string(chain.outcome)) + ")");
}

void ChainHealthManager::on_tcp_stall(const net::FourTuple& flow,
                                      unsigned retries) {
  if (!running_) {
    return;
  }
  sim::Simulator& sim = platform_.cloud_.simulator();
  if (sim.partition_count() == 1) {
    obs::Registry& reg = telemetry();
    reg.counter("health.tcp_stalls").add();
    reg.record_event("health: tcp stall on " + net::to_string(flow) + " (" +
                     std::to_string(retries) + " retries)");
    // The stall callback fires inside TCP timer processing; the probe may
    // tear connections down, so defer it to a fresh event.
    sim.schedule_in(0, [this] {
      if (running_) {
        stall_probe();
      }
    });
    return;
  }
  // Partitioned run: the callback fires on the stalled stack's partition
  // thread, but the probe spans the whole chain — record and probe at
  // the barrier, where tearing connections down is also safe.
  sim.at_barrier([this, flow, retries] {
    if (!running_) {
      return;
    }
    obs::Registry& reg = telemetry();
    reg.counter("health.tcp_stalls").add();
    reg.record_event("health: tcp stall on " + net::to_string(flow) + " (" +
                     std::to_string(retries) + " retries)");
    stall_probe();
  });
}

void ChainHealthManager::stall_probe() {
  // Exhausted retransmission backoff is already a missed deadline: any
  // monitored box that fails its liveness probe right now is declared
  // failed without waiting out the heartbeat miss counter.
  for (auto& dep : platform_.deployments_) {
    if (dep->state != DeploymentState::kActive) {
      continue;
    }
    auto it = chains_.find(dep->splice.cookie);
    if (it == chains_.end() ||
        it->second.boxes.size() != dep->boxes.size()) {
      continue;  // not yet monitored; the next tick picks it up
    }
    ChainHealth& chain = it->second;
    for (std::size_t i = 0; i < dep->boxes.size(); ++i) {
      BoxHealth& bh = chain.boxes[i];
      if (bh.state != RelayHealth::kAlive &&
          bh.state != RelayHealth::kSuspect) {
        continue;
      }
      if (!box_alive(*dep, i)) {
        declare_failed(*dep, chain, i, "tcp stall");
        break;  // the recovery policy may have reshaped the chain
      }
    }
  }
}

void ChainHealthManager::install_stall_hooks(Deployment& dep) {
  auto hook = [this](net::NetNode& node) {
    net::TcpStack* stack = &node.tcp();
    for (net::TcpStack* seen : hooked_stacks_) {
      if (seen == stack) {
        return;
      }
    }
    hooked_stacks_.push_back(stack);
    stack->set_on_stall([this](const net::FourTuple& flow, unsigned retries) {
      on_tcp_stall(flow, retries);
    });
  };
  // The legs that matter: the compute host dialing into the chain, and
  // every middle-box VM (including warm standbys) dialing upstream.
  hook(platform_.cloud_.compute(dep.attachment.host_index).node());
  for (auto& box : dep.boxes) {
    hook(box->vm->node());
    if (box->standby) {
      hook(box->standby->vm->node());
    }
  }
}

void ChainHealthManager::forget_deployment(std::uint64_t cookie) {
  chains_.erase(cookie);
}

void ChainHealthManager::unhook_node(net::TcpStack* stack) {
  for (auto it = hooked_stacks_.begin(); it != hooked_stacks_.end(); ++it) {
    if (*it == stack) {
      stack->set_on_stall(nullptr);
      hooked_stacks_.erase(it);
      return;
    }
  }
}

RelayHealth ChainHealthManager::status(std::uint64_t cookie,
                                       std::size_t position) const {
  auto it = chains_.find(cookie);
  if (it == chains_.end() || position >= it->second.boxes.size()) {
    return RelayHealth::kAlive;
  }
  return it->second.boxes[position].state;
}

RelayHealth ChainHealthManager::last_outcome(std::uint64_t cookie) const {
  auto it = chains_.find(cookie);
  return it == chains_.end() ? RelayHealth::kAlive : it->second.outcome;
}

}  // namespace storm::core
