// StormPlatform: the top-level façade tying the pieces together.
//
// Tenants submit policies (policy.hpp); the platform provisions
// middle-box VMs from the service registry, creates the tenant's gateway
// pair, programs NAT + SDN steering, and finally attaches the volume
// under the atomic-attachment protocol — after which every byte of that
// volume's iSCSI traffic traverses the tenant's middle-box chain,
// transparently to the VM and the storage backend (paper §III-D).
//
// Callers hold DeploymentHandle values, not raw pointers into the
// platform: a handle resolves its deployment by cookie on every use, so
// it stays valid (or reports invalid) across other deployments coming
// and going, and detach() is an explicit, first-class operation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud.hpp"
#include "core/active_relay.hpp"
#include "core/attribution.hpp"
#include "core/passive_relay.hpp"
#include "core/policy.hpp"
#include "core/sdn_controller.hpp"
#include "core/service.hpp"
#include "core/splicer.hpp"
#include "net/qos.hpp"
#include "obs/registry.hpp"

namespace storm::core {

class StormPlatform;
class ChainHealthManager;
struct HealthConfig;

/// Everything a service factory may need.
struct ServiceEnv {
  cloud::Cloud* cloud = nullptr;
  StormPlatform* platform = nullptr;
  cloud::Vm* mb_vm = nullptr;
  block::Volume* volume = nullptr;  // the protected (primary) volume
  const ServiceSpec* spec = nullptr;
};

/// One deployed middle-box VM with its relay and service instance.
struct MiddleboxInstance {
  cloud::Vm* vm = nullptr;
  ServiceSpec spec;
  std::unique_ptr<StorageService> service;  // null for relay=forward
  std::unique_ptr<ActiveRelay> active_relay;
  std::unique_ptr<PassiveRelay> passive_relay;
  /// Warm spare provisioned alongside boxes with recovery=standby: its
  /// relay listens but nothing is steered to it until the health manager
  /// promotes it in place of this box.
  std::unique_ptr<MiddleboxInstance> standby;
  /// True when this box belongs to a tenant ReplicaSet and is shared by
  /// every flow the consistent-hash ring pins to it. Deployment teardown
  /// must drop only its own session (ActiveRelay::drop_session), never
  /// shut the relay down.
  bool pooled = false;
  /// Ring label of a pooled box ("<tenant>/<type>#<ordinal>").
  std::string replica_label;
};

enum class DeploymentState {
  kActive,    // data path live
  kDraining,  // admission closed, waiting for in-flight work to flush
  kFenced,    // failed closed: rules torn, in-flight commands errored
};

/// A spliced volume attachment with its chain (platform-internal state;
/// external callers go through DeploymentHandle). Boxes are shared_ptr
/// because a pooled replica appears in every deployment whose flow the
/// hash ring pinned to it (its ReplicaSet co-owns it); non-pooled boxes
/// still have exactly one owner.
struct Deployment {
  std::string vm;
  std::string volume;
  SpliceContext splice;
  cloud::Attachment attachment;
  std::vector<std::shared_ptr<MiddleboxInstance>> boxes;
  obs::SpanId attach_span = 0;  // "deploy.<vm>:<volume>", ends at detach
  DeploymentState state = DeploymentState::kActive;
};

/// A pool of interchangeable active-relay replicas standing in for one
/// logical chain hop, shared by every flow of one tenant + service type
/// (policy stanza `replicas N`). The consistent-hash ring pins each flow
/// (keyed on its iSCSI 4-tuple) to exactly one replica; scale-up/-down
/// moves only the flows whose arc changed hands, each via the deferred-
/// admission migration protocol — no in-flight write is ever dropped.
struct ReplicaSet {
  std::string tenant;
  ServiceSpec spec;  // base spec: relay/type/params + replicas stanza
  std::vector<std::shared_ptr<MiddleboxInstance>> replicas;
  /// Scaled-down replicas, parked with relay shut down and VM powered
  /// off; a later scale-up revives the newest parked box before
  /// provisioning fresh ones (VM boot time off the scale-up path).
  std::vector<std::shared_ptr<MiddleboxInstance>> parked;
  FlowHashRing ring;
  std::map<std::uint64_t, std::string> assignments;  // cookie -> label
  unsigned next_ordinal = 0;

  std::string key() const { return tenant + "|" + spec.type; }
  MiddleboxInstance* find(const std::string& label) const {
    for (const auto& r : replicas) {
      if (r->replica_label == label) return r.get();
    }
    return nullptr;
  }
};

/// Value handle to one deployment. Resolution is by splice cookie, so a
/// handle survives unrelated deployments being created or torn down; a
/// handle whose deployment was detached (or rolled back) reports
/// valid() == false and its accessors return null / errors.
class DeploymentHandle {
 public:
  DeploymentHandle() = default;

  bool valid() const;
  explicit operator bool() const { return valid(); }
  std::uint64_t cookie() const { return cookie_; }

  const std::string& vm() const;
  const std::string& volume() const;
  std::size_t chain_length() const;
  const SpliceContext* splice() const;
  /// The underlying volume attachment (initiator/target endpoints).
  const cloud::Attachment* attachment() const;

  // --- typed access to one middle-box of the chain (tests/benches) ---
  ActiveRelay* active_relay(std::size_t position) const;
  PassiveRelay* passive_relay(std::size_t position) const;
  StorageService* service(std::size_t position) const;
  cloud::Vm* mb_vm(std::size_t position) const;
  const ServiceSpec* spec(std::size_t position) const;
  /// The warm standby relay shadowing `position` (recovery=standby only).
  ActiveRelay* standby_relay(std::size_t position) const;

  /// Drain in progress / fenced (see DeploymentState). Both false for an
  /// invalid handle.
  bool draining() const;
  bool fenced() const;

  // --- on-demand scaling (paper §III-A, SDN-enabled flow steering) ---
  /// Insert a packet-level middle-box (relay=forward|passive) at
  /// `position` in the chain and reprogram the switches.
  Status add_middlebox(const ServiceSpec& spec, std::size_t position);
  /// Remove the packet-level middle-box at `position`.
  Status remove_middlebox(std::size_t position);

  // --- fault injection (chaos tests / bench) ---
  /// Power-fail the middle-box VM at `position`: an active relay crashes
  /// with journal intact (see ActiveRelay::crash); other relay modes just
  /// take the VM's node down.
  Status crash_middlebox(std::size_t position);
  /// Power the crashed middle-box back on; an active relay re-dials the
  /// target and replays its journal.
  Status restart_middlebox(std::size_t position);

  /// Tear the deployment down via the drain protocol: stop admitting
  /// commands, wait (on the sim clock) for every relay queue, journal and
  /// outstanding command to flush, then remove every NAT rule and SDN
  /// flow tagged with the cookie and destroy the chain's relays. An idle
  /// chain tears down immediately; a busy one finishes its in-flight
  /// commands first, so no half-forwarded command is ever lost. The
  /// handle (and any copy of it) becomes invalid once teardown runs.
  Status detach();

 private:
  friend class StormPlatform;
  DeploymentHandle(StormPlatform* platform, std::uint64_t cookie)
      : platform_(platform), cookie_(cookie) {}
  Deployment* resolve() const;
  MiddleboxInstance* resolve_box(std::size_t position) const;

  StormPlatform* platform_ = nullptr;
  std::uint64_t cookie_ = 0;
};

class StormPlatform {
 public:
  explicit StormPlatform(cloud::Cloud& cloud);
  ~StormPlatform();

  StormPlatform(const StormPlatform&) = delete;
  StormPlatform& operator=(const StormPlatform&) = delete;

  /// Factory registry: maps ServiceSpec::type to a constructor. The
  /// built-in "noop" type is pre-registered; storm::services registers
  /// the paper's three services.
  using ServiceFactory =
      std::function<Result<std::unique_ptr<StorageService>>(ServiceEnv&)>;
  void register_service(const std::string& type, ServiceFactory factory);
  bool has_service(const std::string& type) const {
    return factories_.contains(type);
  }

  /// Apply a full tenant policy: deploy every volume's chain in order.
  /// On success the callback receives one handle per volume, in policy
  /// order; on the first failure it receives that error (deployments
  /// already made by this call are left in place).
  void apply_policy(
      const TenantPolicy& policy,
      std::function<void(Result<std::vector<DeploymentHandle>>)> done);

  /// Deploy one chain and attach one volume through it.
  void attach_with_chain(const std::string& vm_name,
                         const std::string& volume_name,
                         std::vector<ServiceSpec> chain,
                         std::function<void(Result<DeploymentHandle>)> done);

  /// Install (or replace) the tenant's token-bucket rate limit on its
  /// ingress gateway, creating the gateway pair if needed; a disabled
  /// spec removes the limiter. apply_policy calls this for policies
  /// carrying a `qos` stanza, so every chain of the tenant shares one
  /// bucket — one tenant's burst queues behind its own limit instead of
  /// starving another tenant's chain.
  void set_tenant_qos(const std::string& tenant, const QosSpec& qos);
  /// The tenant's installed bucket, or nullptr.
  const net::TokenBucket* tenant_qos(const std::string& tenant) const;
  /// Mutable bucket handle: the autoscaler re-prices the tenant's rate
  /// in place (TokenBucket::set_rate) as the replica pool grows and
  /// shrinks. nullptr when the tenant has no qos stanza installed.
  net::TokenBucket* tenant_qos_mutable(const std::string& tenant);

  // --- elastic replica sets (scale-out) ---
  /// Resize the tenant's replica pool for `service_type` to `target`
  /// active replicas, clamped to the policy's min/max. Runs at a window
  /// barrier. Scale-up revives/provisions replicas and installs their
  /// hash arcs; scale-down retires the newest replicas first. Either
  /// way, only the flows whose arc changed hands move, each through the
  /// deferred-admission migration drain (commands park, never fail), and
  /// `done` fires once every migration landed — with OK, or the first
  /// migration error. Resizing to the current size is an OK no-op.
  void scale_service_replicas(const std::string& tenant,
                              const std::string& service_type,
                              unsigned target,
                              std::function<void(Status)> done = {});
  /// The tenant's pool for `service_type`, or nullptr when no deployment
  /// with a `replicas` stanza created one.
  const ReplicaSet* replica_set(const std::string& tenant,
                                const std::string& service_type) const;

  /// Handle to an existing deployment; invalid handle if none matches.
  DeploymentHandle find_deployment(const std::string& vm,
                                   const std::string& volume);

  ConnectionAttribution& attribution() { return attribution_; }
  NetworkSplicer& splicer() { return splicer_; }
  SdnController& sdn() { return sdn_; }
  cloud::Cloud& cloud() { return cloud_; }

  /// The chain health manager (liveness + automatic recovery). Created
  /// with the platform but idle until ChainHealthManager::start().
  ChainHealthManager& health() { return *health_; }

  /// Upper bound on how long a drain waits for in-flight work before
  /// forcing teardown anyway (a wedged chain must not block detach
  /// forever).
  void set_drain_timeout(sim::Duration timeout) { drain_timeout_ = timeout; }

 private:
  friend class DeploymentHandle;
  friend class ChainHealthManager;

  std::uint16_t allocate_flow_port() { return next_flow_port_++; }
  /// attach_with_chain body, run in barrier/control context (the public
  /// entry point defers itself with sim::Simulator::at_barrier).
  void attach_with_chain_at_barrier(
      const std::string& vm_name, const std::string& volume_name,
      std::vector<ServiceSpec> chain,
      std::function<void(Result<DeploymentHandle>)> done);
  unsigned place_middlebox(const ServiceSpec& spec, unsigned vm_host);
  Result<std::unique_ptr<MiddleboxInstance>> build_box(
      const ServiceSpec& spec, const std::string& label,
      const std::string& tenant, unsigned vm_host, block::Volume* volume);
  void wire_relays(Deployment& deployment);

  // --- replica-set internals ---
  ReplicaSet* find_replica_set(const std::string& tenant,
                               const std::string& type);
  /// Create (or revive from the parked list) one pooled replica and
  /// start its relay; newly built service instances are appended to
  /// `fresh_services` so the attach path can initialize() them exactly
  /// once.
  Result<std::shared_ptr<MiddleboxInstance>> build_replica(
      ReplicaSet& set, unsigned avoid_host,
      std::vector<StorageService*>* fresh_services);
  /// Attach-time acquisition: ensure the tenant's pool exists at its
  /// configured size, pin this flow's 4-tuple on the hash ring, register
  /// the protected volume with the chosen relay. Returns the pooled box
  /// the flow was pinned to.
  Result<std::shared_ptr<MiddleboxInstance>> acquire_replica(
      Deployment& dep, const ServiceSpec& spec, const std::string& tenant,
      unsigned vm_host, block::Volume* volume,
      std::vector<StorageService*>* fresh_services);
  /// Teardown/rollback: drop this deployment's sessions from its pooled
  /// boxes and erase its ring assignments. Pooled relays stay up.
  void release_replica_flows(Deployment& dep);
  /// Move dep's flow from the pooled box at `position` to `target`:
  /// deferred admission -> drain poll -> atomic handoff (journal
  /// extraction, NAT flush on the old VM, capture + steering reprogram,
  /// session adoption) -> reopen. Parked commands are replayed, never
  /// failed.
  void migrate_flow(Deployment& dep, std::size_t position,
                    std::shared_ptr<MiddleboxInstance> target,
                    std::function<void(Status)> done);
  void scale_at_barrier(const std::string& tenant, const std::string& type,
                        unsigned target, std::function<void(Status)> done);
  /// After the ring changed: migrate every flow whose assignment no
  /// longer matches its current replica, one at a time (deterministic
  /// order), then run `done`.
  void rebalance_flows(ReplicaSet& set, std::function<void(Status)> done);
  /// Retire a drained replica: shut its relay down, power the VM off,
  /// unhook its stall callback, move it to the parked list.
  void park_replica(ReplicaSet& set,
                    std::shared_ptr<MiddleboxInstance> box);
  Deployment* deployment_by_cookie(std::uint64_t cookie);
  Status add_middlebox(Deployment& deployment, const ServiceSpec& spec,
                       std::size_t position);
  Status remove_middlebox(Deployment& deployment, std::size_t position);
  Status crash_middlebox(Deployment& deployment, std::size_t position);
  Status restart_middlebox(Deployment& deployment, std::size_t position);
  Status detach_deployment(std::uint64_t cookie);
  /// Recompute splice.chain from the current boxes vector.
  void rebuild_chain(Deployment& deployment);

  // --- drain protocol ---
  /// Close the initiator's admission gate and poll (on the sim clock)
  /// until the chain is quiescent, then invoke `done` — with OK when the
  /// chain flushed, or kDeadlineExceeded if drain_timeout_ elapsed first
  /// (the caller tears down regardless; a wedged chain must not pin the
  /// deployment forever). Runs `done` synchronously when already
  /// quiescent.
  void drain_deployment(Deployment& dep, std::function<void(Status)> done);
  /// Nothing in flight anywhere: no outstanding initiator commands, all
  /// relay queues/journals/backlogs empty.
  bool deployment_quiescent(const Deployment& dep) const;

  // --- recovery policy executors (invoked by the health manager) ---
  /// kStandby: swap the failed box at `position` for its warm spare —
  /// NVRAM journal handoff, capture-rule refresh, atomic SDN rule swap,
  /// initiator kick.
  Status promote_standby(Deployment& dep, std::size_t position);
  /// kBypass: remove the box at `position` from the chain and reroute
  /// around it. Refused (kPermissionDenied) for confidentiality-critical
  /// services — fail-open would violate their guarantee.
  Status bypass_middlebox(Deployment& dep, std::size_t position);
  /// kFence: fail closed — error in-flight commands back to the
  /// initiator, close admission, shut every relay down, tear the rules.
  Status fence_deployment(Deployment& dep, const std::string& reason);
  /// Undo a failed attach: remove every NAT rule and SDN flow tagged with
  /// the deployment's cookie and drop the deployment (tearing down its
  /// relays). No half-spliced state may survive a failed attach.
  void rollback_deployment(Deployment* dep);
  void teardown_rules(Deployment* dep);
  obs::Registry& telemetry();

  cloud::Cloud& cloud_;
  ConnectionAttribution attribution_;
  NetworkSplicer splicer_;
  SdnController sdn_;
  std::map<std::string, ServiceFactory> factories_;
  std::vector<std::unique_ptr<Deployment>> deployments_;
  // Keyed "<tenant>|<type>"; pooled boxes are co-owned by the set and by
  // every deployment pinned to them, so destruction order is immaterial.
  std::map<std::string, std::unique_ptr<ReplicaSet>> replica_sets_;
  std::map<std::string, std::unique_ptr<net::TokenBucket>> qos_buckets_;
  std::unique_ptr<ChainHealthManager> health_;
  sim::Duration drain_timeout_ = sim::seconds(2);
  std::uint64_t next_cookie_ = 1;
  std::uint16_t next_flow_port_ = 40000;
  unsigned next_mb_host_ = 0;
  std::uint64_t next_mb_id_ = 1;
};

}  // namespace storm::core
