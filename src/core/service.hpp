// The tenant-facing service API (paper §III-B): middle-box services
// receive parsed iSCSI PDUs in flow order, may transform them in place,
// consume them, or inject new PDUs in either direction.
//
// Everything a service needs from its hosting relay arrives through one
// ServiceContext: PDU injection, the simulation clock, the middle-box's
// telemetry scope, and the identity of the volume being protected. The
// relay owns the context; services never see raw platform objects.
//
// Compute cost: services return the simulated CPU time their processing
// takes; the relay charges it to the middle-box VM's vCPUs, so service
// work contends with the relay's own packet handling — which is exactly
// the contention the paper's Figures 5-9 measure.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.hpp"
#include "iscsi/pdu.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace storm::journal {
class Device;
}  // namespace storm::journal

namespace storm::core {

enum class Direction {
  kToTarget,     // initiator -> storage (commands, Data-Out)
  kToInitiator,  // storage -> initiator (Data-In, responses)
};

inline const char* to_string(Direction dir) {
  return dir == Direction::kToTarget ? "to-target" : "to-initiator";
}

/// Per-PDU call context a relay hands to its services. Injection is only
/// implemented by the active relay (it owns both byte streams); the
/// passive relay rejects services that need it at deployment time and
/// throws if one injects anyway.
class ServiceContext {
 public:
  virtual ~ServiceContext() = default;

  /// Send a service-originated PDU toward the storage target.
  virtual void inject_to_target(iscsi::Pdu pdu) = 0;

  /// Send a service-originated PDU toward the tenant VM.
  virtual void inject_to_initiator(iscsi::Pdu pdu) = 0;

  virtual sim::Simulator& simulator() = 0;

  /// The hosting middle-box's telemetry scope ("relay.<mb-vm>."); any
  /// counters/histograms a service creates here land next to its relay's
  /// metrics in the registry dump.
  virtual const obs::Scope& scope() = 0;

  /// Name of the protected (primary) volume whose traffic this relay
  /// splices; empty for packet-level boxes inserted without one.
  virtual const std::string& volume() const = 0;
};

/// What a hosting relay lends a service beyond the per-PDU context:
/// a scheduling executor (the middle-box VM's partition), the relay's
/// telemetry scope, and — on an active relay — its NVRAM journal device,
/// so a service can persist its own recovery state (e.g. the replication
/// version map) next to the relay's streams and survive a power failure
/// with it.
struct ServiceHost {
  sim::Executor executor;
  obs::Scope scope;
  journal::Device* journal = nullptr;
};

struct ServiceVerdict {
  /// True: the service handled the PDU itself (e.g. a replication box
  /// serving a read from a replica); the relay must not forward it.
  bool consume = false;
  /// Simulated CPU cost of processing this PDU, charged to the MB vCPUs.
  sim::Duration cpu_cost = 0;
};

class StorageService {
 public:
  virtual ~StorageService() = default;

  virtual std::string name() const = 0;

  /// Process one PDU travelling in `dir`. May mutate `pdu` in place
  /// (sizes must be preserved under a passive relay).
  virtual ServiceVerdict on_pdu(ServiceContext& ctx, Direction dir,
                                iscsi::Pdu& pdu) = 0;

  /// True when the service consumes/injects PDUs and therefore needs an
  /// active relay (TCP termination). Checked at deployment.
  virtual bool requires_active_relay() const { return false; }

  /// True when routing traffic *around* this box would violate its
  /// guarantee (a cipher leaks plaintext, replication silently stops
  /// mirroring). Deployment rejects recovery=bypass for such services —
  /// they may only fail over to a standby or fence (SICS: chain repair
  /// must preserve per-service security semantics).
  virtual bool confidentiality_critical() const { return false; }

  /// True when one service instance may serve flows of *different*
  /// volumes concurrently (replica-set pooling): the instance must keep
  /// no cross-PDU per-volume state of its own — anything it needs per
  /// flow comes from ServiceContext::volume(). Services that bind to one
  /// protected volume at construction (replication's copy set, the
  /// monitor's filesystem view) return false and are refused a `replicas`
  /// stanza at deployment.
  virtual bool replica_safe() const { return true; }

  /// Asynchronous setup before any traffic flows (e.g. the replication
  /// service attaching its backup volumes to the middle-box VM). The
  /// platform waits for `ready` before opening the data path.
  virtual void initialize(std::function<void(Status)> ready) {
    ready(Status::ok());
  }

  /// The spliced flow's TCP stream closed (target failure, detach).
  virtual void on_flow_closed(Status /*status*/) {}

  /// Called once by the hosting relay when it comes up, before traffic
  /// flows. Services that schedule their own work (background rebuild,
  /// timers) or persist recovery state take what they need from `host`.
  virtual void bind_host(const ServiceHost& /*host*/) {}

  /// Periodic liveness probe, driven by the chain health manager's
  /// heartbeat tick. Services run their own failure detection and
  /// repair state machines (replica death declaration, re-attach,
  /// rebuild kicks) on this cadence so recovery latency is governed by
  /// the same knob as relay failover.
  virtual void on_health_probe(sim::Time /*now*/) {}

  /// The hosting relay VM power-failed: volatile service state is gone;
  /// only what the service journaled survives. Halt background work.
  virtual void on_host_crashed() {}

  /// The hosting relay restarted and replayed its NVRAM: reload
  /// journaled state and resume background work.
  virtual void on_host_recovered() {}
};

}  // namespace storm::core
