// The tenant-facing service API (paper §III-B): middle-box services
// receive parsed iSCSI PDUs in flow order, may transform them in place,
// consume them, or inject new PDUs in either direction.
//
// Compute cost: services return the simulated CPU time their processing
// takes; the relay charges it to the middle-box VM's vCPUs, so service
// work contends with the relay's own packet handling — which is exactly
// the contention the paper's Figures 5-9 measure.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "iscsi/pdu.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace storm::core {

enum class Direction {
  kToTarget,     // initiator -> storage (commands, Data-Out)
  kToInitiator,  // storage -> initiator (Data-In, responses)
};

inline const char* to_string(Direction dir) {
  return dir == Direction::kToTarget ? "to-target" : "to-initiator";
}

/// Capabilities a relay exposes to services beyond in-place transforms.
/// Only the active relay implements injection (it owns both byte streams);
/// the passive relay rejects services that need it.
class RelayApi {
 public:
  virtual ~RelayApi() = default;

  /// Send a service-originated PDU toward the storage target.
  virtual void inject_to_target(iscsi::Pdu pdu) = 0;

  /// Send a service-originated PDU toward the tenant VM.
  virtual void inject_to_initiator(iscsi::Pdu pdu) = 0;

  virtual sim::Simulator& simulator() = 0;
};

struct ServiceVerdict {
  /// True: the service handled the PDU itself (e.g. a replication box
  /// serving a read from a replica); the relay must not forward it.
  bool consume = false;
  /// Simulated CPU cost of processing this PDU, charged to the MB vCPUs.
  sim::Duration cpu_cost = 0;
};

class StorageService {
 public:
  virtual ~StorageService() = default;

  virtual std::string name() const = 0;

  /// Process one PDU travelling in `dir`. May mutate `pdu` in place
  /// (sizes must be preserved under a passive relay).
  virtual ServiceVerdict on_pdu(Direction dir, iscsi::Pdu& pdu,
                                RelayApi& relay) = 0;

  /// True when the service consumes/injects PDUs and therefore needs an
  /// active relay (TCP termination). Checked at deployment.
  virtual bool requires_active_relay() const { return false; }

  /// Asynchronous setup before any traffic flows (e.g. the replication
  /// service attaching its backup volumes to the middle-box VM). The
  /// platform waits for `ready` before opening the data path.
  virtual void initialize(std::function<void(Status)> ready) {
    ready(Status::ok());
  }

  /// The spliced flow's TCP stream closed (target failure, detach).
  virtual void on_flow_closed(Status /*status*/) {}
};

}  // namespace storm::core
