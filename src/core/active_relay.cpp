#include "core/active_relay.hpp"

#include <sstream>

#include "common/log.hpp"
#include "net/node.hpp"

namespace storm::core {

// ------------------------------------------------------------- ActiveRelay

ActiveRelay::ActiveRelay(cloud::Vm& mb_vm, net::SocketAddr upstream,
                         std::vector<StorageService*> services,
                         std::string volume, ActiveRelayCosts costs,
                         RelayFlowControl flow, journal::Config journal_config)
    : vm_(mb_vm), upstream_(upstream), services_(std::move(services)),
      volume_(std::move(volume)), costs_(costs), flow_(flow),
      scope_(telemetry().scope("relay." + vm_.name() + ".")),
      journal_dev_(mb_vm.node().executor(),
                   telemetry().scope("relay." + vm_.name() + ".journal."),
                   journal_config) {
  // A resume threshold above the pause threshold could never be crossed
  // downward while paused — clamp rather than deadlock.
  flow_.low_watermark = std::min(flow_.low_watermark, flow_.high_watermark);
  for (StorageService* service : services_) {
    if (service != nullptr) {
      service->bind_host(
          ServiceHost{vm_.node().executor(), scope_, &journal_dev_});
    }
  }
}

obs::Registry& ActiveRelay::telemetry() {
  return vm_.node().executor().telemetry();
}

void ActiveRelay::start() {
  vm_.node().tcp().listen(iscsi::kIscsiPort, [this](net::TcpConnection& conn) {
    on_accept(conn);
  });
}

void ActiveRelay::on_accept(net::TcpConnection& conn) {
  // A reconnecting initiator re-uses its pinned source port (it must, or
  // the conntrack-steered path would break). If a session with that port
  // lost its downstream to a crash, adopt the new connection into it so
  // the journal and the already re-dialed upstream are reused instead of
  // creating a duplicate session.
  for (auto& existing : sessions_) {
    if (existing->bind_port == conn.remote().port &&
        existing->downstream == nullptr) {
      // Like the receive-window credit below, journaled responses are
      // owed to the previous downstream incarnation and void with it:
      // the new connection's ack count starts at zero, so records
      // watermarked for the old one could never trim, and the initiator
      // re-issues anything it never saw answered.
      reset_direction(existing->to_initiator);
      bind_downstream(*existing, conn);
      // If the upstream leg is dead too (its loss is what tore the
      // initiator's side down in the first place), resume fully: re-dial
      // and replay the journal. Otherwise the initiator's re-login would
      // pile up in the backlog with nobody ever draining it.
      if (existing->upstream == nullptr) {
        resume_session(*existing);
      }
      return;
    }
  }

  auto session = std::make_unique<Session>();
  Session* raw = session.get();
  session->bind_port = conn.remote().port;
  session->ctx = std::make_unique<SessionContext>(*this, *raw);
  // Both directions multiplex into the relay's shared journal device,
  // each on its own stream.
  session->to_target.journal = journal::Stream(journal_dev_);
  session->to_initiator.journal = journal::Stream(journal_dev_);
  sessions_.push_back(std::move(session));
  scope_.counter("sessions_accepted").add();

  bind_downstream(*raw, conn);
  dial_upstream(*raw);
}

void ActiveRelay::bind_downstream(Session& session,
                                  net::TcpConnection& conn) {
  Session* raw = &session;
  net::TcpConnection* cp = &conn;
  session.downstream = cp;
  // A fresh connection starts with a full receive window: credit owed to
  // a previous incarnation is void.
  session.to_target.uncredited = 0;
  session.to_target.paused = false;
  // Credit-based delivery (before set_on_data, so flushed pending bytes
  // are charged too): received bytes stay counted against the advertised
  // window until update_backpressure() releases them, which is what lets
  // the relay close the window back toward the initiator at the journal
  // high watermark.
  conn.set_credit_based(flow_.high_watermark > 0);
  conn.set_on_data([this, raw](Buf bytes) {
    on_stream_data(*raw, Direction::kToTarget, std::move(bytes));
  });
  conn.set_on_ack([this, raw, cp] {
    raw->to_initiator.journal.trim(cp->bytes_acked());
    update_journal_gauge();
    update_backpressure(*raw, Direction::kToInitiator);
  });
  conn.set_on_closed([this, raw, cp](Status status) {
    if (raw->downstream == cp) raw->downstream = nullptr;
    if (raw->failed) return;  // induced teardown: recovery handles it
    for (StorageService* service : services_) service->on_flow_closed(status);
    if (raw->upstream != nullptr) raw->upstream->abort();
  });
}

void ActiveRelay::dial_upstream(Session& session) {
  // The pseudo-client binds the flow's original source port so SDN
  // steering and later capture rules keep matching (paper Fig. 3 shows
  // vm1_port preserved along the whole chain).
  session.upstream = &vm_.node().tcp().connect(
      upstream_,
      [this, &session] {
        session.upstream_ready = true;
        if (!session.upstream_backlog.empty()) {
          BufChain backlog;
          backlog.swap(session.upstream_backlog);
          session.upstream->send(std::move(backlog));
        }
      },
      session.bind_port);
  session.to_initiator.uncredited = 0;
  session.to_initiator.paused = false;
  session.upstream->set_credit_based(flow_.high_watermark > 0);
  session.upstream->set_on_data([this, &session](Buf bytes) {
    on_stream_data(session, Direction::kToInitiator, std::move(bytes));
  });
  session.upstream->set_on_ack([this, &session] {
    session.to_target.journal.trim(session.upstream->bytes_acked());
    update_journal_gauge();
    update_backpressure(session, Direction::kToTarget);
  });
  session.upstream->set_on_closed([this, &session](Status status) {
    session.upstream_ready = false;
    session.upstream = nullptr;  // object is gone; adoption checks this
    if (!session.failed) {
      // Unplanned upstream loss: surface to services and drop the tenant
      // side as well (the initiator re-attaches; journal preserved).
      telemetry().record_event("relay " + vm_.name() +
                               ": unplanned upstream loss (" +
                               status.to_string() + ")");
      for (StorageService* service : services_) {
        service->on_flow_closed(status);
      }
      if (session.downstream != nullptr) session.downstream->abort();
    }
  });
}

void ActiveRelay::on_stream_data(Session& session, Direction dir,
                                 Buf bytes) {
  DirectionState& st = state(session, dir);
  if (flow_.high_watermark > 0) st.uncredited += bytes.size();
  std::vector<iscsi::Pdu> pdus;
  Status status = st.parser.feed(std::move(bytes), pdus);
  if (!status.is_ok()) {
    log_warn("active-relay") << vm_.name()
                             << ": parse error: " << status.to_string();
    telemetry().record_event("relay " + vm_.name() +
                             ": parse error: " + status.to_string());
    session.downstream->abort();
    if (session.upstream != nullptr) session.upstream->abort();
    return;
  }
  // Journal trim: everything the next hop acknowledged can be dropped.
  if (session.upstream != nullptr) {
    session.to_target.journal.trim(session.upstream->bytes_acked());
  }
  if (session.downstream != nullptr) {
    session.to_initiator.journal.trim(session.downstream->bytes_acked());
  }
  update_journal_gauge();
  const sim::Time now = vm_.node().executor().now();
  for (auto& pdu : pdus) {
    trace_pdu(session, dir, pdu, st.queue.size());
    const std::size_t wire = iscsi::serialized_size(pdu);
    st.queue_bytes += wire;
    st.queue.push_back(QueuedPdu{now, wire, std::move(pdu)});
  }
  update_backpressure(session, dir);
  pump_queue(session, dir);
}

// Stamp the command's trace: an event on the root command span (value =
// relay queue depth at arrival) at every hop, a child span "relay.<vm>"
// opened when the command enters and closed when its final response
// leaves toward the initiator.
void ActiveRelay::trace_pdu(Session& session, Direction dir,
                            const iscsi::Pdu& pdu, std::size_t queue_depth) {
  if (pdu.opcode != iscsi::Opcode::kScsiCommand &&
      pdu.opcode != iscsi::Opcode::kScsiResponse) {
    return;
  }
  obs::Registry& reg = telemetry();
  const std::string key =
      obs::command_trace_key(session.bind_port, pdu.task_tag);
  const obs::SpanId root = reg.lookup(key);
  if (root == 0) return;
  if (dir == Direction::kToTarget &&
      pdu.opcode == iscsi::Opcode::kScsiCommand) {
    reg.add_event(root, "mb." + vm_.name() + ".cmd", queue_depth);
    cmd_spans_[key] = reg.begin_span("relay." + vm_.name(), root);
  } else if (dir == Direction::kToInitiator &&
             pdu.opcode == iscsi::Opcode::kScsiResponse && pdu.is_final()) {
    reg.add_event(root, "mb." + vm_.name() + ".rsp", queue_depth);
    auto it = cmd_spans_.find(key);
    if (it != cmd_spans_.end()) {
      reg.end_span(it->second);
      cmd_spans_.erase(it);
    }
  }
}

void ActiveRelay::update_journal_gauge() {
  scope_.gauge("journal_bytes").set(static_cast<std::int64_t>(journal_bytes()));
}

// Re-evaluate one direction's ingress credit after any change to its
// journal or queue. Crossing the high watermark withholds credit (the
// ingress window closes as the uncredited bytes accumulate); draining
// below the low watermark releases everything withheld in one update,
// reopening the window. Below the watermark the credit is returned
// immediately, so early-ACK latency is untouched in the common case.
//
// The load deliberately excludes the journal's torn tail (the trailing
// incomplete burst): those bytes only drain once the burst's remaining
// PDUs arrive, and closing the window over them would make the pause
// permanent — the burst can neither complete (window shut) nor trim
// (burst-atomic journal). Counting complete bursts only means an open
// burst is always allowed to finish, bounding a direction's buffering at
// high_watermark + largest-burst + ingress TCP window (+ parse slop)
// instead of deadlocking.
void ActiveRelay::update_backpressure(Session& session, Direction dir) {
  DirectionState& st = state(session, dir);
  net::TcpConnection* ingress =
      dir == Direction::kToTarget ? session.downstream : session.upstream;
  if (flow_.high_watermark > 0) {
    const std::size_t load = st.journal.complete_bytes() + st.queue_bytes;
    if (!st.paused && load >= flow_.high_watermark) {
      st.paused = true;
      scope_.counter("bp_pauses").add();
      telemetry().record_event(
          "relay " + vm_.name() + ": backpressure pause (" +
          std::to_string(load) + " bytes buffered)");
    } else if (st.paused && load <= flow_.low_watermark) {
      st.paused = false;
      scope_.counter("bp_resumes").add();
    }
    if (!st.paused && ingress != nullptr && st.uncredited > 0) {
      const std::size_t credit = st.uncredited;
      st.uncredited = 0;
      ingress->consume(credit);
    }
  }
  std::size_t queued = 0;
  for (const auto& s : sessions_) {
    queued += s->to_target.queue_bytes + s->to_initiator.queue_bytes;
  }
  const std::size_t buffered = queued + journal_bytes();
  if (buffered > peak_buffered_) {
    peak_buffered_ = buffered;
    scope_.gauge("buffered_bytes_peak")
        .set(static_cast<std::int64_t>(buffered));
  }
  scope_.gauge("queue_bytes").set(static_cast<std::int64_t>(queued));
}

void ActiveRelay::pump_queue(Session& session, Direction dir) {
  DirectionState& st = state(session, dir);
  if (st.processing || st.queue.empty()) return;
  st.processing = true;
  QueuedPdu entry = std::move(st.queue.front());
  st.queue.pop_front();
  st.queue_bytes -= std::min(entry.bytes, st.queue_bytes);
  iscsi::Pdu pdu = std::move(entry.pdu);
  const sim::Time enqueued = entry.enqueued;

  // Relay cost: parse/dispatch plus batched copy, then service costs —
  // all charged to the middle-box vCPUs. The source's TCP was already
  // ACKed on receipt, so none of this stalls the sender.
  sim::Duration cost =
      costs_.per_pdu +
      static_cast<sim::Duration>(costs_.ns_per_byte *
                                 static_cast<double>(pdu.data.size()));
  // One user/kernel crossing in, one out: the payload is copied twice
  // through the relay (socket -> user parse buffer -> socket).
  scope_.counter("copied_bytes").add(2 * pdu.data.size());

  const std::uint64_t epoch = session.epoch;
  auto continue_processing = [this, &session, dir, epoch, enqueued,
                              pdu = std::move(pdu)]() mutable {
    // A crash/resume reset the session while this was queued on the CPU:
    // the PDU belongs to the dead incarnation (the journal already holds
    // everything that must survive). Drop it.
    if (session.epoch != epoch) return;
    if (pdu.opcode == iscsi::Opcode::kLoginRequest) {
      session.login_pdu = pdu;  // kept for session re-establishment
    }
    bool consume = false;
    sim::Duration service_cost = 0;
    if (dir == Direction::kToTarget) {
      for (StorageService* service : services_) {
        ServiceVerdict verdict = service->on_pdu(*session.ctx, dir, pdu);
        service_cost += verdict.cpu_cost;
        if (verdict.consume) {
          consume = true;
          break;
        }
      }
    } else {
      for (auto it = services_.rbegin(); it != services_.rend(); ++it) {
        ServiceVerdict verdict = (*it)->on_pdu(*session.ctx, dir, pdu);
        service_cost += verdict.cpu_cost;
        if (verdict.consume) {
          consume = true;
          break;
        }
      }
    }
    auto finish = [this, &session, dir, consume, epoch, enqueued,
                   pdu = std::move(pdu)]() mutable {
      if (session.epoch != epoch) return;
      if (!consume) {
        forward(session, dir, pdu);
        ++pdus_relayed_;
        scope_.counter("pdus_relayed").add();
      } else {
        scope_.counter("pdus_consumed").add();
      }
      scope_.histogram("pdu_ns").record(static_cast<std::int64_t>(
          vm_.node().executor().now() - enqueued));
      DirectionState& st3 = state(session, dir);
      st3.processing = false;
      // The PDU moved from the queue into the journal (or was consumed):
      // re-evaluate crediting with the new journal + queue load.
      update_backpressure(session, dir);
      pump_queue(session, dir);
    };
    if (service_cost > 0) {
      vm_.cpu().run(service_cost, std::move(finish));
    } else {
      finish();
    }
  };
  vm_.cpu().run(cost, std::move(continue_processing));
}

void ActiveRelay::forward(Session& session, Direction dir,
                          const iscsi::Pdu& pdu) {
  // Serialize once; the journal's live index and the TCP send queue share
  // the chunks by reference (the payload chunk still references the
  // received PDU's storage). The journal device additionally stores the
  // frame into its NVRAM segment — that store is the persistence image
  // replay recovers from, accounted on the journal's own byte counters,
  // not a data-path copy.
  BufChain wire = iscsi::serialize_chunks(pdu);
  DirectionState& st = state(session, dir);
  st.enqueued_bytes += chain_size(wire);
  // A PDU without the final flag is mid-burst (a write command whose
  // Data-Out tail follows): not a safe replay point.
  st.journal.append(wire, st.enqueued_bytes, pdu.is_final());
  update_journal_gauge();
  if (dir == Direction::kToTarget) {
    send_upstream(session, wire);
  } else {
    send_downstream(session, wire);
  }
}

void ActiveRelay::send_upstream(Session& session, const BufChain& wire) {
  if (!session.upstream_ready) {
    session.upstream_backlog.insert(session.upstream_backlog.end(),
                                    wire.begin(), wire.end());
    return;
  }
  session.upstream->send(wire);
}

void ActiveRelay::send_downstream(Session& session, const BufChain& wire) {
  if (session.downstream != nullptr) session.downstream->send(wire);
}

void ActiveRelay::SessionContext::inject_to_target(iscsi::Pdu pdu) {
  relay_.scope_.counter("pdus_injected").add();
  relay_.forward(session_, Direction::kToTarget, pdu);
}

void ActiveRelay::SessionContext::inject_to_initiator(iscsi::Pdu pdu) {
  relay_.scope_.counter("pdus_injected").add();
  relay_.forward(session_, Direction::kToInitiator, pdu);
}

sim::Simulator& ActiveRelay::SessionContext::simulator() {
  return relay_.vm_.node().simulator();
}

void ActiveRelay::fail_upstream() {
  for (auto& session : sessions_) {
    if (session->upstream != nullptr) {
      session->failed = true;
      session->upstream->abort();
      session->upstream_ready = false;
    }
  }
}

void ActiveRelay::recover_upstream() {
  for (auto& session : sessions_) {
    if (!session->failed) continue;
    resume_session(*session);
  }
}

void ActiveRelay::reset_direction(DirectionState& st) {
  journal::Stream stream = st.journal;
  st = DirectionState{};
  // Drop the dead incarnation's records from the device index and carry
  // on under a fresh stream id, still bound to the same device.
  stream.reset();
  st.journal = stream;
}

void ActiveRelay::resume_session(Session& session) {
  session.failed = false;
  ++session.epoch;  // invalidate CPU work queued before the reset
  // Collect unacknowledged PDUs before resetting the counters. The
  // backlog is stale (those bytes are all in the journal).
  std::vector<BufChain> replay = session.to_target.journal.unacknowledged();
  reset_direction(session.to_target);
  reset_direction(session.to_initiator);
  session.upstream_backlog.clear();
  session.upstream_ready = false;
  ++journal_replays_;
  scope_.counter("journal_replays").add();
  telemetry().record_event("relay " + vm_.name() + ": journal replay (" +
                           std::to_string(replay.size()) + " pdus)");
  dial_upstream(session);
  // Re-login first, then the unacknowledged tail.
  if (session.login_pdu) {
    forward(session, Direction::kToTarget, *session.login_pdu);
  }
  for (const BufChain& wire : replay) {
    session.to_target.enqueued_bytes += chain_size(wire);
    session.to_target.journal.append(wire, session.to_target.enqueued_bytes);
    send_upstream(session, wire);
  }
  update_journal_gauge();
}

void ActiveRelay::crash() {
  if (crashed_) return;
  crashed_ = true;
  vm_.node().set_down(true);
  telemetry().record_event("relay " + vm_.name() + ": CRASH (" +
                           std::to_string(sessions_.size()) + " sessions, " +
                           std::to_string(journal_bytes()) +
                           " journal bytes survive)");
  // Post-mortem aid: dump the recent-event ring so the lead-up to the
  // crash is visible in the log even when no telemetry JSON is written.
  std::ostringstream dump;
  telemetry().recorder().dump(dump);
  log_warn("active-relay") << vm_.name() << ": crashed\n" << dump.str();
  // Null the connection pointers before wiping the stack: the objects are
  // about to be destroyed, and a crashed node fires no close callbacks.
  for (auto& session : sessions_) {
    session->failed = true;
    session->upstream_ready = false;
    session->downstream = nullptr;
    session->upstream = nullptr;
    ++session->epoch;  // invalidate CPU work queued by the dead incarnation
  }
  vm_.node().tcp().reset();
  // Power failure hits the journal device too: the volatile stream index
  // and any in-flight NVRAM write die; only the segment bytes survive.
  journal_dev_.crash();
  // Services lose their volatile state with the VM: background work
  // (e.g. a replication rebuild in flight) must halt until restart.
  for (StorageService* service : services_) {
    if (service != nullptr) service->on_host_crashed();
  }
}

void ActiveRelay::restart() {
  if (!crashed_) return;
  crashed_ = false;
  vm_.node().set_down(false);
  // Replay the NVRAM segments before anything else: the recovered stream
  // index is what resume_session reads its unacknowledged tail from.
  const journal::Device::ReplayStats stats = journal_dev_.recover();
  telemetry().record_event(
      "relay " + vm_.name() + ": restart (journal replay recovered " +
      std::to_string(stats.recovered) + " records, skipped " +
      std::to_string(stats.skipped) + " below checkpoint, " +
      std::to_string(stats.torn) + " torn)");
  start();  // re-listen for the initiator's reconnection
  for (auto& session : sessions_) {
    if (session->failed) resume_session(*session);
  }
  // The journal index is back: services reload their journaled recovery
  // state (version maps, rebuild cursors) and resume background work.
  for (StorageService* service : services_) {
    if (service != nullptr) service->on_host_recovered();
  }
}

void ActiveRelay::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  vm_.node().tcp().stop_listening(iscsi::kIscsiPort);
  for (auto& session : sessions_) {
    session->failed = true;  // suppress cross-abort close handlers
    net::TcpConnection* down = session->downstream;
    net::TcpConnection* up = session->upstream;
    session->downstream = nullptr;
    session->upstream = nullptr;
    if (down != nullptr) down->abort();
    if (up != nullptr) up->abort();
  }
}

RelayJournalSnapshot ActiveRelay::export_journal() {
  // A crashed relay's volatile index is gone; the standby reads the dead
  // box's NVRAM, so rebuild the index from the segments first. recover()
  // is idempotent, so a later restart() replays the same state again.
  if (crashed_) journal_dev_.recover();
  RelayJournalSnapshot snapshot;
  for (const auto& session : sessions_) {
    RelayJournalSnapshot::SessionImage image;
    image.bind_port = session->bind_port;
    image.login_pdu = session->login_pdu;
    image.to_target_wires = session->to_target.journal.unacknowledged();
    snapshot.sessions.push_back(std::move(image));
  }
  return snapshot;
}

void ActiveRelay::adopt_sessions(RelayJournalSnapshot snapshot) {
  for (auto& image : snapshot.sessions) {
    auto session = std::make_unique<Session>();
    Session* raw = session.get();
    raw->bind_port = image.bind_port;
    raw->ctx = std::make_unique<SessionContext>(*this, *raw);
    raw->login_pdu = std::move(image.login_pdu);
    raw->to_target.journal = journal::Stream(journal_dev_);
    raw->to_initiator.journal = journal::Stream(journal_dev_);
    // Seed the journal with the dead relay's unacknowledged tail; the
    // cumulative watermarks restart from zero because the upstream leg
    // is a brand-new connection.
    std::uint64_t watermark = 0;
    for (BufChain& wire : image.to_target_wires) {
      watermark += chain_size(wire);
      raw->to_target.journal.append(std::move(wire), watermark);
    }
    raw->to_target.enqueued_bytes = watermark;
    sessions_.push_back(std::move(session));
    scope_.counter("sessions_adopted").add();
    telemetry().record_event(
        "relay " + vm_.name() + ": adopted session (port " +
        std::to_string(raw->bind_port) + ", " +
        std::to_string(raw->to_target.journal.bytes()) + " journal bytes)");
    // resume_session re-dials upstream and replays login + journal; the
    // initiator's reconnection binds the downstream leg via on_accept.
    resume_session(*raw);
  }
  update_journal_gauge();
}

ActiveRelay::Session* ActiveRelay::find_session(std::uint16_t bind_port) {
  for (auto& session : sessions_) {
    if (session->bind_port == bind_port) return session.get();
  }
  return nullptr;
}

void ActiveRelay::teardown_session(Session& session) {
  session.failed = true;  // suppress cross-abort close handlers
  ++session.epoch;        // stale CPU callbacks drop themselves
  net::TcpConnection* down = session.downstream;
  net::TcpConnection* up = session.upstream;
  session.downstream = nullptr;
  session.upstream = nullptr;
  if (down != nullptr) down->abort();
  if (up != nullptr) up->abort();
  // Release the session's journal streams from the shared device — a
  // departed flow must not pin NVRAM (or the relay's quiescence) behind
  // the flows that stay.
  reset_direction(session.to_target);
  reset_direction(session.to_initiator);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->get() == &session) {
      sessions_.erase(it);
      break;
    }
  }
  update_journal_gauge();
}

bool ActiveRelay::session_quiescent(std::uint16_t bind_port) const {
  for (const auto& session : sessions_) {
    if (session->bind_port != bind_port) continue;
    return session->to_target.queue.empty() &&
           session->to_initiator.queue.empty() &&
           !session->to_target.processing &&
           !session->to_initiator.processing &&
           session->to_target.journal.bytes() == 0 &&
           session->to_initiator.journal.bytes() == 0 &&
           session->upstream_backlog.empty();
  }
  return true;  // no session for this flow: nothing to drain
}

RelayJournalSnapshot ActiveRelay::extract_session(std::uint16_t bind_port) {
  RelayJournalSnapshot snapshot;
  Session* session = find_session(bind_port);
  if (session == nullptr) return snapshot;
  RelayJournalSnapshot::SessionImage image;
  image.bind_port = session->bind_port;
  image.login_pdu = session->login_pdu;
  image.to_target_wires = session->to_target.journal.unacknowledged();
  snapshot.sessions.push_back(std::move(image));
  scope_.counter("sessions_extracted").add();
  telemetry().record_event("relay " + vm_.name() +
                           ": extracted session (port " +
                           std::to_string(bind_port) + ", " +
                           std::to_string(snapshot.bytes()) +
                           " journal bytes hand off)");
  teardown_session(*session);
  flow_volumes_.erase(bind_port);
  return snapshot;
}

void ActiveRelay::drop_session(std::uint16_t bind_port) {
  Session* session = find_session(bind_port);
  if (session == nullptr) return;
  telemetry().record_event("relay " + vm_.name() + ": dropped session (port " +
                           std::to_string(bind_port) + ")");
  teardown_session(*session);
  flow_volumes_.erase(bind_port);
}

void ActiveRelay::register_volume(std::uint16_t bind_port,
                                  std::string volume) {
  flow_volumes_[bind_port] = std::move(volume);
}

bool ActiveRelay::quiescent() const {
  for (const auto& session : sessions_) {
    if (!session->to_target.queue.empty() ||
        !session->to_initiator.queue.empty() ||
        session->to_target.processing || session->to_initiator.processing ||
        session->to_target.journal.bytes() != 0 ||
        session->to_initiator.journal.bytes() != 0 ||
        !session->upstream_backlog.empty()) {
      return false;
    }
  }
  // The device write pipeline must have drained too — "quiescent" means
  // no journal write is still in flight.
  return journal_dev_.flush_idle();
}

bool ActiveRelay::sessions_established() const {
  for (const auto& session : sessions_) {
    if (session->downstream == nullptr || !session->upstream_ready) {
      return false;
    }
  }
  return true;
}

std::size_t ActiveRelay::journal_bytes() const {
  std::size_t total = 0;
  for (const auto& session : sessions_) {
    total += session->to_target.journal.bytes();
    total += session->to_initiator.journal.bytes();
  }
  return total;
}

std::size_t ActiveRelay::queue_bytes() const {
  std::size_t total = 0;
  for (const auto& session : sessions_) {
    total += session->to_target.queue_bytes;
    total += session->to_initiator.queue_bytes;
  }
  return total;
}

std::size_t ActiveRelay::paused_directions() const {
  std::size_t paused = 0;
  for (const auto& session : sessions_) {
    paused += session->to_target.paused ? 1 : 0;
    paused += session->to_initiator.paused ? 1 : 0;
  }
  return paused;
}

}  // namespace storm::core
