#include "core/active_relay.hpp"

#include "common/log.hpp"
#include "net/node.hpp"

namespace storm::core {

// ------------------------------------------------------------ RelayJournal

void RelayJournal::append(Bytes wire, std::uint64_t watermark,
                          bool boundary) {
  bytes_ += wire.size();
  entries_.push_back(Entry{std::move(wire), watermark, boundary});
}

void RelayJournal::trim(std::uint64_t acked_bytes) {
  // Find the furthest acknowledged burst boundary, then drop the whole
  // prefix up to it (never leaving a torn burst at the journal head).
  std::size_t drop = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].watermark > acked_bytes) break;
    if (entries_[i].boundary) drop = i + 1;
  }
  for (std::size_t i = 0; i < drop; ++i) {
    bytes_ -= entries_.front().wire.size();
    entries_.pop_front();
  }
}

std::vector<Bytes> RelayJournal::unacknowledged() const {
  std::vector<Bytes> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.wire);
  return out;
}

// ------------------------------------------------------------- ActiveRelay

ActiveRelay::ActiveRelay(cloud::Vm& mb_vm, net::SocketAddr upstream,
                         std::vector<StorageService*> services,
                         ActiveRelayCosts costs)
    : vm_(mb_vm), upstream_(upstream), services_(std::move(services)),
      costs_(costs) {}

void ActiveRelay::start() {
  vm_.node().tcp().listen(iscsi::kIscsiPort, [this](net::TcpConnection& conn) {
    on_accept(conn);
  });
}

void ActiveRelay::on_accept(net::TcpConnection& conn) {
  auto session = std::make_unique<Session>();
  Session* raw = session.get();
  session->downstream = &conn;
  session->bind_port = conn.remote().port;
  session->api = std::make_unique<SessionApi>(*this, *raw);
  sessions_.push_back(std::move(session));

  conn.set_on_data([this, raw](Bytes bytes) {
    on_stream_data(*raw, Direction::kToTarget, std::move(bytes));
  });
  conn.set_on_ack([raw] {
    raw->to_initiator.journal.trim(raw->downstream->bytes_acked());
  });
  conn.set_on_closed([this, raw](Status status) {
    for (StorageService* service : services_) service->on_flow_closed(status);
    if (raw->upstream != nullptr) raw->upstream->abort();
  });

  dial_upstream(*raw);
}

void ActiveRelay::dial_upstream(Session& session) {
  // The pseudo-client binds the flow's original source port so SDN
  // steering and later capture rules keep matching (paper Fig. 3 shows
  // vm1_port preserved along the whole chain).
  session.upstream = &vm_.node().tcp().connect(
      upstream_,
      [this, &session] {
        session.upstream_ready = true;
        if (!session.upstream_backlog.empty()) {
          Bytes backlog;
          backlog.swap(session.upstream_backlog);
          session.upstream->send(std::move(backlog));
        }
      },
      session.bind_port);
  session.upstream->set_on_data([this, &session](Bytes bytes) {
    on_stream_data(session, Direction::kToInitiator, std::move(bytes));
  });
  session.upstream->set_on_ack([&session] {
    session.to_target.journal.trim(session.upstream->bytes_acked());
  });
  session.upstream->set_on_closed([this, &session](Status status) {
    session.upstream_ready = false;
    if (!session.failed) {
      // Unplanned upstream loss: surface to services and drop the tenant
      // side as well (the initiator re-attaches; journal preserved).
      for (StorageService* service : services_) {
        service->on_flow_closed(status);
      }
      if (session.downstream != nullptr) session.downstream->abort();
    }
  });
}

void ActiveRelay::on_stream_data(Session& session, Direction dir,
                                 Bytes bytes) {
  DirectionState& st = state(session, dir);
  std::vector<iscsi::Pdu> pdus;
  Status status = st.parser.feed(bytes, pdus);
  if (!status.is_ok()) {
    log_warn("active-relay") << vm_.name()
                             << ": parse error: " << status.to_string();
    session.downstream->abort();
    if (session.upstream != nullptr) session.upstream->abort();
    return;
  }
  // Journal trim: everything the next hop acknowledged can be dropped.
  if (session.upstream != nullptr) {
    session.to_target.journal.trim(session.upstream->bytes_acked());
  }
  if (session.downstream != nullptr) {
    session.to_initiator.journal.trim(session.downstream->bytes_acked());
  }
  for (auto& pdu : pdus) st.queue.push_back(std::move(pdu));
  pump_queue(session, dir);
}

void ActiveRelay::pump_queue(Session& session, Direction dir) {
  DirectionState& st = state(session, dir);
  if (st.processing || st.queue.empty()) return;
  st.processing = true;
  iscsi::Pdu pdu = std::move(st.queue.front());
  st.queue.pop_front();

  // Relay cost: parse/dispatch plus batched copy, then service costs —
  // all charged to the middle-box vCPUs. The source's TCP was already
  // ACKed on receipt, so none of this stalls the sender.
  sim::Duration cost =
      costs_.per_pdu +
      static_cast<sim::Duration>(costs_.ns_per_byte *
                                 static_cast<double>(pdu.data.size()));

  auto continue_processing = [this, &session, dir,
                              pdu = std::move(pdu)]() mutable {
    DirectionState& st2 = state(session, dir);
    if (pdu.opcode == iscsi::Opcode::kLoginRequest) {
      session.login_pdu = pdu;  // kept for session re-establishment
    }
    bool consume = false;
    sim::Duration service_cost = 0;
    if (dir == Direction::kToTarget) {
      for (StorageService* service : services_) {
        ServiceVerdict verdict = service->on_pdu(dir, pdu, *session.api);
        service_cost += verdict.cpu_cost;
        if (verdict.consume) {
          consume = true;
          break;
        }
      }
    } else {
      for (auto it = services_.rbegin(); it != services_.rend(); ++it) {
        ServiceVerdict verdict = (*it)->on_pdu(dir, pdu, *session.api);
        service_cost += verdict.cpu_cost;
        if (verdict.consume) {
          consume = true;
          break;
        }
      }
    }
    auto finish = [this, &session, dir, consume,
                   pdu = std::move(pdu)]() mutable {
      if (!consume) {
        forward(session, dir, pdu);
        ++pdus_relayed_;
      }
      DirectionState& st3 = state(session, dir);
      st3.processing = false;
      pump_queue(session, dir);
    };
    if (service_cost > 0) {
      vm_.cpu().run(service_cost, std::move(finish));
    } else {
      finish();
    }
    (void)st2;
  };
  vm_.cpu().run(cost, std::move(continue_processing));
}

void ActiveRelay::forward(Session& session, Direction dir,
                          const iscsi::Pdu& pdu) {
  Bytes wire = iscsi::serialize(pdu);
  DirectionState& st = state(session, dir);
  st.enqueued_bytes += wire.size();
  // A PDU without the final flag is mid-burst (a write command whose
  // Data-Out tail follows): not a safe replay point.
  st.journal.append(wire, st.enqueued_bytes, pdu.is_final());
  if (dir == Direction::kToTarget) {
    send_upstream(session, wire);
  } else {
    send_downstream(session, wire);
  }
}

void ActiveRelay::send_upstream(Session& session, const Bytes& wire) {
  if (!session.upstream_ready) {
    session.upstream_backlog.insert(session.upstream_backlog.end(),
                                    wire.begin(), wire.end());
    return;
  }
  session.upstream->send(wire);
}

void ActiveRelay::send_downstream(Session& session, const Bytes& wire) {
  if (session.downstream != nullptr) session.downstream->send(wire);
}

void ActiveRelay::SessionApi::inject_to_target(iscsi::Pdu pdu) {
  relay_.forward(session_, Direction::kToTarget, pdu);
}

void ActiveRelay::SessionApi::inject_to_initiator(iscsi::Pdu pdu) {
  relay_.forward(session_, Direction::kToInitiator, pdu);
}

sim::Simulator& ActiveRelay::SessionApi::simulator() {
  return relay_.vm_.node().simulator();
}

void ActiveRelay::fail_upstream() {
  for (auto& session : sessions_) {
    if (session->upstream != nullptr) {
      session->failed = true;
      session->upstream->abort();
      session->upstream_ready = false;
    }
  }
}

void ActiveRelay::recover_upstream() {
  for (auto& session : sessions_) {
    if (!session->failed) continue;
    session->failed = false;
    // Collect unacknowledged PDUs before resetting the counters. The
    // backlog is stale (those bytes are all in the journal).
    std::vector<Bytes> replay = session->to_target.journal.unacknowledged();
    session->to_target = DirectionState{};
    session->to_initiator = DirectionState{};
    session->upstream_backlog.clear();
    session->upstream_ready = false;
    dial_upstream(*session);
    // Re-login first, then the unacknowledged tail.
    if (session->login_pdu) {
      forward(*session, Direction::kToTarget, *session->login_pdu);
    }
    for (const Bytes& wire : replay) {
      // Skip the stored login if it is the journal head (already sent).
      session->to_target.enqueued_bytes += wire.size();
      session->to_target.journal.append(wire,
                                        session->to_target.enqueued_bytes);
      send_upstream(*session, wire);
    }
  }
}

std::size_t ActiveRelay::journal_bytes() const {
  std::size_t total = 0;
  for (const auto& session : sessions_) {
    total += session->to_target.journal.bytes();
    total += session->to_initiator.journal.bytes();
  }
  return total;
}

}  // namespace storm::core
