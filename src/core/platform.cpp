#include "core/platform.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "core/health_manager.hpp"

namespace storm::core {

namespace {

/// Built-in no-op service: parses and forwards (used for MB-FWD-style
/// baselines with interception but no processing).
class NoopService : public StorageService {
 public:
  std::string name() const override { return "noop"; }
  ServiceVerdict on_pdu(ServiceContext&, Direction, iscsi::Pdu&) override {
    return {};
  }
};

}  // namespace

// -------------------------------------------------------- DeploymentHandle

Deployment* DeploymentHandle::resolve() const {
  if (platform_ == nullptr || cookie_ == 0) return nullptr;
  return platform_->deployment_by_cookie(cookie_);
}

MiddleboxInstance* DeploymentHandle::resolve_box(std::size_t position) const {
  Deployment* dep = resolve();
  if (dep == nullptr || position >= dep->boxes.size()) return nullptr;
  return dep->boxes[position].get();
}

bool DeploymentHandle::valid() const { return resolve() != nullptr; }

const std::string& DeploymentHandle::vm() const {
  static const std::string empty;
  Deployment* dep = resolve();
  return dep != nullptr ? dep->vm : empty;
}

const std::string& DeploymentHandle::volume() const {
  static const std::string empty;
  Deployment* dep = resolve();
  return dep != nullptr ? dep->volume : empty;
}

std::size_t DeploymentHandle::chain_length() const {
  Deployment* dep = resolve();
  return dep != nullptr ? dep->boxes.size() : 0;
}

const SpliceContext* DeploymentHandle::splice() const {
  Deployment* dep = resolve();
  return dep != nullptr ? &dep->splice : nullptr;
}

const cloud::Attachment* DeploymentHandle::attachment() const {
  Deployment* dep = resolve();
  return dep != nullptr ? &dep->attachment : nullptr;
}

ActiveRelay* DeploymentHandle::active_relay(std::size_t position) const {
  MiddleboxInstance* box = resolve_box(position);
  return box != nullptr ? box->active_relay.get() : nullptr;
}

PassiveRelay* DeploymentHandle::passive_relay(std::size_t position) const {
  MiddleboxInstance* box = resolve_box(position);
  return box != nullptr ? box->passive_relay.get() : nullptr;
}

StorageService* DeploymentHandle::service(std::size_t position) const {
  MiddleboxInstance* box = resolve_box(position);
  return box != nullptr ? box->service.get() : nullptr;
}

cloud::Vm* DeploymentHandle::mb_vm(std::size_t position) const {
  MiddleboxInstance* box = resolve_box(position);
  return box != nullptr ? box->vm : nullptr;
}

const ServiceSpec* DeploymentHandle::spec(std::size_t position) const {
  MiddleboxInstance* box = resolve_box(position);
  return box != nullptr ? &box->spec : nullptr;
}

ActiveRelay* DeploymentHandle::standby_relay(std::size_t position) const {
  MiddleboxInstance* box = resolve_box(position);
  return box != nullptr && box->standby != nullptr
             ? box->standby->active_relay.get()
             : nullptr;
}

bool DeploymentHandle::draining() const {
  Deployment* dep = resolve();
  return dep != nullptr && dep->state == DeploymentState::kDraining;
}

bool DeploymentHandle::fenced() const {
  Deployment* dep = resolve();
  return dep != nullptr && dep->state == DeploymentState::kFenced;
}

Status DeploymentHandle::add_middlebox(const ServiceSpec& spec,
                                       std::size_t position) {
  Deployment* dep = resolve();
  if (dep == nullptr) return error(ErrorCode::kNotFound, "stale deployment");
  return platform_->add_middlebox(*dep, spec, position);
}

Status DeploymentHandle::remove_middlebox(std::size_t position) {
  Deployment* dep = resolve();
  if (dep == nullptr) return error(ErrorCode::kNotFound, "stale deployment");
  return platform_->remove_middlebox(*dep, position);
}

Status DeploymentHandle::crash_middlebox(std::size_t position) {
  Deployment* dep = resolve();
  if (dep == nullptr) return error(ErrorCode::kNotFound, "stale deployment");
  return platform_->crash_middlebox(*dep, position);
}

Status DeploymentHandle::restart_middlebox(std::size_t position) {
  Deployment* dep = resolve();
  if (dep == nullptr) return error(ErrorCode::kNotFound, "stale deployment");
  return platform_->restart_middlebox(*dep, position);
}

Status DeploymentHandle::detach() {
  if (platform_ == nullptr) {
    return error(ErrorCode::kInvalidArgument, "null deployment handle");
  }
  return platform_->detach_deployment(cookie_);
}

// ---------------------------------------------------------- StormPlatform

StormPlatform::StormPlatform(cloud::Cloud& cloud)
    : cloud_(cloud), attribution_(cloud), splicer_(cloud), sdn_(cloud),
      health_(std::make_unique<ChainHealthManager>(*this)) {
  register_service("noop", [](ServiceEnv&) {
    return Result<std::unique_ptr<StorageService>>(
        std::make_unique<NoopService>());
  });
}

StormPlatform::~StormPlatform() { health_->stop(); }

obs::Registry& StormPlatform::telemetry() {
  return cloud_.simulator().telemetry();
}

void StormPlatform::register_service(const std::string& type,
                                     ServiceFactory factory) {
  factories_[type] = std::move(factory);
}

unsigned StormPlatform::place_middlebox(const ServiceSpec& spec,
                                        unsigned vm_host) {
  if (spec.host_index >= 0) {
    return static_cast<unsigned>(spec.host_index);
  }
  // Default placement: round-robin over hosts other than the tenant VM's
  // (the paper's worst-case measurement spreads everything out; the
  // placement ablation co-locates explicitly via host_index).
  unsigned host = next_mb_host_++ % cloud_.compute_count();
  if (host == vm_host) host = next_mb_host_++ % cloud_.compute_count();
  return host;
}

Result<std::unique_ptr<MiddleboxInstance>> StormPlatform::build_box(
    const ServiceSpec& spec, const std::string& label,
    const std::string& tenant, unsigned vm_host, block::Volume* volume) {
  auto box = std::make_unique<MiddleboxInstance>();
  box->spec = spec;
  unsigned host = place_middlebox(spec, vm_host);
  box->vm = &cloud_.create_middlebox_vm(label, tenant, host, spec.vcpus);

  if (spec.relay != RelayMode::kForward) {
    auto it = factories_.find(spec.type);
    if (it == factories_.end()) {
      return error(ErrorCode::kNotFound,
                   "no service registered for type '" + spec.type + "'");
    }
    ServiceEnv env;
    env.cloud = &cloud_;
    env.platform = this;
    env.mb_vm = box->vm;
    env.volume = volume;
    env.spec = &box->spec;
    auto service = it->second(env);
    if (!service.is_ok()) return service.status();
    box->service = std::move(service).take();
    if (box->service->requires_active_relay() &&
        spec.relay != RelayMode::kActive) {
      return error(ErrorCode::kInvalidArgument,
                   "service '" + spec.type + "' requires relay=active");
    }
    // Recovery-policy legality is a deploy-time property: bypass on a
    // confidentiality-critical service would fail open the day the box
    // dies, so it is refused before the chain ever carries traffic.
    if (spec.recovery == RecoveryPolicyKind::kBypass &&
        box->service->confidentiality_critical()) {
      return error(ErrorCode::kPermissionDenied,
                   "service '" + spec.type +
                       "' is confidentiality-critical: recovery=bypass "
                       "would fail open");
    }
    if (spec.recovery == RecoveryPolicyKind::kStandby &&
        spec.relay != RelayMode::kActive) {
      return error(ErrorCode::kInvalidArgument,
                   "service '" + spec.type +
                       "': recovery=standby requires relay=active");
    }
  }
  return box;
}

namespace {

// Tenant-tunable relay flow control: the NVRAM watermarks come from the
// service stanza (`journal_hwm_kb=... journal_lwm_kb=...`); 0 disables
// backpressure for that box. Unspecified keys keep the defaults.
RelayFlowControl relay_flow_control(const ServiceSpec& spec) {
  RelayFlowControl flow;
  const std::string hwm = spec.param("journal_hwm_kb");
  if (!hwm.empty()) {
    flow.high_watermark = std::stoul(hwm) * 1024;
  }
  const std::string lwm = spec.param("journal_lwm_kb");
  if (!lwm.empty()) {
    flow.low_watermark = std::stoul(lwm) * 1024;
  }
  return flow;
}

// Tenant-tunable journal engine knobs, also from the service stanza:
// `journal_segment_kb` sizes log segments, `journal_group_commit=0`
// falls back to one NVRAM write per record (the bench baseline), and
// `journal_checkpoint_kb` sets the dead-byte threshold that triggers an
// automatic checkpoint (0 = explicit checkpoints only).
journal::Config relay_journal_config(const ServiceSpec& spec) {
  journal::Config config;
  const std::string seg = spec.param("journal_segment_kb");
  if (!seg.empty()) {
    config.segment_bytes = std::stoul(seg) * 1024;
  }
  const std::string group = spec.param("journal_group_commit");
  if (!group.empty()) {
    config.group_commit = group != "0";
  }
  const std::string ckpt = spec.param("journal_checkpoint_kb");
  if (!ckpt.empty()) {
    config.checkpoint_dead_bytes = std::stoul(ckpt) * 1024;
  }
  return config;
}

}  // namespace

void StormPlatform::wire_relays(Deployment& deployment) {
  net::SocketAddr upstream{deployment.splice.gateways.egress_instance_ip(),
                           iscsi::kIscsiPort};
  for (auto& box : deployment.boxes) {
    if (box->pooled) continue;  // pooled relays start when the pool builds
    switch (box->spec.relay) {
      case RelayMode::kForward:
        break;  // plain IP forwarding, nothing to run
      case RelayMode::kPassive:
        box->passive_relay = std::make_unique<PassiveRelay>(
            *box->vm, std::vector<StorageService*>{box->service.get()},
            deployment.volume);
        box->passive_relay->start();
        break;
      case RelayMode::kActive:
        box->active_relay = std::make_unique<ActiveRelay>(
            *box->vm, upstream,
            std::vector<StorageService*>{box->service.get()},
            deployment.volume, ActiveRelayCosts{},
            relay_flow_control(box->spec), relay_journal_config(box->spec));
        box->active_relay->start();
        break;
    }
    if (box->standby != nullptr) {
      // The warm spare listens from day one but receives nothing until a
      // failover swaps the capture + steering rules to its MAC.
      box->standby->active_relay = std::make_unique<ActiveRelay>(
          *box->standby->vm, upstream,
          std::vector<StorageService*>{box->standby->service.get()},
          deployment.volume, ActiveRelayCosts{},
          relay_flow_control(box->standby->spec),
          relay_journal_config(box->standby->spec));
      box->standby->active_relay->start();
    }
  }
}

// ---------------------------------------------------------- replica sets

ReplicaSet* StormPlatform::find_replica_set(const std::string& tenant,
                                            const std::string& type) {
  auto it = replica_sets_.find(tenant + "|" + type);
  return it == replica_sets_.end() ? nullptr : it->second.get();
}

const ReplicaSet* StormPlatform::replica_set(
    const std::string& tenant, const std::string& service_type) const {
  auto it = replica_sets_.find(tenant + "|" + service_type);
  return it == replica_sets_.end() ? nullptr : it->second.get();
}

net::TokenBucket* StormPlatform::tenant_qos_mutable(
    const std::string& tenant) {
  auto it = qos_buckets_.find(tenant);
  return it == qos_buckets_.end() ? nullptr : it->second.get();
}

Result<std::shared_ptr<MiddleboxInstance>> StormPlatform::build_replica(
    ReplicaSet& set, unsigned avoid_host,
    std::vector<StorageService*>* fresh_services) {
  if (!set.parked.empty()) {
    // Revive the most recently parked replica: its VM and initialized
    // service are intact, so scale-up skips both boot and setup time.
    std::shared_ptr<MiddleboxInstance> box = set.parked.back();
    set.parked.pop_back();
    box->vm->node().set_down(false);
    box->active_relay->restart();
    set.ring.add_node(box->replica_label);
    set.replicas.push_back(box);
    telemetry().record_event("scaleout: revived replica " +
                             box->replica_label + " on " + box->vm->name());
    return box;
  }

  const std::string label =
      set.tenant + "/" + set.spec.type + "#" + std::to_string(set.next_ordinal);
  // Spread replicas over distinct hosts (and off the tenant VM's host):
  // a co-located pair fails together, which defeats the pool.
  ServiceSpec spec = set.spec;
  if (spec.host_index < 0) {
    unsigned host = next_mb_host_++ % cloud_.compute_count();
    for (unsigned attempt = 0; attempt < cloud_.compute_count(); ++attempt) {
      bool taken = host == avoid_host;
      for (const auto& sibling : set.replicas) {
        taken = taken || sibling->vm->host_index() == host;
      }
      if (!taken) break;
      host = next_mb_host_++ % cloud_.compute_count();
    }
    spec.host_index = static_cast<int>(host);
  }
  auto built = build_box(spec, "mb-" + std::to_string(next_mb_id_++) + "-" +
                                   set.spec.type,
                         set.tenant, avoid_host, nullptr);
  if (!built.is_ok()) return built.status();
  std::shared_ptr<MiddleboxInstance> box = std::move(built).take();
  if (box->service != nullptr && !box->service->replica_safe()) {
    return error(ErrorCode::kInvalidArgument,
                 "service '" + set.spec.type +
                     "' keeps per-volume state and cannot be pooled "
                     "(replicas stanza)");
  }
  box->pooled = true;
  box->replica_label = label;
  ++set.next_ordinal;

  // The pooled relay dials the tenant's egress gateway like any private
  // relay would; per-flow volumes are registered as flows pin to it.
  GatewayPair& gateways = splicer_.tenant_gateways(set.tenant);
  net::SocketAddr upstream{gateways.egress_instance_ip(), iscsi::kIscsiPort};
  box->active_relay = std::make_unique<ActiveRelay>(
      *box->vm, upstream, std::vector<StorageService*>{box->service.get()},
      /*volume=*/"", ActiveRelayCosts{}, relay_flow_control(box->spec),
      relay_journal_config(box->spec));
  box->active_relay->start();
  if (fresh_services != nullptr && box->service != nullptr) {
    fresh_services->push_back(box->service.get());
  }
  set.ring.add_node(label);
  set.replicas.push_back(box);
  telemetry().record_event("scaleout: built replica " + label + " on " +
                           box->vm->name());
  return box;
}

Result<std::shared_ptr<MiddleboxInstance>> StormPlatform::acquire_replica(
    Deployment& dep, const ServiceSpec& spec, const std::string& tenant,
    unsigned vm_host, block::Volume* volume,
    std::vector<StorageService*>* fresh_services) {
  (void)volume;
  if (spec.relay != RelayMode::kActive) {
    return error(ErrorCode::kInvalidArgument,
                 "replicas stanza requires relay=active");
  }
  const std::string key = tenant + "|" + spec.type;
  auto it = replica_sets_.find(key);
  if (it == replica_sets_.end()) {
    auto set = std::make_unique<ReplicaSet>();
    set->tenant = tenant;
    set->spec = spec;
    it = replica_sets_.emplace(key, std::move(set)).first;
  }
  ReplicaSet& set = *it->second;
  // First acquisition sizes the pool from the policy; later attaches
  // join the pool at whatever size elasticity has taken it to.
  if (set.replicas.empty()) {
    for (unsigned i = 0; i < std::max(1u, spec.replicas.count); ++i) {
      auto built = build_replica(set, vm_host, fresh_services);
      if (!built.is_ok()) return built.status();
    }
  }

  const std::uint64_t flow_hash = FlowHashRing::flow_key(
      dep.splice.host_storage_ip, dep.splice.vm_port, dep.splice.target_ip,
      iscsi::kIscsiPort);
  const std::string& label = set.ring.assign(flow_hash);
  for (const auto& replica : set.replicas) {
    if (replica->replica_label != label) continue;
    replica->active_relay->register_volume(dep.splice.vm_port, dep.volume);
    set.assignments[dep.splice.cookie] = label;
    telemetry().record_event("scaleout: flow port " +
                             std::to_string(dep.splice.vm_port) +
                             " pinned to " + label);
    return replica;
  }
  return error(ErrorCode::kNotFound, "hash ring assigned unknown replica");
}

void StormPlatform::release_replica_flows(Deployment& dep) {
  for (auto& [key, set] : replica_sets_) {
    auto it = set->assignments.find(dep.splice.cookie);
    if (it == set->assignments.end()) continue;
    MiddleboxInstance* box = set->find(it->second);
    if (box != nullptr && box->active_relay != nullptr) {
      box->active_relay->drop_session(dep.splice.vm_port);
    }
    set->assignments.erase(it);
  }
}

void StormPlatform::migrate_flow(Deployment& dep, std::size_t position,
                                 std::shared_ptr<MiddleboxInstance> target,
                                 std::function<void(Status)> done) {
  static constexpr sim::Duration kDrainPollInterval = sim::microseconds(100);
  std::shared_ptr<MiddleboxInstance> source = dep.boxes[position];
  if (source == target) {
    done(Status::ok());
    return;
  }
  iscsi::Initiator* initiator = dep.attachment.initiator;
  if (initiator == nullptr || source->active_relay == nullptr ||
      target->active_relay == nullptr) {
    done(error(ErrorCode::kFailedPrecondition,
               "flow migration needs a live initiator and active relays"));
    return;
  }
  // The handoff tears the initiator's downstream TCP leg; session
  // recovery re-dials from the pinned source port and re-issues whatever
  // the reopened gate admits. Without it, parked commands would fail.
  if (!initiator->recovery_policy().enabled) {
    iscsi::RecoveryPolicy recovery;
    recovery.enabled = true;
    recovery.reconnect_delay = sim::milliseconds(1);
    initiator->set_recovery(recovery);
  }
  // Park new commands instead of failing them: the chain drains to empty
  // under a live workload, and nothing issued during the move is lost.
  initiator->set_admission_mode(iscsi::AdmissionMode::kDeferred);
  telemetry().add_event(dep.attach_span, "migrate_begin", position);

  const std::uint64_t cookie = dep.splice.cookie;
  const std::uint16_t vm_port = dep.splice.vm_port;
  const sim::Time deadline = cloud_.simulator().now() + drain_timeout_;
  auto done_shared =
      std::make_shared<std::function<void(Status)>>(std::move(done));
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [this, cookie, position, vm_port, deadline, source, target, poll,
           done_shared] {
    cloud_.simulator().at_barrier([this, cookie, position, vm_port, deadline,
                                   source, target, poll, done_shared] {
      Deployment* dep = deployment_by_cookie(cookie);
      if (dep == nullptr) {
        (*done_shared)(error(ErrorCode::kNotFound,
                             "deployment detached mid-migration"));
        return;
      }
      iscsi::Initiator* initiator = dep->attachment.initiator;
      const bool drained =
          initiator->outstanding() == 0 &&
          source->active_relay->session_quiescent(vm_port);
      if (!drained) {
        if (cloud_.simulator().now() >= deadline) {
          initiator->set_admission_mode(iscsi::AdmissionMode::kOpen);
          (*done_shared)(
              error(ErrorCode::kDeadlineExceeded, "migration drain timeout"));
          return;
        }
        cloud_.control_executor().schedule_in(kDrainPollInterval, *poll);
        return;
      }
      // Quiescent: hand the flow off atomically at the barrier.
      // 1. Snapshot the drained session (login + empty unacked tail) and
      //    tear it out of the source relay.
      RelayJournalSnapshot snapshot =
          source->active_relay->extract_session(vm_port);
      // 2. The departing replica's capture DNAT is cookie-tagged but
      //    refresh_capture_rules only touches the *new* chain's VMs —
      //    flush it explicitly or the old VM keeps capturing the flow.
      source->vm->node().nat().remove_rules_by_cookie(
          cookie, /*flush_conntrack=*/true);
      // 3. Re-point chain + steering at the target replica (one atomic
      //    swap per switch; the exact-match cache revalidates in-place).
      dep->splice.chain[position] = Hop{target->vm, RelayMode::kActive};
      dep->boxes[position] = target;
      splicer_.refresh_capture_rules(dep->splice);
      sdn_.reprogram_chain(dep->splice);
      // 4. Adopt on the target: recreate the session, re-dial upstream,
      //    replay login (the tail is empty — the flow drained).
      target->active_relay->register_volume(vm_port, dep->volume);
      target->active_relay->adopt_sessions(std::move(snapshot));
      // 5. Re-dial now and reopen the gate: parked commands queue behind
      //    session recovery and issue after the re-login lands.
      initiator->kick();
      initiator->set_admission_mode(iscsi::AdmissionMode::kOpen);
      telemetry().add_event(dep->attach_span, "migrated", position);
      telemetry().counter("scaleout.migrations").add();
      telemetry().record_event(
          "scaleout: flow port " + std::to_string(vm_port) + " moved " +
          source->replica_label + " -> " + target->replica_label);
      (*done_shared)(Status::ok());
    });
  };
  (*poll)();
}

void StormPlatform::rebalance_flows(ReplicaSet& set,
                                    std::function<void(Status)> done) {
  // Collect the flows whose arc changed hands, in deterministic (cookie)
  // order, then migrate them one at a time: concurrent migrations of one
  // tenant would interleave their barrier mutations.
  struct Move {
    std::uint64_t cookie;
    std::string from;
    std::string to;
  };
  auto moves = std::make_shared<std::vector<Move>>();
  for (const auto& [cookie, label] : set.assignments) {
    Deployment* dep = deployment_by_cookie(cookie);
    if (dep == nullptr) continue;
    const std::string& target = set.ring.assign(FlowHashRing::flow_key(
        dep->splice.host_storage_ip, dep->splice.vm_port,
        dep->splice.target_ip, iscsi::kIscsiPort));
    if (!target.empty() && target != label) {
      moves->push_back(Move{cookie, label, target});
    }
  }
  const std::string set_key = set.key();
  auto first_error = std::make_shared<Status>(Status::ok());
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  *step = [this, set_key, moves, first_error, done, step](std::size_t i) {
    if (i == moves->size()) {
      done(*first_error);
      return;
    }
    const Move& move = (*moves)[i];
    ReplicaSet* set = nullptr;
    if (auto it = replica_sets_.find(set_key); it != replica_sets_.end()) {
      set = it->second.get();
    }
    Deployment* dep = set != nullptr ? deployment_by_cookie(move.cookie)
                                     : nullptr;
    if (dep == nullptr) {
      (*step)(i + 1);
      return;
    }
    std::shared_ptr<MiddleboxInstance> target;
    for (const auto& replica : set->replicas) {
      if (replica->replica_label == move.to) target = replica;
    }
    std::size_t position = dep->boxes.size();
    for (std::size_t p = 0; p < dep->boxes.size(); ++p) {
      if (dep->boxes[p]->pooled &&
          dep->boxes[p]->replica_label == move.from) {
        position = p;
      }
    }
    if (target == nullptr || position == dep->boxes.size()) {
      (*step)(i + 1);
      return;
    }
    migrate_flow(*dep, position, target,
                 [this, set_key, moves, first_error, step, i](Status status) {
                   if (status.is_ok()) {
                     if (auto it = replica_sets_.find(set_key);
                         it != replica_sets_.end()) {
                       it->second->assignments[(*moves)[i].cookie] =
                           (*moves)[i].to;
                     }
                   } else if (first_error->is_ok()) {
                     *first_error = status;
                   }
                   (*step)(i + 1);
                 });
  };
  (*step)(0);
}

void StormPlatform::park_replica(ReplicaSet& set,
                                 std::shared_ptr<MiddleboxInstance> box) {
  for (auto it = set.replicas.begin(); it != set.replicas.end(); ++it) {
    if (*it == box) {
      set.replicas.erase(it);
      break;
    }
  }
  // Silence before power-off (journal intact, sessions already migrated
  // away) so a later revive can restart() it; unhook the stall callback
  // so the dark VM cannot ring the health manager's doorbell.
  if (box->active_relay != nullptr && !box->active_relay->crashed()) {
    box->active_relay->crash();
  }
  health_->unhook_node(&box->vm->node().tcp());
  box->vm->node().set_down(true);
  set.parked.push_back(box);
  telemetry().record_event("scaleout: parked replica " + box->replica_label);
}

void StormPlatform::scale_service_replicas(const std::string& tenant,
                                           const std::string& service_type,
                                           unsigned target,
                                           std::function<void(Status)> done) {
  if (!done) done = [](Status) {};
  cloud_.simulator().at_barrier(
      [this, tenant, service_type, target, done = std::move(done)]() mutable {
        scale_at_barrier(tenant, service_type, target, std::move(done));
      });
}

void StormPlatform::scale_at_barrier(const std::string& tenant,
                                     const std::string& type, unsigned target,
                                     std::function<void(Status)> done) {
  ReplicaSet* set = find_replica_set(tenant, type);
  if (set == nullptr) {
    done(error(ErrorCode::kNotFound,
               "no replica set for " + tenant + "/" + type));
    return;
  }
  const unsigned lo = std::max(1u, set->spec.replicas.min_count);
  const unsigned hi = std::max(lo, set->spec.replicas.max_count);
  target = std::min(std::max(target, lo), hi);
  const unsigned current = static_cast<unsigned>(set->replicas.size());
  if (target == current) {
    done(Status::ok());
    return;
  }
  const std::string set_key = set->key();
  telemetry().record_event("scaleout: " + tenant + "/" + type + " " +
                           std::to_string(current) + " -> " +
                           std::to_string(target) + " replicas");

  if (target > current) {
    std::vector<StorageService*> fresh_services;
    for (unsigned i = current; i < target; ++i) {
      auto built = build_replica(*set, /*avoid_host=*/~0u, &fresh_services);
      if (!built.is_ok()) {
        done(built.status());
        return;
      }
    }
    telemetry().counter("scaleout.scale_ups").add();
    // Initialize fresh services (pool services are replica-safe and
    // initialize synchronously today, but honor the async contract), then
    // move only the flows whose arc the new replicas took over.
    auto remaining = std::make_shared<std::size_t>(1);
    auto first_error = std::make_shared<Status>(Status::ok());
    auto proceed = [this, set_key, first_error, done]() {
      if (!first_error->is_ok()) {
        done(*first_error);
        return;
      }
      if (auto it = replica_sets_.find(set_key); it != replica_sets_.end()) {
        rebalance_flows(*it->second, done);
      } else {
        done(Status::ok());
      }
    };
    auto on_ready = [remaining, first_error, proceed](Status status) {
      if (!status.is_ok() && first_error->is_ok()) *first_error = status;
      if (--*remaining == 0) proceed();
    };
    for (StorageService* service : fresh_services) {
      ++*remaining;
      service->initialize(on_ready);
    }
    on_ready(Status::ok());
    return;
  }

  // Scale-down: retire the newest replicas first (consistent hashing
  // moves only their arcs), drain their flows onto the survivors, then
  // park them.
  auto victims =
      std::make_shared<std::vector<std::shared_ptr<MiddleboxInstance>>>();
  for (unsigned i = target; i < current; ++i) {
    victims->push_back(set->replicas[i]);
  }
  for (const auto& victim : *victims) {
    set->ring.remove_node(victim->replica_label);
  }
  telemetry().counter("scaleout.scale_downs").add();
  rebalance_flows(*set, [this, set_key, victims, done](Status status) {
    auto it = replica_sets_.find(set_key);
    if (it == replica_sets_.end()) {
      done(status);
      return;
    }
    ReplicaSet& set = *it->second;
    for (const auto& victim : *victims) {
      bool busy = false;
      for (const auto& [cookie, label] : set.assignments) {
        busy = busy || label == victim->replica_label;
      }
      if (busy) {
        // A migration failed and left a flow behind: the victim must
        // keep serving it. Put its arcs back so new flows can land too.
        set.ring.add_node(victim->replica_label);
        if (status.is_ok()) {
          status = error(ErrorCode::kFailedPrecondition,
                         "replica " + victim->replica_label +
                             " still owns flows; not parked");
        }
        continue;
      }
      park_replica(set, victim);
    }
    done(status);
  });
}

void StormPlatform::attach_with_chain(
    const std::string& vm_name, const std::string& volume_name,
    std::vector<ServiceSpec> chain,
    std::function<void(Result<DeploymentHandle>)> done) {
  // Deployment provisions VMs and installs rules across many partitions;
  // run the whole control-plane sequence at a window barrier (inline on
  // a single-partition simulator — the historical behavior).
  cloud_.simulator().at_barrier([this, vm_name, volume_name,
                                 chain = std::move(chain),
                                 done = std::move(done)]() mutable {
    attach_with_chain_at_barrier(vm_name, volume_name, std::move(chain),
                                 std::move(done));
  });
}

void StormPlatform::attach_with_chain_at_barrier(
    const std::string& vm_name, const std::string& volume_name,
    std::vector<ServiceSpec> chain,
    std::function<void(Result<DeploymentHandle>)> done) {
  cloud::Vm* vm = cloud_.find_vm(vm_name);
  if (vm == nullptr) {
    done(error(ErrorCode::kNotFound, "no VM " + vm_name));
    return;
  }
  auto located = cloud_.locate_volume(volume_name);
  if (!located.is_ok()) {
    done(located.status());
    return;
  }
  block::Volume* volume = located.value().first;
  unsigned storage_index = located.value().second;

  auto deployment = std::make_unique<Deployment>();
  Deployment* dep = deployment.get();
  dep->vm = vm_name;
  dep->volume = volume_name;
  dep->splice.cookie = next_cookie_++;
  dep->splice.vm_port = allocate_flow_port();
  dep->splice.host_storage_ip = cloud_.compute(vm->host_index()).storage_ip();
  dep->splice.target_ip = cloud_.storage(storage_index).storage_ip();
  dep->splice.gateways = splicer_.tenant_gateways(vm->tenant());

  // The deployment's trace span covers provision -> splice -> login; it
  // stays open until detach so a dump shows which chains are live.
  dep->attach_span =
      telemetry().begin_span("deploy." + vm_name + ":" + volume_name);
  const std::uint64_t cookie = dep->splice.cookie;

  // Provision the middle-box VMs + service instances. Hops carrying a
  // `replicas` stanza draw a pooled box from the tenant's replica set
  // instead of building a private one; only freshly built service
  // instances go through initialize() below (a pooled instance serving
  // its second flow was initialized when the pool was built).
  std::vector<StorageService*> fresh_services;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (chain[i].replicas.enabled) {
      auto pooled = acquire_replica(*dep, chain[i], vm->tenant(),
                                    vm->host_index(), volume,
                                    &fresh_services);
      if (!pooled.is_ok()) {
        release_replica_flows(*dep);
        telemetry().end_span(dep->attach_span);
        done(pooled.status());
        return;
      }
      dep->splice.chain.push_back(
          Hop{pooled.value()->vm, pooled.value()->spec.relay});
      dep->boxes.push_back(std::move(pooled).take());
      continue;
    }
    std::string label = "mb-" + std::to_string(next_mb_id_++) + "-" +
                        chain[i].type;
    auto box = build_box(chain[i], label, vm->tenant(), vm->host_index(),
                         volume);
    if (!box.is_ok()) {
      release_replica_flows(*dep);
      telemetry().end_span(dep->attach_span);
      done(box.status());
      return;
    }
    if (chain[i].recovery == RecoveryPolicyKind::kStandby) {
      // Provision the warm spare now: a standby built after the failure
      // would add VM boot time to MTTR, which defeats the policy.
      auto standby = build_box(chain[i], label + "-sb", vm->tenant(),
                               vm->host_index(), volume);
      if (!standby.is_ok()) {
        release_replica_flows(*dep);
        telemetry().end_span(dep->attach_span);
        done(standby.status());
        return;
      }
      box.value()->standby = std::move(standby).take();
    }
    if (box.value()->service) {
      fresh_services.push_back(box.value()->service.get());
    }
    if (box.value()->standby && box.value()->standby->service) {
      fresh_services.push_back(box.value()->standby->service.get());
    }
    dep->splice.chain.push_back(
        Hop{box.value()->vm, box.value()->spec.relay});
    dep->boxes.push_back(std::move(box).take());
  }
  telemetry().add_event(dep->attach_span, "boxes_provisioned",
                        dep->boxes.size());

  deployments_.push_back(std::move(deployment));

  // Let services finish async setup (replication attaches its replicas),
  // then program the network and attach the volume.
  auto remaining = std::make_shared<std::size_t>(1);
  auto first_error = std::make_shared<Status>(Status::ok());
  auto proceed = [this, dep, vm, done, cookie, first_error]() {
    if (!first_error->is_ok()) {
      telemetry().record_event("deploy " + dep->vm + ":" + dep->volume +
                               " failed: " + first_error->to_string());
      rollback_deployment(dep);
      done(*first_error);
      return;
    }
    wire_relays(*dep);
    splicer_.install_gateway_rules(dep->splice);
    splicer_.install_capture_rules(dep->splice);
    sdn_.install_chain_rules(dep->splice);
    telemetry().add_event(dep->attach_span, "rules_installed");

    cloud::AttachHooks hooks;
    hooks.force_source_port = dep->splice.vm_port;
    hooks.before_login = [this, dep](cloud::ComputeHost& host,
                                     const cloud::Attachment&) {
      splicer_.install_host_redirect(host, dep->splice);
    };
    hooks.after_login = [this, dep](cloud::ComputeHost& host,
                                    const cloud::Attachment&) {
      splicer_.remove_host_redirect(host, dep->splice);
    };
    cloud_.attach_volume(*vm, dep->volume,
                         [this, dep, done, cookie](
                             Status status, cloud::Attachment attachment) {
                           if (!status.is_ok()) {
                             // The attach failed after rules were
                             // installed: leave nothing half-spliced.
                             telemetry().record_event(
                                 "deploy " + dep->vm + ":" + dep->volume +
                                 " failed: " + status.to_string());
                             rollback_deployment(dep);
                             done(status);
                             return;
                           }
                           dep->attachment = std::move(attachment);
                           telemetry().add_event(dep->attach_span,
                                                 "attached");
                           telemetry().record_event(
                               "deploy " + dep->vm + ":" + dep->volume +
                               " attached (cookie " +
                               std::to_string(cookie) + ")");
                           done(Result<DeploymentHandle>(
                               DeploymentHandle(this, cookie)));
                         },
                         hooks);
  };
  auto on_ready = [remaining, first_error, proceed](Status status) {
    if (!status.is_ok() && first_error->is_ok()) *first_error = status;
    if (--*remaining == 0) proceed();
  };
  for (StorageService* service : fresh_services) {
    ++*remaining;
    service->initialize(on_ready);
  }
  on_ready(Status::ok());  // release the initial hold
}

void StormPlatform::apply_policy(
    const TenantPolicy& policy,
    std::function<void(Result<std::vector<DeploymentHandle>>)> done) {
  Status valid = validate_policy(policy);
  if (!valid.is_ok()) {
    done(valid);
    return;
  }
  if (policy.qos.enabled) set_tenant_qos(policy.tenant, policy.qos);
  auto volumes = std::make_shared<std::vector<VolumePolicy>>(policy.volumes);
  auto handles = std::make_shared<std::vector<DeploymentHandle>>();
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  *step = [this, volumes, handles, done, step](std::size_t index) {
    if (index == volumes->size()) {
      done(Result<std::vector<DeploymentHandle>>(std::move(*handles)));
      return;
    }
    const VolumePolicy& vp = (*volumes)[index];
    attach_with_chain(vp.vm, vp.volume, vp.chain,
                      [handles, done, step, index](
                          Result<DeploymentHandle> result) {
                        if (!result.is_ok()) {
                          done(result.status());
                          return;
                        }
                        handles->push_back(result.value());
                        (*step)(index + 1);
                      });
  };
  (*step)(0);
}

void StormPlatform::set_tenant_qos(const std::string& tenant,
                                   const QosSpec& qos) {
  GatewayPair& gateways = splicer_.tenant_gateways(tenant);
  if (!qos.enabled || qos.rate_bytes_per_sec == 0) {
    gateways.ingress->set_rate_limiter(nullptr);
    qos_buckets_.erase(tenant);
    return;
  }
  // The bucket runs where it paces: the ingress gateway's partition.
  // Its counters live in that partition's registry for the same reason
  // (hot-path updates stay thread-confined; the merged dump sums them).
  sim::Executor gw_exec = gateways.ingress->executor();
  auto bucket = std::make_unique<net::TokenBucket>(
      gw_exec, qos.rate_bytes_per_sec, qos.burst_bytes);
  obs::Registry& reg = gw_exec.telemetry();
  bucket->bind_telemetry(&reg.counter("qos." + tenant + ".throttled_bytes"),
                         &reg.gauge("qos." + tenant + ".queue_bytes"));
  // The bucket paces the ingress gateway's FORWARD path: every spliced
  // flow of the tenant funnels through it, locally-terminated traffic
  // (relay pseudo-endpoints) is exempt.
  gateways.ingress->set_rate_limiter(bucket.get());
  telemetry().record_event("qos: tenant " + tenant + " limited to " +
                           std::to_string(qos.rate_bytes_per_sec) +
                           " B/s (burst " + std::to_string(qos.burst_bytes) +
                           ")");
  qos_buckets_[tenant] = std::move(bucket);
}

const net::TokenBucket* StormPlatform::tenant_qos(
    const std::string& tenant) const {
  auto it = qos_buckets_.find(tenant);
  return it == qos_buckets_.end() ? nullptr : it->second.get();
}

void StormPlatform::teardown_rules(Deployment* dep) {
  splicer_.remove_all_rules(dep->splice);
  sdn_.remove_chain_rules(dep->splice.cookie);
  // The host redirect is cookie-tagged too; normally the after_login hook
  // removed it already, but a failure before that point must not leak it.
  cloud::Vm* vm = cloud_.find_vm(dep->vm);
  if (vm != nullptr) {
    cloud_.compute(vm->host_index())
        .node()
        .nat()
        .remove_rules_by_cookie(dep->splice.cookie,
                                /*flush_conntrack=*/true);
  }
}

void StormPlatform::rollback_deployment(Deployment* dep) {
  teardown_rules(dep);
  release_replica_flows(*dep);
  // Drop the chain's health record with it: a stale entry would keep
  // probing box pointers the erase below is about to destroy.
  health_->forget_deployment(dep->splice.cookie);
  telemetry().end_span(dep->attach_span);
  for (auto it = deployments_.begin(); it != deployments_.end(); ++it) {
    if (it->get() == dep) {
      deployments_.erase(it);  // destroys relays (ActiveRelay::shutdown)
      break;
    }
  }
}

bool StormPlatform::deployment_quiescent(const Deployment& dep) const {
  if (dep.attachment.initiator != nullptr &&
      dep.attachment.initiator->outstanding() != 0) {
    return false;
  }
  for (const auto& box : dep.boxes) {
    if (box->active_relay != nullptr) {
      // A pooled relay carries other tenants' flows concurrently; only
      // *this* flow's session must be empty for this deployment to count
      // as drained.
      if (box->pooled
              ? !box->active_relay->session_quiescent(dep.splice.vm_port)
              : !box->active_relay->quiescent()) {
        return false;
      }
    }
    if (box->passive_relay != nullptr && !box->passive_relay->quiescent()) {
      return false;
    }
  }
  return true;
}

void StormPlatform::drain_deployment(Deployment& dep,
                                     std::function<void(Status)> done) {
  // Drain poll cadence: fine-grained enough that the drain adds at most
  // ~100us to a teardown, coarse enough not to dominate the event queue.
  static constexpr sim::Duration kDrainPollInterval = sim::microseconds(100);
  dep.state = DeploymentState::kDraining;
  if (dep.attachment.initiator != nullptr) {
    dep.attachment.initiator->set_admission(false);
  }
  telemetry().add_event(dep.attach_span, "drain_begin");
  const std::uint64_t cookie = dep.splice.cookie;
  const sim::Time deadline = cloud_.simulator().now() + drain_timeout_;
  auto done_shared = std::make_shared<std::function<void(Status)>>(
      std::move(done));
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [this, cookie, deadline, poll, done_shared] {
    // The quiescence probe reads initiator and relay state across
    // partitions; hop from the control partition's timer to the barrier
    // before looking (inline on a single-partition simulator).
    cloud_.simulator().at_barrier([this, cookie, deadline, poll,
                                   done_shared] {
      Deployment* dep = deployment_by_cookie(cookie);
      if (dep == nullptr) return;  // torn down while the poll was pending
      if (deployment_quiescent(*dep)) {
        telemetry().add_event(dep->attach_span, "drained");
        (*done_shared)(Status::ok());
        return;
      }
      if (cloud_.simulator().now() >= deadline) {
        (*done_shared)(error(ErrorCode::kDeadlineExceeded, "drain timeout"));
        return;
      }
      cloud_.control_executor().schedule_in(kDrainPollInterval, *poll);
    });
  };
  (*poll)();
}

Status StormPlatform::detach_deployment(std::uint64_t cookie) {
  Deployment* dep = deployment_by_cookie(cookie);
  if (dep == nullptr) {
    return error(ErrorCode::kNotFound, "no deployment for handle");
  }
  if (dep->state == DeploymentState::kDraining) {
    return error(ErrorCode::kFailedPrecondition, "detach already draining");
  }
  drain_deployment(*dep, [this, cookie](Status drained) {
    Deployment* dep = deployment_by_cookie(cookie);
    if (dep == nullptr) return;
    if (!drained.is_ok()) {
      telemetry().record_event("drain " + dep->vm + ":" + dep->volume +
                               " incomplete (" + drained.to_string() +
                               "); forcing detach");
    }
    telemetry().record_event("detach " + dep->vm + ":" + dep->volume +
                             " (cookie " + std::to_string(cookie) + ")");
    rollback_deployment(dep);  // rules out, relays destroyed
  });
  return Status::ok();
}

void StormPlatform::rebuild_chain(Deployment& deployment) {
  deployment.splice.chain.clear();
  for (auto& box : deployment.boxes) {
    deployment.splice.chain.push_back(Hop{box->vm, box->spec.relay});
  }
}

Status StormPlatform::promote_standby(Deployment& dep, std::size_t position) {
  if (position >= dep.boxes.size()) {
    return error(ErrorCode::kInvalidArgument, "position out of range");
  }
  MiddleboxInstance* failed = dep.boxes[position].get();
  if (failed->active_relay == nullptr) {
    return error(ErrorCode::kFailedPrecondition,
                 "standby promotion needs an active relay");
  }
  if (failed->standby == nullptr ||
      failed->standby->active_relay == nullptr) {
    return error(ErrorCode::kFailedPrecondition,
                 "no warm standby for " + failed->vm->name());
  }
  std::unique_ptr<MiddleboxInstance> standby = std::move(failed->standby);

  // 1. NVRAM handoff: snapshot the dead relay's journal — it survives the
  //    VM's power loss — then silence whatever is left of the relay.
  RelayJournalSnapshot snapshot = failed->active_relay->export_journal();
  if (!failed->active_relay->crashed()) failed->active_relay->crash();

  // 2. Re-point the chain at the spare: capture NAT on the standby VM,
  //    then one atomic steering-rule swap per switch.
  dep.splice.chain[position] = Hop{standby->vm, standby->spec.relay};
  splicer_.refresh_capture_rules(dep.splice);
  sdn_.reprogram_chain(dep.splice);

  // 3. Replay the journal into the standby: recreates the sessions,
  //    re-dials their upstream legs, replays login + unacknowledged tail.
  standby->active_relay->adopt_sessions(std::move(snapshot));

  // 4. Nudge the initiator to re-dial now rather than at watchdog expiry
  //    (its reconnection is adopted by the standby's pseudo-server).
  if (dep.attachment.initiator != nullptr) dep.attachment.initiator->kick();

  telemetry().add_event(dep.attach_span, "standby_promoted", position);
  telemetry().record_event("failover " + dep.vm + ":" + dep.volume +
                           ": promoted " + standby->vm->name() +
                           " in place of " + failed->vm->name());
  dep.boxes[position] = std::move(standby);  // destroys the failed box
  return Status::ok();
}

Status StormPlatform::bypass_middlebox(Deployment& dep,
                                       std::size_t position) {
  if (position >= dep.boxes.size()) {
    return error(ErrorCode::kInvalidArgument, "position out of range");
  }
  MiddleboxInstance* box = dep.boxes[position].get();
  if (box->pooled) {
    return error(ErrorCode::kFailedPrecondition,
                 "replica " + box->replica_label +
                     " is shared by other flows: bypass would sever them");
  }
  if (box->service != nullptr && box->service->confidentiality_critical()) {
    return error(ErrorCode::kPermissionDenied,
                 "service '" + box->spec.type +
                     "' is confidentiality-critical: bypass would fail "
                     "open");
  }
  // Silence the box (it may be half-dead rather than fully gone), then
  // route around it and let the initiator re-dial the shortened chain.
  if (box->active_relay != nullptr) {
    if (!box->active_relay->crashed()) box->active_relay->crash();
  } else {
    box->vm->node().set_down(true);
  }
  telemetry().add_event(dep.attach_span, "bypassed", position);
  telemetry().record_event("failover " + dep.vm + ":" + dep.volume +
                           ": bypassing " + box->vm->name());
  dep.boxes.erase(dep.boxes.begin() +
                  static_cast<std::ptrdiff_t>(position));
  rebuild_chain(dep);
  splicer_.refresh_capture_rules(dep.splice);
  sdn_.reprogram_chain(dep.splice);
  if (dep.attachment.initiator != nullptr) dep.attachment.initiator->kick();
  return Status::ok();
}

Status StormPlatform::fence_deployment(Deployment& dep,
                                       const std::string& reason) {
  if (dep.state == DeploymentState::kFenced) return Status::ok();
  dep.state = DeploymentState::kFenced;
  telemetry().add_event(dep.attach_span, "fenced");
  telemetry().record_event("fence " + dep.vm + ":" + dep.volume + ": " +
                           reason);
  if (dep.attachment.initiator != nullptr) {
    // Fail closed: no new commands enter, in-flight ones error back to
    // the caller for retry at a higher layer.
    dep.attachment.initiator->set_admission(false);
    dep.attachment.initiator->fail_outstanding(
        error(ErrorCode::kUnavailable, "deployment fenced: " + reason));
  }
  // Quiesce the data path and pull the rules. Nothing may keep flowing
  // around the dead box — that would be a silent bypass. A pooled relay
  // serves other tenants' healthy flows, so only this flow's session is
  // dropped; a private relay is shut down whole.
  for (auto& box : dep.boxes) {
    if (box->active_relay != nullptr) {
      if (box->pooled) {
        box->active_relay->drop_session(dep.splice.vm_port);
      } else {
        box->active_relay->shutdown();
      }
    }
    if (box->standby != nullptr && box->standby->active_relay != nullptr) {
      box->standby->active_relay->shutdown();
    }
  }
  teardown_rules(&dep);
  return Status::ok();
}

Status StormPlatform::crash_middlebox(Deployment& deployment,
                                      std::size_t position) {
  // Chaos injection often fires from a scheduled event on some
  // partition; the crash touches the box's partition, so defer to the
  // barrier there and report accepted (the health manager observes the
  // crash on its next probe either way).
  if (cloud_.simulator().partition_count() > 1 &&
      sim::Simulator::in_partition_context()) {
    const std::uint64_t cookie = deployment.splice.cookie;
    cloud_.simulator().at_barrier([this, cookie, position] {
      Deployment* dep = deployment_by_cookie(cookie);
      if (dep != nullptr) crash_middlebox(*dep, position);
    });
    return Status::ok();
  }
  if (position >= deployment.boxes.size()) {
    return error(ErrorCode::kInvalidArgument, "position out of range");
  }
  MiddleboxInstance* box = deployment.boxes[position].get();
  if (box->active_relay) {
    box->active_relay->crash();
  } else {
    telemetry().record_event("mb " + box->vm->name() + ": node down");
    box->vm->node().set_down(true);
  }
  return Status::ok();
}

Status StormPlatform::restart_middlebox(Deployment& deployment,
                                        std::size_t position) {
  if (cloud_.simulator().partition_count() > 1 &&
      sim::Simulator::in_partition_context()) {
    const std::uint64_t cookie = deployment.splice.cookie;
    cloud_.simulator().at_barrier([this, cookie, position] {
      Deployment* dep = deployment_by_cookie(cookie);
      if (dep != nullptr) restart_middlebox(*dep, position);
    });
    return Status::ok();
  }
  if (position >= deployment.boxes.size()) {
    return error(ErrorCode::kInvalidArgument, "position out of range");
  }
  MiddleboxInstance* box = deployment.boxes[position].get();
  if (box->active_relay) {
    box->active_relay->restart();
  } else {
    telemetry().record_event("mb " + box->vm->name() + ": node up");
    box->vm->node().set_down(false);
  }
  return Status::ok();
}

Deployment* StormPlatform::deployment_by_cookie(std::uint64_t cookie) {
  for (auto& deployment : deployments_) {
    if (deployment->splice.cookie == cookie) return deployment.get();
  }
  return nullptr;
}

DeploymentHandle StormPlatform::find_deployment(const std::string& vm,
                                                const std::string& volume) {
  for (auto& deployment : deployments_) {
    if (deployment->vm == vm && deployment->volume == volume) {
      return DeploymentHandle(this, deployment->splice.cookie);
    }
  }
  return DeploymentHandle();
}

Status StormPlatform::add_middlebox(Deployment& deployment,
                                    const ServiceSpec& spec,
                                    std::size_t position) {
  if (spec.relay == RelayMode::kActive) {
    return error(ErrorCode::kInvalidArgument,
                 "cannot insert an active relay into a live flow "
                 "(it would cut the TCP stream)");
  }
  if (position > deployment.boxes.size()) {
    return error(ErrorCode::kInvalidArgument, "position out of range");
  }
  cloud::Vm* vm = cloud_.find_vm(deployment.vm);
  auto box = build_box(spec,
                       "mb-" + std::to_string(next_mb_id_++) + "-" + spec.type,
                       vm->tenant(), vm->host_index(), nullptr);
  if (!box.is_ok()) return box.status();
  if (box.value()->spec.relay == RelayMode::kPassive) {
    box.value()->passive_relay = std::make_unique<PassiveRelay>(
        *box.value()->vm,
        std::vector<StorageService*>{box.value()->service.get()},
        deployment.volume);
    box.value()->passive_relay->start();
  }
  deployment.boxes.insert(
      deployment.boxes.begin() + static_cast<std::ptrdiff_t>(position),
      std::move(box).take());
  rebuild_chain(deployment);
  sdn_.reprogram_chain(deployment.splice);
  telemetry().add_event(deployment.attach_span, "box_added",
                        deployment.boxes.size());
  return Status::ok();
}

Status StormPlatform::remove_middlebox(Deployment& deployment,
                                       std::size_t position) {
  if (position >= deployment.boxes.size()) {
    return error(ErrorCode::kInvalidArgument, "position out of range");
  }
  MiddleboxInstance& box = *deployment.boxes[position];
  if (box.spec.relay == RelayMode::kActive) {
    return error(ErrorCode::kInvalidArgument,
                 "cannot remove an active relay from a live flow");
  }
  deployment.boxes.erase(deployment.boxes.begin() +
                         static_cast<std::ptrdiff_t>(position));
  rebuild_chain(deployment);
  sdn_.reprogram_chain(deployment.splice);
  telemetry().add_event(deployment.attach_span, "box_removed",
                        deployment.boxes.size());
  return Status::ok();
}

}  // namespace storm::core
