#include "core/attribution.hpp"

namespace storm::core {

FlowIdentity ConnectionAttribution::to_identity(
    const cloud::Attachment& attachment) {
  FlowIdentity identity;
  identity.tenant = attachment.tenant;
  identity.vm = attachment.vm;
  identity.volume = attachment.volume;
  identity.iqn = attachment.iqn;
  identity.host_ip = attachment.host_ip;
  identity.target_ip = attachment.target_ip;
  identity.source_port = attachment.source_port;
  return identity;
}

std::optional<FlowIdentity> ConnectionAttribution::by_source_port(
    std::uint16_t port) const {
  for (const auto& attachment : cloud_.attachments()) {
    if (attachment.source_port == port) return to_identity(attachment);
  }
  return std::nullopt;
}

std::optional<FlowIdentity> ConnectionAttribution::by_vm_volume(
    const std::string& vm, const std::string& volume) const {
  auto attachment = cloud_.find_attachment(vm, volume);
  if (!attachment) return std::nullopt;
  return to_identity(*attachment);
}

std::vector<FlowIdentity> ConnectionAttribution::tenant_flows(
    const std::string& tenant) const {
  std::vector<FlowIdentity> flows;
  for (const auto& attachment : cloud_.attachments()) {
    if (attachment.tenant == tenant) flows.push_back(to_identity(attachment));
  }
  return flows;
}

}  // namespace storm::core
