#include "core/policy.hpp"

#include <sstream>

namespace storm::core {

const char* to_string(RelayMode mode) {
  switch (mode) {
    case RelayMode::kForward: return "forward";
    case RelayMode::kPassive: return "passive";
    case RelayMode::kActive: return "active";
  }
  return "?";
}

const char* to_string(RecoveryPolicyKind kind) {
  switch (kind) {
    case RecoveryPolicyKind::kFence: return "fence";
    case RecoveryPolicyKind::kStandby: return "standby";
    case RecoveryPolicyKind::kBypass: return "bypass";
  }
  return "?";
}

namespace {

Result<RecoveryPolicyKind> parse_recovery_policy(const std::string& value) {
  if (value == "fence") return RecoveryPolicyKind::kFence;
  if (value == "standby") return RecoveryPolicyKind::kStandby;
  if (value == "bypass") return RecoveryPolicyKind::kBypass;
  return error(ErrorCode::kParseError, "unknown recovery policy: " + value);
}

Result<RelayMode> parse_relay_mode(const std::string& value) {
  if (value == "forward") return RelayMode::kForward;
  if (value == "passive") return RelayMode::kPassive;
  if (value == "active") return RelayMode::kActive;
  return error(ErrorCode::kParseError, "unknown relay mode: " + value);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

Result<TenantPolicy> parse_policy(const std::string& text) {
  TenantPolicy policy;
  VolumePolicy* current_volume = nullptr;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    auto fail = [&](const std::string& message) {
      return error(ErrorCode::kParseError,
                   "line " + std::to_string(line_no) + ": " + message);
    };

    if (tokens[0] == "tenant") {
      if (tokens.size() != 2) return fail("expected: tenant <name>");
      policy.tenant = tokens[1];
    } else if (tokens[0] == "qos") {
      if (tokens.size() < 2) {
        return fail("expected: qos rate_mbps=<n> [burst_kb=<n>]");
      }
      policy.qos.enabled = true;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        auto eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          return fail("expected key=value, got: " + tokens[i]);
        }
        std::string key = tokens[i].substr(0, eq);
        std::string value = tokens[i].substr(eq + 1);
        if (key == "rate_mbps") {
          policy.qos.rate_bytes_per_sec =
              std::stoull(value) * 1'000'000ull / 8ull;
        } else if (key == "rate_bytes") {
          policy.qos.rate_bytes_per_sec = std::stoull(value);
        } else if (key == "burst_kb") {
          policy.qos.burst_bytes = std::stoull(value) * 1024ull;
        } else if (key == "burst_bytes") {
          policy.qos.burst_bytes = std::stoull(value);
        } else {
          return fail("unknown qos key: " + key);
        }
      }
      // A burst below one rate-quantum would deadlock large packets at
      // admission; default to 64 KiB when unspecified.
      if (policy.qos.burst_bytes == 0) {
        policy.qos.burst_bytes = 64 * 1024;
      }
    } else if (tokens[0] == "volume") {
      if (tokens.size() != 3) return fail("expected: volume <vm> <volume>");
      policy.volumes.push_back(VolumePolicy{tokens[1], tokens[2], {}});
      current_volume = &policy.volumes.back();
    } else if (tokens[0] == "service") {
      if (current_volume == nullptr) {
        return fail("service outside a volume block");
      }
      if (tokens.size() < 2) return fail("expected: service <type> [k=v...]");
      ServiceSpec spec;
      spec.type = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        auto eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          return fail("expected key=value, got: " + tokens[i]);
        }
        std::string key = tokens[i].substr(0, eq);
        std::string value = tokens[i].substr(eq + 1);
        if (key == "relay") {
          auto mode = parse_relay_mode(value);
          if (!mode.is_ok()) return mode.status();
          spec.relay = mode.value();
        } else if (key == "recovery") {
          auto kind = parse_recovery_policy(value);
          if (!kind.is_ok()) return kind.status();
          spec.recovery = kind.value();
        } else if (key == "vcpus") {
          spec.vcpus = static_cast<unsigned>(std::stoul(value));
        } else if (key == "host") {
          spec.host_index = std::stoi(value);
        } else {
          spec.params[key] = value;
        }
      }
      current_volume->chain.push_back(std::move(spec));
    } else if (tokens[0] == "quorum") {
      if (current_volume == nullptr || current_volume->chain.empty()) {
        return fail("quorum outside a service block");
      }
      QuorumSpec& quorum = current_volume->chain.back().quorum;
      quorum.enabled = true;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        auto eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          return fail("expected key=value, got: " + tokens[i]);
        }
        std::string key = tokens[i].substr(0, eq);
        std::string value = tokens[i].substr(eq + 1);
        if (key == "w") {
          quorum.write_quorum = static_cast<unsigned>(std::stoul(value));
        } else if (key == "rebuild_mbps") {
          quorum.rebuild_rate_bytes_per_sec =
              std::stoull(value) * 1'000'000ull;
        } else if (key == "rebuild_bytes_per_sec") {
          quorum.rebuild_rate_bytes_per_sec = std::stoull(value);
        } else if (key == "rebuild_burst_kb") {
          quorum.rebuild_burst_bytes = std::stoull(value) * 1024ull;
        } else {
          return fail("unknown quorum key: " + key);
        }
      }
    } else if (tokens[0] == "replicas") {
      if (current_volume == nullptr || current_volume->chain.empty()) {
        return fail("replicas outside a service block");
      }
      if (tokens.size() < 2) {
        return fail("expected: replicas <count> [min=<n>] [max=<n>]");
      }
      ReplicaSpec& replicas = current_volume->chain.back().replicas;
      replicas.enabled = true;
      replicas.count = static_cast<unsigned>(std::stoul(tokens[1]));
      replicas.min_count = 1;
      replicas.max_count = replicas.count;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        auto eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          return fail("expected key=value, got: " + tokens[i]);
        }
        std::string key = tokens[i].substr(0, eq);
        std::string value = tokens[i].substr(eq + 1);
        if (key == "min") {
          replicas.min_count = static_cast<unsigned>(std::stoul(value));
        } else if (key == "max") {
          replicas.max_count = static_cast<unsigned>(std::stoul(value));
        } else {
          return fail("unknown replicas key: " + key);
        }
      }
    } else {
      return fail("unknown directive: " + tokens[0]);
    }
  }
  if (policy.tenant.empty()) {
    return error(ErrorCode::kParseError, "missing 'tenant' directive");
  }
  Status status = validate_policy(policy);
  if (!status.is_ok()) return status;
  return policy;
}

Status validate_policy(const TenantPolicy& policy) {
  if (policy.volumes.empty()) {
    return error(ErrorCode::kInvalidArgument, "policy lists no volumes");
  }
  if (policy.qos.enabled && policy.qos.rate_bytes_per_sec == 0) {
    return error(ErrorCode::kInvalidArgument,
                 "qos stanza requires a non-zero rate");
  }
  for (const auto& volume : policy.volumes) {
    if (volume.chain.empty()) {
      return error(ErrorCode::kInvalidArgument,
                   "volume " + volume.volume + " has an empty service chain");
    }
    for (const auto& spec : volume.chain) {
      if (spec.type.empty()) {
        return error(ErrorCode::kInvalidArgument, "service without a type");
      }
      if (spec.vcpus == 0) {
        return error(ErrorCode::kInvalidArgument,
                     "service " + spec.type + " requests 0 vCPUs");
      }
      // Replication rewrites command routing, which requires terminating
      // the TCP stream — it cannot run as a packet-level relay.
      if (spec.type == "replication" && spec.relay != RelayMode::kActive) {
        return error(ErrorCode::kInvalidArgument,
                     "replication requires relay=active");
      }
      // Standby promotion replays an NVRAM journal, which only the
      // active relay keeps.
      if (spec.recovery == RecoveryPolicyKind::kStandby &&
          spec.relay != RelayMode::kActive) {
        return error(ErrorCode::kInvalidArgument,
                     "service " + spec.type +
                         ": recovery=standby requires relay=active");
      }
      if (spec.quorum.enabled) {
        if (spec.type != "replication") {
          return error(ErrorCode::kInvalidArgument,
                       "service " + spec.type +
                           ": quorum stanza is only valid on replication");
        }
        if (spec.quorum.write_quorum == 0) {
          return error(ErrorCode::kInvalidArgument,
                       "quorum requires w >= 1");
        }
        // Copies available = primary + declared replicas; W above that
        // could never be met.
        const std::string replicas = spec.param("replicas");
        unsigned copies = 1;
        if (!replicas.empty()) {
          ++copies;
          for (char c : replicas) {
            if (c == ',') ++copies;
          }
        }
        if (spec.quorum.write_quorum > copies) {
          return error(ErrorCode::kInvalidArgument,
                       "quorum w=" +
                           std::to_string(spec.quorum.write_quorum) +
                           " exceeds the " + std::to_string(copies) +
                           " configured copies");
        }
        if (spec.quorum.rebuild_rate_bytes_per_sec == 0) {
          return error(ErrorCode::kInvalidArgument,
                       "quorum rebuild rate must be non-zero");
        }
      }
      if (spec.replicas.enabled) {
        // A replica set load-balances *flows*, so every instance must
        // terminate TCP — packet-level relays have no session to pin.
        if (spec.relay != RelayMode::kActive) {
          return error(ErrorCode::kInvalidArgument,
                       "service " + spec.type +
                           ": replicas requires relay=active");
        }
        // Replication owns per-volume version maps: two instances would
        // silently fork the map. Replica-safety of custom services is
        // re-checked at deploy time via StorageService::replica_safe().
        if (spec.type == "replication" || spec.type == "monitor") {
          return error(ErrorCode::kInvalidArgument,
                       "service " + spec.type +
                           " keeps per-volume state and cannot be "
                           "replicated across instances");
        }
        // Standby promotion moves a box into one deployment's chain; a
        // pooled replica is shared across flows, so the two mechanisms
        // compose wrong. Replica sets recover by rebalancing instead.
        if (spec.recovery == RecoveryPolicyKind::kStandby) {
          return error(ErrorCode::kInvalidArgument,
                       "service " + spec.type +
                           ": recovery=standby cannot combine with a "
                           "replica set (rebalancing is the recovery)");
        }
        if (spec.replicas.count == 0 || spec.replicas.min_count == 0) {
          return error(ErrorCode::kInvalidArgument,
                       "replicas requires count >= 1 and min >= 1");
        }
        if (spec.replicas.min_count > spec.replicas.count ||
            spec.replicas.count > spec.replicas.max_count) {
          return error(ErrorCode::kInvalidArgument,
                       "replicas requires min <= count <= max");
        }
      }
      // Bypass is fail-open: known confidentiality-critical built-ins are
      // rejected here; custom services are re-checked at deploy time via
      // StorageService::confidentiality_critical().
      if (spec.recovery == RecoveryPolicyKind::kBypass &&
          (spec.type == "encryption" || spec.type == "stream_cipher" ||
           spec.type == "replication")) {
        return error(ErrorCode::kPermissionDenied,
                     "service " + spec.type +
                         " is confidentiality-critical: recovery=bypass "
                         "would fail open");
      }
    }
  }
  return Status::ok();
}

}  // namespace storm::core
