#include "core/passive_relay.hpp"

#include <cstring>

#include "common/log.hpp"
#include "net/node.hpp"

namespace storm::core {

PassiveRelay::PassiveRelay(cloud::Vm& mb_vm,
                           std::vector<StorageService*> services,
                           std::string volume, PassiveRelayCosts costs)
    : vm_(mb_vm), services_(std::move(services)),
      volume_(std::move(volume)), costs_(costs),
      scope_(mb_vm.node().executor().telemetry().scope("relay." +
                                                        mb_vm.name() + ".")),
      ctx_(std::make_unique<HookContext>(*this)) {
  for (StorageService* service : services_) {
    if (service->requires_active_relay()) {
      throw std::invalid_argument(
          "service '" + service->name() + "' requires an active relay");
    }
    // No NVRAM on a packet-level relay: services get the executor and
    // scope but must keep recovery state elsewhere.
    service->bind_host(ServiceHost{vm_.node().executor(), scope_, nullptr});
  }
}

sim::Simulator& PassiveRelay::HookContext::simulator() {
  return relay_.vm_.node().simulator();
}

PassiveRelay::~PassiveRelay() {
  // Pending pump callbacks capture `this`; clear the hook so no new
  // packets are captured after teardown (chain rollback destroys boxes).
  vm_.node().set_forward_hook(nullptr);
}

void PassiveRelay::start() {
  vm_.node().set_forward_hook(
      [this](net::Packet& pkt) { return on_packet(pkt); });
}

bool PassiveRelay::on_packet(net::Packet& pkt) {
  ++packets_;
  scope_.counter("packets_hooked").add();
  scope_.counter("copied_bytes").add(2 * pkt.payload.size());
  // Pure ACKs / control segments: pay the hook cost, then continue on
  // their way. Reordering a bare ACK ahead of held data is harmless.
  if (pkt.payload.empty()) {
    net::Packet copy = pkt;
    vm_.cpu().run(costs_.hook_per_packet, [this, copy]() mutable {
      vm_.node().emit_forward(std::move(copy));
    });
    return true;
  }

  const net::FourTuple key = pkt.four_tuple();
  StreamState& state = streams_[key];
  state.held.push_back(pkt);
  account_inbox(static_cast<std::ptrdiff_t>(pkt.payload.size()));
  state.inbox.push_back(pkt.payload);
  pump(key);
  return true;
}

void PassiveRelay::account_inbox(std::ptrdiff_t delta) {
  inbox_bytes_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(inbox_bytes_) + delta);
  if (inbox_bytes_ > peak_inbox_bytes_) {
    peak_inbox_bytes_ = inbox_bytes_;
    scope_.gauge("queue_bytes_peak")
        .set(static_cast<std::int64_t>(inbox_bytes_));
  }
  scope_.gauge("queue_bytes").set(static_cast<std::int64_t>(inbox_bytes_));
}

void PassiveRelay::pump(const net::FourTuple& key) {
  auto it = streams_.find(key);
  if (it == streams_.end()) return;
  StreamState& state = it->second;
  if (state.busy || state.inbox.empty()) return;
  state.busy = true;
  Buf payload = std::move(state.inbox.front());
  state.inbox.pop_front();
  account_inbox(-static_cast<std::ptrdiff_t>(payload.size()));

  Direction dir = key.dst.port == iscsi::kIscsiPort
                      ? Direction::kToTarget
                      : Direction::kToInitiator;
  // Hook + two per-byte copies, then reassembly + services. Serialized
  // per stream so parser feeds keep arrival order even with >1 vCPU.
  sim::Duration cost =
      costs_.hook_per_packet +
      static_cast<sim::Duration>(costs_.copy_ns_per_byte *
                                 static_cast<double>(payload.size()));
  vm_.cpu().run(cost, [this, key, dir, payload = std::move(payload)]() mutable {
    auto sit = streams_.find(key);
    if (sit == streams_.end()) return;
    StreamState& st = sit->second;
    std::vector<iscsi::Pdu> pdus;
    Status status = st.parser.feed(std::move(payload), pdus);
    if (!status.is_ok()) {
      log_warn("passive-relay") << vm_.name() << ": parse error: "
                                << status.to_string() << "; flushing raw";
      // Fail open: forward the held packets untransformed.
      for (auto& held : st.held) vm_.node().emit_forward(std::move(held));
      st.held.clear();
      st.busy = false;
      pump(key);
      return;
    }
    sim::Duration service_cost = 0;
    for (auto& pdu : pdus) {
      ++pdus_;
      scope_.counter("pdus_processed").add();
      trace_pdu(key, dir, pdu);
      std::size_t before = iscsi::serialized_size(pdu);
      if (dir == Direction::kToTarget) {
        for (StorageService* service : services_) {
          service_cost += service->on_pdu(*ctx_, dir, pdu).cpu_cost;
        }
      } else {
        for (auto rit = services_.rbegin(); rit != services_.rend(); ++rit) {
          service_cost += (*rit)->on_pdu(*ctx_, dir, pdu).cpu_cost;
        }
      }
      Bytes wire = iscsi::serialize(pdu);
      if (wire.size() != before) {
        throw std::logic_error("passive relay service changed PDU size");
      }
      st.transformed.insert(st.transformed.end(), wire.begin(), wire.end());
    }
    auto finish = [this, key] {
      auto fit = streams_.find(key);
      if (fit == streams_.end()) return;
      drain(fit->second);
      fit->second.busy = false;
      pump(key);
    };
    if (service_cost > 0) {
      vm_.cpu().run(service_cost, finish);
    } else {
      finish();
    }
  });
}

// Stamp the command's trace exactly like the active relay does: an event
// on the root command span per hop plus a "relay.<vm>" child span
// covering the command's dwell inside this box. The flow's preserved
// source port sits on the initiator side of the four-tuple.
void PassiveRelay::trace_pdu(const net::FourTuple& key, Direction dir,
                             const iscsi::Pdu& pdu) {
  if (pdu.opcode != iscsi::Opcode::kScsiCommand &&
      pdu.opcode != iscsi::Opcode::kScsiResponse) {
    return;
  }
  obs::Registry& reg = vm_.node().executor().telemetry();
  const std::uint16_t source_port =
      dir == Direction::kToTarget ? key.src.port : key.dst.port;
  const std::string trace_key =
      obs::command_trace_key(source_port, pdu.task_tag);
  const obs::SpanId root = reg.lookup(trace_key);
  if (root == 0) return;
  if (dir == Direction::kToTarget &&
      pdu.opcode == iscsi::Opcode::kScsiCommand) {
    reg.add_event(root, "mb." + vm_.name() + ".cmd", streams_.size());
    cmd_spans_[trace_key] = reg.begin_span("relay." + vm_.name(), root);
  } else if (dir == Direction::kToInitiator &&
             pdu.opcode == iscsi::Opcode::kScsiResponse && pdu.is_final()) {
    reg.add_event(root, "mb." + vm_.name() + ".rsp", streams_.size());
    auto it = cmd_spans_.find(trace_key);
    if (it != cmd_spans_.end()) {
      reg.end_span(it->second);
      cmd_spans_.erase(it);
    }
  }
}

void PassiveRelay::drain(StreamState& state) {
  // Emit held packets whose payload is fully covered by transformed
  // stream bytes, preserving the original packet boundaries (sizes are
  // unchanged, so TCP sequence bookkeeping stays intact end-to-end).
  while (!state.held.empty() &&
         state.transformed.size() >= state.held.front().payload.size()) {
    net::Packet pkt = std::move(state.held.front());
    state.held.pop_front();
    // COW: the inbox and any queued duplicates still reference the
    // original payload bytes; rewriting gets this packet its own copy.
    std::span<std::uint8_t> dst = pkt.payload.mutable_span();
    std::memcpy(dst.data(), state.transformed.data(), dst.size());
    state.transformed.erase(
        state.transformed.begin(),
        state.transformed.begin() +
            static_cast<std::ptrdiff_t>(pkt.payload.size()));
    // The payload just changed under the TCP checksum: recompute it, or
    // every transformed segment would be discarded as corrupt downstream.
    pkt.tcp.checksum = net::tcp_checksum(pkt);
    vm_.node().emit_forward(std::move(pkt));
  }
}

}  // namespace storm::core
