#include "core/autoscaler.hpp"

#include <algorithm>

#include "core/active_relay.hpp"
#include "core/platform.hpp"
#include "net/qos.hpp"
#include "obs/registry.hpp"

namespace storm::core {

Autoscaler::Autoscaler(StormPlatform& platform, AutoscalerConfig config)
    : platform_(platform), config_(config) {}

Autoscaler::~Autoscaler() { stop(); }

void Autoscaler::watch_tenant(const std::string& tenant,
                              const std::string& service_type,
                              unsigned min_replicas, unsigned max_replicas) {
  TenantState state;
  state.service_type = service_type;
  state.min_replicas = std::max(1u, min_replicas);
  state.max_replicas = std::max(state.min_replicas, max_replicas);
  // The installed QoS rate is the tenant's *current* capacity; divide by
  // the current pool size to get the per-replica base the bucket is
  // re-priced from on every resize.
  if (const net::TokenBucket* bucket = platform_.tenant_qos(tenant)) {
    std::size_t pool = 1;
    if (const ReplicaSet* set = platform_.replica_set(tenant, service_type)) {
      pool = std::max<std::size_t>(1, set->replicas.size());
    }
    state.base_rate = bucket->rate_bytes_per_sec() / pool;
    state.base_burst = bucket->burst_bytes() / pool;
    state.last_throttled = bucket->throttled_bytes();
  }
  tenants_[tenant] = std::move(state);
}

void Autoscaler::start() {
  if (running_) return;
  running_ = true;
  platform_.cloud().simulator().telemetry().record_event(
      "autoscaler: started");
  tick();
}

void Autoscaler::stop() {
  if (!running_) return;
  running_ = false;
  tick_token_.cancel();
}

void Autoscaler::tick() {
  if (!running_) return;
  // Telemetry reads span partitions (the bucket counts on the gateway's
  // partition) and a resize rewires chains everywhere: evaluate at the
  // window barrier, like the health manager's probe.
  platform_.cloud().simulator().at_barrier([this] {
    if (!running_) return;
    for (auto& [tenant, state] : tenants_) {
      evaluate(tenant, state);
    }
  });
  tick_token_ = platform_.cloud().control_executor().schedule_in(
      config_.tick_interval, [this] { tick(); });
}

void Autoscaler::evaluate(const std::string& tenant, TenantState& state) {
  const ReplicaSet* set = platform_.replica_set(tenant, state.service_type);
  if (set == nullptr || set->replicas.empty()) return;
  obs::Registry& reg = platform_.cloud().simulator().telemetry();
  const sim::Time now = reg.now();
  if (state.resizing || now < state.cooldown_until) return;

  // Throttle pressure: bytes the bucket held back since the last tick,
  // normalized to a rate.
  std::uint64_t throttled_rate = 0;
  if (const net::TokenBucket* bucket = platform_.tenant_qos(tenant)) {
    const std::uint64_t total = bucket->throttled_bytes();
    const std::uint64_t delta = total - state.last_throttled;
    state.last_throttled = total;
    throttled_rate = static_cast<std::uint64_t>(
        static_cast<double>(delta) * 1e9 /
        static_cast<double>(config_.tick_interval));
  }
  // Health pressure: a dead replica shrinks effective capacity — the
  // same liveness probe the health manager runs. Scaling up restores
  // the paid-for parallelism while the dead box is repaired.
  std::size_t dead = 0;
  for (const auto& replica : set->replicas) {
    if (replica->vm->node().is_down() ||
        (replica->active_relay != nullptr &&
         replica->active_relay->crashed())) {
      ++dead;
    }
  }

  const unsigned live =
      static_cast<unsigned>(set->replicas.size() - std::min(dead, set->replicas.size()));
  const bool pressured =
      throttled_rate >= config_.scale_up_bytes_per_sec || live < state.min_replicas;
  const bool idle = throttled_rate <= config_.scale_down_bytes_per_sec &&
                    dead == 0;

  if (pressured) {
    state.idle_ticks = 0;
    ++state.pressured_ticks;
    if (state.pressured_ticks >= config_.sustain_up_ticks &&
        set->replicas.size() < state.max_replicas) {
      reg.record_event("autoscaler: " + tenant + " pressured (" +
                       std::to_string(throttled_rate) + " B/s throttled, " +
                       std::to_string(dead) + " dead); scaling up");
      resize(tenant, state,
             static_cast<unsigned>(set->replicas.size()) + 1);
    }
    return;
  }
  state.pressured_ticks = 0;
  if (!idle) {
    state.idle_ticks = 0;
    return;
  }
  ++state.idle_ticks;
  if (state.idle_ticks >= config_.sustain_down_ticks &&
      set->replicas.size() > state.min_replicas) {
    reg.record_event("autoscaler: " + tenant + " idle; scaling down");
    resize(tenant, state, static_cast<unsigned>(set->replicas.size()) - 1);
  }
}

void Autoscaler::resize(const std::string& tenant, TenantState& state,
                        unsigned target) {
  obs::Registry& reg = platform_.cloud().simulator().telemetry();
  const ReplicaSet* set = platform_.replica_set(tenant, state.service_type);
  const bool up = set == nullptr || target > set->replicas.size();
  state.resizing = true;
  state.pressured_ticks = 0;
  state.idle_ticks = 0;
  const std::string service_type = state.service_type;
  platform_.scale_service_replicas(
      tenant, service_type, target, [this, tenant, up](Status status) {
        auto it = tenants_.find(tenant);
        if (it == tenants_.end()) return;
        TenantState& state = it->second;
        obs::Registry& reg = platform_.cloud().simulator().telemetry();
        state.resizing = false;
        state.cooldown_until = reg.now() + config_.cooldown;
        if (!status.is_ok()) {
          reg.record_event("autoscaler: " + tenant + " resize failed: " +
                           status.to_string());
          return;
        }
        const ReplicaSet* set =
            platform_.replica_set(tenant, state.service_type);
        const std::size_t count =
            set != nullptr ? std::max<std::size_t>(1, set->replicas.size())
                           : 1;
        // Re-price the tenant's admission to match the new capacity:
        // without this, the bucket's old rate caps the pool and the new
        // replica idles behind the throttle that triggered it.
        if (state.base_rate != 0) {
          if (net::TokenBucket* bucket = platform_.tenant_qos_mutable(tenant)) {
            bucket->set_rate(state.base_rate * count,
                             state.base_burst * count);
            state.last_throttled = bucket->throttled_bytes();
          }
        }
        if (up) {
          ++scale_ups_;
          reg.counter("autoscaler." + tenant + ".scale_ups").add();
        } else {
          ++scale_downs_;
          reg.counter("autoscaler." + tenant + ".scale_downs").add();
        }
        reg.record_event("autoscaler: " + tenant + " now " +
                         std::to_string(count) + " replica(s)");
      });
  reg.counter("autoscaler.resizes").add();
}

}  // namespace storm::core
