// Passive relay (paper §III-B): intercept forwarded packets with a
// kernel-hook + per-packet user/kernel copies (a netfilter-queue
// stand-in). Every data packet pays the hook cost and waits for service
// processing before moving to the next hop — the *source's* TCP ACKs also
// wait, which is exactly why the paper builds the active relay.
//
// Services under a passive relay must be pure in-place transforms that
// preserve PDU sizes (ciphers, monitors); consuming/injecting services
// need the active relay.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "cloud/cloud.hpp"
#include "core/service.hpp"
#include "iscsi/pdu.hpp"
#include "net/packet.hpp"
#include "obs/registry.hpp"

namespace storm::core {

struct PassiveRelayCosts {
  /// Kernel hook + syscall + context switch, per packet.
  sim::Duration hook_per_packet = sim::microseconds(2);
  /// Two user/kernel copies per payload byte (in and out).
  double copy_ns_per_byte = 0.6;
};

class PassiveRelay {
 public:
  PassiveRelay(cloud::Vm& mb_vm, std::vector<StorageService*> services,
               std::string volume = {}, PassiveRelayCosts costs = {});

  PassiveRelay(const PassiveRelay&) = delete;
  PassiveRelay& operator=(const PassiveRelay&) = delete;

  ~PassiveRelay();

  /// Install the FORWARD-chain hook on the middle-box VM.
  void start();

  std::uint64_t packets_hooked() const { return packets_; }
  std::uint64_t pdus_processed() const { return pdus_; }

  /// Payload bytes awaiting service processing across all streams. The
  /// passive relay needs no watermarks: held data packets stall the
  /// source's ACK clock, so this is inherently bounded by the flow's TCP
  /// window — but the gauge makes that bound observable alongside the
  /// active relay's.
  std::size_t queue_bytes() const { return inbox_bytes_; }
  std::size_t peak_queue_bytes() const { return peak_inbox_bytes_; }

  /// No packet or payload buffered in the hook and nothing mid-service —
  /// the drain protocol polls this before tearing rules.
  bool quiescent() const {
    for (const auto& [key, state] : streams_) {
      if (state.busy || !state.held.empty() || !state.inbox.empty()) {
        return false;
      }
    }
    return true;
  }

  const obs::Scope& scope() const { return scope_; }
  const std::string& volume() const { return volume_; }

 private:
  /// Per flow-direction reassembly/transform state.
  struct StreamState {
    iscsi::StreamParser parser;
    std::deque<net::Packet> held;  // packets awaiting transformed bytes
    std::deque<Buf> inbox;         // payloads awaiting processing, in order
    Bytes transformed;             // service-processed stream bytes
    bool busy = false;             // one payload in processing at a time
  };

  // Injection needs a terminated TCP stream; the passive relay only
  // rewrites packets in flight, so services that inject were already
  // rejected at construction — reaching these throws is a logic error.
  class HookContext : public ServiceContext {
   public:
    explicit HookContext(PassiveRelay& relay) : relay_(relay) {}
    void inject_to_target(iscsi::Pdu) override {
      throw std::logic_error("passive relay cannot inject PDUs");
    }
    void inject_to_initiator(iscsi::Pdu) override {
      throw std::logic_error("passive relay cannot inject PDUs");
    }
    sim::Simulator& simulator() override;
    const obs::Scope& scope() override { return relay_.scope_; }
    const std::string& volume() const override { return relay_.volume_; }

   private:
    PassiveRelay& relay_;
  };

  bool on_packet(net::Packet& pkt);
  void pump(const net::FourTuple& key);
  void drain(StreamState& state);
  void account_inbox(std::ptrdiff_t delta);
  void trace_pdu(const net::FourTuple& key, Direction dir,
                 const iscsi::Pdu& pdu);

  cloud::Vm& vm_;
  std::vector<StorageService*> services_;
  std::string volume_;
  PassiveRelayCosts costs_;
  obs::Scope scope_;  // "relay.<mb-vm>."
  std::map<net::FourTuple, StreamState> streams_;
  // Open per-command child spans, keyed by trace key; closed when the
  // final SCSI response is rewritten on its way back to the initiator.
  std::map<std::string, obs::SpanId> cmd_spans_;
  std::unique_ptr<HookContext> ctx_;
  std::uint64_t packets_ = 0;
  std::uint64_t pdus_ = 0;
  std::size_t inbox_bytes_ = 0;
  std::size_t peak_inbox_bytes_ = 0;
};

}  // namespace storm::core
