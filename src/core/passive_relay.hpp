// Passive relay (paper §III-B): intercept forwarded packets with a
// kernel-hook + per-packet user/kernel copies (a netfilter-queue
// stand-in). Every data packet pays the hook cost and waits for service
// processing before moving to the next hop — the *source's* TCP ACKs also
// wait, which is exactly why the paper builds the active relay.
//
// Services under a passive relay must be pure in-place transforms that
// preserve PDU sizes (ciphers, monitors); consuming/injecting services
// need the active relay.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "cloud/cloud.hpp"
#include "core/service.hpp"
#include "iscsi/pdu.hpp"
#include "net/packet.hpp"

namespace storm::core {

struct PassiveRelayCosts {
  /// Kernel hook + syscall + context switch, per packet.
  sim::Duration hook_per_packet = sim::microseconds(2);
  /// Two user/kernel copies per payload byte (in and out).
  double copy_ns_per_byte = 0.6;
};

class PassiveRelay {
 public:
  PassiveRelay(cloud::Vm& mb_vm, std::vector<StorageService*> services,
               PassiveRelayCosts costs = {});

  PassiveRelay(const PassiveRelay&) = delete;
  PassiveRelay& operator=(const PassiveRelay&) = delete;

  ~PassiveRelay();

  /// Install the FORWARD-chain hook on the middle-box VM.
  void start();

  std::uint64_t packets_hooked() const { return packets_; }
  std::uint64_t pdus_processed() const { return pdus_; }

 private:
  /// Per flow-direction reassembly/transform state.
  struct StreamState {
    iscsi::StreamParser parser;
    std::deque<net::Packet> held;  // packets awaiting transformed bytes
    std::deque<Bytes> inbox;       // payloads awaiting processing, in order
    Bytes transformed;             // service-processed stream bytes
    bool busy = false;             // one payload in processing at a time
  };

  class NullApi : public RelayApi {
   public:
    explicit NullApi(sim::Simulator& simulator) : sim_(simulator) {}
    void inject_to_target(iscsi::Pdu) override {
      throw std::logic_error("passive relay cannot inject PDUs");
    }
    void inject_to_initiator(iscsi::Pdu) override {
      throw std::logic_error("passive relay cannot inject PDUs");
    }
    sim::Simulator& simulator() override { return sim_; }

   private:
    sim::Simulator& sim_;
  };

  bool on_packet(net::Packet& pkt);
  void pump(const net::FourTuple& key);
  void drain(StreamState& state);

  cloud::Vm& vm_;
  std::vector<StorageService*> services_;
  PassiveRelayCosts costs_;
  std::map<net::FourTuple, StreamState> streams_;
  std::unique_ptr<NullApi> api_;
  std::uint64_t packets_ = 0;
  std::uint64_t pdus_ = 0;
};

}  // namespace storm::core
