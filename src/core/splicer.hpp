// Network splicing (paper §III-A): bring selected iSCSI flows from the
// storage network into the instance network through a per-tenant pair of
// storage gateways, steer them through the middle-box chain, and return
// them to the storage network — all transparently to the initiator and
// target.
//
// The pieces, mapped to the paper:
//  * storage->instance redirection: a DNAT rule on the tenant VM's host
//    (installed only for the duration of the atomic attach window),
//  * ingress gateway: IP-masquerade the flow into the tenant's instance-
//    network address space and point it at the egress gateway,
//  * egress gateway: masquerade back onto the storage network toward the
//    real target,
//  * conntrack keeps established flows working after rule removal.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud.hpp"
#include "core/policy.hpp"

namespace storm::core {

struct GatewayPair {
  net::NetNode* ingress = nullptr;
  net::NetNode* egress = nullptr;

  net::Ipv4Addr ingress_storage_ip() const { return ingress->nic_ip(0); }
  net::Ipv4Addr ingress_instance_ip() const { return ingress->nic_ip(1); }
  net::Ipv4Addr egress_storage_ip() const { return egress->nic_ip(0); }
  net::Ipv4Addr egress_instance_ip() const { return egress->nic_ip(1); }
};

/// One middle-box position in a deployed chain.
struct Hop {
  cloud::Vm* vm = nullptr;
  RelayMode relay = RelayMode::kActive;
};

/// Everything the splicer and the SDN controller need to know about one
/// spliced storage flow.
struct SpliceContext {
  std::uint64_t cookie = 0;      // tags every rule this flow installed
  std::uint16_t vm_port = 0;     // initiator source port (attribution)
  net::Ipv4Addr host_storage_ip; // compute host running the tenant VM
  net::Ipv4Addr target_ip;       // storage host
  GatewayPair gateways;
  std::vector<Hop> chain;
};

class NetworkSplicer {
 public:
  explicit NetworkSplicer(cloud::Cloud& cloud) : cloud_(cloud) {}

  /// Get or create the tenant's gateway pair (created inside the tenant's
  /// network space; invisible to other tenants).
  GatewayPair& tenant_gateways(const std::string& tenant);

  /// The atomic-attachment window (paper §III-A): DNAT the about-to-be-
  /// created iSCSI connection on the tenant VM's host toward the ingress
  /// gateway. Matches the flow's preset source port, so only this volume's
  /// connection is redirected.
  void install_host_redirect(cloud::ComputeHost& host,
                             const SpliceContext& ctx);
  void remove_host_redirect(cloud::ComputeHost& host,
                            const SpliceContext& ctx);

  /// Gateway masquerading rules for one flow.
  void install_gateway_rules(const SpliceContext& ctx);

  /// Active-relay capture rules on the middle-boxes themselves: redirect
  /// the chain segment's flow to the local pseudo-server port.
  void install_capture_rules(const SpliceContext& ctx);

  /// Reinstall the chain's capture rules after its membership changed
  /// (standby promotion, bypass): the rules match the *previous* active
  /// hop's address, so replacing one box invalidates its successor's
  /// rule too. Conntrack on the surviving boxes keeps their established
  /// flows working across the reinstall.
  void refresh_capture_rules(const SpliceContext& ctx);

  /// Remove every NAT rule tagged with the context's cookie (gateways,
  /// middle-boxes, and any leftover host rules). Established flows keep
  /// working via conntrack.
  std::size_t remove_all_rules(const SpliceContext& ctx);

 private:
  cloud::Cloud& cloud_;
  std::map<std::string, GatewayPair> gateways_;
};

}  // namespace storm::core
