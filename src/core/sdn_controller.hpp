// SDN flow steering (paper §III-A, Fig. 3): a centralized controller that
// installs mod_dst_mac rules in the OVS-style virtual switches so a
// spliced flow traverses its middle-box chain in order, in both
// directions, and supports adding/removing middle-boxes on demand.
#pragma once

#include <cstdint>

#include "cloud/cloud.hpp"
#include "core/splicer.hpp"

namespace storm::core {

class SdnController {
 public:
  explicit SdnController(cloud::Cloud& cloud) : cloud_(cloud) {}

  /// Compute the full steering rule set for the chain (forward rules +
  /// reverse-segment rules), tagged with the context's cookie. Pure —
  /// nothing is installed.
  std::vector<net::FlowRule> build_chain_rules(const SpliceContext& ctx) const;

  /// Compute and install steering rules for the chain, tagged with the
  /// context's cookie. Idempotent per cookie only if removed first.
  void install_chain_rules(const SpliceContext& ctx);

  /// Remove all steering rules tagged with the cookie.
  std::size_t remove_chain_rules(std::uint64_t cookie);

  /// Reprogram the switches for an updated chain with a per-switch
  /// atomic swap (old rules and new rules exchanged in one table
  /// update, so live traffic is steered by one complete rule set or the
  /// other — never a half-installed mix). Used by on-demand scaling and
  /// by standby failover, where the rules re-point at the spare's MAC
  /// under active retransmission.
  void reprogram_chain(const SpliceContext& ctx);

  std::uint64_t rules_installed() const { return rules_installed_; }
  /// Completed atomic reprogram operations (scaling + failover swaps).
  std::uint64_t rule_swaps() const { return rule_swaps_; }

 private:
  void add_rule_everywhere(net::FlowRule rule);

  cloud::Cloud& cloud_;
  std::uint64_t rules_installed_ = 0;
  std::uint64_t rule_swaps_ = 0;
};

}  // namespace storm::core
