// SDN flow steering (paper §III-A, Fig. 3): a centralized controller that
// installs mod_dst_mac rules in the OVS-style virtual switches so a
// spliced flow traverses its middle-box chain in order, in both
// directions, and supports adding/removing middle-boxes on demand.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cloud/cloud.hpp"
#include "core/splicer.hpp"

namespace storm::core {

/// Consistent-hash ring over middle-box replica labels (Stratos-style
/// network-aware flow distribution): each replica contributes a fixed
/// fan of virtual nodes, a flow's iSCSI 4-tuple hashes to a point on the
/// ring, and the first vnode clockwise owns the flow. Adding or removing
/// one replica moves only the flows whose arc changed hands (~1/N of
/// them) — the property that lets scale-out rebalance without a global
/// re-pinning storm. Deterministic: same labels + same flows => same
/// assignment, on any thread count.
class FlowHashRing {
 public:
  /// Vnodes per replica: enough to smooth the arcs to a few percent
  /// imbalance without bloating the map.
  static constexpr unsigned kVnodes = 64;

  void add_node(const std::string& label);
  /// Removing an unknown label is a no-op.
  void remove_node(const std::string& label);
  bool contains(const std::string& label) const;
  std::size_t node_count() const { return nodes_; }
  bool empty() const { return ring_.empty(); }

  /// The replica owning `flow_hash`; empty string on an empty ring.
  const std::string& assign(std::uint64_t flow_hash) const;

  /// Deterministic 4-tuple hash (the iSCSI flow identity: compute-host
  /// storage IP + pinned source port -> target IP + iSCSI port).
  static std::uint64_t flow_key(net::Ipv4Addr src_ip, std::uint16_t src_port,
                                net::Ipv4Addr dst_ip, std::uint16_t dst_port);

 private:
  static std::uint64_t mix(std::uint64_t x);

  std::map<std::uint64_t, std::string> ring_;  // vnode point -> label
  std::size_t nodes_ = 0;
};

class SdnController {
 public:
  explicit SdnController(cloud::Cloud& cloud) : cloud_(cloud) {}

  /// Compute the full steering rule set for the chain (forward rules +
  /// reverse-segment rules), tagged with the context's cookie. Pure —
  /// nothing is installed.
  std::vector<net::FlowRule> build_chain_rules(const SpliceContext& ctx) const;

  /// Compute and install steering rules for the chain, tagged with the
  /// context's cookie. Idempotent per cookie only if removed first.
  void install_chain_rules(const SpliceContext& ctx);

  /// Remove all steering rules tagged with the cookie.
  std::size_t remove_chain_rules(std::uint64_t cookie);

  /// Reprogram the switches for an updated chain with a per-switch
  /// atomic swap (old rules and new rules exchanged in one table
  /// update, so live traffic is steered by one complete rule set or the
  /// other — never a half-installed mix). Used by on-demand scaling and
  /// by standby failover, where the rules re-point at the spare's MAC
  /// under active retransmission.
  void reprogram_chain(const SpliceContext& ctx);

  std::uint64_t rules_installed() const { return rules_installed_; }
  /// Completed atomic reprogram operations (scaling + failover swaps).
  std::uint64_t rule_swaps() const { return rule_swaps_; }

 private:
  void add_rule_everywhere(net::FlowRule rule);

  cloud::Cloud& cloud_;
  std::uint64_t rules_installed_ = 0;
  std::uint64_t rule_swaps_ = 0;
};

}  // namespace storm::core
