// SDN flow steering (paper §III-A, Fig. 3): a centralized controller that
// installs mod_dst_mac rules in the OVS-style virtual switches so a
// spliced flow traverses its middle-box chain in order, in both
// directions, and supports adding/removing middle-boxes on demand.
#pragma once

#include <cstdint>

#include "cloud/cloud.hpp"
#include "core/splicer.hpp"

namespace storm::core {

class SdnController {
 public:
  explicit SdnController(cloud::Cloud& cloud) : cloud_(cloud) {}

  /// Compute and install steering rules for the chain, tagged with the
  /// context's cookie. Idempotent per cookie only if removed first.
  void install_chain_rules(const SpliceContext& ctx);

  /// Remove all steering rules tagged with the cookie.
  std::size_t remove_chain_rules(std::uint64_t cookie);

  /// Reprogram the switches for an updated chain: used by on-demand
  /// scaling (adding/removing middle-boxes on an existing flow). Only
  /// packet-level hops (forward/passive) can change mid-flow — an active
  /// relay terminates TCP, so inserting one mid-connection would break
  /// the byte stream.
  void reprogram_chain(const SpliceContext& ctx);

  std::uint64_t rules_installed() const { return rules_installed_; }

 private:
  void add_rule_everywhere(net::FlowRule rule);

  cloud::Cloud& cloud_;
  std::uint64_t rules_installed_ = 0;
};

}  // namespace storm::core
