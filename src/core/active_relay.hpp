// Active relay (paper §III-B): the middle-box terminates the spliced TCP
// connection with a local pseudo-server, acknowledges received data
// immediately, and re-originates the stream toward the next hop with a
// pseudo-client — so the data source never stalls on middle-box
// processing or downstream forwarding. Received-but-unforwarded PDUs are
// journaled to (simulated) NVRAM until the next hop acknowledges them,
// preserving consistency across the split connections.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/cloud.hpp"
#include "core/service.hpp"
#include "iscsi/pdu.hpp"
#include "journal/log.hpp"
#include "net/tcp.hpp"
#include "obs/registry.hpp"

namespace storm::core {

struct ActiveRelayCosts {
  /// Parse/dispatch cost per PDU (the TCP handler batches several packets
  /// per user/kernel crossing, so cost scales with PDUs, not packets).
  sim::Duration per_pdu = sim::microseconds(2);
  /// Copy cost per byte through the batched TCP path.
  double ns_per_byte = 0.15;
};

/// Ingress flow control: real NVRAM is finite, so the early-ACK relay
/// must eventually push back. When a direction's journal + processing
/// queue reach the high watermark the relay stops crediting its ingress
/// TCP receive window — the advertised window closes back toward the
/// data source — and once the load drains below the low watermark all
/// withheld credit is released at once. Early-ACK semantics are
/// untouched below the watermark; journal replay is unaffected (the
/// journal only ever holds bounded state). Only *complete* bursts count
/// toward the watermarks — the trailing incomplete burst is always
/// allowed to finish arriving (see update_backpressure), so the per-
/// direction bound is high_watermark + largest burst + the ingress TCP
/// window rather than high_watermark alone. high_watermark == 0 disables
/// the mechanism (legacy unbounded behaviour).
struct RelayFlowControl {
  std::size_t high_watermark = 256 * 1024;
  std::size_t low_watermark = 64 * 1024;
};

/// One failed relay's NVRAM contents, exportable across VM instances:
/// standby promotion replays this into the warm spare so every journaled
/// (acknowledged-but-unforwarded) PDU survives the failover, extending
/// the paper's §III-B consistency argument from restart to replacement.
struct RelayJournalSnapshot {
  struct SessionImage {
    std::uint16_t bind_port = 0;
    std::optional<iscsi::Pdu> login_pdu;
    std::vector<BufChain> to_target_wires;  // unacknowledged, oldest first
  };
  std::vector<SessionImage> sessions;

  std::size_t bytes() const {
    std::size_t total = 0;
    for (const SessionImage& s : sessions) {
      for (const BufChain& w : s.to_target_wires) total += chain_size(w);
    }
    return total;
  }
};

class ActiveRelay {
 public:
  /// `upstream` is the next hop's address (the egress gateway; capture
  /// rules on later active boxes may redirect it). Services are applied
  /// in order for PDUs toward the target and in reverse order for PDUs
  /// toward the initiator (the chain unwinds on the way back). `volume`
  /// names the protected volume this relay splices; it is surfaced to
  /// services through their ServiceContext.
  ActiveRelay(cloud::Vm& mb_vm, net::SocketAddr upstream,
              std::vector<StorageService*> services, std::string volume = {},
              ActiveRelayCosts costs = {}, RelayFlowControl flow = {},
              journal::Config journal_config = {});

  ActiveRelay(const ActiveRelay&) = delete;
  ActiveRelay& operator=(const ActiveRelay&) = delete;

  ~ActiveRelay() { shutdown(); }

  /// Start the pseudo-server (listens on the iSCSI port).
  void start();

  // --- failure injection / recovery (tests + §III-B consistency) ---
  /// Abort every session's upstream connection, keeping journals.
  void fail_upstream();
  /// Re-dial upstream for every session and replay unacknowledged PDUs
  /// (the stored login PDU is replayed first to re-establish the session).
  void recover_upstream();

  /// Power-fail the middle-box VM: node down, TCP state wiped with no
  /// goodbyes, in-flight parser/queue state lost. Only the NVRAM journals
  /// and the stored login PDUs survive (paper §III-B). Dumps the flight
  /// recorder so post-mortems see the lead-up.
  void crash();
  /// Power the VM back on: re-listen, re-dial upstream for every crashed
  /// session and replay the journal. The initiator's reconnection (same
  /// pinned source port) is adopted back into its session by on_accept.
  void restart();
  bool crashed() const { return crashed_; }

  /// Orderly teardown for chain rollback: stop listening and abort every
  /// session's connections.
  void shutdown();

  // --- standby failover (chain health manager) ---
  /// Snapshot every session's NVRAM journal and stored login PDU — the
  /// state that survives the VM's death and gets replayed into a standby.
  /// On a crashed relay this first replays the (simulated) NVRAM segments
  /// to rebuild the index — the standby reads the dead box's NVRAM, not
  /// its volatile memory.
  RelayJournalSnapshot export_journal();
  /// Standby promotion: recreate each session from a failed relay's
  /// snapshot, re-dial the upstream leg, and replay login + journal. The
  /// initiator's reconnection (same pinned source port) is adopted into
  /// the recreated session by on_accept, exactly like the restart path.
  void adopt_sessions(RelayJournalSnapshot snapshot);

  // --- per-flow scale-out (replica sets share one relay) ---
  /// Quiescence of one flow's session only: its queues, journals and
  /// backlog are empty (true for an unknown port — nothing to drain).
  /// The flow-migration drain polls this instead of quiescent(), which
  /// would couple the migrating flow to every other tenant flow pinned
  /// to this replica.
  bool session_quiescent(std::uint16_t bind_port) const;
  /// Hand one drained flow off to another replica: snapshot the
  /// session's journal + login PDU (same shape adopt_sessions consumes),
  /// abort its TCP legs, drop its journal streams and erase it — the
  /// rest of the relay's sessions are untouched. Empty snapshot for an
  /// unknown port.
  RelayJournalSnapshot extract_session(std::uint16_t bind_port);
  /// Tear one flow's session down with no handoff (per-flow fence /
  /// release on a shared replica).
  void drop_session(std::uint16_t bind_port);
  /// Per-flow volume identity: a pooled replica splices flows of many
  /// volumes, so services resolve the volume by the session's pinned
  /// source port; unregistered ports fall back to the relay-wide volume.
  void register_volume(std::uint16_t bind_port, std::string volume);

  // --- drain / failover-completion predicates ---
  /// Nothing buffered anywhere: parser queues empty, journals trimmed to
  /// empty, no upstream backlog. The drain protocol polls this before
  /// tearing rules.
  bool quiescent() const;
  /// Every session has both TCP legs up (downstream bound, upstream
  /// established) — the health manager's failover-complete predicate.
  bool sessions_established() const;

  std::size_t session_count() const { return sessions_.size(); }
  std::size_t journal_bytes() const;
  /// Bytes parsed into PDUs and awaiting service processing.
  std::size_t queue_bytes() const;
  /// journal_bytes() + queue_bytes(): everything this relay holds.
  std::size_t buffered_bytes() const {
    return journal_bytes() + queue_bytes();
  }
  /// High-watermark of buffered_bytes() over the relay's lifetime — the
  /// quantity the flow-control watermarks exist to bound.
  std::size_t peak_buffered_bytes() const { return peak_buffered_; }
  /// Directions currently refusing ingress credit (window closed).
  std::size_t paused_directions() const;
  const RelayFlowControl& flow_control() const { return flow_; }
  std::uint64_t pdus_relayed() const { return pdus_relayed_; }
  std::uint64_t journal_replays() const { return journal_replays_; }

  const obs::Scope& scope() const { return scope_; }
  const std::string& volume() const { return volume_; }

  /// The relay's log-structured NVRAM engine. All sessions multiplex
  /// their per-direction streams into this one device (tests and the
  /// crash harness drive it directly).
  journal::Device& journal_device() { return journal_dev_; }
  const journal::Device& journal_device() const { return journal_dev_; }

 private:
  struct Session;

  class SessionContext : public ServiceContext {
   public:
    SessionContext(ActiveRelay& relay, Session& session)
        : relay_(relay), session_(session) {}
    void inject_to_target(iscsi::Pdu pdu) override;
    void inject_to_initiator(iscsi::Pdu pdu) override;
    sim::Simulator& simulator() override;
    const obs::Scope& scope() override { return relay_.scope_; }
    const std::string& volume() const override {
      return relay_.flow_volume(session_.bind_port);
    }

   private:
    ActiveRelay& relay_;
    Session& session_;
  };

  struct QueuedPdu {
    sim::Time enqueued;  // arrival into the processing queue
    std::size_t bytes;   // wire-size estimate, for queue accounting
    iscsi::Pdu pdu;
  };

  struct DirectionState {
    iscsi::StreamParser parser;
    std::deque<QueuedPdu> queue;  // PDUs awaiting processing, in order
    std::size_t queue_bytes = 0;  // bytes held in `queue`
    bool processing = false;
    journal::Stream journal;
    std::uint64_t enqueued_bytes = 0;  // cumulative payload sent downstream
    // Backpressure: ingress bytes delivered by TCP but not yet credited
    // back (consume()d), and whether crediting is currently withheld
    // because journal + queue sit above the high watermark.
    std::size_t uncredited = 0;
    bool paused = false;
  };

  struct Session {
    net::TcpConnection* downstream = nullptr;  // toward the initiator
    net::TcpConnection* upstream = nullptr;    // toward the target
    bool upstream_ready = false;
    BufChain upstream_backlog;  // chunks to send once upstream establishes
    DirectionState to_target;
    DirectionState to_initiator;
    std::unique_ptr<SessionContext> ctx;
    std::optional<iscsi::Pdu> login_pdu;  // kept for session re-establishment
    std::uint16_t bind_port = 0;
    bool failed = false;
    // Bumped on every crash/resume. CPU-scheduled PDU callbacks from
    // before the reset compare epochs and drop themselves, so stale work
    // cannot pollute the resumed session's journal or backlog.
    std::uint64_t epoch = 0;
  };

  const std::string& flow_volume(std::uint16_t bind_port) const {
    auto it = flow_volumes_.find(bind_port);
    return it == flow_volumes_.end() ? volume_ : it->second;
  }
  Session* find_session(std::uint16_t bind_port);
  void teardown_session(Session& session);
  void on_accept(net::TcpConnection& conn);
  /// Wipe a direction back to its initial state while keeping it bound to
  /// the relay's journal device on a fresh stream id (the old stream's
  /// records are dropped from the device index).
  void reset_direction(DirectionState& st);
  void bind_downstream(Session& session, net::TcpConnection& conn);
  void dial_upstream(Session& session);
  void resume_session(Session& session);
  void on_stream_data(Session& session, Direction dir, Buf bytes);
  void pump_queue(Session& session, Direction dir);
  void forward(Session& session, Direction dir, const iscsi::Pdu& pdu);
  void send_downstream(Session& session, const BufChain& wire);
  void send_upstream(Session& session, const BufChain& wire);
  void trace_pdu(Session& session, Direction dir, const iscsi::Pdu& pdu,
                 std::size_t queue_depth);
  void update_journal_gauge();
  void update_backpressure(Session& session, Direction dir);
  obs::Registry& telemetry();
  DirectionState& state(Session& session, Direction dir) {
    return dir == Direction::kToTarget ? session.to_target
                                       : session.to_initiator;
  }

  cloud::Vm& vm_;
  net::SocketAddr upstream_;
  std::vector<StorageService*> services_;
  std::string volume_;
  std::map<std::uint16_t, std::string> flow_volumes_;  // by pinned port
  ActiveRelayCosts costs_;
  RelayFlowControl flow_;
  std::size_t peak_buffered_ = 0;
  obs::Scope scope_;  // "relay.<mb-vm>."
  journal::Device journal_dev_;  // shared log, one per relay VM
  std::vector<std::unique_ptr<Session>> sessions_;
  // Open per-command child spans ("relay.<mb-vm>"), keyed by the
  // command's trace key; closed when the final SCSI response passes
  // back through toward the initiator.
  std::map<std::string, obs::SpanId> cmd_spans_;
  std::uint64_t pdus_relayed_ = 0;
  std::uint64_t journal_replays_ = 0;
  bool crashed_ = false;
  bool shut_down_ = false;
};

}  // namespace storm::core
