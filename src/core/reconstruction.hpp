// Semantics reconstruction (paper §III-C): rebuild file-level operations
// from raw block accesses observed in the storage stream.
//
// An initial filesystem view is generated from the volume when the block
// device is attached (the paper uses dumpe2fs; we scan the same on-disk
// structures). Intercepted *metadata writes* — inode-table blocks,
// directory blocks, indirect-pointer blocks — keep the view up to date,
// so later data-block accesses resolve to live file paths. The
// block->file mapping is kept in a hash table for O(1) lookups (§IV).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "block/block_device.hpp"
#include "common/status.hpp"
#include "fs/layout.hpp"

namespace storm::core {

struct FileOp {
  enum class Kind {
    kRead,       // file or directory content
    kWrite,
    kMetaRead,   // superblock / bitmaps / inode tables
    kMetaWrite,
  };
  Kind kind;
  std::string path;       // file path, "<dir>/." for directories, or a
                          // metadata label like "META: inode_group_2"
  std::uint64_t size = 0; // bytes
  std::uint32_t block = 0;

  std::string to_string() const;
};

class SemanticsReconstructor {
 public:
  /// Build the initial high-level view from a point-in-time snapshot of
  /// the volume (supplied by the platform at attach time).
  static Result<std::unique_ptr<SemanticsReconstructor>> from_snapshot(
      const block::MemDisk& disk);

  /// For a volume with no (readable) filesystem yet — e.g. a blank volume
  /// behind an encryption middle-box. The reconstructor arms itself when
  /// it observes the superblock being written (mkfs through the chain)
  /// and builds the whole view from intercepted metadata writes.
  static std::unique_ptr<SemanticsReconstructor> unformatted();

  bool armed() const { return armed_; }

  /// Feed an intercepted write burst (sector lba, full data).
  std::vector<FileOp> on_write(std::uint64_t lba, const Bytes& data);

  /// Feed an intercepted read command (sector lba, length in bytes).
  std::vector<FileOp> on_read(std::uint64_t lba, std::uint64_t length);

  // --- queries -------------------------------------------------------------
  std::optional<std::string> path_of_block(std::uint32_t block) const;
  std::optional<std::string> path_of_inode(std::uint32_t ino) const;
  const fs::SuperBlock& superblock() const { return sb_; }
  std::size_t tracked_files() const;

 private:
  SemanticsReconstructor() = default;

  struct FileInfo {
    fs::InodeType type = fs::InodeType::kFree;
    std::uint64_t size = 0;
    std::uint32_t parent = 0;  // 0 = unknown/root-less
    std::string name;
    std::set<std::uint32_t> blocks;  // data blocks owned
  };

  void scan_snapshot(const block::MemDisk& disk);
  void index_inode_blocks(std::uint32_t ino, const fs::Inode& inode,
                          const block::MemDisk* snapshot);
  void drop_inode_blocks(std::uint32_t ino);

  /// Apply a metadata write, updating the view.
  void apply_inode_table_write(std::uint32_t block,
                               std::span<const std::uint8_t> data);
  void apply_dir_block_write(std::uint32_t block, std::uint32_t dir_ino,
                             std::span<const std::uint8_t> data);
  void apply_pointer_block_write(std::uint32_t block, std::uint32_t owner,
                                 std::span<const std::uint8_t> data);

  /// Classify one fs block and emit/extend an event.
  FileOp classify(bool is_write, std::uint32_t block, std::uint64_t bytes);

  bool armed_ = false;
  fs::SuperBlock sb_;
  std::map<std::uint32_t, FileInfo> inodes_;
  // The paper's hash table: data block -> owning inode.
  std::unordered_map<std::uint32_t, std::uint32_t> block_owner_;
  // Indirect/double-indirect pointer blocks -> owning inode.
  std::unordered_map<std::uint32_t, std::uint32_t> pointer_block_owner_;
  // Pointer blocks that are the L1 of a double-indirect tree (their
  // entries reference further pointer blocks, not data).
  std::set<std::uint32_t> dindirect_l1_;
  // Directory data block -> directory inode (for dirent diffing).
  std::unordered_map<std::uint32_t, std::uint32_t> dir_block_owner_;
  // Raw caches for diffing metadata writes.
  std::map<std::uint32_t, Bytes> inode_block_cache_;
  std::map<std::uint32_t, Bytes> dir_block_cache_;
  // Last known contents of indirect-pointer blocks (from the snapshot or
  // intercepted writes), so re-indexing an inode can re-resolve its
  // indirect pointees without re-reading the disk.
  std::map<std::uint32_t, Bytes> pointer_block_cache_;
  // Writes to not-yet-attributed blocks, kept so the content can be
  // (re)interpreted once the block's role becomes known — guest page
  // caches flush data and metadata in arbitrary order (paper §V-B1).
  std::map<std::uint32_t, Bytes> orphan_writes_;
};

}  // namespace storm::core
