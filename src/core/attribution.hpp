// Connection attribution (paper §III-A): join the hypervisor's
// VM <-> virtual-device (IQN) map with the patched iSCSI login path's
// IQN <-> TCP-source-port map, so StorM can tell which VM owns which
// storage flow and apply per-VM routing policy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cloud/cloud.hpp"

namespace storm::core {

struct FlowIdentity {
  std::string tenant;
  std::string vm;
  std::string volume;
  std::string iqn;
  net::Ipv4Addr host_ip;    // compute-host storage NIC (iSCSI initiator)
  net::Ipv4Addr target_ip;  // storage host
  std::uint16_t source_port = 0;
};

/// Read-side of attribution over the cloud's attachment registry.
class ConnectionAttribution {
 public:
  explicit ConnectionAttribution(const cloud::Cloud& cloud) : cloud_(cloud) {}

  /// Attribute a storage flow by its initiator-side source port.
  std::optional<FlowIdentity> by_source_port(std::uint16_t port) const;

  /// Attribute by VM + volume names (tenant policy lookups).
  std::optional<FlowIdentity> by_vm_volume(const std::string& vm,
                                           const std::string& volume) const;

  /// All flows belonging to one tenant.
  std::vector<FlowIdentity> tenant_flows(const std::string& tenant) const;

 private:
  static FlowIdentity to_identity(const cloud::Attachment& attachment);
  const cloud::Cloud& cloud_;
};

}  // namespace storm::core
