// QoS-driven autoscaler for elastic replica sets (paper §III-D: tenant
// policies size their own middle-box capacity). The scaler watches each
// registered tenant's token-bucket throttle telemetry — the rate of
// `qos.<tenant>.throttled_bytes` is a direct, backpressure-free signal
// that the tenant's offered load exceeds its paid-for capacity — and
// resizes the tenant's replica pool through
// StormPlatform::scale_service_replicas:
//
//  * sustained throttling above scale_up_bytes_per_sec adds a replica
//    and re-prices the tenant's bucket to base_rate * replicas, so the
//    new capacity is actually admittable;
//  * a sustained idle spell (throttle rate below
//    scale_down_bytes_per_sec) removes one, returning the bucket rate
//    with it. Scale-down rides the drain-based migration protocol, so a
//    burst in flight is never dropped.
//
// Opt-in like the health manager (start()/stop()): the tick reschedules
// itself forever. Everything runs on the control executor and mutates at
// window barriers, so two identically seeded runs scale at identical sim
// times on any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace storm::core {

class StormPlatform;

struct AutoscalerConfig {
  /// Telemetry sampling cadence. Thresholds are evaluated per tick.
  sim::Duration tick_interval = sim::milliseconds(20);
  /// Throttled-byte rate that counts as pressure.
  std::uint64_t scale_up_bytes_per_sec = 8ull * 1024 * 1024;
  /// Throttled-byte rate under which the pool is oversized.
  std::uint64_t scale_down_bytes_per_sec = 512ull * 1024;
  /// Consecutive pressured ticks before adding a replica (debounce: one
  /// throttled window is a blip, a run of them is a hot tenant).
  unsigned sustain_up_ticks = 3;
  /// Consecutive idle ticks before removing a replica (longer on the way
  /// down: flapping costs a migration per flap).
  unsigned sustain_down_ticks = 25;
  /// Dead time after any resize; rebalancing mid-cooldown would chase
  /// its own migration traffic.
  sim::Duration cooldown = sim::milliseconds(200);
};

class Autoscaler {
 public:
  explicit Autoscaler(StormPlatform& platform, AutoscalerConfig config = {});

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;
  ~Autoscaler();

  /// Watch one tenant's replica pool for `service_type`, elastic within
  /// [min_replicas, max_replicas] (further clamped by the policy's own
  /// replicas min/max). The tenant's current QoS rate is captured as the
  /// per-replica base rate.
  void watch_tenant(const std::string& tenant,
                    const std::string& service_type, unsigned min_replicas,
                    unsigned max_replicas);

  void start();
  void stop();
  bool running() const { return running_; }

  const AutoscalerConfig& config() const { return config_; }
  std::uint64_t scale_ups() const { return scale_ups_; }
  std::uint64_t scale_downs() const { return scale_downs_; }

 private:
  struct TenantState {
    std::string service_type;
    unsigned min_replicas = 1;
    unsigned max_replicas = 1;
    /// Per-replica admission rate: the bucket is re-priced to
    /// base_rate * replicas on every resize. 0 = tenant has no QoS
    /// bucket; capacity scales without re-pricing.
    std::uint64_t base_rate = 0;
    std::uint64_t base_burst = 0;
    std::uint64_t last_throttled = 0;
    unsigned pressured_ticks = 0;
    unsigned idle_ticks = 0;
    sim::Time cooldown_until = 0;
    bool resizing = false;
  };

  void tick();
  void evaluate(const std::string& tenant, TenantState& state);
  void resize(const std::string& tenant, TenantState& state, unsigned target);

  StormPlatform& platform_;
  AutoscalerConfig config_;
  bool running_ = false;
  sim::CancelToken tick_token_;
  std::map<std::string, TenantState> tenants_;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
};

}  // namespace storm::core
