#include "core/sdn_controller.hpp"

#include <functional>

#include "common/log.hpp"
#include "iscsi/pdu.hpp"

namespace storm::core {

// ------------------------------------------------------------ FlowHashRing

std::uint64_t FlowHashRing::mix(std::uint64_t x) {
  // splitmix64 finalizer: cheap, deterministic, avalanche-complete —
  // identical assignment on every platform and thread count.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t FlowHashRing::flow_key(net::Ipv4Addr src_ip,
                                     std::uint16_t src_port,
                                     net::Ipv4Addr dst_ip,
                                     std::uint16_t dst_port) {
  std::uint64_t k = (static_cast<std::uint64_t>(src_ip.value) << 32) |
                    dst_ip.value;
  k = mix(k);
  k ^= (static_cast<std::uint64_t>(src_port) << 16) | dst_port;
  return mix(k);
}

void FlowHashRing::add_node(const std::string& label) {
  if (contains(label)) return;
  std::uint64_t point = std::hash<std::string>{}(label);
  for (unsigned v = 0; v < kVnodes; ++v) {
    point = mix(point + v + 1);
    ring_.emplace(point, label);
  }
  ++nodes_;
}

void FlowHashRing::remove_node(const std::string& label) {
  if (!contains(label)) return;
  std::erase_if(ring_, [&](const auto& entry) {
    return entry.second == label;
  });
  --nodes_;
}

bool FlowHashRing::contains(const std::string& label) const {
  for (const auto& [point, node] : ring_) {
    if (node == label) return true;
  }
  return false;
}

const std::string& FlowHashRing::assign(std::uint64_t flow_hash) const {
  static const std::string empty;
  if (ring_.empty()) return empty;
  auto it = ring_.lower_bound(mix(flow_hash));
  if (it == ring_.end()) it = ring_.begin();  // wrap the ring
  return it->second;
}

// ------------------------------------------------------------ SdnController

void SdnController::add_rule_everywhere(net::FlowRule rule) {
  // The controller programs every virtual switch; rules only trigger
  // where the flow actually passes (matches carry the previous hop's MAC
  // and the flow's ports, so they are inert elsewhere).
  for (net::FlowSwitch* fs : cloud_.flow_switches()) {
    fs->add_rule(rule);
    ++rules_installed_;
  }
}

std::vector<net::FlowRule> SdnController::build_chain_rules(
    const SpliceContext& ctx) const {
  std::vector<net::FlowRule> out;
  if (ctx.chain.empty()) return out;

  const net::Ipv4Addr egw_ip = ctx.gateways.egress_instance_ip();
  const net::Ipv4Addr igw_ip = ctx.gateways.ingress_instance_ip();
  const net::MacAddr igw_mac = ctx.gateways.ingress->nic_mac(1);
  const net::MacAddr egw_mac = ctx.gateways.egress->nic_mac(1);

  // --- forward direction -------------------------------------------------
  // Hop list: ingress gateway, then every middle-box. Packets always
  // carry dst_ip = egress gateway; each rule matches the previous hop's
  // source MAC and rewrites the destination MAC to the next middle-box
  // (paper Fig. 3). The final hop needs no rule: ARP resolves the egress
  // gateway naturally.
  net::MacAddr prev_mac = igw_mac;
  for (const Hop& hop : ctx.chain) {
    net::FlowRule rule;
    rule.priority = 100;
    rule.cookie = ctx.cookie;
    rule.match.src_mac = prev_mac;
    rule.match.dst_ip = egw_ip;
    rule.match.src_port = ctx.vm_port;
    rule.actions = {net::FlowAction::set_dst_mac(hop.vm->mac()),
                    net::FlowAction::normal()};
    out.push_back(rule);
    prev_mac = hop.vm->mac();
  }

  // --- reverse direction -------------------------------------------------
  // Split the chain into TCP segments at active relays (each terminates
  // the byte stream and re-originates it). Within one segment
  // [A, inner..., B], replies travel B -> inner(reversed) -> A with
  // dst_ip = A's address, so inner packet-level hops need mirror rules.
  struct Endpoint {
    net::Ipv4Addr ip;
    net::MacAddr mac;
  };
  Endpoint segment_a{igw_ip, igw_mac};
  std::vector<Hop> inner;
  auto flush_segment = [&](Endpoint segment_b) {
    net::MacAddr prev = segment_b.mac;
    for (auto it = inner.rbegin(); it != inner.rend(); ++it) {
      net::FlowRule rule;
      rule.priority = 100;
      rule.cookie = ctx.cookie;
      rule.match.src_mac = prev;
      rule.match.dst_ip = segment_a.ip;
      rule.match.dst_port = ctx.vm_port;
      rule.actions = {net::FlowAction::set_dst_mac(it->vm->mac()),
                      net::FlowAction::normal()};
      out.push_back(rule);
      prev = it->vm->mac();
    }
    inner.clear();
  };
  for (const Hop& hop : ctx.chain) {
    if (hop.relay == RelayMode::kActive) {
      flush_segment(Endpoint{hop.vm->ip(), hop.vm->mac()});
      segment_a = Endpoint{hop.vm->ip(), hop.vm->mac()};
    } else {
      inner.push_back(hop);
    }
  }
  flush_segment(Endpoint{egw_ip, egw_mac});
  return out;
}

void SdnController::install_chain_rules(const SpliceContext& ctx) {
  for (const net::FlowRule& rule : build_chain_rules(ctx)) {
    add_rule_everywhere(rule);
  }
  if (!ctx.chain.empty()) {
    log_info("sdn") << "installed steering rules for flow port "
                    << ctx.vm_port << " through " << ctx.chain.size()
                    << " middle-box(es)";
  }
}

std::size_t SdnController::remove_chain_rules(std::uint64_t cookie) {
  std::size_t removed = 0;
  for (net::FlowSwitch* fs : cloud_.flow_switches()) {
    removed += fs->remove_rules_by_cookie(cookie);
  }
  return removed;
}

void SdnController::reprogram_chain(const SpliceContext& ctx) {
  // One swap per switch: each table goes old-rules -> new-rules in a
  // single update, so no packet is ever steered by a partial rule set.
  std::vector<net::FlowRule> rules = build_chain_rules(ctx);
  for (net::FlowSwitch* fs : cloud_.flow_switches()) {
    fs->swap_rules_by_cookie(ctx.cookie, rules);
    rules_installed_ += rules.size();
  }
  ++rule_swaps_;
  log_info("sdn") << "reprogrammed steering for flow port " << ctx.vm_port
                  << " (" << rules.size() << " rules per switch, "
                  << ctx.chain.size() << " middle-box(es))";
}

}  // namespace storm::core
