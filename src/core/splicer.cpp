#include "core/splicer.hpp"

#include "common/log.hpp"
#include "iscsi/pdu.hpp"

namespace storm::core {

GatewayPair& NetworkSplicer::tenant_gateways(const std::string& tenant) {
  auto it = gateways_.find(tenant);
  if (it != gateways_.end()) return it->second;
  GatewayPair pair;
  pair.ingress = &cloud_.create_gateway("igw-" + tenant);
  pair.egress = &cloud_.create_gateway("egw-" + tenant);
  log_info("splicer") << "created gateway pair for tenant " << tenant
                      << " (ingress "
                      << net::to_string(pair.ingress_storage_ip()) << "/"
                      << net::to_string(pair.ingress_instance_ip())
                      << ", egress "
                      << net::to_string(pair.egress_storage_ip()) << "/"
                      << net::to_string(pair.egress_instance_ip()) << ")";
  return gateways_.emplace(tenant, pair).first->second;
}

void NetworkSplicer::install_host_redirect(cloud::ComputeHost& host,
                                           const SpliceContext& ctx) {
  net::NatRule rule;
  rule.match_dst_ip = ctx.target_ip;
  rule.match_dst_port = iscsi::kIscsiPort;
  rule.match_src_port = ctx.vm_port;
  rule.dnat_ip = ctx.gateways.ingress_storage_ip();
  rule.cookie = ctx.cookie;
  host.node().nat().add_rule(rule);
}

void NetworkSplicer::remove_host_redirect(cloud::ComputeHost& host,
                                          const SpliceContext& ctx) {
  host.node().nat().remove_rules_by_cookie(ctx.cookie);
}

void NetworkSplicer::install_gateway_rules(const SpliceContext& ctx) {
  // Ingress: masquerade the flow into the instance network and aim it at
  // the egress gateway. Middle-boxes only ever see ingress<->egress
  // addresses — storage-network IPs never leak into the instance network.
  net::NatRule ingress;
  ingress.match_src_ip = ctx.host_storage_ip;
  ingress.match_src_port = ctx.vm_port;
  ingress.match_dst_ip = ctx.gateways.ingress_storage_ip();
  ingress.match_dst_port = iscsi::kIscsiPort;
  ingress.snat_ip = ctx.gateways.ingress_instance_ip();  // port preserved
  ingress.dnat_ip = ctx.gateways.egress_instance_ip();
  ingress.cookie = ctx.cookie;
  ctx.gateways.ingress->nat().add_rule(ingress);

  // Egress: masquerade back onto the storage network toward the real
  // target. Matching the flow's source port selects the right target when
  // several volumes share the gateway pair.
  net::NatRule egress;
  egress.match_src_port = ctx.vm_port;
  egress.match_dst_ip = ctx.gateways.egress_instance_ip();
  egress.match_dst_port = iscsi::kIscsiPort;
  egress.snat_ip = ctx.gateways.egress_storage_ip();
  egress.dnat_ip = ctx.target_ip;
  egress.cookie = ctx.cookie;
  ctx.gateways.egress->nat().add_rule(egress);
}

void NetworkSplicer::install_capture_rules(const SpliceContext& ctx) {
  // Each active middle-box captures the segment arriving from the previous
  // TCP endpoint (ingress gateway or the previous active box) by DNATing
  // it to its local pseudo-server.
  net::Ipv4Addr prev_endpoint = ctx.gateways.ingress_instance_ip();
  for (const Hop& hop : ctx.chain) {
    if (hop.relay != RelayMode::kActive) continue;
    net::NatRule capture;
    capture.match_src_ip = prev_endpoint;
    capture.match_src_port = ctx.vm_port;
    capture.match_dst_ip = ctx.gateways.egress_instance_ip();
    capture.match_dst_port = iscsi::kIscsiPort;
    capture.dnat_ip = hop.vm->ip();
    capture.cookie = ctx.cookie;
    hop.vm->node().nat().add_rule(capture);
    prev_endpoint = hop.vm->ip();
  }
}

void NetworkSplicer::refresh_capture_rules(const SpliceContext& ctx) {
  for (const Hop& hop : ctx.chain) {
    hop.vm->node().nat().remove_rules_by_cookie(ctx.cookie);
  }
  install_capture_rules(ctx);
}

std::size_t NetworkSplicer::remove_all_rules(const SpliceContext& ctx) {
  // Full detach: unlike the post-login redirect removal (where conntrack
  // must survive to keep the established flow spliced), here the flows
  // themselves are going away — flush their conntrack entries too, or a
  // detached volume's traffic would keep translating forever.
  std::size_t removed = 0;
  removed += ctx.gateways.ingress->nat().remove_rules_by_cookie(
      ctx.cookie, /*flush_conntrack=*/true);
  removed += ctx.gateways.egress->nat().remove_rules_by_cookie(
      ctx.cookie, /*flush_conntrack=*/true);
  for (const Hop& hop : ctx.chain) {
    removed += hop.vm->node().nat().remove_rules_by_cookie(
        ctx.cookie, /*flush_conntrack=*/true);
  }
  return removed;
}

}  // namespace storm::core
