// Chain health manager: liveness monitoring and automatic repair for
// deployed splice chains. The paper's atomic-attachment protocol (§III-A)
// guarantees a clean install; this subsystem keeps the chain alive
// afterwards — a crashed relay VM otherwise silently stalls every spliced
// volume behind it.
//
// Detection is two-pronged, both driven by the sim clock:
//  * heartbeats: every heartbeat_interval the manager probes each
//    middle-box (VM power state + relay crash flag); miss_threshold
//    consecutive misses declare the relay failed,
//  * TCP stall signals: the TCP layer reports exhausted retransmission
//    backoff (TcpStack::set_on_stall), which short-circuits the heartbeat
//    deadline — backoff exhaustion is already conclusive.
//
// On failure the manager dumps the FlightRecorder, opens a
// "failover.<vm>:<volume>" trace span, and executes the per-service
// recovery policy from the ServiceSpec (see RecoveryPolicyKind):
// standby promotion with NVRAM journal handoff, fail-open bypass, or
// fail-closed fencing. MTTR (detection -> data path restored) lands in
// obs:: histograms, so two identically seeded runs report identical
// recovery latencies.
//
// The manager is opt-in (start()/stop()): its heartbeat tick reschedules
// itself forever, so an idle simulator would otherwise never drain its
// event queue. Tests drive it with Simulator::run_for.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "net/tcp.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace storm::core {

class StormPlatform;
struct Deployment;

/// Relay health state machine:
///   alive -> suspect -> failed -> {standby-promoted, bypassed, fenced}
/// A suspect relay that answers its next heartbeat returns to alive.
enum class RelayHealth {
  kAlive,
  kSuspect,
  kFailed,
  kStandbyPromoted,
  kBypassed,
  kFenced,
};

const char* to_string(RelayHealth state);

struct HealthConfig {
  /// Heartbeat cadence. The detection deadline is
  /// heartbeat_interval * miss_threshold.
  sim::Duration heartbeat_interval = sim::milliseconds(5);
  /// Consecutive missed heartbeats before a relay is declared failed.
  unsigned miss_threshold = 2;
};

/// Dump the registry's flight-recorder tail to the warning log. Called on
/// *every* relay failure path — heartbeat miss, TCP stall, fence — not
/// only on explicit ActiveRelay::crash().
void dump_flight_recorder(obs::Registry& registry, const std::string& why);

class ChainHealthManager {
 public:
  explicit ChainHealthManager(StormPlatform& platform, HealthConfig config = {});

  ChainHealthManager(const ChainHealthManager&) = delete;
  ChainHealthManager& operator=(const ChainHealthManager&) = delete;

  /// Begin monitoring every current and future deployment. Reschedules
  /// itself each heartbeat_interval until stop().
  void start();
  void stop();
  bool running() const { return running_; }

  void set_config(HealthConfig config) { config_ = config; }
  const HealthConfig& config() const { return config_; }

  /// Health of one monitored middle-box position; kAlive for unknown
  /// cookies/positions (everything is presumed healthy until monitored).
  RelayHealth status(std::uint64_t cookie, std::size_t position) const;
  /// Terminal outcome of the chain's most recent failure (kAlive when it
  /// never failed). Survives the failed box being erased by a bypass.
  RelayHealth last_outcome(std::uint64_t cookie) const;

  std::uint64_t failures_detected() const { return failures_; }
  std::uint64_t recoveries_completed() const { return recoveries_; }

  /// Deployment torn down (detach/rollback): drop its chain record so a
  /// stale entry can't keep probing box pointers the teardown destroyed.
  /// Safe for unknown cookies.
  void forget_deployment(std::uint64_t cookie);

  /// Stop watching one TCP stack (replica parked / VM powered off): the
  /// stall callback is cleared so a dark node can never call back into
  /// the manager, and the stack is dropped from the hooked list so a
  /// later revive re-hooks it cleanly. Safe for unhooked stacks.
  void unhook_node(net::TcpStack* stack);

  /// Number of chains currently carrying health records (tests).
  std::size_t monitored_chains() const { return chains_.size(); }
  std::size_t hooked_stacks() const { return hooked_stacks_.size(); }

 private:
  struct BoxHealth {
    RelayHealth state = RelayHealth::kAlive;
    unsigned misses = 0;
    sim::Time last_alive = 0;
  };
  struct ChainHealth {
    std::vector<BoxHealth> boxes;
    // In-flight recovery (kStandby/kBypass): completion is polled each
    // tick — the failover span stays open until the data path is back.
    bool recovering = false;
    RecoveryPolicyKind recovery_kind = RecoveryPolicyKind::kFence;
    std::size_t recovering_position = 0;
    sim::Time failure_last_alive = 0;  // MTTR clock starts here
    sim::Time failed_at = 0;           // detection instant
    obs::SpanId failover_span = 0;
    RelayHealth outcome = RelayHealth::kAlive;
  };

  void tick();
  void probe_deployment(Deployment& dep, ChainHealth& chain);
  bool box_alive(const Deployment& dep, std::size_t position) const;
  void declare_failed(Deployment& dep, ChainHealth& chain,
                      std::size_t position, const std::string& how);
  void check_recovery(Deployment& dep, ChainHealth& chain);
  void finish_recovery(Deployment& dep, ChainHealth& chain);
  /// TCP stall fast path: probe immediately, skipping the miss counter —
  /// exhausted backoff is already a missed deadline.
  void on_tcp_stall(const net::FourTuple& flow, unsigned retries);
  void stall_probe();
  void install_stall_hooks(Deployment& dep);
  obs::Registry& telemetry() const;

  StormPlatform& platform_;
  HealthConfig config_;
  bool running_ = false;
  sim::CancelToken tick_token_;
  std::map<std::uint64_t, ChainHealth> chains_;  // by splice cookie
  std::vector<net::TcpStack*> hooked_stacks_;
  std::uint64_t failures_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace storm::core
