// Tenant policies (paper §III-D): which VMs/volumes get middle-box
// services, each middle-box's service type and virtual resources, and how
// the boxes are chained per volume. Tenants submit these as text; the
// platform parses and deploys.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace storm::core {

/// How the middle-box intercepts the flow (paper §III-B).
enum class RelayMode {
  kForward,  // plain IP forwarding, no interception (the MB-FWD baseline)
  kPassive,  // per-packet kernel hook + user/kernel copies
  kActive,   // split-TCP with immediate ACK and NVRAM journal (default)
};

const char* to_string(RelayMode mode);

/// What the chain health manager does when this middle-box fails
/// (heartbeat deadline missed or TCP backoff exhausted). The tenant
/// declares it per service; the default is fail-closed.
enum class RecoveryPolicyKind {
  kFence,    // quiesce the deployment, error in-flight commands back to
             // the initiator — keeps data confidential (default, and the
             // only sound choice for ciphers/replication with no spare)
  kStandby,  // promote a warm standby relay: replay the failed relay's
             // NVRAM journal into it, re-dial its TCP legs, atomically
             // swap the SDN rules to the standby's MAC
  kBypass,   // fail-open: reroute flows around the box; legal only for
             // monitor-class services (rejected at deploy time when the
             // service is confidentiality-critical)
};

const char* to_string(RecoveryPolicyKind kind);

/// Quorum replication tuning (paper §V-B3 grown into W-of-N): a write is
/// acknowledged to the tenant once `write_quorum` copies (primary
/// included) hold it; the rebuild knobs pace the background copy machine
/// that re-silvers a lost replica from survivors. Disabled (the default)
/// keeps the legacy best-effort mirroring semantics.
struct QuorumSpec {
  bool enabled = false;
  /// Copies (primary + replicas) that must acknowledge before the write
  /// completes toward the tenant.
  unsigned write_quorum = 2;
  /// Copy-machine token-bucket rate/burst: rebuild traffic is shaped so
  /// it cannot starve foreground I/O.
  std::uint64_t rebuild_rate_bytes_per_sec = 64ull * 1024 * 1024;
  std::uint64_t rebuild_burst_bytes = 256 * 1024;
};

/// Replica set for one middle-box hop (elastic chain scale-out): the
/// platform keeps `count` active-relay instances of the service alive on
/// distinct hosts and consistent-hashes each spliced flow onto one of
/// them. The autoscaler may move `count` within [min_count, max_count]
/// at runtime; disabled (the default) keeps one instance per hop.
struct ReplicaSpec {
  bool enabled = false;
  unsigned count = 1;
  unsigned min_count = 1;
  unsigned max_count = 1;
};

struct ServiceSpec {
  std::string type;  // "noop" | "monitor" | "encryption" | "stream_cipher" |
                     // "replication" | ... (extensible via the registry)
  RelayMode relay = RelayMode::kActive;
  RecoveryPolicyKind recovery = RecoveryPolicyKind::kFence;
  unsigned vcpus = 2;
  /// Placement: compute-host index, or -1 to let the platform choose.
  int host_index = -1;
  /// W-of-N commit + copy-machine rebuild (replication services only).
  QuorumSpec quorum;
  /// Horizontal scale-out of this hop (replica-safe services only).
  ReplicaSpec replicas;
  /// Service-specific parameters, e.g. {"replicas", "vol2,vol3"}.
  std::map<std::string, std::string> params;

  std::string param(const std::string& key,
                    const std::string& fallback = "") const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
};

struct VolumePolicy {
  std::string vm;
  std::string volume;
  std::vector<ServiceSpec> chain;  // traversal order, VM side first
};

/// Per-tenant rate limit, enforced by a token bucket on the tenant's
/// ingress gateway so one tenant's burst cannot starve another's chain.
struct QosSpec {
  bool enabled = false;
  std::uint64_t rate_bytes_per_sec = 0;
  std::uint64_t burst_bytes = 0;
};

struct TenantPolicy {
  std::string tenant;
  QosSpec qos;
  std::vector<VolumePolicy> volumes;
};

/// Parse the tenant policy text format:
///
///   tenant alice
///   qos rate_mbps=800 burst_kb=256
///   volume vm1 vol1
///     service monitor relay=active vcpus=2
///     service encryption relay=active key=0011..ff
///   volume vm2 vol2
///     service replication replicas=vol2-r1,vol2-r2
///     quorum w=2 rebuild_mbps=64 rebuild_burst_kb=256
///   volume vm3 vol3
///     service stream_cipher relay=active
///     replicas 3 min=1 max=4
///
/// A `quorum` or `replicas` line applies to the service declared
/// immediately above it. (`replicas N` — the hop's instance count — is
/// distinct from the replication service's `replicas=<vol,...>` param,
/// which names its backup volumes.) Blank lines and '#' comments are
/// ignored.
Result<TenantPolicy> parse_policy(const std::string& text);

/// Validate structural rules (each volume has >= 1 service, relay modes
/// compatible with service types, etc.).
Status validate_policy(const TenantPolicy& policy);

}  // namespace storm::core
