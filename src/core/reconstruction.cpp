#include "core/reconstruction.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/log.hpp"

namespace storm::core {

namespace {

std::uint32_t read_u32(std::span<const std::uint8_t> data,
                       std::uint32_t index) {
  const std::uint8_t* p = data.data() + index * 4;
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
         (std::uint32_t(p[2]) << 8) | p[3];
}

}  // namespace

std::string FileOp::to_string() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kRead: out << "read"; break;
    case Kind::kWrite: out << "write"; break;
    case Kind::kMetaRead: out << "read"; break;
    case Kind::kMetaWrite: out << "write"; break;
  }
  out << " " << path << " " << size;
  return out.str();
}

Result<std::unique_ptr<SemanticsReconstructor>>
SemanticsReconstructor::from_snapshot(const block::MemDisk& disk) {
  Bytes sb_block = disk.read_sync(0, fs::kSectorsPerBlock);
  auto parsed = fs::SuperBlock::parse(sb_block);
  if (!parsed.is_ok()) return parsed.status();
  auto recon = std::unique_ptr<SemanticsReconstructor>(
      new SemanticsReconstructor());
  recon->sb_ = parsed.value();
  recon->armed_ = true;
  recon->scan_snapshot(disk);
  return recon;
}

std::unique_ptr<SemanticsReconstructor> SemanticsReconstructor::unformatted() {
  return std::unique_ptr<SemanticsReconstructor>(new SemanticsReconstructor());
}

void SemanticsReconstructor::scan_snapshot(const block::MemDisk& disk) {
  auto read_block = [&](std::uint32_t block) {
    return disk.read_sync(static_cast<std::uint64_t>(block) *
                              fs::kSectorsPerBlock,
                          fs::kSectorsPerBlock);
  };

  // Pass 1: every inode table block -> in-use inodes + their block maps.
  for (std::uint32_t g = 0; g < sb_.num_groups; ++g) {
    for (std::uint32_t t = 0; t < sb_.inode_table_blocks(); ++t) {
      std::uint32_t block = sb_.group_first_block(g) + 2 + t;
      Bytes data = read_block(block);
      std::uint32_t first_ino = fs::first_inode_of_table_block(sb_, g, t);
      bool any = false;
      for (std::uint32_t i = 0; i < fs::kInodesPerBlock; ++i) {
        fs::Inode inode = fs::Inode::parse(std::span<const std::uint8_t>(
            data.data() + i * fs::kInodeSize, fs::kInodeSize));
        if (!inode.in_use()) continue;
        any = true;
        std::uint32_t ino = first_ino + i;
        FileInfo& info = inodes_[ino];
        info.type = inode.type;
        info.size = inode.size;
        index_inode_blocks(ino, inode, &disk);
      }
      if (any) inode_block_cache_[block] = std::move(data);
    }
  }

  // Pass 2: walk directories to name everything.
  for (auto& [ino, info] : inodes_) {
    if (info.type != fs::InodeType::kDirectory) continue;
    for (std::uint32_t block : info.blocks) {
      dir_block_owner_[block] = ino;
      Bytes data = read_block(block);
      for (std::uint32_t slot = 0; slot < fs::kDirEntriesPerBlock; ++slot) {
        fs::DirEntry entry = fs::DirEntry::parse(std::span<const std::uint8_t>(
            data.data() + slot * fs::kDirEntrySize, fs::kDirEntrySize));
        if (entry.inode == 0) continue;
        FileInfo& child = inodes_[entry.inode];
        child.parent = ino;
        child.name = entry.name;
        if (child.type == fs::InodeType::kFree) child.type = entry.type;
      }
      dir_block_cache_[block] = std::move(data);
    }
  }
}

void SemanticsReconstructor::index_inode_blocks(
    std::uint32_t ino, const fs::Inode& inode,
    const block::MemDisk* snapshot) {
  FileInfo& info = inodes_[ino];
  for (std::uint32_t block : inode.direct) {
    if (block == 0) continue;
    block_owner_[block] = ino;
    info.blocks.insert(block);
  }
  auto table_content = [&](std::uint32_t table) -> std::optional<Bytes> {
    if (snapshot != nullptr) {
      Bytes data = snapshot->read_sync(
          static_cast<std::uint64_t>(table) * fs::kSectorsPerBlock,
          fs::kSectorsPerBlock);
      pointer_block_cache_[table] = data;
      return data;
    }
    auto it = pointer_block_cache_.find(table);
    if (it == pointer_block_cache_.end()) return std::nullopt;
    return it->second;
  };
  auto index_table = [&](std::uint32_t table, bool is_l1_of_dindirect) {
    if (table == 0) return;
    pointer_block_owner_[table] = ino;
    if (is_l1_of_dindirect) dindirect_l1_.insert(table);
    auto data = table_content(table);
    if (!data) return;  // content arrives as later writes
    for (std::uint32_t i = 0; i < fs::kPointersPerBlock; ++i) {
      std::uint32_t value = read_u32(*data, i);
      if (value == 0) continue;
      if (is_l1_of_dindirect) {
        pointer_block_owner_[value] = ino;
        auto level2 = table_content(value);
        if (!level2) continue;
        for (std::uint32_t j = 0; j < fs::kPointersPerBlock; ++j) {
          std::uint32_t leaf = read_u32(*level2, j);
          if (leaf == 0) continue;
          block_owner_[leaf] = ino;
          info.blocks.insert(leaf);
        }
      } else {
        block_owner_[value] = ino;
        info.blocks.insert(value);
      }
    }
  };
  index_table(inode.indirect, false);
  index_table(inode.dindirect, true);
}

void SemanticsReconstructor::drop_inode_blocks(std::uint32_t ino) {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) return;
  for (std::uint32_t block : it->second.blocks) {
    block_owner_.erase(block);
    dir_block_owner_.erase(block);
    dir_block_cache_.erase(block);
  }
  it->second.blocks.clear();
  std::erase_if(pointer_block_owner_, [&](const auto& kv) {
    if (kv.second != ino) return false;
    pointer_block_cache_.erase(kv.first);
    dindirect_l1_.erase(kv.first);
    return true;
  });
}

std::optional<std::string> SemanticsReconstructor::path_of_inode(
    std::uint32_t ino) const {
  if (ino == fs::kRootInode) return "/";
  std::string path;
  std::uint32_t current = ino;
  int depth = 0;
  while (current != fs::kRootInode && depth++ < 64) {
    auto it = inodes_.find(current);
    if (it == inodes_.end() || it->second.name.empty()) {
      // Unnamed (dirent not yet seen): fall back to the inode number.
      return path.empty() ? "ino_" + std::to_string(ino)
                          : "ino_" + std::to_string(current) + path;
    }
    path = "/" + it->second.name + path;
    current = it->second.parent;
    if (current == 0) break;
  }
  return path.empty() ? "/" : path;
}

std::optional<std::string> SemanticsReconstructor::path_of_block(
    std::uint32_t block) const {
  auto it = block_owner_.find(block);
  if (it == block_owner_.end()) return std::nullopt;
  return path_of_inode(it->second);
}

FileOp SemanticsReconstructor::classify(bool is_write, std::uint32_t block,
                                        std::uint64_t bytes) {
  FileOp op;
  op.block = block;
  op.size = bytes;
  if (!armed_) {
    op.kind = is_write ? FileOp::Kind::kWrite : FileOp::Kind::kRead;
    op.path = "raw_block_" + std::to_string(block);
    return op;
  }
  fs::BlockClass cls = fs::classify_block(sb_, block);
  switch (cls.kind) {
    case fs::BlockClass::Kind::kData: {
      if (auto dir = dir_block_owner_.find(block);
          dir != dir_block_owner_.end()) {
        op.kind = is_write ? FileOp::Kind::kWrite : FileOp::Kind::kRead;
        op.path = *path_of_inode(dir->second);
        if (op.path.back() != '/') op.path += "/";
        op.path += ".";
        return op;
      }
      if (auto owner = block_owner_.find(block);
          owner != block_owner_.end()) {
        op.kind = is_write ? FileOp::Kind::kWrite : FileOp::Kind::kRead;
        op.path = *path_of_inode(owner->second);
        return op;
      }
      if (auto table = pointer_block_owner_.find(block);
          table != pointer_block_owner_.end()) {
        op.kind = is_write ? FileOp::Kind::kMetaWrite : FileOp::Kind::kMetaRead;
        op.path = "META: indirect_of " + *path_of_inode(table->second);
        return op;
      }
      op.kind = is_write ? FileOp::Kind::kWrite : FileOp::Kind::kRead;
      op.path = "unallocated_block_" + std::to_string(block);
      return op;
    }
    default:
      op.kind = is_write ? FileOp::Kind::kMetaWrite : FileOp::Kind::kMetaRead;
      op.path = "META: " + cls.to_string();
      return op;
  }
}

std::vector<FileOp> SemanticsReconstructor::on_read(std::uint64_t lba,
                                                    std::uint64_t length) {
  std::vector<FileOp> ops;
  std::uint64_t end = lba * block::kSectorSize + length;
  std::uint64_t pos = lba * block::kSectorSize;
  while (pos < end) {
    std::uint32_t block = static_cast<std::uint32_t>(pos / fs::kBlockSize);
    std::uint64_t block_end =
        static_cast<std::uint64_t>(block + 1) * fs::kBlockSize;
    std::uint64_t chunk = std::min(end, block_end) - pos;
    FileOp op = classify(false, block, chunk);
    if (!ops.empty() && ops.back().path == op.path &&
        ops.back().kind == op.kind) {
      ops.back().size += chunk;  // coalesce contiguous same-file access
    } else {
      ops.push_back(op);
    }
    pos += chunk;
  }
  return ops;
}

std::vector<FileOp> SemanticsReconstructor::on_write(std::uint64_t lba,
                                                     const Bytes& data) {
  // Unarmed (blank volume): watch for mkfs writing the superblock and
  // bootstrap the view from there.
  if (!armed_ && lba == 0 && data.size() >= fs::kBlockSize) {
    auto parsed = fs::SuperBlock::parse(
        std::span<const std::uint8_t>(data.data(), fs::kBlockSize));
    if (parsed.is_ok()) {
      sb_ = parsed.value();
      armed_ = true;
    }
  }
  std::vector<FileOp> ops;
  std::uint64_t start = lba * block::kSectorSize;
  std::uint64_t end = start + data.size();
  std::uint64_t pos = start;
  while (pos < end) {
    std::uint32_t block = static_cast<std::uint32_t>(pos / fs::kBlockSize);
    std::uint64_t block_start =
        static_cast<std::uint64_t>(block) * fs::kBlockSize;
    std::uint64_t block_end = block_start + fs::kBlockSize;
    std::uint64_t chunk = std::min(end, block_end) - pos;

    // Classify *before* applying the update: a write creating a file is
    // still a metadata write to the inode table.
    FileOp op = classify(true, block, chunk);

    // Full-block metadata writes update the view.
    if (pos == block_start && chunk == fs::kBlockSize) {
      std::span<const std::uint8_t> content(data.data() + (pos - start),
                                            fs::kBlockSize);
      fs::BlockClass cls = fs::classify_block(sb_, block);
      if (cls.kind == fs::BlockClass::Kind::kInodeTable) {
        apply_inode_table_write(block, content);
      } else if (cls.kind == fs::BlockClass::Kind::kData) {
        if (auto dir = dir_block_owner_.find(block);
            dir != dir_block_owner_.end()) {
          apply_dir_block_write(block, dir->second, content);
        } else if (auto table = pointer_block_owner_.find(block);
                   table != pointer_block_owner_.end()) {
          apply_pointer_block_write(block, table->second, content);
        } else if (!block_owner_.contains(block)) {
          // Not attributed yet: the mapping metadata may still be in the
          // guest page cache. Keep the content so it can be interpreted
          // when the mapping write arrives (bounded cache).
          if (orphan_writes_.size() >= 4096) {
            orphan_writes_.erase(orphan_writes_.begin());
          }
          orphan_writes_[block] = Bytes(content.begin(), content.end());
        }
      }
    }

    if (!ops.empty() && ops.back().path == op.path &&
        ops.back().kind == op.kind) {
      ops.back().size += chunk;
    } else {
      ops.push_back(op);
    }
    pos += chunk;
  }
  return ops;
}

void SemanticsReconstructor::apply_inode_table_write(
    std::uint32_t block, std::span<const std::uint8_t> data) {
  fs::BlockClass cls = fs::classify_block(sb_, block);
  std::uint32_t first_ino =
      fs::first_inode_of_table_block(sb_, cls.group, cls.table_index);
  Bytes& cache = inode_block_cache_[block];
  if (cache.empty()) cache.assign(fs::kBlockSize, 0);

  for (std::uint32_t i = 0; i < fs::kInodesPerBlock; ++i) {
    std::span<const std::uint8_t> new_slot(data.data() + i * fs::kInodeSize,
                                           fs::kInodeSize);
    std::span<const std::uint8_t> old_slot(cache.data() + i * fs::kInodeSize,
                                           fs::kInodeSize);
    // Untouched slots need no re-index (and re-indexing would lose
    // indirect pointee mappings learned from orphan writes).
    if (std::equal(new_slot.begin(), new_slot.end(), old_slot.begin())) {
      continue;
    }
    fs::Inode new_inode = fs::Inode::parse(new_slot);
    fs::Inode old_inode = fs::Inode::parse(old_slot);
    std::uint32_t ino = first_ino + i;

    if (!old_inode.in_use() && !new_inode.in_use()) continue;

    if (old_inode.in_use() && !new_inode.in_use()) {
      // File deleted.
      drop_inode_blocks(ino);
      inodes_.erase(ino);
      continue;
    }
    // Created or updated: refresh ownership from the new block pointers.
    if (old_inode.in_use()) drop_inode_blocks(ino);
    FileInfo& info = inodes_[ino];
    info.type = new_inode.type;
    info.size = new_inode.size;
    index_inode_blocks(ino, new_inode, nullptr);
    // Newly indexed directory blocks become dirent-diffable; replay any
    // content that arrived before this mapping did.
    if (new_inode.type == fs::InodeType::kDirectory) {
      for (std::uint32_t dir_block : inodes_[ino].blocks) {
        dir_block_owner_[dir_block] = ino;
        if (auto orphan = orphan_writes_.find(dir_block);
            orphan != orphan_writes_.end()) {
          apply_dir_block_write(dir_block, ino, orphan->second);
          orphan_writes_.erase(orphan);
        }
      }
    }
    // Same for indirect-pointer blocks written ahead of the inode.
    // (index_inode_blocks has already tagged the double-indirect L1.)
    for (std::uint32_t table :
         {new_inode.indirect, new_inode.dindirect}) {
      if (table == 0) continue;
      if (auto orphan = orphan_writes_.find(table);
          orphan != orphan_writes_.end()) {
        Bytes content = std::move(orphan->second);
        orphan_writes_.erase(orphan);
        apply_pointer_block_write(table, ino, content);
      }
    }
  }
  cache.assign(data.begin(), data.end());
}

void SemanticsReconstructor::apply_dir_block_write(
    std::uint32_t block, std::uint32_t dir_ino,
    std::span<const std::uint8_t> data) {
  Bytes& cache = dir_block_cache_[block];
  if (cache.empty()) cache.assign(fs::kBlockSize, 0);
  for (std::uint32_t slot = 0; slot < fs::kDirEntriesPerBlock; ++slot) {
    fs::DirEntry new_entry = fs::DirEntry::parse(std::span<const std::uint8_t>(
        data.data() + slot * fs::kDirEntrySize, fs::kDirEntrySize));
    fs::DirEntry old_entry = fs::DirEntry::parse(std::span<const std::uint8_t>(
        cache.data() + slot * fs::kDirEntrySize, fs::kDirEntrySize));
    if (new_entry.inode == old_entry.inode &&
        new_entry.name == old_entry.name) {
      continue;
    }
    if (old_entry.inode != 0) {
      // Entry removed or replaced: detach the old child's name if it
      // still points here.
      auto it = inodes_.find(old_entry.inode);
      if (it != inodes_.end() && it->second.parent == dir_ino &&
          it->second.name == old_entry.name) {
        it->second.parent = 0;
        it->second.name.clear();
      }
    }
    if (new_entry.inode != 0) {
      FileInfo& child = inodes_[new_entry.inode];
      child.parent = dir_ino;
      child.name = new_entry.name;
      if (child.type == fs::InodeType::kFree) child.type = new_entry.type;
    }
  }
  cache.assign(data.begin(), data.end());
}

void SemanticsReconstructor::apply_pointer_block_write(
    std::uint32_t block, std::uint32_t owner,
    std::span<const std::uint8_t> data) {
  pointer_block_cache_[block].assign(data.begin(), data.end());
  FileInfo& info = inodes_[owner];
  const bool is_l1 = dindirect_l1_.contains(block);
  for (std::uint32_t i = 0; i < fs::kPointersPerBlock; ++i) {
    std::uint32_t value = read_u32(data, i);
    if (value == 0) continue;
    if (is_l1) {
      // Children of a double-indirect L1 are L2 pointer blocks. Any
      // content that arrived before this mapping replays as an L2 write.
      pointer_block_owner_[value] = owner;
      if (auto orphan = orphan_writes_.find(value);
          orphan != orphan_writes_.end()) {
        Bytes content = std::move(orphan->second);
        orphan_writes_.erase(orphan);
        apply_pointer_block_write(value, owner, content);
      }
      continue;
    }
    if (!pointer_block_owner_.contains(value)) {
      block_owner_[value] = owner;
      info.blocks.insert(value);
    }
  }
}

std::size_t SemanticsReconstructor::tracked_files() const {
  std::size_t count = 0;
  for (const auto& [ino, info] : inodes_) {
    if (info.type == fs::InodeType::kFile) ++count;
  }
  return count;
}

}  // namespace storm::core
