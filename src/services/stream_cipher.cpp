#include "services/stream_cipher.hpp"

#include <cstring>
#include <stdexcept>

#include "block/block_device.hpp"
#include "crypto/chacha20.hpp"

namespace storm::services {

StreamCipherService::StreamCipherService(Bytes key,
                                         StreamCipherConfig config)
    : config_(config) {
  if (key.size() != 32) {
    throw std::invalid_argument("StreamCipherService: key must be 32 bytes");
  }
  std::memcpy(key_.data(), key.data(), 32);
}

void StreamCipherService::crypt(std::uint64_t byte_position,
                                std::span<std::uint8_t> data) {
  // Key the stream to the 64-byte-block-aligned volume position so random
  // access stays self-consistent; handle intra-block offsets by
  // processing the unaligned head separately.
  std::size_t done = 0;
  while (done < data.size()) {
    std::uint64_t pos = byte_position + done;
    std::uint32_t counter = static_cast<std::uint32_t>(pos / 64);
    std::uint32_t skip = static_cast<std::uint32_t>(pos % 64);
    std::uint8_t nonce[12] = {};
    std::uint8_t block[64];
    crypto::chacha20_block(key_, std::span<const std::uint8_t>(nonce, 12),
                           counter, block);
    std::size_t n = std::min<std::size_t>(64 - skip, data.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      data[done + i] ^= block[skip + i];
    }
    done += n;
  }
  processed_ += data.size();
}

core::ServiceVerdict StreamCipherService::on_pdu(core::ServiceContext& ctx,
                                                 core::Direction dir,
                                                 iscsi::Pdu& pdu) {
  core::ServiceVerdict verdict;
  auto cost_of = [this, &ctx](std::size_t bytes) {
    ctx.scope().counter("stream_cipher.bytes_processed").add(bytes);
    return static_cast<sim::Duration>(config_.ns_per_byte *
                                      static_cast<double>(bytes));
  };
  if (dir == core::Direction::kToTarget) {
    if (pdu.opcode == iscsi::Opcode::kScsiCommand && !pdu.is_read() &&
        !pdu.data.empty()) {
      // COW: clones the payload iff the journal or a retransmit queue
      // still references the plaintext bytes.
      crypt(pdu.lba * block::kSectorSize, pdu.data.mutable_span());
      verdict.cpu_cost = cost_of(pdu.data.size());
      if (!pdu.is_final()) write_lbas_[pdu.task_tag] = pdu.lba;
    } else if (pdu.opcode == iscsi::Opcode::kDataOut && !pdu.data.empty()) {
      auto lba = write_lbas_.find(pdu.task_tag);
      if (lba != write_lbas_.end()) {
        crypt(lba->second * block::kSectorSize + pdu.data_offset,
              pdu.data.mutable_span());
        verdict.cpu_cost = cost_of(pdu.data.size());
        if (pdu.is_final()) write_lbas_.erase(lba);
      }
    } else if (pdu.opcode == iscsi::Opcode::kScsiCommand && pdu.is_read()) {
      tracker_.on_to_target(pdu);
    }
    return verdict;
  }
  if (pdu.opcode == iscsi::Opcode::kDataIn && !pdu.data.empty()) {
    if (auto info = tracker_.read_info(pdu.task_tag)) {
      crypt(info->lba * block::kSectorSize + pdu.data_offset,
            pdu.data.mutable_span());
      verdict.cpu_cost = cost_of(pdu.data.size());
    }
  } else if (pdu.opcode == iscsi::Opcode::kScsiResponse) {
    tracker_.on_response(pdu.task_tag);
  }
  return verdict;
}

}  // namespace storm::services
