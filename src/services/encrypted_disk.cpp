#include "services/encrypted_disk.hpp"

#include <memory>
#include <stdexcept>

namespace storm::services {

EncryptedDisk::EncryptedDisk(block::BlockDevice& inner, sim::Cpu& cpu,
                             Bytes key, EncryptedDiskConfig config)
    : inner_(inner), cpu_(cpu), config_(config) {
  if (key.size() != 32 && key.size() != 64) {
    throw std::invalid_argument("EncryptedDisk: key must be 32 or 64 bytes");
  }
  std::size_t half = key.size() / 2;
  xts_ = std::make_unique<crypto::AesXts>(
      std::span<const std::uint8_t>(key.data(), half),
      std::span<const std::uint8_t>(key.data() + half, half));
}

void EncryptedDisk::write(std::uint64_t lba, Bytes data, WriteCallback done) {
  if (data.size() % block::kSectorSize != 0) {
    done(error(ErrorCode::kInvalidArgument, "unaligned write"));
    return;
  }
  // Encrypt on the VM's CPU first (the submitting thread blocks on this,
  // dm-crypt style), then push ciphertext down.
  ciphered_ += data.size();
  // Compute the cost before the lambda capture moves `data` (argument
  // evaluation order is unspecified). dm-crypt splits cipher work across
  // per-CPU workqueues, so charge the cost as parallel halves.
  sim::Duration half = cost_of(data.size()) / 2;
  auto remaining = std::make_shared<int>(2);
  auto proceed = std::make_shared<std::function<void()>>(
      [this, lba, data = std::move(data), done = std::move(done)]() mutable {
        for (std::size_t off = 0; off < data.size();
             off += block::kSectorSize) {
          std::span<std::uint8_t> sector(data.data() + off,
                                         block::kSectorSize);
          xts_->encrypt_sector(lba + off / block::kSectorSize, sector,
                               sector);
        }
        inner_.write(lba, std::move(data), std::move(done));
      });
  for (int i = 0; i < 2; ++i) {
    cpu_.run(half, [remaining, proceed] {
      if (--*remaining == 0) (*proceed)();
    });
  }
}

void EncryptedDisk::read(std::uint64_t lba, std::uint32_t count,
                         ReadCallback done) {
  inner_.read(lba, count,
              [this, lba, done = std::move(done)](Status status,
                                                  Bytes data) mutable {
                if (!status.is_ok()) {
                  done(status, std::move(data));
                  return;
                }
                ciphered_ += data.size();
                sim::Duration half = cost_of(data.size()) / 2;
                auto remaining = std::make_shared<int>(2);
                auto proceed = std::make_shared<std::function<void()>>(
                    [this, lba, data = std::move(data),
                     done = std::move(done)]() mutable {
                      for (std::size_t off = 0; off < data.size();
                           off += block::kSectorSize) {
                        std::span<std::uint8_t> sector(
                            data.data() + off, block::kSectorSize);
                        xts_->decrypt_sector(
                            lba + off / block::kSectorSize, sector, sector);
                      }
                      done(Status::ok(), std::move(data));
                    });
                for (int i = 0; i < 2; ++i) {
                  cpu_.run(half, [remaining, proceed] {
                    if (--*remaining == 0) (*proceed)();
                  });
                }
              });
}

}  // namespace storm::services
