// Background copy machine for replica rebuild (ROADMAP item 4;
// cortx-motr's cm/ SNS-repair is the structural exemplar, shrunk to one
// replica set). When the replication service declares a replica dead —
// or a fresh spare is attached — the copy machine streams the replica's
// dirty extents from a surviving up-to-date copy while foreground I/O
// continues. Every chunk is admitted through a dedicated
// net::TokenBucket, so rebuild traffic is shaped like any tenant flow
// and cannot starve foreground p99. Progress is reported per chunk; the
// owner journals the cursor, which is what makes a rebuild resumable
// across a relay power failure.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "block/block_device.hpp"
#include "net/qos.hpp"
#include "sim/simulator.hpp"

namespace storm::services {

/// Sorted, coalesced set of [begin, end) sector ranges — the "what this
/// copy missed" bookkeeping behind degraded replicas and rebuilds.
class ExtentSet {
 public:
  /// Insert [begin, end), merging with any overlapping/adjacent extents.
  void add(std::uint64_t begin, std::uint64_t end);
  /// Remove [begin, end) wherever present (may split extents).
  void remove(std::uint64_t begin, std::uint64_t end);
  /// True when [begin, end) overlaps any held extent.
  bool intersects(std::uint64_t begin, std::uint64_t end) const;

  bool empty() const { return extents_.empty(); }
  std::size_t count() const { return extents_.size(); }
  std::uint64_t sectors() const;
  void clear() { extents_.clear(); }

  /// Lowest-addressed chunk of at most `max_sectors`, removed from the
  /// set. Returns {0, 0} when empty.
  std::pair<std::uint64_t, std::uint64_t> take_front(
      std::uint64_t max_sectors);

  const std::map<std::uint64_t, std::uint64_t>& ranges() const {
    return extents_;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> extents_;  // begin -> end
};

/// Streams one rebuilding replica's dirty extents from a survivor to the
/// target device, lowest LBA first, one throttled chunk at a time.
/// Owned via shared_ptr: in-flight token-bucket grants and device
/// completions hold the machine alive across halt()/teardown.
class CopyMachine : public std::enable_shared_from_this<CopyMachine> {
 public:
  struct Config {
    /// Sectors per copy op (64 KiB at 512-byte sectors).
    std::uint32_t chunk_sectors = 128;
  };

  struct Hooks {
    /// Read `sectors` sectors at `lba` from an up-to-date copy. The owner
    /// picks the source each call (a live replica's device, or the primary
    /// through the relay's data path). Complete with an error status when
    /// no source is available right now — the machine re-plans the chunk
    /// and stalls until the next kick().
    std::function<void(std::uint64_t lba, std::uint32_t sectors,
                       block::BlockDevice::ReadCallback done)>
        read_source;
    /// One chunk landed on the target: journal the cursor, update
    /// progress gauges.
    std::function<void(std::uint64_t lba, std::uint64_t sectors)> on_chunk;
    /// The dirty set drained with nothing in flight — the owner runs its
    /// version-map match and returns the replica to rotation.
    std::function<void()> on_drained;
    /// The *target* failed mid-copy: the replica died again.
    std::function<void(Status)> on_target_error;
  };

  CopyMachine(sim::Executor executor, net::TokenBucket& pacer,
              block::BlockDevice* target, ExtentSet& dirty, Hooks hooks,
              Config config);

  CopyMachine(const CopyMachine&) = delete;
  CopyMachine& operator=(const CopyMachine&) = delete;

  /// Start (or resume after a stall) pulling extents. Idempotent while a
  /// chunk is already in flight.
  void kick();

  /// Stop dead: in-flight completions and queued token grants from
  /// before the halt are dropped (relay crash, replica death). The
  /// dirty set is left as-is for the owner to re-plan.
  void halt();

  bool halted() const { return halted_; }
  bool in_flight() const { return in_flight_; }
  /// The [begin, end) sector range currently being copied; {0, 0} when
  /// nothing is in flight. Foreground writes overlapping this range must
  /// be re-added to the dirty set instead of written through — the
  /// in-flight chunk carries pre-write bytes and would clobber them.
  std::pair<std::uint64_t, std::uint64_t> active_chunk() const {
    return in_flight_ ? std::make_pair(active_begin_, active_end_)
                      : std::make_pair(std::uint64_t{0}, std::uint64_t{0});
  }
  /// Highest sector copied so far — the resumable rebuild cursor.
  std::uint64_t cursor() const { return cursor_; }
  std::uint64_t bytes_copied() const { return bytes_copied_; }
  std::uint64_t chunks_copied() const { return chunks_copied_; }

 private:
  void step();
  void copy_chunk(std::uint64_t begin, std::uint64_t end);

  sim::Executor sim_;
  net::TokenBucket& pacer_;
  block::BlockDevice* target_;
  ExtentSet& dirty_;
  Hooks hooks_;
  Config config_;

  bool halted_ = false;
  bool in_flight_ = false;
  // Bumped by halt(): completions from the dead incarnation compare
  // epochs and drop themselves.
  std::uint64_t epoch_ = 0;
  std::uint64_t active_begin_ = 0;
  std::uint64_t active_end_ = 0;
  std::uint64_t cursor_ = 0;
  std::uint64_t bytes_copied_ = 0;
  std::uint64_t chunks_copied_ = 0;
};

}  // namespace storm::services
