#include "services/monitor.hpp"

namespace storm::services {

MonitorService::MonitorService(
    std::unique_ptr<core::SemanticsReconstructor> reconstructor,
    MonitorConfig config)
    : recon_(std::move(reconstructor)), config_(config) {}

void MonitorService::watch(const std::string& path_prefix) {
  watches_.push_back(path_prefix);
}

core::ServiceVerdict MonitorService::on_pdu(core::ServiceContext& ctx,
                                            core::Direction dir,
                                            iscsi::Pdu& pdu) {
  core::ServiceVerdict verdict;
  if (dir == core::Direction::kToTarget) {
    if (pdu.opcode == iscsi::Opcode::kScsiCommand && pdu.is_read()) {
      // Classification of reads happens at command time: the geometry is
      // enough, the view is not changed by a read.
      record(recon_->on_read(pdu.lba, pdu.transfer_length));
      ctx.scope().counter("monitor.accesses").add();
      verdict.cpu_cost += config_.cost_per_access;
      tracker_.on_to_target(pdu);
      return verdict;
    }
    if (auto burst = tracker_.on_to_target(pdu)) {
      // Update + Analysis: the completed write carries the content that
      // keeps the filesystem view current.
      record(recon_->on_write(burst->lba, burst->data));
      ctx.scope().counter("monitor.accesses").add();
      verdict.cpu_cost += config_.cost_per_access;
    }
    return verdict;
  }
  if (pdu.opcode == iscsi::Opcode::kScsiResponse) {
    tracker_.on_response(pdu.task_tag);
  }
  return verdict;
}

void MonitorService::record(std::vector<core::FileOp> ops) {
  for (auto& op : ops) {
    LogEntry entry{next_sequence_++, std::move(op)};
    for (const std::string& watch : watches_) {
      bool hit = watch.ends_with("/")
                     ? entry.op.path.starts_with(watch)
                     : entry.op.path == watch;
      if (hit) {
        alerts_.push_back(entry);
        if (on_alert_) on_alert_(entry);
        break;
      }
    }
    log_.push_back(std::move(entry));
    if (log_.size() > config_.max_log_entries) log_.pop_front();
  }
}

}  // namespace storm::services
