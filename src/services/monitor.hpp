// Storage access monitor (paper §V-B1): logs every access to the volume
// at file granularity, raising alerts on watched paths.
//
// Three steps per intercepted access, as in the paper:
//   Classification — file content vs. metadata, via the filesystem view,
//   Update         — metadata writes refresh the view,
//   Analysis       — log the access; alert if it touches a watched path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/reconstruction.hpp"
#include "core/service.hpp"
#include "services/write_tracker.hpp"
#include "sim/time.hpp"

namespace storm::services {

struct MonitorConfig {
  /// Per-access analysis cost (hash lookups + log append).
  sim::Duration cost_per_access = sim::nanoseconds(400);
  std::size_t max_log_entries = 100'000;
};

class MonitorService : public core::StorageService {
 public:
  struct LogEntry {
    std::uint64_t sequence = 0;
    core::FileOp op;
  };
  using AlertCallback = std::function<void(const LogEntry&)>;

  MonitorService(std::unique_ptr<core::SemanticsReconstructor> reconstructor,
                 MonitorConfig config = {});

  std::string name() const override { return "monitor"; }
  // The reconstructor mirrors one volume's filesystem; interleaving a
  // second volume's writes would corrupt the semantic view.
  bool replica_safe() const override { return false; }
  core::ServiceVerdict on_pdu(core::ServiceContext& ctx, core::Direction dir,
                              iscsi::Pdu& pdu) override;

  /// Watch a path (or a directory prefix ending in '/'): any access
  /// raises an alert (paper: "set an alert on sensitive files").
  void watch(const std::string& path_prefix);
  void set_alert_callback(AlertCallback cb) { on_alert_ = std::move(cb); }

  const std::deque<LogEntry>& log() const { return log_; }
  const std::vector<LogEntry>& alerts() const { return alerts_; }
  core::SemanticsReconstructor& reconstructor() { return *recon_; }

 private:
  void record(std::vector<core::FileOp> ops);

  std::unique_ptr<core::SemanticsReconstructor> recon_;
  MonitorConfig config_;
  IoTracker tracker_;
  std::deque<LogEntry> log_;
  std::vector<LogEntry> alerts_;
  std::vector<std::string> watches_;
  AlertCallback on_alert_;
  std::uint64_t next_sequence_ = 1;
};

}  // namespace storm::services
