// Stream-cipher service: ChaCha20 keyed to the absolute byte position on
// the volume. This is the measurable per-bit workload the paper runs
// inside the middle-box for its processing-overhead experiments
// (Figures 5, 6, 8, 9): it "operates on each bit of the raw data".
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "core/service.hpp"
#include "services/write_tracker.hpp"

namespace storm::services {

struct StreamCipherConfig {
  /// ChaCha20 software throughput (~1.3 GB/s per 2016 core).
  double ns_per_byte = 0.75;
};

class StreamCipherService : public core::StorageService {
 public:
  explicit StreamCipherService(Bytes key = Bytes(32, 0x42),
                               StreamCipherConfig config = {});

  std::string name() const override { return "stream_cipher"; }
  // Bypassing the cipher would put plaintext on the storage network.
  bool confidentiality_critical() const override { return true; }
  core::ServiceVerdict on_pdu(core::ServiceContext& ctx, core::Direction dir,
                              iscsi::Pdu& pdu) override;

  std::uint64_t bytes_processed() const { return processed_; }

 private:
  void crypt(std::uint64_t byte_position, std::span<std::uint8_t> data);

  std::array<std::uint8_t, 32> key_{};
  StreamCipherConfig config_;
  IoTracker tracker_;
  std::map<std::uint32_t, std::uint64_t> write_lbas_;
  std::uint64_t processed_ = 0;
};

}  // namespace storm::services
