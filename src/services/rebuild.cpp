#include "services/rebuild.hpp"

#include <algorithm>

namespace storm::services {

// ----------------------------------------------------------- ExtentSet

void ExtentSet::add(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  // Fold in every extent overlapping or touching [begin, end).
  auto it = extents_.upper_bound(begin);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) it = prev;
  }
  while (it != extents_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    it = extents_.erase(it);
  }
  extents_[begin] = end;
}

void ExtentSet::remove(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  auto it = extents_.upper_bound(begin);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  while (it != extents_.end() && it->first < end) {
    const std::uint64_t e_begin = it->first;
    const std::uint64_t e_end = it->second;
    it = extents_.erase(it);
    if (e_begin < begin) extents_[e_begin] = begin;
    if (e_end > end) {
      extents_[end] = e_end;
      break;
    }
  }
}

bool ExtentSet::intersects(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return false;
  auto it = extents_.upper_bound(begin);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) return true;
  }
  return it != extents_.end() && it->first < end;
}

std::uint64_t ExtentSet::sectors() const {
  std::uint64_t total = 0;
  for (const auto& [begin, end] : extents_) total += end - begin;
  return total;
}

std::pair<std::uint64_t, std::uint64_t> ExtentSet::take_front(
    std::uint64_t max_sectors) {
  if (extents_.empty() || max_sectors == 0) return {0, 0};
  auto it = extents_.begin();
  const std::uint64_t begin = it->first;
  const std::uint64_t end = std::min(it->second, begin + max_sectors);
  if (end == it->second) {
    extents_.erase(it);
  } else {
    const std::uint64_t rest = it->second;
    extents_.erase(it);
    extents_[end] = rest;
  }
  return {begin, end};
}

// --------------------------------------------------------- CopyMachine

CopyMachine::CopyMachine(sim::Executor executor, net::TokenBucket& pacer,
                         block::BlockDevice* target, ExtentSet& dirty,
                         Hooks hooks, Config config)
    : sim_(executor), pacer_(pacer), target_(target), dirty_(dirty),
      hooks_(std::move(hooks)), config_(config) {}

void CopyMachine::kick() {
  if (halted_ || in_flight_) return;
  step();
}

void CopyMachine::halt() {
  halted_ = true;
  in_flight_ = false;
  ++epoch_;
}

void CopyMachine::step() {
  if (halted_) return;
  if (dirty_.empty()) {
    if (hooks_.on_drained) hooks_.on_drained();
    return;
  }
  auto [begin, end] = dirty_.take_front(config_.chunk_sectors);
  in_flight_ = true;
  active_begin_ = begin;
  active_end_ = end;
  const std::uint64_t epoch = epoch_;
  const std::size_t bytes =
      static_cast<std::size_t>(end - begin) * block::kSectorSize;
  auto self = shared_from_this();
  pacer_.admit(bytes, [self, epoch, begin = begin, end = end] {
    if (self->halted_ || epoch != self->epoch_) return;
    self->copy_chunk(begin, end);
  });
}

void CopyMachine::copy_chunk(std::uint64_t begin, std::uint64_t end) {
  const std::uint64_t epoch = epoch_;
  auto self = shared_from_this();
  hooks_.read_source(
      begin, static_cast<std::uint32_t>(end - begin),
      [self, epoch, begin, end](Status status, Bytes data) {
        if (self->halted_ || epoch != self->epoch_) return;
        if (!status.is_ok()) {
          // No up-to-date source right now, or the one we used dropped
          // out mid-read: re-plan the chunk and stall; the owner kicks
          // again from its next health probe.
          self->dirty_.add(begin, end);
          self->in_flight_ = false;
          return;
        }
        self->target_->write(
            begin, std::move(data),
            [self, epoch, begin, end](Status write_status) {
              if (self->halted_ || epoch != self->epoch_) return;
              self->in_flight_ = false;
              if (!write_status.is_ok()) {
                self->dirty_.add(begin, end);
                if (self->hooks_.on_target_error) {
                  self->hooks_.on_target_error(write_status);
                }
                return;
              }
              const std::uint64_t sectors = end - begin;
              self->cursor_ = std::max(self->cursor_, end);
              self->bytes_copied_ += sectors * block::kSectorSize;
              ++self->chunks_copied_;
              if (self->hooks_.on_chunk) self->hooks_.on_chunk(begin, sectors);
              // Yield to the event loop between chunks: foreground I/O
              // interleaves even when the bucket has tokens banked.
              self->sim_.schedule_in(0, [self, epoch] {
                if (self->halted_ || epoch != self->epoch_) return;
                if (!self->in_flight_) self->step();
              });
            });
      });
}

}  // namespace storm::services
