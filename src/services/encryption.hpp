// Data-encryption middle-box (paper §V-B2): AES-XTS per 512-byte sector,
// the dm-crypt configuration of the paper's prototype. Tenant data is
// encrypted before it reaches the storage backend and decrypted on the
// way back — the tenant VM and the target both see only their native
// format (transparent deployment, no volume reformatting).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/service.hpp"
#include "crypto/aes.hpp"
#include "services/write_tracker.hpp"

namespace storm::services {

struct EncryptionConfig {
  /// Software AES-XTS on the middle-box's dedicated vCPUs
  /// (~160 MB/s per core, 2016-era guests).
  double ns_per_byte = 4.0;
  sim::Duration per_io = sim::microseconds(1);
};

class EncryptionService : public core::StorageService {
 public:
  /// `key` is 32 or 64 bytes (split into data/tweak halves; 64 bytes
  /// gives AES-256-XTS as in the paper).
  EncryptionService(Bytes key, EncryptionConfig config = {});

  std::string name() const override { return "encryption"; }
  // Bypassing the cipher would put plaintext on the storage network.
  bool confidentiality_critical() const override { return true; }
  core::ServiceVerdict on_pdu(core::ServiceContext& ctx, core::Direction dir,
                              iscsi::Pdu& pdu) override;

  std::uint64_t bytes_encrypted() const { return encrypted_; }
  std::uint64_t bytes_decrypted() const { return decrypted_; }

 private:
  void crypt(bool encrypt, std::uint64_t first_sector,
             std::span<std::uint8_t> data);

  std::unique_ptr<crypto::AesXts> xts_;
  EncryptionConfig config_;
  IoTracker tracker_;
  /// In-flight write bursts: task tag -> starting LBA (Data-Out PDUs only
  /// carry byte offsets).
  std::map<std::uint32_t, std::uint64_t> write_lbas_;
  std::uint64_t encrypted_ = 0;
  std::uint64_t decrypted_ = 0;
};

}  // namespace storm::services
