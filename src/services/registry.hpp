// Registers the paper's middle-box services with a StormPlatform so
// tenant policies can reference them by type name:
//   monitor       — storage access monitor with semantics reconstruction
//   encryption    — AES-XTS data encryption (dm-crypt configuration)
//   stream_cipher — ChaCha20 per-byte workload (the benchmark service)
//   replication   — replica dispatch with read striping and failover
#pragma once

#include "core/platform.hpp"

namespace storm::services {

void register_builtin_services(core::StormPlatform& platform);

/// Parse a hex string into bytes ("00ff..", case-insensitive).
Result<Bytes> parse_hex_key(const std::string& hex);

}  // namespace storm::services
