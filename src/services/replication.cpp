#include "services/replication.hpp"

#include "common/log.hpp"

namespace storm::services {

ReplicationService::ReplicationService(ReplicaProvider attach_replicas,
                                       ReplicationConfig config)
    : attach_replicas_(std::move(attach_replicas)), config_(config) {}

void ReplicationService::initialize(std::function<void(Status)> ready) {
  attach_replicas_([this, ready](Status status,
                                 std::vector<block::BlockDevice*> devices) {
    if (!status.is_ok()) {
      ready(status);
      return;
    }
    for (block::BlockDevice* device : devices) {
      replicas_.push_back(Replica{device, true});
    }
    ready(Status::ok());
  });
}

std::size_t ReplicationService::live_replicas() const {
  std::size_t live = 0;
  for (const Replica& replica : replicas_) {
    if (replica.alive) ++live;
  }
  return live;
}

void ReplicationService::mark_dead(std::size_t replica_index) {
  if (!replicas_[replica_index].alive) return;
  replicas_[replica_index].alive = false;
  ++failovers_;
  log_warn("replication") << "replica " << replica_index
                          << " removed from rotation";
}

void ReplicationService::replicate_write(
    const IoTracker::WriteBurst& burst) {
  // Writes are dispatched to every live replica in arrival order; each
  // replica's iSCSI session is a FIFO byte stream, so all copies apply
  // the same write sequence (the consistency requirement in §V-B3).
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!replicas_[i].alive) continue;
    replicas_[i].device->write(burst.lba, burst.data, [this, i](Status s) {
      if (!s.is_ok()) mark_dead(i);
    });
  }
  ++writes_replicated_;
}

void ReplicationService::serve_read_from_replica(std::size_t replica_index,
                                                 const iscsi::Pdu& command,
                                                 core::ServiceContext& ctx) {
  ++reads_replica_;
  ctx.scope().counter("replication.reads_from_replicas").add();
  std::uint32_t sectors = command.transfer_length / block::kSectorSize;
  replicas_[replica_index].device->read(
      command.lba, sectors,
      [this, replica_index, command, &ctx](Status status, Bytes data) {
        if (!status.is_ok()) {
          // Failover: the unfinished read is served by re-injecting the
          // command toward the primary volume.
          mark_dead(replica_index);
          iscsi::Pdu retry = command;
          retry.data = Buf{};
          ctx.inject_to_target(retry);
          return;
        }
        Buf whole(std::move(data));
        std::uint32_t offset = 0;
        while (offset < whole.size()) {
          std::uint32_t n = std::min<std::uint32_t>(
              iscsi::kMaxDataSegment,
              static_cast<std::uint32_t>(whole.size()) - offset);
          ctx.inject_to_initiator(iscsi::make_data_in(
              command.task_tag, offset, whole.slice(offset, n),
              offset + n == whole.size()));
          offset += n;
        }
        ctx.inject_to_initiator(
            iscsi::make_scsi_response(command.task_tag, iscsi::kStatusGood));
      });
}

core::ServiceVerdict ReplicationService::on_pdu(core::ServiceContext& ctx,
                                                core::Direction dir,
                                                iscsi::Pdu& pdu) {
  core::ServiceVerdict verdict;
  if (dir != core::Direction::kToTarget) return verdict;

  if (pdu.opcode == iscsi::Opcode::kScsiCommand && pdu.is_read()) {
    verdict.cpu_cost = config_.per_io;
    // Round-robin across primary + live replicas for aggregate read
    // throughput. Slot 0 is the primary (forward unchanged).
    std::size_t choices = 1 + live_replicas();
    std::size_t choice = round_robin_++ % choices;
    if (choice == 0) {
      ++reads_primary_;
      tracker_.on_to_target(pdu);
      return verdict;  // forwarded to the primary volume
    }
    // Map choice to the (choice-1)-th live replica.
    std::size_t seen = 0;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!replicas_[i].alive) continue;
      if (++seen == choice) {
        serve_read_from_replica(i, pdu, ctx);
        verdict.consume = true;
        return verdict;
      }
    }
    ++reads_primary_;
    return verdict;  // no live replica found: primary serves
  }

  if (auto burst = tracker_.on_to_target(pdu)) {
    verdict.cpu_cost = config_.per_io;
    replicate_write(*burst);
    ctx.scope().counter("replication.writes_replicated").add();
  }
  return verdict;
}

}  // namespace storm::services
